package cstf_test

import (
	"math"
	"testing"

	"cstf"
)

// TestDistAlgorithmMatchesSerial runs the public Dist path end to end with
// in-process local workers and checks bitwise identity with Serial.
func TestDistAlgorithmMatchesSerial(t *testing.T) {
	x := cstf.LowRankTensor(11, 2500, 3, 0.01, 50, 40, 30)
	base := cstf.Options{Rank: 3, MaxIters: 4, NoConvergenceCheck: true, Seed: 5}

	so := base
	so.Algorithm = cstf.Serial
	want, err := cstf.Decompose(x, so)
	if err != nil {
		t.Fatal(err)
	}

	do := base
	do.Algorithm = cstf.Dist
	do.Dist.LocalWorkers = 4
	got, err := cstf.Decompose(x, do)
	if err != nil {
		t.Fatal(err)
	}

	if got.Iters != want.Iters || len(got.Fits) != len(want.Fits) {
		t.Fatalf("shape mismatch: iters %d/%d fits %d/%d", got.Iters, want.Iters, len(got.Fits), len(want.Fits))
	}
	for i := range want.Fits {
		if math.Float64bits(got.Fits[i]) != math.Float64bits(want.Fits[i]) {
			t.Fatalf("fit[%d]: %v != %v", i, got.Fits[i], want.Fits[i])
		}
	}
	for r := range want.Lambda {
		if math.Float64bits(got.Lambda[r]) != math.Float64bits(want.Lambda[r]) {
			t.Fatalf("lambda[%d]: %v != %v", r, got.Lambda[r], want.Lambda[r])
		}
	}
	for n := range want.Factors {
		wf, gf := want.Factors[n], got.Factors[n]
		for i := 0; i < wf.Rows(); i++ {
			for j := 0; j < wf.Cols(); j++ {
				if math.Float64bits(gf.At(i, j)) != math.Float64bits(wf.At(i, j)) {
					t.Fatalf("factor %d (%d,%d): %v != %v", n, i, j, gf.At(i, j), wf.At(i, j))
				}
			}
		}
	}
}

// TestMetricsSeparateRealFromSimulated is the field-separation audit as an
// executable check: a Dist run reports only measured numbers (wall clock,
// wire bytes) with the simulated cost model at zero, and a QCOO run reports
// only modeled numbers with the measured group at zero. Code reading the
// wrong counter therefore reads zero, never a silently wrong value.
func TestMetricsSeparateRealFromSimulated(t *testing.T) {
	x := cstf.LowRankTensor(11, 1500, 3, 0.01, 40, 30, 20)
	base := cstf.Options{Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 5}

	do := base
	do.Algorithm = cstf.Dist
	do.Dist.LocalWorkers = 2
	dd, err := cstf.Decompose(x, do)
	if err != nil {
		t.Fatal(err)
	}
	m := dd.Metrics
	if m.WallSeconds <= 0 || m.WireBytesSent <= 0 || m.WireBytesRecv <= 0 || m.DistWorkers != 2 {
		t.Fatalf("dist run missing real measurements: %+v", m)
	}
	if m.SimSeconds != 0 || m.RemoteBytes != 0 || m.LocalBytes != 0 || m.Shuffles != 0 || m.Flops != 0 {
		t.Fatalf("dist run leaked simulated metrics: %+v", m)
	}

	qo := base
	qo.Algorithm = cstf.QCOO
	qd, err := cstf.Decompose(x, qo)
	if err != nil {
		t.Fatal(err)
	}
	m = qd.Metrics
	if m.SimSeconds <= 0 || m.RemoteBytes <= 0 {
		t.Fatalf("qcoo run missing simulated metrics: %+v", m)
	}
	if m.WallSeconds != 0 || m.WireBytesSent != 0 || m.WireBytesRecv != 0 || m.DistWorkers != 0 {
		t.Fatalf("qcoo run leaked real-measurement metrics: %+v", m)
	}
}

// TestDistChaosKillThroughPublicAPI drives a real worker kill through the
// public ChaosSpec and checks the run survives with the same factorization.
func TestDistChaosKillThroughPublicAPI(t *testing.T) {
	x := cstf.LowRankTensor(11, 2500, 3, 0.01, 50, 40, 30)
	base := cstf.Options{Rank: 3, MaxIters: 4, NoConvergenceCheck: true, Seed: 5}

	so := base
	so.Algorithm = cstf.Serial
	want, err := cstf.Decompose(x, so)
	if err != nil {
		t.Fatal(err)
	}

	do := base
	do.Algorithm = cstf.Dist
	do.Dist.LocalWorkers = 3
	do.Faults.Chaos = &cstf.ChaosSpec{NodeCrashes: 1, HorizonStages: 8, Seed: 3}
	got, err := cstf.Decompose(x, do)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.WorkerDeaths != 1 {
		t.Fatalf("want one real worker death, got %+v", got.Metrics)
	}
	for i := range want.Fits {
		if math.Float64bits(got.Fits[i]) != math.Float64bits(want.Fits[i]) {
			t.Fatalf("fit[%d] after kill: %v != %v", i, got.Fits[i], want.Fits[i])
		}
	}
}
