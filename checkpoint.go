package cstf

import (
	"context"
	"encoding/gob"
	"fmt"
	"os"

	"cstf/internal/la"
)

// Iteration-granular checkpointing. A checkpoint captures everything CP-ALS
// needs to continue from an iteration boundary — the normalized factor
// matrices, lambda, and the fit history — plus enough identity (algorithm,
// rank, dims, seed) to reject a mismatched resume. Files are written with
// gob encoding to a temp file and renamed into place, so a crash mid-write
// never leaves a truncated checkpoint behind.

// checkpointData is the on-disk checkpoint record.
type checkpointData struct {
	Algorithm string
	Rank      int
	Seed      uint64
	Iter      int // completed ALS iterations (the StartIter to resume with)
	Dims      []int
	Lambda    []float64
	Fits      []float64   // fit after each of the Iter completed iterations
	Factors   [][]float64 // one row-major matrix per mode, Dims[n] x Rank
}

// checkpointFrom snapshots live solver state (which the checkpoint hook only
// borrows) into an owned record.
func checkpointFrom(alg Algorithm, rank int, seed uint64, iter int, dims []int, lambda []float64, factors []*la.Dense, fits []float64) *checkpointData {
	cp := &checkpointData{
		Algorithm: string(alg),
		Rank:      rank,
		Seed:      seed,
		Iter:      iter,
		Dims:      append([]int(nil), dims...),
		Lambda:    la.VecClone(lambda),
		Fits:      append([]float64(nil), fits...),
	}
	for _, f := range factors {
		cp.Factors = append(cp.Factors, la.VecClone(f.Data))
	}
	return cp
}

// writeCheckpoint atomically replaces path with the encoded record.
func writeCheckpoint(path string, cp *checkpointData) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cstf: checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(cp); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cstf: checkpoint encode: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cstf: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cstf: checkpoint: %w", err)
	}
	return nil
}

func readCheckpoint(path string) (*checkpointData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cstf: checkpoint: %w", err)
	}
	defer f.Close()
	cp := &checkpointData{}
	if err := gob.NewDecoder(f).Decode(cp); err != nil {
		return nil, fmt.Errorf("cstf: checkpoint decode %s: %w", path, err)
	}
	return cp, nil
}

// DecomposeResume continues an interrupted run from the checkpoint at path.
// It is DecomposeResumeContext with a background context.
func DecomposeResume(t *Tensor, path string, o Options) (*Decomposition, error) {
	return DecomposeResumeContext(context.Background(), t, path, o)
}

// DecomposeResumeContext loads the checkpoint at path, validates it against
// the tensor and options (algorithm, rank, dims must match), and resumes the
// solve at the checkpointed iteration. The options should match the original
// run; MaxIters still bounds the TOTAL iteration count, so a run
// checkpointed at iteration k executes at most MaxIters-k more. Because ALS
// is a deterministic fixed-point iteration, the resumed run follows the
// original trajectory and reaches the same final fit as an uninterrupted
// solve. With CheckpointEvery/CheckpointPath still set, the resumed run
// keeps checkpointing (typically over the same file).
func DecomposeResumeContext(ctx context.Context, t *Tensor, path string, o Options) (*Decomposition, error) {
	o = o.withDefaults()
	cp, err := readCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if cp.Algorithm != string(o.Algorithm) {
		return nil, fmt.Errorf("cstf: checkpoint is for algorithm %q, options select %q", cp.Algorithm, o.Algorithm)
	}
	if cp.Rank != o.Rank {
		return nil, fmt.Errorf("cstf: checkpoint rank %d != options rank %d", cp.Rank, o.Rank)
	}
	dims := t.Dims()
	if len(cp.Dims) != len(dims) {
		return nil, fmt.Errorf("cstf: checkpoint order %d != tensor order %d", len(cp.Dims), len(dims))
	}
	for n := range dims {
		if cp.Dims[n] != dims[n] {
			return nil, fmt.Errorf("cstf: checkpoint dims %v != tensor dims %v", cp.Dims, dims)
		}
	}
	if len(cp.Factors) != len(dims) || len(cp.Lambda) != cp.Rank || cp.Iter <= 0 {
		return nil, fmt.Errorf("cstf: malformed checkpoint %s", path)
	}
	rs := resumeState{
		startIter: cp.Iter,
		lambda:    cp.Lambda,
		fits:      cp.Fits,
	}
	for n, data := range cp.Factors {
		if len(data) != dims[n]*cp.Rank {
			return nil, fmt.Errorf("cstf: checkpoint factor %d has %d values, want %d", n, len(data), dims[n]*cp.Rank)
		}
		rs.factors = append(rs.factors, la.NewDenseFrom(dims[n], cp.Rank, data))
	}
	return decompose(ctx, t, o, rs)
}
