package cstf

import (
	"context"
	"fmt"

	"cstf/internal/ckpt"
	"cstf/internal/la"
)

// Iteration-granular checkpointing. A checkpoint captures everything CP-ALS
// needs to continue from an iteration boundary — the normalized factor
// matrices, lambda, and the fit history — plus enough identity (algorithm,
// rank, dims, seed) to reject a mismatched resume. The on-disk schema lives
// in internal/ckpt so other consumers (the serving subsystem, future tools)
// read the same format instead of re-parsing gob privately; files are
// written atomically, so a crash mid-write never leaves a truncated
// checkpoint behind.

// checkpointFrom snapshots live solver state (which the checkpoint hook only
// borrows) into an owned record. workers records the distributed fleet size
// that produced the snapshot (0 for serial/simulated runs) — informational
// only, since resume is bitwise-independent of the fleet size.
func checkpointFrom(alg Algorithm, rank, workers int, seed uint64, iter int, dims []int, lambda []float64, factors []*la.Dense, fits []float64) *ckpt.File {
	cp := &ckpt.File{
		Algorithm: string(alg),
		Rank:      rank,
		Seed:      seed,
		Iter:      iter,
		Dims:      append([]int(nil), dims...),
		Lambda:    la.VecClone(lambda),
		Fits:      append([]float64(nil), fits...),
		Workers:   workers,
	}
	for _, f := range factors {
		cp.Factors = append(cp.Factors, la.VecClone(f.Data))
	}
	return cp
}

// writeCheckpoint atomically replaces path with the encoded record.
func writeCheckpoint(path string, cp *ckpt.File) error {
	return ckpt.Write(path, cp)
}

// LoadFactors reads the trained model stored in a checkpoint file — lambda,
// the factor matrices, and the fit history — without needing the original
// tensor. The file is validated (rank, dims, factor sizes must be
// consistent; mismatches return a typed *ckpt.InvalidError) and the result
// is a Decomposition whose Iters/Seed reflect the checkpointed run, ready
// for At/TopK queries or for Decomposition.Server.
func LoadFactors(path string) (*Decomposition, error) {
	cp, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	d := &Decomposition{
		Lambda: cp.Lambda,
		Fits:   cp.Fits,
		Iters:  cp.Iter,
		Seed:   cp.Seed,
	}
	for n, data := range cp.Factors {
		d.Factors = append(d.Factors, &Matrix{d: la.NewDenseFrom(cp.Dims[n], cp.Rank, data)})
	}
	return d, nil
}

// DecomposeResume continues an interrupted run from the checkpoint at path.
// It is DecomposeResumeContext with a background context.
func DecomposeResume(t *Tensor, path string, o Options) (*Decomposition, error) {
	return DecomposeResumeContext(context.Background(), t, path, o)
}

// DecomposeResumeContext loads the checkpoint at path, validates it against
// the tensor and options (algorithm, rank, dims must match), and resumes the
// solve at the checkpointed iteration. The options should match the original
// run; MaxIters still bounds the TOTAL iteration count, so a run
// checkpointed at iteration k executes at most MaxIters-k more. Because ALS
// is a deterministic fixed-point iteration, the resumed run follows the
// original trajectory and reaches the same final fit as an uninterrupted
// solve. With CheckpointEvery/CheckpointPath still set, the resumed run
// keeps checkpointing (typically over the same file).
func DecomposeResumeContext(ctx context.Context, t *Tensor, path string, o Options) (*Decomposition, error) {
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	cp, err := ckpt.Read(path)
	if err != nil {
		return nil, err
	}
	if cp.Algorithm != string(o.Algorithm) {
		return nil, fmt.Errorf("cstf: checkpoint is for algorithm %q, options select %q", cp.Algorithm, o.Algorithm)
	}
	if cp.Rank != o.Rank {
		return nil, fmt.Errorf("cstf: checkpoint rank %d != options rank %d", cp.Rank, o.Rank)
	}
	dims := t.Dims()
	if len(cp.Dims) != len(dims) {
		return nil, fmt.Errorf("cstf: checkpoint order %d != tensor order %d", len(cp.Dims), len(dims))
	}
	for n := range dims {
		if cp.Dims[n] != dims[n] {
			return nil, fmt.Errorf("cstf: checkpoint dims %v != tensor dims %v", cp.Dims, dims)
		}
	}
	if err := cp.Validate(path); err != nil {
		return nil, fmt.Errorf("cstf: malformed checkpoint %s: %w", path, err)
	}
	rs := resumeState{
		startIter: cp.Iter,
		lambda:    cp.Lambda,
		fits:      cp.Fits,
	}
	for n, data := range cp.Factors {
		rs.factors = append(rs.factors, la.NewDenseFrom(dims[n], cp.Rank, data))
	}
	if o.Algorithm == RALS {
		// A bitwise rals resume needs the sampler state: the unnormalized
		// factors (kept rows live at solved-row scale) and the exact
		// sampling schedule, so the resumed run redraws what the original
		// would have. Checkpoints without it (older writers, other
		// algorithms renamed on disk) cannot resume as rals.
		if cp.RALS == nil {
			return nil, fmt.Errorf("cstf: checkpoint %s has no rals sampler state", path)
		}
		rs.ralsResample = cp.RALS.ResampleEvery
		rs.ralsCounts = append([]int(nil), cp.RALS.SampleCounts...)
		for n, data := range cp.RALS.Unnorm {
			rs.unnorm = append(rs.unnorm, la.NewDenseFrom(dims[n], cp.Rank, data))
		}
	}
	if o.Algorithm == NCP {
		// A resumed ncp run restores the saturation bitmaps and the inner
		// pass count, so it skips exactly the elements the original run was
		// skipping. Checkpoints without the state (older writers, other
		// algorithms renamed on disk) cannot resume as ncp.
		if cp.NTF == nil {
			return nil, fmt.Errorf("cstf: checkpoint %s has no ntf saturation state", path)
		}
		rs.ntfInner = cp.NTF.InnerIters
		for _, s := range cp.NTF.Saturated {
			rs.ntfSaturated = append(rs.ntfSaturated, append([]byte(nil), s...))
		}
	}
	return decompose(ctx, t, o, rs)
}
