// cstf factorizes a sparse tensor with CP-ALS using any of the
// implementations in this repository.
//
// Usage:
//
//	cstf -in tensor.tns -algo qcoo -rank 8 -iters 25 -nodes 8
//	cstf -dataset nell1 -scale 1e-4 -algo coo
//	cstf -in tensor.tns -dist-local 4
//	cstf -in tensor.tns -dist host1:9021,host2:9021
//	cstf -in tensor.tns -algo rals -rals-frac 0.05 -rals-resample 5 -rals-polish 6
//	cstf -in train.tns -algo ncp -rank 4 -ntf-inner 2 -checkpoint m.ckpt -checkpoint-every 5
//
// Exactly one of -in (a FROSTT .tns file) or -dataset (a Table 5 dataset
// name; see -list) selects the input. Simulated distributed algorithms
// (coo, qcoo, bigtensor) print the modeled cluster cost summary; -dist and
// -dist-local run the REAL distributed runtime against cstf-worker
// processes and print measured wall clock and bytes on the wire; -algo rals
// runs randomized leverage-score-sampled ALS (see the -rals-* flags);
// -factors writes the factor matrices as .tns-style text files.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"cstf"
)

func main() {
	in := flag.String("in", "", "input tensor in FROSTT .tns format")
	dataset := flag.String("dataset", "", "generate a Table 5 dataset instead of reading a file")
	scale := flag.Float64("scale", 1e-4, "dataset scale when using -dataset")
	list := flag.Bool("list", false, "list available -dataset names and exit")
	algo := flag.String("algo", "qcoo", "algorithm: "+strings.Join(cstf.AlgorithmNames(), "|"))
	distAddrs := flag.String("dist", "", "comma-separated cstf-worker addresses; implies -algo dist")
	distLocal := flag.Int("dist-local", 0, "launch N local workers and run distributed; implies -algo dist")
	distBin := flag.String("dist-worker-bin", "", "cstf-worker binary for -dist-local (default: $CSTF_WORKER_BIN, next to cstf, or $PATH; in-process fallback)")
	distNoDelta := flag.Bool("dist-no-delta", false, "ship full factor matrices every mode-iteration instead of delta broadcasts")
	distNoPipeline := flag.Bool("dist-no-pipeline", false, "make every distributed stage a strict barrier (no gram/MTTKRP overlap)")
	distCSF := flag.Bool("dist-csf", false, "run worker MTTKRPs with the SPLATT CSF kernel (bitwise-matches the serial CSF solver, not the COO one)")
	distMinWorkers := flag.Int("dist-min-workers", 0, "live-worker floor before degrading to a coordinator-local solve (0 = 1; negative makes fleet collapse a hard error)")
	ralsFrac := flag.Float64("rals-frac", 0, "rals: sample this fraction of the nonzeros per mode update (0 with -rals-count unset = 0.1)")
	ralsCount := flag.Int("rals-count", 0, "rals: sample a fixed number of nonzeros per mode update (overrides -rals-frac)")
	ralsResample := flag.Int("rals-resample", 0, "rals: redraw the sampled tensors every N iterations (0 = every iteration)")
	ralsPolish := flag.Int("rals-polish", 0, "rals: run the last N iterations with the exact kernel")
	ralsFinalFit := flag.Bool("rals-final-fit", false, "rals: compute the exact fit only once, after the final iteration")
	ntfInner := flag.Int("ntf-inner", 0, "ncp: coordinate-descent passes per row problem each mode update (0 = default)")
	rank := flag.Int("rank", 8, "decomposition rank R")
	iters := flag.Int("iters", 25, "maximum ALS iterations")
	tol := flag.Float64("tol", 1e-5, "fit-improvement stopping tolerance (0 disables)")
	nodes := flag.Int("nodes", 4, "simulated worker nodes for distributed algorithms")
	seed := flag.Uint64("seed", 42, "deterministic initialization seed")
	parallel := flag.Int("parallel", 0, "worker goroutines for shared-memory kernels (0 = all cores)")
	progress := flag.Bool("progress", false, "print the fit after every ALS iteration")
	factors := flag.String("factors", "", "directory to write factor matrices (optional)")
	trace := flag.String("trace", "", "write a Chrome trace of the modeled execution to this file")
	chaosSpec := flag.String("chaos", "", `inject faults, e.g. "crashes=1,partitions=1,corrupt=1,seed=7" (keys: crashes, disks, partitions, corrupt, torn, stragglers, slow, netdrops, net, horizon, spec, seed)`)
	checkpoint := flag.String("checkpoint", "", "checkpoint file for -checkpoint-every / -resume")
	checkpointEvery := flag.Int("checkpoint-every", 0, "write -checkpoint after every N completed iterations (0 disables)")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file instead of starting fresh")
	flag.Parse()

	if *list {
		fmt.Println("available datasets:", strings.Join(cstf.DatasetNames(), ", "))
		return
	}

	var x *cstf.Tensor
	var err error
	switch {
	case *in != "" && *dataset != "":
		fatal(fmt.Errorf("use either -in or -dataset, not both"))
	case *in != "":
		if strings.HasSuffix(*in, ".bin") {
			x, err = cstf.LoadBinaryTensor(*in)
		} else {
			x, err = cstf.LoadTensor(*in)
		}
	case *dataset != "":
		x, err = cstf.Dataset(*dataset, *scale)
	default:
		fatal(fmt.Errorf("one of -in or -dataset is required (see -h)"))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("input:", x)

	o := cstf.Options{
		Algorithm:   cstf.Algorithm(*algo),
		Rank:        *rank,
		MaxIters:    *iters,
		Tol:         *tol,
		Seed:        *seed,
		Nodes:       *nodes,
		Parallelism: *parallel,
	}
	if *tol == 0 {
		o.NoConvergenceCheck = true
	}
	if *distAddrs != "" || *distLocal > 0 {
		// With -algo rals the workers run the sampled MTTKRPs; any other
		// algorithm choice is overridden by the exact distributed solver.
		if o.Algorithm != cstf.RALS {
			o.Algorithm = cstf.Dist
		}
		if *distAddrs != "" {
			o.Dist.Addrs = strings.Split(*distAddrs, ",")
		}
		o.Dist.LocalWorkers = *distLocal
		o.Dist.WorkerBin = *distBin
		o.Dist.DisableDeltaBroadcast = *distNoDelta
		o.Dist.DisablePipeline = *distNoPipeline
		o.Dist.CSFKernel = *distCSF
		o.Dist.MinWorkers = *distMinWorkers
	}
	o.RALS = cstf.RALSOptions{
		SampleFraction:   *ralsFrac,
		SampleCount:      *ralsCount,
		ResampleEvery:    *ralsResample,
		ExactFinishIters: *ralsPolish,
		FinalFitOnly:     *ralsFinalFit,
	}
	o.NTF = cstf.NTFOptions{InnerIters: *ntfInner}
	if *dataset != "" {
		o.WorkScale = 1 / *scale // report full-scale-equivalent modeled time
	}
	o.TracePath = *trace
	if *chaosSpec != "" {
		cs, err := parseChaos(*chaosSpec)
		if err != nil {
			fatal(err)
		}
		o.Faults.Chaos = cs
	}
	if *checkpointEvery > 0 || *resume {
		if *checkpoint == "" {
			fatal(fmt.Errorf("-checkpoint-every and -resume require -checkpoint"))
		}
	}
	o.Faults.CheckpointEvery = *checkpointEvery
	o.Faults.CheckpointPath = *checkpoint
	if *progress {
		o.OnIteration = func(iter int, fit float64) bool {
			fmt.Printf("iter %3d  fit %.6f\n", iter+1, fit)
			return false
		}
	}

	// Ctrl-C aborts between ALS iterations with a clean error.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var dec *cstf.Decomposition
	if *resume {
		dec, err = cstf.DecomposeResumeContext(ctx, x, *checkpoint, o)
	} else {
		dec, err = cstf.DecomposeContext(ctx, x, o)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm:  %s\n", o.Algorithm)
	fmt.Printf("iterations: %d\n", dec.Iters)
	fmt.Printf("fit:        %.6f\n", dec.Fit())
	fmt.Printf("residual:   %.6f\n", dec.Residual(x))
	fmt.Printf("lambda:     %.4g\n", dec.Lambda)
	if dec.Metrics.DistWorkers > 0 {
		m := dec.Metrics
		fmt.Printf("measured distributed run (%d workers):\n", m.DistWorkers)
		fmt.Printf("  wall time:   %.3f s\n", m.WallSeconds)
		fmt.Printf("  wire sent:   %.2f MB\n", float64(m.WireBytesSent)/1e6)
		fmt.Printf("  wire recv:   %.2f MB\n", float64(m.WireBytesRecv)/1e6)
		fmt.Printf("  shards:      %.2f MB\n", float64(m.WireShardBytes)/1e6)
		fmt.Printf("  factors:     %.2f MB (%d delta frames)\n", float64(m.WireFactorBytes)/1e6, m.WireDeltaFrames)
		if m.FactorResyncs > 0 {
			fmt.Printf("  resyncs:     %d full-factor resends after reassignment\n", m.FactorResyncs)
		}
		if m.WorkerDeaths > 0 {
			fmt.Printf("  worker deaths: %d (reassigned %d tasks, re-sent %d shards)\n",
				m.WorkerDeaths, m.TaskReassignments, m.ShardResends)
		}
		if m.WorkerRejoins > 0 {
			fmt.Printf("  worker rejoins: %d\n", m.WorkerRejoins)
		}
		if m.CorruptFrames > 0 {
			fmt.Printf("  corrupt frames: %d rejected by checksum\n", m.CorruptFrames)
		}
		if m.DistDegraded {
			fmt.Println("  degraded:    fleet collapsed; finished coordinator-local (bitwise identical)")
		}
	}
	if dec.Metrics.SimSeconds > 0 {
		m := dec.Metrics
		fmt.Printf("modeled cluster cost (%d nodes):\n", *nodes)
		fmt.Printf("  time:          %.1f s\n", m.SimSeconds)
		fmt.Printf("  remote shuffle: %.2f MB\n", m.RemoteBytes/1e6)
		fmt.Printf("  local shuffle:  %.2f MB\n", m.LocalBytes/1e6)
		fmt.Printf("  shuffles:       %d\n", m.Shuffles)
		if m.HadoopJobs > 0 {
			fmt.Printf("  hadoop jobs:    %d\n", m.HadoopJobs)
		}
		if m.NodeCrashes > 0 || m.DiskFailures > 0 || m.TaskFailures > 0 ||
			m.StragglerStages > 0 || m.CheckpointSeconds > 0 {
			fmt.Println("fault tolerance:")
			if m.NodeCrashes > 0 {
				fmt.Printf("  node crashes:    %d (lost cache %.2f MB)\n", m.NodeCrashes, m.LostCacheBytes/1e6)
			}
			if m.DiskFailures > 0 {
				fmt.Printf("  disk failures:   %d\n", m.DiskFailures)
			}
			if m.RecomputedPartitions > 0 {
				fmt.Printf("  recomputed:      %d partitions from lineage\n", m.RecomputedPartitions)
			}
			if m.ReReplicatedBytes > 0 {
				fmt.Printf("  re-replicated:   %.2f MB\n", m.ReReplicatedBytes/1e6)
			}
			if m.TaskFailures > 0 {
				fmt.Printf("  task retries:    %d (stage retries %d)\n", m.TaskFailures, m.StageRetries)
			}
			if m.StragglerStages > 0 {
				fmt.Printf("  straggler stages: %d (speculative tasks %d)\n", m.StragglerStages, m.SpeculativeTasks)
			}
			if m.RecoverySeconds > 0 {
				fmt.Printf("  recovery time:   %.1f s\n", m.RecoverySeconds)
			}
			if m.CheckpointSeconds > 0 {
				fmt.Printf("  checkpoint time: %.1f s\n", m.CheckpointSeconds)
			}
		}
	}

	if *factors != "" {
		if err := os.MkdirAll(*factors, 0o755); err != nil {
			fatal(err)
		}
		for n, f := range dec.Factors {
			path := filepath.Join(*factors, fmt.Sprintf("mode-%d.txt", n+1))
			if err := writeFactor(path, f); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", path)
		}
	}
}

// parseChaos parses the -chaos "key=value,key=value" spec.
func parseChaos(s string) (*cstf.ChaosSpec, error) {
	cs := &cstf.ChaosSpec{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("-chaos: %q is not key=value", kv)
		}
		var err error
		switch k {
		case "crashes":
			_, err = fmt.Sscanf(v, "%d", &cs.NodeCrashes)
		case "disks":
			_, err = fmt.Sscanf(v, "%d", &cs.DiskFailures)
		case "partitions":
			_, err = fmt.Sscanf(v, "%d", &cs.NetPartitions)
		case "corrupt":
			_, err = fmt.Sscanf(v, "%d", &cs.FrameCorrupts)
		case "torn":
			_, err = fmt.Sscanf(v, "%d", &cs.TornWrites)
		case "stragglers":
			_, err = fmt.Sscanf(v, "%d", &cs.Stragglers)
		case "slow":
			_, err = fmt.Sscanf(v, "%g", &cs.StragglerFactor)
		case "netdrops":
			_, err = fmt.Sscanf(v, "%d", &cs.NetDrops)
		case "net":
			_, err = fmt.Sscanf(v, "%g", &cs.NetFactor)
		case "horizon":
			_, err = fmt.Sscanf(v, "%d", &cs.HorizonStages)
		case "spec":
			_, err = fmt.Sscanf(v, "%g", &cs.Speculation)
		case "seed":
			_, err = fmt.Sscanf(v, "%d", &cs.Seed)
		default:
			return nil, fmt.Errorf("-chaos: unknown key %q", k)
		}
		if err != nil {
			return nil, fmt.Errorf("-chaos: bad value for %q: %v", k, err)
		}
	}
	return cs, nil
}

func writeFactor(path string, f *cstf.Matrix) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	for i := 0; i < f.Rows(); i++ {
		fmt.Fprintf(out, "%d", i+1)
		for j := 0; j < f.Cols(); j++ {
			fmt.Fprintf(out, " %g", f.At(i, j))
		}
		fmt.Fprintln(out)
	}
	return out.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf:", err)
	os.Exit(1)
}
