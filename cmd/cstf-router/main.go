// cstf-router fronts a fleet of cstf-serve replicas with a stateless
// query router: consistent-hash cache affinity (or sharded scatter-gather),
// health-checked failover, and zero-drop rolling reloads. It serves the
// same HTTP query surface as a single replica, so clients point at the
// router and cannot tell one node from a fleet.
//
// Against an external fleet (each replica a cstf-serve process):
//
//	cstf-serve -model model.ckpt -addr :8081 &
//	cstf-serve -model model.ckpt -addr :8082 &
//	cstf-router -replicas localhost:8081,localhost:8082 -addr :8080
//	curl 'localhost:8080/topk?mode=1&row=7&k=10'
//	curl -X POST localhost:8080/reloadz   # roll a new model.ckpt across the fleet
//
// Against an in-process fleet on loopback ports (one machine, no extra
// processes — for demos and benchmarks):
//
//	cstf-router -model model.ckpt -local 4 -addr :8080
//
// -smoke runs a self-contained end-to-end check and exits: boot a local
// fleet, drive a closed-loop query burst through the router, roll a reload
// across every replica mid-burst, and fail unless zero queries dropped and
// every replica came back on the new model version.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"cstf/internal/fleet"
	"cstf/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	replicas := flag.String("replicas", "", "comma-separated replica host:port list (external fleet)")
	local := flag.Int("local", 0, "start N in-process replicas from -model instead of -replicas")
	model := flag.String("model", "", "checkpoint for -local replicas (and their /reloadz path)")
	shard := flag.Bool("shard", false, "scatter-gather ranked queries across the fleet instead of affinity routing")
	probe := flag.Duration("probe", 250*time.Millisecond, "replica health-check interval")
	timeout := flag.Duration("timeout", 5*time.Second, "per-replica call timeout")
	cache := flag.Int("cache", 0, "local replicas: LRU cache entries (0 = default, negative disables)")
	workers := flag.Int("workers", 0, "local replicas: goroutines per scan (0 = all cores)")
	approx := flag.Bool("approx", false, "local replicas: serve full-mode TopK from the approximate index")
	smoke := flag.Bool("smoke", false, "run the fleet smoke check (local fleet + load + rolling reload) and exit")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cstf-router: "+format+"\n", args...)
	}

	var members []fleet.Replica
	var lf *fleet.LocalFleet
	switch {
	case *smoke:
		if err := runSmoke(*model, logf); err != nil {
			logf("SMOKE FAILED: %v", err)
			os.Exit(1)
		}
		logf("smoke ok")
		return
	case *local > 0:
		if *model == "" {
			fatal(errors.New("-local needs -model"))
		}
		var err error
		lf, err = fleet.StartLocal(*local, func(int) (*serve.Model, error) {
			return serve.LoadCheckpoint(*model)
		}, serve.Config{CacheSize: *cache, Workers: *workers, Approx: *approx},
			serve.HandlerConfig{ReloadPath: *model})
		if err != nil {
			fatal(err)
		}
		defer lf.Close()
		members = lf.Configs()
		logf("started %d local replicas from %s", *local, *model)
	case *replicas != "":
		for _, a := range strings.Split(*replicas, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			members = append(members, fleet.Replica{Name: a, URL: "http://" + a})
		}
	default:
		fatal(errors.New("need -replicas, -local N, or -smoke"))
	}

	rt, err := fleet.New(fleet.Config{
		Replicas:      members,
		Shard:         *shard,
		ProbeInterval: *probe,
		Timeout:       *timeout,
		Logf:          logf,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSig()

	srv := &http.Server{Addr: *addr, Handler: fleet.NewHandler(rt)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logf("routing %d replicas (shard=%v) on %s", len(members), *shard, *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		logf("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
	}
}

// runSmoke is the end-to-end fleet check `make fleet-smoke` runs: a local
// 2-replica fleet takes a closed-loop query burst through the router while
// a rolling reload crosses every replica; zero dropped queries and a fleet
// uniformly on the new model version are the pass conditions. With no
// -model, a tiny deterministic checkpoint is synthesized in a temp dir.
func runSmoke(model string, logf func(string, ...any)) error {
	const n = 2
	if model == "" {
		dir, err := os.MkdirTemp("", "fleet-smoke")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		model = dir + "/model.ckpt"
		if err := serve.WriteDemoCheckpoint(model, 3, 1, 2000, 500, 100); err != nil {
			return err
		}
	}

	lf, err := fleet.StartLocal(n, func(int) (*serve.Model, error) {
		return serve.LoadCheckpoint(model)
	}, serve.Config{}, serve.HandlerConfig{ReloadPath: model})
	if err != nil {
		return err
	}
	defer lf.Close()
	rt, err := fleet.New(fleet.Config{
		Replicas:      lf.Configs(),
		ProbeInterval: 20 * time.Millisecond,
		Timeout:       5 * time.Second,
		Logf:          logf,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	startIter := lf.Replicas[0].Server.Model().Iter
	if err := serve.WriteDemoCheckpoint(model, 3, startIter+1, 2000, 500, 100); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var stats serve.LoadStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats = serve.RunLoad(ctx, rt, serve.LoadOptions{Clients: 4, Requests: 1 << 20, Seed: 7})
	}()

	time.Sleep(50 * time.Millisecond)
	if err := rt.RollingReload(context.Background()); err != nil {
		cancel()
		wg.Wait()
		return fmt.Errorf("rolling reload: %w", err)
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	wg.Wait()

	if stats.Requests == 0 {
		return errors.New("load generator completed no requests")
	}
	if stats.Errors > 0 || stats.Shed > 0 {
		return fmt.Errorf("dropped queries during rolling reload: %d errors, %d shed (of %d)",
			stats.Errors, stats.Shed, stats.Requests)
	}
	st := rt.Stats()
	if st.Reload.Done != n {
		return fmt.Errorf("reload finished %d of %d replicas", st.Reload.Done, n)
	}
	for _, r := range lf.Replicas {
		if got := r.Server.Model().Iter; got != startIter+1 {
			return fmt.Errorf("replica %s on iter %d after roll, want %d", r.Name, got, startIter+1)
		}
	}
	logf("smoke: %d queries through the rolling reload, 0 dropped, fleet on iter %d",
		stats.Requests, startIter+1)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf-router:", err)
	os.Exit(1)
}
