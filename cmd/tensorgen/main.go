// tensorgen writes synthetic sparse tensors in FROSTT .tns format.
//
// Usage:
//
//	tensorgen -out x.tns -dims 1000,800,600 -nnz 50000            # uniform
//	tensorgen -out x.tns -dims 1000,800,600 -nnz 50000 -zipf 0.8  # skewed
//	tensorgen -out x.tns -dataset delicious3d -scale 1e-4         # Table 5
//	tensorgen -out x.tns -dims 100,100,100 -nnz 20000 -rank 4 -noise 0.05
//	tensorgen -out train.tns -recsys -users 500 -items 300 -contexts 4 \
//	    -groups 4 -nnz 40000                                      # recommender
//
// -recsys generates a (users x items x contexts) implicit-feedback tensor
// with planted per-user preference structure, carves a deterministic
// per-user leave-out split, writes the TRAINING tensor to -out and the
// held-out interactions to -holdout (default: -out with a ".holdout"
// suffix before the extension). Training a nonnegative factorization on
// the training file and scoring HR@K/NDCG@K against the held-out file is
// exactly what `cstf-bench -exp recsys` and the internal/rank tests do —
// they share the split by sharing the seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cstf"
)

func main() {
	out := flag.String("out", "", "output .tns path (required)")
	dimsArg := flag.String("dims", "", "comma-separated mode sizes, e.g. 1000,800,600")
	nnz := flag.Int("nnz", 100000, "approximate nonzero count")
	zipf := flag.Float64("zipf", 0, "Zipf skew exponent in (0,1); 0 = uniform")
	rank := flag.Int("rank", 0, "plant a low-rank CP model of this rank (0 = random values)")
	noise := flag.Float64("noise", 0, "Gaussian noise level for -rank")
	dataset := flag.String("dataset", "", "generate a Table 5 dataset (overrides -dims/-nnz)")
	scale := flag.Float64("scale", 1e-4, "dataset scale for -dataset")
	format := flag.String("format", "tns", "output format: tns (FROSTT text) or bin (CSTFBIN1)")
	seed := flag.Uint64("seed", 1, "generation seed")
	recsys := flag.Bool("recsys", false, "generate a recommender tensor with a held-out split (see -users/-items/-contexts/-groups/-holdout)")
	users := flag.Int("users", 500, "recsys: user mode size")
	items := flag.Int("items", 300, "recsys: item mode size")
	contexts := flag.Int("contexts", 4, "recsys: context mode size")
	groups := flag.Int("groups", 4, "recsys: planted interest groups (also the natural factorization rank)")
	holdout := flag.String("holdout", "", "recsys: held-out output path (default: -out with a .holdout suffix)")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	if *recsys {
		genRecsys(*out, *holdout, *format, *seed, *nnz, *users, *items, *contexts, *groups, *noise)
		return
	}

	var x *cstf.Tensor
	var err error
	switch {
	case *dataset != "":
		x, err = cstf.Dataset(*dataset, *scale)
	case *dimsArg != "":
		dims, derr := parseDims(*dimsArg)
		if derr != nil {
			fatal(derr)
		}
		switch {
		case *rank > 0:
			x = cstf.LowRankTensor(*seed, *nnz, *rank, *noise, dims...)
		case *zipf > 0:
			x = cstf.ZipfTensor(*seed, *nnz, *zipf, dims...)
		default:
			x = cstf.RandomTensor(*seed, *nnz, dims...)
		}
	default:
		fatal(fmt.Errorf("one of -dims or -dataset is required"))
	}
	if err != nil {
		fatal(err)
	}

	if err := save(x, *out, *format); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, x)
}

// genRecsys generates the recommender workload and writes the training
// tensor and its held-out split as two files sharing one seed.
func genRecsys(out, holdout, format string, seed uint64, nnz, users, items, contexts, groups int, noise float64) {
	x := cstf.RecsysTensor(seed, nnz, users, items, contexts, groups, noise)
	train, held, err := cstf.SplitHoldout(x, seed, 0)
	if err != nil {
		fatal(err)
	}
	if holdout == "" {
		holdout = holdoutPath(out)
	}
	if err := save(train, out, format); err != nil {
		fatal(err)
	}
	if err := save(held, holdout, format); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", out, train)
	fmt.Printf("wrote %s: %s (held-out)\n", holdout, held)
}

// holdoutPath derives the default held-out path: train.tns -> train.holdout.tns.
func holdoutPath(out string) string {
	if ext := filepath.Ext(out); ext != "" {
		return strings.TrimSuffix(out, ext) + ".holdout" + ext
	}
	return out + ".holdout"
}

func save(x *cstf.Tensor, path, format string) error {
	switch format {
	case "tns":
		return x.Save(path)
	case "bin":
		return x.SaveBinary(path)
	default:
		return fmt.Errorf("unknown format %q (tns or bin)", format)
	}
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad mode size %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}
