// tensorgen writes synthetic sparse tensors in FROSTT .tns format.
//
// Usage:
//
//	tensorgen -out x.tns -dims 1000,800,600 -nnz 50000            # uniform
//	tensorgen -out x.tns -dims 1000,800,600 -nnz 50000 -zipf 0.8  # skewed
//	tensorgen -out x.tns -dataset delicious3d -scale 1e-4         # Table 5
//	tensorgen -out x.tns -dims 100,100,100 -nnz 20000 -rank 4 -noise 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cstf"
)

func main() {
	out := flag.String("out", "", "output .tns path (required)")
	dimsArg := flag.String("dims", "", "comma-separated mode sizes, e.g. 1000,800,600")
	nnz := flag.Int("nnz", 100000, "approximate nonzero count")
	zipf := flag.Float64("zipf", 0, "Zipf skew exponent in (0,1); 0 = uniform")
	rank := flag.Int("rank", 0, "plant a low-rank CP model of this rank (0 = random values)")
	noise := flag.Float64("noise", 0, "Gaussian noise level for -rank")
	dataset := flag.String("dataset", "", "generate a Table 5 dataset (overrides -dims/-nnz)")
	scale := flag.Float64("scale", 1e-4, "dataset scale for -dataset")
	format := flag.String("format", "tns", "output format: tns (FROSTT text) or bin (CSTFBIN1)")
	seed := flag.Uint64("seed", 1, "generation seed")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}

	var x *cstf.Tensor
	var err error
	switch {
	case *dataset != "":
		x, err = cstf.Dataset(*dataset, *scale)
	case *dimsArg != "":
		dims, derr := parseDims(*dimsArg)
		if derr != nil {
			fatal(derr)
		}
		switch {
		case *rank > 0:
			x = cstf.LowRankTensor(*seed, *nnz, *rank, *noise, dims...)
		case *zipf > 0:
			x = cstf.ZipfTensor(*seed, *nnz, *zipf, dims...)
		default:
			x = cstf.RandomTensor(*seed, *nnz, dims...)
		}
	default:
		fatal(fmt.Errorf("one of -dims or -dataset is required"))
	}
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "tns":
		err = x.Save(*out)
	case "bin":
		err = x.SaveBinary(*out)
	default:
		err = fmt.Errorf("unknown format %q (tns or bin)", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, x)
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad mode size %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}
