// cstf-model is the what-if tool: it predicts per-iteration cost (shuffle
// operations, shuffled bytes, modeled runtime) for CSTF-COO, CSTF-QCOO and
// BIGtensor from the closed-form analytic model in internal/perfmodel —
// without running the algorithms — and can optionally cross-check the
// prediction against the simulator.
//
// Usage:
//
//	cstf-model -dataset nell1 -scale 1e-4 -rank 2 -nodes 4,8,16,32
//	cstf-model -dims 100000,80000,60000 -nnz 1000000 -rank 8 -nodes 8
//	cstf-model -dataset delicious3d -scale 1e-4 -nodes 8 -simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cstf/internal/bigtensor"
	"cstf/internal/cluster"
	"cstf/internal/core"
	"cstf/internal/mapreduce"
	"cstf/internal/perfmodel"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
	"cstf/internal/workload"
)

func main() {
	dataset := flag.String("dataset", "", "Table 5 dataset name")
	scale := flag.Float64("scale", 1e-4, "dataset scale for -dataset")
	dimsArg := flag.String("dims", "", "comma-separated mode sizes (alternative to -dataset)")
	nnz := flag.Int("nnz", 100000, "nonzero count for -dims")
	zipf := flag.Float64("zipf", 0, "fiber skew for -dims (0 = uniform)")
	rank := flag.Int("rank", 2, "decomposition rank")
	nodesArg := flag.String("nodes", "4,8,16,32", "comma-separated node counts")
	simulate := flag.Bool("simulate", false, "also run one simulated iteration and report prediction error")
	flag.Parse()

	var x *tensor.COO
	switch {
	case *dataset != "":
		cfg, err := workload.ByName(*dataset)
		if err != nil {
			fatal(err)
		}
		x = cfg.Generate(*scale)
	case *dimsArg != "":
		dims, err := parseInts(*dimsArg)
		if err != nil {
			fatal(err)
		}
		if *zipf > 0 {
			x = tensor.GenZipf(1, *nnz, *zipf, dims...)
		} else {
			x = tensor.GenUniform(1, *nnz, dims...)
		}
	default:
		fatal(fmt.Errorf("one of -dataset or -dims is required"))
	}
	nodesList, err := parseInts(*nodesArg)
	if err != nil {
		fatal(err)
	}
	p := cluster.CometProfile()
	fmt.Printf("workload: order=%d dims=%v nnz=%d rank=%d\n\n", x.Order(), x.Dims, x.NNZ(), *rank)
	fmt.Printf("%-6s %-10s %10s %14s %12s\n", "nodes", "algo", "shuffles", "bytes/iter", "s/iter")

	for _, nodes := range nodesList {
		parts := nodes * p.CoresPerNode
		w := perfmodel.WorkloadOf(x, *rank, nodes, parts)
		preds := map[string]perfmodel.Prediction{
			"COO":  perfmodel.PredictCOO(w, p),
			"QCOO": perfmodel.PredictQCOO(w, p),
		}
		if x.Order() == 3 {
			if bp, err := perfmodel.PredictBigtensor(w, p); err == nil {
				preds["BIGtensor"] = bp
			}
		}
		for _, name := range []string{"COO", "QCOO", "BIGtensor"} {
			pr, ok := preds[name]
			if !ok {
				continue
			}
			fmt.Printf("%-6d %-10s %10d %14.3g %12.1f\n", nodes, name, pr.Shuffles, pr.ShuffleBytes, pr.Seconds)
			if *simulate {
				sh, by, sec := simulateOne(name, x, *rank, nodes, parts, p)
				fmt.Printf("%-6s %-10s %10d %14.3g %12.1f   (simulated; pred/sim time %.2f)\n",
					"", "  `-sim", sh, by, sec, pr.Seconds/sec)
			}
		}
	}
}

func simulateOne(algo string, x *tensor.COO, rank, nodes, parts int, p cluster.Profile) (int, float64, float64) {
	c := cluster.New(nodes, p)
	run := func(step func(n int)) (int, float64, float64) {
		for n := 0; n < x.Order(); n++ {
			step(n)
		}
		before := c.Metrics()
		for n := 0; n < x.Order(); n++ {
			step(n)
		}
		d := c.Metrics().Sub(before)
		return d.TotalShuffles(), d.TotalRemoteBytes() + d.TotalLocalBytes(), d.TotalSimTime()
	}
	switch algo {
	case "COO":
		s := core.NewCOOState(rdd.NewContext(c, parts), x, rank, 1)
		return run(s.Step)
	case "QCOO":
		s := core.NewQCOOState(rdd.NewContext(c, parts), x, rank, 1)
		return run(s.Step)
	default:
		s, err := bigtensor.New(mapreduce.NewEnv(c, parts), x, rank, 1)
		if err != nil {
			fatal(err)
		}
		return run(s.Step)
	}
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf-model:", err)
	os.Exit(1)
}
