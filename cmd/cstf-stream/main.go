// cstf-stream runs the streaming side of the system: it ingests a stream of
// tensor nonzeros, merges them into a resident COO tensor in bounded
// micro-batch windows, refreshes the CP factors incrementally (touched rows
// only, with a periodic warm full sweep to bound drift), and publishes each
// refreshed model as a new checkpoint version that a watching `cstf-serve
// -watch` instance hot-reloads.
//
// Two sources:
//
//	cstf-stream -source synthetic -dims 2000,1500,1000 -nnz 20000 -windows 8 -model model.ckpt
//	    trains an initial model on the first -nnz events of a seeded planted
//	    stream, then streams -windows more windows through the updater.
//
//	cstf-stream -source tail -follow events.tns -model model.ckpt -windows 0
//	    loads events.tns (plain or .tns.gz), trains the initial model on it,
//	    then tails the file: lines appended by producers stream into the
//	    model until interrupted (windows 0 = run until Ctrl-C).
//
// Pair it with the server to close the loop:
//
//	cstf-serve -model model.ckpt -watch 100ms &
//	cstf-stream -source tail -follow events.tns -model model.ckpt
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"cstf/internal/cpals"
	"cstf/internal/stream"
	"cstf/internal/tensor"
)

func main() {
	model := flag.String("model", "", "checkpoint path to publish versions to (required)")
	source := flag.String("source", "synthetic", "event source: synthetic|tail")
	follow := flag.String("follow", "", "append-only .tns log to tail (required for -source tail)")
	dimsArg := flag.String("dims", "2000,1500,1000", "initial tensor shape for -source synthetic")
	nnz := flag.Int("nnz", 20000, "nonzeros for the initial batch training (synthetic source)")
	rank := flag.Int("rank", 4, "decomposition rank")
	trainIters := flag.Int("train-iters", 5, "batch ALS iterations for the initial model")
	window := flag.Int("window", 1024, "events per delta window")
	windows := flag.Int("windows", 8, "windows to stream before exiting (0 = until source ends or Ctrl-C)")
	publishEvery := flag.Int("publish-every", 1, "publish a checkpoint version every Nth window (negative disables)")
	fullSweepEvery := flag.Int("full-sweep-every", 4, "warm full ALS sweep every Nth window to bound drift (0 disables)")
	queueDepth := flag.Int("queue", 8192, "ingest queue depth")
	policyArg := flag.String("policy", "block", "queue policy when full: block|drop")
	grow := flag.Int("grow-every", 0, "synthetic source grows a mode every N events (0 = static dims)")
	noise := flag.Float64("noise", 0.05, "value noise of the synthetic planted stream")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	workers := flag.Int("workers", 0, "update parallelism (0 = all cores)")
	quiet := flag.Bool("quiet", false, "suppress per-window status lines")
	flag.Parse()

	if *model == "" {
		fatal(errors.New("-model is required (the checkpoint path served by cstf-serve -watch)"))
	}
	var policy stream.Policy
	switch *policyArg {
	case "block":
		policy = stream.Block
	case "drop":
		policy = stream.DropNewest
	default:
		fatal(fmt.Errorf("unknown -policy %q (want block or drop)", *policyArg))
	}

	// Build the source and the initial resident tensor.
	var (
		src stream.Source
		x   *tensor.COO
	)
	switch *source {
	case "synthetic":
		dims, err := parseDims(*dimsArg)
		if err != nil {
			fatal(err)
		}
		total := *nnz
		if *windows > 0 {
			total += *windows * *window
		}
		syn, err := stream.NewSynthetic(stream.SyntheticConfig{
			Seed: *seed, Dims: dims, Rank: *rank,
			Noise: *noise, Total: total, GrowEvery: *grow,
		})
		if err != nil {
			fatal(err)
		}
		first, err := syn.Next(*nnz)
		if err != nil {
			fatal(err)
		}
		x = tensor.New(syn.Dims()...)
		x.Entries = append([]tensor.Entry(nil), first...)
		x.DedupSum()
		src = syn
	case "tail":
		if *follow == "" {
			fatal(errors.New("-source tail requires -follow <events.tns>"))
		}
		var err error
		x, err = tensor.LoadTNSFile(*follow)
		if err != nil {
			fatal(err)
		}
		tail, err := stream.NewTail(*follow, true) // only NEW appends stream
		if err != nil {
			fatal(err)
		}
		defer tail.Close()
		src = tail
	default:
		fatal(fmt.Errorf("unknown -source %q (want synthetic or tail)", *source))
	}

	fmt.Fprintf(os.Stderr, "cstf-stream: training initial model: %d nnz, dims %v, rank %d, %d iters\n",
		x.NNZ(), x.Dims, *rank, *trainIters)
	res, err := cpals.Solve(x, cpals.Options{Rank: *rank, MaxIters: *trainIters, Seed: *seed, Parallelism: *workers})
	if err != nil {
		fatal(err)
	}
	u, err := stream.NewUpdaterFromResult(x, res, *seed, *workers)
	if err != nil {
		fatal(err)
	}
	pub := stream.NewPublisher(*model, *seed)
	if _, err := pub.Publish(u, res.Fit()); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cstf-stream: published v%d to %s (fit %.4f); streaming...\n",
		pub.Version(), *model, res.Fit())

	p, err := stream.NewPipeline(src, u, pub, stream.Config{
		WindowSize:     *window,
		PublishEvery:   *publishEvery,
		FullSweepEvery: *fullSweepEvery,
		MaxWindows:     *windows,
		Queue:          stream.QueueConfig{Depth: *queueDepth, Policy: policy},
		OnWindow: func(ws stream.WindowStats) {
			if *quiet {
				return
			}
			sweep := ""
			if ws.FullSweep {
				sweep = fmt.Sprintf("  full sweep fit %.4f", ws.Fit)
			}
			ver := "unpublished"
			if ws.Version > 0 {
				ver = fmt.Sprintf("v%d, lag %.1fms", ws.Version, ws.LagMs)
			}
			fmt.Fprintf(os.Stderr, "cstf-stream: window %d: %d events, %d rows touched, %.1fms (%s)%s\n",
				ws.Window, ws.Update.Events, ws.Update.TouchedRows, ws.Update.DurationMs, ver, sweep)
		},
	})
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := p.Run(ctx); err != nil {
		fatal(err)
	}
	met := p.Metrics()
	fmt.Fprintf(os.Stderr, "cstf-stream: done: %d windows, %d events, %d versions published, %d full sweeps, final fit %.4f, dims %v, %d nnz\n",
		met.Windows, met.Events, met.Published, met.FullSweeps, u.Fit(), u.Dims(), u.Tensor().NNZ())
	if met.Queue.Dropped > 0 {
		fmt.Fprintf(os.Stderr, "cstf-stream: WARNING: shed %d events at the ingest queue (depth %d, policy %s)\n",
			met.Queue.Dropped, *queueDepth, policy)
	}
}

func parseDims(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad mode size %q", p)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf-stream:", err)
	os.Exit(1)
}
