// cstf-bench regenerates the paper's evaluation: every figure and table of
// Section 6, as text reports and CSV files.
//
// Usage:
//
//	cstf-bench -list               # list experiments with descriptions
//	cstf-bench -exp all            # everything (default)
//	cstf-bench -exp fig2           # one experiment (see -list for names)
//	cstf-bench -exp serve          # train, checkpoint, serve, load-test (writes BENCH_serve.json)
//	cstf-bench -exp stream         # streaming ingest + incremental updates (writes BENCH_stream.json)
//	cstf-bench -exp dist           # real TCP workers vs single-process (writes BENCH_dist.json)
//	cstf-bench -exp rals           # sampled vs exact ALS budget sweep (writes BENCH_rals.json)
//	cstf-bench -exp recsys         # recommender: ncp vs cpals vs popularity (writes BENCH_recsys.json)
//	cstf-bench -scale 1e-3         # dataset scale (fraction of Table 5 sizes)
//	cstf-bench -rank 2             # decomposition rank (paper: 2)
//	cstf-bench -out results        # directory for CSV output ("" disables)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cstf/internal/experiments"
	"cstf/internal/workload"
)

func main() {
	// The experiment registry (names, descriptions, run order) lives in
	// internal/experiments so -list, the -exp usage text, and the run
	// order cannot drift from the benchmarks themselves.
	registry := experiments.Experiments()
	names := make([]string, 0, len(registry)+1)
	names = append(names, "all")
	for _, e := range registry {
		names = append(names, e.Name)
	}
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(names, "|"))
	scale := flag.Float64("scale", 1e-3, "dataset scale in (0, 1]")
	rank := flag.Int("rank", 2, "decomposition rank")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	out := flag.String("out", "results", "directory for CSV output (empty to skip)")
	list := flag.Bool("list", false, "list experiments with one-line descriptions and exit")
	flag.Parse()

	if *list {
		for _, e := range registry {
			fmt.Printf("%-10s %s\n", e.Name, e.Desc)
		}
		return
	}

	p := experiments.DefaultParams()
	p.Scale = *scale
	p.Rank = *rank
	p.Seed = *seed

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}
	writeCSV := func(name, data string) {
		if *out == "" {
			return
		}
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if *exp == "json" {
		rep, err := experiments.RunAll(p)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
			return
		}
		path := filepath.Join(*out, "report.json")
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	if run("table5") {
		ran = true
		fmt.Println(experiments.RenderTable5(experiments.Table5(p)))
	}
	if run("table4") {
		ran = true
		rows, err := experiments.Table4(p)
		if err != nil {
			fatal(err)
		}
		cfg, _ := workload.ByName("delicious3d")
		fmt.Println(experiments.RenderTable4(rows, cfg.ScaledNNZ(p.Scale), p.Rank))
	}
	if run("fig2") {
		ran = true
		rows, err := experiments.Fig2(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFig2(rows))
		writeCSV("fig2.csv", experiments.CSVFig2(rows))
	}
	if run("fig3") {
		ran = true
		rows, err := experiments.Fig3(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFig3(rows))
		writeCSV("fig3.csv", experiments.CSVFig3(rows))
	}
	if run("fig4") {
		ran = true
		res, err := experiments.Fig4(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFig4(res, p.Scale))
	}
	if run("fig5") {
		ran = true
		rows, err := experiments.Fig5(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFig5(rows))
	}
	if run("ablations") {
		ran = true
		caching, err := experiments.AblationCaching(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationCaching(caching))
		gram, err := experiments.AblationGramReuse(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationGramReuse(gram))
		ranks, err := experiments.AblationRankSweep(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationRankSweep(ranks))
		orders, err := experiments.AblationOrderSweep(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationOrderSweep(orders))
		res, err := experiments.ResilienceSweep(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderResilience(res))
		parts, err := experiments.AblationPartitions(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderAblationPartitions(parts))
	}
	if run("faults") {
		ran = true
		crashes, err := experiments.CrashSweep(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderCrashSweep(crashes))
		stragglers, err := experiments.StragglerSweep(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderStragglerSweep(stragglers))
		checkpoints, err := experiments.CheckpointSweep(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderCheckpointSweep(checkpoints))
		faults, err := experiments.FaultsBench(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderFaultsBench(faults))
		if *out != "" {
			path := filepath.Join(*out, "BENCH_faults.json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := faults.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if run("serve") {
		ran = true
		rep, err := experiments.ServeBench(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderServeBench(rep))
		fleetRep, err := experiments.FleetBench(p)
		if err != nil {
			fatal(err)
		}
		rep.Fleet = fleetRep
		fmt.Println(experiments.RenderFleetBench(fleetRep))
		if *out != "" {
			path := filepath.Join(*out, "BENCH_serve.json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if run("stream") {
		ran = true
		rep, err := experiments.StreamBench(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderStreamBench(rep))
		if *out != "" {
			path := filepath.Join(*out, "BENCH_stream.json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if run("dist") {
		ran = true
		rep, err := experiments.DistBench(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderDistBench(rep))
		if *out != "" {
			path := filepath.Join(*out, "BENCH_dist.json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if run("rals") {
		ran = true
		rep, err := experiments.RALSBench(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderRALSBench(rep))
		if *out != "" {
			path := filepath.Join(*out, "BENCH_rals.json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if run("recsys") {
		ran = true
		rep, err := experiments.RecsysBench(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(experiments.RenderRecsysBench(rep))
		if *out != "" {
			path := filepath.Join(*out, "BENCH_recsys.json")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := rep.WriteJSON(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown experiment %q (see -list)", *exp))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf-bench:", err)
	os.Exit(1)
}
