// Command cstf-worker is the distributed CP-ALS worker: it listens on a
// TCP address and executes tasks (partial MTTKRP, gram blocks, row solves,
// fit partials) for a cstf coordinator. Start one per machine or core
// group, then point `cstf -dist host:port,...` at them; `cstf -dist-local N`
// forks N of these automatically.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"cstf/internal/dist"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on (port 0 picks an ephemeral port)")
	quiet := flag.Bool("quiet", false, "suppress per-session log lines")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cstf-worker: listen %s: %v\n", *listen, err)
		os.Exit(1)
	}
	// The banner announces the resolved address; cstf -dist-local parses it.
	fmt.Println(dist.Banner(ln.Addr().String()))

	w := dist.NewWorker()
	if !*quiet {
		w.Logf = log.New(os.Stderr, "", log.LstdFlags).Printf
	}
	if err := w.Serve(ln); err != nil {
		fmt.Fprintf(os.Stderr, "cstf-worker: %v\n", err)
		os.Exit(1)
	}
}
