// cstf-inspect prints the structural statistics of a sparse tensor that
// determine distributed factorization behaviour: shape, density, per-mode
// occupancy and skew (load balance), and CSF fiber compression (how much
// structure a SPLATT-style kernel can exploit).
//
// Usage:
//
//	cstf-inspect -in tensor.tns          # also .tns.gz and .bin
//	cstf-inspect -dataset nell1 -scale 1e-4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cstf"
	"cstf/internal/cpals"
	"cstf/internal/tensor"
	"cstf/internal/workload"
)

func main() {
	in := flag.String("in", "", "tensor file (.tns, .tns.gz, or .bin)")
	dataset := flag.String("dataset", "", "Table 5 dataset name instead of a file")
	scale := flag.Float64("scale", 1e-4, "dataset scale for -dataset")
	rank := flag.Int("rank", 0, "if > 0, fit this rank serially and report fit + core consistency")
	flag.Parse()

	var x *tensor.COO
	var err error
	switch {
	case *in != "":
		if strings.HasSuffix(*in, ".bin") {
			f, ferr := os.Open(*in)
			if ferr != nil {
				fatal(ferr)
			}
			x, err = tensor.ReadBinary(f)
			f.Close()
		} else {
			x, err = tensor.LoadTNSFile(*in)
		}
	case *dataset != "":
		var cfg workload.Config
		cfg, err = workload.ByName(*dataset)
		if err == nil {
			x = cfg.Generate(*scale)
		}
	default:
		fatal(fmt.Errorf("one of -in or -dataset is required"))
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("order:    %d\n", x.Order())
	fmt.Printf("dims:     %v\n", x.Dims)
	fmt.Printf("nnz:      %d\n", x.NNZ())
	fmt.Printf("density:  %.3e\n", x.Density())
	fmt.Printf("norm:     %.6g\n", x.Norm())
	fmt.Printf("max |v|:  %.6g\n", x.MaxAbs())

	fmt.Printf("\n%-6s %10s %10s %12s %10s\n", "mode", "non-empty", "max slice", "mean occ", "skew")
	for m := 0; m < x.Order(); m++ {
		st := x.ModeStats(m)
		fmt.Printf("%-6d %10d %10d %12.2f %9.1fx\n",
			m+1, st.NonEmpty, st.MaxCount, st.MeanOcc, st.Skew)
	}

	fmt.Println("\nCSF fiber counts (per root mode; smaller upper levels = more reuse):")
	for _, c := range cpals.BuildCSFs(x) {
		fmt.Printf("  root mode %d: %v\n", c.ModeOrder[0]+1, c.Fibers())
	}

	if *rank > 0 {
		wrapped := wrap(x)
		dec, err := cstf.Decompose(wrapped, cstf.Options{
			Algorithm: cstf.Serial, Rank: *rank, MaxIters: 50, Tol: 1e-7, Seed: 1,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nrank-%d fit: %.4f (in %d iterations)\n", *rank, dec.Fit(), dec.Iters)
		if x.Order() <= 4 {
			if cc, err := dec.CoreConsistency(wrapped); err == nil {
				fmt.Printf("core consistency: %.1f (near 100 = rank appropriate)\n", cc)
			}
		}
	}
}

// wrap round-trips an internal tensor into the public API type via the
// binary format (the facade deliberately hides its internals).
func wrap(x *tensor.COO) *cstf.Tensor {
	pr, pw, err := os.Pipe()
	if err != nil {
		fatal(err)
	}
	go func() {
		tensor.WriteBinary(pw, x)
		pw.Close()
	}()
	t, err := cstf.ReadBinary(pr)
	if err != nil {
		fatal(err)
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf-inspect:", err)
	os.Exit(1)
}
