// cstf-serve loads a trained CP model from a checkpoint file (written by
// `cstf -checkpoint ... -checkpoint-every N`) and serves prediction,
// top-K completion, and similarity queries over an HTTP JSON API.
//
// Usage:
//
//	cstf -dataset nell1 -scale 1e-4 -rank 8 -checkpoint model.ckpt -checkpoint-every 1
//	cstf-serve -model model.ckpt -addr :8080
//	curl 'localhost:8080/topk?mode=1&row=7&k=10'
//
// The server watches the model file and hot-reloads it whenever a training
// run overwrites it: in-flight queries finish against the snapshot they
// started with, subsequent queries see the new factors, and a corrupt or
// half-trained file is rejected while the old model keeps serving. A fleet
// router can also trigger the reload on demand with POST /reloadz.
//
// On SIGTERM or SIGINT the server drains gracefully: it stops accepting
// new connections and queries, finishes every in-flight query, and exits —
// the replica half of a fleet's zero-downtime restarts.
//
// Endpoints: /predict, /topk, /similar, /healthz, /statsz, /reloadz (see
// internal/serve for parameters and error mapping).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cstf/internal/serve"
)

func main() {
	model := flag.String("model", "", "checkpoint file holding the trained model (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	watch := flag.Duration("watch", 500*time.Millisecond, "poll interval for hot reload of -model (0 disables)")
	maxBatch := flag.Int("max-batch", 0, "max ranked queries coalesced into one scan (0 = default 32)")
	maxWait := flag.Duration("max-wait", 0, "max time to hold a request while a batch forms (0 = default 100µs)")
	queue := flag.Int("queue", 0, "request queue depth before shedding (0 = default 1024)")
	cache := flag.Int("cache", 0, "LRU result cache entries (0 = default 4096, negative disables)")
	workers := flag.Int("workers", 0, "goroutines per batched scan (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 disables)")
	approx := flag.Bool("approx", false, "serve full-mode TopK from the norm-pruned approximate index")
	approxCand := flag.Int("approx-candidates", 0, "candidate budget per approximate TopK (0 = default 2048, negative uncapped)")
	flag.Parse()

	if *model == "" {
		fatal(errors.New("-model is required (a checkpoint written by cstf -checkpoint)"))
	}
	m, err := serve.LoadCheckpoint(*model)
	if err != nil {
		fatal(err)
	}
	s, err := serve.New(m, serve.Config{
		MaxBatch:         *maxBatch,
		MaxWait:          *maxWait,
		QueueDepth:       *queue,
		CacheSize:        *cache,
		Workers:          *workers,
		Timeout:          *timeout,
		Approx:           *approx,
		ApproxCandidates: *approxCand,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "cstf-serve: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}
	defer s.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *watch > 0 {
		s.Watch(ctx, *model, *watch)
	}

	srv := &http.Server{Addr: *addr, Handler: serve.NewHandlerWith(s, serve.HandlerConfig{ReloadPath: *model})}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	fmt.Fprintf(os.Stderr, "cstf-serve: model %s (rank %d, dims %v, iter %d, %.1f MB) listening on %s\n",
		*model, m.Rank, m.Dims, m.Iter, float64(m.MemoryBytes())/(1<<20), *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		// Graceful drain: close the listener and wait for in-flight HTTP
		// requests (srv.Shutdown), refuse queries that race in on kept-
		// alive connections and wait out already-accepted ones (s.Drain),
		// then stop the executor.
		fmt.Fprintln(os.Stderr, "cstf-serve: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx) //nolint:errcheck // best-effort drain
		s.Drain()
		fmt.Fprintln(os.Stderr, "cstf-serve: drained, exiting")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cstf-serve:", err)
	os.Exit(1)
}
