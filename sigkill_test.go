package cstf_test

import (
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cstf"
	"cstf/internal/ckpt"
)

// TestSIGKILLResumeBitwise is the crash-safety acceptance test at process
// granularity: a real cstf coordinator process is SIGKILLed mid-solve —
// no deferred cleanup, no graceful shutdown, exactly what the OOM killer
// or a power cut delivers — and the run is resumed from its last durable
// checkpoint. The resumed decomposition must be bitwise-identical to an
// uninterrupted run of the same configuration: same lambda, same factors,
// same fit trajectory.
//
// The tensor travels through the same .tns file in both worlds (the text
// format rounds values, so generating it twice would compare different
// problems).
func TestSIGKILLResumeBitwise(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real coordinator process")
	}
	dir := t.TempDir()
	tns := filepath.Join(dir, "x.tns")
	ck := filepath.Join(dir, "cp.ckpt")
	bin := filepath.Join(dir, "cstf")

	gen := cstf.LowRankTensor(21, 60000, 3, 0.05, 120, 100, 80)
	if err := gen.Save(tns); err != nil {
		t.Fatal(err)
	}
	x, err := cstf.LoadTensor(tns)
	if err != nil {
		t.Fatal(err)
	}

	build := exec.Command("go", "build", "-o", bin, "cstf/cmd/cstf")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build cstf: %v\n%s", err, out)
	}

	opts := cstf.Options{
		Algorithm: cstf.Dist, Rank: 6, MaxIters: 30, NoConvergenceCheck: true, Seed: 7,
	}
	opts.Dist.LocalWorkers = 2

	// The coordinator process: checkpoint after every iteration, 30 to go.
	cmd := exec.Command(bin,
		"-in", tns, "-algo", "dist", "-dist-local", "2",
		"-rank", "6", "-iters", "30", "-tol", "0", "-seed", "7",
		"-checkpoint", ck, "-checkpoint-every", "1")
	cmd.Dir = dir
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as a durable mid-solve checkpoint exists. ckpt.Write is
	// atomic (temp + rename), so a readable file is a complete file.
	deadline := time.Now().Add(60 * time.Second)
	killedAt := -1
	for time.Now().Before(deadline) {
		if cp, err := ckpt.Read(ck); err == nil && cp.Iter >= 2 {
			killedAt = cp.Iter
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if killedAt < 0 {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		t.Fatal("no checkpoint appeared within 60s")
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck

	cp, err := ckpt.Read(ck)
	if err != nil {
		t.Fatalf("checkpoint unreadable after SIGKILL: %v", err)
	}
	if cp.Iter >= opts.MaxIters {
		t.Fatalf("coordinator finished (iter %d) before the kill landed; grow MaxIters", cp.Iter)
	}
	t.Logf("SIGKILLed coordinator at iteration %d (checkpoint iter %d)", killedAt, cp.Iter)

	start := time.Now()
	got, err := cstf.DecomposeResume(x, ck, opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	t.Logf("resumed %d remaining iterations in %v", opts.MaxIters-cp.Iter, time.Since(start))

	want, err := cstf.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != want.Iters {
		t.Fatalf("resumed Iters=%d, want %d", got.Iters, want.Iters)
	}
	if len(got.Fits) != len(want.Fits) {
		t.Fatalf("resumed %d fits, want %d", len(got.Fits), len(want.Fits))
	}
	for i := range want.Fits {
		if math.Float64bits(got.Fits[i]) != math.Float64bits(want.Fits[i]) {
			t.Fatalf("fit[%d]: %v != %v", i, got.Fits[i], want.Fits[i])
		}
	}
	for i := range want.Lambda {
		if math.Float64bits(got.Lambda[i]) != math.Float64bits(want.Lambda[i]) {
			t.Fatalf("lambda[%d]: %v != %v", i, got.Lambda[i], want.Lambda[i])
		}
	}
	requireSameFactors(t, want, got, 0)

	// The interrupted run left no half-written files behind: everything in
	// the scratch dir is either an input, the binary, or a valid checkpoint.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		switch e.Name() {
		case "x.tns", "cstf", filepath.Base(ck):
		// A .tmp file may survive when the kill lands mid-write; the
		// atomic rename guarantees it never becomes the live checkpoint.
		case filepath.Base(ck) + ".tmp":
		default:
			t.Fatalf("SIGKILL left debris behind: %s", e.Name())
		}
	}
}
