package cstf_test

import (
	"context"
	"testing"

	"cstf"
)

func apiTestTensor() *cstf.Tensor {
	return cstf.ZipfTensor(3, 4000, 0.5, 60, 50, 40)
}

// NoConvergenceCheck must run all MaxIters iterations, and the default Tol
// must still stop a converged run early.
func TestNoConvergenceCheckRunsAllIters(t *testing.T) {
	x := apiTestTensor()
	dec, err := cstf.Decompose(x, cstf.Options{Algorithm: cstf.Serial, Rank: 3, MaxIters: 6, NoConvergenceCheck: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Iters != 6 {
		t.Fatalf("iters %d, want 6", dec.Iters)
	}
	if len(dec.Fits) != 6 {
		t.Fatalf("%d fits, want 6", len(dec.Fits))
	}
}

// The deprecated flat fields must keep working as aliases of the grouped
// options, and specifying both forms of the same knob must be rejected.
func TestDeprecatedDistFieldAliases(t *testing.T) {
	x := apiTestTensor()
	base := cstf.Options{Algorithm: cstf.Dist, Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 4}

	grouped := base
	grouped.Dist.LocalWorkers = 2
	want, err := cstf.Decompose(x, grouped)
	if err != nil {
		t.Fatal(err)
	}

	flat := base
	flat.DistLocalWorkers = 2
	got, err := cstf.Decompose(x, flat)
	if err != nil {
		t.Fatal(err)
	}
	if want.Fit() != got.Fit() || want.Iters != got.Iters {
		t.Fatalf("deprecated alias diverged: fit %v/%v iters %d/%d", want.Fit(), got.Fit(), want.Iters, got.Iters)
	}

	both := base
	both.Dist.LocalWorkers = 2
	both.DistLocalWorkers = 2
	if _, err := cstf.Decompose(x, both); err == nil {
		t.Fatal("conflicting Dist.LocalWorkers + DistLocalWorkers accepted")
	}

	conflicts := []cstf.Options{
		{Algorithm: cstf.Serial, Chaos: &cstf.ChaosSpec{NodeCrashes: 1},
			Faults: cstf.FaultOptions{Chaos: &cstf.ChaosSpec{NodeCrashes: 1}}},
		{Algorithm: cstf.Serial, CheckpointEvery: 1,
			Faults: cstf.FaultOptions{CheckpointEvery: 1}},
		{Algorithm: cstf.Serial, CheckpointPath: "a",
			Faults: cstf.FaultOptions{CheckpointPath: "b"}},
		{Algorithm: cstf.Dist, DistAddrs: []string{"x"},
			Dist: cstf.DistOptions{Addrs: []string{"x"}}},
		{Algorithm: cstf.Dist, DistWorkerBin: "a",
			Dist: cstf.DistOptions{WorkerBin: "b", LocalWorkers: 1}},
	}
	for i, o := range conflicts {
		o.Rank, o.MaxIters = 2, 1
		if _, err := cstf.Decompose(x, o); err == nil {
			t.Fatalf("conflict case %d accepted", i)
		}
	}
}

// Factors out of the public API must be bitwise identical for every
// Parallelism setting.
func TestDecomposeParallelismDeterministic(t *testing.T) {
	x := apiTestTensor()
	opt := cstf.Options{Algorithm: cstf.Serial, Rank: 4, MaxIters: 5, Seed: 9}
	opt.Parallelism = 1
	base, err := cstf.Decompose(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		opt.Parallelism = workers
		got, err := cstf.Decompose(x, opt)
		if err != nil {
			t.Fatal(err)
		}
		for n := range base.Factors {
			bf, gf := base.Factors[n], got.Factors[n]
			for i := 0; i < bf.Rows(); i++ {
				for j := 0; j < bf.Cols(); j++ {
					if bf.At(i, j) != gf.At(i, j) {
						t.Fatalf("parallelism %d: factor %d (%d,%d) differs", workers, n, i, j)
					}
				}
			}
		}
	}
}

func TestDecomposeContextCancelled(t *testing.T) {
	x := apiTestTensor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []cstf.Algorithm{cstf.Serial, cstf.COO, cstf.QCOO, cstf.BigTensor} {
		_, err := cstf.DecomposeContext(ctx, x, cstf.Options{Algorithm: algo, Rank: 2, MaxIters: 3})
		if err != context.Canceled {
			t.Fatalf("%s: want context.Canceled, got %v", algo, err)
		}
	}
}

func TestOnIterationCallback(t *testing.T) {
	x := apiTestTensor()
	for _, algo := range []cstf.Algorithm{cstf.Serial, cstf.QCOO} {
		var iters []int
		var lastFit float64
		dec, err := cstf.Decompose(x, cstf.Options{
			Algorithm: algo, Rank: 2, MaxIters: 8, NoConvergenceCheck: true,
			OnIteration: func(iter int, fit float64) bool {
				iters = append(iters, iter)
				lastFit = fit
				return iter >= 1 // stop after the second iteration
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if dec.Iters != 2 {
			t.Fatalf("%s: early stop left Iters=%d, want 2", algo, dec.Iters)
		}
		if len(iters) != 2 || iters[0] != 0 || iters[1] != 1 {
			t.Fatalf("%s: callback saw iterations %v", algo, iters)
		}
		if lastFit != dec.Fit() {
			t.Fatalf("%s: callback fit %v != final fit %v", algo, lastFit, dec.Fit())
		}
	}
}

// DecomposeBest must report which restart won and aggregate the simulated
// cluster cost over ALL restarts, not just the winner's.
func TestDecomposeBestRecordsWinnerAndSumsMetrics(t *testing.T) {
	x := apiTestTensor()
	const restarts = 3
	opt := cstf.Options{Algorithm: cstf.QCOO, Rank: 2, MaxIters: 2, NoConvergenceCheck: true, Seed: 5}

	// Reference: run the restarts by hand.
	var wantBest *cstf.Decomposition
	wantIdx := 0
	var wantSim float64
	var wantShuffles int
	singles := make([]*cstf.Decomposition, restarts)
	for r := 0; r < restarts; r++ {
		dec, err := cstf.Decompose(x, cstf.Options{
			Algorithm: cstf.QCOO, Rank: 2, MaxIters: 2, NoConvergenceCheck: true,
			Seed: cstf.RestartSeed(opt.Seed, r),
		})
		if err != nil {
			t.Fatal(err)
		}
		singles[r] = dec
		wantSim += dec.Metrics.SimSeconds
		wantShuffles += dec.Metrics.Shuffles
		if wantBest == nil || dec.Fit() > wantBest.Fit() {
			wantBest, wantIdx = dec, r
		}
	}

	got, err := cstf.DecomposeBest(x, opt, restarts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Restart != wantIdx {
		t.Fatalf("winner restart %d, want %d", got.Restart, wantIdx)
	}
	if got.Seed != singles[wantIdx].Seed {
		t.Fatalf("winner seed %d, want %d", got.Seed, singles[wantIdx].Seed)
	}
	if got.Fit() != wantBest.Fit() {
		t.Fatalf("winner fit %v, want %v", got.Fit(), wantBest.Fit())
	}
	if got.Metrics.SimSeconds != wantSim {
		t.Fatalf("summed SimSeconds %v, want %v", got.Metrics.SimSeconds, wantSim)
	}
	if got.Metrics.Shuffles != wantShuffles {
		t.Fatalf("summed Shuffles %d, want %d", got.Metrics.Shuffles, wantShuffles)
	}
}

func TestDecomposeBestSerialDeterministicAcrossParallelism(t *testing.T) {
	x := apiTestTensor()
	opt := cstf.Options{Algorithm: cstf.Serial, Rank: 3, MaxIters: 3, Seed: 2}
	opt.Parallelism = 1
	a, err := cstf.DecomposeBest(x, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 8
	b, err := cstf.DecomposeBest(x, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Restart != b.Restart || a.Fit() != b.Fit() || a.Seed != b.Seed {
		t.Fatalf("restart/fit/seed changed with parallelism: (%d,%v,%d) vs (%d,%v,%d)",
			a.Restart, a.Fit(), a.Seed, b.Restart, b.Fit(), b.Seed)
	}
}
