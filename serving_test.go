package cstf

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"cstf/internal/serve"
)

// End-to-end serving path: train with periodic checkpointing, load the
// checkpoint back as factors, start a server from them, and query it over
// HTTP — the full `cstf -checkpoint` → `cstf-serve -model` pipeline in one
// test.
func TestTrainCheckpointServeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.ckpt")
	x := RandomTensor(3, 600, 40, 30, 20)
	dec, err := Decompose(x, Options{
		Rank: 3, MaxIters: 4, NoConvergenceCheck: true, Seed: 5,
		Faults: FaultOptions{CheckpointEvery: 1, CheckpointPath: path},
	})
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadFactors(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Rank() != dec.Rank() || loaded.Iters != dec.Iters {
		t.Fatalf("loaded rank/iters %d/%d want %d/%d", loaded.Rank(), loaded.Iters, dec.Rank(), dec.Iters)
	}
	// The checkpointed model must evaluate identically to the live one.
	for _, idx := range [][]int{{0, 0, 0}, {39, 29, 19}, {7, 11, 13}} {
		if got, want := loaded.At(idx...), dec.At(idx...); math.Abs(got-want) > 1e-12 {
			t.Fatalf("At(%v) = %v from checkpoint, %v live", idx, got, want)
		}
	}

	s, err := loaded.Server(ServeOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	srv := httptest.NewServer(serve.NewHandler(s))
	defer srv.Close()

	// /predict must agree with Decomposition.At.
	var pr struct {
		Value float64 `json:"value"`
	}
	getJSON(t, srv.URL+"/predict?index=7,11,13", &pr)
	if want := loaded.At(7, 11, 13); math.Abs(pr.Value-want) > 1e-12 {
		t.Fatalf("/predict = %v want %v", pr.Value, want)
	}

	// /topk must rank by the reconstructed model: verify against a direct
	// brute-force argmax over mode-1 rows with modes 2 marginalized.
	var tr struct {
		Results []serve.Scored `json:"results"`
	}
	getJSON(t, srv.URL+"/topk?mode=1&given=0&row=4&k=3", &tr)
	if len(tr.Results) != 3 {
		t.Fatalf("/topk returned %d results, want 3", len(tr.Results))
	}
	best, bestScore := -1, math.Inf(-1)
	for j := 0; j < 30; j++ {
		var sum float64
		for k := 0; k < 20; k++ {
			sum += loaded.At(4, j, k)
		}
		if sum > bestScore {
			best, bestScore = j, sum
		}
	}
	if tr.Results[0].Index != best {
		t.Fatalf("/topk best row %d, brute force says %d", tr.Results[0].Index, best)
	}
	if math.Abs(tr.Results[0].Score-bestScore) > 1e-9 {
		t.Fatalf("/topk best score %v, brute force %v", tr.Results[0].Score, bestScore)
	}

	var hr struct {
		Status string `json:"status"`
		Rank   int    `json:"rank"`
	}
	getJSON(t, srv.URL+"/healthz", &hr)
	if hr.Status != "ok" || hr.Rank != 3 {
		t.Fatalf("/healthz = %+v", hr)
	}
}

// Server clones the factors: mutating the served snapshot is impossible and
// the decomposition's own matrices stay untouched by serving.
func TestServerClonesFactors(t *testing.T) {
	x := RandomTensor(8, 300, 20, 15, 10)
	dec, err := Decompose(x, Options{Rank: 2, MaxIters: 2, NoConvergenceCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	before := dec.Factors[0].Row(3)
	s, err := dec.Server(ServeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	served := s.Model().Factor(0).Row(3)
	for j := range before {
		if before[j] != served[j] {
			t.Fatal("served factors differ from decomposition")
		}
	}
	// Mutate the server's copy; the decomposition must be unaffected.
	served[0] = 1e9
	if after := dec.Factors[0].Row(3); after[0] == 1e9 {
		t.Fatal("Server aliased the decomposition's factor storage")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatal(fmt.Errorf("GET %s: status %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
