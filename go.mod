module cstf

go 1.22
