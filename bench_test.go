// Benchmarks regenerating every evaluation artifact of the paper (one
// benchmark per table and figure, backed by internal/experiments) plus
// micro-benchmarks of the kernels they are built from. Modeled cluster
// metrics are attached via b.ReportMetric:
//
//	go test -bench=. -benchmem
//
// The full-resolution reports (text + CSV) come from cmd/cstf-bench; these
// benchmarks run the same runners at a reduced dataset scale so the suite
// finishes in minutes.
package cstf_test

import (
	"testing"

	"cstf"
	"cstf/internal/bigtensor"
	"cstf/internal/cluster"
	"cstf/internal/core"
	"cstf/internal/cpals"
	"cstf/internal/experiments"
	"cstf/internal/la"
	"cstf/internal/mapreduce"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
	"cstf/internal/workload"
)

func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Scale = 5e-5
	return p
}

// BenchmarkTable5 regenerates the dataset-summary table.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if lines := experiments.Table5(benchParams()); len(lines) != 6 {
			b.Fatal("table 5 incomplete")
		}
	}
}

// BenchmarkTable4 regenerates the per-MTTKRP cost comparison (flops,
// intermediate data, shuffles for BIGtensor / COO / QCOO).
func BenchmarkTable4(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.MeasuredShuffles), "shuffles/"+string(r.Algo))
			}
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: 3rd-order CP-ALS runtime vs cluster
// size for COO, QCOO, and BIGtensor on all three datasets.
func BenchmarkFig2(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig2(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Dataset == "delicious3d" {
					b.ReportMetric(r.SpeedupCOO, "speedup@"+itoa(r.Nodes))
				}
			}
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: 4th-order CP-ALS runtime vs cluster
// size for COO and QCOO.
func BenchmarkFig3(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Dataset == "flickr" {
					b.ReportMetric(r.RatioQvsCOO, "coo/qcoo@"+itoa(r.Nodes))
				}
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: remote/local shuffle bytes per
// CP-ALS iteration, by MTTKRP mode.
func BenchmarkFig4(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*res.RemoteReduction["delicious3d"], "remote-reduction-%")
			b.ReportMetric(100*res.LocalReduction["delicious3d"], "local-reduction-%")
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: per-mode MTTKRP runtimes on 4 nodes.
func BenchmarkFig5(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig5(p)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				if r.Dataset == "nell1" && r.Algo == experiments.AlgoQ {
					b.ReportMetric(r.Mode[0], "qcoo-mode1-s")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Kernel micro-benchmarks (real wall-clock of this implementation).
// ---------------------------------------------------------------------------

func benchTensor() *tensor.COO {
	cfg, _ := workload.ByName("delicious3d")
	return cfg.Generate(5e-5)
}

// BenchmarkSerialMTTKRP measures the reference COO MTTKRP kernel.
func BenchmarkSerialMTTKRP(b *testing.B) {
	x := benchTensor()
	rank := 8
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = cpals.InitFactor(1, n, x.Dims[n], rank)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpals.MTTKRP(x, i%3, factors)
	}
	b.SetBytes(int64(x.NNZ() * tensor.EntryBytes(3)))
}

// BenchmarkSerialCPALSIteration measures one full serial ALS iteration.
func BenchmarkSerialCPALSIteration(b *testing.B) {
	x := benchTensor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpals.Solve(x, cpals.Options{Rank: 8, MaxIters: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCOOStep measures one distributed CSTF-COO mode update
// (engine wall-clock, not modeled time).
func BenchmarkCOOStep(b *testing.B) {
	x := benchTensor()
	c := cluster.New(8, cluster.CometProfile())
	ctx := rdd.NewContext(c, 32)
	s := core.NewCOOState(ctx, x, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(i % 3)
	}
}

// BenchmarkQCOOStep measures one distributed CSTF-QCOO mode update.
func BenchmarkQCOOStep(b *testing.B) {
	x := benchTensor()
	c := cluster.New(8, cluster.CometProfile())
	ctx := rdd.NewContext(c, 32)
	s := core.NewQCOOState(ctx, x, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(i % 3)
	}
}

// BenchmarkBigtensorMTTKRP measures one 4-job GigaTensor MTTKRP.
func BenchmarkBigtensorMTTKRP(b *testing.B) {
	x := benchTensor()
	env := mapreduce.NewEnv(cluster.New(8, cluster.CometProfile()), 32)
	s, err := bigtensor.New(env, x, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MTTKRP(i % 3)
	}
}

// BenchmarkShuffle measures the engine's hash-shuffle throughput.
func BenchmarkShuffle(b *testing.B) {
	c := cluster.New(8, cluster.CometProfile())
	ctx := rdd.NewContext(c, 32)
	recs := make([]rdd.KV[uint32, float64], 200_000)
	for i := range recs {
		recs[i] = rdd.KV[uint32, float64]{Key: uint32(i), Val: float64(i)}
	}
	b.SetBytes(int64(len(recs) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := rdd.FromSlice(ctx, "bench", recs, rdd.FixedSize[rdd.KV[uint32, float64]](16))
		rdd.Count(rdd.PartitionBy(d))
	}
}

// BenchmarkPinv measures the rank-sized pseudo-inverse (Jacobi eigen).
func BenchmarkPinv(b *testing.B) {
	m := la.NewDense(16, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j <= i; j++ {
			v := 1.0 / float64(1+i+j)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		la.Pinv(m)
	}
}

// BenchmarkDecomposePublicAPI measures an end-to-end public-API call.
func BenchmarkDecomposePublicAPI(b *testing.B) {
	x := cstf.RandomTensor(1, 20_000, 500, 400, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cstf.Decompose(x, cstf.Options{
			Rank: 4, MaxIters: 2, NoConvergenceCheck: true, Nodes: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkParallelMTTKRP measures the row-partitioned shared-memory MTTKRP
// (cpals.MTTKRPWorkers) on a ~1M-nnz Zipf tensor across worker counts. The
// acceptance bar for the parallel execution layer is >= 2x wall-clock at 4+
// workers versus workers=1 on multicore hardware, with bitwise-identical
// output — the bitwise part is asserted here at setup, the speedup is read
// off the per-subbenchmark ns/op.
func BenchmarkParallelMTTKRP(b *testing.B) {
	x := tensor.GenZipf(1, 1_200_000, 0.5, 120_000, 90_000, 60_000)
	rank := 16
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = cpals.InitFactor(1, n, x.Dims[n], rank)
	}
	x.ModeIndex(0) // build the sort/segment index outside the timer

	ref := cpals.MTTKRPWorkers(x, 0, factors, 1, nil, nil)
	chk := cpals.MTTKRPWorkers(x, 0, factors, 4, nil, nil)
	if d := la.MaxAbsDiff(ref, chk); d != 0 {
		b.Fatalf("parallel MTTKRP not bitwise deterministic: %g", d)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			ws := &cpals.Workspace{}
			b.SetBytes(int64(x.NNZ() * tensor.EntryBytes(3)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpals.MTTKRPWorkers(x, 0, factors, workers, ws.Out(0, x.Dims[0], rank, workers), ws)
			}
		})
	}
}

// BenchmarkParallelSolveIteration measures one full shared-memory CP-ALS
// iteration (MTTKRP + grams + normalization + fit, all on the worker pool)
// across worker counts.
func BenchmarkParallelSolveIteration(b *testing.B) {
	x := tensor.GenZipf(2, 600_000, 0.5, 60_000, 50_000, 40_000)
	for _, workers := range []int{1, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cpals.Solve(x, cpals.Options{
					Rank: 8, MaxIters: 1, Seed: 1, Parallelism: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelCSFMTTKRP measures the fiber-chunked parallel CSF kernel
// against its serial walk.
func BenchmarkParallelCSFMTTKRP(b *testing.B) {
	x := tensor.GenZipf(3, 600_000, 0.6, 60_000, 50_000, 40_000)
	x.DedupSum()
	rank := 16
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = cpals.InitFactor(1, n, x.Dims[n], rank)
	}
	csf := cpals.BuildCSFs(x)[0]
	for _, workers := range []int{1, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cpals.MTTKRPCSFWorkers(csf, factors, workers)
			}
		})
	}
}

// BenchmarkDecomposeBestRestarts measures concurrent multi-start CP-ALS
// through the public API.
func BenchmarkDecomposeBestRestarts(b *testing.B) {
	x := cstf.ZipfTensor(4, 50_000, 0.5, 2_000, 1_500, 1_000)
	for i := 0; i < b.N; i++ {
		if _, err := cstf.DecomposeBest(x, cstf.Options{
			Algorithm: cstf.Serial, Rank: 4, MaxIters: 3, NoConvergenceCheck: true,
		}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSFvsCOOKernel compares the two serial MTTKRP kernels: the
// per-nonzero COO loop (Algorithm 2) and the SPLATT-style CSF tree.
func BenchmarkCSFvsCOOKernel(b *testing.B) {
	x := benchTensor()
	rank := 8
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = cpals.InitFactor(1, n, x.Dims[n], rank)
	}
	b.Run("COO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cpals.MTTKRP(x, 0, factors)
		}
	})
	b.Run("CSF", func(b *testing.B) {
		csfs := cpals.BuildCSFs(x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cpals.MTTKRPCSF(csfs[0], factors)
		}
	})
	b.Run("CSF-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cpals.BuildCSFs(x)
		}
	})
}
