// Quickstart: generate a sparse tensor, factorize it with CSTF-QCOO on a
// simulated 8-node cluster, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cstf"
)

func main() {
	// A 3rd-order tensor that IS a rank-4 CP model plus a little noise —
	// think (user, item, context) affinity scores. Rank-4 CP-ALS must
	// recover it almost exactly.
	x := cstf.DenseLowRankTensor(42, 4, 0.01, 48, 40, 32)
	fmt.Println("input:", x)

	dec, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.QCOO, // the paper's queue-strategy solver
		Rank:      4,
		MaxIters:  20,
		Tol:       1e-6,
		Nodes:     8,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged after %d iterations, fit %.4f\n", dec.Iters, dec.Fit())
	fmt.Printf("component weights (lambda): %.3g\n", dec.Lambda)

	// Reconstruct a few stored nonzeros and compare.
	fmt.Println("\nsample reconstructions:")
	for _, i := range []int{0, x.NNZ() / 2, x.NNZ() - 1} {
		idx, val := x.Entry(i)
		fmt.Printf("  X%v = %.4f (model %.4f)\n", idx, val, dec.At(idx...))
	}

	// The cost model reports what this run would have cost on the paper's
	// 8-node Comet cluster.
	m := dec.Metrics
	fmt.Printf("\nmodeled cluster cost: %.1f s, %.1f MB remote + %.1f MB local shuffle, %d shuffles\n",
		m.SimSeconds, m.RemoteBytes/1e6, m.LocalBytes/1e6, m.Shuffles)
}
