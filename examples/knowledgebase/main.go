// Knowledge-base concept discovery, the NELL use case from the paper: the
// nell-1 tensor holds (noun, verb, noun) triples from the Never Ending
// Language Learning project, and CP decomposition groups them into latent
// "concepts" (e.g. cities-and-things-located-in-them).
//
// We plant relational concepts — subject nouns linked to object nouns
// through a small set of characteristic verbs — factorize with CSTF-QCOO,
// and print each recovered concept's top subjects, verbs, and objects.
//
//	go run ./examples/knowledgebase
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cstf"
)

const (
	nouns    = 4000 // shared subject/object vocabulary
	verbs    = 600
	concepts = 4
	triples  = 30000 // per concept
	noise    = 15000
)

// Each planted concept has its own subject range, verb range, and object
// range within the vocabularies.
type concept struct {
	subjLo, subjHi int
	verbLo, verbHi int
	objLo, objHi   int
}

func main() {
	plan := make([]concept, concepts)
	for c := range plan {
		plan[c] = concept{
			subjLo: c * 500, subjHi: (c + 1) * 500,
			verbLo: c * 40, verbHi: (c+1)*40 + 10, // verb ranges overlap a little
			objLo: 2000 + c*450, objHi: 2000 + (c+1)*450,
		}
	}

	x := buildTriples(plan)
	fmt.Println("input:", x)
	fmt.Printf("planted %d relational concepts, %d triples each, %d noise triples\n\n",
		concepts, triples, noise)

	dec, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.QCOO,
		Rank:      concepts,
		MaxIters:  25,
		Tol:       1e-7,
		Nodes:     8,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized in %d iterations (fit %.4f, modeled %.0f s on 8 nodes)\n\n",
		dec.Iters, dec.Fit(), dec.Metrics.SimSeconds)

	matched := 0
	for r := 0; r < concepts; r++ {
		subj := dec.TopK(0, r, 8)
		verb := dec.TopK(1, r, 5)
		obj := dec.TopK(2, r, 8)
		fmt.Printf("concept %d (lambda %.1f):\n", r, dec.Lambda[r])
		fmt.Printf("  subjects: %v\n", indices(subj))
		fmt.Printf("  verbs:    %v\n", indices(verb))
		fmt.Printf("  objects:  %v\n", indices(obj))

		// Which planted concept does this component match?
		best, purity := matchConcept(plan, subj, verb, obj)
		fmt.Printf("  -> planted concept %d (consistency %.0f%%)\n\n", best, 100*purity)
		if purity >= 0.8 {
			matched++
		}
	}
	fmt.Printf("cleanly recovered %d/%d concepts\n", matched, concepts)
	if matched < concepts {
		log.Fatal("concept recovery failed")
	}
}

func buildTriples(plan []concept) *cstf.Tensor {
	src := rand.New(rand.NewSource(17))
	x := cstf.NewTensor(nouns, verbs, nouns)
	for _, c := range plan {
		for i := 0; i < triples; i++ {
			s := c.subjLo + src.Intn(c.subjHi-c.subjLo)
			v := c.verbLo + src.Intn(c.verbHi-c.verbLo)
			o := c.objLo + src.Intn(c.objHi-c.objLo)
			x.Append(1, s, v, o) // triple observed (counts accumulate via Dedup)
		}
	}
	for i := 0; i < noise; i++ {
		x.Append(0.3, src.Intn(nouns), src.Intn(verbs), src.Intn(nouns))
	}
	x.Dedup()
	return x
}

func indices(cs []cstf.Component) []int {
	out := make([]int, len(cs))
	for i, c := range cs {
		out[i] = c.Index
	}
	return out
}

// matchConcept finds the planted concept whose ranges contain the largest
// fraction of the component's top subjects, verbs, and objects.
func matchConcept(plan []concept, subj, verb, obj []cstf.Component) (int, float64) {
	best, bestScore := -1, -1.0
	for ci, c := range plan {
		hits, total := 0, 0
		for _, s := range subj {
			total++
			if s.Index >= c.subjLo && s.Index < c.subjHi {
				hits++
			}
		}
		for _, v := range verb {
			total++
			if v.Index >= c.verbLo && v.Index < c.verbHi {
				hits++
			}
		}
		for _, o := range obj {
			total++
			if o.Index >= c.objLo && o.Index < c.objHi {
				hits++
			}
		}
		if score := float64(hits) / float64(total); score > bestScore {
			best, bestScore = ci, score
		}
	}
	return best, bestScore
}
