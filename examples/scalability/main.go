// Scalability study through the public API: the Figure 2 experiment in
// miniature. Factorize the same nell1-like tensor on 4-32 simulated nodes
// with all three systems and watch the paper's story unfold: CSTF beats
// BIGtensor by 3-7x, and the queue strategy (QCOO) loses narrowly on small
// clusters but wins at scale.
//
//	go run ./examples/scalability
package main

import (
	"fmt"
	"log"

	"cstf"
)

func main() {
	const scale = 1e-4
	x, err := cstf.Dataset("nell1", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input:", x)
	fmt.Println("(modeled times below are full-scale equivalents on Comet-like nodes)")
	fmt.Println()

	fmt.Printf("%-6s %12s %12s %12s %12s %12s\n",
		"nodes", "COO (s)", "QCOO (s)", "BIG (s)", "BIG/COO", "COO/QCOO")
	for _, nodes := range []int{4, 8, 16, 32} {
		secs := map[cstf.Algorithm]float64{}
		for _, algo := range []cstf.Algorithm{cstf.COO, cstf.QCOO, cstf.BigTensor} {
			// Two iterations; the second is steady state. Report the
			// average, like the paper's 20-iteration means.
			dec, err := cstf.Decompose(x, cstf.Options{
				Algorithm:          algo,
				Rank:               2,
				MaxIters:           2,
				NoConvergenceCheck: true,
				Nodes:              nodes,
				Seed:               1,
				WorkScale:          1 / scale,
			})
			if err != nil {
				log.Fatal(err)
			}
			secs[algo] = dec.Metrics.SimSeconds / 2
		}
		fmt.Printf("%-6d %12.1f %12.1f %12.1f %11.2fx %11.2fx\n",
			nodes, secs[cstf.COO], secs[cstf.QCOO], secs[cstf.BigTensor],
			secs[cstf.BigTensor]/secs[cstf.COO], secs[cstf.COO]/secs[cstf.QCOO])
	}

	fmt.Println("\nExpected shape (the paper's Section 6.4):")
	fmt.Println("  - CSTF 2.2x-6.9x faster than BIGtensor at every size")
	fmt.Println("  - COO/QCOO below 1 at 4 nodes, above 1 from 16 nodes on")
}
