// Tagging-system analysis, the delicious-3d use case from the paper's
// introduction: a (user, URL, tag) tensor from a social bookmarking crawl.
// We plant topical communities — groups of users who bookmark the same
// URLs with the same tags — bury them in noise, factorize with CSTF-COO,
// and check that each CP component recovers one community.
//
//	go run ./examples/tagging
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cstf"
)

const (
	users       = 2000
	urls        = 3000
	tags        = 800
	communities = 5
	perBlock    = 25000 // in-community bookmarks per community
	noiseNNZ    = 12000 // random background bookmarks
)

func main() {
	x, membership := buildTensor()
	fmt.Println("input:", x)
	fmt.Printf("planted %d communities of ~%d bookmarks each, %d noise entries\n\n",
		communities, perBlock, noiseNNZ)

	dec, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.COO,
		Rank:      communities,
		MaxIters:  30,
		Tol:       1e-7,
		Nodes:     8,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized in %d iterations, fit %.4f\n\n", dec.Iters, dec.Fit())

	// For each component, the top users should belong to one community.
	fmt.Println("component -> dominant community (purity of top-30 users):")
	recovered := map[int]bool{}
	for r := 0; r < communities; r++ {
		top := dec.TopK(0, r, 30)
		counts := map[int]int{}
		for _, c := range top {
			counts[membership[c.Index]]++
		}
		best, bestN := -1, 0
		for comm, n := range counts {
			if n > bestN {
				best, bestN = comm, n
			}
		}
		purity := float64(bestN) / float64(len(top))
		fmt.Printf("  component %d -> community %d (purity %.0f%%, lambda %.2f)\n",
			r, best, 100*purity, dec.Lambda[r])
		if purity >= 0.8 && best >= 0 {
			recovered[best] = true
		}
	}
	fmt.Printf("\nrecovered %d/%d planted communities\n", len(recovered), communities)
	if len(recovered) < communities-1 {
		log.Fatalf("recovery failed: only %d communities found", len(recovered))
	}
}

// buildTensor plants block structure: community c owns a slice of users,
// URLs, and tags; bookmarks are dense-ish within the block. Returns the
// tensor and each user's community.
func buildTensor() (*cstf.Tensor, []int) {
	src := rand.New(rand.NewSource(99))
	x := cstf.NewTensor(users, urls, tags)
	membership := make([]int, users)
	uPer, lPer, tPer := users/communities, urls/communities, tags/communities
	for u := range membership {
		membership[u] = u / uPer
		if membership[u] >= communities {
			membership[u] = communities - 1
		}
	}
	for c := 0; c < communities; c++ {
		for i := 0; i < perBlock; i++ {
			u := c*uPer + src.Intn(uPer)
			l := c*lPer + src.Intn(lPer)
			tg := c*tPer + src.Intn(tPer)
			x.Append(1+src.Float64(), u, l, tg)
		}
	}
	for i := 0; i < noiseNNZ; i++ {
		x.Append(0.2*src.Float64(), src.Intn(users), src.Intn(urls), src.Intn(tags))
	}
	x.Dedup()
	return x, membership
}
