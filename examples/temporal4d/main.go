// 4th-order temporal analysis and a communication study: the flickr /
// delicious-4d use case, where the tensor is (user, item, tag, day). This
// example is the paper's Figure 3/4 story in miniature: on higher-order
// tensors, CSTF-QCOO's queue strategy shuffles substantially less data
// than CSTF-COO and pulls ahead as the cluster grows.
//
//	go run ./examples/temporal4d
package main

import (
	"fmt"
	"log"

	"cstf"
)

func main() {
	// A scaled flickr-like tensor: ~11k nonzeros over (user, photo, tag,
	// day) with heavy-tailed fiber occupancy, as in real crawls.
	x, err := cstf.Dataset("flickr", 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input:", x)
	fmt.Println()

	fmt.Printf("%-6s %15s %15s %15s %15s\n",
		"nodes", "COO time(s)", "QCOO time(s)", "COO shuffle", "QCOO shuffle")
	var prevRatio float64
	for _, nodes := range []int{4, 8, 16, 32} {
		res := map[cstf.Algorithm]*cstf.Decomposition{}
		for _, algo := range []cstf.Algorithm{cstf.COO, cstf.QCOO} {
			dec, err := cstf.Decompose(x, cstf.Options{
				Algorithm:          algo,
				Rank:               2, // the paper's rank
				MaxIters:           5,
				NoConvergenceCheck: true,
				Nodes:              nodes,
				Seed:               9,
				WorkScale:          1e4, // report full-scale-equivalent times
			})
			if err != nil {
				log.Fatal(err)
			}
			res[algo] = dec
		}
		coo, qcoo := res[cstf.COO].Metrics, res[cstf.QCOO].Metrics
		fmt.Printf("%-6d %15.1f %15.1f %12.1f MB %12.1f MB\n",
			nodes, coo.SimSeconds, qcoo.SimSeconds,
			(coo.RemoteBytes+coo.LocalBytes)/1e6,
			(qcoo.RemoteBytes+qcoo.LocalBytes)/1e6)
		prevRatio = coo.SimSeconds / qcoo.SimSeconds
	}

	fmt.Printf("\nAt 32 nodes QCOO is %.2fx faster than COO on this 4th-order tensor\n", prevRatio)
	fmt.Println("(the paper reports 0.98x-1.7x across cluster sizes; the gap widens with scale).")

	// The decomposition itself: the strongest temporal component.
	dec, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.QCOO, Rank: 4, MaxIters: 10, Nodes: 8, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrank-4 decomposition: fit %.4f, lambda %.3g\n", dec.Fit(), dec.Lambda)
	days := dec.TopK(3, 0, 5)
	fmt.Print("most active days in component 0: ")
	for _, d := range days {
		fmt.Printf("day-%d ", d.Index)
	}
	fmt.Println()
}
