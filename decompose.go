package cstf

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"cstf/internal/bigtensor"
	"cstf/internal/chaos"
	"cstf/internal/ckpt"
	"cstf/internal/cluster"
	"cstf/internal/core"
	"cstf/internal/cpals"
	"cstf/internal/dist"
	"cstf/internal/la"
	"cstf/internal/mapreduce"
	"cstf/internal/ntf"
	"cstf/internal/par"
	"cstf/internal/rals"
	"cstf/internal/rdd"
	"cstf/internal/rng"
)

// Algorithm selects the CP-ALS implementation.
type Algorithm string

// The CP-ALS implementations in this repository.
const (
	// Serial is the single-machine reference implementation.
	Serial Algorithm = "serial"
	// COO is CSTF-COO (Section 4.1 of the paper): MTTKRP as a chain of
	// key-by/join stages over COO nonzeros on the Spark-like engine.
	COO Algorithm = "coo"
	// QCOO is CSTF-QCOO (Section 4.2): the queue strategy that reuses
	// factor rows between consecutive MTTKRPs, halving shuffles.
	QCOO Algorithm = "qcoo"
	// BigTensor is the paper's baseline: the GigaTensor algorithm on the
	// Hadoop-like MapReduce engine. 3rd-order tensors only.
	BigTensor Algorithm = "bigtensor"
	// Dist is the real distributed runtime (internal/dist): CP-ALS stages
	// executed by worker processes over TCP, not the simulated cluster.
	// Configure it with Options.Dist (addresses or local worker count).
	// Results are bitwise identical to Serial for every worker count.
	Dist Algorithm = "dist"
	// RALS is randomized ALS (internal/rals): leverage-score-sampled MTTKRP
	// in the style of CP-ARLS-LEV, configured with Options.RALS. Reported
	// fits are always exact; a fixed seed is bitwise-reproducible across
	// runs, Parallelism values, and dist worker counts. Runs serially by
	// default, or under the distributed runtime when Options.Dist names a
	// fleet.
	RALS Algorithm = "rals"
	// NCP is nonnegative CP (internal/ntf): column-wise coordinate descent
	// with saturation skipping over the shared MTTKRP/gram kernels,
	// configured with Options.NTF. Factors come out elementwise >= 0 (the
	// natural parameterization for implicit-feedback/recommendation
	// tensors), the fit is monotone non-decreasing per sweep, and a fixed
	// seed is bitwise-reproducible across runs and Parallelism values.
	NCP Algorithm = "ncp"
)

// Algorithms is the single source of truth for the algorithm registry: one
// entry per Algorithm constant, in documentation order. The "unknown
// algorithm" error and the cstf CLI's -algo help both derive from it, so a
// new tier cannot appear in one and drift from the other.
var Algorithms = []struct {
	Name Algorithm
	Desc string // one-line description
}{
	{Serial, "single-machine reference CP-ALS"},
	{COO, "CSTF-COO on the simulated Spark-like engine"},
	{QCOO, "CSTF-QCOO queue strategy (default)"},
	{BigTensor, "GigaTensor baseline on the MapReduce engine (3rd-order only)"},
	{Dist, "real TCP distributed runtime (Options.Dist)"},
	{RALS, "randomized leverage-score-sampled ALS (Options.RALS)"},
	{NCP, "nonnegative CP via saturating coordinate descent (Options.NTF)"},
}

// AlgorithmNames returns the registered algorithm names in order.
func AlgorithmNames() []string {
	names := make([]string, len(Algorithms))
	for i, a := range Algorithms {
		names[i] = string(a.Name)
	}
	return names
}

// DistOptions groups the knobs of the real distributed runtime (the Dist
// algorithm). The zero value launches nothing — set Addrs or LocalWorkers.
type DistOptions struct {
	// Addrs lists the TCP addresses of already-running cstf-worker
	// processes. The slot order is the reduction rank order; keep it fixed
	// across runs for reproducibility.
	Addrs []string

	// LocalWorkers, when Addrs is empty, launches this many local workers
	// for the duration of the run: forked cstf-worker processes when a
	// binary is found (WorkerBin, $CSTF_WORKER_BIN, next to the executable,
	// or $PATH), otherwise in-process TCP-loopback workers.
	LocalWorkers int

	// WorkerBin optionally pins the cstf-worker binary LocalWorkers forks.
	WorkerBin string

	// DisableDeltaBroadcast turns off delta factor broadcasts, shipping
	// full factor matrices to every worker each mode-iteration (the
	// pre-delta wire behavior). Results are bitwise identical either way;
	// the toggle exists for A/B measurement.
	DisableDeltaBroadcast bool

	// DisablePipeline turns off the overlap between one mode's partial-gram
	// reduce and the next mode's MTTKRP, making every stage a strict
	// barrier. Results are bitwise identical either way.
	DisablePipeline bool

	// CSFKernel makes workers run their partial MTTKRPs with the SPLATT
	// CSF fiber-reuse kernel instead of the per-nonzero COO loop. The run
	// is then bitwise identical to the single-process CSF solver, NOT to
	// the COO-kernel Serial reference (the factored arithmetic associates
	// the same sums differently).
	CSFKernel bool

	// MinWorkers is the live-worker floor checked at every iteration
	// boundary. When the fleet drops below it (or a stage finds no live
	// target at all), the run does not fail: the coordinator degrades to
	// a local solve from its last iteration-boundary snapshot, bitwise
	// identical to the distributed result. 0 means a floor of 1; a
	// negative value disables degradation, making fleet collapse a hard
	// error as in earlier releases.
	MinWorkers int
}

// RALSOptions groups the knobs of the randomized-ALS tier (the RALS
// algorithm). The zero value samples 10% of the nonzeros per mode update
// (SampleFraction 0.1), redraws every iteration, and reports an exact fit
// per iteration.
type RALSOptions struct {
	// SampleCount is the per-mode sample budget: how many weighted draws
	// each mode update's sketched MTTKRP uses. SampleFraction expresses
	// the same budget as a fraction of the nonzero count; set one or the
	// other, not both (both zero selects the 0.1-fraction default). A
	// budget >= nnz degenerates to the exact kernel — and the whole solve
	// to bitwise-exact ALS.
	SampleCount    int
	SampleFraction float64

	// ModeSampleCounts overrides the budget for individual modes; zero
	// entries defer to the global budget.
	ModeSampleCounts []int

	// ResampleEvery is the epoch length: iterations between leverage-score
	// refreshes and sample redraws. Exact fits are evaluated at epoch
	// boundaries. Default 1.
	ResampleEvery int

	// FinalFitOnly skips per-epoch exact fit evaluations, computing only
	// the final one; Tol-based convergence is then inactive.
	FinalFitOnly bool

	// ExactFinishIters makes the last k iterations run the exact kernel
	// for every mode — sampled iterations race to the neighborhood of the
	// solution, a short exact polish closes the gap to the exact fixed
	// point. 0 disables.
	ExactFinishIters int
}

// NTFOptions groups the knobs of the nonnegative-CP tier (the NCP
// algorithm). The zero value runs ntf.DefaultInnerIters coordinate-descent
// passes per row problem.
type NTFOptions struct {
	// InnerIters is the number of coordinate-descent passes each mode
	// update runs over every row problem. The first pass re-checks
	// saturated (pinned-at-zero) elements and unlocks the ones whose
	// partial gradient sign flipped; later passes skip them entirely.
	// <= 0 selects the default.
	InnerIters int
}

// FaultOptions groups fault injection and checkpointing.
type FaultOptions struct {
	// Chaos, when non-nil, injects a deterministic fault schedule: for the
	// simulated algorithms, node crashes / disk failures / stragglers /
	// network degradation against the cost model; for the Dist algorithm,
	// REAL faults at stage boundaries — worker kills, network partitions,
	// frame corruption, torn checkpoint writes (fault kinds with no
	// physical analogue are ignored). Distributed algorithms only.
	Chaos *ChaosSpec

	// CheckpointEvery, with CheckpointPath, writes an iteration-granular
	// checkpoint of the factor matrices after every CheckpointEvery-th
	// completed ALS iteration. Simulated distributed runs charge the
	// replicated HDFS write to the "Checkpoint" phase. DecomposeResume
	// restarts from the file.
	CheckpointEvery int
	CheckpointPath  string
}

// Options configures Decompose. Zero values select the documented
// defaults:
//
//	Field               Zero-value default
//	---------------------------------------------------------------------
//	Algorithm           QCOO
//	Rank                8
//	MaxIters            25
//	Tol                 1e-5
//	NoConvergenceCheck  false (the Tol test runs)
//	Parallelism         runtime.GOMAXPROCS(0)
//	Seed                0 (still fully deterministic)
//	Nodes               4 simulated nodes
//	WorkScale           1
//	OnIteration         nil (no progress callback)
//	Profile             cluster.CometProfile()
//	TracePath           "" (no trace written)
type Options struct {
	Algorithm Algorithm // default QCOO
	Rank      int       // decomposition rank R; default 8
	MaxIters  int       // maximum ALS iterations; default 25

	// Tol is the fit-improvement stopping tolerance; iteration stops once
	// |fit(k) - fit(k-1)| < Tol. The zero value keeps the 1e-5 default.
	// To run exactly MaxIters iterations set NoConvergenceCheck instead.
	Tol float64

	// NoConvergenceCheck disables the Tol test entirely, so exactly
	// MaxIters iterations run.
	NoConvergenceCheck bool

	// Parallelism is the number of worker goroutines the shared-memory
	// numeric kernels (serial MTTKRP, gram matrices, normalization, fit
	// reductions) fan out to, and the concurrency of DecomposeBest
	// restarts. <= 0 selects runtime.GOMAXPROCS(0). Factors are bitwise
	// identical for every value — partitioning is row-aligned and
	// reductions merge in a fixed block order.
	Parallelism int

	Seed      uint64  // deterministic initialization seed
	Nodes     int     // simulated worker nodes for distributed algorithms; default 4
	WorkScale float64 // cost-model multiplier when t is a 1/s-scale stand-in; default 1

	// OnIteration, when non-nil, is called after every completed ALS
	// iteration with the 0-based iteration number and the model fit;
	// returning true stops the run early, keeping the factors computed so
	// far. Honored by Serial, COO, and QCOO; BigTensor reports fit 0.
	OnIteration func(iter int, fit float64) (stop bool)

	// Profile overrides the cluster cost profile (default: CometProfile).
	Profile *cluster.Profile

	// TracePath, when set for a distributed algorithm, writes a Chrome
	// trace-event JSON (chrome://tracing, Perfetto) of the modeled
	// execution timeline to this file.
	TracePath string

	// Dist configures the real distributed runtime (Algorithm Dist, and
	// the sampled-MTTKRP distribution of Algorithm RALS).
	Dist DistOptions

	// RALS configures the randomized-ALS tier (Algorithm RALS).
	RALS RALSOptions

	// NTF configures the nonnegative-CP tier (Algorithm NCP).
	NTF NTFOptions

	// Faults configures fault injection and checkpointing.
	Faults FaultOptions

	// Chaos is the pre-grouping spelling of Faults.Chaos.
	//
	// Deprecated: set Faults.Chaos. Setting both is an error.
	Chaos *ChaosSpec

	// CheckpointEvery and CheckpointPath are the pre-grouping spellings of
	// Faults.CheckpointEvery and Faults.CheckpointPath.
	//
	// Deprecated: set the Faults fields. Setting both forms is an error.
	CheckpointEvery int
	CheckpointPath  string

	// DistAddrs is the pre-grouping spelling of Dist.Addrs.
	//
	// Deprecated: set Dist.Addrs. Setting both is an error.
	DistAddrs []string

	// DistLocalWorkers is the pre-grouping spelling of Dist.LocalWorkers.
	//
	// Deprecated: set Dist.LocalWorkers. Setting both is an error.
	DistLocalWorkers int

	// DistWorkerBin is the pre-grouping spelling of Dist.WorkerBin.
	//
	// Deprecated: set Dist.WorkerBin. Setting both is an error.
	DistWorkerBin string
}

// ChaosSpec configures deterministic fault injection. Events are scheduled
// by a pure function of (Seed, event index) against the cluster's stage
// clock, so a given spec replays bitwise-identically across runs and host
// parallelism. Zero-valued fields keep the documented defaults.
type ChaosSpec struct {
	Seed          uint64 // fault-schedule seed (independent of Options.Seed)
	HorizonStages uint64 // stages the events are spread over; default 100

	NodeCrashes  int // executors lost (cache dropped, recovery charged)
	DiskFailures int // HDFS block losses (executor survives)

	// Real-runtime fault kinds (Dist algorithm; ignored by the simulated
	// algorithms, which have no sockets or checkpoint files to damage).
	NetPartitions int // worker connections severed; the process survives and rejoins
	FrameCorrupts int // one-shot bit flips on a coordinator->worker frame (CRC-caught)
	TornWrites    int // checkpoint files damaged right after being written

	Stragglers      int     // slow-node windows
	StragglerFactor float64 // compute slowdown of a straggling node; default 4
	StragglerStages uint64  // window length in stages; default Horizon/4+1

	NetDrops  int     // degraded-network windows
	NetFactor float64 // bandwidth multiplier while degraded; default 0.5
	NetStages uint64  // window length in stages; default Horizon/4+1

	// Speculation, when > 0, enables speculative execution for nodes whose
	// slowdown is at least this threshold (Spark's spark.speculation).
	Speculation float64
}

// normalize maps the deprecated flat fields onto their grouped homes —
// rejecting conflicting double-specification — and applies the documented
// zero-value defaults. Every Decompose entry point goes through it.
func (o Options) normalize() (Options, error) {
	if o.Chaos != nil {
		if o.Faults.Chaos != nil {
			return o, fmt.Errorf("cstf: both Faults.Chaos and deprecated Chaos are set")
		}
		o.Faults.Chaos = o.Chaos
	}
	if o.CheckpointEvery != 0 {
		if o.Faults.CheckpointEvery != 0 {
			return o, fmt.Errorf("cstf: both Faults.CheckpointEvery and deprecated CheckpointEvery are set")
		}
		o.Faults.CheckpointEvery = o.CheckpointEvery
	}
	if o.CheckpointPath != "" {
		if o.Faults.CheckpointPath != "" {
			return o, fmt.Errorf("cstf: both Faults.CheckpointPath and deprecated CheckpointPath are set")
		}
		o.Faults.CheckpointPath = o.CheckpointPath
	}
	if len(o.DistAddrs) > 0 {
		if len(o.Dist.Addrs) > 0 {
			return o, fmt.Errorf("cstf: both Dist.Addrs and deprecated DistAddrs are set")
		}
		o.Dist.Addrs = o.DistAddrs
	}
	if o.DistLocalWorkers != 0 {
		if o.Dist.LocalWorkers != 0 {
			return o, fmt.Errorf("cstf: both Dist.LocalWorkers and deprecated DistLocalWorkers are set")
		}
		o.Dist.LocalWorkers = o.DistLocalWorkers
	}
	if o.DistWorkerBin != "" {
		if o.Dist.WorkerBin != "" {
			return o, fmt.Errorf("cstf: both Dist.WorkerBin and deprecated DistWorkerBin are set")
		}
		o.Dist.WorkerBin = o.DistWorkerBin
	}
	return o.withDefaults(), nil
}

func (o Options) withDefaults() Options {
	if o.Algorithm == "" {
		o.Algorithm = QCOO
	}
	if o.Rank == 0 {
		o.Rank = 8
	}
	if o.MaxIters == 0 {
		o.MaxIters = 25
	}
	if o.Tol == 0 {
		o.Tol = 1e-5
	}
	if o.NoConvergenceCheck {
		o.Tol = 0
	}
	if o.Parallelism <= 0 {
		o.Parallelism = par.Workers(0)
	}
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.WorkScale == 0 {
		o.WorkScale = 1
	}
	if o.Algorithm == RALS && o.RALS.SampleCount == 0 && o.RALS.SampleFraction == 0 && len(o.RALS.ModeSampleCounts) == 0 {
		o.RALS.SampleFraction = 0.1
	}
	return o
}

// Matrix is a read-only dense matrix view (factor matrices).
type Matrix struct {
	d *la.Dense
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.d.Rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.d.Cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.d.At(i, j) }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 { return la.VecClone(m.d.Row(i)) }

// Metrics reports the cost of a distributed run. It mixes two kinds of
// numbers that must never be conflated: the Sim*/␣*Bytes/Flops group is
// MODELED by the simulated cluster (internal/cluster) and is zero for the
// Dist algorithm, while the Wall/Wire/Worker group is MEASURED — real
// elapsed time and real bytes on TCP sockets — and is zero for the
// simulated algorithms.
type Metrics struct {
	// Simulated-cluster cost model (COO, QCOO, BigTensor). These are
	// predictions from the cost profile, not measurements.
	SimSeconds    float64 // modeled wall-clock of the whole run
	RemoteBytes   float64 // modeled shuffle bytes read from remote nodes
	LocalBytes    float64 // modeled shuffle bytes read locally
	Shuffles      int     // shuffle operations
	Flops         float64 // floating-point operations charged
	HadoopJobs    int     // MapReduce jobs launched (BigTensor only)
	SecondsByMode map[string]float64

	// Real measurements from the Dist runtime: actual wall clock and
	// actual bytes moved over worker sockets.
	WallSeconds       float64 // measured elapsed time of the run
	WireBytesSent     int64   // bytes written to worker TCP connections
	WireBytesRecv     int64   // bytes read from worker TCP connections
	WireShardBytes    int64   // payload bytes of tensor shards shipped
	WireFactorBytes   int64   // payload bytes of factor state shipped (full + delta)
	WireDeltaFrames   int     // factor-delta frames sent
	FactorResyncs     int     // full-factor resyncs forced by task reassignment
	DistWorkers       int     // worker processes the session started with
	WorkerDeaths      int     // real workers lost (timeout, socket error, kill)
	TaskReassignments int     // tasks re-dispatched after a worker death
	ShardResends      int     // tensor shards re-shipped to substitute workers
	WorkerRejoins     int     // disconnected workers re-admitted after redial
	CorruptFrames     int     // checksum-failed frames the coordinator rejected
	DistDegraded      bool    // fleet collapsed; run finished coordinator-local

	// Fault-tolerance counters, nonzero only when Chaos or task-failure
	// injection was active.
	NodeCrashes          int     // node-crash faults delivered
	DiskFailures         int     // disk-failure faults delivered
	TaskFailures         int     // task attempts that failed and were retried
	StageRetries         int     // full-stage re-executions
	StragglerStages      int     // stages run with a straggling node
	SpeculativeTasks     int     // tasks rescued by speculative execution
	RecomputedPartitions int     // RDD partitions rebuilt from lineage
	LostCacheBytes       float64 // cached bytes destroyed by crashes
	ReReplicatedBytes    float64 // HDFS bytes copied to restore replication
	RecoverySeconds      float64 // modeled time spent in recovery work
	CheckpointSeconds    float64 // modeled time spent writing checkpoints
}

// Decomposition is a computed CP model [lambda; A_1 ... A_N].
type Decomposition struct {
	Lambda  []float64 // component weights, length R
	Factors []*Matrix // one per mode, column-normalized
	Fits    []float64 // fit after each iteration (empty for BigTensor)
	Iters   int
	Metrics Metrics // zero for the serial algorithm; summed over restarts for DecomposeBest

	// Restart and Seed identify which initialization produced this
	// result: Restart is the 0-based restart index (always 0 for plain
	// Decompose) and Seed the derived initialization seed actually used.
	Restart int
	Seed    uint64
}

// Fit returns the final model fit in [0, 1] (1 is exact).
func (d *Decomposition) Fit() float64 {
	if len(d.Fits) == 0 {
		return 0
	}
	return d.Fits[len(d.Fits)-1]
}

// Rank returns the decomposition rank.
func (d *Decomposition) Rank() int { return len(d.Lambda) }

// At evaluates the model at one coordinate:
// sum_r lambda_r prod_n A_n(idx_n, r).
func (d *Decomposition) At(idx ...int) float64 {
	if len(idx) != len(d.Factors) {
		panic("cstf: coordinate order mismatch")
	}
	var s float64
	for r := range d.Lambda {
		p := d.Lambda[r]
		for n, i := range idx {
			p *= d.Factors[n].At(i, r)
		}
		s += p
	}
	return s
}

// Component describes one index's weight within a factor column.
type Component struct {
	Index  int
	Weight float64
}

// TopK returns the k indices of `mode` with the largest absolute loading
// in component r — the standard way to read a CP factor ("top nouns of
// concept 3").
func (d *Decomposition) TopK(mode, r, k int) []Component {
	f := d.Factors[mode]
	out := make([]Component, 0, f.Rows())
	for i := 0; i < f.Rows(); i++ {
		out = append(out, Component{Index: i, Weight: f.At(i, r)})
	}
	sort.Slice(out, func(a, b int) bool {
		wa, wb := out[a].Weight, out[b].Weight
		if wa < 0 {
			wa = -wa
		}
		if wb < 0 {
			wb = -wb
		}
		return wa > wb
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Decompose runs CP-ALS on t with the selected algorithm. It is
// DecomposeContext with a background context.
func Decompose(t *Tensor, o Options) (*Decomposition, error) {
	return DecomposeContext(context.Background(), t, o)
}

// DecomposeContext runs CP-ALS on t with the selected algorithm, checking
// ctx for cancellation between ALS iterations: a cancelled context aborts
// the run and returns ctx's error. All four algorithms honor it.
func DecomposeContext(ctx context.Context, t *Tensor, o Options) (*Decomposition, error) {
	no, err := o.normalize()
	if err != nil {
		return nil, err
	}
	return decompose(ctx, t, no, resumeState{})
}

// resumeState carries a loaded checkpoint into the solver options.
type resumeState struct {
	startIter int
	factors   []*la.Dense
	lambda    []float64
	fits      []float64

	// rals-only: the unnormalized factors and the sampling schedule the
	// checkpointed run used, restored so the resume redraws bitwise.
	unnorm       []*la.Dense
	ralsResample int
	ralsCounts   []int

	// ncp-only: the saturation bitmaps and inner pass count of the
	// checkpointed run, restored so the resume skips the same elements.
	ntfSaturated [][]byte
	ntfInner     int
}

func decompose(ctx context.Context, t *Tensor, o Options, rs resumeState) (*Decomposition, error) {
	opts := cpals.Options{
		Rank: o.Rank, MaxIters: o.MaxIters, Tol: o.Tol, Seed: o.Seed,
		Parallelism: o.Parallelism, Ctx: ctx, OnIteration: o.OnIteration,
		StartIter: rs.startIter, InitFactors: rs.factors,
		InitLambda: rs.lambda, InitFits: rs.fits,
	}
	if o.Faults.CheckpointEvery > 0 && o.Faults.CheckpointPath != "" && o.Algorithm != RALS && o.Algorithm != NCP {
		opts.CheckpointEvery = o.Faults.CheckpointEvery
		alg, rank, seed, dims := o.Algorithm, o.Rank, o.Seed, t.Dims()
		ckWorkers := 0
		if o.Algorithm == Dist {
			if ckWorkers = len(o.Dist.Addrs); ckWorkers == 0 {
				ckWorkers = o.Dist.LocalWorkers
			}
		}
		path := o.Faults.CheckpointPath
		opts.OnCheckpoint = func(iter int, lambda []float64, factors []*la.Dense, fits []float64) error {
			return writeCheckpoint(path, checkpointFrom(alg, rank, ckWorkers, seed, iter, dims, lambda, factors, fits))
		}
	}
	if o.Faults.Chaos != nil && (o.Algorithm == Serial || o.Algorithm == RALS || o.Algorithm == NCP) {
		return nil, fmt.Errorf("cstf: chaos injection requires a distributed algorithm")
	}

	profile := cluster.CometProfile()
	if o.Profile != nil {
		profile = *o.Profile
	}
	newCluster := func() *cluster.Cluster {
		c := cluster.New(o.Nodes, profile)
		c.SetWorkScale(o.WorkScale)
		if o.TracePath != "" {
			c.EnableTrace()
		}
		if o.Faults.Chaos != nil {
			c.SetFaultInjector(chaosPlan(o.Faults.Chaos, o.Nodes))
			if o.Faults.Chaos.Speculation > 0 {
				c.EnableSpeculation(o.Faults.Chaos.Speculation)
			}
		}
		return c
	}

	var res *cpals.Result
	var err error
	var c *cluster.Cluster
	var distStats *dist.Stats
	switch o.Algorithm {
	case Serial:
		res, err = cpals.Solve(t.coo, opts)
	case Dist:
		res, distStats, err = distSolve(t, o, opts)
	case RALS:
		res, distStats, err = ralsSolve(ctx, t, o, rs)
	case NCP:
		res, err = ncpSolve(ctx, t, o, rs)
	case COO:
		c = newCluster()
		rctx := rdd.NewContext(c, o.Nodes*profile.CoresPerNode)
		rctx.EnableRecovery()
		res, err = core.SolveCOO(rctx, t.coo, opts)
	case QCOO:
		c = newCluster()
		rctx := rdd.NewContext(c, o.Nodes*profile.CoresPerNode)
		rctx.EnableRecovery()
		res, err = core.SolveQCOO(rctx, t.coo, opts)
	case BigTensor:
		c = newCluster()
		env := mapreduce.NewEnv(c, o.Nodes*profile.CoresPerNode)
		env.EnableRecovery()
		res, err = bigtensor.Solve(env, t.coo, opts)
	default:
		return nil, fmt.Errorf("cstf: unknown algorithm %q (known: %s)", o.Algorithm, strings.Join(AlgorithmNames(), ", "))
	}
	if err != nil {
		return nil, err
	}

	out := &Decomposition{
		Lambda: res.Lambda,
		Fits:   res.Fits,
		Iters:  res.Iters,
		Seed:   o.Seed,
	}
	for _, f := range res.Factors {
		out.Factors = append(out.Factors, &Matrix{d: f})
	}
	if c != nil && o.TracePath != "" {
		f, err := os.Create(o.TracePath)
		if err != nil {
			return nil, err
		}
		if err := cluster.WriteChromeTrace(f, c.Trace()); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if distStats != nil {
		out.Metrics = Metrics{
			WallSeconds:       distStats.WallSeconds,
			WireBytesSent:     distStats.BytesSent,
			WireBytesRecv:     distStats.BytesRecv,
			WireShardBytes:    distStats.ShardBytes,
			WireFactorBytes:   distStats.FactorBytes,
			WireDeltaFrames:   distStats.DeltaFrames,
			FactorResyncs:     distStats.Resyncs,
			DistWorkers:       distStats.Workers,
			WorkerDeaths:      distStats.WorkerDeaths,
			TaskReassignments: distStats.Reassignments,
			ShardResends:      distStats.ShardResends,
			WorkerRejoins:     distStats.Rejoins,
			CorruptFrames:     distStats.CorruptFrames,
			DistDegraded:      distStats.Degraded,
		}
	}
	if c != nil {
		m := c.Metrics()
		out.Metrics = Metrics{
			SimSeconds:    c.SimTime(),
			RemoteBytes:   m.TotalRemoteBytes(),
			LocalBytes:    m.TotalLocalBytes(),
			Shuffles:      m.TotalShuffles(),
			Flops:         m.TotalFlops(),
			HadoopJobs:    m.Jobs,
			SecondsByMode: m.SimTime,

			NodeCrashes:          m.NodeCrashes,
			DiskFailures:         m.DiskFailures,
			TaskFailures:         m.TaskFailures,
			StageRetries:         m.StageRetries,
			StragglerStages:      m.StragglerStages,
			SpeculativeTasks:     m.SpeculativeTasks,
			RecomputedPartitions: m.RecomputedPartitions,
			LostCacheBytes:       m.LostCacheBytes,
			ReReplicatedBytes:    m.ReReplicatedBytes,
			RecoverySeconds:      m.SimTime[cluster.PhaseRecovery],
			CheckpointSeconds:    m.SimTime[cluster.PhaseCheckpoint],
		}
	}
	return out, nil
}

// distSolve runs the real distributed runtime: workers from Dist.Addrs, or
// locally launched ones (forked cstf-worker processes when a binary is
// available, in-process loopback workers otherwise). A ChaosSpec schedules
// REAL faults against the session's stage clock: worker kills, network
// partitions (severed connections the worker survives and rejoins from),
// frame corruption (CRC-caught bit flips), and torn checkpoint writes.
// Fault kinds with no physical analogue here (stragglers, disk failures,
// network degradation) are ignored.
func distSolve(t *Tensor, o Options, opts cpals.Options) (*cpals.Result, *dist.Stats, error) {
	cfg := dist.Config{Addrs: o.Dist.Addrs}
	workers := len(o.Dist.Addrs)
	if workers == 0 {
		if o.Dist.LocalWorkers <= 0 {
			return nil, nil, fmt.Errorf("cstf: the dist algorithm needs Dist.Addrs or Dist.LocalWorkers")
		}
		lc, err := dist.LaunchLocal(o.Dist.LocalWorkers, o.Dist.WorkerBin)
		if err != nil {
			return nil, nil, err
		}
		defer lc.Close()
		cfg = lc.Config()
		workers = o.Dist.LocalWorkers
	}
	cfg.NoDelta = o.Dist.DisableDeltaBroadcast
	cfg.NoPipeline = o.Dist.DisablePipeline
	cfg.UseCSF = o.Dist.CSFKernel
	cfg.MinWorkers = o.Dist.MinWorkers
	if o.Faults.Chaos != nil {
		cfg.Plan = chaosPlan(o.Faults.Chaos, workers)
		if o.Faults.Chaos.TornWrites > 0 && o.Faults.CheckpointPath != "" {
			// A TornWrite event damages the just-written checkpoint file
			// in place — the on-disk state a crash mid-write would leave.
			// The ckpt checksum must surface it as a CorruptError on
			// resume, never as silently wrong factors.
			path := o.Faults.CheckpointPath
			cfg.OnTornWrite = func(int) { tearFile(path) }
		}
	}
	res, stats, err := dist.Solve(t.coo, opts, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, &stats, nil
}

// ralsSolve runs the randomized-ALS tier: serially by default, or with the
// sampled MTTKRPs distributed over the real runtime when Options.Dist names
// a fleet. The distributed composition changes WHERE the sketched MTTKRPs
// run, not what they compute, so results are bitwise identical to the
// serial rals solve for every worker count.
func ralsSolve(ctx context.Context, t *Tensor, o Options, rs resumeState) (*cpals.Result, *dist.Stats, error) {
	ro := rals.Options{
		Rank: o.Rank, MaxIters: o.MaxIters, Tol: o.Tol, Seed: o.Seed,
		Parallelism: o.Parallelism, Ctx: ctx, OnIteration: o.OnIteration,
		SampleCount:      o.RALS.SampleCount,
		SampleFraction:   o.RALS.SampleFraction,
		ModeSampleCounts: o.RALS.ModeSampleCounts,
		ResampleEvery:    o.RALS.ResampleEvery,
		FinalFitOnly:     o.RALS.FinalFitOnly,
		ExactFinishIters: o.RALS.ExactFinishIters,
		StartIter:        rs.startIter, InitFactors: rs.factors,
		InitLambda: rs.lambda, InitFits: rs.fits, InitUnnorm: rs.unnorm,
	}
	if rs.ralsResample > 0 {
		// Resume: the checkpointed schedule wins over the options so the
		// redraws stay bitwise, whatever budget spelling the caller passed.
		ro.ResampleEvery = rs.ralsResample
		ro.SampleCount, ro.SampleFraction = 0, 0
		ro.ModeSampleCounts = rs.ralsCounts
	}
	workers := len(o.Dist.Addrs)
	if workers == 0 {
		workers = o.Dist.LocalWorkers
	}
	if o.Faults.CheckpointEvery > 0 && o.Faults.CheckpointPath != "" {
		ro.CheckpointEvery = o.Faults.CheckpointEvery
		rank, seed, dims, path := o.Rank, o.Seed, t.Dims(), o.Faults.CheckpointPath
		ckWorkers := workers
		ro.OnCheckpoint = func(iter int, lambda []float64, factors []*la.Dense, fits []float64, st *rals.State) error {
			cp := checkpointFrom(RALS, rank, ckWorkers, seed, iter, dims, lambda, factors, fits)
			cp.RALS = &ckpt.RALSState{
				ResampleEvery: st.ResampleEvery,
				SampleCounts:  append([]int(nil), st.SampleCounts...),
			}
			for _, u := range st.Unnorm {
				cp.RALS.Unnorm = append(cp.RALS.Unnorm, la.VecClone(u.Data))
			}
			return writeCheckpoint(path, cp)
		}
	}
	if workers > 0 {
		cfg := dist.Config{Addrs: o.Dist.Addrs}
		if len(o.Dist.Addrs) == 0 {
			lc, err := dist.LaunchLocal(o.Dist.LocalWorkers, o.Dist.WorkerBin)
			if err != nil {
				return nil, nil, err
			}
			defer lc.Close()
			cfg = lc.Config()
		}
		cfg.MinWorkers = o.Dist.MinWorkers
		res, stats, err := dist.SolveSampled(t.coo, ro, cfg)
		if err != nil {
			return nil, nil, err
		}
		return res, &stats, nil
	}
	res, err := rals.Solve(t.coo, ro)
	return res, nil, err
}

// ncpSolve runs the nonnegative-CP tier: a shared-memory solve (the CD row
// problems fan out over Options.Parallelism with bitwise-invariant results)
// with the saturation bitmaps checkpointed alongside the factors.
func ncpSolve(ctx context.Context, t *Tensor, o Options, rs resumeState) (*cpals.Result, error) {
	no := ntf.Options{
		Rank: o.Rank, MaxIters: o.MaxIters, Tol: o.Tol, Seed: o.Seed,
		Parallelism: o.Parallelism, Ctx: ctx, OnIteration: o.OnIteration,
		InnerIters: o.NTF.InnerIters,
		StartIter:  rs.startIter, InitFactors: rs.factors,
		InitLambda: rs.lambda, InitFits: rs.fits, InitSaturated: rs.ntfSaturated,
	}
	if rs.ntfInner > 0 {
		// Resume: the checkpointed inner pass count wins over the options so
		// the resumed trajectory matches the uninterrupted run.
		no.InnerIters = rs.ntfInner
	}
	if o.Faults.CheckpointEvery > 0 && o.Faults.CheckpointPath != "" {
		no.CheckpointEvery = o.Faults.CheckpointEvery
		rank, seed, dims, path := o.Rank, o.Seed, t.Dims(), o.Faults.CheckpointPath
		no.OnCheckpoint = func(iter int, lambda []float64, factors []*la.Dense, fits []float64, st *ntf.State) error {
			cp := checkpointFrom(NCP, rank, 0, seed, iter, dims, lambda, factors, fits)
			cp.NTF = &ckpt.NTFState{InnerIters: st.InnerIters}
			for _, s := range st.Saturated {
				cp.NTF.Saturated = append(cp.NTF.Saturated, append([]byte(nil), s...))
			}
			return writeCheckpoint(path, cp)
		}
	}
	return ntf.Solve(t.coo, no)
}

// tearFile truncates a file to half its size — the torn tail a crash
// mid-write leaves when the writer lacks (or hasn't reached) the atomic
// rename. Used only by chaos TornWrite injection.
func tearFile(path string) {
	st, err := os.Stat(path)
	if err != nil {
		return
	}
	os.Truncate(path, st.Size()/2)
}

// chaosPlan translates the public spec into the internal fault plan.
func chaosPlan(cs *ChaosSpec, nodes int) *chaos.FaultPlan {
	return chaos.NewPlan(cs.Seed, chaos.Spec{
		Nodes:           nodes,
		Horizon:         cs.HorizonStages,
		Crashes:         cs.NodeCrashes,
		DiskFailures:    cs.DiskFailures,
		NetPartitions:   cs.NetPartitions,
		FrameCorrupts:   cs.FrameCorrupts,
		TornWrites:      cs.TornWrites,
		Stragglers:      cs.Stragglers,
		StragglerFactor: cs.StragglerFactor,
		StragglerStages: cs.StragglerStages,
		NetDrops:        cs.NetDrops,
		NetFactor:       cs.NetFactor,
		NetStages:       cs.NetStages,
	})
}

// DecomposeBest runs Decompose `restarts` times with initialization seeds
// derived from o.Seed and returns the result with the highest fit — the
// standard remedy for CP-ALS's sensitivity to its starting point. Only
// meaningful for algorithms that report per-iteration fits (Serial, COO,
// QCOO). It is DecomposeBestContext with a background context.
func DecomposeBest(t *Tensor, o Options, restarts int) (*Decomposition, error) {
	return DecomposeBestContext(context.Background(), t, o, restarts)
}

// DecomposeBestContext is DecomposeBest with cancellation. The restarts run
// CONCURRENTLY, up to o.Parallelism at a time; each restart's result
// depends only on its derived seed, so the outcome is identical to the
// sequential loop. The winner — highest fit, ties broken by the lowest
// restart index — carries its restart index and seed in
// Decomposition.Restart/Seed, and for distributed algorithms its Metrics
// are replaced by the SUM of the simulated cost over all restarts (the
// cluster ran every restart, not just the winner).
func DecomposeBestContext(ctx context.Context, t *Tensor, o Options, restarts int) (*Decomposition, error) {
	if restarts <= 0 {
		return nil, fmt.Errorf("cstf: restarts must be positive, got %d", restarts)
	}
	o, err := o.normalize()
	if err != nil {
		return nil, err
	}
	decs := make([]*Decomposition, restarts)
	errs := make([]error, restarts)
	par.Run(o.Parallelism, restarts, func(r int) {
		or := o
		or.Seed = RestartSeed(o.Seed, r)
		dec, err := DecomposeContext(ctx, t, or)
		if err != nil {
			errs[r] = err
			return
		}
		dec.Restart = r
		decs[r] = dec
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	best := decs[0]
	total := Metrics{SecondsByMode: map[string]float64{}}
	for _, dec := range decs {
		if dec.Fit() > best.Fit() {
			best = dec
		}
		m := dec.Metrics
		total.SimSeconds += m.SimSeconds
		total.RemoteBytes += m.RemoteBytes
		total.LocalBytes += m.LocalBytes
		total.Shuffles += m.Shuffles
		total.Flops += m.Flops
		total.HadoopJobs += m.HadoopJobs
		total.WallSeconds += m.WallSeconds
		total.WireBytesSent += m.WireBytesSent
		total.WireBytesRecv += m.WireBytesRecv
		total.WireShardBytes += m.WireShardBytes
		total.WireFactorBytes += m.WireFactorBytes
		total.WireDeltaFrames += m.WireDeltaFrames
		total.FactorResyncs += m.FactorResyncs
		if m.DistWorkers > total.DistWorkers {
			total.DistWorkers = m.DistWorkers
		}
		total.WorkerDeaths += m.WorkerDeaths
		total.TaskReassignments += m.TaskReassignments
		total.ShardResends += m.ShardResends
		total.WorkerRejoins += m.WorkerRejoins
		total.CorruptFrames += m.CorruptFrames
		total.DistDegraded = total.DistDegraded || m.DistDegraded
		for phase, s := range m.SecondsByMode {
			total.SecondsByMode[phase] += s
		}
	}
	if len(total.SecondsByMode) == 0 {
		total.SecondsByMode = nil
	}
	best.Metrics = total
	return best, nil
}

// RestartSeed returns the initialization seed DecomposeBest derives for
// restart r of a run whose Options.Seed is base. Exposed so callers can
// reproduce a winning restart with plain Decompose.
func RestartSeed(base uint64, r int) uint64 { return rng.Hash64(base, uint64(r)) }

// EstimateRank fits ranks 1..maxRank serially and reports each rank's fit
// and CORCONDIA core consistency, plus the recommended rank (the largest
// whose consistency stays above `threshold`; 80 is a conservative choice).
// Orders up to 4.
func EstimateRank(t *Tensor, maxRank int, threshold float64, seed uint64) ([]RankEstimate, int, error) {
	ests, best, err := cpals.EstimateRank(t.coo, maxRank,
		cpals.Options{MaxIters: 50, Tol: 1e-8, Seed: seed}, threshold)
	if err != nil {
		return nil, 0, err
	}
	out := make([]RankEstimate, len(ests))
	for i, e := range ests {
		out[i] = RankEstimate{Rank: e.Rank, Fit: e.Fit, CoreConsistency: e.CoreConsistency}
	}
	return out, best, nil
}

// RankEstimate is one candidate rank's diagnostics from EstimateRank.
type RankEstimate struct {
	Rank            int
	Fit             float64
	CoreConsistency float64
}
