package cstf

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(4, 5, 6)
	x.Append(1.5, 0, 1, 2)
	x.Append(2.5, 3, 4, 5)
	if x.Order() != 3 || x.NNZ() != 2 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
	if d := x.Dims(); d[0] != 4 || d[1] != 5 || d[2] != 6 {
		t.Fatalf("dims %v", d)
	}
	if x.At(3, 4, 5) != 2.5 {
		t.Fatal("At wrong")
	}
	if math.Abs(x.Norm()-math.Sqrt(1.5*1.5+2.5*2.5)) > 1e-12 {
		t.Fatal("norm wrong")
	}
	if !strings.Contains(x.String(), "nnz=2") {
		t.Fatalf("string: %s", x.String())
	}
	x.Append(1.0, 0, 1, 2)
	x.Dedup()
	if x.NNZ() != 2 || x.At(0, 1, 2) != 2.5 {
		t.Fatal("dedup failed")
	}
}

func TestTensorIO(t *testing.T) {
	x := RandomTensor(1, 200, 10, 10, 10)
	var buf bytes.Buffer
	if err := x.WriteTNS(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() {
		t.Fatalf("round trip lost entries: %d vs %d", y.NNZ(), x.NNZ())
	}
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := x.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTensor(path); err != nil {
		t.Fatal(err)
	}
}

func TestGenerators(t *testing.T) {
	if z := ZipfTensor(2, 500, 0.8, 100, 100, 100); z.NNZ() < 400 {
		t.Fatalf("zipf nnz %d", z.NNZ())
	}
	if l := LowRankTensor(3, 500, 2, 0.01, 20, 20, 20); l.NNZ() < 400 {
		t.Fatalf("lowrank nnz %d", l.NNZ())
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 5 {
		t.Fatalf("datasets: %v", names)
	}
	x, err := Dataset("nell1", 2e-5)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 3 {
		t.Fatal("nell1 must be 3rd order")
	}
	if _, err := Dataset("bogus", 0.5); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestDecomposeAllAlgorithmsAgree(t *testing.T) {
	x := RandomTensor(7, 500, 18, 15, 12)
	var fits []float64
	for _, algo := range []Algorithm{Serial, COO, QCOO, BigTensor} {
		dec, err := Decompose(x, Options{
			Algorithm: algo, Rank: 2, MaxIters: 3, NoConvergenceCheck: true, Seed: 11, Nodes: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if dec.Rank() != 2 || len(dec.Factors) != 3 {
			t.Fatalf("%s: rank %d factors %d", algo, dec.Rank(), len(dec.Factors))
		}
		fits = append(fits, dec.Fit())
	}
	// Serial, COO and QCOO report per-iteration fits; BigTensor reports a
	// final fit. All four must agree after the same number of iterations.
	for i := 1; i < len(fits); i++ {
		if math.Abs(fits[i]-fits[0]) > 1e-6 {
			t.Fatalf("fit disagreement: %v", fits)
		}
	}
}

func TestDecomposeDefaults(t *testing.T) {
	x := RandomTensor(9, 400, 30, 20, 10)
	dec, err := Decompose(x, Options{MaxIters: 2, NoConvergenceCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rank() != 8 {
		t.Fatalf("default rank: %d", dec.Rank())
	}
	if dec.Metrics.SimSeconds <= 0 || dec.Metrics.Shuffles == 0 {
		t.Fatalf("default algorithm is distributed; metrics missing: %+v", dec.Metrics)
	}
}

func TestDecomposeSerialHasNoClusterMetrics(t *testing.T) {
	x := RandomTensor(9, 300, 20, 20, 10)
	dec, err := Decompose(x, Options{Algorithm: Serial, Rank: 2, MaxIters: 2, NoConvergenceCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Metrics.SimSeconds != 0 {
		t.Fatal("serial runs must not report cluster metrics")
	}
}

func TestDecomposeErrors(t *testing.T) {
	x := RandomTensor(1, 100, 10, 10, 10, 10)
	if _, err := Decompose(x, Options{Algorithm: BigTensor, Rank: 2, MaxIters: 1}); err == nil {
		t.Fatal("BigTensor must reject 4th-order tensors")
	}
	if _, err := Decompose(x, Options{Algorithm: "nope", Rank: 2, MaxIters: 1}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	empty := NewTensor(3, 3, 3)
	if _, err := Decompose(empty, Options{Rank: 2, MaxIters: 1}); err == nil {
		t.Fatal("empty tensor must error")
	}
}

func TestDecompositionAtAndTopK(t *testing.T) {
	x := RandomTensor(4, 600, 25, 20, 15)
	dec, err := Decompose(x, Options{Algorithm: Serial, Rank: 3, MaxIters: 5, NoConvergenceCheck: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// At must equal the explicit reconstruction.
	var want float64
	for r := 0; r < 3; r++ {
		want += dec.Lambda[r] * dec.Factors[0].At(1, r) * dec.Factors[1].At(2, r) * dec.Factors[2].At(3, r)
	}
	if got := dec.At(1, 2, 3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("At = %v, want %v", got, want)
	}
	// TopK is sorted by |weight| and bounded by k.
	top := dec.TopK(0, 0, 5)
	if len(top) != 5 {
		t.Fatalf("topk returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if math.Abs(top[i].Weight) > math.Abs(top[i-1].Weight)+1e-15 {
			t.Fatal("topk not sorted by |weight|")
		}
	}
	// Matrix accessors.
	f := dec.Factors[0]
	if f.Rows() != 25 || f.Cols() != 3 {
		t.Fatalf("factor dims %dx%d", f.Rows(), f.Cols())
	}
	row := f.Row(0)
	row[0] = 999 // must be a copy
	if f.At(0, 0) == 999 {
		t.Fatal("Row must return a copy")
	}
}

func TestQCOOBeatsCOOOnLargeClusters(t *testing.T) {
	// The headline behaviour, through the public API: at 32 nodes QCOO's
	// modeled runtime beats COO's on the same tensor.
	x, err := Dataset("delicious3d", 5e-5)
	if err != nil {
		t.Fatal(err)
	}
	run := func(a Algorithm) float64 {
		dec, err := Decompose(x, Options{
			Algorithm: a, Rank: 2, MaxIters: 3, NoConvergenceCheck: true, Nodes: 32, WorkScale: 2e4,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dec.Metrics.SimSeconds
	}
	coo, qcoo := run(COO), run(QCOO)
	if qcoo >= coo {
		t.Fatalf("QCOO (%.1fs) must beat COO (%.1fs) at 32 nodes", qcoo, coo)
	}
}

func TestTensorPermuteAndStats(t *testing.T) {
	x := NewTensor(4, 5, 6)
	x.Append(2.0, 1, 2, 3)
	y := x.Permute(2, 0, 1)
	if d := y.Dims(); d[0] != 6 || d[1] != 4 || d[2] != 5 {
		t.Fatalf("permuted dims %v", d)
	}
	if y.At(3, 1, 2) != 2.0 {
		t.Fatal("permuted value misplaced")
	}
	st := x.Stats(0)
	if st.NonEmpty != 1 || st.MaxCount != 1 || st.Skew != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTensorBinaryIO(t *testing.T) {
	x := RandomTensor(3, 500, 20, 20, 20)
	var buf bytes.Buffer
	if err := x.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	y, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() || y.Norm() != x.Norm() {
		t.Fatal("binary round trip lost data")
	}
	path := filepath.Join(t.TempDir(), "x.bin")
	if err := x.SaveBinary(path); err != nil {
		t.Fatal(err)
	}
	z, err := LoadBinaryTensor(path)
	if err != nil {
		t.Fatal(err)
	}
	if z.NNZ() != x.NNZ() {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadBinaryTensor(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestResidualMatchesFit(t *testing.T) {
	x := DenseLowRankTensor(5, 2, 0.01, 20, 16, 12)
	dec, err := Decompose(x, Options{Algorithm: Serial, Rank: 2, MaxIters: 30, Tol: 1e-9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// On the training tensor, Residual = 1 - Fit (same identity).
	if got, want := dec.Residual(x), 1-dec.Fit(); math.Abs(got-want) > 1e-7 {
		t.Fatalf("residual %v, want %v", got, want)
	}
	// A perfect-rank decomposition explains nearly everything.
	if dec.Residual(x) > 0.05 {
		t.Fatalf("residual %v too high for planted model", dec.Residual(x))
	}
}

func TestDecomposeTraceOutput(t *testing.T) {
	x := RandomTensor(2, 300, 15, 12, 10)
	path := filepath.Join(t.TempDir(), "trace.json")
	_, err := Decompose(x, Options{
		Algorithm: QCOO, Rank: 2, MaxIters: 1, NoConvergenceCheck: true, Nodes: 2, TracePath: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) < 10 {
		t.Fatalf("trace too small: %d events", len(events))
	}
}

func TestCoreConsistencyPublicAPI(t *testing.T) {
	x := DenseLowRankTensor(8, 2, 0.005, 14, 12, 10)
	good, err := Decompose(x, Options{Algorithm: Serial, Rank: 2, MaxIters: 100, Tol: 1e-12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Decompose(x, Options{Algorithm: Serial, Rank: 5, MaxIters: 100, Tol: 1e-12, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ccGood, err := good.CoreConsistency(x)
	if err != nil {
		t.Fatal(err)
	}
	ccOver, err := over.CoreConsistency(x)
	if err != nil {
		t.Fatal(err)
	}
	if ccGood < 80 || ccOver >= ccGood {
		t.Fatalf("rank diagnostic: true-rank %v, over-factored %v", ccGood, ccOver)
	}
}

func TestDecomposeBestAndEstimateRank(t *testing.T) {
	x := DenseLowRankTensor(12, 2, 0.02, 12, 10, 8)
	best, err := DecomposeBest(x, Options{
		Algorithm: Serial, Rank: 2, MaxIters: 30, Tol: 1e-8, Seed: 1,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if best.Fit() < 0.9 {
		t.Fatalf("best-of-3 fit %v", best.Fit())
	}
	if _, err := DecomposeBest(x, Options{Rank: 2, MaxIters: 1}, 0); err == nil {
		t.Fatal("0 restarts must error")
	}

	ests, rec, err := EstimateRank(x, 4, 80, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 4 || rec < 1 || rec > 4 {
		t.Fatalf("estimates %v, recommended %d", ests, rec)
	}
}
