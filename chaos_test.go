package cstf_test

import (
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"cstf"
)

// A fault schedule dense enough that a 2-iteration run is guaranteed to
// see every event kind.
func testChaos() *cstf.ChaosSpec {
	return &cstf.ChaosSpec{
		Seed:            1,
		HorizonStages:   8,
		NodeCrashes:     1,
		Stragglers:      1,
		StragglerFactor: 4,
	}
}

// An identical ChaosSpec seed must replay bitwise-identically: same fault
// metrics, same factors, same fits — across repeated runs and across every
// host Parallelism setting (the fault schedule keys off the stage clock,
// never off goroutine timing).
func TestChaosDeterministicAcrossRunsAndParallelism(t *testing.T) {
	x := apiTestTensor()
	opt := cstf.Options{
		Algorithm: cstf.COO, Rank: 2, MaxIters: 2, NoConvergenceCheck: true,
		Seed: 3, Chaos: testChaos(),
	}
	opt.Parallelism = 1
	base, err := cstf.Decompose(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.Metrics.NodeCrashes != 1 {
		t.Fatalf("chaos schedule did not fire: %+v", base.Metrics)
	}
	if base.Metrics.RecomputedPartitions == 0 {
		t.Fatalf("crash recovered without lineage recomputation: %+v", base.Metrics)
	}
	for _, workers := range []int{1, 2, 8} {
		opt.Parallelism = workers
		got, err := cstf.Decompose(x, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Metrics, base.Metrics) {
			t.Fatalf("parallelism %d: metrics diverged:\n%+v\nvs\n%+v", workers, got.Metrics, base.Metrics)
		}
		if !reflect.DeepEqual(got.Fits, base.Fits) {
			t.Fatalf("parallelism %d: fits diverged: %v vs %v", workers, got.Fits, base.Fits)
		}
		requireSameFactors(t, base, got, 0)
	}
}

// Lineage recomputation is exact: a run that loses a node mid-iteration
// must converge to bitwise the same factors as the fault-free run, just
// with recovery time charged on top.
func TestChaosRecoveryMatchesFaultFree(t *testing.T) {
	x := apiTestTensor()
	for _, algo := range []cstf.Algorithm{cstf.COO, cstf.QCOO} {
		opt := cstf.Options{
			Algorithm: algo, Rank: 2, MaxIters: 2, NoConvergenceCheck: true, Seed: 3,
		}
		clean, err := cstf.Decompose(x, opt)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		opt.Faults.Chaos = testChaos()
		faulty, err := cstf.Decompose(x, opt)
		if err != nil {
			t.Fatalf("%s with chaos: %v", algo, err)
		}
		if faulty.Metrics.NodeCrashes == 0 || faulty.Metrics.RecomputedPartitions == 0 {
			t.Fatalf("%s: no crash delivered: %+v", algo, faulty.Metrics)
		}
		if faulty.Metrics.RecoverySeconds <= 0 {
			t.Fatalf("%s: recovery was free: %+v", algo, faulty.Metrics)
		}
		if faulty.Metrics.SimSeconds <= clean.Metrics.SimSeconds {
			t.Errorf("%s: faulty run (%.2fs) not slower than clean (%.2fs)",
				algo, faulty.Metrics.SimSeconds, clean.Metrics.SimSeconds)
		}
		if !reflect.DeepEqual(faulty.Fits, clean.Fits) {
			t.Fatalf("%s: fits changed under faults: %v vs %v", algo, faulty.Fits, clean.Fits)
		}
		requireSameFactors(t, clean, faulty, 0)
	}
}

// The Hadoop engine recovers crashes by HDFS re-replication instead of
// lineage; the numbers must still come out identical.
func TestChaosBigTensorRecovery(t *testing.T) {
	x := apiTestTensor()
	opt := cstf.Options{
		Algorithm: cstf.BigTensor, Rank: 2, MaxIters: 2, NoConvergenceCheck: true, Seed: 3,
	}
	clean, err := cstf.Decompose(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Faults.Chaos = &cstf.ChaosSpec{Seed: 1, HorizonStages: 8, NodeCrashes: 1}
	faulty, err := cstf.Decompose(x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Metrics.NodeCrashes != 1 {
		t.Fatalf("no crash delivered: %+v", faulty.Metrics)
	}
	if faulty.Metrics.ReReplicatedBytes <= 0 {
		t.Fatalf("crash did not trigger re-replication: %+v", faulty.Metrics)
	}
	requireSameFactors(t, clean, faulty, 0)
}

// Checkpoint at iteration 4 of 6, then resume: the resumed run must land
// on the same trajectory as the uninterrupted solve — ALS is a
// deterministic fixed-point iteration, and the checkpoint captures the
// complete state at an iteration boundary. Serial and COO are bitwise;
// QCOO's rebuilt queue RDD lists records in original entry order rather
// than the live pipeline's shuffled order, so its sums can round one ulp
// differently (see core.NewQCOOStateFromFactors).
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	x := apiTestTensor()
	for _, tc := range []struct {
		algo cstf.Algorithm
		tol  float64
	}{{cstf.Serial, 0}, {cstf.COO, 0}, {cstf.QCOO, 1e-12}} {
		algo, tol := tc.algo, tc.tol
		t.Run(string(algo), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "cp.gob")
			full := cstf.Options{
				Algorithm: algo, Rank: 3, MaxIters: 6, NoConvergenceCheck: true, Seed: 5,
			}
			want, err := cstf.Decompose(x, full)
			if err != nil {
				t.Fatal(err)
			}

			head := full
			head.MaxIters = 4
			head.Faults.CheckpointEvery = 2
			head.Faults.CheckpointPath = path
			if _, err := cstf.Decompose(x, head); err != nil {
				t.Fatalf("head: %v", err)
			}

			got, err := cstf.DecomposeResume(x, path, full)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got.Iters != want.Iters {
				t.Fatalf("resumed Iters=%d, want %d", got.Iters, want.Iters)
			}
			if len(got.Fits) != len(want.Fits) {
				t.Fatalf("resumed fits %v, want %v", got.Fits, want.Fits)
			}
			for i := range want.Fits {
				if d := math.Abs(got.Fits[i] - want.Fits[i]); d > tol {
					t.Fatalf("resumed fit[%d] %v, want %v", i, got.Fits[i], want.Fits[i])
				}
			}
			requireSameFactors(t, want, got, tol)
		})
	}
}

// BigTensor's resume goes through NewFromFactors (tensor re-upload,
// normalized factors, fresh grams); its trajectory must match the
// uninterrupted run to floating-point noise.
func TestCheckpointResumeBigTensor(t *testing.T) {
	x := apiTestTensor()
	path := filepath.Join(t.TempDir(), "cp.gob")
	full := cstf.Options{
		Algorithm: cstf.BigTensor, Rank: 2, MaxIters: 4, NoConvergenceCheck: true, Seed: 5,
	}
	want, err := cstf.Decompose(x, full)
	if err != nil {
		t.Fatal(err)
	}
	head := full
	head.MaxIters = 2
	head.Faults.CheckpointEvery = 2
	head.Faults.CheckpointPath = path
	headDec, err := cstf.Decompose(x, head)
	if err != nil {
		t.Fatal(err)
	}
	if headDec.Metrics.CheckpointSeconds <= 0 {
		t.Fatalf("checkpoint write was not charged: %+v", headDec.Metrics)
	}
	got, err := cstf.DecomposeResume(x, path, full)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iters != want.Iters {
		t.Fatalf("resumed Iters=%d, want %d", got.Iters, want.Iters)
	}
	requireSameFactors(t, want, got, 1e-9)
}

// Resume must reject a checkpoint that does not match the request.
func TestDecomposeResumeValidates(t *testing.T) {
	x := apiTestTensor()
	path := filepath.Join(t.TempDir(), "cp.gob")
	head := cstf.Options{
		Algorithm: cstf.Serial, Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 5,
		Faults: cstf.FaultOptions{CheckpointEvery: 1, CheckpointPath: path},
	}
	if _, err := cstf.Decompose(x, head); err != nil {
		t.Fatal(err)
	}
	bad := []cstf.Options{
		{Algorithm: cstf.COO, Rank: 3, MaxIters: 4},    // wrong algorithm
		{Algorithm: cstf.Serial, Rank: 4, MaxIters: 4}, // wrong rank
	}
	for _, o := range bad {
		if _, err := cstf.DecomposeResume(x, path, o); err == nil {
			t.Fatalf("resume with mismatched %+v did not fail", o)
		}
	}
	if _, err := cstf.DecomposeResume(x, filepath.Join(t.TempDir(), "missing.gob"),
		cstf.Options{Algorithm: cstf.Serial, Rank: 3, MaxIters: 4}); err == nil {
		t.Fatal("resume from a missing file did not fail")
	}
}

// Chaos on the serial algorithm is a contradiction and must error.
func TestChaosRequiresDistributed(t *testing.T) {
	x := apiTestTensor()
	_, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.Serial, Rank: 2, MaxIters: 2, Chaos: testChaos(),
	})
	if err == nil {
		t.Fatal("serial + chaos did not fail")
	}
}

// requireSameFactors compares factor matrices element-wise. tol 0 demands
// bitwise equality.
func requireSameFactors(t *testing.T, want, got *cstf.Decomposition, tol float64) {
	t.Helper()
	if len(want.Factors) != len(got.Factors) {
		t.Fatalf("factor count %d vs %d", len(got.Factors), len(want.Factors))
	}
	for n := range want.Factors {
		wf, gf := want.Factors[n], got.Factors[n]
		for i := 0; i < wf.Rows(); i++ {
			for j := 0; j < wf.Cols(); j++ {
				w, g := wf.At(i, j), gf.At(i, j)
				if tol == 0 && w != g {
					t.Fatalf("factor %d (%d,%d): %v != %v", n, i, j, g, w)
				}
				if tol > 0 && math.Abs(w-g) > tol*math.Max(1, math.Abs(w)) {
					t.Fatalf("factor %d (%d,%d): %v vs %v beyond tol %g", n, i, j, g, w, tol)
				}
			}
		}
	}
}
