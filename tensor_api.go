package cstf

import (
	"io"
	"math"
	"os"

	"cstf/internal/cpals"
	"cstf/internal/tensor"
)

// Extended tensor utilities on the public API: binary I/O, mode
// permutation, per-mode occupancy statistics, and model verification.

// Permute returns a new tensor whose mode m is this tensor's mode perm[m].
func (t *Tensor) Permute(perm ...int) *Tensor {
	return &Tensor{coo: t.coo.Permute(perm)}
}

// ModeStats summarizes the nonzero distribution over one mode: how many
// indices are occupied, the heaviest slice, and the skew that drives
// distributed load balance.
type ModeStats struct {
	Mode     int
	NonEmpty int
	MaxCount int
	MeanOcc  float64
	Skew     float64
}

// Stats computes occupancy statistics for a mode.
func (t *Tensor) Stats(mode int) ModeStats {
	s := t.coo.ModeStats(mode)
	return ModeStats{Mode: s.Mode, NonEmpty: s.NonEmpty, MaxCount: s.MaxCount, MeanOcc: s.MeanOcc, Skew: s.Skew}
}

// WriteBinary writes the tensor in the compact CSTFBIN1 binary format
// (about 4x smaller and much faster to parse than .tns text).
func (t *Tensor) WriteBinary(w io.Writer) error { return tensor.WriteBinary(w, t.coo) }

// SaveBinary writes the tensor to a CSTFBIN1 file.
func (t *Tensor) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tensor.WriteBinary(f, t.coo); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinary parses a CSTFBIN1 stream.
func ReadBinary(r io.Reader) (*Tensor, error) {
	coo, err := tensor.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: coo}, nil
}

// LoadBinaryTensor reads a CSTFBIN1 file from disk.
func LoadBinaryTensor(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Residual evaluates how well a decomposition explains a tensor:
// ||X - X_hat||_F / ||X||_F, computed exactly with one pass over the
// nonzeros plus the rank-sized gram identity for the dense part. 0 is a
// perfect fit; Fit() == 1 - Residual() when evaluated on the training
// tensor.
func (d *Decomposition) Residual(t *Tensor) float64 {
	normX := t.Norm()
	if normX == 0 {
		return 0
	}
	rank := d.Rank()
	// ||X_hat||^2 via the gram identity.
	h := make([]float64, rank*rank)
	for i := range h {
		h[i] = 1
	}
	for _, f := range d.Factors {
		for a := 0; a < rank; a++ {
			for b := 0; b < rank; b++ {
				var g float64
				for i := 0; i < f.Rows(); i++ {
					g += f.At(i, a) * f.At(i, b)
				}
				h[a*rank+b] *= g
			}
		}
	}
	var modelSq float64
	for a := 0; a < rank; a++ {
		for b := 0; b < rank; b++ {
			modelSq += d.Lambda[a] * h[a*rank+b] * d.Lambda[b]
		}
	}
	// <X, X_hat> over the nonzeros.
	var inner float64
	for i := 0; i < t.NNZ(); i++ {
		idx, val := t.Entry(i)
		inner += val * d.At(idx...)
	}
	residSq := normX*normX + modelSq - 2*inner
	if residSq < 0 {
		residSq = 0
	}
	return math.Sqrt(residSq) / normX
}

// CoreConsistency computes the CORCONDIA diagnostic of Bro & Kiers for
// this decomposition against the tensor it was fit to: ~100 means the CP
// structure (and hence the chosen rank) is appropriate; values falling
// toward 0 or below indicate over-factoring. Supported for orders up to 4.
func (d *Decomposition) CoreConsistency(t *Tensor) (float64, error) {
	res := &cpals.Result{Lambda: d.Lambda}
	for _, f := range d.Factors {
		res.Factors = append(res.Factors, f.d)
	}
	return cpals.CoreConsistency(t.coo, res)
}
