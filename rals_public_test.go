package cstf_test

import (
	"path/filepath"
	"strings"
	"testing"

	"cstf"
)

// Randomized ALS through the public API: sampled solves return sensible
// models, resume is bitwise, and the algorithm registry backs both the
// dispatch error and the published name list.

func TestRALSDecomposePublicAPI(t *testing.T) {
	x := apiTestTensor()
	dec, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.RALS, Rank: 3, MaxIters: 8, NoConvergenceCheck: true, Seed: 5,
		RALS: cstf.RALSOptions{SampleFraction: 0.4, ResampleEvery: 2, ExactFinishIters: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Iters != 8 {
		t.Fatalf("Iters=%d, want 8", dec.Iters)
	}
	if dec.Fit() <= 0 || dec.Fit() > 1 {
		t.Fatalf("implausible fit %v", dec.Fit())
	}

	// The zero-valued RALS group defaults to a 10% sample fraction rather
	// than rejecting the solve.
	if _, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.RALS, Rank: 3, MaxIters: 3, NoConvergenceCheck: true, Seed: 5,
	}); err != nil {
		t.Fatalf("default budget: %v", err)
	}
}

// Mid-solve checkpoint, resume via the public API: the resumed run must be
// bitwise identical to the uninterrupted one — the checkpoint carries the
// sampler schedule and the unnormalized factors, and the sampler draws are
// a pure function of (seed, epoch, mode).
func TestRALSResumeMatchesUninterrupted(t *testing.T) {
	x := apiTestTensor()
	path := filepath.Join(t.TempDir(), "cp.gob")
	full := cstf.Options{
		Algorithm: cstf.RALS, Rank: 3, MaxIters: 6, NoConvergenceCheck: true, Seed: 5,
		RALS: cstf.RALSOptions{SampleFraction: 0.3, ResampleEvery: 2},
	}
	want, err := cstf.Decompose(x, full)
	if err != nil {
		t.Fatal(err)
	}

	head := full
	head.MaxIters = 4
	head.Faults.CheckpointEvery = 2
	head.Faults.CheckpointPath = path
	if _, err := cstf.Decompose(x, head); err != nil {
		t.Fatalf("head: %v", err)
	}

	got, err := cstf.DecomposeResume(x, path, full)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Iters != want.Iters {
		t.Fatalf("resumed Iters=%d, want %d", got.Iters, want.Iters)
	}
	if len(got.Fits) != len(want.Fits) {
		t.Fatalf("resumed fits %v, want %v", got.Fits, want.Fits)
	}
	for i := range want.Fits {
		if got.Fits[i] != want.Fits[i] {
			t.Fatalf("resumed fit[%d] %v, want %v", i, got.Fits[i], want.Fits[i])
		}
	}
	requireSameFactors(t, want, got, 0)
}

// A non-rals checkpoint must not resume as rals, and a rals checkpoint
// written by this version always carries the sampler state.
func TestRALSResumeRejectsForeignCheckpoint(t *testing.T) {
	x := apiTestTensor()
	path := filepath.Join(t.TempDir(), "cp.gob")
	head := cstf.Options{
		Algorithm: cstf.Serial, Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 5,
		Faults: cstf.FaultOptions{CheckpointEvery: 1, CheckpointPath: path},
	}
	if _, err := cstf.Decompose(x, head); err != nil {
		t.Fatal(err)
	}
	if _, err := cstf.DecomposeResume(x, path, cstf.Options{
		Algorithm: cstf.RALS, Rank: 3, MaxIters: 4,
	}); err == nil {
		t.Fatal("rals resume from a serial checkpoint did not fail")
	}
}

// The exported registry names every algorithm once, and the dispatch error
// for an unknown algorithm lists them all.
func TestAlgorithmRegistry(t *testing.T) {
	names := cstf.AlgorithmNames()
	want := map[string]bool{"serial": true, "coo": true, "qcoo": true, "bigtensor": true, "dist": true, "rals": true, "ncp": true}
	if len(names) != len(want) {
		t.Fatalf("AlgorithmNames() = %v, want the %d known algorithms", names, len(want))
	}
	for _, n := range names {
		if !want[n] {
			t.Fatalf("unexpected algorithm %q in %v", n, names)
		}
	}

	_, err := cstf.Decompose(apiTestTensor(), cstf.Options{Algorithm: "nope", Rank: 2, MaxIters: 2})
	if err == nil {
		t.Fatal("unknown algorithm did not fail")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("unknown-algorithm error %q does not mention %q", err, n)
		}
	}
}

// Chaos injection models distributed faults; on the sampled serial solver
// it is a contradiction and must error, like Serial.
func TestRALSChaosRejected(t *testing.T) {
	_, err := cstf.Decompose(apiTestTensor(), cstf.Options{
		Algorithm: cstf.RALS, Rank: 2, MaxIters: 2, Chaos: testChaos(),
	})
	if err == nil {
		t.Fatal("rals + chaos did not fail")
	}
}
