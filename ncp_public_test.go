package cstf_test

import (
	"path/filepath"
	"testing"

	"cstf"
)

// Nonnegative CP through the public API: the "ncp" tier returns nonnegative
// factors, resumes bitwise from its checkpoints, and rejects foreign ones.

func TestNCPDecomposePublicAPI(t *testing.T) {
	x := apiTestTensor()
	dec, err := cstf.Decompose(x, cstf.Options{
		Algorithm: cstf.NCP, Rank: 3, MaxIters: 6, NoConvergenceCheck: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Iters != 6 {
		t.Fatalf("Iters=%d, want 6", dec.Iters)
	}
	for n, f := range dec.Factors {
		for i := 0; i < f.Rows(); i++ {
			for j := 0; j < f.Cols(); j++ {
				if f.At(i, j) < 0 {
					t.Fatalf("factor %d (%d,%d) = %v, want >= 0", n, i, j, f.At(i, j))
				}
			}
		}
	}
	for i := 1; i < len(dec.Fits); i++ {
		if dec.Fits[i] < dec.Fits[i-1] {
			t.Fatalf("fit decreased at sweep %d: %v -> %v", i, dec.Fits[i-1], dec.Fits[i])
		}
	}
}

// Mid-solve checkpoint, resume via the public API: the resumed run must be
// bitwise identical to the uninterrupted one — the checkpoint carries the
// saturation bitmaps and the factors fully determine the trajectory.
func TestNCPResumeMatchesUninterrupted(t *testing.T) {
	x := apiTestTensor()
	path := filepath.Join(t.TempDir(), "cp.gob")
	full := cstf.Options{
		Algorithm: cstf.NCP, Rank: 3, MaxIters: 6, NoConvergenceCheck: true, Seed: 5,
		NTF: cstf.NTFOptions{InnerIters: 2},
	}
	want, err := cstf.Decompose(x, full)
	if err != nil {
		t.Fatal(err)
	}

	head := full
	head.MaxIters = 4
	head.Faults.CheckpointEvery = 2
	head.Faults.CheckpointPath = path
	if _, err := cstf.Decompose(x, head); err != nil {
		t.Fatalf("head: %v", err)
	}

	got, err := cstf.DecomposeResume(x, path, full)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.Iters != want.Iters {
		t.Fatalf("resumed Iters=%d, want %d", got.Iters, want.Iters)
	}
	if len(got.Fits) != len(want.Fits) {
		t.Fatalf("resumed fits %v, want %v", got.Fits, want.Fits)
	}
	for i := range want.Fits {
		if got.Fits[i] != want.Fits[i] {
			t.Fatalf("resumed fit[%d] %v, want %v", i, got.Fits[i], want.Fits[i])
		}
	}
	requireSameFactors(t, want, got, 0)
}

// A non-ncp checkpoint must not resume as ncp (and vice versa an ncp
// checkpoint announces its algorithm, so cpals rejects it by name).
func TestNCPResumeRejectsForeignCheckpoint(t *testing.T) {
	x := apiTestTensor()
	path := filepath.Join(t.TempDir(), "cp.gob")
	head := cstf.Options{
		Algorithm: cstf.Serial, Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 5,
		Faults: cstf.FaultOptions{CheckpointEvery: 1, CheckpointPath: path},
	}
	if _, err := cstf.Decompose(x, head); err != nil {
		t.Fatal(err)
	}
	if _, err := cstf.DecomposeResume(x, path, cstf.Options{
		Algorithm: cstf.NCP, Rank: 3, MaxIters: 4,
	}); err == nil {
		t.Fatal("ncp resume from a serial checkpoint did not fail")
	}

	ncpHead := cstf.Options{
		Algorithm: cstf.NCP, Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 5,
		Faults: cstf.FaultOptions{CheckpointEvery: 1, CheckpointPath: path},
	}
	if _, err := cstf.Decompose(x, ncpHead); err != nil {
		t.Fatal(err)
	}
	if _, err := cstf.DecomposeResume(x, path, cstf.Options{
		Algorithm: cstf.Serial, Rank: 3, MaxIters: 4,
	}); err == nil {
		t.Fatal("serial resume from an ncp checkpoint did not fail")
	}
}

// Chaos injection models distributed faults; on the shared-memory ncp
// solver it is a contradiction and must error, like Serial and RALS.
func TestNCPChaosRejected(t *testing.T) {
	_, err := cstf.Decompose(apiTestTensor(), cstf.Options{
		Algorithm: cstf.NCP, Rank: 2, MaxIters: 2, Chaos: testChaos(),
	})
	if err == nil {
		t.Fatal("ncp + chaos did not fail")
	}
}
