package cstf

import (
	"time"

	"cstf/internal/la"
	"cstf/internal/serve"
)

// ServeOptions tunes the model server started by Decomposition.Server. The
// zero value selects the documented serve.Config defaults; fields mirror
// that struct so callers never import internal packages directly.
type ServeOptions struct {
	// MaxBatch bounds how many ranked queries one executor pass coalesces
	// into a single blocked scan (default 32).
	MaxBatch int
	// MaxWait bounds how long the executor holds the first request of a
	// batch while waiting for more to coalesce (default 100µs).
	MaxWait time.Duration
	// QueueDepth bounds the request queue; a full queue sheds with
	// serve.ErrOverloaded (default 1024).
	QueueDepth int
	// CacheSize bounds the LRU result cache in entries; 0 selects the
	// default 4096, negative disables caching.
	CacheSize int
	// Workers bounds the fan-out of one batched scan; <= 0 uses all cores.
	Workers int
	// Timeout, when positive, caps every query's total wait.
	Timeout time.Duration
}

func (o ServeOptions) config() serve.Config {
	return serve.Config{
		MaxBatch:   o.MaxBatch,
		MaxWait:    o.MaxWait,
		QueueDepth: o.QueueDepth,
		CacheSize:  o.CacheSize,
		Workers:    o.Workers,
		Timeout:    o.Timeout,
	}
}

// Server starts a model server answering Predict/TopK/Similar queries
// against this decomposition. Lambda and the factor matrices are cloned
// into an immutable serving snapshot, so the decomposition may keep
// evolving (e.g. a resumed solve) without disturbing in-flight queries.
// The caller must Close the returned server; serve.NewHandler exposes it
// over HTTP and Server.Watch hot-reloads newer checkpoints.
func (d *Decomposition) Server(o ServeOptions) (*serve.Server, error) {
	factors := make([]*la.Dense, len(d.Factors))
	for n, f := range d.Factors {
		factors[n] = f.d.Clone()
	}
	m, err := serve.NewModel(la.VecClone(d.Lambda), factors, 0, o.Workers)
	if err != nil {
		return nil, err
	}
	m.Iter = d.Iters
	return serve.New(m, o.config())
}
