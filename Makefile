# Developer entry points. `make ci` is the gate CI runs; it must stay green.

GO ?= go

# Packages that carry concurrency (worker pools, shared caches, simulated
# cluster, the serving executor, the streaming pipeline) or fault-recovery
# paths: these also run under the race detector in `make ci`.
RACE_PKGS := ./internal/cpals ./internal/la ./internal/par ./internal/tensor ./internal/rdd ./internal/cluster ./internal/chaos ./internal/mapreduce ./internal/core ./internal/serve ./internal/stream ./internal/dist ./internal/fleet ./internal/rals ./internal/ntf ./internal/rank

.PHONY: ci fmt vet staticcheck check-deprecated build test race bench stream-smoke dist-smoke dist-chaos-smoke fleet-smoke rals-smoke recsys-smoke

ci: fmt vet staticcheck check-deprecated build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck is optional locally (this repo vendors nothing and installs
# nothing); CI installs it explicitly. Skips with a notice when absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem .

# End-to-end streaming smoke under the race detector: train a tiny model,
# stream three windows through ingest -> incremental update -> publish.
stream-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run -race ./cmd/cstf-stream -model "$$tmp/model.ckpt" \
		-dims 60,50,40 -nnz 2000 -rank 2 -train-iters 2 \
		-windows 3 -window 200 -full-sweep-every 2 -grow-every 150

# End-to-end distributed smoke under the race detector: fork three real
# cstf-worker processes and run a small decomposition over TCP — once with
# the communication plan on (delta broadcasts + pipelined reduce, the
# default) and once with both disabled, so the A/B paths both stay green.
dist-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o "$$tmp/cstf-worker" ./cmd/cstf-worker && \
	$(GO) run ./cmd/tensorgen -out "$$tmp/t.tns" -dims 80,60,40 -nnz 5000 -rank 3 && \
	CSTF_WORKER_BIN="$$tmp/cstf-worker" $(GO) run -race ./cmd/cstf \
		-in "$$tmp/t.tns" -dist-local 3 -rank 3 -iters 3 -tol 0 && \
	CSTF_WORKER_BIN="$$tmp/cstf-worker" $(GO) run -race ./cmd/cstf \
		-in "$$tmp/t.tns" -dist-local 3 -rank 3 -iters 3 -tol 0 \
		-dist-no-delta -dist-no-pipeline

# End-to-end fault-recovery smoke under the race detector: forked workers
# survive an injected partition plus a corrupted frame mid-solve, then a
# checkpointed run is interrupted and resumed from its checkpoint file.
dist-chaos-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o "$$tmp/cstf-worker" ./cmd/cstf-worker && \
	$(GO) run ./cmd/tensorgen -out "$$tmp/t.tns" -dims 80,60,40 -nnz 5000 -rank 3 && \
	CSTF_WORKER_BIN="$$tmp/cstf-worker" $(GO) run -race ./cmd/cstf \
		-in "$$tmp/t.tns" -dist-local 3 -rank 3 -iters 4 -tol 0 \
		-chaos "partitions=1,corrupt=1,horizon=8,seed=3" && \
	CSTF_WORKER_BIN="$$tmp/cstf-worker" $(GO) run -race ./cmd/cstf \
		-in "$$tmp/t.tns" -dist-local 3 -rank 3 -iters 2 -tol 0 \
		-checkpoint "$$tmp/cp.ckpt" -checkpoint-every 1 && \
	CSTF_WORKER_BIN="$$tmp/cstf-worker" $(GO) run -race ./cmd/cstf \
		-in "$$tmp/t.tns" -dist-local 3 -rank 3 -iters 4 -tol 0 \
		-checkpoint "$$tmp/cp.ckpt" -resume

# End-to-end fleet smoke under the race detector: a router over two
# in-process replicas takes a closed-loop query burst while a rolling
# reload crosses the fleet; zero dropped queries is the pass condition.
fleet-smoke:
	$(GO) run -race ./cmd/cstf-router -smoke

# End-to-end randomized-ALS smoke under the race detector: a sampled solve
# with an exact polish on a generated tensor, serially and over two forked
# workers, then the degenerate full-budget case (bitwise-exact CP-ALS).
rals-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -race -o "$$tmp/cstf-worker" ./cmd/cstf-worker && \
	$(GO) run ./cmd/tensorgen -out "$$tmp/t.tns" -dims 80,60,40 -nnz 5000 -rank 3 && \
	$(GO) run -race ./cmd/cstf -in "$$tmp/t.tns" -algo rals \
		-rank 3 -iters 6 -tol 0 -rals-frac 0.3 -rals-resample 2 -rals-polish 2 && \
	CSTF_WORKER_BIN="$$tmp/cstf-worker" $(GO) run -race ./cmd/cstf \
		-in "$$tmp/t.tns" -algo rals -dist-local 2 \
		-rank 3 -iters 6 -tol 0 -rals-frac 0.3 -rals-resample 2 -rals-polish 2 && \
	$(GO) run -race ./cmd/cstf -in "$$tmp/t.tns" -algo rals \
		-rank 3 -iters 4 -tol 0 -rals-count 5000

# End-to-end recommender smoke under the race detector: generate a planted
# recsys tensor with its held-out split, train nonnegative CP on it with
# checkpointing, resume from the mid-run checkpoint (bitwise vs
# uninterrupted — the CLI half of the scenario), then run the shrunken
# recsys benchmark, which streams delta windows through the updater,
# publishes each version, hot-reloads every replica of a sharded serving
# fleet over real HTTP, and checks fleet TopK-with-exclude bitwise against
# a single-node scan.
recsys-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/tensorgen -recsys -out "$$tmp/t.tns" \
		-users 120 -items 80 -contexts 4 -groups 3 -nnz 6000 -seed 13 && \
	$(GO) run -race ./cmd/cstf -in "$$tmp/t.tns" -algo ncp \
		-rank 3 -iters 3 -tol 0 -ntf-inner 2 \
		-checkpoint "$$tmp/m.ckpt" -checkpoint-every 1 && \
	$(GO) run -race ./cmd/cstf -in "$$tmp/t.tns" -algo ncp \
		-rank 3 -iters 6 -tol 0 -ntf-inner 2 \
		-checkpoint "$$tmp/m.ckpt" -resume && \
	$(GO) test -race -run TestRecsysBenchSmall ./internal/experiments

# The flat DistAddrs/DistLocalWorkers/DistWorkerBin fields are deprecated
# aliases for Options.Dist; they may appear only in decompose.go (the alias
# mapping) and its test. Fails on any new use.
check-deprecated:
	@out=$$(grep -rn --include='*.go' \
		--exclude='decompose.go' --exclude='decompose_test.go' \
		-e 'DistAddrs' -e 'DistLocalWorkers' -e 'DistWorkerBin' .); \
	if [ -n "$$out" ]; then \
		echo "deprecated flat dist fields used outside decompose.go (use Options.Dist):"; \
		echo "$$out"; exit 1; fi
