# Developer entry points. `make ci` is the gate CI runs; it must stay green.

GO ?= go

# Packages that carry concurrency (worker pools, shared caches, simulated
# cluster, the serving executor) or fault-recovery paths: these also run
# under the race detector in `make ci`.
RACE_PKGS := ./internal/cpals ./internal/la ./internal/par ./internal/tensor ./internal/rdd ./internal/cluster ./internal/chaos ./internal/mapreduce ./internal/core ./internal/serve

.PHONY: ci fmt vet staticcheck build test race bench

ci: fmt vet staticcheck build test race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck is optional locally (this repo vendors nothing and installs
# nothing); CI installs it explicitly. Skips with a notice when absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

bench:
	$(GO) test -bench=. -benchmem .
