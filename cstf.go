// Package cstf is the public API of this repository: a Go implementation
// of CSTF — Cloud-based Sparse Tensor Factorization (Blanco, Liu, Mehri
// Dehnavi; ICPP 2018) — together with everything it runs on: a Spark-like
// dataset engine, a Hadoop-like MapReduce engine, a simulated multi-node
// cluster with a calibrated cost model, and the BIGtensor/GigaTensor
// baseline the paper compares against.
//
// The package exposes sparse tensors in coordinate (COO) format, FROSTT
// .tns I/O, synthetic generators (including scaled stand-ins for the
// paper's Table 5 datasets), and CP-ALS decomposition via four
// interchangeable algorithms: the serial reference, CSTF-COO, CSTF-QCOO,
// and BIGtensor. Distributed runs execute their numerics for real while a
// deterministic cost model reports cluster-scale runtimes and shuffle
// traffic.
//
// Quick start:
//
//	x := cstf.RandomTensor(1, 50_000, 1000, 800, 600)
//	dec, err := cstf.Decompose(x, cstf.Options{Rank: 8})
//	fmt.Println(dec.Fit(), dec.Metrics.SimSeconds)
package cstf

import (
	"fmt"
	"io"

	"cstf/internal/rank"
	"cstf/internal/tensor"
	"cstf/internal/workload"
)

// Tensor is an N-order sparse tensor in coordinate (COO) storage: the
// format both CSTF algorithms compute on directly.
type Tensor struct {
	coo *tensor.COO
}

// NewTensor creates an empty sparse tensor with the given mode sizes
// (order 1 to 8).
func NewTensor(dims ...int) *Tensor {
	return &Tensor{coo: tensor.New(dims...)}
}

// Append adds a nonzero at the given 0-based coordinate.
func (t *Tensor) Append(val float64, idx ...int) { t.coo.Append(val, idx...) }

// Order returns the number of modes.
func (t *Tensor) Order() int { return t.coo.Order() }

// Dims returns a copy of the mode sizes.
func (t *Tensor) Dims() []int { return append([]int(nil), t.coo.Dims...) }

// NNZ returns the number of stored nonzeros.
func (t *Tensor) NNZ() int { return t.coo.NNZ() }

// Density returns nnz divided by the tensor's dense volume.
func (t *Tensor) Density() float64 { return t.coo.Density() }

// Norm returns the Frobenius norm.
func (t *Tensor) Norm() float64 { return t.coo.Norm() }

// At returns the value at a coordinate (O(nnz); intended for spot checks).
func (t *Tensor) At(idx ...int) float64 { return t.coo.At(idx...) }

// Dedup sorts the entries and merges duplicate coordinates by summing.
func (t *Tensor) Dedup() { t.coo.DedupSum() }

// Entry returns the i-th stored nonzero as (coordinate, value).
func (t *Tensor) Entry(i int) ([]int, float64) {
	e := &t.coo.Entries[i]
	idx := make([]int, t.Order())
	for m := range idx {
		idx[m] = int(e.Idx[m])
	}
	return idx, e.Val
}

// WriteTNS writes the tensor in FROSTT .tns text format (1-based indices).
func (t *Tensor) WriteTNS(w io.Writer) error { return tensor.WriteTNS(w, t.coo) }

// Save writes the tensor to a .tns file.
func (t *Tensor) Save(path string) error { return tensor.SaveTNSFile(path, t.coo) }

// ReadTNS parses a FROSTT .tns stream, inferring mode sizes from the data.
func ReadTNS(r io.Reader) (*Tensor, error) {
	coo, err := tensor.ReadTNS(r, nil)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: coo}, nil
}

// LoadTensor reads a .tns file from disk.
func LoadTensor(path string) (*Tensor, error) {
	coo, err := tensor.LoadTNSFile(path)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: coo}, nil
}

// RandomTensor generates approximately nnz uniform-random nonzeros,
// deterministically in seed.
func RandomTensor(seed uint64, nnz int, dims ...int) *Tensor {
	return &Tensor{coo: tensor.GenUniform(seed, nnz, dims...)}
}

// ZipfTensor generates a tensor with heavy-tailed (Zipf) fiber occupancy,
// the skew pattern of real web-crawl tensors. theta in (0, 1) controls the
// skew strength.
func ZipfTensor(seed uint64, nnz int, theta float64, dims ...int) *Tensor {
	return &Tensor{coo: tensor.GenZipf(seed, nnz, theta, dims...)}
}

// LowRankTensor samples a planted rank-r CP model at approximately nnz
// random coordinates with additive Gaussian noise. Useful for recovery
// studies; note the sparse sampling mask makes the stored tensor itself
// not exactly rank r.
func LowRankTensor(seed uint64, nnz, r int, noise float64, dims ...int) *Tensor {
	return &Tensor{coo: tensor.GenLowRank(seed, nnz, r, noise, dims...)}
}

// DenseLowRankTensor builds a tensor holding a rank-r CP model at EVERY
// coordinate (plus Gaussian noise), so CP-ALS at rank r can reach a
// near-perfect fit. The entry count is the full dense volume — keep dims
// small.
func DenseLowRankTensor(seed uint64, r int, noise float64, dims ...int) *Tensor {
	return &Tensor{coo: tensor.GenLowRankDense(seed, r, noise, dims...)}
}

// RecsysTensor generates a (users x items x contexts) implicit-feedback
// tensor with planted per-user preference structure: users and items are
// hashed into `groups` interest groups, interactions concentrate on
// in-group items, and values come from a planted nonnegative rank-`groups`
// model. It is the recommendation workload behind `cstf-bench -exp recsys`
// — a rank-`groups` nonnegative factorization (Algorithm NCP) recovers the
// structure and out-recommends the popularity baseline on it.
func RecsysTensor(seed uint64, nnz, users, items, contexts, groups int, noise float64) *Tensor {
	return &Tensor{coo: tensor.GenRecsys(seed, nnz, users, items, contexts, groups, noise)}
}

// SplitHoldout carves a deterministic per-user leave-out split for
// recommender evaluation: for every row of userMode with at least two
// nonzeros, the interaction with the smallest coordinate hash moves to the
// held-out tensor; everything else stays in training. The split is a pure
// function of (seed, tensor) — disjoint, reproducible, independent of
// entry order — so a benchmark and a test sharing the seed evaluate
// against identical truths.
func SplitHoldout(t *Tensor, seed uint64, userMode int) (train, held *Tensor, err error) {
	tr, he, err := rank.Split(t.coo, seed, userMode)
	if err != nil {
		return nil, nil, err
	}
	return &Tensor{coo: tr}, &Tensor{coo: he}, nil
}

// Dataset generates a scaled synthetic stand-in for one of the paper's
// Table 5 datasets: "delicious3d", "nell1", "synt3d", "flickr", or
// "delicious4d". scale in (0, 1] is the fraction of the published size.
func Dataset(name string, scale float64) (*Tensor, error) {
	cfg, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	return &Tensor{coo: cfg.Generate(scale)}, nil
}

// DatasetNames lists the Table 5 dataset names.
func DatasetNames() []string {
	var out []string
	for _, c := range workload.Datasets() {
		out = append(out, c.Name)
	}
	return out
}

// String summarizes the tensor.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(order=%d dims=%v nnz=%d density=%.2e)",
		t.Order(), t.Dims(), t.NNZ(), t.Density())
}
