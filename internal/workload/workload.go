// Package workload defines the five datasets of Table 5 in the paper and
// generates scaled synthetic stand-ins for them. The real tensors are
// multi-gigabyte FROSTT downloads (and synt3d was never published); the
// generators preserve what the algorithms are sensitive to — order,
// per-mode size ratios, nonzeros-per-mode-size proportions, and the
// heavy-tailed fiber occupancy of web-crawl data — at a configurable
// fraction of the full size. All experiment harnesses take the scale as a
// parameter and report it alongside results.
package workload

import (
	"fmt"
	"math"

	"cstf/internal/tensor"
)

// Config describes one dataset at full (paper) size.
type Config struct {
	Name string
	Dims []int   // full-scale mode sizes
	NNZ  int64   // full-scale nonzero count
	Skew float64 // Zipf exponent of fiber occupancy; 0 = uniform
	Seed uint64  // generation seed (deterministic)
}

// Datasets returns the Table 5 datasets. Mode sizes for the FROSTT tensors
// are the published ones; synt3d's unpublished shape is inferred from the
// table's max-mode-size (15M) and density (5.3e-12) columns.
func Datasets() []Config {
	return []Config{
		{
			// delicious-3d: user x URL x tag from tagging-system crawls.
			Name: "delicious3d",
			Dims: []int{532_924, 17_262_471, 2_480_308},
			NNZ:  140_126_181,
			Skew: 0.8,
			Seed: 0xde11c1053d,
		},
		{
			// nell-1: noun x verb x noun triples from the NELL project.
			Name: "nell1",
			Dims: []int{2_902_330, 2_143_368, 25_495_389},
			NNZ:  143_599_552,
			Skew: 0.95,
			Seed: 0x9e111,
		},
		{
			// synt3d: synthetic uniform-random 3rd-order tensor.
			Name: "synt3d",
			Dims: []int{15_000_000, 5_000_000, 500_000},
			NNZ:  200_000_000,
			Skew: 0,
			Seed: 0x5ca1ab1e,
		},
		{
			// flickr-4d: user x photo x tag x day.
			Name: "flickr",
			Dims: []int{319_686, 28_153_045, 1_607_191, 731},
			NNZ:  112_890_310,
			Skew: 0.8,
			Seed: 0xf11c4,
		},
		{
			// delicious-4d: delicious-3d plus a day mode.
			Name: "delicious4d",
			Dims: []int{532_924, 17_262_471, 2_480_308, 1_443},
			NNZ:  140_126_181,
			Skew: 0.8,
			Seed: 0xde11c1054d,
		},
	}
}

// ByName looks a dataset up by its Table 5 name.
func ByName(name string) (Config, error) {
	for _, c := range Datasets() {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("workload: unknown dataset %q (known: delicious3d, nell1, synt3d, flickr, delicious4d)", name)
}

// Order returns the tensor order.
func (c Config) Order() int { return len(c.Dims) }

// MaxModeSize returns the largest full-scale mode (Table 5 column 3).
func (c Config) MaxModeSize() int {
	m := 0
	for _, d := range c.Dims {
		if d > m {
			m = d
		}
	}
	return m
}

// Density returns the full-scale nnz / volume (Table 5 column 5).
func (c Config) Density() float64 {
	vol := 1.0
	for _, d := range c.Dims {
		vol *= float64(d)
	}
	return float64(c.NNZ) / vol
}

// minModeSize keeps scaled modes from collapsing below a useful size
// (short modes like "day" barely scale in practice).
const minModeSize = 32

// ScaledDims returns the mode sizes at the given scale in (0, 1].
func (c Config) ScaledDims(scale float64) []int {
	out := make([]int, len(c.Dims))
	for i, d := range c.Dims {
		s := int(math.Ceil(float64(d) * scale))
		if s < minModeSize {
			s = minModeSize
		}
		if s > d {
			s = d
		}
		out[i] = s
	}
	return out
}

// ScaledNNZ returns the target nonzero count at the given scale.
func (c Config) ScaledNNZ(scale float64) int {
	n := int(float64(c.NNZ) * scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

// Generate materializes the scaled synthetic tensor: Zipf-skewed fibers for
// the crawl datasets, uniform for synt3d, deterministic in the config seed.
func (c Config) Generate(scale float64) *tensor.COO {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("workload: scale %v out of (0, 1]", scale))
	}
	dims := c.ScaledDims(scale)
	nnz := c.ScaledNNZ(scale)
	if c.Skew == 0 {
		return tensor.GenUniform(c.Seed, nnz, dims...)
	}
	return tensor.GenZipf(c.Seed, nnz, c.Skew, dims...)
}

// Table5Row formats one dataset as the paper's Table 5 row (full scale).
func (c Config) Table5Row() string {
	return fmt.Sprintf("%-12s | %d | %8.1fM | %5.0fM | %.1e",
		c.Name, c.Order(), float64(c.MaxModeSize())/1e6, float64(c.NNZ)/1e6, c.Density())
}
