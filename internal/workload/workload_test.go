package workload

import (
	"math"
	"strings"
	"testing"
)

func TestDatasetsMatchTable5(t *testing.T) {
	// The headline Table 5 columns must match the paper.
	want := map[string]struct {
		order   int
		maxMode float64 // millions
		nnz     float64 // millions
		density float64
	}{
		"delicious3d": {3, 17.3, 140, 6.5e-12},
		"nell1":       {3, 25.5, 144, 9.3e-13},
		"synt3d":      {3, 15.0, 200, 5.3e-12},
		"flickr":      {4, 28.2, 113, 1.1e-14},
		"delicious4d": {4, 17.3, 140, 4.3e-15},
	}
	ds := Datasets()
	if len(ds) != 5 {
		t.Fatalf("expected 5 datasets, got %d", len(ds))
	}
	for _, c := range ds {
		w, ok := want[c.Name]
		if !ok {
			t.Fatalf("unexpected dataset %q", c.Name)
		}
		if c.Order() != w.order {
			t.Errorf("%s: order %d, want %d", c.Name, c.Order(), w.order)
		}
		if got := float64(c.MaxModeSize()) / 1e6; math.Abs(got-w.maxMode) > 0.35 {
			t.Errorf("%s: max mode %.1fM, want %.1fM", c.Name, got, w.maxMode)
		}
		if got := float64(c.NNZ) / 1e6; math.Abs(got-w.nnz) > 2 {
			t.Errorf("%s: nnz %.0fM, want %.0fM", c.Name, got, w.nnz)
		}
		if got := c.Density(); got/w.density > 1.5 || w.density/got > 1.5 {
			t.Errorf("%s: density %.2g, want %.2g", c.Name, got, w.density)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("nell1")
	if err != nil || c.Name != "nell1" {
		t.Fatalf("ByName(nell1): %v, %v", c, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestScaledDims(t *testing.T) {
	c, _ := ByName("delicious4d")
	dims := c.ScaledDims(1e-3)
	if dims[1] != 17263 { // ceil(17262471/1000)
		t.Fatalf("scaled URL mode %d", dims[1])
	}
	if dims[3] < minModeSize {
		t.Fatalf("day mode collapsed to %d", dims[3])
	}
	// Scale 1 returns the original dims.
	full := c.ScaledDims(1)
	for i := range full {
		if full[i] != c.Dims[i] {
			t.Fatalf("scale 1 altered dims: %v", full)
		}
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	c, _ := ByName("delicious3d")
	const scale = 2e-5
	a := c.Generate(scale)
	b := c.Generate(scale)
	if a.NNZ() != b.NNZ() {
		t.Fatal("generation must be deterministic")
	}
	if a.Order() != 3 {
		t.Fatalf("order %d", a.Order())
	}
	wantNNZ := c.ScaledNNZ(scale)
	if a.NNZ() < wantNNZ*9/10 {
		t.Fatalf("nnz %d far below target %d", a.NNZ(), wantNNZ)
	}
	// Mode-size ratios preserved: mode 1 (URLs) must dominate.
	if a.Dims[1] <= a.Dims[0] || a.Dims[1] <= a.Dims[2] {
		t.Fatalf("mode ratio broken: %v", a.Dims)
	}
}

func TestGenerateSyntheticIsUniform(t *testing.T) {
	c, _ := ByName("synt3d")
	x := c.Generate(1e-5)
	// Uniform data: no mode-0 index should dominate.
	counts := map[uint32]int{}
	for i := range x.Entries {
		counts[x.Entries[i].Idx[0]]++
	}
	max := 0
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	mean := float64(x.NNZ()) / float64(x.Dims[0])
	if float64(max) > 4*mean {
		t.Fatalf("uniform dataset has a fiber with %d nonzeros (mean %.1f)", max, mean)
	}
}

func TestGenerateValidatesScale(t *testing.T) {
	c, _ := ByName("synt3d")
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("scale %v must panic", bad)
				}
			}()
			c.Generate(bad)
		}()
	}
}

func TestTable5Row(t *testing.T) {
	c, _ := ByName("nell1")
	row := c.Table5Row()
	if !strings.Contains(row, "nell1") || !strings.Contains(row, "25.5M") {
		t.Fatalf("row %q", row)
	}
}
