package la

import "math"

// SymEig computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues and a matrix whose
// COLUMNS are the corresponding orthonormal eigenvectors, so
// a == V * diag(vals) * V^T up to round-off. The input is not modified.
//
// CP-ALS only ever eigendecomposes the R x R Hadamard product of gram
// matrices (symmetric positive semi-definite, R small), for which Jacobi is
// simple, robust, and plenty fast.
func SymEig(a *Dense) (vals []float64, vecs *Dense) {
	if a.Rows != a.Cols {
		panic("la: SymEig requires a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-30 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p,q,theta) on both sides of w and
				// accumulate it into v.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	return vals, v
}

// Pinv returns the Moore-Penrose pseudo-inverse of a symmetric matrix,
// computed from its eigendecomposition: eigenvalues below a relative
// tolerance are treated as zero and inverted to zero. This is the dagger
// operator of Algorithm 1 applied to the (symmetric PSD) Hadamard product of
// gram matrices.
func Pinv(a *Dense) *Dense {
	vals, vecs := SymEig(a)
	n := a.Rows
	var vmax float64
	for _, v := range vals {
		if av := math.Abs(v); av > vmax {
			vmax = av
		}
	}
	tol := vmax * 1e-12 * float64(n)
	out := NewDense(n, n)
	for k, lam := range vals {
		if math.Abs(lam) <= tol {
			continue
		}
		inv := 1 / lam
		for i := 0; i < n; i++ {
			vik := vecs.At(i, k)
			if vik == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += inv * vik * vecs.At(j, k)
			}
		}
	}
	return out
}
