// Package la provides the small dense linear-algebra kernels that CP-ALS
// needs: row-major dense matrices, gram matrices, Hadamard and Khatri-Rao
// products, a symmetric Jacobi eigensolver, and the Moore-Penrose
// pseudo-inverse. Factor matrices in CP decompositions are tall and skinny
// (millions of rows, rank R columns with R typically 2..64), so everything
// here is optimized for small R: gram and pinv work on R x R matrices and
// the hot per-row kernels operate on length-R slices.
package la

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: invalid dimensions %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFrom wraps data (not copied) as an r x c matrix.
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("la: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// Ones returns an r x c matrix of ones — the neutral element of Hadamard
// products, as Identity is for Mul.
func Ones(r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = 1
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.Data))
	copy(d, m.Data)
	return &Dense{Rows: m.Rows, Cols: m.Cols, Data: d}
}

// Zero sets every element to 0.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Transpose returns a newly allocated transpose of m.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Gram computes m' * m, the Cols x Cols gram matrix. For a factor matrix A
// this is the A^T A term of the CP-ALS normal equations.
func (m *Dense) Gram() *Dense {
	g := NewDense(m.Cols, m.Cols)
	GramAccumulate(g, m)
	return g
}

// GramAccumulate adds m' * m into g (g must be Cols x Cols). Splitting
// accumulation out lets distributed callers sum per-partition grams.
func GramAccumulate(g *Dense, m *Dense) {
	if g.Rows != m.Cols || g.Cols != m.Cols {
		panic("la: gram accumulate dimension mismatch")
	}
	c := m.Cols
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*c : (i+1)*c]
		for a := 0; a < c; a++ {
			ra := row[a]
			if ra == 0 {
				continue
			}
			gr := g.Data[a*c : (a+1)*c]
			for b := 0; b < c; b++ {
				gr[b] += ra * row[b]
			}
		}
	}
}

// Mul returns a * b. Intended for small (rank-sized) matrices.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("la: mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Hadamard returns the element-wise product a .* b.
func Hadamard(a, b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("la: hadamard dimension mismatch")
	}
	out := NewDense(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// HadamardInto computes dst = a .* b in place over dst's storage.
func HadamardInto(dst, a, b *Dense) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("la: hadamard dimension mismatch")
	}
	for i, v := range a.Data {
		dst.Data[i] = v * b.Data[i]
	}
}

// Scale multiplies every element of m by s, in place.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MaxAbsDiff returns max_ij |a(i,j) - b(i,j)|.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var d float64
	for i, v := range a.Data {
		if x := math.Abs(v - b.Data[i]); x > d {
			d = x
		}
	}
	return d
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ColumnNorms returns the Euclidean norm of each column of m.
func (m *Dense) ColumnNorms() []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v * v
		}
	}
	for j := range sums {
		sums[j] = math.Sqrt(sums[j])
	}
	return sums
}

// NormalizeColumns divides each column by its norm and returns the norms
// (the lambda vector of CP-ALS). Zero-norm columns are left untouched and
// report a norm of 1 so downstream scaling is a no-op.
func (m *Dense) NormalizeColumns() []float64 {
	norms := m.ColumnNorms()
	for j, n := range norms {
		if n == 0 {
			norms[j] = 1
		}
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] /= norms[j]
		}
	}
	return norms
}

// ErrSingular is reported by Solve when the system has no unique solution.
var ErrSingular = errors.New("la: singular matrix")

// Solve solves a x = b for square a via Gaussian elimination with partial
// pivoting. a and b are not modified. Used by tests as an independent check
// on Pinv.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || len(b) != a.Rows {
		panic("la: solve dimension mismatch")
	}
	n := a.Rows
	aug := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		piv, pv := col, math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > pv {
				piv, pv = r, v
			}
		}
		if pv < 1e-300 {
			return nil, ErrSingular
		}
		if piv != col {
			pr, cr := aug.Row(piv), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[piv], x[col] = x[col], x[piv]
		}
		d := aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) / d
			if f == 0 {
				continue
			}
			rr, cr := aug.Row(r), aug.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for j := r + 1; j < n; j++ {
			s -= aug.At(r, j) * x[j]
		}
		x[r] = s / aug.At(r, r)
	}
	return x, nil
}
