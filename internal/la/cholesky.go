package la

import (
	"errors"
	"math"
)

// ErrNotPD is reported by Cholesky when the matrix is not positive
// definite (within round-off).
var ErrNotPD = errors.New("la: matrix not positive definite")

// Cholesky computes the lower-triangular factor L with A = L L^T for a
// symmetric positive-definite matrix. Production CP-ALS implementations
// (e.g. SPLATT) solve the normal equations with Cholesky and fall back to
// the pseudo-inverse when the gram product is rank-deficient; this
// repository keeps Pinv as the paper's dagger operator and provides
// Cholesky as the fast path and as an independent cross-check.
func Cholesky(a *Dense) (*Dense, error) {
	if a.Rows != a.Cols {
		panic("la: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewDense(n, n)
	for j := 0; j < n; j++ {
		var diag float64
		for k := 0; k < j; k++ {
			diag += l.At(j, k) * l.At(j, k)
		}
		d := a.At(j, j) - diag
		if d <= 0 {
			return nil, ErrNotPD
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, (a.At(i, j)-s)/ljj)
		}
	}
	return l, nil
}

// CholeskySolve solves A x = b given the Cholesky factor L of A, by
// forward then backward substitution.
func CholeskySolve(l *Dense, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("la: CholeskySolve dimension mismatch")
	}
	// L y = b
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// L^T x = y
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SPDInverse inverts a symmetric positive-definite matrix via Cholesky.
// Returns ErrNotPD for singular/indefinite input (use Pinv there).
func SPDInverse(a *Dense) (*Dense, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := CholeskySolve(l, e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
