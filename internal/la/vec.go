package la

import "math"

// The vector kernels below are the per-nonzero hot path of every MTTKRP
// variant in this repository: each sparse tensor entry triggers a handful of
// length-R Hadamard products and scaled accumulations.

// VecHadamardInto sets dst[i] = a[i] * b[i].
func VecHadamardInto(dst, a, b []float64) {
	_ = dst[len(a)-1]
	_ = b[len(a)-1]
	for i, v := range a {
		dst[i] = v * b[i]
	}
}

// VecHadamard returns a new vector a .* b.
func VecHadamard(a, b []float64) []float64 {
	dst := make([]float64, len(a))
	VecHadamardInto(dst, a, b)
	return dst
}

// VecMulInto sets dst[i] *= a[i].
func VecMulInto(dst, a []float64) {
	_ = a[len(dst)-1]
	for i := range dst {
		dst[i] *= a[i]
	}
}

// VecAddScaled computes dst[i] += s * a[i].
func VecAddScaled(dst []float64, s float64, a []float64) {
	_ = a[len(dst)-1]
	for i := range dst {
		dst[i] += s * a[i]
	}
}

// VecAdd computes dst[i] += a[i].
func VecAdd(dst, a []float64) {
	_ = a[len(dst)-1]
	for i := range dst {
		dst[i] += a[i]
	}
}

// VecScale multiplies every element of v by s.
func VecScale(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// VecDot returns the inner product of a and b.
func VecDot(a, b []float64) float64 {
	var s float64
	_ = b[len(a)-1]
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// VecNorm returns the Euclidean norm of v.
func VecNorm(v []float64) float64 {
	return math.Sqrt(VecDot(v, v))
}

// VecClone returns a copy of v.
func VecClone(v []float64) []float64 {
	c := make([]float64, len(v))
	copy(c, v)
	return c
}

// VecMaxAbsDiff returns max_i |a[i]-b[i]|, or +Inf on length mismatch.
func VecMaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var d float64
	for i, v := range a {
		if x := math.Abs(v - b[i]); x > d {
			d = x
		}
	}
	return d
}

// MatVec computes y = m * x for a small dense m.
func MatVec(m *Dense, x []float64) []float64 {
	if len(x) != m.Cols {
		panic("la: matvec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = VecDot(m.Row(i), x)
	}
	return y
}

// VecMatInto computes dst = x^T * m for a small dense m (dst length m.Cols).
// This is the "row times R x R matrix" step that applies the pseudo-inverse
// of the gram product to each MTTKRP output row.
func VecMatInto(dst, x []float64, m *Dense) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("la: vecmat dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Row(i)
		for j, mv := range row {
			dst[j] += xv * mv
		}
	}
}
