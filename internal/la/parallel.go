package la

import (
	"math"

	"cstf/internal/par"
)

// Parallel counterparts of the tall-matrix kernels (gram, column norms,
// normalization). All reductions are blocked on par.BlockSize rows with
// partials merged in block order, so for a given matrix the result is
// bitwise identical for every worker count — workers only race for which
// block they compute, never for how the sum tree is shaped.

// GramParallel computes m' * m with up to `workers` goroutines. The
// result is bitwise reproducible across worker counts (including 1), but
// differs in rounding from the purely sequential Gram, which accumulates
// row-by-row without block partials.
func GramParallel(m *Dense, workers int) *Dense {
	g := NewDense(m.Cols, m.Cols)
	nb := par.NumBlocks(m.Rows)
	if nb == 0 {
		return g
	}
	if nb == 1 {
		GramAccumulate(g, m)
		return g
	}
	partials := make([]*Dense, nb)
	par.Run(workers, nb, func(b int) {
		lo, hi := par.Block(b, m.Rows)
		p := NewDense(m.Cols, m.Cols)
		GramAccumulate(p, &Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]})
		partials[b] = p
	})
	for _, p := range partials {
		for i, v := range p.Data {
			g.Data[i] += v
		}
	}
	return g
}

// ColumnNormsParallel returns the Euclidean norm of each column, computed
// as a blocked reduction over row blocks.
func ColumnNormsParallel(m *Dense, workers int) []float64 {
	sums := make([]float64, m.Cols)
	nb := par.NumBlocks(m.Rows)
	partials := make([][]float64, nb)
	par.Run(workers, nb, func(b int) {
		lo, hi := par.Block(b, m.Rows)
		p := make([]float64, m.Cols)
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j, v := range row {
				p[j] += v * v
			}
		}
		partials[b] = p
	})
	for _, p := range partials {
		for j, v := range p {
			sums[j] += v
		}
	}
	for j := range sums {
		sums[j] = math.Sqrt(sums[j])
	}
	return sums
}

// NormalizeColumnsParallel divides each column by its norm (computed via
// ColumnNormsParallel) and returns the norms, with zero-norm columns
// reported as 1 exactly like NormalizeColumns. The row scaling fans out
// over row blocks; it is elementwise, so any partitioning is exact.
func NormalizeColumnsParallel(m *Dense, workers int) []float64 {
	norms := ColumnNormsParallel(m, workers)
	for j, n := range norms {
		if n == 0 {
			norms[j] = 1
		}
	}
	par.Run(workers, par.NumBlocks(m.Rows), func(b int) {
		lo, hi := par.Block(b, m.Rows)
		for i := lo; i < hi; i++ {
			row := m.Data[i*m.Cols : (i+1)*m.Cols]
			for j := range row {
				row[j] /= norms[j]
			}
		}
	})
	return norms
}

// RowBlocksApply runs fn over the row blocks of an n-row matrix on the
// worker pool. fn must only touch rows in its [lo, hi) block; under that
// contract the result is independent of the worker count.
func RowBlocksApply(workers, n int, fn func(lo, hi int)) {
	par.ForBlocks(workers, n, fn)
}

// RowNormsParallel returns the Euclidean norm of each ROW of m — the
// per-item normalizers of cosine-similarity scoring over factor rows. The
// rows are independent, so any partitioning is exact; the fan-out reuses
// the same blocked discipline as ColumnNormsParallel.
func RowNormsParallel(m *Dense, workers int) []float64 {
	norms := make([]float64, m.Rows)
	par.ForBlocks(workers, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			norms[i] = VecNorm(m.Data[i*m.Cols : (i+1)*m.Cols])
		}
	})
	return norms
}

// ColumnSums returns the per-column sums of m. For a CP factor matrix this
// is the uniform marginalization weight of its mode: summing the model over
// every index of the mode collapses A_n to its column-sum vector.
func ColumnSums(m *Dense) []float64 {
	sums := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}
