package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewDenseFrom(2, 3, make([]float64, 5))
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if m.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v, want %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(3, 2)
	m.Set(1, 1, 7)
	if m.At(1, 1) != 7 {
		t.Fatalf("At(1,1) = %v", m.At(1, 1))
	}
	row := m.Row(1)
	row[0] = 5 // Row aliases storage
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias the matrix storage")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randDense(rng, 3, 5)
	tr := m.Transpose()
	if tr.Rows != 5 || tr.Cols != 3 {
		t.Fatalf("transpose dims %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if tr.At(j, i) != m.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	back := tr.Transpose()
	if MaxAbsDiff(back, m) != 0 {
		t.Fatal("double transpose must be identity")
	}
}

func TestGramMatchesExplicitMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randDense(rng, 50, 4)
	g := m.Gram()
	explicit := Mul(m.Transpose(), m)
	if d := MaxAbsDiff(g, explicit); d > 1e-12 {
		t.Fatalf("gram differs from A^T A by %g", d)
	}
}

func TestGramSymmetricPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randDense(rng, 1+rng.Intn(40), 1+rng.Intn(6))
		g := m.Gram()
		// Symmetry.
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				if math.Abs(g.At(i, j)-g.At(j, i)) > 1e-12 {
					return false
				}
			}
		}
		// PSD: x^T G x >= 0 for random x.
		x := make([]float64, g.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		gx := MatVec(g, x)
		return VecDot(x, gx) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAssociativityWithIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randDense(rng, 4, 4)
	if d := MaxAbsDiff(Mul(m, Identity(4)), m); d > 0 {
		t.Fatalf("M*I != M (diff %g)", d)
	}
	if d := MaxAbsDiff(Mul(Identity(4), m), m); d > 0 {
		t.Fatalf("I*M != M (diff %g)", d)
	}
}

func TestHadamard(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(2, 2, []float64{5, 6, 7, 8})
	h := Hadamard(a, b)
	want := []float64{5, 12, 21, 32}
	for i, v := range want {
		if h.Data[i] != v {
			t.Fatalf("hadamard[%d] = %v, want %v", i, h.Data[i], v)
		}
	}
	dst := NewDense(2, 2)
	HadamardInto(dst, a, b)
	if MaxAbsDiff(dst, h) != 0 {
		t.Fatal("HadamardInto mismatch")
	}
}

func TestColumnNormsAndNormalize(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{3, 0, 4, 0})
	norms := m.ColumnNorms()
	if norms[0] != 5 || norms[1] != 0 {
		t.Fatalf("norms = %v", norms)
	}
	lam := m.NormalizeColumns()
	if lam[0] != 5 || lam[1] != 1 {
		t.Fatalf("lambda = %v (zero column must report 1)", lam)
	}
	if math.Abs(m.At(0, 0)-0.6) > 1e-15 || math.Abs(m.At(1, 0)-0.8) > 1e-15 {
		t.Fatalf("normalized column wrong: %v", m.Data)
	}
}

func TestNormalizeThenScaleRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randDense(rng, 2+rng.Intn(20), 1+rng.Intn(5))
		orig := m.Clone()
		lam := m.NormalizeColumns()
		for i := 0; i < m.Rows; i++ {
			row := m.Row(i)
			for j := range row {
				row[j] *= lam[j]
			}
		}
		return MaxAbsDiff(m, orig) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSolve(t *testing.T) {
	a := NewDenseFrom(3, 3, []float64{4, 1, 0, 1, 3, 1, 0, 1, 2})
	want := []float64{1, -2, 3}
	b := MatVec(a, want)
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := VecMaxAbsDiff(x, want); d > 1e-10 {
		t.Fatalf("solve error %g", d)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewDenseFrom(2, 2, []float64{1, 2, 2, 0})
	if got := m.FrobeniusNorm(); math.Abs(got-3) > 1e-15 {
		t.Fatalf("frobenius = %v, want 3", got)
	}
}

func TestScaleAndZero(t *testing.T) {
	m := NewDenseFrom(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	if m.Data[2] != 6 {
		t.Fatalf("scale failed: %v", m.Data)
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("zero failed")
		}
	}
}

func TestVecMatIntoPanicsOnMismatch(t *testing.T) {
	m := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VecMatInto(make([]float64, 3), make([]float64, 5), m)
}

func TestMatVecPanicsOnMismatch(t *testing.T) {
	m := NewDense(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatVec(m, make([]float64, 2))
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(-1, 3)
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestGramAccumulatePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GramAccumulate(NewDense(2, 2), NewDense(4, 3))
}

func TestSolvePanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = Solve(NewDense(2, 3), []float64{1, 2})
}
