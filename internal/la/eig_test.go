package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSymmetric(rng *rand.Rand, n int) *Dense {
	m := randDense(rng, n, n)
	return Mul(m.Transpose(), m) // symmetric PSD
}

func TestSymEigReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := randSymmetric(rng, n)
		vals, vecs := SymEig(a)
		// Reconstruct V diag(vals) V^T.
		rec := NewDense(n, n)
		for k, lam := range vals {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					rec.Data[i*n+j] += lam * vecs.At(i, k) * vecs.At(j, k)
				}
			}
		}
		if d := MaxAbsDiff(rec, a); d > 1e-8*(1+a.FrobeniusNorm()) {
			t.Fatalf("n=%d: reconstruction error %g", n, d)
		}
	}
}

func TestSymEigOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSymmetric(rng, 6)
	_, vecs := SymEig(a)
	vtv := Mul(vecs.Transpose(), vecs)
	if d := MaxAbsDiff(vtv, Identity(6)); d > 1e-9 {
		t.Fatalf("eigenvectors not orthonormal, V^T V off by %g", d)
	}
}

func TestSymEigDiagonalMatrix(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 0.5)
	vals, _ := SymEig(a)
	got := append([]float64(nil), vals...)
	// Sort ascending for comparison.
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[j] < got[i] {
				got[i], got[j] = got[j], got[i]
			}
		}
	}
	want := []float64{-1, 0.5, 3}
	if d := VecMaxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("eigenvalues %v, want %v", got, want)
	}
}

// Pinv of an invertible matrix must be its inverse.
func TestPinvInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSymmetric(rng, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, a.At(i, i)+1) // ensure well-conditioned
	}
	p := Pinv(a)
	if d := MaxAbsDiff(Mul(a, p), Identity(4)); d > 1e-8 {
		t.Fatalf("A * pinv(A) differs from I by %g", d)
	}
}

// The four Moore-Penrose axioms, checked on rank-deficient matrices.
func TestPinvMoorePenroseAxioms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		rank := 1 + rng.Intn(n)
		// Build a symmetric PSD matrix of known rank.
		b := randDense(rng, n, rank)
		a := Mul(b, b.Transpose())
		p := Pinv(a)
		ap := Mul(a, p)
		pa := Mul(p, a)
		tol := 1e-7 * (1 + a.FrobeniusNorm())
		if MaxAbsDiff(Mul(ap, a), a) > tol { // A P A = A
			return false
		}
		if MaxAbsDiff(Mul(pa, p), p) > tol { // P A P = P
			return false
		}
		if MaxAbsDiff(ap, ap.Transpose()) > tol { // (AP)^T = AP
			return false
		}
		return MaxAbsDiff(pa, pa.Transpose()) <= tol // (PA)^T = PA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPinvZeroMatrix(t *testing.T) {
	p := Pinv(NewDense(3, 3))
	if p.FrobeniusNorm() != 0 {
		t.Fatal("pinv of zero matrix must be zero")
	}
}

func TestPinvAgreesWithSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randSymmetric(rng, 5)
	for i := 0; i < 5; i++ {
		a.Set(i, i, a.At(i, i)+2)
	}
	b := make([]float64, 5)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	direct, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	viaPinv := MatVec(Pinv(a), b)
	if d := VecMaxAbsDiff(direct, viaPinv); d > 1e-8 {
		t.Fatalf("pinv solve differs from gaussian solve by %g", d)
	}
}

func TestKhatriRaoDefinition(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseFrom(3, 2, []float64{5, 6, 7, 8, 9, 10})
	kr := KhatriRao(a, b)
	if kr.Rows != 6 || kr.Cols != 2 {
		t.Fatalf("kr dims %dx%d", kr.Rows, kr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for r := 0; r < 2; r++ {
				want := a.At(i, r) * b.At(j, r)
				if got := kr.At(i*3+j, r); got != want {
					t.Fatalf("kr(%d,%d) = %v, want %v", i*3+j, r, got, want)
				}
			}
		}
	}
}

func TestKroneckerIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randDense(rng, 2, 3)
	k := Kronecker(Identity(2), m)
	if k.Rows != 4 || k.Cols != 6 {
		t.Fatalf("kron dims %dx%d", k.Rows, k.Cols)
	}
	// Top-left block is m, top-right block is zero.
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if k.At(i, j) != m.At(i, j) {
				t.Fatal("kron top-left block mismatch")
			}
			if k.At(i, j+3) != 0 {
				t.Fatal("kron top-right block must be zero")
			}
		}
	}
}

// Khatri-Rao gram identity: (A ⊙ B)^T (A ⊙ B) = A^T A .* B^T B.
// This identity is why CP-ALS never needs the explicit Khatri-Rao product.
func TestKhatriRaoGramIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(4)
		a := randDense(rng, 2+rng.Intn(6), r)
		b := randDense(rng, 2+rng.Intn(6), r)
		left := KhatriRao(a, b).Gram()
		right := Hadamard(a.Gram(), b.Gram())
		return MaxAbsDiff(left, right) < 1e-9*(1+left.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVecKernels(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := VecDot(a, b); got != 32 {
		t.Fatalf("dot = %v", got)
	}
	h := VecHadamard(a, b)
	if h[0] != 4 || h[1] != 10 || h[2] != 18 {
		t.Fatalf("hadamard = %v", h)
	}
	dst := VecClone(a)
	VecAddScaled(dst, 2, b)
	if dst[2] != 15 {
		t.Fatalf("addscaled = %v", dst)
	}
	VecAdd(dst, a)
	if dst[0] != 10 {
		t.Fatalf("add = %v", dst)
	}
	VecScale(dst, 0.5)
	if dst[0] != 5 {
		t.Fatalf("scale = %v", dst)
	}
	VecMulInto(dst, a)
	if dst[2] != 27 {
		t.Fatalf("mulinto = %v", dst)
	}
	if math.Abs(VecNorm([]float64{3, 4})-5) > 1e-15 {
		t.Fatal("norm")
	}
	if !math.IsInf(VecMaxAbsDiff(a, []float64{1}), 1) {
		t.Fatal("maxabsdiff must be +Inf on length mismatch")
	}
}

func TestVecMatInto(t *testing.T) {
	m := NewDenseFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 2}
	dst := make([]float64, 3)
	VecMatInto(dst, x, m)
	want := []float64{9, 12, 15}
	if d := VecMaxAbsDiff(dst, want); d != 0 {
		t.Fatalf("vecmat = %v, want %v", dst, want)
	}
}
