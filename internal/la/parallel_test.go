package la

import (
	"testing"

	"cstf/internal/rng"
)

func randTall(rows, cols int, seed uint64) *Dense {
	m := NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.UniformAt(seed, uint64(i)) - 0.5
	}
	return m
}

// Blocked parallel gram must be bitwise identical across worker counts and
// numerically equal (to rounding) to the sequential gram.
func TestGramParallelDeterministic(t *testing.T) {
	m := randTall(3*2048+513, 6, 7)
	want := GramParallel(m, 1)
	for _, workers := range []int{2, 4, 8} {
		got := GramParallel(m, workers)
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("workers=%d: gram differs bitwise by %g", workers, d)
		}
	}
	seq := m.Gram()
	if d := MaxAbsDiff(want, seq); d > 1e-10 {
		t.Fatalf("blocked gram differs from sequential by %g", d)
	}
}

func TestColumnNormsParallelDeterministic(t *testing.T) {
	m := randTall(2*2048+99, 5, 3)
	want := ColumnNormsParallel(m, 1)
	for _, workers := range []int{2, 8} {
		if d := VecMaxAbsDiff(ColumnNormsParallel(m, workers), want); d != 0 {
			t.Fatalf("workers=%d: column norms differ bitwise by %g", workers, d)
		}
	}
	if d := VecMaxAbsDiff(want, m.ColumnNorms()); d > 1e-10 {
		t.Fatalf("blocked norms differ from sequential by %g", d)
	}
}

func TestNormalizeColumnsParallelDeterministic(t *testing.T) {
	base := randTall(2048+777, 4, 11)
	want := base.Clone()
	wantNorms := NormalizeColumnsParallel(want, 1)
	for _, workers := range []int{2, 8} {
		got := base.Clone()
		gotNorms := NormalizeColumnsParallel(got, workers)
		if d := VecMaxAbsDiff(gotNorms, wantNorms); d != 0 {
			t.Fatalf("workers=%d: norms differ bitwise by %g", workers, d)
		}
		if d := MaxAbsDiff(got, want); d != 0 {
			t.Fatalf("workers=%d: normalized matrix differs bitwise by %g", workers, d)
		}
	}
}

func TestNormalizeColumnsParallelZeroColumn(t *testing.T) {
	m := NewDense(10, 2)
	for i := 0; i < 10; i++ {
		m.Set(i, 0, float64(i+1))
	}
	norms := NormalizeColumnsParallel(m, 4)
	if norms[1] != 1 {
		t.Fatalf("zero column should report norm 1, got %v", norms[1])
	}
	for i := 0; i < 10; i++ {
		if m.At(i, 1) != 0 {
			t.Fatal("zero column must stay zero")
		}
	}
}

func TestRowBlocksApplyCoverage(t *testing.T) {
	n := 2*2048 + 31
	seen := make([]int, n)
	RowBlocksApply(4, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d visited %d times", i, c)
		}
	}
}
