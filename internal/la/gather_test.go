package la

import (
	"math"
	"testing"

	"cstf/internal/rng"
)

func seededDense(seed uint64, r, c int) *Dense {
	g := rng.New(seed)
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = g.Float64()*2 - 1
	}
	return m
}

func TestMatVecIntoMatchesMatVec(t *testing.T) {
	m := seededDense(1, 37, 8)
	x := seededDense(2, 8, 1).Data
	want := MatVec(m, x)
	got := make([]float64, m.Rows)
	MatVecInto(got, m, x)
	if VecMaxAbsDiff(want, got) != 0 {
		t.Fatal("MatVecInto differs from MatVec")
	}
}

func TestMatVecRange(t *testing.T) {
	m := seededDense(3, 41, 6)
	x := seededDense(4, 6, 1).Data
	full := MatVec(m, x)
	lo, hi := 7, 29
	got := make([]float64, hi-lo)
	MatVecRange(got, m, x, lo, hi)
	if VecMaxAbsDiff(full[lo:hi], got) != 0 {
		t.Fatal("MatVecRange differs from the full product")
	}
}

func TestMatMulBatchRange(t *testing.T) {
	m := seededDense(5, 53, 4)
	qs := [][]float64{
		seededDense(6, 4, 1).Data,
		seededDense(7, 4, 1).Data,
		seededDense(8, 4, 1).Data,
	}
	lo, hi := 3, 50
	dst := make([][]float64, len(qs))
	for b := range dst {
		dst[b] = make([]float64, hi-lo)
	}
	MatMulBatchRange(dst, m, qs, lo, hi)
	for b, q := range qs {
		want := make([]float64, hi-lo)
		MatVecRange(want, m, q, lo, hi)
		if VecMaxAbsDiff(want, dst[b]) != 0 {
			t.Fatalf("query %d differs from per-query MatVecRange", b)
		}
	}
}

func TestGatherRows(t *testing.T) {
	m := seededDense(9, 20, 5)
	rows := []int{19, 0, 7, 7, 3}
	g := GatherRows(m, rows)
	for o, i := range rows {
		if VecMaxAbsDiff(g.Row(o), m.Row(i)) != 0 {
			t.Fatalf("gathered row %d (src %d) differs", o, i)
		}
	}
}

func TestRowNormsParallel(t *testing.T) {
	m := seededDense(10, 4100, 7) // spans multiple blocks
	for _, workers := range []int{1, 4} {
		norms := RowNormsParallel(m, workers)
		for i := 0; i < m.Rows; i += 997 {
			if want := VecNorm(m.Row(i)); norms[i] != want {
				t.Fatalf("workers=%d row %d norm %v want %v", workers, i, norms[i], want)
			}
		}
	}
}

func TestColumnSums(t *testing.T) {
	m := seededDense(11, 123, 3)
	sums := ColumnSums(m)
	for j := 0; j < m.Cols; j++ {
		var want float64
		for i := 0; i < m.Rows; i++ {
			want += m.At(i, j)
		}
		if math.Abs(sums[j]-want) > 1e-12 {
			t.Fatalf("col %d sum %v want %v", j, sums[j], want)
		}
	}
}

// The serving hot path: one tall factor matrix streamed against queries.

func BenchmarkMatVecInto(b *testing.B) {
	m := seededDense(1, 100_000, 16)
	x := seededDense(2, 16, 1).Data
	dst := make([]float64, m.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVecInto(dst, m, x)
	}
}

// BenchmarkMatMulBatch16 streams the matrix ONCE for 16 queries; compare
// against 16x BenchmarkMatVecInto for the coalescing win.
func BenchmarkMatMulBatch16(b *testing.B) {
	m := seededDense(1, 100_000, 16)
	qs := make([][]float64, 16)
	dst := make([][]float64, 16)
	for i := range qs {
		qs[i] = seededDense(uint64(i+2), 16, 1).Data
		dst[i] = make([]float64, m.Rows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulBatchRange(dst, m, qs, 0, m.Rows)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	m := seededDense(1, 100_000, 16)
	g := rng.New(3)
	rows := make([]int, 1024)
	for i := range rows {
		rows[i] = g.Intn(m.Rows)
	}
	dst := NewDense(len(rows), m.Cols)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRowsInto(dst, m, rows)
	}
}
