package la

// KhatriRao returns the column-wise Khatri-Rao product A ⊙ B of an
// (I x R) and (J x R) matrix: an (I*J x R) matrix whose column r is the
// Kronecker product of column r of A with column r of B.
//
// CSTF never materializes this product (avoiding it is the whole point of
// the COO formulation); it exists so tests can check MTTKRP implementations
// against the textbook definition M = X(n) * (C ⊙ B).
func KhatriRao(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic("la: khatri-rao column mismatch")
	}
	r := a.Cols
	out := NewDense(a.Rows*b.Rows, r)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			orow := out.Row(i*b.Rows + j)
			for k := 0; k < r; k++ {
				orow[k] = arow[k] * brow[k]
			}
		}
	}
	return out
}

// Kronecker returns the Kronecker product a ⊗ b.
func Kronecker(a, b *Dense) *Dense {
	out := NewDense(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for p := 0; p < b.Rows; p++ {
				for q := 0; q < b.Cols; q++ {
					out.Set(i*b.Rows+p, j*b.Cols+q, av*b.At(p, q))
				}
			}
		}
	}
	return out
}
