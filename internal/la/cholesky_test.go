package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func spdMatrix(rng *rand.Rand, n int) *Dense {
	m := randDense(rng, n+2, n) // full column rank w.h.p.
	a := Mul(m.Transpose(), m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := spdMatrix(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// L must be lower triangular with positive diagonal.
		for i := 0; i < n; i++ {
			if l.At(i, i) <= 0 {
				return false
			}
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					return false
				}
			}
		}
		rec := Mul(l, l.Transpose())
		return MaxAbsDiff(rec, a) < 1e-9*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPD {
		t.Fatalf("expected ErrNotPD, got %v", err)
	}
	zero := NewDense(3, 3)
	if _, err := Cholesky(zero); err != ErrNotPD {
		t.Fatalf("expected ErrNotPD for zero matrix, got %v", err)
	}
}

func TestCholeskySolveMatchesGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := spdMatrix(rng, 6)
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	got := CholeskySolve(l, b)
	want, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := VecMaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("cholesky solve differs from gaussian by %g", d)
	}
}

func TestSPDInverseMatchesPinv(t *testing.T) {
	// On well-conditioned SPD matrices, the Cholesky inverse and the
	// eigen-based pseudo-inverse must agree — two independent
	// implementations checking each other.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := spdMatrix(rng, n)
		inv, err := SPDInverse(a)
		if err != nil {
			return false
		}
		p := Pinv(a)
		return MaxAbsDiff(inv, p) < 1e-7*(1+p.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSPDInverseIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := spdMatrix(rng, 5)
	inv, err := SPDInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(Mul(a, inv), Identity(5)); d > 1e-9 {
		t.Fatalf("A * inv(A) off identity by %g", d)
	}
	if _, err := SPDInverse(NewDense(2, 2)); err == nil {
		t.Fatal("singular matrix must error")
	}
}

func TestCholeskyLargeWellConditioned(t *testing.T) {
	// A 32x32 diagonally dominant system, checking numerical stability.
	n := 32
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				a.Set(i, j, 10)
			} else {
				a.Set(i, j, 1/float64(1+i+j))
			}
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := CholeskySolve(l, b)
	ax := MatVec(a, x)
	if d := VecMaxAbsDiff(ax, b); d > 1e-9 {
		t.Fatalf("residual %g", d)
	}
	if math.IsNaN(x[0]) {
		t.Fatal("NaN in solution")
	}
}
