package la

import "fmt"

// Serving hot-path kernels: the model server scores queries by streaming a
// tall factor matrix against one or many short query vectors, and gathers
// factor rows for batched reconstruction. These complement MatVec/VecMatInto
// in vec.go, which cover the small rank-sized matrices of the solver.

// MatVecInto computes dst = m * x without allocating (dst length m.Rows).
// This is the single-query scoring scan: one dot product per factor row.
func MatVecInto(dst []float64, m *Dense, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("la: matvecinto dimension mismatch %dx%d * %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	c := m.Cols
	for i := 0; i < m.Rows; i++ {
		dst[i] = VecDot(m.Data[i*c:(i+1)*c], x)
	}
}

// MatVecRange computes dst[i-lo] = m.Row(i) . x for i in [lo, hi) — the
// row-block slice of MatVecInto that blocked parallel scans fan out over.
func MatVecRange(dst []float64, m *Dense, x []float64, lo, hi int) {
	if len(x) != m.Cols || len(dst) < hi-lo {
		panic("la: matvecrange dimension mismatch")
	}
	c := m.Cols
	for i := lo; i < hi; i++ {
		dst[i-lo] = VecDot(m.Data[i*c:(i+1)*c], x)
	}
}

// MatMulBatchRange computes dst[b][i-lo] = m.Row(i) . qs[b] for i in
// [lo, hi) and every query vector in qs. The row loop is OUTER, so each
// factor row is loaded from memory once and reused across all queries —
// the cache-locality win that makes coalescing concurrent serving requests
// into one scan worthwhile. Every dst[b] must have length >= hi-lo and
// every query length m.Cols.
func MatMulBatchRange(dst [][]float64, m *Dense, qs [][]float64, lo, hi int) {
	if len(dst) != len(qs) {
		panic("la: matmulbatchrange query/output count mismatch")
	}
	for b, q := range qs {
		if len(q) != m.Cols || len(dst[b]) < hi-lo {
			panic("la: matmulbatchrange dimension mismatch")
		}
	}
	c := m.Cols
	for i := lo; i < hi; i++ {
		row := m.Data[i*c : (i+1)*c]
		for b, q := range qs {
			dst[b][i-lo] = VecDot(row, q)
		}
	}
}

// GatherRows copies the given rows of m into a new len(rows) x m.Cols
// matrix. Out-of-range indices panic; callers validate request bounds
// before gathering.
func GatherRows(m *Dense, rows []int) *Dense {
	out := NewDense(len(rows), m.Cols)
	GatherRowsInto(out, m, rows)
	return out
}

// GatherRowsInto copies the given rows of m into dst (len(rows) x m.Cols),
// without allocating.
func GatherRowsInto(dst *Dense, m *Dense, rows []int) {
	if dst.Rows != len(rows) || dst.Cols != m.Cols {
		panic("la: gather dimension mismatch")
	}
	c := m.Cols
	for o, i := range rows {
		if i < 0 || i >= m.Rows {
			panic(fmt.Sprintf("la: gather row %d out of range [0,%d)", i, m.Rows))
		}
		copy(dst.Data[o*c:(o+1)*c], m.Data[i*c:(i+1)*c])
	}
}
