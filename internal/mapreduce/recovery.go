package mapreduce

import (
	"fmt"
	"sort"

	"cstf/internal/cluster"
)

// Fault tolerance for the Hadoop-style engine. Task-level behaviour —
// deterministic per-task retries with a cap, bounded stage re-execution,
// and speculative re-execution of stragglers — comes from the underlying
// cluster (every map and reduce wave flows through cluster.RunStage), so
// this file adds the HDFS side: when a node crashes or a disk fails, every
// tracked file re-replicates the block replicas that node hosted, charging
// the copy under the Recovery phase; a block with no surviving replica is
// unrecoverable data loss and aborts the job with a typed error.

// JobAbort is the typed error Env.Err returns once a job could not
// complete: some stage exhausted its retry budget or HDFS data was lost.
// It wraps the underlying *cluster.StageFailure or *cluster.DataLoss.
type JobAbort struct {
	Job string // name of the job during which the abort was detected
	Err error
}

func (e *JobAbort) Error() string {
	return fmt.Sprintf("mapreduce: job %q aborted: %v", e.Job, e.Err)
}

func (e *JobAbort) Unwrap() error { return e.Err }

// reReplicator is the registry's type-erased view of a tracked file.
type reReplicator interface {
	reReplicate(node int)
}

// EnableRecovery subscribes the environment to node-crash and disk-failure
// events: every file written afterwards is tracked (keyed by name, so a
// rewritten file replaces its predecessor, like an HDFS path overwrite),
// and a fault triggers re-replication of the lost block replicas.
func (env *Env) EnableRecovery() {
	env.mu.Lock()
	if env.resilient {
		env.mu.Unlock()
		return
	}
	env.resilient = true
	env.files = map[string]reReplicator{}
	env.mu.Unlock()
	relost := func(node int) {
		env.mu.Lock()
		names := make([]string, 0, len(env.files))
		for n := range env.files {
			names = append(names, n)
		}
		sort.Strings(names) // deterministic recovery-stage order
		files := make([]reReplicator, len(names))
		for i, n := range names {
			files[i] = env.files[n]
		}
		env.mu.Unlock()
		for _, f := range files {
			f.reReplicate(node)
		}
	}
	env.C.OnNodeCrash(relost)
	env.C.OnDiskFailure(relost)
}

// track registers a freshly written file for fault recovery.
func (env *Env) track(name string, f reReplicator) {
	env.mu.Lock()
	if env.resilient {
		env.files[name] = f
	}
	env.mu.Unlock()
}

// Err returns the sticky abort error for this environment: a *JobAbort once
// a job observed the failure, or the raw cluster error before that. Nil
// while everything is healthy.
func (env *Env) Err() error {
	env.mu.Lock()
	defer env.mu.Unlock()
	if env.abort != nil {
		return env.abort
	}
	return env.C.Err()
}

// noteAbort records which job first observed a cluster-level failure.
func (env *Env) noteAbort(job string) {
	err := env.C.Err()
	if err == nil {
		return
	}
	env.mu.Lock()
	if env.abort == nil {
		env.abort = &JobAbort{Job: job, Err: err}
	}
	env.mu.Unlock()
}

// reReplicate restores the replication factor of the blocks whose primary
// copy lived on the failed node: a surviving replica is read and copied to
// a replacement node, charged as one Recovery-phase stage. With replication
// <= 1 nothing survives and the environment fails with data loss.
func (f *File[T]) reReplicate(node int) {
	env := f.env
	c := env.C
	rep := c.Profile.HDFSReplication
	var tasks []cluster.Task
	var total float64
	for b := range f.blocks {
		if c.NodeOf(b) != node {
			continue
		}
		if rep <= 1 {
			c.Fail(&cluster.DataLoss{Node: node, Detail: fmt.Sprintf("file %s block %d had no surviving replica (replication %d)", f.name, b, rep)})
			return
		}
		bytes := f.blockBytes(b)
		tasks = append(tasks, cluster.Task{
			// The replacement host reads the surviving replica remotely and
			// writes it locally: disk on both ends, charged to the writer.
			Node:      (node + 1) % c.Nodes,
			DiskBytes: 2 * bytes,
		})
		total += bytes
	}
	if len(tasks) == 0 {
		return
	}
	oldPhase := c.Phase()
	c.SetPhase(cluster.PhaseRecovery)
	c.RunStage(false, tasks)
	c.SetPhase(oldPhase)
	c.NoteReReplicated(total)
}
