package mapreduce

import (
	"errors"
	"testing"

	"cstf/internal/cluster"
)

// crashOnce delivers one node crash at the given stage.
type crashOnce struct {
	stage     uint64
	node      int
	delivered bool
}

func (c *crashOnce) TakeFaults(seq uint64) ([]int, []int) {
	if !c.delivered && seq >= c.stage {
		c.delivered = true
		return []int{c.node}, nil
	}
	return nil, nil
}

func (c *crashOnce) StageConditions(uint64, int) ([]float64, float64) { return nil, 1 }

func TestCrashTriggersReReplication(t *testing.T) {
	c := cluster.New(4, cluster.LaptopProfile())
	env := NewEnv(c, 8)
	env.EnableRecovery()
	c.SetFaultInjector(&crashOnce{stage: 2, node: 1})

	data := make([]int, 64)
	for i := range data {
		data[i] = i
	}
	f := WriteFile(env, "in", data, func(int) int { return 8 }) // stage 1
	// Stage 2 delivers the crash; blocks 1 and 5 of the file lived on node 1
	// and re-replicate during delivery.
	out := RunMapJob(env, "identity", f, func(x int) []int { return []int{x} }, func(int) int { return 8 }, 0)

	m := c.Metrics()
	if m.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", m.NodeCrashes)
	}
	if m.ReReplicatedBytes == 0 {
		t.Fatal("expected re-replicated bytes after the crash")
	}
	if m.SimTime[cluster.PhaseRecovery] <= c.Profile.RecoveryDelay {
		t.Fatal("re-replication time not charged under Recovery")
	}
	if env.Err() != nil {
		t.Fatalf("replicated file must survive a single crash: %v", env.Err())
	}
	if out.Records() != len(data) {
		t.Fatalf("job output lost records: %d of %d", out.Records(), len(data))
	}
}

func TestCrashWithReplicationOneIsDataLoss(t *testing.T) {
	c := cluster.New(4, func() cluster.Profile {
		p := cluster.LaptopProfile()
		p.HDFSReplication = 1
		return p
	}())
	env := NewEnv(c, 8)
	env.EnableRecovery()
	c.SetFaultInjector(&crashOnce{stage: 2, node: 1})
	WriteFile(env, "in", []int{1, 2, 3, 4}, func(int) int { return 8 })
	// Trigger the crash via any stage.
	c.RunStage(false, []cluster.Task{{Node: 0, Records: 1}})
	err := env.Err()
	if err == nil {
		t.Fatal("replication 1 + crash must be data loss")
	}
	var dl *cluster.DataLoss
	if !errors.As(err, &dl) {
		t.Fatalf("error is %T, want *cluster.DataLoss", err)
	}
}

func TestJobAbortIsTypedAndSticky(t *testing.T) {
	c := cluster.New(2, cluster.LaptopProfile())
	env := NewEnv(c, 4)
	if err := c.InjectTaskFailures(0.999, 7); err != nil {
		t.Fatal(err)
	}
	f := WriteFile(env, "in", []int{1, 2, 3, 4, 5, 6, 7, 8}, func(int) int { return 8 })
	RunJob(env, "sum", f,
		func(x int, emit Emit[int, int]) { emit(x%2, x) },
		nil,
		func(k int, vs []int, out func(int)) { out(len(vs)) },
		func(int, int) int { return 16 },
		func(int) int { return 8 },
		JobOpts{})
	err := env.Err()
	if err == nil {
		t.Fatal("expected job abort at rate 0.999")
	}
	var ja *JobAbort
	if !errors.As(err, &ja) {
		t.Fatalf("error is %T, want *JobAbort", err)
	}
	var sf *cluster.StageFailure
	if !errors.As(err, &sf) {
		t.Fatalf("JobAbort must wrap the stage failure, got %v", err)
	}
	// The first failing job keeps the blame even after later failures.
	if got := ja.Job; got == "" {
		t.Fatal("JobAbort must carry the job name")
	}
}
