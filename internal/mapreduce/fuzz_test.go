package mapreduce

import (
	"sort"
	"testing"
	"testing/quick"

	"cstf/internal/cluster"
	"cstf/internal/rng"
)

// Randomized equivalence: a word-count-shaped job under random inputs,
// cluster shapes, and combiner settings must match an in-memory reference,
// and byte accounting must conserve.
func TestRandomJobEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nodes := 1 + src.Intn(6)
		reducers := nodes * (1 + src.Intn(4))
		env := NewEnv(cluster.New(nodes, cluster.LaptopProfile()), reducers)

		n := src.Intn(800)
		keySpace := 1 + src.Intn(50)
		data := make([]int, n)
		want := map[uint32]int{}
		for i := range data {
			v := src.Intn(1000)
			data[i] = v
			want[uint32(v%keySpace)] += v
		}
		in := WriteFile(env, "in", data, func(int) int { return 8 })

		var comb func(int, int) int
		if src.Intn(2) == 0 {
			comb = func(a, b int) int { return a + b }
		}
		out := RunJob(env, "sum", in,
			func(v int, emit Emit[uint32, int]) { emit(uint32(v%keySpace), v) },
			comb,
			func(k uint32, vals []int, emit func(kv2)) {
				s := 0
				for _, v := range vals {
					s += v
				}
				emit(kv2{k, s})
			},
			func(uint32, int) int { return 16 },
			func(kv2) int { return 16 },
			JobOpts{},
		)

		got := map[uint32]int{}
		for _, r := range out.Collect() {
			got[r.k] = r.v
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		m := env.C.Metrics()
		if nodes == 1 && m.TotalRemoteBytes() != 0 {
			return false
		}
		return m.TotalSimTime() > 0 && m.Jobs == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

type kv2 struct {
	k uint32
	v int
}

// A chained pipeline of jobs (the BIGtensor pattern) must preserve the
// data across HDFS materializations.
func TestChainedJobsPreserveData(t *testing.T) {
	env := NewEnv(cluster.New(3, cluster.LaptopProfile()), 6)
	data := make([]int, 500)
	for i := range data {
		data[i] = i
	}
	in := WriteFile(env, "in", data, func(int) int { return 8 })

	// Job 1: square every value (identity reduce).
	squared := RunJob(env, "square", in,
		func(v int, emit Emit[uint32, int]) { emit(uint32(v), v*v) },
		nil,
		func(k uint32, vals []int, emit func(int)) { emit(vals[0]) },
		func(uint32, int) int { return 16 },
		func(int) int { return 8 },
		JobOpts{},
	)
	// Job 2: sum everything under one key.
	total := RunJob(env, "sum", squared,
		func(v int, emit Emit[uint8, int]) { emit(0, v) },
		func(a, b int) int { return a + b },
		func(k uint8, vals []int, emit func(int)) {
			s := 0
			for _, v := range vals {
				s += v
			}
			emit(s)
		},
		func(uint8, int) int { return 16 },
		func(int) int { return 8 },
		JobOpts{},
	)
	got := total.Collect()
	if len(got) != 1 {
		t.Fatalf("expected one output, got %v", got)
	}
	want := 0
	for _, v := range data {
		want += v * v
	}
	if got[0] != want {
		t.Fatalf("chained sum %d, want %d", got[0], want)
	}
	if env.C.Metrics().Jobs != 2 {
		t.Fatalf("jobs = %d", env.C.Metrics().Jobs)
	}
}

// Map-only jobs preserve record multiplicity.
func TestRunMapJobEquivalence(t *testing.T) {
	env := NewEnv(cluster.New(2, cluster.LaptopProfile()), 4)
	data := []int{5, 5, 7, 9}
	in := WriteFile(env, "in", data, func(int) int { return 8 })
	out := RunMapJob(env, "triple", in,
		func(v int) []int { return []int{v, v, v} },
		func(int) int { return 8 },
		0,
	)
	got := out.Collect()
	if len(got) != 12 {
		t.Fatalf("map-only fan-out: %d records", len(got))
	}
	sort.Ints(got)
	if got[0] != 5 || got[11] != 9 {
		t.Fatalf("contents: %v", got)
	}
}
