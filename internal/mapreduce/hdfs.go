// Package mapreduce implements the Hadoop-style engine the BIGtensor
// baseline runs on: MapReduce jobs with map, optional combine, and reduce
// phases, reading and writing a simulated HDFS. The contrast with
// internal/rdd is the whole point of the paper's comparison — every job
// pays a fixed startup cost, inputs are re-read from disk on every job
// (no in-memory caching across jobs), and outputs are materialized back to
// HDFS with replication.
package mapreduce

import (
	"fmt"
	"sync"

	"cstf/internal/cluster"
)

// Env binds the engine to a simulated cluster and fixes the task-parallelism
// discipline (number of reduce partitions, which is also the block count of
// files the engine writes).
type Env struct {
	C        *cluster.Cluster
	Reducers int

	mu       sync.Mutex
	counters map[string]int64

	resilient bool                    // HDFS re-replication enabled (EnableRecovery)
	files     map[string]reReplicator // tracked files by name
	abort     *JobAbort               // first job that observed a failure
}

// IncrCounter adds to a named job counter (Hadoop's Counters API): cheap
// user-defined telemetry that jobs accumulate and drivers read.
func (env *Env) IncrCounter(name string, delta int64) {
	env.mu.Lock()
	if env.counters == nil {
		env.counters = map[string]int64{}
	}
	env.counters[name] += delta
	env.mu.Unlock()
}

// Counter reads a named counter (0 if never incremented).
func (env *Env) Counter(name string) int64 {
	env.mu.Lock()
	defer env.mu.Unlock()
	return env.counters[name]
}

// NewEnv creates a MapReduce environment.
func NewEnv(c *cluster.Cluster, reducers int) *Env {
	if reducers <= 0 {
		panic("mapreduce: reducer count must be positive")
	}
	return &Env{C: c, Reducers: reducers}
}

// recFactor is the profile's per-record Hadoop cost multiplier relative to
// the Spark engine (Writable/Text handling, per-record reflection).
func (env *Env) recFactor() float64 {
	if f := env.C.Profile.HadoopRecordFactor; f > 0 {
		return f
	}
	return 1
}

// File is an HDFS file of T records split into blocks. Block b lives on node
// NodeOf(b); reads are disk-local (Hadoop schedules map tasks on the block's
// host), writes pay replication.
type File[T any] struct {
	env    *Env
	name   string
	blocks [][]T
	sizeOf func(T) int
}

// Name returns the file name.
func (f *File[T]) Name() string { return f.name }

// Blocks returns the number of blocks.
func (f *File[T]) Blocks() int { return len(f.blocks) }

// Records returns the total record count.
func (f *File[T]) Records() int {
	n := 0
	for _, b := range f.blocks {
		n += len(b)
	}
	return n
}

// Collect returns all records, concatenated in block order (test/driver use).
func (f *File[T]) Collect() []T {
	var out []T
	for _, b := range f.blocks {
		out = append(out, b...)
	}
	return out
}

func (f *File[T]) blockBytes(b int) float64 {
	var s float64
	for i := range f.blocks[b] {
		s += float64(f.sizeOf(f.blocks[b][i]))
	}
	return s
}

// WriteFile stores records as an HDFS file with env.Reducers blocks,
// charging the disk and network cost of replicated writes as one stage.
func WriteFile[T any](env *Env, name string, records []T, sizeOf func(T) int) *File[T] {
	blocks := make([][]T, env.Reducers)
	for i, r := range records {
		b := i % env.Reducers
		blocks[b] = append(blocks[b], r)
	}
	f := &File[T]{env: env, name: fmt.Sprintf("%s@%d", name, env.Reducers), blocks: blocks, sizeOf: sizeOf}
	chargeHDFSWrite(env, blocks, sizeOf)
	env.track(f.name, f)
	return f
}

// fileFromBlocks wraps already-placed blocks (reducer outputs) as a file and
// charges their replicated write.
func fileFromBlocks[T any](env *Env, name string, blocks [][]T, sizeOf func(T) int) *File[T] {
	f := &File[T]{env: env, name: name, blocks: blocks, sizeOf: sizeOf}
	chargeHDFSWrite(env, blocks, sizeOf)
	env.track(f.name, f)
	return f
}

func chargeHDFSWrite[T any](env *Env, blocks [][]T, sizeOf func(T) int) {
	rep := float64(env.C.Profile.HDFSReplication)
	tasks := make([]cluster.Task, len(blocks))
	for b := range blocks {
		var bytes float64
		for i := range blocks[b] {
			bytes += float64(sizeOf(blocks[b][i]))
		}
		tasks[b] = cluster.Task{
			Node:      env.C.NodeOf(b),
			Records:   env.recFactor() * float64(len(blocks[b])),
			DiskBytes: bytes * rep,
			// Pipeline the (rep-1) off-node replicas over the network. The
			// bytes are charged to the writer's NIC; they are not shuffle
			// reads, so they bypass the shuffle metrics by design — Spark's
			// and Hadoop's shuffle-read counters exclude HDFS replication.
		}
	}
	env.C.RunStage(false, tasks)
}
