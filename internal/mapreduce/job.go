package mapreduce

import (
	"cstf/internal/cluster"
	"cstf/internal/rng"
)

// JobOpts carries the per-record floating-point work of the user functions
// so the cost model can charge compute to the right phase.
type JobOpts struct {
	MapFlops    float64 // flops per mapper input record
	ReduceFlops float64 // flops per reducer input record
}

// Emit is the output channel of a mapper.
type Emit[K comparable, V any] func(K, V)

// kv is an intermediate key-value record.
type kv[K comparable, V any] struct {
	k K
	v V
}

// mappedBlock is the output of one map task: per-reducer buckets, their
// serialized sizes, and the node the task ran on (the block's host).
type mappedBlock[K comparable, V any] struct {
	node    int
	buckets [][]kv[K, V]
	bytes   []float64
}

// mapSource erases the input type of one mapper.
type mapSource[K comparable, V any] struct {
	run func(reducers int, combiner func(V, V) V, interSize func(K, V) int) ([]mappedBlock[K, V], []cluster.Task)
}

func mapSourceOf[I any, K comparable, V any](env *Env, input *File[I], mapper func(I, Emit[K, V]), mapFlops float64) mapSource[K, V] {
	return mapSource[K, V]{run: func(reducers int, combiner func(V, V) V, interSize func(K, V) int) ([]mappedBlock[K, V], []cluster.Task) {
		nb := input.Blocks()
		blocks := make([]mappedBlock[K, V], nb)
		tasks := make([]cluster.Task, nb)
		overhead := float64(env.C.Profile.RecordOverhead)
		env.C.Parallel(nb, func(b int) {
			bk := make([][]kv[K, V], reducers)
			emit := func(k K, v V) {
				r := int(rng.HashAny(k) % uint64(reducers))
				bk[r] = append(bk[r], kv[K, V]{k, v})
			}
			for i := range input.blocks[b] {
				mapper(input.blocks[b][i], emit)
			}
			if combiner != nil {
				for r := range bk {
					bk[r] = combineBucket(bk[r], combiner)
				}
			}
			bytes := make([]float64, reducers)
			for r := range bk {
				for i := range bk[r] {
					bytes[r] += float64(interSize(bk[r][i].k, bk[r][i].v)) + overhead
				}
			}
			node := env.C.NodeOf(b)
			blocks[b] = mappedBlock[K, V]{node: node, buckets: bk, bytes: bytes}
			tasks[b] = cluster.Task{
				Node:      node,
				Records:   env.recFactor() * float64(len(input.blocks[b])),
				DiskBytes: input.blockBytes(b),
				Flops:     mapFlops * float64(len(input.blocks[b])),
			}
		})
		return blocks, tasks
	}}
}

func combineBucket[K comparable, V any](recs []kv[K, V], combiner func(V, V) V) []kv[K, V] {
	m := make(map[K]V, len(recs))
	order := make([]K, 0, len(recs))
	for _, r := range recs {
		if cur, ok := m[r.k]; ok {
			m[r.k] = combiner(cur, r.v)
		} else {
			m[r.k] = r.v
			order = append(order, r.k)
		}
	}
	out := make([]kv[K, V], 0, len(m))
	for _, k := range order {
		out = append(out, kv[K, V]{k, m[k]})
	}
	return out
}

// RunJob executes a classic MapReduce job over one input file:
//
//	map:     block-local, reads the block from HDFS disk
//	combine: optional map-side merge of values sharing a key
//	shuffle: hash-partition intermediates to env.Reducers reduce tasks
//	reduce:  (K, []V) -> output records, written back to HDFS (replicated)
//
// Every job pays the cluster profile's fixed startup cost — the Hadoop
// behaviour that dominates BIGtensor's runtime in the paper's Figure 2.
// Reducers must not rely on the order of values within a group.
func RunJob[I any, K comparable, V, O any](
	env *Env, name string,
	input *File[I],
	mapper func(I, Emit[K, V]),
	combiner func(V, V) V, // nil disables map-side combine
	reducer func(K, []V, func(O)),
	interSize func(K, V) int,
	outSize func(O) int,
	opts JobOpts,
) *File[O] {
	return runJob(env, name,
		[]mapSource[K, V]{mapSourceOf(env, input, mapper, opts.MapFlops)},
		combiner, reducer, interSize, outSize, opts)
}

// RunJob2 executes a two-input (reduce-side join style) job: each input has
// its own mapper emitting into the same intermediate key-value space. This
// is how GigaTensor joins the matricized tensor with a factor matrix.
func RunJob2[I1, I2 any, K comparable, V, O any](
	env *Env, name string,
	input1 *File[I1], mapper1 func(I1, Emit[K, V]),
	input2 *File[I2], mapper2 func(I2, Emit[K, V]),
	combiner func(V, V) V,
	reducer func(K, []V, func(O)),
	interSize func(K, V) int,
	outSize func(O) int,
	opts JobOpts,
) *File[O] {
	return runJob(env, name,
		[]mapSource[K, V]{
			mapSourceOf(env, input1, mapper1, opts.MapFlops),
			mapSourceOf(env, input2, mapper2, opts.MapFlops),
		},
		combiner, reducer, interSize, outSize, opts)
}

// RunMapJob executes a map-only Hadoop job: each block is read from HDFS,
// transformed record-wise, and the results written straight back to HDFS
// with no shuffle or reduce phase (but still a full job startup).
func RunMapJob[I, O any](
	env *Env, name string,
	input *File[I],
	mapper func(I) []O,
	outSize func(O) int,
	mapFlops float64,
) *File[O] {
	c := env.C
	c.ChargeJobStartup()
	nb := input.Blocks()
	outBlocks := make([][]O, nb)
	tasks := make([]cluster.Task, nb)
	c.Parallel(nb, func(b int) {
		var out []O
		for i := range input.blocks[b] {
			out = append(out, mapper(input.blocks[b][i])...)
		}
		outBlocks[b] = out
		tasks[b] = cluster.Task{
			Node:      c.NodeOf(b),
			Records:   env.recFactor() * float64(len(input.blocks[b])),
			DiskBytes: input.blockBytes(b),
			Flops:     mapFlops * float64(len(input.blocks[b])),
		}
	})
	c.RunStage(false, tasks)
	defer env.noteAbort(name)
	// Map-only outputs land in the same block layout as the input; pad or
	// trim to the environment's block count for downstream jobs.
	if nb != env.Reducers {
		flat := make([]O, 0)
		for _, blk := range outBlocks {
			flat = append(flat, blk...)
		}
		return WriteFile(env, name+".out", flat, outSize)
	}
	return fileFromBlocks(env, name+".out", outBlocks, outSize)
}

func runJob[K comparable, V, O any](
	env *Env, name string,
	sources []mapSource[K, V],
	combiner func(V, V) V,
	reducer func(K, []V, func(O)),
	interSize func(K, V) int,
	outSize func(O) int,
	opts JobOpts,
) *File[O] {
	c := env.C
	R := env.Reducers
	c.ChargeJobStartup()

	// ---- Map phase: all sources' map tasks form one wave. ----
	var blocks []mappedBlock[K, V]
	var mapTasks []cluster.Task
	for _, src := range sources {
		bs, ts := src.run(R, combiner, interSize)
		blocks = append(blocks, bs...)
		mapTasks = append(mapTasks, ts...)
	}
	c.RunStage(false, mapTasks)

	// ---- Shuffle + reduce phase (wide). ----
	reduceIn := make([][]kv[K, V], R)
	reduceTasks := make([]cluster.Task, R)
	c.Parallel(R, func(r int) {
		node := c.NodeOf(r)
		var recs []kv[K, V]
		var remote, local float64
		for b := range blocks {
			recs = append(recs, blocks[b].buckets[r]...)
			if blocks[b].node == node {
				local += blocks[b].bytes[r]
			} else {
				remote += blocks[b].bytes[r]
			}
		}
		reduceIn[r] = recs
		reduceTasks[r] = cluster.Task{
			Node:        node,
			Records:     env.recFactor() * float64(len(recs)),
			RemoteBytes: remote,
			LocalBytes:  local,
			Flops:       opts.ReduceFlops * float64(len(recs)),
		}
	})

	outBlocks := make([][]O, R)
	c.Parallel(R, func(r int) {
		groups := make(map[K][]V, len(reduceIn[r]))
		order := make([]K, 0, len(reduceIn[r]))
		for _, rec := range reduceIn[r] {
			if _, ok := groups[rec.k]; !ok {
				order = append(order, rec.k)
			}
			groups[rec.k] = append(groups[rec.k], rec.v)
		}
		var out []O
		for _, k := range order {
			reducer(k, groups[k], func(o O) { out = append(out, o) })
		}
		outBlocks[r] = out
	})
	c.RunStage(true, reduceTasks)
	defer env.noteAbort(name)

	return fileFromBlocks(env, name+".out", outBlocks, outSize)
}
