package mapreduce

import (
	"sort"
	"testing"

	"cstf/internal/cluster"
)

func testEnv(nodes, reducers int) *Env {
	return NewEnv(cluster.New(nodes, cluster.LaptopProfile()), reducers)
}

func intSize(int) int { return 8 }

func TestNewEnvValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero reducers")
		}
	}()
	NewEnv(cluster.New(1, cluster.LaptopProfile()), 0)
}

func TestWriteFileBlocksAndCollect(t *testing.T) {
	env := testEnv(2, 4)
	data := make([]int, 103)
	for i := range data {
		data[i] = i
	}
	f := WriteFile(env, "in", data, intSize)
	if f.Blocks() != 4 || f.Records() != 103 {
		t.Fatalf("blocks=%d records=%d", f.Blocks(), f.Records())
	}
	got := f.Collect()
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing record %d", i)
		}
	}
	// Replicated write charges disk bytes = records * size * replication.
	m := env.C.Metrics()
	want := float64(103 * 8 * env.C.Profile.HDFSReplication)
	if got := m.DiskBytes["Other"]; got != want {
		t.Fatalf("disk bytes %v, want %v", got, want)
	}
}

func TestWordCountStyleJob(t *testing.T) {
	env := testEnv(3, 6)
	words := []string{"a", "b", "a", "c", "a", "b"}
	in := WriteFile(env, "words", words, func(string) int { return 8 })
	out := RunJob(env, "wc", in,
		func(w string, emit Emit[string, int]) { emit(w, 1) },
		func(a, b int) int { return a + b },
		func(k string, vals []int, out func(string)) {
			n := 0
			for _, v := range vals {
				n += v
			}
			out(k + ":" + string(rune('0'+n)))
		},
		func(string, int) int { return 16 },
		func(string) int { return 16 },
		JobOpts{},
	)
	got := out.Collect()
	sort.Strings(got)
	want := []string{"a:3", "b:2", "c:1"}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestJobChargesStartupAndDisk(t *testing.T) {
	env := testEnv(2, 4)
	in := WriteFile(env, "in", []int{1, 2, 3, 4, 5}, intSize)
	env.C.ResetMetrics()
	RunJob(env, "j", in,
		func(x int, emit Emit[uint32, int]) { emit(uint32(x%2), x) },
		nil,
		func(k uint32, vals []int, out func(int)) {
			s := 0
			for _, v := range vals {
				s += v
			}
			out(s)
		},
		func(uint32, int) int { return 16 }, intSize, JobOpts{})
	m := env.C.Metrics()
	if m.Jobs != 1 {
		t.Fatalf("jobs = %d", m.Jobs)
	}
	if env.C.SimTime() < env.C.Profile.JobStartup {
		t.Fatal("job must pay startup cost")
	}
	// Map phase re-reads the input from disk: 5 records * 8 bytes, plus the
	// replicated write of the output.
	if m.DiskBytes["Other"] < 40 {
		t.Fatalf("disk bytes %v, map phase must read HDFS", m.DiskBytes)
	}
	if m.TotalShuffles() != 1 {
		t.Fatalf("shuffles = %d, want 1", m.TotalShuffles())
	}
}

func TestRunJob2JoinsTwoInputs(t *testing.T) {
	env := testEnv(2, 4)
	type tagged struct {
		isRight bool
		val     int
	}
	left := WriteFile(env, "l", []int{10, 20, 30}, intSize) // values 10k
	right := WriteFile(env, "r", []int{1, 2, 3}, intSize)   // join keys via %10
	out := RunJob2(env, "join", left,                       //
		func(x int, emit Emit[uint32, tagged]) { emit(uint32(x/10), tagged{false, x}) },
		right,
		func(x int, emit Emit[uint32, tagged]) { emit(uint32(x), tagged{true, x * 100}) },
		nil,
		func(k uint32, vals []tagged, out func(int)) {
			var l, r []int
			for _, v := range vals {
				if v.isRight {
					r = append(r, v.val)
				} else {
					l = append(l, v.val)
				}
			}
			for _, a := range l {
				for _, b := range r {
					out(a + b)
				}
			}
		},
		func(uint32, tagged) int { return 16 }, intSize, JobOpts{})
	got := out.Collect()
	sort.Ints(got)
	want := []int{110, 220, 330}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestShuffleByteClassificationSingleNode(t *testing.T) {
	env := testEnv(1, 4)
	in := WriteFile(env, "in", []int{1, 2, 3, 4, 5, 6, 7, 8}, intSize)
	env.C.ResetMetrics()
	RunJob(env, "j", in,
		func(x int, emit Emit[uint32, int]) { emit(uint32(x), x) },
		nil,
		func(k uint32, vals []int, out func(int)) { out(vals[0]) },
		func(uint32, int) int { return 16 }, intSize, JobOpts{})
	m := env.C.Metrics()
	if m.TotalRemoteBytes() != 0 {
		t.Fatalf("single-node job read %v remote bytes", m.TotalRemoteBytes())
	}
	perRec := float64(16 + env.C.Profile.RecordOverhead)
	if m.TotalLocalBytes() != 8*perRec {
		t.Fatalf("local bytes %v, want %v", m.TotalLocalBytes(), 8*perRec)
	}
}

func TestCombinerReducesShuffleVolume(t *testing.T) {
	run := func(withCombiner bool) float64 {
		env := testEnv(4, 4)
		data := make([]int, 400)
		in := WriteFile(env, "in", data, intSize)
		env.C.ResetMetrics()
		var comb func(int, int) int
		if withCombiner {
			comb = func(a, b int) int { return a + b }
		}
		RunJob(env, "j", in,
			func(x int, emit Emit[uint32, int]) { emit(0, 1) }, // all same key
			comb,
			func(k uint32, vals []int, out func(int)) { out(len(vals)) },
			func(uint32, int) int { return 16 }, intSize, JobOpts{})
		m := env.C.Metrics()
		return m.TotalRemoteBytes() + m.TotalLocalBytes()
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("combiner must shrink shuffle: %v >= %v", with, without)
	}
}

func TestJobFlopsAccounting(t *testing.T) {
	env := testEnv(2, 2)
	in := WriteFile(env, "in", []int{1, 2, 3, 4}, intSize)
	env.C.ResetMetrics()
	RunJob(env, "j", in,
		func(x int, emit Emit[uint32, int]) { emit(uint32(x), x) },
		nil,
		func(k uint32, vals []int, out func(int)) { out(vals[0]) },
		func(uint32, int) int { return 16 }, intSize,
		JobOpts{MapFlops: 10, ReduceFlops: 5})
	if got := env.C.Metrics().TotalFlops(); got != 4*10+4*5 {
		t.Fatalf("flops = %v, want 60", got)
	}
}

func TestCounters(t *testing.T) {
	env := testEnv(2, 2)
	if env.Counter("missing") != 0 {
		t.Fatal("unset counter must read 0")
	}
	env.IncrCounter("x", 3)
	env.IncrCounter("x", 4)
	env.IncrCounter("y", 1)
	if env.Counter("x") != 7 || env.Counter("y") != 1 {
		t.Fatalf("counters: x=%d y=%d", env.Counter("x"), env.Counter("y"))
	}
}
