package serve

import (
	"testing"

	"cstf/internal/la"
	"cstf/internal/rng"
)

// tieModel builds a model whose factor rows repeat in cycles, so many rows
// share bitwise-equal TopK scores — the adversarial input for tie-break
// determinism: any scan-order or merge-order dependence shows up as a
// different ranking.
func tieModel(t *testing.T, rank, rows, cycle int) *Model {
	t.Helper()
	g := rng.New(41)
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 0.5 + g.Float64()
	}
	base := la.NewDense(cycle, rank)
	for i := range base.Data {
		base.Data[i] = g.Float64()
	}
	f := la.NewDense(rows, rank)
	for i := 0; i < rows; i++ {
		copy(f.Data[i*rank:(i+1)*rank], base.Data[(i%cycle)*rank:(i%cycle+1)*rank])
	}
	other := la.NewDense(50, rank)
	for i := range other.Data {
		other.Data[i] = g.Float64()
	}
	m, err := NewModel(lambda, []*la.Dense{f, other}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Sharding a TopK across disjoint row ranges and merging the partials must
// be bitwise-identical to the single full scan — for any shard count, any
// k, and under heavy score ties. This is the invariant the fleet router's
// scatter-gather rests on.
func TestShardedTopKMergeBitwiseIdentical(t *testing.T) {
	m := tieModel(t, 3, 4000, 37) // ~108 rows per distinct score
	g := rng.New(7)
	for trial := 0; trial < 60; trial++ {
		row := g.Intn(50)
		k := 1 + g.Intn(60)
		shards := 1 + g.Intn(7)
		want, err := m.TopKGiven(0, 1, row, k)
		if err != nil {
			t.Fatal(err)
		}
		var partials [][]Scored
		rows := m.Dims[0]
		for s := 0; s < shards; s++ {
			lo, hi := s*rows/shards, (s+1)*rows/shards
			p, err := m.TopKGivenRange(0, 1, row, k, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, p)
		}
		got := MergeTopK(k, partials...)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (row %d k %d shards %d): result %d = %+v want %+v",
					trial, row, k, shards, i, got[i], want[i])
			}
		}
	}
}

// The same invariant for Similar, whose scores are cosine-normalized and
// exclude the query row.
func TestShardedSimilarMergeBitwiseIdentical(t *testing.T) {
	m := randModel(t, 13, 4, 3000, 40)
	g := rng.New(29)
	for trial := 0; trial < 40; trial++ {
		row := g.Intn(3000)
		k := 1 + g.Intn(30)
		shards := 2 + g.Intn(4)
		want, err := m.Similar(0, row, k)
		if err != nil {
			t.Fatal(err)
		}
		var partials [][]Scored
		rows := m.Dims[0]
		for s := 0; s < shards; s++ {
			p, err := m.SimilarRange(0, row, k, s*rows/shards, (s+1)*rows/shards)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, p)
		}
		got := MergeTopK(k, partials...)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: result %d = %+v want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// Ties must be ordered by ascending row index in every returned ranking.
func TestTopKTieBreakAscendingIndex(t *testing.T) {
	m := tieModel(t, 2, 600, 5)
	res, err := m.TopKGiven(0, 1, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i-1].Score < res[i].Score {
			t.Fatalf("scores not descending at %d: %+v then %+v", i, res[i-1], res[i])
		}
		if res[i-1].Score == res[i].Score && res[i-1].Index >= res[i].Index {
			t.Fatalf("tie not broken by ascending index at %d: %+v then %+v", i, res[i-1], res[i])
		}
	}
}

// Range validation and the empty range.
func TestRangeValidation(t *testing.T) {
	m := randModel(t, 3, 2, 100, 20)
	if _, err := m.TopKGivenRange(0, 1, 2, 5, -1, 50); err == nil {
		t.Fatal("negative lo accepted")
	}
	if _, err := m.TopKGivenRange(0, 1, 2, 5, 0, 101); err == nil {
		t.Fatal("hi beyond mode accepted")
	}
	if _, err := m.TopKGivenRange(0, 1, 2, 5, 60, 40); err == nil {
		t.Fatal("inverted range accepted")
	}
	res, err := m.TopKGivenRange(0, 1, 2, 5, 30, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty range returned %d results", len(res))
	}
}
