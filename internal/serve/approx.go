package serve

import (
	"sort"

	"cstf/internal/la"
	"cstf/internal/par"
)

// Approximate TopK: ranked queries stop scanning full modes.
//
// A TopK score is a dot product dot(A_mode(i,:), q), bounded by
// Cauchy–Schwarz at ||A_mode(i,:)|| * ||q||. Visiting candidate rows in
// descending row-norm order therefore yields a monotonically shrinking
// upper bound on every row not yet visited: as soon as the bound for the
// next row falls strictly below the k-th best score found so far, no
// remaining row can enter the result and the scan stops — still exact.
// Recommender factors have strongly skewed row norms (popularity), so the
// cutoff usually fires after a small prefix.
//
// On top of the exact cutoff sits the approximation: a candidate budget
// caps the scanned prefix outright. Rows beyond the budget are dropped even
// though the bound has not cleared them, which is what makes the result
// approximate — and what bounds worst-case latency on flat-norm models
// where the Cauchy–Schwarz cutoff never fires. The property tests in
// approx_test.go pin recall@K >= 0.95 under the default budget.
//
// The fallback path is the existing blocked partial-argsort scan
// (topKBatch): modes with no built index — and range-restricted shard
// queries, whose scans are already 1/N of the mode — use it unchanged.

// approxIndex is one mode's norm-ordered candidate list.
type approxIndex struct {
	// order holds the mode's row indices sorted by descending row norm,
	// ties by ascending row index (deterministic across builds).
	order []int32
	// norms[j] is the row norm of order[j] — the scan reads them in visit
	// order, so the bound check streams sequentially instead of gathering.
	norms []float64
}

// buildApproxIndex sorts one mode's rows by descending norm. The sort is
// the build cost (O(I log I) once per reload) that each query's pruned
// scan amortizes.
func buildApproxIndex(rowNorms []float64) *approxIndex {
	n := len(rowNorms)
	ord := make([]int32, n)
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.SliceStable(ord, func(a, b int) bool {
		na, nb := rowNorms[ord[a]], rowNorms[ord[b]]
		if na != nb {
			return na > nb
		}
		return ord[a] < ord[b]
	})
	norms := make([]float64, n)
	for j, ri := range ord {
		norms[j] = rowNorms[ri]
	}
	return &approxIndex{order: ord, norms: norms}
}

// BuildApprox precomputes the norm-ordered candidate list for every mode.
// It must be called before the model is published to a server (Models are
// immutable once serving); Config.Approx does this on load, swap, and
// reload. workers bounds the per-mode build fan-out; <= 0 selects all
// cores.
func (m *Model) BuildApprox(workers int) {
	idx := make([]*approxIndex, len(m.factors))
	par.Run(workers, len(m.factors), func(n int) {
		idx[n] = buildApproxIndex(m.rowNorms[n])
	})
	m.approx = idx
}

// HasApprox reports whether BuildApprox has run on this model.
func (m *Model) HasApprox() bool { return m.approx != nil }

// DefaultApproxCandidates is the candidate budget used when a caller
// passes budget <= 0: enough to keep measured recall@K comfortably above
// 0.95 on trained factors, a small fraction of a large mode's rows.
const DefaultApproxCandidates = 2048

// TopKApprox is TopK answered from the norm-pruned candidate list. budget
// caps scanned candidates (<= 0 selects DefaultApproxCandidates); a budget
// >= the mode's rows degrades gracefully to an exact scan in norm order.
// Without a built index it falls back to the exact blocked scan.
func (m *Model) TopKApprox(mode, row, k, budget int) ([]Scored, error) {
	if err := m.checkMode(mode); err != nil {
		return nil, err
	}
	return m.TopKGivenApprox(mode, m.defaultGiven(mode), row, k, budget)
}

// TopKGivenApprox is TopKApprox with an explicit conditioning mode.
func (m *Model) TopKGivenApprox(mode, given, row, k, budget int) ([]Scored, error) {
	return m.TopKGivenApproxExclude(mode, given, row, k, budget, nil)
}

// TopKGivenApproxExclude is TopKGivenApprox with an exclude set. Excluded
// rows are skipped before scoring and do not consume the candidate budget,
// so a query whose exclude set covers the high-norm prefix still scores a
// full budget's worth of real candidates — with a large enough budget the
// result is identical to the exact scan with the same exclude set.
func (m *Model) TopKGivenApproxExclude(mode, given, row, k, budget int, exclude []int) ([]Scored, error) {
	if err := m.checkMode(mode); err != nil {
		return nil, err
	}
	if given == mode {
		return nil, errConditioningEqualsQueried(given)
	}
	if err := m.checkRow(given, row); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, errNonPositiveK(k)
	}
	ex := normalizeExclude(exclude)
	q := m.queryVec(mode, given, row)
	if m.approx == nil {
		return topKOne(m.factors[mode], q, k, nil, -1, ex, 0, m.Dims[mode]), nil
	}
	res, _ := approxTopK(m.factors[mode], q, k, ex, m.approx[mode], budget)
	return res, nil
}

// approxTopK scans candidates in descending-norm order with the
// Cauchy–Schwarz cutoff and the candidate budget. ex, when non-nil, is a
// normalized exclude set: its rows are skipped without being scored and
// without consuming the budget. approxTopK returns the ranking and the
// number of rows actually scored (the pruning telemetry surfaced in
// Stats).
func approxTopK(f *la.Dense, q []float64, k int, ex []int, idx *approxIndex, budget int) ([]Scored, int) {
	if budget <= 0 {
		budget = DefaultApproxCandidates
	}
	qn := la.VecNorm(q)
	var h topKHeap
	c := f.Cols
	scanned := 0
	for j, ri := range idx.order {
		if len(h) >= k {
			if scanned >= budget {
				break // approximation: budget exhausted
			}
			if idx.norms[j]*qn < h[0].Score {
				break // exact: no remaining row can beat the k-th best
			}
		}
		i := int(ri)
		if excluded(ex, i) {
			continue
		}
		s := la.VecDot(f.Data[i*c:(i+1)*c], q)
		h.pushK(k, Scored{Index: i, Score: s})
		scanned++
	}
	return h.sorted(), scanned
}
