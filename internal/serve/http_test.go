package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testHTTP(t *testing.T) (*httptest.Server, *Server, *Model) {
	t.Helper()
	s, m := testServer(t, Config{})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(ts.Close)
	return ts, s, m
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPPredict(t *testing.T) {
	ts, _, m := testHTTP(t)
	out := getJSON(t, ts.URL+"/predict?index=1,2,3", http.StatusOK)
	want, _ := m.Predict(1, 2, 3)
	if got := out["value"].(float64); got != want {
		t.Fatalf("value %v want %v", got, want)
	}

	// POST JSON body form.
	resp, err := http.Post(ts.URL+"/predict", "application/json",
		strings.NewReader(`{"index":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out2 map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out2); err != nil {
		t.Fatal(err)
	}
	if out2["value"].(float64) != want {
		t.Fatalf("POST value %v want %v", out2["value"], want)
	}
}

func TestHTTPTopKAndSimilar(t *testing.T) {
	ts, _, m := testHTTP(t)
	out := getJSON(t, fmt.Sprintf("%s/topk?mode=1&row=3&k=4", ts.URL), http.StatusOK)
	results := out["results"].([]any)
	if len(results) != 4 {
		t.Fatalf("topk returned %d results, want 4", len(results))
	}
	want, _ := m.TopK(1, 3, 4)
	first := results[0].(map[string]any)
	if int(first["index"].(float64)) != want[0].Index {
		t.Fatalf("topk first index %v want %d", first["index"], want[0].Index)
	}
	if _, ok := out["slice_norm"]; !ok {
		t.Fatal("topk response missing slice_norm")
	}

	out = getJSON(t, fmt.Sprintf("%s/similar?mode=0&row=9&k=3", ts.URL), http.StatusOK)
	if len(out["results"].([]any)) != 3 {
		t.Fatal("similar returned wrong result count")
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	ts, s, _ := testHTTP(t)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" || out["rank"].(float64) != 3 {
		t.Fatalf("healthz: %v", out)
	}
	// Issue a query, then confirm /statsz reflects it.
	getJSON(t, ts.URL+"/topk?mode=0&row=1&k=2", http.StatusOK)
	out = getJSON(t, ts.URL+"/statsz", http.StatusOK)
	if out["topks"].(float64) < 1 {
		t.Fatalf("statsz did not count the topk: %v", out)
	}
	if uint64(out["model_version"].(float64)) != s.Model().Version {
		t.Fatal("statsz model_version mismatch")
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, _, _ := testHTTP(t)
	getJSON(t, ts.URL+"/predict", http.StatusBadRequest)                   // no index
	getJSON(t, ts.URL+"/predict?index=1,nope", http.StatusBadRequest)      // unparsable
	getJSON(t, ts.URL+"/predict?index=999999,0,0", http.StatusBadRequest)  // out of range
	getJSON(t, ts.URL+"/topk?mode=0&k=5", http.StatusBadRequest)           // row missing
	getJSON(t, ts.URL+"/topk?mode=77&row=0&k=5", http.StatusBadRequest)    // bad mode
	getJSON(t, ts.URL+"/similar?mode=0&row=-2&k=5", http.StatusBadRequest) // bad row
}

// ?exclude= on GET and "exclude" in a POST body both reach the scan: the
// listed candidate rows disappear from the ranking, and a malformed list
// is a 400.
func TestHTTPTopKExclude(t *testing.T) {
	ts, _, m := testHTTP(t)
	base, err := m.TopK(1, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	drop := base[0].Index
	url := fmt.Sprintf("%s/topk?mode=1&row=3&k=5&exclude=%d", ts.URL, drop)
	out := getJSON(t, url, http.StatusOK)
	for _, r := range out["results"].([]any) {
		if int(r.(map[string]any)["index"].(float64)) == drop {
			t.Fatalf("excluded row %d served on GET", drop)
		}
	}

	body := fmt.Sprintf(`{"mode":1,"row":3,"k":5,"exclude":[%d]}`, drop)
	resp, err := http.Post(ts.URL+"/topk", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var post map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&post); err != nil {
		t.Fatal(err)
	}
	for _, r := range post["results"].([]any) {
		if int(r.(map[string]any)["index"].(float64)) == drop {
			t.Fatalf("excluded row %d served on POST", drop)
		}
	}

	getJSON(t, ts.URL+"/topk?mode=1&row=3&k=5&exclude=1,x", http.StatusBadRequest)
}
