package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// HTTP JSON surface. Every endpoint answers GET with query parameters and
// POST with a JSON body (the body wins when both are present):
//
//	GET  /predict?index=3,1,4            {"value": ..., "model_version": ...}
//	GET  /topk?mode=1&row=7&k=10[&given=0][&lo=0&hi=5000]
//	GET  /similar?mode=0&row=7&k=10[&lo=0&hi=5000]
//	GET  /healthz                        liveness + model identity + staleness
//	                                     (version, age_seconds since last reload)
//	GET  /statsz                         serving counters (Stats)
//	POST /reloadz                        reload the configured model path now
//	                                     (404 unless HandlerConfig.ReloadPath)
//
// lo/hi restrict a ranked query to candidate rows [lo, hi) of the queried
// mode — the shard form a fleet router scatter-gathers. The same parse and
// error mapping back both the single-node API and the router (the router
// re-serves this surface one layer up), so the two cannot drift.
//
// Error mapping: bad requests → 400, shed load → 429 with Retry-After,
// deadline exceeded → 504, closed or draining server → 503.

// HandlerConfig tunes the optional admin endpoints of the HTTP surface.
type HandlerConfig struct {
	// ReloadPath, when set, enables POST /reloadz: the server reloads
	// this checkpoint path on demand — how a fleet router triggers each
	// replica's step of a rolling reload without waiting for the watcher.
	ReloadPath string
}

// NewHandler returns the HTTP API for s with no admin endpoints.
func NewHandler(s *Server) http.Handler { return NewHandlerWith(s, HandlerConfig{}) }

// NewHandlerWith returns the HTTP API for s with the configured admin
// endpoints enabled.
func NewHandlerWith(s *Server, hc HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) { handlePredict(s, w, r) })
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) { handleRanked(s, w, r, kindTopK) })
	mux.HandleFunc("/similar", func(w http.ResponseWriter, r *http.Request) { handleRanked(s, w, r, kindSimilar) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { handleHealth(s, w, r) })
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) { WriteJSON(w, http.StatusOK, s.Stats()) })
	if hc.ReloadPath != "" {
		mux.HandleFunc("/reloadz", func(w http.ResponseWriter, r *http.Request) { handleReload(s, hc.ReloadPath, w, r) })
	}
	return mux
}

// Query is the merged request shape of every query endpoint, shared with
// the fleet router's HTTP surface.
type Query struct {
	Index []int `json:"index"`
	Mode  *int  `json:"mode"`
	Given *int  `json:"given"`
	Row   *int  `json:"row"`
	K     *int  `json:"k"`
	Lo    *int  `json:"lo"`
	Hi    *int  `json:"hi"`
	// Exclude lists candidate rows of the queried mode to drop from a
	// TopK ranking (?exclude=3,17,42) — the "already seen" filter. Order
	// and duplicates are irrelevant; the server canonicalizes the set.
	Exclude []int `json:"exclude,omitempty"`
}

// ParseQuery decodes a query endpoint request: JSON body if present,
// otherwise URL query parameters.
func ParseQuery(r *http.Request) (*Query, error) {
	b := &Query{}
	if r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
		if err := dec.Decode(b); err != nil {
			return nil, fmt.Errorf("invalid JSON body: %w", err)
		}
		return b, nil
	}
	q := r.URL.Query()
	for name, dst := range map[string]*[]int{"index": &b.Index, "exclude": &b.Exclude} {
		if v := q.Get(name); v != "" {
			for _, part := range strings.Split(v, ",") {
				i, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("invalid %s %q", name, part)
				}
				*dst = append(*dst, i)
			}
		}
	}
	for name, dst := range map[string]**int{"mode": &b.Mode, "given": &b.Given, "row": &b.Row, "k": &b.K, "lo": &b.Lo, "hi": &b.Hi} {
		if v := q.Get(name); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("invalid %s %q", name, v)
			}
			*dst = &i
		}
	}
	return b, nil
}

// Range returns the candidate row range of a ranked query: [lo, hi) when
// both bounds are present, (0, -1) — the full mode — otherwise.
func (b *Query) Range() (lo, hi int) {
	if b.Lo != nil && b.Hi != nil {
		return *b.Lo, *b.Hi
	}
	return 0, -1
}

func handlePredict(s *Server, w http.ResponseWriter, r *http.Request) {
	b, err := ParseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(b.Index) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("predict requires index=i,j,..."))
		return
	}
	v, err := s.Predict(r.Context(), b.Index...)
	if err != nil {
		WriteQueryError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"value":         v,
		"index":         b.Index,
		"model_version": s.Model().Version,
	})
}

func handleRanked(s *Server, w http.ResponseWriter, r *http.Request, kind reqKind) {
	b, err := ParseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if b.Mode == nil || b.Row == nil {
		writeError(w, http.StatusBadRequest, errors.New("mode and row are required"))
		return
	}
	k := 10
	if b.K != nil {
		k = *b.K
	}
	lo, hi := b.Range()
	var scored []Scored
	switch kind {
	case kindTopK:
		given := -1
		if b.Given != nil {
			given = *b.Given
		}
		scored, err = s.TopKRangeExclude(r.Context(), *b.Mode, given, *b.Row, k, lo, hi, b.Exclude)
	case kindSimilar:
		scored, err = s.SimilarRange(r.Context(), *b.Mode, *b.Row, k, lo, hi)
	}
	if err != nil {
		WriteQueryError(w, err)
		return
	}
	resp := map[string]any{
		"mode":          *b.Mode,
		"row":           *b.Row,
		"k":             k,
		"results":       scored,
		"model_version": s.Model().Version,
	}
	if kind == kindTopK {
		// The predicted-slice mass of the conditioning row, from the
		// precomputed cross-mode gram: lets clients judge score scale.
		if sn, err := sliceNormForResponse(s, b); err == nil {
			resp["slice_norm"] = sn
		}
	}
	WriteJSON(w, http.StatusOK, resp)
}

func sliceNormForResponse(s *Server, b *Query) (float64, error) {
	m := s.Model()
	given := -1
	if b.Given != nil {
		given = *b.Given
	}
	if given == -1 {
		if err := m.checkMode(*b.Mode); err != nil {
			return 0, err
		}
		given = m.defaultGiven(*b.Mode)
	}
	return m.SliceNorm(given, *b.Row)
}

func handleHealth(s *Server, w http.ResponseWriter, _ *http.Request) {
	m := s.Model()
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"version":       m.Version,
		"model_version": m.Version, // kept for pre-streaming clients
		"model_iter":    m.Iter,
		"age_seconds":   s.ModelAge().Seconds(),
		"rank":          m.Rank,
		"dims":          m.Dims,
		"memory_bytes":  m.MemoryBytes(),
		"draining":      s.Draining(),
		"inflight":      s.inflight.Load(),
		"approx":        m.HasApprox() && s.cfg.Approx,
		// Non-zero when the live checkpoint was corrupt and an older
		// retained version is serving in its place.
		"reload_fallbacks": s.reloadFallbacks.Load(),
	})
}

// handleReload answers POST /reloadz: reload the configured checkpoint
// path immediately and report the serving version. A failed reload keeps
// the old model serving and returns 500 with the error.
func handleReload(s *Server, path string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("reloadz requires POST"))
		return
	}
	if err := s.Reload(path); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": s.Model().Version,
	})
}

// WriteQueryError maps a query error to its HTTP status (shared by the
// single-node API and the fleet router so clients see one error surface).
func WriteQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, err) // client went away (nginx convention)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	WriteJSON(w, code, map[string]string{"error": err.Error()})
}

// WriteJSON writes v as indented JSON with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}
