package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// HTTP JSON surface. Every endpoint answers GET with query parameters and
// POST with a JSON body (the body wins when both are present):
//
//	GET  /predict?index=3,1,4            {"value": ..., "model_version": ...}
//	GET  /topk?mode=1&row=7&k=10[&given=0]
//	GET  /similar?mode=0&row=7&k=10
//	GET  /healthz                        liveness + model identity + staleness
//	                                     (version, age_seconds since last reload)
//	GET  /statsz                         serving counters (Stats)
//
// Error mapping: bad requests → 400, shed load → 429 with Retry-After,
// deadline exceeded → 504, closed server → 503.

// NewHandler returns the HTTP API for s.
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) { handlePredict(s, w, r) })
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) { handleRanked(s, w, r, kindTopK) })
	mux.HandleFunc("/similar", func(w http.ResponseWriter, r *http.Request) { handleRanked(s, w, r, kindSimilar) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { handleHealth(s, w, r) })
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) { writeJSON(w, http.StatusOK, s.Stats()) })
	return mux
}

// queryBody is the merged request shape of every endpoint.
type queryBody struct {
	Index []int `json:"index"`
	Mode  *int  `json:"mode"`
	Given *int  `json:"given"`
	Row   *int  `json:"row"`
	K     *int  `json:"k"`
}

func parseBody(r *http.Request) (*queryBody, error) {
	b := &queryBody{}
	if r.Body != nil && r.ContentLength != 0 {
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16))
		if err := dec.Decode(b); err != nil {
			return nil, fmt.Errorf("invalid JSON body: %w", err)
		}
		return b, nil
	}
	q := r.URL.Query()
	if v := q.Get("index"); v != "" {
		for _, part := range strings.Split(v, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("invalid index %q", part)
			}
			b.Index = append(b.Index, i)
		}
	}
	for name, dst := range map[string]**int{"mode": &b.Mode, "given": &b.Given, "row": &b.Row, "k": &b.K} {
		if v := q.Get(name); v != "" {
			i, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("invalid %s %q", name, v)
			}
			*dst = &i
		}
	}
	return b, nil
}

func handlePredict(s *Server, w http.ResponseWriter, r *http.Request) {
	b, err := parseBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(b.Index) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("predict requires index=i,j,..."))
		return
	}
	v, err := s.Predict(r.Context(), b.Index...)
	if err != nil {
		writeServeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"value":         v,
		"index":         b.Index,
		"model_version": s.Model().Version,
	})
}

func handleRanked(s *Server, w http.ResponseWriter, r *http.Request, kind reqKind) {
	b, err := parseBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if b.Mode == nil || b.Row == nil {
		writeError(w, http.StatusBadRequest, errors.New("mode and row are required"))
		return
	}
	k := 10
	if b.K != nil {
		k = *b.K
	}
	var scored []Scored
	switch kind {
	case kindTopK:
		given := -1
		if b.Given != nil {
			given = *b.Given
		}
		scored, err = s.TopK(r.Context(), *b.Mode, given, *b.Row, k)
	case kindSimilar:
		scored, err = s.Similar(r.Context(), *b.Mode, *b.Row, k)
	}
	if err != nil {
		writeServeError(w, err)
		return
	}
	resp := map[string]any{
		"mode":          *b.Mode,
		"row":           *b.Row,
		"k":             k,
		"results":       scored,
		"model_version": s.Model().Version,
	}
	if kind == kindTopK {
		// The predicted-slice mass of the conditioning row, from the
		// precomputed cross-mode gram: lets clients judge score scale.
		if sn, err := sliceNormForResponse(s, b, kind); err == nil {
			resp["slice_norm"] = sn
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func sliceNormForResponse(s *Server, b *queryBody, kind reqKind) (float64, error) {
	m := s.Model()
	given := -1
	if b.Given != nil {
		given = *b.Given
	}
	if given == -1 {
		if err := m.checkMode(*b.Mode); err != nil {
			return 0, err
		}
		given = m.defaultGiven(*b.Mode)
	}
	return m.SliceNorm(given, *b.Row)
}

func handleHealth(s *Server, w http.ResponseWriter, _ *http.Request) {
	m := s.Model()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"version":       m.Version,
		"model_version": m.Version, // kept for pre-streaming clients
		"model_iter":    m.Iter,
		"age_seconds":   s.ModelAge().Seconds(),
		"rank":          m.Rank,
		"dims":          m.Dims,
		"memory_bytes":  m.MemoryBytes(),
		// Non-zero when the live checkpoint was corrupt and an older
		// retained version is serving in its place.
		"reload_fallbacks": s.reloadFallbacks.Load(),
	})
}

func writeServeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.Canceled):
		writeError(w, 499, err) // client went away (nginx convention)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}
