package serve

import (
	"context"
	"testing"

	"cstf/internal/rng"
)

// The exclude-set contract: exclusion behaves identically on every serving
// path. The exact blocked scan, the norm-pruned approximate scan (with a
// budget covering the mode), and a sharded scatter-gather merged with
// MergeTopK must all return the same ranking for the same exclude set —
// and the result cache must never serve one exclude set's ranking to a
// query with a different one.

func requireSameScored(t *testing.T, want, got []Scored, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestNormalizeExclude(t *testing.T) {
	if normalizeExclude(nil) != nil || normalizeExclude([]int{}) != nil {
		t.Fatal("empty exclude did not normalize to nil")
	}
	in := []int{7, 3, 7, 1, 3}
	got := normalizeExclude(in)
	want := []int{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("normalized %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("normalized %v, want %v", got, want)
		}
	}
	if in[0] != 7 || in[1] != 3 {
		t.Fatal("normalizeExclude mutated its input")
	}
	if excludeKey(got) != "1,3,7" {
		t.Fatalf("excludeKey = %q, want %q", excludeKey(got), "1,3,7")
	}
	if excludeKey(nil) != "" {
		t.Fatal("empty set has a non-empty key")
	}
	for _, i := range want {
		if !excluded(got, i) {
			t.Fatalf("excluded(%v, %d) = false", got, i)
		}
	}
	for _, i := range []int{0, 2, 4, 8, -1} {
		if excluded(got, i) {
			t.Fatalf("excluded(%v, %d) = true", got, i)
		}
	}
}

// Excluded rows never appear, and the remaining ranking equals the
// unexcluded ranking with those rows deleted (every survivor keeps its
// score, order preserved).
func TestModelTopKExcludeDropsRows(t *testing.T) {
	m := randModel(t, 3, 4, 80, 50, 30)
	full, err := m.TopKGivenRange(0, 1, 7, 80, 0, 80)
	if err != nil {
		t.Fatal(err)
	}
	ex := []int{full[0].Index, full[2].Index, full[5].Index}
	got, err := m.TopKGivenRangeExclude(0, 1, 7, 80, 0, 80, ex)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(full)-len(ex) {
		t.Fatalf("%d results after excluding %d of %d", len(got), len(ex), len(full))
	}
	want := full[:0:0]
	for _, s := range full {
		if !excluded(normalizeExclude(ex), s.Index) {
			want = append(want, s)
		}
	}
	requireSameScored(t, want, got, "exclude-filtered full ranking")
}

// Exact scan, approximate scan (budget >= rows, so only the exact
// Cauchy–Schwarz cutoff fires), and a 3-way range split merged with
// MergeTopK agree bitwise for the same exclude set.
func TestExcludeIdenticalAcrossPaths(t *testing.T) {
	m := randModel(t, 11, 3, 120, 40, 25)
	m.BuildApprox(0)
	g := rng.New(5)
	for trial := 0; trial < 25; trial++ {
		row, k := g.Intn(40), 1+g.Intn(12)
		var ex []int
		for len(ex) < 10 {
			ex = append(ex, g.Intn(120))
		}
		exact, err := m.TopKGivenRangeExclude(0, 1, row, k, 0, 120, ex)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := m.TopKGivenApproxExclude(0, 1, row, k, 200, ex)
		if err != nil {
			t.Fatal(err)
		}
		requireSameScored(t, exact, approx, "approx (full budget)")
		var partials [][]Scored
		for _, r := range [][2]int{{0, 41}, {41, 87}, {87, 120}} {
			p, err := m.TopKGivenRangeExclude(0, 1, row, k, r[0], r[1], ex)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, p)
		}
		requireSameScored(t, exact, MergeTopK(k, partials...), "sharded merge")
	}
}

// TopKCond with a single conditioning coordinate reduces to TopKGiven, and
// its exclude set is honored the same way.
func TestTopKCondMatchesTopKGiven(t *testing.T) {
	m := randModel(t, 17, 3, 60, 30, 20)
	ex := []int{4, 9, 13}
	want, err := m.TopKGivenRangeExclude(0, 1, 5, 10, 0, 60, ex)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.TopKCond(0, []Cond{{Mode: 1, Row: 5}}, 10, ex)
	if err != nil {
		t.Fatal(err)
	}
	requireSameScored(t, want, got, "single-cond TopKCond")

	// Multi-given: conditioning on (mode1 row, mode2 row) must drop the
	// marginalization of mode 2 — spot-check against the definition.
	res, err := m.TopKCond(0, []Cond{{Mode: 1, Row: 5}, {Mode: 2, Row: 3}}, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res {
		var score float64
		for r := 0; r < m.Rank; r++ {
			score += m.lambda[r] * m.factors[0].At(s.Index, r) * m.factors[1].At(5, r) * m.factors[2].At(3, r)
		}
		if diff := score - s.Score; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("TopKCond score %v, definition %v", s.Score, score)
		}
	}

	if _, err := m.TopKCond(0, []Cond{{Mode: 0, Row: 1}}, 5, nil); err == nil {
		t.Fatal("conditioning on the queried mode did not fail")
	}
	if _, err := m.TopKCond(0, []Cond{{Mode: 1, Row: 1}, {Mode: 1, Row: 2}}, 5, nil); err == nil {
		t.Fatal("fixing one mode twice did not fail")
	}
	if _, err := m.TopKCond(0, nil, 5, nil); err == nil {
		t.Fatal("empty conditioning did not fail")
	}
}

// The server path: exclusion flows through the batching executor on both
// the exact and approximate configurations, and the result cache keys by
// the exclude set — two queries differing only in exclusions never share
// an entry, while a repeat of the same set hits.
func TestServerTopKExcludeAndCache(t *testing.T) {
	for _, approx := range []bool{false, true} {
		m := randModel(t, 23, 3, 90, 40, 20)
		s, err := New(m, Config{Approx: approx, ApproxCandidates: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ctx := context.Background()
		base, err := s.TopK(ctx, 0, 1, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		ex := []int{base[0].Index, base[1].Index}
		got, err := s.TopKRangeExclude(ctx, 0, 1, 3, 5, 0, -1, ex)
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.TopKGivenRangeExclude(0, 1, 3, 5, 0, 90, ex)
		if err != nil {
			t.Fatal(err)
		}
		requireSameScored(t, want, got, "server exclude")
		for _, s2 := range got {
			if s2.Index == ex[0] || s2.Index == ex[1] {
				t.Fatalf("excluded row %d served (approx=%v)", s2.Index, approx)
			}
		}
		// Same set, different order and duplicates: must hit the cache.
		misses := s.Stats().CacheMisses
		again, err := s.TopKRangeExclude(ctx, 0, 1, 3, 5, 0, -1, []int{ex[1], ex[0], ex[1]})
		if err != nil {
			t.Fatal(err)
		}
		requireSameScored(t, got, again, "cached exclude repeat")
		if s.Stats().CacheMisses != misses {
			t.Fatalf("canonically equal exclude set missed the cache (approx=%v)", approx)
		}
	}
}
