package serve

import (
	"runtime"
	"testing"

	"cstf/internal/la"
	"cstf/internal/rng"
)

// The acceptance benchmark for the batching executor: 16 concurrent TopK
// requests served by one coalesced blocked scan (topKBatch, pool workers)
// versus the naive path of 16 independent sequential scans (topKOne). The
// batched path streams the factor matrix once for the whole batch AND fans
// out across cores; it must sustain >= 2x the naive throughput.
//
//	go test ./internal/serve -bench 'TopK(Naive|Batched)' -benchmem

const (
	benchRows  = 200_000
	benchRank  = 16
	benchBatch = 16
	benchK     = 10
)

func benchModel(b *testing.B) (*la.Dense, [][]float64, []int) {
	g := rng.New(1)
	f := la.NewDense(benchRows, benchRank)
	for i := range f.Data {
		f.Data[i] = g.Float64()*2 - 1
	}
	qs := make([][]float64, benchBatch)
	ks := make([]int, benchBatch)
	for i := range qs {
		q := make([]float64, benchRank)
		for j := range q {
			q[j] = g.Float64()*2 - 1
		}
		qs[i] = q
		ks[i] = benchK
	}
	return f, qs, ks
}

// BenchmarkTopKNaive is the per-request path: each of the 16 requests scans
// the factor matrix independently on one goroutine, as an unbatched server
// would. One benchmark iteration = 16 requests.
func BenchmarkTopKNaive(b *testing.B) {
	f, qs, ks := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := range qs {
			topKOne(f, qs[q], ks[q], nil, -1, nil, 0, f.Rows)
		}
	}
	b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkTopKBatched coalesces the same 16 requests into one blocked
// parallel scan — the executor's hot path. One iteration = 16 requests.
func BenchmarkTopKBatched(b *testing.B) {
	f, qs, ks := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topKBatch(f, qs, ks, nil, nil, nil, 0, 0, f.Rows)
	}
	b.ReportMetric(float64(b.N*benchBatch)/b.Elapsed().Seconds(), "queries/s")
}

// TestBatchedTopKSpeedup is the checked form of the benchmark pair: it
// fails if the coalesced path cannot reach 2x the naive throughput. The 2x
// bar needs at least two schedulable threads — batching wins by streaming
// the factor matrix once AND fanning the scan across cores, and on a
// single-P runtime both paths retire identical flops on one thread — so on
// one P the test only asserts batching costs nothing. Skipped in -short
// runs and under the race detector (where timing is meaningless).
func TestBatchedTopKSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing test skipped under -race")
	}
	f, qs, ks := benchModel(nil)
	// Warm up once so page faults and heap growth land outside the timing.
	topKBatch(f, qs, ks, nil, nil, nil, 0, 0, f.Rows)

	const reps = 5
	naive := timeIt(reps, func() {
		for q := range qs {
			topKOne(f, qs[q], ks[q], nil, -1, nil, 0, f.Rows)
		}
	})
	batched := timeIt(reps, func() {
		topKBatch(f, qs, ks, nil, nil, nil, 0, 0, f.Rows)
	})
	speedup := naive.Seconds() / batched.Seconds()
	t.Logf("naive %v, batched %v, speedup %.1fx (GOMAXPROCS=%d)", naive, batched, speedup, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < 2 {
		if speedup < 0.7 {
			t.Fatalf("batched TopK %.2fx slower than naive on one P (naive %v, batched %v)", speedup, naive, batched)
		}
		t.Skipf("single-P runtime: coalescing has no parallel lever; speedup %.2fx recorded, 2x bar skipped", speedup)
	}
	if speedup < 2 {
		t.Fatalf("batched TopK speedup %.2fx < 2x (naive %v, batched %v)", speedup, naive, batched)
	}
}
