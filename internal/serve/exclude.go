package serve

import (
	"sort"
	"strconv"
	"strings"
)

// Exclude sets. A ranked query may carry a set of candidate rows to drop
// from the result — the recommender's "already seen" filter: items the
// user interacted with in training must not come back as recommendations.
// Exclusion is part of the query identity, so it must behave identically
// on every serving path (exact blocked scan, norm-pruned approximate scan,
// sharded scatter-gather) and must key the result cache.
//
// The canonical form is a sorted, deduplicated index slice. Normalizing at
// the API boundary makes membership a binary search, makes the cache key a
// pure function of the set's contents (not the caller's ordering), and
// keeps the sharded merge bitwise-identical to a single-node scan: every
// shard drops exactly the same rows before scoring.

// normalizeExclude canonicalizes an exclude set: sorted ascending, duplicates
// removed. Empty input returns nil. The input slice is not modified.
func normalizeExclude(rows []int) []int {
	if len(rows) == 0 {
		return nil
	}
	out := append([]int(nil), rows...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// excluded reports whether row i is in the normalized (sorted) exclude set.
func excluded(ex []int, i int) bool {
	if len(ex) == 0 {
		return false
	}
	j := sort.SearchInts(ex, i)
	return j < len(ex) && ex[j] == i
}

// excludeKey renders a normalized exclude set as its canonical string — the
// comparable form embedded in the LRU cache key. Distinct sets render
// distinctly; the empty set renders as "".
func excludeKey(ex []int) string {
	if len(ex) == 0 {
		return ""
	}
	var b strings.Builder
	for i, r := range ex {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(r))
	}
	return b.String()
}
