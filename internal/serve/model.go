// Package serve turns trained CP factors into a queryable model server —
// the inference half of the recommender workloads that motivate sparse
// tensor factorization. A trained decomposition [lambda; A_1 .. A_N] is
// loaded into an immutable Model answering three query kinds:
//
//   - Predict: reconstruct one tensor entry, sum_r lambda_r prod_n A_n(i_n, r)
//   - TopK: the k best completions along one mode given a row of another
//     mode, with any remaining modes marginalized
//   - Similar: the k nearest rows of a mode under cosine similarity
//
// Server wraps a Model with the production machinery: a micro-batching
// executor that coalesces concurrent scans, a bounded LRU result cache,
// load shedding, and atomic hot reload of newer checkpoints.
package serve

import (
	"fmt"

	"cstf/internal/ckpt"
	"cstf/internal/la"
	"cstf/internal/par"
)

// Model is an immutable snapshot of a trained CP decomposition plus the
// precomputed structures the query kinds need: per-mode factor row norms
// (cosine similarity), per-mode column sums (marginalization weights), and
// per-mode Hadamard grams of the OTHER modes (predicted-slice norms).
// Immutability is what makes hot reload safe: a server swaps whole Models
// through an atomic pointer and in-flight queries keep the snapshot they
// started with.
type Model struct {
	// Version distinguishes reloaded models; caches key results by it so a
	// swap implicitly invalidates stale entries.
	Version uint64
	Rank    int
	Dims    []int
	Iter    int // completed training iterations behind this model (0 if unknown)

	lambda   []float64
	factors  []*la.Dense
	rowNorms [][]float64 // per mode: Euclidean norm of each factor row
	colSums  [][]float64 // per mode: per-component column sums
	gramEx   []*la.Dense // per mode: Hadamard product of the other modes' grams

	// approx, when built (BuildApprox), holds the per-mode norm-ordered
	// candidate lists behind TopKApprox. Built before publishing — the
	// Model stays immutable while serving.
	approx []*approxIndex
}

func errConditioningEqualsQueried(given int) error {
	return fmt.Errorf("serve: conditioning mode %d equals queried mode", given)
}

func errNonPositiveK(k int) error {
	return fmt.Errorf("serve: k must be positive, got %d", k)
}

// NewModel builds a Model from lambda and one factor matrix per mode,
// taking ownership of the slices (callers that keep mutating them must pass
// clones). workers bounds the precomputation fan-out; <= 0 selects all
// cores. Shape mismatches return an error rather than panicking, since
// checkpoints arrive from disk.
func NewModel(lambda []float64, factors []*la.Dense, version uint64, workers int) (*Model, error) {
	rank := len(lambda)
	if rank == 0 {
		return nil, fmt.Errorf("serve: empty lambda")
	}
	if len(factors) == 0 {
		return nil, fmt.Errorf("serve: no factor matrices")
	}
	m := &Model{
		Version: version,
		Rank:    rank,
		lambda:  lambda,
		factors: factors,
	}
	grams := make([]*la.Dense, len(factors))
	for n, f := range factors {
		if f == nil || f.Rows <= 0 {
			return nil, fmt.Errorf("serve: factor %d is empty", n)
		}
		if f.Cols != rank {
			return nil, fmt.Errorf("serve: factor %d has %d columns, lambda has rank %d", n, f.Cols, rank)
		}
		m.Dims = append(m.Dims, f.Rows)
		m.rowNorms = append(m.rowNorms, la.RowNormsParallel(f, workers))
		m.colSums = append(m.colSums, la.ColumnSums(f))
		grams[n] = la.GramParallel(f, workers)
	}
	for n := range factors {
		g := la.Ones(rank, rank)
		for o, other := range grams {
			if o != n {
				la.HadamardInto(g, g, other)
			}
		}
		m.gramEx = append(m.gramEx, g)
	}
	return m, nil
}

// LoadCheckpoint reads a solver checkpoint (written by cstf -checkpoint /
// Options.CheckpointPath) into a Model. The file is validated against the
// shared schema in internal/ckpt; Version is taken from the checkpointed
// iteration count (servers reassign it on reload).
func LoadCheckpoint(path string) (*Model, error) {
	cp, err := ckpt.Load(path)
	if err != nil {
		return nil, err
	}
	factors := make([]*la.Dense, len(cp.Factors))
	for n, data := range cp.Factors {
		factors[n] = la.NewDenseFrom(cp.Dims[n], cp.Rank, data)
	}
	m, err := NewModel(cp.Lambda, factors, uint64(cp.Iter), 0)
	if err != nil {
		return nil, err
	}
	m.Iter = cp.Iter
	return m, nil
}

// Order returns the number of tensor modes.
func (m *Model) Order() int { return len(m.Dims) }

// Factor returns the factor matrix of one mode (not a copy; read-only).
func (m *Model) Factor(mode int) *la.Dense { return m.factors[mode] }

// Lambda returns the component weights (not a copy; read-only).
func (m *Model) Lambda() []float64 { return m.lambda }

func (m *Model) checkMode(mode int) error {
	if mode < 0 || mode >= len(m.Dims) {
		return fmt.Errorf("serve: mode %d out of range [0,%d)", mode, len(m.Dims))
	}
	return nil
}

func (m *Model) checkRow(mode, row int) error {
	if err := m.checkMode(mode); err != nil {
		return err
	}
	if row < 0 || row >= m.Dims[mode] {
		return fmt.Errorf("serve: row %d out of range [0,%d) for mode %d", row, m.Dims[mode], mode)
	}
	return nil
}

// checkRange validates a candidate row range [lo, hi) of a mode. An empty
// range (lo == hi) is legal and yields no results.
func (m *Model) checkRange(mode, lo, hi int) error {
	if lo < 0 || hi > m.Dims[mode] || lo > hi {
		return fmt.Errorf("serve: range [%d,%d) invalid for mode %d with %d rows", lo, hi, mode, m.Dims[mode])
	}
	return nil
}

// Predict reconstructs one tensor entry: sum_r lambda_r prod_n A_n(i_n, r).
func (m *Model) Predict(idx ...int) (float64, error) {
	if len(idx) != len(m.Dims) {
		return 0, fmt.Errorf("serve: coordinate has %d indices, model order is %d", len(idx), len(m.Dims))
	}
	for n, i := range idx {
		if i < 0 || i >= m.Dims[n] {
			return 0, fmt.Errorf("serve: index %d out of range [0,%d) for mode %d", i, m.Dims[n], n)
		}
	}
	var s float64
	for r := 0; r < m.Rank; r++ {
		p := m.lambda[r]
		for n, i := range idx {
			p *= m.factors[n].At(i, r)
		}
		s += p
	}
	return s, nil
}

// queryVec builds the length-R scoring vector for a TopK query: component r
// weighs lambda_r, the given row's loading, and the column sums of every
// mode that is neither queried nor given (uniform marginalization — the
// score of candidate j equals the model summed over all coordinates of the
// unspecified modes).
func (m *Model) queryVec(mode, given, row int) []float64 {
	q := la.VecClone(m.lambda)
	la.VecMulInto(q, m.factors[given].Row(row))
	for n := range m.factors {
		if n != mode && n != given {
			la.VecMulInto(q, m.colSums[n])
		}
	}
	return q
}

// defaultGiven picks the conditioning mode of the short-form TopK call.
func (m *Model) defaultGiven(mode int) int { return DefaultGiven(mode) }

// DefaultGiven is the conditioning mode a TopK query without an explicit
// one uses: the lowest-numbered mode other than the queried one. Exported
// so routers and load generators pick the same default as the model.
func DefaultGiven(mode int) int {
	if mode == 0 {
		return 1
	}
	return 0
}

// TopK returns the k rows of `mode` with the highest predicted interaction
// with the given row of the default conditioning mode (the lowest mode
// other than `mode`); remaining modes are marginalized.
//
// Ordering is part of the API contract: results are sorted by descending
// score, and rows with bitwise-equal scores are ordered by ascending row
// index. The tie-break is what makes a sharded ranking reassemble exactly —
// merging per-row-range partial TopKs with MergeTopK is bitwise-identical
// to the single full scan, because every scan, block merge, and
// scatter-gather merge agrees on the same total order.
func (m *Model) TopK(mode, row, k int) ([]Scored, error) {
	if err := m.checkMode(mode); err != nil {
		return nil, err
	}
	return m.TopKGiven(mode, m.defaultGiven(mode), row, k)
}

// TopKGiven is TopK with an explicit conditioning mode.
func (m *Model) TopKGiven(mode, given, row, k int) ([]Scored, error) {
	if err := m.checkMode(mode); err != nil {
		return nil, err
	}
	return m.TopKGivenRange(mode, given, row, k, 0, m.Dims[mode])
}

// TopKGivenRange is TopKGiven restricted to candidate rows in [lo, hi) of
// the queried mode — the shard primitive of the serving fleet: a router
// splits a mode's rows into ranges, asks one replica per range, and merges
// the partial rankings with MergeTopK. Because scores are pure per-row dot
// products, the union of range scans is bitwise-identical to one full scan.
func (m *Model) TopKGivenRange(mode, given, row, k, lo, hi int) ([]Scored, error) {
	return m.TopKGivenRangeExclude(mode, given, row, k, lo, hi, nil)
}

// TopKGivenRangeExclude is TopKGivenRange with an exclude set: candidate
// rows listed in exclude are dropped before scoring — the recommender's
// "already seen" filter. Exclusion happens inside the scan, so the k
// returned results are the k best among the remaining candidates (not a
// post-filtered shorter list), and because every shard of a scatter-gather
// drops the same rows, the sharded merge stays bitwise-identical to one
// full scan with the same exclude set. Out-of-range entries are ignored.
func (m *Model) TopKGivenRangeExclude(mode, given, row, k, lo, hi int, exclude []int) ([]Scored, error) {
	if err := m.checkMode(mode); err != nil {
		return nil, err
	}
	if given == mode {
		return nil, errConditioningEqualsQueried(given)
	}
	if err := m.checkRow(given, row); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, errNonPositiveK(k)
	}
	if err := m.checkRange(mode, lo, hi); err != nil {
		return nil, err
	}
	ex := normalizeExclude(exclude)
	return topKOne(m.factors[mode], m.queryVec(mode, given, row), k, nil, -1, ex, lo, hi), nil
}

// Cond fixes one conditioning coordinate of a multi-given TopK query.
type Cond struct {
	Mode int
	Row  int
}

// TopKCond returns the k best completions along mode conditioned on any
// number of fixed (mode, row) coordinates — the recommender query "items
// for this user in this context". Modes neither queried nor fixed are
// marginalized with their column sums, exactly as in TopKGiven (which is
// the single-Cond special case); exclude drops candidate rows from the
// ranking. Ordering follows the TopK contract (descending score, ascending
// index on bitwise score ties).
func (m *Model) TopKCond(mode int, given []Cond, k int, exclude []int) ([]Scored, error) {
	if err := m.checkMode(mode); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, errNonPositiveK(k)
	}
	if len(given) == 0 {
		return nil, fmt.Errorf("serve: TopKCond needs at least one conditioning coordinate")
	}
	fixed := make(map[int]bool, len(given))
	q := la.VecClone(m.lambda)
	for _, c := range given {
		if c.Mode == mode {
			return nil, errConditioningEqualsQueried(c.Mode)
		}
		if err := m.checkRow(c.Mode, c.Row); err != nil {
			return nil, err
		}
		if fixed[c.Mode] {
			return nil, fmt.Errorf("serve: conditioning mode %d fixed twice", c.Mode)
		}
		fixed[c.Mode] = true
		la.VecMulInto(q, m.factors[c.Mode].Row(c.Row))
	}
	for n := range m.factors {
		if n != mode && !fixed[n] {
			la.VecMulInto(q, m.colSums[n])
		}
	}
	ex := normalizeExclude(exclude)
	return topKOne(m.factors[mode], q, k, nil, -1, ex, 0, m.Dims[mode]), nil
}

// Similar returns the k rows of `mode` most similar to `row` under cosine
// similarity of factor rows, excluding the row itself. Zero-norm rows score
// zero against everything. Ordering follows the TopK contract (descending
// score, ascending index on ties).
func (m *Model) Similar(mode, row, k int) ([]Scored, error) {
	if err := m.checkRow(mode, row); err != nil {
		return nil, err
	}
	return m.SimilarRange(mode, row, k, 0, m.Dims[mode])
}

// SimilarRange is Similar restricted to candidate rows in [lo, hi) — the
// sharded form used by the fleet router's scatter-gather.
func (m *Model) SimilarRange(mode, row, k, lo, hi int) ([]Scored, error) {
	if err := m.checkRow(mode, row); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, errNonPositiveK(k)
	}
	if err := m.checkRange(mode, lo, hi); err != nil {
		return nil, err
	}
	q := m.similarQueryVec(mode, row)
	return topKOne(m.factors[mode], q, k, m.rowNorms[mode], row, nil, lo, hi), nil
}

// similarQueryVec returns the query row pre-scaled by 1/||row|| so the scan
// only divides by each candidate's norm. A zero-norm query scores zero.
func (m *Model) similarQueryVec(mode, row int) []float64 {
	q := la.VecClone(m.factors[mode].Row(row))
	if n := m.rowNorms[mode][row]; n > 0 {
		la.VecScale(q, 1/n)
	} else {
		for i := range q {
			q[i] = 0
		}
	}
	return q
}

// SliceNorm returns the Frobenius norm of the model's predicted slice for
// one row of a mode — how much total interaction mass the model assigns
// that row across ALL other coordinates. It is computed in O(R^2) from the
// precomputed Hadamard gram of the other modes:
// ||slice||^2 = w^T (hadamard_{n != mode} A_n^T A_n) w with
// w_r = lambda_r * A_mode(row, r).
func (m *Model) SliceNorm(mode, row int) (float64, error) {
	if err := m.checkRow(mode, row); err != nil {
		return 0, err
	}
	w := la.VecClone(m.lambda)
	la.VecMulInto(w, m.factors[mode].Row(row))
	gw := la.MatVec(m.gramEx[mode], w)
	s := la.VecDot(w, gw)
	if s < 0 { // rounding can push a tiny norm below zero
		s = 0
	}
	return sqrt(s), nil
}

// MemoryBytes estimates the resident size of the model's float64 payload.
func (m *Model) MemoryBytes() int64 {
	var n int64
	n += int64(len(m.lambda))
	for i, f := range m.factors {
		n += int64(len(f.Data))
		n += int64(len(m.rowNorms[i]) + len(m.colSums[i]))
		n += int64(len(m.gramEx[i].Data))
	}
	return n * 8
}

// topKBatch scores every query vector in qs against the rows of f in one
// blocked parallel scan: the row loop is outer (each factor row streams
// through cache once for the whole batch, the coalescing win over repeated
// topKOne scans) and per-(query, block) partial top-k sets merge in block
// order, so results are deterministic for every worker count. The dot
// products are fused with the heap pushes — no per-block score buffers —
// which keeps the scan allocation-free in steady state. divisors, when
// non-nil per query, divides each row's score (cosine normalization);
// excl >= 0 drops that row from the query's result (Similar's self-
// exclusion); exSets, when non-nil per query, drops every row in that
// query's normalized exclude set. The scan covers candidate rows
// [rlo, rhi) only — the full mode for local queries, a shard's row range
// when a fleet router scatter-gathers.
func topKBatch(f *la.Dense, qs [][]float64, ks []int, divisors [][]float64, excl []int, exSets [][]int, workers, rlo, rhi int) [][]Scored {
	n := rhi - rlo
	if n <= 0 {
		return make([][]Scored, len(qs))
	}
	nb := par.NumBlocks(n)
	partials := make([][]topKHeap, nb)
	c := f.Cols
	par.Run(workers, nb, func(b int) {
		blo, bhi := par.Block(b, n)
		lo, hi := rlo+blo, rlo+bhi
		heaps := make([]topKHeap, len(qs))
		for i := lo; i < hi; i++ {
			row := f.Data[i*c : (i+1)*c]
			for qi, q := range qs {
				if excl != nil && i == excl[qi] {
					continue
				}
				if exSets != nil && excluded(exSets[qi], i) {
					continue
				}
				s := la.VecDot(row, q)
				if divisors != nil && divisors[qi] != nil {
					if d := divisors[qi][i]; d > 0 {
						s /= d
					} else {
						s = 0
					}
				}
				heaps[qi].pushK(ks[qi], Scored{Index: i, Score: s})
			}
		}
		partials[b] = heaps
	})
	out := make([][]Scored, len(qs))
	for qi := range qs {
		var h topKHeap
		for b := range partials {
			for _, it := range partials[b][qi] {
				h.pushK(ks[qi], it)
			}
		}
		out[qi] = h.sorted()
	}
	return out
}

// topKOne is the naive per-request path: a single sequential scan of the
// factor rows [lo, hi) feeding one bounded heap. The batching executor
// exists because topKBatch amortizes this scan across concurrent requests.
// ex, when non-nil, is a normalized exclude set whose rows are skipped.
func topKOne(f *la.Dense, q []float64, k int, divisors []float64, excl int, ex []int, lo, hi int) []Scored {
	var h topKHeap
	c := f.Cols
	for i := lo; i < hi; i++ {
		if i == excl || excluded(ex, i) {
			continue
		}
		s := la.VecDot(f.Data[i*c:(i+1)*c], q)
		if divisors != nil {
			if d := divisors[i]; d > 0 {
				s /= d
			} else {
				s = 0
			}
		}
		h.pushK(k, Scored{Index: i, Score: s})
	}
	return h.sorted()
}
