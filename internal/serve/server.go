package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cstf/internal/ckpt"
	"cstf/internal/par"
)

// Typed serving errors. HTTP and load-generation layers map these to
// status codes / shed counters; errors.Is works through wrapping.
var (
	// ErrOverloaded is returned immediately — instead of blocking — when
	// the bounded request queue is full. Shedding keeps latency bounded
	// under overload; clients retry with backoff.
	ErrOverloaded = errors.New("serve: overloaded, request shed")
	// ErrClosed is returned for requests after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrDraining is returned for new requests after Drain has started:
	// the server finishes what it already accepted and takes nothing else.
	// A fleet router treats it like a dead replica and routes around.
	ErrDraining = errors.New("serve: draining, not accepting new queries")
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// MaxBatch bounds how many ranked queries one executor pass coalesces
	// into a single blocked scan. Default 32.
	MaxBatch int
	// MaxWait bounds how long the executor holds the FIRST request of a
	// batch while waiting for more to coalesce. Default 100µs — far below
	// perceivable latency, far above the cost of a scan.
	MaxWait time.Duration
	// QueueDepth bounds the request queue; a full queue sheds with
	// ErrOverloaded. Default 1024.
	QueueDepth int
	// CacheSize bounds the LRU result cache in entries; 0 selects the
	// default 4096, negative disables caching.
	CacheSize int
	// Workers bounds the fan-out of one batched scan; <= 0 selects all
	// cores.
	Workers int
	// Timeout, when positive, caps every query's wait (submission +
	// execution); exceeding it returns context.DeadlineExceeded. Callers
	// can always pass a tighter per-request context.
	Timeout time.Duration
	// Approx serves full-mode TopK queries from the norm-pruned candidate
	// list (Model.BuildApprox runs on load, swap, and reload) instead of
	// scanning the whole mode. Range-restricted shard queries and Similar
	// stay exact. See approx.go for the recall/latency trade.
	Approx bool
	// ApproxCandidates caps how many candidates one approximate TopK scan
	// scores; 0 selects DefaultApproxCandidates, negative disables the cap
	// (pure Cauchy–Schwarz pruning, exact but unbounded on flat norms).
	ApproxCandidates int
	// Logf, when non-nil, receives operational log lines (reload
	// failures, corruption fallbacks).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 100 * time.Microsecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	return c
}

// Stats is a point-in-time snapshot of serving counters (see /statsz).
type Stats struct {
	ModelVersion uint64  `json:"model_version"`
	ModelIter    int     `json:"model_iter"`
	ModelAgeSecs float64 `json:"model_age_secs"` // seconds since the serving model was loaded/swapped
	UptimeSecs   float64 `json:"uptime_secs"`

	Predicts uint64 `json:"predicts"`
	TopKs    uint64 `json:"topks"`
	Similars uint64 `json:"similars"`

	Batches         uint64 `json:"batches"`
	BatchedRequests uint64 `json:"batched_requests"`
	MaxBatch        uint64 `json:"max_batch"` // largest batch executed

	Shed       uint64 `json:"shed"`
	Timeouts   uint64 `json:"timeouts"`
	BadRequest uint64 `json:"bad_requests"`

	// Inflight is the number of queries accepted but not yet answered;
	// Draining reports whether the server has stopped taking new ones. A
	// rolling reload waits for Inflight == 0 before swapping the model.
	Inflight int64 `json:"inflight"`
	Draining bool  `json:"draining"`

	// ApproxQueries counts TopK queries answered from the norm-pruned
	// candidate list; the Scanned/Exact row counters show how much of the
	// full scan the pruning avoided (Scanned <= Exact always).
	ApproxQueries     uint64 `json:"approx_queries"`
	ApproxRowsScanned uint64 `json:"approx_rows_scanned"`
	ApproxRowsExact   uint64 `json:"approx_rows_exact"`

	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`

	Reloads      uint64 `json:"reloads"`
	ReloadErrors uint64 `json:"reload_errors"`
	// ReloadFallbacks counts reloads that served an older retained
	// checkpoint version because the live file was corrupt on disk.
	ReloadFallbacks uint64 `json:"reload_fallbacks"`
}

type reqKind uint8

const (
	kindTopK reqKind = iota + 1
	kindSimilar
)

type result struct {
	scored []Scored
	err    error
}

type request struct {
	kind  reqKind
	mode  int
	given int // TopK conditioning mode
	row   int
	k     int
	// Candidate row range [lo, hi) of the queried mode; hi == -1 means
	// the full mode. Routers send real ranges when scatter-gathering a
	// sharded ranked query.
	lo, hi int
	// exclude is the query's normalized exclude set (nil when empty);
	// exkey is its canonical cache-key string.
	exclude []int
	exkey   string
	ctx     context.Context
	out     chan result // buffered; executor never blocks sending
}

// Server serves queries against an atomically swappable Model. Ranked
// queries (TopK, Similar) flow through a bounded queue into a
// micro-batching executor; Predict reads the model pointer directly (it is
// O(order*R) — cheaper than any queue handoff).
type Server struct {
	cfg     Config
	model   atomic.Pointer[Model]
	version atomic.Uint64
	reqs    chan *request
	cache   *lruCache
	start   time.Time

	closeOnce sync.Once
	closed    chan struct{}
	done      sync.WaitGroup

	loadedAt atomic.Int64 // unix nanos of the last model store (staleness clock)

	draining atomic.Bool
	inflight atomic.Int64

	predicts, topks, similars      atomic.Uint64
	batches, batchedReqs, maxBatch atomic.Uint64
	shed, timeouts, badReqs        atomic.Uint64
	cacheHits, cacheMisses         atomic.Uint64
	reloads, reloadErrs            atomic.Uint64
	reloadFallbacks                atomic.Uint64
	approxQueries, approxScanned   atomic.Uint64
	approxExact                    atomic.Uint64
	watchMu                        sync.Mutex
	watchMTime                     time.Time
	watchSize                      int64
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// New starts a Server for m. Callers must Close it to stop the executor.
func New(m *Model, cfg Config) (*Server, error) {
	s, err := newServer(m, cfg)
	if err != nil {
		return nil, err
	}
	s.done.Add(1)
	go s.dispatch()
	return s, nil
}

// newServer builds the server without starting the executor goroutine.
// Tests use it directly to exercise queue behaviour (shedding) without
// racing the dispatcher.
func newServer(m *Model, cfg Config) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		reqs:   make(chan *request, cfg.QueueDepth),
		cache:  newLRUCache(cfg.CacheSize),
		start:  time.Now(),
		closed: make(chan struct{}),
	}
	m.Version = s.version.Add(1)
	if cfg.Approx && !m.HasApprox() {
		m.BuildApprox(cfg.Workers)
	}
	s.model.Store(m)
	s.loadedAt.Store(time.Now().UnixNano())
	return s, nil
}

// Model returns the current model snapshot.
func (s *Server) Model() *Model { return s.model.Load() }

// Dims returns the current model's mode sizes (part of the Querier
// surface the load generator drives).
func (s *Server) Dims() []int { return s.model.Load().Dims }

// Swap atomically publishes a new model. In-flight queries finish against
// the snapshot they started with; subsequent queries — and cache keys — use
// the new version.
func (s *Server) Swap(m *Model) {
	m.Version = s.version.Add(1)
	if s.cfg.Approx && !m.HasApprox() {
		m.BuildApprox(s.cfg.Workers)
	}
	s.model.Store(m)
	s.loadedAt.Store(time.Now().UnixNano())
	s.reloads.Add(1)
}

// Reload loads the checkpoint at path and swaps it in. A live file that is
// corrupt on disk (torn write, bit rot — surfaced by internal/ckpt as a
// typed *ckpt.CorruptError) does not leave the server stuck: Reload falls
// back to the newest intact retained version (stream.Publisher keeps the
// last few next to the live path), logs the skip, and counts the fallback
// — visible on /healthz and /statsz. On any other error, or when no
// retained version is intact, the current model keeps serving and the
// error is counted.
func (s *Server) Reload(path string) error {
	m, err := LoadCheckpoint(path)
	var ce *ckpt.CorruptError
	if errors.As(err, &ce) {
		s.logf("serve: %v; falling back to retained versions", err)
		if fm, fv, ferr := loadNewestRetained(path); ferr == nil {
			s.logf("serve: serving retained version %d of %s instead", fv, path)
			s.reloadFallbacks.Add(1)
			s.Swap(fm)
			return nil
		}
	}
	if err != nil {
		s.reloadErrs.Add(1)
		return err
	}
	s.Swap(m)
	return nil
}

// loadNewestRetained scans the retained versions next to path newest-first
// and returns the first one that reads and validates.
func loadNewestRetained(path string) (*Model, int, error) {
	vs, err := ckpt.ListVersions(path)
	if err != nil {
		return nil, 0, err
	}
	for i := len(vs) - 1; i >= 0; i-- {
		if m, err := LoadCheckpoint(ckpt.VersionPath(path, vs[i])); err == nil {
			return m, vs[i], nil
		}
	}
	return nil, 0, fmt.Errorf("serve: no intact retained version of %s", path)
}

// Watch polls path every interval and hot-reloads the model whenever the
// file's mtime or size changes — which a training run's periodic
// Options.CheckpointPath writes do. Checkpoint writes are atomic renames,
// so a poll never observes a torn file. Watch returns immediately; the
// watcher stops when ctx is cancelled or the server closes.
func (s *Server) Watch(ctx context.Context, path string, interval time.Duration) {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if st, err := os.Stat(path); err == nil {
		s.watchMu.Lock()
		s.watchMTime, s.watchSize = st.ModTime(), st.Size()
		s.watchMu.Unlock()
	}
	s.done.Add(1)
	go func() {
		defer s.done.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-s.closed:
				return
			case <-t.C:
				st, err := os.Stat(path)
				if err != nil {
					continue
				}
				s.watchMu.Lock()
				changed := !st.ModTime().Equal(s.watchMTime) || st.Size() != s.watchSize
				if changed {
					s.watchMTime, s.watchSize = st.ModTime(), st.Size()
				}
				s.watchMu.Unlock()
				if changed {
					s.Reload(path) // on error: counted, old model keeps serving
				}
			}
		}
	}()
}

// Close stops the executor and watcher. Queued requests are failed with
// ErrClosed; Close blocks until the executor drains.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	s.done.Wait()
}

// Drain flips the server into draining mode — new queries are rejected
// with ErrDraining — and returns once every already-accepted query has
// been answered. Callers then Close (graceful shutdown) or Reload and
// Resume (rolling reload): the drain/reload/resume sequence never fails a
// query that was accepted.
func (s *Server) Drain() {
	s.draining.Store(true)
	for s.inflight.Load() != 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// Resume takes a drained server back into service.
func (s *Server) Resume() { s.draining.Store(false) }

// Draining reports whether the server is refusing new queries.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	m := s.model.Load()
	return Stats{
		ModelVersion:      m.Version,
		ModelIter:         m.Iter,
		ModelAgeSecs:      s.ModelAge().Seconds(),
		UptimeSecs:        time.Since(s.start).Seconds(),
		Predicts:          s.predicts.Load(),
		TopKs:             s.topks.Load(),
		Similars:          s.similars.Load(),
		Batches:           s.batches.Load(),
		BatchedRequests:   s.batchedReqs.Load(),
		MaxBatch:          s.maxBatch.Load(),
		Shed:              s.shed.Load(),
		Timeouts:          s.timeouts.Load(),
		BadRequest:        s.badReqs.Load(),
		Inflight:          s.inflight.Load(),
		Draining:          s.draining.Load(),
		ApproxQueries:     s.approxQueries.Load(),
		ApproxRowsScanned: s.approxScanned.Load(),
		ApproxRowsExact:   s.approxExact.Load(),
		CacheHits:         s.cacheHits.Load(),
		CacheMisses:       s.cacheMisses.Load(),
		CacheEntries:      s.cache.len(),
		Reloads:           s.reloads.Load(),
		ReloadErrors:      s.reloadErrs.Load(),
		ReloadFallbacks:   s.reloadFallbacks.Load(),
	}
}

// ModelAge returns how long the current model has been serving — the
// operator-facing staleness signal: with a streaming trainer publishing
// versions, a growing age means the ingest → retrain → reload loop stalled.
func (s *Server) ModelAge() time.Duration {
	return time.Duration(time.Now().UnixNano() - s.loadedAt.Load())
}

// Predict reconstructs one entry against the current model. It is served
// inline — no queue, no batch — because the work is a few dozen flops.
func (s *Server) Predict(ctx context.Context, idx ...int) (float64, error) {
	select {
	case <-s.closed:
		return 0, ErrClosed
	default:
	}
	if s.draining.Load() {
		return 0, ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	v, err := s.model.Load().Predict(idx...)
	if err != nil {
		s.badReqs.Add(1)
		return 0, err
	}
	s.predicts.Add(1)
	return v, nil
}

// TopK returns the k best completions along mode for the given row of
// `given` (pass given == -1 for the default conditioning mode). Concurrent
// calls are coalesced into batched scans.
func (s *Server) TopK(ctx context.Context, mode, given, row, k int) ([]Scored, error) {
	return s.TopKRange(ctx, mode, given, row, k, 0, -1)
}

// TopKRange is TopK restricted to candidate rows [lo, hi) of the queried
// mode (hi == -1 selects the full mode) — the query one fleet shard
// answers. Range queries always run the exact blocked scan: the range is
// already 1/N of the mode, and exactness is what makes the router's merge
// bitwise-identical to a single node.
func (s *Server) TopKRange(ctx context.Context, mode, given, row, k, lo, hi int) ([]Scored, error) {
	return s.TopKRangeExclude(ctx, mode, given, row, k, lo, hi, nil)
}

// TopKRangeExclude is TopKRange with an exclude set: candidate rows listed
// in exclude are dropped inside the scan (the recommender's "already seen"
// filter), on the exact, approximate, and sharded paths alike. The set is
// normalized (sorted, deduplicated) before caching and execution, so the
// cached result is a pure function of the set's contents.
func (s *Server) TopKRangeExclude(ctx context.Context, mode, given, row, k, lo, hi int, exclude []int) ([]Scored, error) {
	m := s.model.Load()
	if given == -1 {
		if err := m.checkMode(mode); err != nil {
			s.badReqs.Add(1)
			return nil, err
		}
		given = m.defaultGiven(mode)
	}
	ex := normalizeExclude(exclude)
	res, err := s.submit(ctx, &request{kind: kindTopK, mode: mode, given: given, row: row, k: k, lo: lo, hi: hi, exclude: ex, exkey: excludeKey(ex)})
	if err == nil {
		s.topks.Add(1)
	}
	return res, err
}

// Similar returns the k nearest rows of mode to row under cosine
// similarity. Concurrent calls are coalesced into batched scans.
func (s *Server) Similar(ctx context.Context, mode, row, k int) ([]Scored, error) {
	return s.SimilarRange(ctx, mode, row, k, 0, -1)
}

// SimilarRange is Similar restricted to candidate rows [lo, hi) of the
// mode (hi == -1 selects the full mode).
func (s *Server) SimilarRange(ctx context.Context, mode, row, k, lo, hi int) ([]Scored, error) {
	res, err := s.submit(ctx, &request{kind: kindSimilar, mode: mode, row: row, k: k, lo: lo, hi: hi})
	if err == nil {
		s.similars.Add(1)
	}
	return res, err
}

func (r *request) cacheKey(version uint64) cacheKey {
	return cacheKey{version: version, kind: r.kind, mode: r.mode, given: r.given, row: r.row, k: r.k, lo: r.lo, hi: r.hi, exclude: r.exkey}
}

// submit runs the cache fast path, then enqueues with load shedding and
// waits for the executor (or the caller's deadline).
func (s *Server) submit(ctx context.Context, r *request) ([]Scored, error) {
	select {
	case <-s.closed:
		return nil, ErrClosed
	default:
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if v, ok := s.cache.get(r.cacheKey(s.model.Load().Version)); ok {
		s.cacheHits.Add(1)
		return v, nil
	}
	s.cacheMisses.Add(1)
	if s.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Timeout)
		defer cancel()
	}
	r.ctx = ctx
	r.out = make(chan result, 1)
	select {
	case s.reqs <- r:
	default:
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case res := <-r.out:
		if res.err != nil {
			s.badReqs.Add(1)
		}
		return res.scored, res.err
	case <-ctx.Done():
		s.timeouts.Add(1)
		return nil, ctx.Err()
	case <-s.closed:
		return nil, ErrClosed
	}
}

// dispatch is the executor loop: take one request, linger MaxWait for more
// (up to MaxBatch), execute the coalesced batch against one model
// snapshot, repeat. On Close it fails whatever is still queued.
func (s *Server) dispatch() {
	defer s.done.Done()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	for {
		var first *request
		select {
		case first = <-s.reqs:
		case <-s.closed:
			s.drain()
			return
		}
		batch = append(batch[:0], first)
		if s.cfg.MaxBatch > 1 {
			timer := time.NewTimer(s.cfg.MaxWait)
		gather:
			for len(batch) < s.cfg.MaxBatch {
				select {
				case r := <-s.reqs:
					batch = append(batch, r)
				case <-timer.C:
					break gather
				case <-s.closed:
					break gather
				}
			}
			timer.Stop()
		}
		s.exec(batch)
		select {
		case <-s.closed:
			s.drain()
			return
		default:
		}
	}
}

func (s *Server) drain() {
	for {
		select {
		case r := <-s.reqs:
			r.out <- result{err: ErrClosed}
		default:
			return
		}
	}
}

// exec validates, groups, and executes one batch against one model
// snapshot. Requests whose context already expired are skipped (their
// caller has gone); invalid requests fail individually; the rest are
// grouped by (kind, mode) so each group shares a single blocked scan.
func (s *Server) exec(batch []*request) {
	m := s.model.Load()
	s.batches.Add(1)
	s.batchedReqs.Add(uint64(len(batch)))
	for {
		cur := s.maxBatch.Load()
		if uint64(len(batch)) <= cur || s.maxBatch.CompareAndSwap(cur, uint64(len(batch))) {
			break
		}
	}

	type groupKey struct {
		kind   reqKind
		mode   int
		lo, hi int
	}
	groups := make(map[groupKey][]*request)
	for _, r := range batch {
		if r.ctx.Err() != nil {
			continue // caller already timed out; executing would be wasted work
		}
		if err := s.validate(m, r); err != nil {
			r.out <- result{err: err}
			continue
		}
		gk := groupKey{kind: r.kind, mode: r.mode, lo: r.lo, hi: r.hi}
		groups[gk] = append(groups[gk], r)
	}
	for gk, rs := range groups {
		// Full-mode TopK takes the norm-pruned index when enabled; the
		// scans are a small prefix of the mode, so they run per request
		// rather than as one blocked batch scan.
		if gk.kind == kindTopK && gk.hi == -1 && s.cfg.Approx && m.HasApprox() {
			for _, r := range rs {
				res, scanned := approxTopK(m.factors[r.mode], m.queryVec(r.mode, r.given, r.row), r.k, r.exclude, m.approx[r.mode], s.approxBudget())
				s.approxQueries.Add(1)
				s.approxScanned.Add(uint64(scanned))
				s.approxExact.Add(uint64(m.Dims[r.mode]))
				s.cache.put(r.cacheKey(m.Version), res)
				r.out <- result{scored: res}
			}
			continue
		}
		lo, hi := gk.lo, gk.hi
		if hi == -1 {
			hi = m.Dims[gk.mode]
		}
		qs := make([][]float64, len(rs))
		ks := make([]int, len(rs))
		var divisors [][]float64
		var excl []int
		var exSets [][]int
		if gk.kind == kindSimilar {
			divisors = make([][]float64, len(rs))
			excl = make([]int, len(rs))
		}
		for i, r := range rs {
			ks[i] = r.k
			switch gk.kind {
			case kindTopK:
				qs[i] = m.queryVec(r.mode, r.given, r.row)
				if r.exclude != nil {
					if exSets == nil {
						exSets = make([][]int, len(rs))
					}
					exSets[i] = r.exclude
				}
			case kindSimilar:
				qs[i] = m.similarQueryVec(r.mode, r.row)
				divisors[i] = m.rowNorms[r.mode]
				excl[i] = r.row
			}
		}
		res := topKBatch(m.factors[gk.mode], qs, ks, divisors, excl, exSets, s.cfg.Workers, lo, hi)
		for i, r := range rs {
			s.cache.put(r.cacheKey(m.Version), res[i])
			r.out <- result{scored: res[i]}
		}
	}
}

// approxBudget resolves Config.ApproxCandidates: 0 is the default budget,
// negative disables the cap (Cauchy–Schwarz pruning only).
func (s *Server) approxBudget() int {
	switch {
	case s.cfg.ApproxCandidates < 0:
		return int(^uint(0) >> 1)
	case s.cfg.ApproxCandidates == 0:
		return DefaultApproxCandidates
	default:
		return s.cfg.ApproxCandidates
	}
}

func (s *Server) validate(m *Model, r *request) error {
	if r.k <= 0 {
		return errNonPositiveK(r.k)
	}
	if err := m.checkMode(r.mode); err != nil {
		return err
	}
	if r.hi != -1 {
		if err := m.checkRange(r.mode, r.lo, r.hi); err != nil {
			return err
		}
	} else if r.lo != 0 {
		return fmt.Errorf("serve: range lo %d with full-mode hi", r.lo)
	}
	switch r.kind {
	case kindTopK:
		if r.given == r.mode {
			return errConditioningEqualsQueried(r.given)
		}
		return m.checkRow(r.given, r.row)
	case kindSimilar:
		return m.checkRow(r.mode, r.row)
	}
	return fmt.Errorf("serve: unknown request kind %d", r.kind)
}

// Workers reports the scan fan-out the server uses (for diagnostics).
func (s *Server) Workers() int { return par.Workers(s.cfg.Workers) }
