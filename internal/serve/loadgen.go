package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"cstf/internal/rng"
)

// Closed-loop load generator: N concurrent clients issue a deterministic
// (per seed) mix of queries against a Querier, each client sending its
// next request only after the previous one completes — the standard
// closed-loop model whose measured latency includes queueing, batching,
// and cache effects. Used by `cstf-bench -exp serve` and the serving
// tests; the fleet benchmark points it at a Router instead of a Server.

// Querier is the query surface RunLoad drives: a single in-process Server
// or a fleet Router fanning the same calls out over HTTP.
type Querier interface {
	Dims() []int
	Predict(ctx context.Context, idx ...int) (float64, error)
	TopK(ctx context.Context, mode, given, row, k int) ([]Scored, error)
	Similar(ctx context.Context, mode, row, k int) ([]Scored, error)
}

// LoadOptions configures one load-generation run.
type LoadOptions struct {
	Clients  int     // concurrent closed-loop clients (default 4)
	Requests int     // total requests across all clients (default 1000)
	K        int     // k of ranked queries (default 10)
	Seed     uint64  // deterministic request-stream seed
	Predict  float64 // fraction of predict queries (default 0.2)
	Similar  float64 // fraction of similar queries (default 0.1; rest TopK)
	// HotRows, when in (0, 1), draws that fraction of traffic from a
	// single hot row per mode — the skew that makes the result cache earn
	// its keep. Default 0 (uniform rows).
	HotRows float64
	// WorkingSet, when positive, bounds every drawn row to [0,
	// WorkingSet) per mode (clamped to the mode's size): the bounded
	// universe of distinct queries that makes cache capacity — one
	// node's versus a fleet's aggregate — the measured variable.
	WorkingSet int
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Requests <= 0 {
		o.Requests = 1000
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.Predict == 0 {
		o.Predict = 0.2
	}
	if o.Similar == 0 {
		o.Similar = 0.1
	}
	return o
}

// LoadStats summarizes one load run.
type LoadStats struct {
	Clients  int           `json:"clients"`
	Requests int           `json:"requests"` // completed successfully
	Errors   int           `json:"errors"`   // failed (excluding shed)
	Shed     int           `json:"shed"`     // ErrOverloaded responses
	Elapsed  time.Duration `json:"-"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"-"`
	P95      time.Duration `json:"-"`
	P99      time.Duration `json:"-"`
}

// RunLoad drives the querier with o.Clients closed-loop clients until
// o.Requests requests have been issued, and reports throughput and latency
// percentiles over the successful requests.
func RunLoad(ctx context.Context, s Querier, o LoadOptions) LoadStats {
	o = o.withDefaults()
	dims := s.Dims()
	order := len(dims)

	perClient := o.Requests / o.Clients
	if perClient == 0 {
		perClient = 1
	}
	lats := make([][]time.Duration, o.Clients)
	var mu sync.Mutex
	var totalErrs, totalShed int

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := rng.New(rng.Hash64(o.Seed, uint64(c)))
			myLats := make([]time.Duration, 0, perClient)
			myErrs, myShed := 0, 0
			for i := 0; i < perClient; i++ {
				if ctx.Err() != nil {
					break
				}
				kindDraw := g.Float64()
				mode := g.Intn(order)
				row := func(n int) int {
					if o.HotRows > 0 && g.Float64() < o.HotRows {
						return 0
					}
					d := dims[n]
					if o.WorkingSet > 0 && o.WorkingSet < d {
						d = o.WorkingSet
					}
					return g.Intn(d)
				}
				t0 := time.Now()
				var err error
				switch {
				case kindDraw < o.Predict:
					idx := make([]int, order)
					for n := range idx {
						idx[n] = row(n)
					}
					_, err = s.Predict(ctx, idx...)
				case kindDraw < o.Predict+o.Similar:
					_, err = s.Similar(ctx, mode, row(mode), o.K)
				default:
					given := DefaultGiven(mode)
					_, err = s.TopK(ctx, mode, given, row(given), o.K)
				}
				switch {
				case err == nil:
					myLats = append(myLats, time.Since(t0))
				case ctx.Err() != nil:
					// The run was cancelled mid-request: not a failure of
					// the system under test.
				case errors.Is(err, ErrOverloaded):
					myShed++
				default:
					myErrs++
				}
			}
			mu.Lock()
			lats[c] = myLats
			totalErrs += myErrs
			totalShed += myShed
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	st := LoadStats{
		Clients:  o.Clients,
		Requests: len(all),
		Errors:   totalErrs,
		Shed:     totalShed,
		Elapsed:  elapsed,
		P50:      percentile(all, 0.50),
		P95:      percentile(all, 0.95),
		P99:      percentile(all, 0.99),
	}
	if elapsed > 0 {
		st.QPS = float64(len(all)) / elapsed.Seconds()
	}
	return st
}

// percentile returns the q-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
