package serve

import (
	"cstf/internal/ckpt"
	"cstf/internal/rng"
)

// WriteDemoCheckpoint synthesizes a deterministic rank-`rank` model over
// the given mode sizes and writes it to path in the shared checkpoint
// format — a stand-in for a trained model wherever a real serving stack
// needs booting without a training run (router smoke checks, demos).
// The factors are a pure function of (rank, iter, dims), so writing with
// iter+1 publishes a genuinely different "new version" for reload drills.
func WriteDemoCheckpoint(path string, rank, iter int, dims ...int) error {
	g := rng.New(rng.Hash64(uint64(rank), uint64(iter)))
	f := &ckpt.File{Algorithm: "demo", Rank: rank, Iter: iter, Dims: dims}
	for r := 0; r < rank; r++ {
		f.Lambda = append(f.Lambda, 0.5+g.Float64())
	}
	for _, d := range dims {
		data := make([]float64, d*rank)
		for i := range data {
			data[i] = g.Float64()
		}
		f.Factors = append(f.Factors, data)
	}
	return ckpt.Write(path, f)
}
