package serve

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"cstf/internal/ckpt"
	"cstf/internal/la"
	"cstf/internal/rng"
)

// randModel builds a small random model directly from factor matrices.
func randModel(t *testing.T, seed uint64, rank int, dims ...int) *Model {
	t.Helper()
	g := rng.New(seed)
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 0.5 + g.Float64()
	}
	var factors []*la.Dense
	for _, d := range dims {
		f := la.NewDense(d, rank)
		for i := range f.Data {
			f.Data[i] = g.Float64()*2 - 1
		}
		factors = append(factors, f)
	}
	m, err := NewModel(lambda, factors, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reconstruct evaluates the model at one coordinate by definition.
func reconstruct(m *Model, idx ...int) float64 {
	var s float64
	for r := 0; r < m.Rank; r++ {
		p := m.lambda[r]
		for n, i := range idx {
			p *= m.factors[n].At(i, r)
		}
		s += p
	}
	return s
}

func TestPredictMatchesDefinition(t *testing.T) {
	m := randModel(t, 1, 3, 5, 4, 6)
	g := rng.New(9)
	for trial := 0; trial < 50; trial++ {
		idx := []int{g.Intn(5), g.Intn(4), g.Intn(6)}
		got, err := m.Predict(idx...)
		if err != nil {
			t.Fatal(err)
		}
		want := reconstruct(m, idx...)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("Predict(%v)=%v want %v", idx, got, want)
		}
	}
}

func TestPredictValidates(t *testing.T) {
	m := randModel(t, 1, 2, 4, 3)
	if _, err := m.Predict(0); err == nil {
		t.Fatal("wrong order accepted")
	}
	if _, err := m.Predict(4, 0); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := m.Predict(0, -1); err == nil {
		t.Fatal("negative index accepted")
	}
}

// bruteTopK ranks candidates of `mode` by summing the full reconstruction
// over every coordinate combination of the unspecified modes — the
// brute-force ground truth the marginalized query vector must agree with.
func bruteTopK(m *Model, mode, given, row, k int) []Scored {
	var free []int // modes that are neither queried nor given
	for n := range m.Dims {
		if n != mode && n != given {
			free = append(free, n)
		}
	}
	scores := make([]Scored, m.Dims[mode])
	for j := 0; j < m.Dims[mode]; j++ {
		idx := make([]int, len(m.Dims))
		idx[mode], idx[given] = j, row
		var sum float64
		var walk func(d int)
		walk = func(d int) {
			if d == len(free) {
				sum += reconstruct(m, idx...)
				return
			}
			for v := 0; v < m.Dims[free[d]]; v++ {
				idx[free[d]] = v
				walk(d + 1)
			}
		}
		walk(0)
		scores[j] = Scored{Index: j, Score: sum}
	}
	sort.Slice(scores, func(a, b int) bool { return worse(scores[b], scores[a]) })
	if k < len(scores) {
		scores = scores[:k]
	}
	return scores
}

// Property test: heap-based marginalized TopK == brute-force reconstruction
// argsort, across random models, modes, and conditioning rows.
func TestTopKMatchesBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		var m *Model
		if seed%2 == 0 {
			m = randModel(t, seed, 2, 7, 5, 6, 4) // order 4
		} else {
			m = randModel(t, seed, 3, 8, 6, 5) // order 3
		}
		g := rng.New(seed * 77)
		for trial := 0; trial < 6; trial++ {
			mode := g.Intn(m.Order())
			given := g.Intn(m.Order())
			if given == mode {
				given = (given + 1) % m.Order()
			}
			row := g.Intn(m.Dims[given])
			k := 1 + g.Intn(m.Dims[mode])
			got, err := m.TopKGiven(mode, given, row, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTopK(m, mode, given, row, k)
			if len(got) != len(want) {
				t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
			}
			for i := range want {
				if got[i].Index != want[i].Index || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("seed %d mode %d given %d row %d k %d: rank %d got %+v want %+v",
						seed, mode, given, row, k, i, got[i], want[i])
				}
			}
		}
	}
}

// The short-form TopK conditions on the lowest other mode.
func TestTopKDefaultGiven(t *testing.T) {
	m := randModel(t, 3, 2, 6, 5, 4)
	a, err := m.TopK(1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.TopKGiven(1, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("TopK default given differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSimilarMatchesBruteForce(t *testing.T) {
	m := randModel(t, 5, 3, 20, 10)
	mode, row, k := 0, 7, 5
	got, err := m.Similar(mode, row, k)
	if err != nil {
		t.Fatal(err)
	}
	f := m.factors[mode]
	qn := la.VecNorm(f.Row(row))
	var want []Scored
	for j := 0; j < f.Rows; j++ {
		if j == row {
			continue
		}
		var s float64
		if n := la.VecNorm(f.Row(j)); n > 0 && qn > 0 {
			s = la.VecDot(f.Row(row), f.Row(j)) / (qn * n)
		}
		want = append(want, Scored{Index: j, Score: s})
	}
	sort.Slice(want, func(a, b int) bool { return worse(want[b], want[a]) })
	want = want[:k]
	for i := range want {
		if got[i].Index != want[i].Index || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("rank %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	for _, r := range got {
		if r.Index == row {
			t.Fatal("Similar returned the query row itself")
		}
		if r.Score > 1+1e-9 {
			t.Fatalf("cosine score %v > 1", r.Score)
		}
	}
}

// SliceNorm (via the precomputed cross-mode gram) must equal the explicit
// Frobenius norm of the predicted slice.
func TestSliceNormMatchesBruteForce(t *testing.T) {
	m := randModel(t, 6, 2, 5, 4, 3)
	for mode := 0; mode < 3; mode++ {
		for row := 0; row < m.Dims[mode]; row++ {
			got, err := m.SliceNorm(mode, row)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			idx := make([]int, 3)
			idx[mode] = row
			others := []int{}
			for n := 0; n < 3; n++ {
				if n != mode {
					others = append(others, n)
				}
			}
			for a := 0; a < m.Dims[others[0]]; a++ {
				for b := 0; b < m.Dims[others[1]]; b++ {
					idx[others[0]], idx[others[1]] = a, b
					v := reconstruct(m, idx...)
					sum += v * v
				}
			}
			want := math.Sqrt(sum)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("mode %d row %d: SliceNorm %v want %v", mode, row, got, want)
			}
		}
	}
}

// topKBatch must agree with the naive per-request scan for every query,
// for any worker count.
func TestTopKBatchMatchesNaive(t *testing.T) {
	m := randModel(t, 7, 4, 3000, 10)
	var qs [][]float64
	var ks []int
	g := rng.New(11)
	for i := 0; i < 9; i++ {
		qs = append(qs, m.queryVec(0, 1, g.Intn(10)))
		ks = append(ks, 1+g.Intn(20))
	}
	for _, workers := range []int{1, 4} {
		got := topKBatch(m.factors[0], qs, ks, nil, nil, nil, workers, 0, m.factors[0].Rows)
		for i := range qs {
			want := topKOne(m.factors[0], qs[i], ks[i], nil, -1, nil, 0, m.factors[0].Rows)
			if len(got[i]) != len(want) {
				t.Fatalf("workers %d query %d: %d results want %d", workers, i, len(got[i]), len(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("workers %d query %d rank %d: %+v want %+v", workers, i, j, got[i][j], want[j])
				}
			}
		}
	}
}

func TestLoadCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	cp := &ckpt.File{
		Algorithm: "serial", Rank: 2, Seed: 3, Iter: 4,
		Dims:   []int{3, 2},
		Lambda: []float64{2, 1},
		Fits:   []float64{0.1, 0.2, 0.3, 0.4},
		Factors: [][]float64{
			{1, 0, 0, 1, 1, 1},
			{0.5, 0.5, 1, 0},
		},
	}
	if err := ckpt.Write(path, cp); err != nil {
		t.Fatal(err)
	}
	m, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rank != 2 || m.Iter != 4 || len(m.Dims) != 2 {
		t.Fatalf("model identity wrong: %+v", m)
	}
	// entry (0,0): 2*1*0.5 + 1*0*0.5 = 1
	v, err := m.Predict(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("Predict(0,0)=%v want 1", v)
	}

	// A structurally invalid checkpoint must be rejected with a typed error.
	cp.Lambda = cp.Lambda[:1]
	if err := ckpt.Write(path, cp); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("invalid checkpoint accepted")
	}
}

func TestNewModelValidates(t *testing.T) {
	f := la.NewDense(3, 2)
	if _, err := NewModel(nil, []*la.Dense{f}, 1, 0); err == nil {
		t.Fatal("empty lambda accepted")
	}
	if _, err := NewModel([]float64{1, 2}, nil, 1, 0); err == nil {
		t.Fatal("no factors accepted")
	}
	if _, err := NewModel([]float64{1, 2, 3}, []*la.Dense{f}, 1, 0); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}
