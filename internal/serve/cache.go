package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies a ranked-query result. The model version is part of
// the key, so hot-reloading a newer checkpoint implicitly invalidates every
// cached result from the previous model — stale entries just stop being
// looked up and age out of the LRU order.
type cacheKey struct {
	version uint64
	kind    reqKind
	mode    int
	given   int
	row     int
	k       int
	lo, hi  int // candidate row range; (0, -1) = full mode
	// exclude is the canonical string form of the query's exclude set
	// (excludeKey): queries differing only in what they exclude must not
	// share a cached result. "" = no exclusions.
	exclude string
}

type cacheEntry struct {
	key cacheKey
	val []Scored
}

// lruCache is a bounded LRU of ranked results for the hot-row traffic that
// dominates recommender serving (Zipf-skewed row popularity). It is shared
// by direct and batched query paths, so a plain mutex guards it; the
// critical sections are pointer moves only.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[cacheKey]*list.Element
}

// newLRUCache returns a cache bounded at capacity entries; capacity <= 0
// returns nil, and a nil cache safely misses and drops every operation.
func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element, capacity)}
}

func (c *lruCache) get(k cacheKey) ([]Scored, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

func (c *lruCache) put(k cacheKey, v []Scored) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
