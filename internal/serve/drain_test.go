package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Drain must reject new queries with ErrDraining, finish every accepted
// one, and Resume must re-admit traffic — the replica-side half of the
// fleet's zero-drop rolling reload.
func TestDrainRejectsNewFinishesInflight(t *testing.T) {
	m := randModel(t, 3, 3, 400, 50, 30)
	s, err := New(m, Config{MaxWait: 5 * time.Millisecond, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Launch queries that will sit in the executor's MaxWait window, then
	// drain while they are in flight.
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.TopK(context.Background(), 0, 1, i, 5)
		}(i)
	}
	// Give the clients a moment to be accepted before draining.
	for s.Stats().Inflight == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	s.Drain()

	if !s.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	if got := s.Stats().Inflight; got != 0 {
		t.Fatalf("inflight %d after Drain returned", got)
	}
	wg.Wait()
	for i, err := range errs {
		// Accepted-before-drain queries must have succeeded; ones that
		// raced in after the flag flipped must be ErrDraining — never a
		// dropped or failed query.
		if err != nil && !errors.Is(err, ErrDraining) {
			t.Fatalf("query %d: %v", i, err)
		}
	}

	if _, err := s.TopK(context.Background(), 0, 1, 1, 5); !errors.Is(err, ErrDraining) {
		t.Fatalf("TopK while draining: %v, want ErrDraining", err)
	}
	if _, err := s.Predict(context.Background(), 1, 2, 3); !errors.Is(err, ErrDraining) {
		t.Fatalf("Predict while draining: %v, want ErrDraining", err)
	}
	if _, err := s.Similar(context.Background(), 0, 1, 5); !errors.Is(err, ErrDraining) {
		t.Fatalf("Similar while draining: %v, want ErrDraining", err)
	}

	s.Resume()
	if _, err := s.TopK(context.Background(), 0, 1, 1, 5); err != nil {
		t.Fatalf("TopK after Resume: %v", err)
	}
}

// A drained server can swap models and resume — the reload step of the
// rolling sequence — and queries after Resume see the new version.
func TestDrainReloadResume(t *testing.T) {
	m := randModel(t, 3, 3, 200, 40)
	s, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	v0 := s.Model().Version

	s.Drain()
	s.Swap(randModel(t, 4, 3, 200, 40))
	s.Resume()

	if got := s.Model().Version; got <= v0 {
		t.Fatalf("version %d after swap, want > %d", got, v0)
	}
	if _, err := s.TopK(context.Background(), 0, 1, 1, 5); err != nil {
		t.Fatalf("TopK after drain/swap/resume: %v", err)
	}
}
