package serve

import "time"

// timeIt returns the BEST of reps timings of fn — the standard way to
// compare kernels while shrugging off scheduler noise.
func timeIt(reps int, fn func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}
