package serve

import (
	"testing"

	"cstf/internal/la"
	"cstf/internal/rng"
)

// skewedModel builds a model whose factor row norms follow the power-law
// skew of real recommender factors (popular rows carry more mass) — the
// regime the norm-pruned index is built for. Entries are kept positive,
// matching trained factors on nonnegative interaction data.
func skewedModel(t *testing.T, seed uint64, rank int, dims ...int) *Model {
	t.Helper()
	g := rng.New(seed)
	lambda := make([]float64, rank)
	for r := range lambda {
		lambda[r] = 0.5 + g.Float64()
	}
	var factors []*la.Dense
	for _, d := range dims {
		f := la.NewDense(d, rank)
		z := rng.NewZipf(d, 0.9)
		// Per-row popularity scale: a Zipf draw per row, so norms decay
		// like a power law over rows (with plenty of near-ties).
		for i := 0; i < d; i++ {
			scale := 0.05 + 2.0/float64(1+z.Next(g))
			for r := 0; r < rank; r++ {
				f.Data[i*rank+r] = scale * (0.1 + g.Float64())
			}
		}
		factors = append(factors, f)
	}
	m, err := NewModel(lambda, factors, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The candidate order must be a permutation sorted by descending norm with
// ascending-index tie-breaks, identically on every build.
func TestApproxIndexDeterministicOrder(t *testing.T) {
	m := skewedModel(t, 3, 4, 800, 500)
	m.BuildApprox(1)
	again := skewedModel(t, 3, 4, 800, 500)
	again.BuildApprox(4)
	for n := range m.factors {
		idx := m.approx[n]
		seen := make(map[int32]bool, len(idx.order))
		for j, ri := range idx.order {
			if seen[ri] {
				t.Fatalf("mode %d: row %d appears twice", n, ri)
			}
			seen[ri] = true
			if j > 0 {
				prev := idx.order[j-1]
				np, nc := m.rowNorms[n][prev], m.rowNorms[n][ri]
				if np < nc || (np == nc && prev > ri) {
					t.Fatalf("mode %d: order violated at %d: (%d, %g) before (%d, %g)", n, j, prev, np, ri, nc)
				}
			}
			if idx.norms[j] != m.rowNorms[n][ri] {
				t.Fatalf("mode %d: cached norm mismatch at %d", n, j)
			}
		}
		for j := range idx.order {
			if idx.order[j] != again.approx[n].order[j] {
				t.Fatalf("mode %d: build not deterministic at %d (workers 1 vs 4)", n, j)
			}
		}
	}
}

// With the candidate cap disabled, the Cauchy–Schwarz cutoff alone must be
// EXACT: bitwise-identical results to the full scan, on both skewed and
// sign-mixed models (where the k-th best score can be negative and the
// cutoff never fires).
func TestApproxUncappedIsExact(t *testing.T) {
	for name, m := range map[string]*Model{
		"skewed": skewedModel(t, 5, 3, 2000, 300),
		"signed": randModel(t, 6, 3, 2000, 300),
	} {
		m.BuildApprox(0)
		g := rng.New(17)
		for trial := 0; trial < 40; trial++ {
			row, k := g.Intn(300), 1+g.Intn(25)
			exact, err := m.TopKGiven(0, 1, row, k)
			if err != nil {
				t.Fatal(err)
			}
			approx, err := m.TopKGivenApprox(0, 1, row, k, int(^uint(0)>>1))
			if err != nil {
				t.Fatal(err)
			}
			if len(exact) != len(approx) {
				t.Fatalf("%s: %d results want %d", name, len(approx), len(exact))
			}
			for i := range exact {
				if exact[i] != approx[i] {
					t.Fatalf("%s row %d k %d: result %d = %+v want %+v", name, row, k, i, approx[i], exact[i])
				}
			}
		}
	}
}

// recallAt measures |approx ∩ exact| / k for one query pair.
func recallAt(exact, approx []Scored) float64 {
	if len(exact) == 0 {
		return 1
	}
	want := make(map[int]bool, len(exact))
	for _, s := range exact {
		want[s.Index] = true
	}
	hit := 0
	for _, s := range approx {
		if want[s.Index] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// The serving guarantee: under the default candidate budget, recall@K
// averaged over many queries stays at or above 0.95 on norm-skewed models
// — while scanning far less than the full mode.
func TestApproxRecallAtLeast95(t *testing.T) {
	m := skewedModel(t, 11, 8, 20000, 400)
	m.BuildApprox(0)
	g := rng.New(23)
	const trials = 200
	var recall float64
	scanned, exact := 0, 0
	for trial := 0; trial < trials; trial++ {
		row, k := g.Intn(400), 10
		want, err := m.TopKGiven(0, 1, row, k)
		if err != nil {
			t.Fatal(err)
		}
		q := m.queryVec(0, 1, row)
		got, n := approxTopK(m.factors[0], q, k, nil, m.approx[0], DefaultApproxCandidates)
		recall += recallAt(want, got)
		scanned += n
		exact += m.Dims[0]
	}
	recall /= trials
	frac := float64(scanned) / float64(exact)
	t.Logf("recall@10 = %.4f, scanned %.1f%% of rows", recall, 100*frac)
	if recall < 0.95 {
		t.Fatalf("recall@10 = %.4f below 0.95", recall)
	}
	if frac > 0.5 {
		t.Fatalf("approx scan covered %.0f%% of rows — pruning is not engaging", 100*frac)
	}
}

// The fallback contract: a model without a built index answers approx
// queries exactly via the blocked scan.
func TestApproxFallsBackWithoutIndex(t *testing.T) {
	m := randModel(t, 8, 3, 500, 60)
	got, err := m.TopKGivenApprox(0, 1, 7, 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.TopKGiven(0, 1, 7, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback diverged at %d: %+v want %+v", i, got[i], want[i])
		}
	}
}

// Invalid arguments surface the same typed errors as the exact path.
func TestApproxValidation(t *testing.T) {
	m := randModel(t, 9, 2, 40, 30)
	m.BuildApprox(0)
	if _, err := m.TopKGivenApprox(0, 0, 1, 5, 0); err == nil {
		t.Fatal("conditioning mode == queried mode accepted")
	}
	if _, err := m.TopKGivenApprox(0, 1, 99, 5, 0); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if _, err := m.TopKGivenApprox(0, 1, 1, 0, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
	if _, err := m.TopKApprox(7, 1, 5, 0); err == nil {
		t.Fatal("bad mode accepted")
	}
}
