package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cstf/internal/ckpt"
	"cstf/internal/la"
	"cstf/internal/rng"
)

func testServer(t *testing.T, cfg Config) (*Server, *Model) {
	t.Helper()
	m := randModel(t, 42, 3, 400, 300, 200)
	s, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, m
}

// Concurrent batched queries must return exactly what the model answers
// directly.
func TestServerAnswersMatchModel(t *testing.T) {
	s, m := testServer(t, Config{})
	ctx := context.Background()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := rng.New(uint64(c))
			for i := 0; i < 25; i++ {
				mode := g.Intn(3)
				given := m.defaultGiven(mode)
				row := g.Intn(m.Dims[given])
				k := 1 + g.Intn(10)
				got, err := s.TopK(ctx, mode, given, row, k)
				if err != nil {
					errCh <- err
					return
				}
				want, err := m.TopKGiven(mode, given, row, k)
				if err != nil {
					errCh <- err
					return
				}
				for j := range want {
					if got[j] != want[j] {
						errCh <- errors.New("batched TopK differs from direct model answer")
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TopKs == 0 || st.Batches == 0 {
		t.Fatalf("no batched execution recorded: %+v", st)
	}
}

func TestServerPredictAndSimilar(t *testing.T) {
	s, m := testServer(t, Config{})
	ctx := context.Background()
	got, err := s.Predict(ctx, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m.Predict(1, 2, 3)
	if got != want {
		t.Fatalf("Predict %v want %v", got, want)
	}
	sim, err := s.Similar(ctx, 0, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantSim, _ := m.Similar(0, 5, 4)
	for i := range wantSim {
		if sim[i] != wantSim[i] {
			t.Fatalf("Similar differs at %d", i)
		}
	}
}

// The result cache must hit on repeats and be invalidated by a model swap.
func TestCacheHitsAndVersioning(t *testing.T) {
	s, _ := testServer(t, Config{CacheSize: 64})
	ctx := context.Background()
	if _, err := s.TopK(ctx, 1, 0, 7, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.TopK(ctx, 1, 0, 7, 5); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("want 1 cache hit, got %+v", st)
	}
	// Swap in a fresh model: same query must MISS (new version in the key).
	s.Swap(randModel(t, 43, 3, 400, 300, 200))
	if _, err := s.TopK(ctx, 1, 0, 7, 5); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Fatalf("stale cache served across reload: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	k := func(row int) cacheKey { return cacheKey{version: 1, kind: kindTopK, row: row, k: 1} }
	c.put(k(1), []Scored{{1, 1}})
	c.put(k(2), []Scored{{2, 2}})
	if _, ok := c.get(k(1)); !ok { // touch 1 → 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), nil) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry not evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d want 2", c.len())
	}
	// nil cache is inert
	var nilCache *lruCache
	nilCache.put(k(1), nil)
	if _, ok := nilCache.get(k(1)); ok || nilCache.len() != 0 {
		t.Fatal("nil cache misbehaved")
	}
}

// A full queue must shed immediately with ErrOverloaded, not block. The
// server is built via newServer — executor deliberately NOT running — so the
// queue can be filled deterministically regardless of scheduler and core
// count (with a live executor on a single-P runtime, submissions serialize
// and the queue never overflows).
func TestLoadShedding(t *testing.T) {
	m := randModel(t, 1, 3, 50, 40, 30)
	s, err := newServer(m, Config{QueueDepth: 2, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // fill the bounded queue; nothing consumes it
		s.reqs <- &request{kind: kindTopK, mode: 0, given: 1, row: i, k: 5,
			ctx: context.Background(), out: make(chan result, 1)}
	}
	_, err = s.TopK(context.Background(), 0, 1, 3, 5)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded from a full queue, got %v", err)
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// Shedding must be non-destructive: once the queue has room again, the
	// same request goes through (start the executor now to prove it).
	<-s.reqs
	<-s.reqs
	s.done.Add(1)
	go s.dispatch()
	defer s.Close()
	if _, err := s.TopK(context.Background(), 0, 1, 3, 5); err != nil {
		t.Fatalf("request after shedding failed: %v", err)
	}
}

// A server-level timeout must surface context.DeadlineExceeded.
func TestRequestTimeout(t *testing.T) {
	m := randModel(t, 2, 4, 120000, 40)
	s, err := New(m, Config{Timeout: time.Nanosecond, MaxBatch: 1, CacheSize: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.TopK(context.Background(), 0, 1, 3, 5)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if s.Stats().Timeouts == 0 {
		t.Fatal("timeout counter not incremented")
	}
}

func TestClosedServerRejects(t *testing.T) {
	s, _ := testServer(t, Config{})
	s.Close()
	if _, err := s.TopK(context.Background(), 0, 1, 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := s.Predict(context.Background(), 0, 0, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func writeTestCheckpoint(t *testing.T, path string, seed uint64, iter int) {
	t.Helper()
	g := rng.New(seed)
	rank := 3
	dims := []int{50, 40, 30}
	cp := &ckpt.File{Algorithm: "serial", Rank: rank, Seed: seed, Iter: iter, Dims: dims,
		Lambda: []float64{3, 2, 1}, Fits: make([]float64, iter)}
	for _, d := range dims {
		data := make([]float64, d*rank)
		for i := range data {
			data[i] = g.Float64()
		}
		cp.Factors = append(cp.Factors, data)
	}
	if err := ckpt.Write(path, cp); err != nil {
		t.Fatal(err)
	}
}

// Hot reload under fire: queries run concurrently with checkpoint
// overwrites and watcher-driven swaps; nothing may fail, and the version
// must advance. Run with -race in CI.
func TestHotReloadUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	writeTestCheckpoint(t, path, 1, 1)
	m, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Watch(ctx, path, time.Millisecond)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := rng.New(uint64(c))
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				switch g.Intn(3) {
				case 0:
					_, err = s.Predict(ctx, g.Intn(50), g.Intn(40), g.Intn(30))
				case 1:
					_, err = s.TopK(ctx, 1, 0, g.Intn(50), 5)
				default:
					_, err = s.Similar(ctx, 2, g.Intn(30), 5)
				}
				if err != nil && !errors.Is(err, ErrOverloaded) {
					t.Errorf("query failed during reload: %v", err)
					return
				}
			}
		}(c)
	}
	// Overwrite the checkpoint several times while queries are in flight.
	for i := 2; i <= 6; i++ {
		writeTestCheckpoint(t, path, uint64(i), i)
		time.Sleep(5 * time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Reloads == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	st := s.Stats()
	if st.Reloads == 0 {
		t.Fatal("watcher never reloaded the overwritten checkpoint")
	}
	if st.ReloadErrors != 0 {
		t.Fatalf("reload errors: %+v", st)
	}
	if got := s.Model().Version; got < 2 {
		t.Fatalf("model version %d never advanced", got)
	}
}

// Reload of a corrupt file must keep the old model serving.
func TestReloadKeepsOldModelOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	writeTestCheckpoint(t, path, 1, 1)
	m, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Model().Version
	if err := s.Reload(filepath.Join(dir, "missing.ckpt")); err == nil {
		t.Fatal("reload of missing file succeeded")
	}
	if s.Model().Version != before {
		t.Fatal("failed reload swapped the model")
	}
	if s.Stats().ReloadErrors != 1 {
		t.Fatalf("reload error not counted: %+v", s.Stats())
	}
	if _, err := s.TopK(context.Background(), 0, 1, 3, 5); err != nil {
		t.Fatalf("old model stopped serving after failed reload: %v", err)
	}
}

func TestRunLoad(t *testing.T) {
	s, _ := testServer(t, Config{})
	st := RunLoad(context.Background(), s, LoadOptions{Clients: 4, Requests: 400, Seed: 7})
	if st.Errors != 0 {
		t.Fatalf("load run had %d errors", st.Errors)
	}
	if st.Requests == 0 || st.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", st)
	}
	if st.P99 < st.P50 {
		t.Fatalf("percentiles inverted: %+v", st)
	}
}

func TestServerValidatesRequests(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	cases := []error{}
	_, err := s.TopK(ctx, 9, 0, 0, 5) // bad mode
	cases = append(cases, err)
	_, err = s.TopK(ctx, 0, 0, 0, 5) // given == mode
	cases = append(cases, err)
	_, err = s.TopK(ctx, 0, 1, 999999, 5) // bad row
	cases = append(cases, err)
	_, err = s.TopK(ctx, 0, 1, 0, 0) // bad k
	cases = append(cases, err)
	_, err = s.Similar(ctx, 0, -1, 5) // bad row
	cases = append(cases, err)
	for i, err := range cases {
		if err == nil {
			t.Fatalf("invalid request %d accepted", i)
		}
	}
	if s.Stats().BadRequest == 0 {
		t.Fatal("bad requests not counted")
	}
}

// la.GatherRows round-trips batched reconstruction inputs; exercised here
// against the model's factors to keep the helper honest end to end.
func TestGatherRowsOnFactors(t *testing.T) {
	m := randModel(t, 4, 2, 30, 20)
	rows := []int{0, 29, 7}
	g := la.GatherRows(m.Factor(0), rows)
	for o, i := range rows {
		if la.VecMaxAbsDiff(g.Row(o), m.Factor(0).Row(i)) != 0 {
			t.Fatalf("gathered factor row %d differs", i)
		}
	}
}

// TestReloadFallsBackToRetainedVersion corrupts the live checkpoint while
// intact retained versions (as stream.Publisher writes them) sit next to
// it: Reload must detect the corruption via the checksum, serve the newest
// intact version instead, and count the fallback for /healthz.
func TestReloadFallsBackToRetainedVersion(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	writeTestCheckpoint(t, path, 1, 1)
	m, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var logged bool
	s, err := New(m, Config{Logf: func(string, ...any) { logged = true }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Retained versions 2 and 3; version 3 is also corrupt, so the
	// fallback must land on 2.
	writeTestCheckpoint(t, ckpt.VersionPath(path, 2), 2, 2)
	writeTestCheckpoint(t, ckpt.VersionPath(path, 3), 3, 3)
	corrupt := func(p string) {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeTestCheckpoint(t, path, 4, 4) // the damaged "latest"
	corrupt(path)
	corrupt(ckpt.VersionPath(path, 3))

	if err := s.Reload(path); err != nil {
		t.Fatalf("reload with intact retained version failed: %v", err)
	}
	if got := s.Model().Iter; got != 2 {
		t.Fatalf("serving iter %d, want retained version 2", got)
	}
	st := s.Stats()
	if st.ReloadFallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", st)
	}
	if st.ReloadErrors != 0 {
		t.Fatalf("successful fallback counted as error: %+v", st)
	}
	if !logged {
		t.Fatal("fallback was not logged")
	}

	// With every retained version also corrupt, the reload fails and the
	// previous model keeps serving.
	corrupt(ckpt.VersionPath(path, 2))
	before := s.Model().Version
	if err := s.Reload(path); err == nil {
		t.Fatal("reload succeeded with everything corrupt")
	}
	if s.Model().Version != before {
		t.Fatal("failed reload swapped the model")
	}
	if s.Stats().ReloadErrors != 1 {
		t.Fatalf("exhausted fallback not counted as error: %+v", s.Stats())
	}
}
