package serve

import (
	"math"
	"sort"
)

// Scored is one ranked result: a row index of the queried mode and its
// score (predicted interaction for TopK, cosine similarity for Similar).
type Scored struct {
	Index int     `json:"index"`
	Score float64 `json:"score"`
}

func sqrt(x float64) float64 { return math.Sqrt(x) }

// topKHeap is a bounded min-heap of the best k candidates seen so far: the
// root is the WORST kept item, so a new candidate only enters if it beats
// the root. Ordering is (score, then larger-index-is-worse), which makes
// the kept set — and therefore the final ranking — deterministic under
// score ties regardless of scan or merge order.
type topKHeap []Scored

// worse reports whether a ranks strictly worse than b.
func worse(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.Index > b.Index
}

// pushK offers a candidate to a heap bounded at k items.
func (h *topKHeap) pushK(k int, it Scored) {
	s := *h
	if len(s) < k {
		s = append(s, it)
		// sift up
		i := len(s) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(s[i], s[p]) {
				break
			}
			s[i], s[p] = s[p], s[i]
			i = p
		}
		*h = s
		return
	}
	if k == 0 || !worse(s[0], it) {
		return
	}
	s[0] = it
	// sift down
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && worse(s[l], s[min]) {
			min = l
		}
		if r < len(s) && worse(s[r], s[min]) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// sorted returns the heap's items best-first (descending score, ascending
// index on ties), consuming nothing — the heap slice is sorted in place and
// returned.
func (h topKHeap) sorted() []Scored {
	out := []Scored(h)
	sort.Slice(out, func(a, b int) bool { return worse(out[b], out[a]) })
	return out
}

// MergeTopK merges partial rankings — each sorted or unsorted, typically
// one per row-range shard — into the best k overall, under the same total
// order every scan uses (descending score, ascending index on ties). A
// fleet router that splits a mode into disjoint row ranges, asks one
// replica per range for its partial top k, and merges here gets a result
// bitwise-identical to a single-node full scan.
func MergeTopK(k int, partials ...[]Scored) []Scored {
	var h topKHeap
	for _, p := range partials {
		for _, it := range p {
			h.pushK(k, it)
		}
	}
	return h.sorted()
}
