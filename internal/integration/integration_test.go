// Package integration holds cross-module end-to-end scenarios: every
// dataset through every solver, file-format round trips through the public
// API, and long-haul determinism checks. These are the tests a release
// would gate on.
package integration

import (
	"math"
	"path/filepath"
	"testing"

	"cstf"
	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/workload"
)

// Every Table 5 dataset, decomposed by every applicable solver, must agree
// with the serial reference on the final fit.
func TestAllDatasetsAllSolversAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration sweep")
	}
	const scale = 2e-5
	for _, cfg := range workload.Datasets() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			x, err := cstf.Dataset(cfg.Name, scale)
			if err != nil {
				t.Fatal(err)
			}
			opts := cstf.Options{Rank: 2, MaxIters: 2, NoConvergenceCheck: true, Seed: 77, Nodes: 4}

			ref, err := cstf.Decompose(x, withAlgo(opts, cstf.Serial))
			if err != nil {
				t.Fatal(err)
			}
			algos := []cstf.Algorithm{cstf.COO, cstf.QCOO}
			if cfg.Order() == 3 {
				algos = append(algos, cstf.BigTensor)
			}
			for _, algo := range algos {
				dec, err := cstf.Decompose(x, withAlgo(opts, algo))
				if err != nil {
					t.Fatalf("%s: %v", algo, err)
				}
				if math.Abs(dec.Fit()-ref.Fit()) > 1e-6 {
					t.Fatalf("%s fit %v != serial %v", algo, dec.Fit(), ref.Fit())
				}
			}
		})
	}
}

func withAlgo(o cstf.Options, a cstf.Algorithm) cstf.Options {
	o.Algorithm = a
	return o
}

// A tensor written as gzip-compressed FROSTT text and as CSTFBIN1 binary
// must decompose to identical results through the public API.
func TestFileFormatsProduceIdenticalDecompositions(t *testing.T) {
	dir := t.TempDir()
	x := cstf.ZipfTensor(3, 2000, 0.7, 200, 150, 100)

	gzPath := filepath.Join(dir, "x.tns.gz")
	binPath := filepath.Join(dir, "x.bin")
	if err := x.Save(gzPath); err != nil {
		t.Fatal(err)
	}
	if err := x.SaveBinary(binPath); err != nil {
		t.Fatal(err)
	}
	fromGz, err := cstf.LoadTensor(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := cstf.LoadBinaryTensor(binPath)
	if err != nil {
		t.Fatal(err)
	}
	opts := cstf.Options{Algorithm: cstf.QCOO, Rank: 2, MaxIters: 2, NoConvergenceCheck: true, Seed: 5, Nodes: 2}
	a, err := cstf.Decompose(fromGz, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cstf.Decompose(fromBin, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The .tns text path loses precision to %g formatting, so compare fits
	// loosely and structure exactly.
	if math.Abs(a.Fit()-b.Fit()) > 1e-4 {
		t.Fatalf("fits diverge across formats: %v vs %v", a.Fit(), b.Fit())
	}
	if a.Rank() != b.Rank() || len(a.Factors) != len(b.Factors) {
		t.Fatal("structure diverges across formats")
	}
}

// The same decomposition run twice must be bit-identical (full-stack
// determinism: generators, partitioning, iteration order, cost model).
func TestEndToEndDeterminism(t *testing.T) {
	x, err := cstf.Dataset("flickr", 2e-5)
	if err != nil {
		t.Fatal(err)
	}
	opts := cstf.Options{Algorithm: cstf.QCOO, Rank: 3, MaxIters: 2, NoConvergenceCheck: true, Seed: 9, Nodes: 4}
	a, err := cstf.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cstf.Decompose(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fit() != b.Fit() {
		t.Fatalf("fits differ across runs: %v vs %v", a.Fit(), b.Fit())
	}
	if a.Metrics.SimSeconds != b.Metrics.SimSeconds {
		t.Fatalf("modeled times differ across runs: %v vs %v",
			a.Metrics.SimSeconds, b.Metrics.SimSeconds)
	}
	if a.Metrics.RemoteBytes != b.Metrics.RemoteBytes {
		t.Fatal("shuffle metrics differ across runs")
	}
	for n := range a.Factors {
		for i := 0; i < a.Factors[n].Rows(); i++ {
			for j := 0; j < a.Factors[n].Cols(); j++ {
				if a.Factors[n].At(i, j) != b.Factors[n].At(i, j) {
					t.Fatalf("factor %d differs at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

// CSF and COO kernels inside a full serial CP-ALS: swapping the MTTKRP
// kernel must not change the solve (independent-implementations check at
// the algorithm level rather than the kernel level).
func TestSerialSolveMatchesCSFKernelSolve(t *testing.T) {
	cfg, err := workload.ByName("delicious3d")
	if err != nil {
		t.Fatal(err)
	}
	x := cfg.Generate(2e-5)
	opts := cpals.Options{Rank: 2, MaxIters: 3, Seed: 13}
	ref, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-rolled CP-ALS using the CSF kernel.
	order := x.Order()
	rank := opts.Rank
	factors := make([]*la.Dense, order)
	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		factors[n] = cpals.InitFactor(opts.Seed, n, x.Dims[n], rank)
		grams[n] = factors[n].Gram()
	}
	csfs := cpals.BuildCSFs(x)
	var lambda []float64
	for it := 0; it < opts.MaxIters; it++ {
		for n := 0; n < order; n++ {
			m := cpals.MTTKRPCSF(csfs[n], factors)
			pinv := la.Pinv(cpals.HadamardOfGramsExcept(grams, n))
			a := factors[n]
			for i := 0; i < a.Rows; i++ {
				la.VecMatInto(a.Row(i), m.Row(i), pinv)
			}
			lambda = a.NormalizeColumns()
			grams[n] = a.Gram()
		}
	}
	if la.VecMaxAbsDiff(lambda, ref.Lambda) > 1e-7*(1+la.VecNorm(ref.Lambda)) {
		t.Fatalf("lambda: CSF-kernel ALS %v vs reference %v", lambda, ref.Lambda)
	}
	for n := range factors {
		if d := la.MaxAbsDiff(factors[n], ref.Factors[n]); d > 1e-7 {
			t.Fatalf("factor %d differs by %g between kernels", n, d)
		}
	}
}
