package dist

import (
	"sync"
	"testing"

	"cstf/internal/chaos"
	"cstf/internal/cpals"
	"cstf/internal/tensor"
)

// sparseTensor is large-dimensioned relative to its nonzero count, so each
// worker's touched-row sets are a small fraction of every mode and delta
// broadcasts genuinely engage (on plantedTensor's tiny dims every worker
// touches every row and the size heuristic falls back to full sends).
func sparseTensor() *tensor.COO {
	return tensor.GenLowRank(11, 2000, 4, 0.01, 3000, 2500, 2000)
}

func sparseOpts() cpals.Options {
	return cpals.Options{Rank: 4, MaxIters: 4, Seed: 9, Parallelism: 2}
}

// TestToggleMatrixBitwise runs every combination of the delta-broadcast and
// pipelining toggles at 4 workers. All four must be bitwise identical to
// the serial solver; the delta runs must actually send delta frames and
// strictly less factor traffic than the full-broadcast runs.
func TestToggleMatrixBitwise(t *testing.T) {
	x := sparseTensor()
	opts := sparseOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	var deltaBytes, fullBytes int64
	for _, cb := range []struct {
		label           string
		noDelta, noPipe bool
	}{
		{"delta+pipeline", false, false},
		{"delta only", false, true},
		{"pipeline only", true, false},
		{"neither", true, true},
	} {
		c, err := StartInProcess(4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := c.Config()
		cfg.NoDelta, cfg.NoPipeline = cb.noDelta, cb.noPipe
		got, stats, err := Solve(x, opts, cfg)
		c.Close()
		if err != nil {
			t.Fatalf("%s: %v", cb.label, err)
		}
		sameBits(t, cb.label, want, got)
		if cb.noDelta {
			if stats.DeltaFrames != 0 {
				t.Fatalf("%s: %d delta frames with deltas disabled", cb.label, stats.DeltaFrames)
			}
			fullBytes = stats.FactorBytes
		} else {
			if stats.DeltaFrames == 0 {
				t.Fatalf("%s: no delta frames sent: %+v", cb.label, stats)
			}
			deltaBytes = stats.FactorBytes
		}
		if stats.FactorBytes == 0 || stats.ShardBytes == 0 {
			t.Fatalf("%s: traffic breakdown missing: %+v", cb.label, stats)
		}
	}
	if deltaBytes >= fullBytes {
		t.Fatalf("delta broadcasts did not reduce factor traffic: %d >= %d bytes", deltaBytes, fullBytes)
	}
}

// TestCSFKernelBitwiseMatchesSerialCSF checks the distributed CSF path
// against its own serial reference: dist with UseCSF reproduces
// cpals.Solve with CSFKernel bit for bit at every worker count. (The CSF
// kernel is NOT bitwise against the COO kernel — different association of
// the same sums — which is exactly why it carries its own reference.)
func TestCSFKernelBitwiseMatchesSerialCSF(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	opts.CSFKernel = true
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		c, err := StartInProcess(n)
		if err != nil {
			t.Fatal(err)
		}
		cfg := c.Config()
		cfg.UseCSF = true
		got, _, err := Solve(x, opts, cfg)
		c.Close()
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		sameBits(t, "csf workers", want, got)
	}
}

// TestChaosReassignmentResyncsFullFactor kills a worker mid-run with delta
// broadcasts active. The substitute inherits the dead worker's tasks and
// touched-row sets; because its resident factors are stale for the
// inherited rows, the coordinator must resync it with FULL factor frames
// (never a delta against state it was not sent) — and the run still
// matches serial bit for bit.
func TestChaosReassignmentResyncsFullFactor(t *testing.T) {
	x := sparseTensor()
	opts := sparseOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	// Stage 4 is iteration 0's second MTTKRP: by then every factor has
	// been updated at least once, so the substitute is guaranteed stale.
	cfg.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.NodeCrash, Node: 1, Stage: 4})
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "chaos + deltas", want, got)
	if stats.WorkerDeaths != 1 {
		t.Fatalf("want one dead worker, got %+v", stats)
	}
	if stats.DeltaFrames == 0 {
		t.Fatalf("delta broadcasts never engaged: %+v", stats)
	}
	if stats.Resyncs == 0 {
		t.Fatalf("substitute worker was never resynced with a full factor: %+v", stats)
	}
}

// TestMidFlightKillWithDeltas is the in-flight reassignment path (kill
// AFTER dispatch) under delta broadcasts + pipelining: tasks already on
// the dead worker's socket are re-dispatched to a substitute that needs a
// resync, and the result still matches serial bit for bit.
func TestMidFlightKillWithDeltas(t *testing.T) {
	x := sparseTensor()
	opts := sparseOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	var once sync.Once
	cfg.AfterDispatch = func(stage uint64) {
		if stage == 5 {
			once.Do(func() { c.Kills[2]() })
		}
	}
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "mid-flight kill + deltas", want, got)
	if stats.WorkerDeaths != 1 || stats.Reassignments == 0 {
		t.Fatalf("want one death with reassignments, got %+v", stats)
	}
}
