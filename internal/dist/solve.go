package dist

import (
	"errors"
	"fmt"
	"math"
	"time"

	"cstf/internal/chaos"
	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/tensor"
)

// Solve runs CP-ALS with the compute stages executed on remote workers. It
// mirrors cpals.Solve stage for stage — same initialization, same update
// order, same reduction trees — so the returned factorization is bitwise
// identical to the single-process solver for every worker count and every
// task placement, including placements forced by worker deaths. (With
// Config.UseCSF the reference is the single-process CSF solver — cpals
// Options.CSFKernel — not the COO one; see the Config docs.)
//
// The returned Stats are real measurements (wall clock, bytes on sockets),
// populated even when the solve fails partway.
//
// Fleet collapse — every remaining stage target dead, or the live count
// under Config.MinWorkers at an iteration boundary — does not fail the
// run unless MinWorkers is negative: the coordinator holds the complete
// solver state, so it degrades to a local cpals.Solve from its last
// iteration-boundary snapshot. ALS is deterministic, so the degraded
// result is bitwise identical to the distributed one.
func Solve(t *tensor.COO, opts cpals.Options, cfg Config) (*cpals.Result, Stats, error) {
	start := time.Now()
	if err := opts.Validate(t); err != nil {
		return nil, Stats{}, err
	}
	s, err := NewSession(t, opts.Rank, cfg)
	if err != nil {
		return nil, Stats{WallSeconds: time.Since(start).Seconds()}, err
	}
	defer s.Close()
	res, err := s.solve(opts)

	var nw *NoWorkersError
	if errors.As(err, &nw) && s.cfg.MinWorkers >= 0 && s.snap != nil {
		s.logf("dist: %v; degrading to coordinator-local solve from iteration %d", err, s.snap.iter)
		s.stats.Degraded = true
		lo := opts
		lo.StartIter = s.snap.iter
		lo.InitFactors = s.snap.factors
		lo.InitLambda = s.snap.lambda
		if len(lo.InitLambda) == 0 {
			// Collapse during iteration 0: no normalization has produced a
			// lambda yet. The local solver overwrites it before any read but
			// validates its length, so hand it a zero vector.
			lo.InitLambda = make([]float64, opts.Rank)
		}
		lo.InitFits = s.snap.fits
		lo.CSFKernel = s.cfg.UseCSF
		res, err = cpals.Solve(t, lo)
	}

	st := s.Stats()
	st.WallSeconds = time.Since(start).Seconds()
	return res, st, err
}

// snapshot is the coordinator's complete solver state at an iteration
// boundary — everything a local solve needs to finish the job bitwise
// identically after fleet collapse.
type snapshot struct {
	iter    int
	lambda  []float64
	factors []*la.Dense
	fits    []float64
}

// rowsView is a zero-copy view of rows [lo, hi) of m.
func rowsView(m *la.Dense, lo, hi int) *la.Dense {
	return &la.Dense{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// blockChunks cuts nb par.BlockSize blocks into at most parts contiguous
// chunks; chunk k is [k*nb/parts, (k+1)*nb/parts). Empty chunks are kept
// (callers skip them) so the chunk index doubles as the home worker slot.
func blockChunk(k, nb, parts int) (lo, hi int) {
	return k * nb / parts, (k + 1) * nb / parts
}

// The coordinator loop. Stages are BEGUN in the exact sequence the
// pre-pipelined runtime used — per mode: MTTKRP, row solve, gram; fit
// last — so chaos-plan stage numbers mean the same thing. What overlaps
// is the waiting: mode n's partial-gram reduce is awaited only after mode
// n+1's MTTKRP has been begun (and the iteration's fit is begun before
// the last gram is awaited), so the gram round trips hide behind the most
// expensive stage instead of adding to it. Results are applied in fixed
// block order after each await, so completion order never touches the
// arithmetic and the bitwise guarantee is preserved.
func (s *Session) solve(opts cpals.Options) (*cpals.Result, error) {
	t := s.t
	order := t.Order()
	rank := opts.Rank
	w := opts.Workers() // coordinator-local kernels (init, pinv, normalize)
	W := len(s.remotes) // worker slots; partition frozen at session start

	// Partition every mode once. The cut points depend only on (tensor, W),
	// so re-runs — and reassignments within a run — see identical tasks.
	ranges := make([][]tensor.NNZRange, order)
	for m := 0; m < order; m++ {
		ranges[m] = t.ModeIndex(m).Ranges(W)
	}

	// Freeze the communication plan: which factor rows each worker's
	// resident work reads, hence what each delta broadcast must carry.
	s.InitComms(ranges)

	// Ship each worker its shards: range k of every mode lives on slot k.
	// A failed send marks the worker dead; the MTTKRP prep hook re-ships
	// from the coordinator's resident tensor wherever the task lands.
	for m := 0; m < order; m++ {
		for k, rg := range ranges[m] {
			r := s.remotes[k]
			if !r.alive.Load() {
				continue
			}
			s.sendShard(r, s.buildShard(m, rg))
		}
	}

	// Deterministic initialization + initial grams, exactly as the serial
	// solver computes them (elementwise init; block-ordered gram sums).
	// The first FactorUpdate per mode is always a full broadcast — it also
	// seeds the per-worker last-sent snapshots deltas diff against.
	factors := make([]*la.Dense, order)
	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		if opts.InitFactors != nil {
			factors[n] = opts.InitFactors[n].Clone()
		} else {
			factors[n] = cpals.InitFactor(opts.Seed, n, t.Dims[n], rank)
		}
		grams[n] = la.GramParallel(factors[n], w)
		s.FactorUpdate(n, factors[n])
	}
	// Rejoining workers are brought current from these live matrices.
	s.TrackFactors(factors)

	normX := t.Norm()
	res := &cpals.Result{Factors: factors, Iters: opts.StartIter}
	res.Fits = append(res.Fits, opts.InitFits...)
	lambda := la.VecClone(opts.InitLambda)
	var lastM *la.Dense

	// The in-flight gram reduce, when pipelining is on.
	var pendingGram *gramRun
	pendingMode := -1
	awaitPending := func() error {
		if pendingGram == nil {
			return nil
		}
		g, err := s.awaitGram(pendingGram)
		if err != nil {
			return err
		}
		grams[pendingMode] = g
		pendingGram = nil
		return nil
	}

	for it := opts.StartIter; it < opts.MaxIters; it++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		// Iteration-boundary snapshot: factors at iteration start fully
		// determine the rest of the solve, so fleet collapse anywhere in
		// this iteration degrades to a local solve from here — bitwise
		// identical, because ALS is deterministic. Also the point where
		// the configured live-worker floor is enforced.
		if floor := s.minWorkers(); floor >= 0 {
			s.snap = &snapshot{
				iter:    it,
				lambda:  la.VecClone(lambda),
				fits:    append([]float64(nil), res.Fits...),
				factors: make([]*la.Dense, order),
			}
			for n := range factors {
				s.snap.factors[n] = factors[n].Clone()
			}
			if live := s.Alive(); live < floor {
				return nil, &NoWorkersError{Stage: s.stageSeq, Live: live, Floor: floor}
			}
		}
		for n := 0; n < order; n++ {
			mtt := s.beginMTTKRP(n, ranges[n], rank, factors)
			if err := awaitPending(); err != nil {
				return nil, err
			}
			m, computedBy, err := s.awaitMTTKRP(mtt)
			if err != nil {
				return nil, err
			}
			pinv := la.Pinv(cpals.HadamardOfGramsExcept(grams, n))
			if err := s.rowSolveStage(n, ranges[n], pinv, m, computedBy, factors[n]); err != nil {
				return nil, err
			}
			lambda = la.NormalizeColumnsParallel(factors[n], w)
			s.FactorUpdate(n, factors[n])
			pg := s.beginGram(n, factors[n], rank, W, w)
			if s.cfg.NoPipeline {
				if grams[n], err = s.awaitGram(pg); err != nil {
					return nil, err
				}
			} else {
				pendingGram, pendingMode = pg, n
			}
			lastM = m
		}
		res.Iters = it + 1
		fr := s.beginFit(order-1, lastM, lambda, W, w, factors)
		if err := awaitPending(); err != nil {
			return nil, err
		}
		inner, err := s.awaitFit(fr)
		if err != nil {
			return nil, err
		}
		fit := cpals.FitFromInner(normX, inner, lambda, grams)
		res.Fits = append(res.Fits, fit)
		if opts.OnIteration != nil && opts.OnIteration(it, fit) {
			break
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && (it+1)%opts.CheckpointEvery == 0 {
			if err := opts.OnCheckpoint(it+1, lambda, factors, res.Fits); err != nil {
				return nil, err
			}
			// A scheduled TornWrite fires right after the checkpoint
			// callback: the hook damages the file just written, simulating
			// a crash mid-write that a later resume must detect.
			if s.cfg.OnTornWrite != nil && s.cfg.Plan != nil &&
				len(s.cfg.Plan.TakeEvents(s.stageSeq, chaos.TornWrite)) > 0 {
				s.logf("dist: chaos tears the checkpoint written at iteration %d", it+1)
				s.cfg.OnTornWrite(it + 1)
			}
		}
		if nf := len(res.Fits); opts.Tol > 0 && nf > 1 {
			if math.Abs(res.Fits[nf-1]-res.Fits[nf-2]) < opts.Tol {
				break
			}
		}
	}
	res.Lambda = lambda
	return res, nil
}

// mttkrpRun is an in-flight MTTKRP stage.
type mttkrpRun struct {
	stg   *stage
	mode  int
	m     *la.Dense
	tasks []*stageTask
}

// beginMTTKRP starts the full mode-n MTTKRP across the workers. Output
// rows are disjoint between tasks, so assembling the partial results is
// pure placement — no floating-point reduction — and each row's bits match
// the shared-memory kernel. A task that lands off its home slot gets its
// shard re-shipped and every input factor resynced as needed.
func (s *Session) beginMTTKRP(n int, rgs []tensor.NNZRange, rank int, factors []*la.Dense) *mttkrpRun {
	run := &mttkrpRun{mode: n, m: la.NewDense(s.t.Dims[n], rank)}
	run.tasks = make([]*stageTask, len(rgs))
	for k, rg := range rgs {
		rg, k := rg, k
		run.tasks[k] = &stageTask{
			task: &Task{Kind: TaskPartialMTTKRP, Mode: n, RowLo: rg.RowLo, RowHi: rg.RowHi},
			home: k,
			prep: func(r *remote, _ *Task) error {
				if r.slot != k {
					// The MTTKRP inputs are every factor but mode n.
					for m := range factors {
						if m == n {
							continue
						}
						if err := s.ensureCurrent(r, m, factors[m]); err != nil {
							return err
						}
					}
				}
				if r.hasShard[shardKey{n, rg.RowLo, rg.RowHi}] {
					return nil
				}
				s.stats.ShardResends++
				return s.sendShard(r, s.buildShard(n, rg))
			},
			onResult: func(res *Result) error {
				if res.Rows == nil || res.Rows.Rows != rg.RowHi-rg.RowLo || res.Rows.Cols != rank {
					return fmt.Errorf("dist: mttkrp mode %d rows [%d,%d): malformed result", n, rg.RowLo, rg.RowHi)
				}
				copy(run.m.Data[rg.RowLo*rank:rg.RowHi*rank], res.Rows.Data)
				return nil
			},
		}
	}
	run.stg = s.beginStage(run.tasks)
	return run
}

// awaitMTTKRP completes an MTTKRP stage, returning the assembled matrix
// and, per range, the CONNECTION that computed it (its rows are resident
// there for the row solve). Remotes, not slots: a worker that died and
// rejoined occupies the same slot with a fresh session that holds nothing,
// and only pointer identity tells the two apart.
func (s *Session) awaitMTTKRP(run *mttkrpRun) (*la.Dense, []*remote, error) {
	if err := s.awaitStage(run.stg); err != nil {
		return nil, nil, err
	}
	computedBy := make([]*remote, len(run.tasks))
	for k, st := range run.tasks {
		computedBy[k] = s.remotes[st.assigned]
	}
	return run.m, computedBy, nil
}

// rowSolveStage computes a_i = m_i * pinv for every factor row. Each task
// prefers the connection already holding its MTTKRP rows; any other target
// — including the same slot after a rejoin, whose fresh session holds
// nothing — gets the rows shipped from the coordinator's assembled copy.
// Rows past the last range (trailing all-empty rows the partitioner drops)
// have zero MTTKRP rows, so their solution is the zero row — written
// locally, exactly what the serial solver computes for them.
func (s *Session) rowSolveStage(n int, rgs []tensor.NNZRange, pinv, m *la.Dense, computedBy []*remote, a *la.Dense) error {
	tasks := make([]*stageTask, len(rgs))
	for k, rg := range rgs {
		rg, home := rg, computedBy[k]
		st := &stageTask{
			task: &Task{Kind: TaskRowSolve, Mode: n, RowLo: rg.RowLo, RowHi: rg.RowHi, Pinv: pinv},
			home: home.slot,
			prep: func(r *remote, task *Task) error {
				if r != home {
					task.MRows = rowsView(m, rg.RowLo, rg.RowHi)
				}
				return nil
			},
			onResult: func(res *Result) error {
				if res.Rows == nil || res.Rows.Rows != rg.RowHi-rg.RowLo || res.Rows.Cols != pinv.Cols {
					return fmt.Errorf("dist: row-solve mode %d rows [%d,%d): malformed result", n, rg.RowLo, rg.RowHi)
				}
				copy(a.Data[rg.RowLo*a.Cols:rg.RowHi*a.Cols], res.Rows.Data)
				return nil
			},
		}
		tasks[k] = st
	}
	if err := s.runStage(tasks); err != nil {
		return err
	}
	covered := 0
	if len(rgs) > 0 {
		covered = rgs[len(rgs)-1].RowHi
	}
	tail := a.Data[covered*a.Cols:]
	for i := range tail {
		tail[i] = 0
	}
	return nil
}

// gramRun is an in-flight gram stage.
type gramRun struct {
	stg      *stage
	mode     int
	rank     int
	partials []*la.Dense
	local    *la.Dense // set when the gram was computed on the coordinator
}

// distributeBlocks reports whether a mode with nb par blocks is worth
// distributing over W workers. Below one block per worker the chunks can't
// engage the fleet, and shipping the stage to a subset would force full
// factor currency on those workers — defeating delta broadcasts. Such
// modes are computed on the coordinator instead; both paths use the same
// block-ordered summation, so the result is bitwise identical either way.
func distributeBlocks(nb, W int) bool { return nb >= W }

// beginGram starts grams[n] = A^T A as per-block partials on the workers.
// awaitGram sums them in ascending global block order — the identical
// summation tree la.GramParallel uses, hence identical bits regardless of
// completion order. Modes too small to spread across the fleet (see
// distributeBlocks) are computed locally; the stage slot is still burned
// so chaos-plan stage numbers keep their meaning.
func (s *Session) beginGram(n int, a *la.Dense, rank, W, w int) *gramRun {
	nb := par.NumBlocks(a.Rows)
	run := &gramRun{mode: n, rank: rank, partials: make([]*la.Dense, nb)}
	if !distributeBlocks(nb, W) {
		run.local = la.GramParallel(a, w)
		run.stg = s.beginStage(nil)
		return run
	}
	var tasks []*stageTask
	for k := 0; k < W; k++ {
		k := k
		lo, hi := blockChunk(k, nb, W)
		if lo >= hi {
			continue
		}
		tasks = append(tasks, &stageTask{
			task: &Task{Kind: TaskGram, Mode: n, BlockLo: lo, BlockHi: hi},
			home: k,
			prep: func(r *remote, _ *Task) error {
				if r.slot != k {
					return s.ensureCurrent(r, n, a)
				}
				return nil
			},
			onResult: func(res *Result) error {
				if len(res.Grams) != hi-lo {
					return fmt.Errorf("dist: gram mode %d blocks [%d,%d): got %d partials", n, lo, hi, len(res.Grams))
				}
				for i, g := range res.Grams {
					if g == nil || g.Rows != rank || g.Cols != rank {
						return fmt.Errorf("dist: gram mode %d block %d: malformed partial", n, lo+i)
					}
					run.partials[lo+i] = g
				}
				return nil
			},
		})
	}
	run.stg = s.beginStage(tasks)
	return run
}

func (s *Session) awaitGram(run *gramRun) (*la.Dense, error) {
	if err := s.awaitStage(run.stg); err != nil {
		return nil, err
	}
	if run.local != nil {
		return run.local, nil
	}
	g := la.NewDense(run.rank, run.rank)
	for _, p := range run.partials {
		for i, v := range p.Data {
			g.Data[i] += v
		}
	}
	return g, nil
}

// fitRun is an in-flight fit stage.
type fitRun struct {
	stg      *stage
	partials []float64
	local    bool // inner product was computed on the coordinator
	inner    float64
}

// beginFit starts <X, X_hat> as per-block partials on the workers over the
// last mode's MTTKRP rows; awaitFit sums them in ascending block order —
// the summation tree of par.SumBlocks, hence bitwise equal to
// FitFromWorkers. Like beginGram, a last mode too small to spread across
// the fleet is computed locally behind an empty (numbered) stage.
func (s *Session) beginFit(lastMode int, lastM *la.Dense, lambda []float64, W, w int, factors []*la.Dense) *fitRun {
	nb := par.NumBlocks(lastM.Rows)
	run := &fitRun{partials: make([]float64, nb)}
	if !distributeBlocks(nb, W) {
		f := factors[lastMode]
		run.local = true
		run.inner = par.SumBlocks(w, lastM.Rows, func(lo, hi int) float64 {
			var sum float64
			for i := lo; i < hi; i++ {
				mrow := lastM.Row(i)
				arow := f.Row(i)
				for r := range mrow {
					sum += mrow[r] * arow[r] * lambda[r]
				}
			}
			return sum
		})
		run.stg = s.beginStage(nil)
		return run
	}
	var tasks []*stageTask
	for k := 0; k < W; k++ {
		k := k
		lo, hi := blockChunk(k, nb, W)
		if lo >= hi {
			continue
		}
		rowHi := hi * par.BlockSize
		if rowHi > lastM.Rows {
			rowHi = lastM.Rows
		}
		tasks = append(tasks, &stageTask{
			task: &Task{
				Kind: TaskFitPartial, Mode: lastMode, BlockLo: lo, BlockHi: hi,
				Lambda: lambda, MRows: rowsView(lastM, lo*par.BlockSize, rowHi),
			},
			home: k,
			prep: func(r *remote, _ *Task) error {
				if r.slot != k {
					return s.ensureCurrent(r, lastMode, factors[lastMode])
				}
				return nil
			},
			onResult: func(res *Result) error {
				if len(res.Partials) != hi-lo {
					return fmt.Errorf("dist: fit blocks [%d,%d): got %d partials", lo, hi, len(res.Partials))
				}
				copy(run.partials[lo:hi], res.Partials)
				return nil
			},
		})
	}
	run.stg = s.beginStage(tasks)
	return run
}

func (s *Session) awaitFit(run *fitRun) (float64, error) {
	if err := s.awaitStage(run.stg); err != nil {
		return 0, err
	}
	if run.local {
		return run.inner, nil
	}
	var inner float64
	for _, p := range run.partials {
		inner += p
	}
	return inner, nil
}
