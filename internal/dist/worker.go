package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// Worker serves CP-ALS tasks for one coordinator at a time. It is a pure
// executor: all control flow (partitioning, scheduling, reduction order,
// convergence) lives in the coordinator, so a worker is stateless between
// sessions and can be killed at any moment without corrupting a run.
type Worker struct {
	// Logf, when non-nil, receives connection-lifecycle log lines.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewWorker returns a Worker ready to Serve.
func NewWorker() *Worker { return &Worker{conns: map[net.Conn]struct{}{}} }

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Serve accepts coordinator connections on ln until the listener fails or
// Close is called, handling one session at a time. Sequential sessions
// (e.g. consecutive benchmark runs) reuse the same worker process.
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.conns == nil {
		w.conns = map[net.Conn]struct{}{}
	}
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return fmt.Errorf("dist: worker is closed")
	}
	w.ln = ln
	w.mu.Unlock()
	pol := defaultRetry
	seed := rng.Hash64(rng.HashAny(ln.Addr().String()), 0x5e12)
	acceptFails := 0
	for {
		c, err := ln.Accept()
		if err != nil {
			w.mu.Lock()
			closed := w.closed
			w.mu.Unlock()
			if closed {
				return nil
			}
			// Transient failures (EMFILE, network stack hiccups) back off
			// under the shared policy instead of tearing the worker down; a
			// closed listener or persistent error still exits. Consecutive
			// failures are bounded — a successful accept resets the count.
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			if acceptFails < pol.MaxAttempts {
				acceptFails++
				w.logf("dist: worker accept (attempt %d): %v", acceptFails, err)
				t := time.NewTimer(pol.Delay(seed, acceptFails))
				<-t.C
				continue
			}
			return err
		}
		acceptFails = 0
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			c.Close()
			return nil
		}
		w.conns[c] = struct{}{}
		w.mu.Unlock()
		w.logf("dist: worker session from %s", c.RemoteAddr())
		w.handle(c)
		w.mu.Lock()
		delete(w.conns, c)
		w.mu.Unlock()
	}
}

// Close stops the listener and severs any active coordinator connection.
// From the coordinator's perspective this is indistinguishable from the
// worker process dying — which is exactly what chaos kills use it for.
func (w *Worker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.ln != nil {
		w.ln.Close()
	}
	for c := range w.conns {
		c.Close()
	}
	return nil
}

// shardKey identifies a resident shard or MTTKRP row block: shards are cut
// per (mode, output-row range) and never overlap within a mode.
type shardKey struct {
	mode         int
	rowLo, rowHi int
}

// gramKey identifies one cached partial gram: (mode, global block index).
type gramKey struct {
	mode, block int
}

// wsession is the per-connection worker state. The read loop stores
// shards/factors and the executor goroutine reads them; the mutex makes
// the handoff safe when a reassigned shard arrives while an earlier task
// of the same stage is still executing. Factor updates (full or delta)
// swap the matrix pointer under the mutex — copy-on-write — so a task
// that snapshotted the previous matrix keeps reading consistent state.
type wsession struct {
	mu      sync.Mutex
	hello   *Hello
	shards  map[shardKey]*Shard
	factors []*la.Dense
	mrows   map[shardKey]*la.Dense // MTTKRP outputs kept for the RowSolve that follows

	// gramCache keeps per-block partial grams across iterations; a factor
	// update invalidates exactly the blocks whose rows changed, so Gram
	// tasks over converged (or untouched) blocks reuse the resident
	// partial instead of recomputing it. Reuse is bitwise-safe: a block
	// survives in the cache only if none of its rows changed, and
	// GramAccumulate is deterministic in the row bits.
	gramCache map[gramKey]*la.Dense

	// csfs caches the per-shard CSF trees for the optional SPLATT kernel
	// (Hello flag HelloUseCSF). An entry is invalidated when its shard is
	// replaced (per-epoch sampled shards reuse their key).
	csfs map[shardKey]*tensor.CSF
}

func (w *Worker) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<16)
	var wmu sync.Mutex
	send := func(t MsgType, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		if err := WriteFrame(bw, t, payload); err != nil {
			return err
		}
		return bw.Flush()
	}

	s := &wsession{
		shards:    map[shardKey]*Shard{},
		mrows:     map[shardKey]*la.Dense{},
		gramCache: map[gramKey]*la.Dense{},
		csfs:      map[shardKey]*tensor.CSF{},
	}

	// Tasks execute on their own goroutine so the read loop keeps
	// answering heartbeats while a long MTTKRP runs.
	taskc := make(chan *Task, 64)
	done := make(chan struct{})
	defer func() { close(taskc); <-done }()
	go func() {
		defer close(done)
		broken := false // keep draining taskc so the read loop never blocks
		for t := range taskc {
			if broken {
				continue
			}
			res, err := s.execGuarded(t)
			if err != nil {
				if send(MsgErr, EncodeErr(&RemoteError{TaskID: t.ID, Msg: err.Error()})) != nil {
					broken = true
				}
				continue
			}
			if send(MsgResult, EncodeResult(res)) != nil {
				broken = true
			}
		}
	}()

	for {
		mt, payload, err := ReadFrame(br)
		if err != nil {
			if err != io.EOF {
				w.logf("dist: worker read: %v", err)
			}
			return
		}
		switch mt {
		case MsgHello:
			h, err := DecodeHello(payload)
			if err != nil {
				w.logf("dist: worker bad hello: %v", err)
				return
			}
			if h.Version != ProtocolVersion {
				send(MsgErr, EncodeErr(&RemoteError{Msg: fmt.Sprintf(
					"protocol version mismatch: coordinator %d, worker %d", h.Version, ProtocolVersion)}))
				return
			}
			s.mu.Lock()
			s.hello = h
			s.factors = make([]*la.Dense, h.Order)
			s.mu.Unlock()
			if err := send(MsgHelloAck, EncodeHello(&Hello{Version: ProtocolVersion, Order: h.Order, Rank: h.Rank, Dims: h.Dims, Worker: h.Worker, Workers: h.Workers})); err != nil {
				return
			}
		case MsgShard:
			sh, err := DecodeShard(payload)
			if err != nil {
				w.logf("dist: worker bad shard: %v", err)
				return
			}
			// Replacing a resident shard (per-epoch sampled shards reuse
			// their key) invalidates any CSF tree built from the old one.
			key := shardKey{sh.Mode, sh.RowLo, sh.RowHi}
			s.mu.Lock()
			s.shards[key] = sh
			delete(s.csfs, key)
			s.mu.Unlock()
		case MsgFactor:
			f, err := DecodeFactor(payload)
			if err != nil {
				w.logf("dist: worker bad factor: %v", err)
				return
			}
			s.mu.Lock()
			if s.factors == nil || f.Mode >= len(s.factors) {
				s.mu.Unlock()
				w.logf("dist: worker factor before hello or mode out of range")
				return
			}
			s.factors[f.Mode] = f.M
			for k := range s.gramCache {
				if k.mode == f.Mode {
					delete(s.gramCache, k)
				}
			}
			s.mu.Unlock()
		case MsgFactorDelta:
			fd, err := DecodeFactorDelta(payload)
			if err != nil {
				w.logf("dist: worker bad factor delta: %v", err)
				return
			}
			if err := s.applyDelta(fd); err != nil {
				send(MsgErr, EncodeErr(&RemoteError{Msg: err.Error()}))
				return
			}
		case MsgTask:
			t, err := DecodeTask(payload)
			if err != nil {
				w.logf("dist: worker bad task: %v", err)
				return
			}
			taskc <- t
		case MsgPing:
			if err := send(MsgPong, payload); err != nil {
				return
			}
		case MsgShutdown:
			return
		default:
			w.logf("dist: worker unexpected frame %v", mt)
			return
		}
	}
}

// applyDelta patches the changed rows of one factor copy-on-write: the
// resident matrix is cloned, the rows land in the clone, and the pointer
// swaps under the lock. A task that snapshotted the old matrix keeps
// reading unchanged state — the coordinator guarantees any task that must
// see the new rows is sent after the delta on the same ordered connection.
// A delta for a factor never broadcast is a protocol error: deltas are
// only valid against state this worker was actually sent.
func (s *wsession) applyDelta(fd *FactorDelta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.factors == nil || fd.Mode < 0 || fd.Mode >= len(s.factors) {
		return fmt.Errorf("factor delta before hello or mode %d out of range", fd.Mode)
	}
	f := s.factors[fd.Mode]
	if f == nil {
		return fmt.Errorf("factor delta for mode %d before any full broadcast", fd.Mode)
	}
	if fd.Cols != f.Cols {
		return fmt.Errorf("factor delta mode %d: %d cols, resident factor has %d", fd.Mode, fd.Cols, f.Cols)
	}
	n := len(fd.Indices)
	if n > 0 && fd.Indices[n-1] >= f.Rows {
		return fmt.Errorf("factor delta mode %d: row %d out of %d", fd.Mode, fd.Indices[n-1], f.Rows)
	}
	nf := f.Clone()
	for i, idx := range fd.Indices {
		copy(nf.Row(idx), fd.Rows[i*fd.Cols:(i+1)*fd.Cols])
		delete(s.gramCache, gramKey{fd.Mode, idx / par.BlockSize})
	}
	s.factors[fd.Mode] = nf
	return nil
}

// execGuarded runs a task, converting any panic (e.g. a malformed shard
// driving a library precondition) into a reported task error instead of
// crashing the worker process.
func (s *wsession) execGuarded(t *Task) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("task panic: %v", r)
		}
	}()
	return s.exec(t)
}

// snapshot resolves the state a task needs under the lock, so execution
// proceeds without holding it.
func (s *wsession) snapshot() (*Hello, []*la.Dense) {
	s.mu.Lock()
	defer s.mu.Unlock()
	factors := make([]*la.Dense, len(s.factors))
	copy(factors, s.factors)
	return s.hello, factors
}

func (s *wsession) exec(t *Task) (*Result, error) {
	hello, factors := s.snapshot()
	if hello == nil {
		return nil, fmt.Errorf("task before hello")
	}
	switch t.Kind {
	case TaskPartialMTTKRP:
		return s.execMTTKRP(t, hello, factors)
	case TaskRowSolve:
		return s.execRowSolve(t)
	case TaskGram:
		return s.execGram(t, factors)
	case TaskFitPartial:
		return s.execFitPartial(t, factors)
	default:
		return nil, fmt.Errorf("unknown task kind %d", uint8(t.Kind))
	}
}

// execMTTKRP computes output rows [RowLo, RowHi) of the mode-t.Mode MTTKRP
// from the resident shard. The shard's entries are in the stable ModeIndex
// Perm order, and each output row is accumulated entry by entry in that
// order — the identical floating-point sequence the shared-memory
// MTTKRPWorkers kernel performs for those rows.
func (s *wsession) execMTTKRP(t *Task, hello *Hello, factors []*la.Dense) (*Result, error) {
	key := shardKey{t.Mode, t.RowLo, t.RowHi}
	s.mu.Lock()
	sh := s.shards[key]
	s.mu.Unlock()
	if sh == nil {
		return nil, fmt.Errorf("no resident shard for mode %d rows [%d,%d)", t.Mode, t.RowLo, t.RowHi)
	}
	order := hello.Order
	for n := 0; n < order; n++ {
		if n == t.Mode {
			continue
		}
		if factors[n] == nil {
			return nil, fmt.Errorf("mttkrp mode %d: factor %d not broadcast", t.Mode, n)
		}
	}
	if hello.Flags&HelloUseCSF != 0 {
		return s.execMTTKRPCSF(t, hello, factors, sh)
	}
	rank := hello.Rank
	out := la.NewDense(t.RowHi-t.RowLo, rank)
	tmp := make([]float64, rank)
	for i := range sh.Entries {
		e := &sh.Entries[i]
		for c := range tmp {
			tmp[c] = e.Val
		}
		for n := 0; n < order; n++ {
			if n == t.Mode {
				continue
			}
			if int(e.Idx[n]) >= factors[n].Rows {
				return nil, fmt.Errorf("mttkrp mode %d: entry index %d out of range for factor %d (%d rows)",
					t.Mode, e.Idx[n], n, factors[n].Rows)
			}
			la.VecMulInto(tmp, factors[n].Row(int(e.Idx[n])))
		}
		la.VecAdd(out.Row(int(e.Idx[t.Mode])-t.RowLo), tmp)
	}
	s.mu.Lock()
	s.mrows[key] = out
	s.mu.Unlock()
	return &Result{ID: t.ID, Kind: t.Kind, RowLo: t.RowLo, Rows: out}, nil
}

// execMTTKRPCSF is the optional SPLATT-kernel variant of PartialMTTKRP: a
// CSF tree is built once per resident shard (rooted at the shard's mode,
// remaining modes ascending — the BuildCSFs ordering) and walked with
// fiber reuse. Because NewCSF sorts entries deterministically and every
// root's subtree is a pure function of that root's entry set, the output
// rows are bitwise identical to the corresponding rows of a full-tensor
// CSF MTTKRP — the dist CSF path reproduces the single-process CSF solver
// exactly, though not the COO reference (the factored arithmetic differs).
func (s *wsession) execMTTKRPCSF(t *Task, hello *Hello, factors []*la.Dense, sh *Shard) (*Result, error) {
	if t.Mode >= len(hello.Dims) || t.RowHi > hello.Dims[t.Mode] || t.RowLo < 0 {
		return nil, fmt.Errorf("csf mttkrp mode %d: rows [%d,%d) out of dims", t.Mode, t.RowLo, t.RowHi)
	}
	key := shardKey{t.Mode, t.RowLo, t.RowHi}
	s.mu.Lock()
	csf := s.csfs[key]
	s.mu.Unlock()
	if csf == nil {
		// Entry indices are validated once, before the tree is cached;
		// subsequent iterations walk the trusted tree directly.
		for i := range sh.Entries {
			e := &sh.Entries[i]
			for n := 0; n < hello.Order; n++ {
				if n == t.Mode {
					continue
				}
				if int(e.Idx[n]) >= hello.Dims[n] {
					return nil, fmt.Errorf("csf mttkrp mode %d: entry index %d out of range for factor %d (%d rows)",
						t.Mode, e.Idx[n], n, hello.Dims[n])
				}
			}
		}
		tc := tensor.New(hello.Dims...)
		tc.Entries = sh.Entries
		mo := make([]int, 0, hello.Order)
		mo = append(mo, t.Mode)
		for m := 0; m < hello.Order; m++ {
			if m != t.Mode {
				mo = append(mo, m)
			}
		}
		csf = tensor.NewCSF(tc, mo) // panics on duplicates; execGuarded reports it
		s.mu.Lock()
		s.csfs[key] = csf
		s.mu.Unlock()
	}
	if factors[t.Mode] == nil {
		// The kernel probes factors[0].Cols but never reads the target
		// mode's rows; give it the right shape.
		factors[t.Mode] = la.NewDense(hello.Dims[t.Mode], hello.Rank)
	}
	full := cpals.MTTKRPCSF(csf, factors)
	out := rowsView(full, t.RowLo, t.RowHi)
	s.mu.Lock()
	s.mrows[key] = out
	s.mu.Unlock()
	return &Result{ID: t.ID, Kind: t.Kind, RowLo: t.RowLo, Rows: out}, nil
}

// execRowSolve applies the pseudo-inverse row by row: a_i = m_i * Pinv.
// The MTTKRP rows come from the task payload when the coordinator
// reassigned the range, otherwise from the resident rows produced by this
// worker's PartialMTTKRP moments earlier.
func (s *wsession) execRowSolve(t *Task) (*Result, error) {
	if t.Pinv == nil {
		return nil, fmt.Errorf("row-solve without pinv")
	}
	m := t.MRows
	if m == nil {
		key := shardKey{t.Mode, t.RowLo, t.RowHi}
		s.mu.Lock()
		m = s.mrows[key]
		s.mu.Unlock()
		if m == nil {
			return nil, fmt.Errorf("no resident mttkrp rows for mode %d rows [%d,%d)", t.Mode, t.RowLo, t.RowHi)
		}
	}
	if m.Rows != t.RowHi-t.RowLo || m.Cols != t.Pinv.Rows {
		return nil, fmt.Errorf("row-solve shape mismatch: rows %dx%d, pinv %dx%d, range [%d,%d)",
			m.Rows, m.Cols, t.Pinv.Rows, t.Pinv.Cols, t.RowLo, t.RowHi)
	}
	out := la.NewDense(m.Rows, t.Pinv.Cols)
	for i := 0; i < m.Rows; i++ {
		la.VecMatInto(out.Row(i), m.Row(i), t.Pinv)
	}
	return &Result{ID: t.ID, Kind: t.Kind, RowLo: t.RowLo, Rows: out}, nil
}

// execGram computes one partial gram per global par.BlockSize row block in
// [BlockLo, BlockHi) of the resident factor — the identical per-block
// computation la.GramParallel performs, so the coordinator's block-order
// sum reproduces its bits exactly.
func (s *wsession) execGram(t *Task, factors []*la.Dense) (*Result, error) {
	if t.Mode >= len(factors) || factors[t.Mode] == nil {
		return nil, fmt.Errorf("gram: factor %d not broadcast", t.Mode)
	}
	f := factors[t.Mode]
	nb := par.NumBlocks(f.Rows)
	if t.BlockLo < 0 || t.BlockHi > nb {
		return nil, fmt.Errorf("gram: block range [%d,%d) out of [0,%d)", t.BlockLo, t.BlockHi, nb)
	}
	grams := make([]*la.Dense, 0, t.BlockHi-t.BlockLo)
	for b := t.BlockLo; b < t.BlockHi; b++ {
		// Reuse the resident partial when no row of the block has changed
		// since it was computed. The cache is only consulted while the
		// resident factor still is the snapshot this task executes against;
		// a concurrent update swaps the pointer and invalidates the
		// changed blocks, so a hit is always bitwise-equal to a recompute.
		key := gramKey{t.Mode, b}
		s.mu.Lock()
		var p *la.Dense
		if s.factors[t.Mode] == f {
			p = s.gramCache[key]
		}
		s.mu.Unlock()
		if p == nil {
			lo, hi := par.Block(b, f.Rows)
			p = la.NewDense(f.Cols, f.Cols)
			la.GramAccumulate(p, &la.Dense{Rows: hi - lo, Cols: f.Cols, Data: f.Data[lo*f.Cols : hi*f.Cols]})
			s.mu.Lock()
			if s.factors[t.Mode] == f {
				s.gramCache[key] = p
			}
			s.mu.Unlock()
		}
		grams = append(grams, p)
	}
	return &Result{ID: t.ID, Kind: t.Kind, BlockLo: t.BlockLo, Grams: grams}, nil
}

// execFitPartial computes one <X, X_hat> inner-product partial per global
// row block of the last mode's MTTKRP result (shipped in MRows, rows
// offset by BlockLo*par.BlockSize), against the resident normalized
// factor — the per-block body of cpals.FitFromWorkers.
func (s *wsession) execFitPartial(t *Task, factors []*la.Dense) (*Result, error) {
	if t.Mode >= len(factors) || factors[t.Mode] == nil {
		return nil, fmt.Errorf("fit: factor %d not broadcast", t.Mode)
	}
	if t.MRows == nil {
		return nil, fmt.Errorf("fit without mttkrp rows")
	}
	if len(t.Lambda) != t.MRows.Cols {
		return nil, fmt.Errorf("fit: lambda length %d != rank %d", len(t.Lambda), t.MRows.Cols)
	}
	f := factors[t.Mode]
	base := t.BlockLo * par.BlockSize
	if base+t.MRows.Rows > f.Rows {
		return nil, fmt.Errorf("fit: rows [%d,%d) out of factor range %d", base, base+t.MRows.Rows, f.Rows)
	}
	partials := make([]float64, 0, t.BlockHi-t.BlockLo)
	for b := t.BlockLo; b < t.BlockHi; b++ {
		lo, hi := par.Block(b, f.Rows)
		if hi-base > t.MRows.Rows {
			return nil, fmt.Errorf("fit: block %d rows [%d,%d) beyond shipped rows", b, lo, hi)
		}
		var sum float64
		for i := lo; i < hi; i++ {
			mrow := t.MRows.Row(i - base)
			arow := f.Row(i)
			for r := range mrow {
				sum += mrow[r] * arow[r] * t.Lambda[r]
			}
		}
		partials = append(partials, sum)
	}
	return &Result{ID: t.ID, Kind: t.Kind, BlockLo: t.BlockLo, Partials: partials}, nil
}
