package dist

import (
	"net"
	"testing"
	"time"

	"cstf/internal/chaos"
	"cstf/internal/cpals"
)

// fastRetry keeps rejoin redials well inside a short test solve.
func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 5, Base: time.Millisecond, Max: 5 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

// TestPartitionRejoin severs a worker's connection mid-solve via a chaos
// NetPartition event. The worker process survives, so the rejoin loop must
// get it back — re-admitted with a fresh shard/factor resync — and the
// final factors must still match the serial solver bit for bit.
func TestPartitionRejoin(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	opts.MaxIters = 12
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	cfg.Retry = fastRetry()
	cfg.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.NetPartition, Node: 1, Stage: 4})
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "after partition+rejoin", want, got)
	if stats.WorkerDeaths != 1 {
		t.Fatalf("want one detected death, got %+v", stats)
	}
	if stats.Rejoins < 1 {
		t.Fatalf("partitioned worker never rejoined: %+v", stats)
	}
	if stats.WorkersAlive != 2 {
		t.Fatalf("fleet not back to full strength: %+v", stats)
	}
}

// TestCorruptFrameRecovery arms a one-shot bit flip on a coordinator->worker
// frame via a chaos FrameCorrupt event. The worker's CRC32-C check must
// reject the damaged frame (never execute it), the connection resets, the
// in-flight task is retried elsewhere or on the rejoined worker, and the
// result stays bitwise identical — corruption may cost time, never bits.
func TestCorruptFrameRecovery(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	opts.MaxIters = 12
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	cfg.Retry = fastRetry()
	cfg.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.FrameCorrupt, Node: 0, Stage: 3})
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "after frame corruption", want, got)
	if stats.WorkerDeaths != 1 {
		t.Fatalf("corrupt frame should reset exactly one connection, got %+v", stats)
	}
}

// TestLateListenerJoins is the dial-retry regression: NewSession must not
// give up on a worker whose listener comes up moments after the dial storm
// starts (rolling restarts, slow process spawns).
func TestLateListenerJoins(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 0 listens immediately.
	ln0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w0 := NewWorker()
	go w0.Serve(ln0)
	defer w0.Close()

	// Worker 1's address is reserved but its listener starts late.
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr1 := ln1.Addr().String()
	ln1.Close()
	w1 := NewWorker()
	defer w1.Close()
	go func() {
		time.Sleep(300 * time.Millisecond)
		ln, err := net.Listen("tcp", addr1)
		if err != nil {
			t.Errorf("late listener: %v", err)
			return
		}
		w1.Serve(ln)
	}()

	cfg := Config{Addrs: []string{ln0.Addr().String(), addr1}}
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatalf("solve with late listener: %v", err)
	}
	sameBits(t, "late listener", want, got)
	if stats.WorkerDeaths != 0 {
		t.Fatalf("late join should not count as a death: %+v", stats)
	}
}
