package dist

import (
	"fmt"
	"net"
	"time"

	"cstf/internal/rng"
)

// RetryPolicy is the shared backoff schedule for everything in the runtime
// that retries: session dials, worker rejoin redials, Accept on temporary
// listener errors, and the per-task reassignment cap. One policy type so
// the whole runtime degrades the same way under the same failure.
//
// Delays grow geometrically from Base by Multiplier up to Max, with a
// deterministic jitter of ±Jitter/2 of the delay derived from (seed,
// attempt) — deterministic so tests and chaos replays stay reproducible,
// jittered so a fleet of workers redialing a restarted coordinator does
// not thundering-herd on the same tick.
type RetryPolicy struct {
	MaxAttempts int           // total tries before giving up; <=0 means defaultRetry.MaxAttempts
	Base        time.Duration // first delay; <=0 means defaultRetry.Base
	Max         time.Duration // delay cap; <=0 means defaultRetry.Max
	Multiplier  float64       // geometric growth; <1 means defaultRetry.Multiplier
	Jitter      float64       // fraction of the delay randomized, in [0,1]; <0 disables
}

// defaultRetry is tuned for LAN dials: five attempts spanning ~3s.
var defaultRetry = RetryPolicy{
	MaxAttempts: 5,
	Base:        100 * time.Millisecond,
	Max:         2 * time.Second,
	Multiplier:  2,
	Jitter:      0.5,
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultRetry.MaxAttempts
	}
	if p.Base <= 0 {
		p.Base = defaultRetry.Base
	}
	if p.Max <= 0 {
		p.Max = defaultRetry.Max
	}
	if p.Multiplier < 1 {
		p.Multiplier = defaultRetry.Multiplier
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the backoff before attempt (0-based; attempt 0 runs
// immediately). The jitter is a pure function of (seed, attempt).
func (p RetryPolicy) Delay(seed uint64, attempt int) time.Duration {
	p = p.withDefaults()
	if attempt <= 0 {
		return 0
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		// Center the jitter: delay * (1 + Jitter*(u-0.5)), u in [0,1).
		u := rng.UniformAt(seed, 0x9e3779b97f4a7c15, uint64(attempt))
		d *= 1 + p.Jitter*(u-0.5)
	}
	return time.Duration(d)
}

// Do runs f up to MaxAttempts times, sleeping the policy delay between
// tries. It stops early — returning errRetryAborted — when stop closes
// mid-backoff, so shutdown never waits out a backoff schedule. The last
// attempt's error is returned when every try fails.
func (p RetryPolicy) Do(seed uint64, stop <-chan struct{}, f func(attempt int) error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if d := p.Delay(seed, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-stop:
				t.Stop()
				return errRetryAborted
			}
		}
		select {
		case <-stop:
			return errRetryAborted
		default:
		}
		if err = f(attempt); err == nil {
			return nil
		}
	}
	return err
}

// errRetryAborted reports a retry loop cut short by session shutdown.
var errRetryAborted = fmt.Errorf("dist: retry aborted by shutdown")

// DialRetry dials addr under the policy: each attempt gets its own
// timeout, failed attempts back off with jitter, and a close of stop
// abandons the loop immediately.
func DialRetry(addr string, timeout time.Duration, p RetryPolicy, stop <-chan struct{}) (net.Conn, error) {
	seed := rng.Hash64(rng.HashAny(addr))
	var conn net.Conn
	err := p.Do(seed, stop, func(int) error {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return err
		}
		conn = c
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dist: dial %s: %w", addr, err)
	}
	return conn, nil
}
