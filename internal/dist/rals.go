package dist

import (
	"errors"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/rals"
	"cstf/internal/tensor"
)

// SolveSampled runs randomized ALS (internal/rals) with the sampled MTTKRPs
// executed on remote workers. The solver itself — leverage scoring, sample
// draws, row solves, normalization, grams, exact fits — runs on the
// coordinator via rals.Solve; only the per-epoch sampled tensors are shipped
// out, cut into row-aligned shards along the FULL tensor's frozen mode
// partitions (stable across epochs, so a shard key always means the same
// row range). Because the sampled MTTKRP accumulates each output row in the
// sampled tensor's stable mode-index order regardless of how entries are
// partitioned, the result is bitwise identical to the serial rals solve for
// every worker count and every task placement.
//
// Factor state is kept resident by full broadcast after every update
// (Config.NoDelta is forced): a sampled mode touches an arbitrary,
// epoch-varying row subset, so the delta machinery's frozen touched-row
// plans do not apply. Config.UseCSF is likewise forced off — the COO worker
// kernel is the one that matches rals.Solve's local kernel bitwise.
//
// Fleet collapse degrades like dist.Solve: on a stage with no live workers
// (MinWorkers >= 0) the kernel switches to coordinator-local sampled
// MTTKRPs, which are bitwise identical to the distributed ones, so the run
// completes with the same factors it would have produced on a healthy
// fleet.
func SolveSampled(t *tensor.COO, o rals.Options, cfg Config) (*cpals.Result, Stats, error) {
	start := time.Now()
	if err := o.Validate(t); err != nil {
		return nil, Stats{}, err
	}
	cfg.NoDelta = true
	cfg.UseCSF = false
	s, err := NewSession(t, o.Rank, cfg)
	if err != nil {
		return nil, Stats{WallSeconds: time.Since(start).Seconds()}, err
	}
	defer s.Close()

	order := t.Order()
	W := len(s.remotes)
	k := &ralsKernel{
		s:       s,
		ranges:  make([][]tensor.NNZRange, order),
		cur:     make([]*la.Dense, order),
		shipped: map[*remote]map[shardKey]int{},
		w:       o.Workers(),
	}
	for m := 0; m < order; m++ {
		k.ranges[m] = t.ModeIndex(m).Ranges(W)
	}
	s.TrackFactors(k.cur) // rejoining workers resync from the live factors
	o.Kernel = k

	res, err := rals.Solve(t, o)
	st := s.Stats()
	st.Degraded = st.Degraded || k.degraded
	st.WallSeconds = time.Since(start).Seconds()
	return res, st, err
}

// ralsKernel is the rals.Kernel that distributes sampled MTTKRPs over a
// Session. All methods run on the solver goroutine.
type ralsKernel struct {
	s      *Session
	ranges [][]tensor.NNZRange // frozen full-tensor row partitions per mode
	cur    []*la.Dense         // live factors, for rejoin resync

	epoch   int
	sampled []*tensor.COO

	// shipped[r][key] is 1+epoch of the sampled shard worker connection r
	// holds under key (worker side replaces by key). Keyed by connection,
	// not slot: a rejoined worker is a fresh *remote holding nothing.
	shipped map[*remote]map[shardKey]int

	degraded bool
	w        int // coordinator-local parallelism
	ws       cpals.Workspace
}

// FactorUpdated broadcasts the updated factor to the fleet (full matrix —
// NoDelta is forced) and records it for rejoin resyncs.
func (k *ralsKernel) FactorUpdated(mode int, m *la.Dense) {
	k.cur[mode] = m
	if !k.degraded {
		k.s.FactorUpdate(mode, m)
	}
}

// Epoch installs a new epoch's sampled tensors and ships each sampled
// mode's shards to their home slots. Empty shards are neither shipped nor
// later tasked; a failed send is left for the MTTKRP prep hook to retry
// wherever the task lands.
func (k *ralsKernel) Epoch(epoch int, sampled []*tensor.COO) error {
	k.epoch = epoch
	k.sampled = sampled
	if k.degraded {
		return nil
	}
	for m, sm := range sampled {
		if sm == nil {
			continue
		}
		smi := sm.ModeIndex(m)
		for slot, rg := range k.ranges[m] {
			if smi.RowPtr[rg.RowLo] == smi.RowPtr[rg.RowHi] {
				continue
			}
			r := k.s.remotes[slot]
			if !r.alive.Load() {
				continue
			}
			k.ship(r, m, rg)
		}
	}
	return nil
}

// ship (re)sends the current epoch's sampled shard for (mode, rg) to one
// worker connection, replacing whatever that key held there before.
func (k *ralsKernel) ship(r *remote, mode int, rg tensor.NNZRange) error {
	sm := k.sampled[mode]
	smi := sm.ModeIndex(mode)
	sh := &Shard{
		Mode:  mode,
		Order: sm.Order(),
		RowLo: rg.RowLo,
		RowHi: rg.RowHi,
	}
	lo, hi := smi.RowPtr[rg.RowLo], smi.RowPtr[rg.RowHi]
	sh.Entries = make([]tensor.Entry, 0, hi-lo)
	for p := lo; p < hi; p++ {
		sh.Entries = append(sh.Entries, sm.Entries[smi.Perm[p]])
	}
	if err := k.s.sendShardReplace(r, sh); err != nil {
		return err
	}
	m, ok := k.shipped[r]
	if !ok {
		m = map[shardKey]int{}
		k.shipped[r] = m
	}
	m[shardKey{mode, rg.RowLo, rg.RowHi}] = 1 + k.epoch
	return nil
}

// MTTKRP computes the sampled mode MTTKRP into out (zeroed by the caller)
// as a TaskPartialMTTKRP stage over the non-empty shards. Output row ranges
// are disjoint, so assembly is pure placement. A NoWorkersError degrades
// the kernel to coordinator-local sampled MTTKRPs for the rest of the run.
func (k *ralsKernel) MTTKRP(mode int, factors []*la.Dense, out *la.Dense) error {
	sm := k.sampled[mode]
	if k.degraded {
		cpals.MTTKRPWorkers(sm, mode, factors, k.w, out, &k.ws)
		return nil
	}
	rank := out.Cols
	smi := sm.ModeIndex(mode)
	var tasks []*stageTask
	for slot, rg := range k.ranges[mode] {
		rg, slot := rg, slot
		if smi.RowPtr[rg.RowLo] == smi.RowPtr[rg.RowHi] {
			continue
		}
		key := shardKey{mode, rg.RowLo, rg.RowHi}
		tasks = append(tasks, &stageTask{
			task: &Task{Kind: TaskPartialMTTKRP, Mode: mode, RowLo: rg.RowLo, RowHi: rg.RowHi},
			home: slot,
			prep: func(r *remote, _ *Task) error {
				if k.shipped[r][key] == 1+k.epoch {
					return nil
				}
				k.s.stats.ShardResends++
				return k.ship(r, mode, rg)
			},
			onResult: func(res *Result) error {
				if res.Rows == nil || res.Rows.Rows != rg.RowHi-rg.RowLo || res.Rows.Cols != rank {
					return errors.New("dist: sampled mttkrp: malformed result")
				}
				copy(out.Data[rg.RowLo*rank:rg.RowHi*rank], res.Rows.Data)
				return nil
			},
		})
	}
	err := k.s.runStage(tasks)
	var nw *NoWorkersError
	if errors.As(err, &nw) && k.s.cfg.MinWorkers >= 0 {
		k.s.logf("dist: %v; rals degrading to coordinator-local sampled MTTKRPs", err)
		k.degraded = true
		// Partial stage results may have landed in out: zero it and
		// recompute locally — bitwise identical, the kernel is
		// partition-independent.
		la.RowBlocksApply(k.w, out.Rows, func(lo, hi int) {
			d := out.Data[lo*rank : hi*rank]
			for i := range d {
				d[i] = 0
			}
		})
		cpals.MTTKRPWorkers(sm, mode, factors, k.w, out, &k.ws)
		return nil
	}
	return err
}
