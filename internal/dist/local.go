package dist

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
)

// Local worker launching: the `-dist-local N` path and the test harness.
// Two flavors share the LocalCluster shape: real forked cstf-worker
// processes (exercising the full OS-process story) and in-process workers
// on TCP loopback (no binary needed — used as the fallback and by tests,
// still real sockets and real frames).

// LocalCluster is a set of locally launched workers plus the Config hooks
// to run a session against them.
type LocalCluster struct {
	Addrs []string
	Kills []func() error

	closers []func()
	once    sync.Once
}

// Close tears every worker down. Idempotent; safe after kills.
func (c *LocalCluster) Close() {
	c.once.Do(func() {
		for _, f := range c.closers {
			f()
		}
	})
}

// Config returns a session Config wired to this cluster's workers.
func (c *LocalCluster) Config() Config {
	return Config{Addrs: c.Addrs, Kills: c.Kills}
}

// StartInProcess starts n workers inside this process, each with its own
// TCP loopback listener — real sockets, real frames, no fork. The kill
// hooks close the worker (listener + connections), which the coordinator
// cannot distinguish from a process death.
func StartInProcess(n int) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: worker count must be positive, got %d", n)
	}
	c := &LocalCluster{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: local listener: %w", err)
		}
		w := NewWorker()
		go w.Serve(ln)
		c.Addrs = append(c.Addrs, ln.Addr().String())
		c.Kills = append(c.Kills, func() error { return w.Close() })
		c.closers = append(c.closers, func() { w.Close() })
	}
	return c, nil
}

// SpawnWorkers forks n cstf-worker processes from the given binary, each
// listening on an ephemeral loopback port announced on its stdout. The
// kill hooks send SIGKILL — a genuine process death.
func SpawnWorkers(bin string, n int) (*LocalCluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: worker count must be positive, got %d", n)
	}
	c := &LocalCluster{}
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			c.Close()
			return nil, fmt.Errorf("dist: spawn %s: %w", bin, err)
		}
		proc := cmd.Process
		c.closers = append(c.closers, func() {
			proc.Kill()
			cmd.Wait()
		})
		sc := bufio.NewScanner(out)
		addr := ""
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, workerBanner); ok {
				addr = strings.TrimSpace(rest)
				break
			}
		}
		if addr == "" {
			c.Close()
			return nil, fmt.Errorf("dist: worker %d did not announce a listen address", i)
		}
		// Keep draining stdout so the child never blocks on a full pipe.
		go func() {
			for sc.Scan() {
			}
		}()
		c.Addrs = append(c.Addrs, addr)
		c.Kills = append(c.Kills, proc.Kill)
	}
	return c, nil
}

// workerBanner is the stdout line prefix cstf-worker prints once listening;
// SpawnWorkers parses the address from it.
const workerBanner = "cstf-worker listening on "

// Banner formats the ready line a worker binary must print.
func Banner(addr string) string { return workerBanner + addr }

// FindWorkerBin locates a cstf-worker binary: the CSTF_WORKER_BIN
// environment variable, then a cstf-worker next to the running executable,
// then $PATH. Returns "" when none is found.
func FindWorkerBin() string {
	if p := os.Getenv("CSTF_WORKER_BIN"); p != "" {
		return p
	}
	if exe, err := os.Executable(); err == nil {
		p := filepath.Join(filepath.Dir(exe), "cstf-worker")
		if st, err := os.Stat(p); err == nil && !st.IsDir() {
			return p
		}
	}
	if p, err := exec.LookPath("cstf-worker"); err == nil {
		return p
	}
	return ""
}

// LaunchLocal starts n local workers: forked cstf-worker processes when a
// binary is available (bin, or FindWorkerBin when bin is empty), otherwise
// in-process loopback workers.
func LaunchLocal(n int, bin string) (*LocalCluster, error) {
	if bin == "" {
		bin = FindWorkerBin()
	}
	if bin != "" {
		return SpawnWorkers(bin, n)
	}
	return StartInProcess(n)
}
