package dist

import (
	"testing"

	"cstf/internal/chaos"
	"cstf/internal/rals"
)

func ralsOpts() rals.Options {
	return rals.Options{
		Rank: 4, MaxIters: 6, Seed: 7, Parallelism: 3,
		SampleFraction: 0.3, ResampleEvery: 2,
	}
}

// TestSampledBitwiseMatchesSerial is the rals determinism guarantee over
// the wire: 1, 2, and 4 distributed workers all reproduce the serial
// sampled solver bit for bit — sampling, kept rows, exact fits, everything.
func TestSampledBitwiseMatchesSerial(t *testing.T) {
	x := plantedTensor()
	o := ralsOpts()
	want, err := rals.Solve(x, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		c, err := StartInProcess(n)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := SolveSampled(x, o, c.Config())
		c.Close()
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		label := map[int]string{1: "1 worker", 2: "2 workers", 4: "4 workers"}[n]
		sameBits(t, label, want, got)
		if stats.Workers != n {
			t.Fatalf("%s: stats workers %d", label, stats.Workers)
		}
		if stats.ShardBytes == 0 {
			t.Fatalf("%s: no sampled shards shipped: %+v", label, stats)
		}
		if stats.Degraded {
			t.Fatalf("%s: unexpected degradation", label)
		}
	}
}

// TestSampledExactPolishBitwise runs the sampled+polish composition over
// the wire and checks it against the serial run bitwise.
func TestSampledExactPolishBitwise(t *testing.T) {
	x := plantedTensor()
	o := ralsOpts()
	o.FinalFitOnly = true
	o.ExactFinishIters = 2
	want, err := rals.Solve(x, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := SolveSampled(x, o, c.Config())
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "sampled+polish 3 workers", want, got)
}

// TestSampledKillDegrades crashes a worker mid-run: the kernel either
// re-homes the sampled shards or degrades to coordinator-local sampled
// MTTKRPs — both bitwise identical to the serial run.
func TestSampledKillDegrades(t *testing.T) {
	x := plantedTensor()
	o := ralsOpts()
	want, err := rals.Solve(x, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	cfg.Retry = fastRetry()
	cfg.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.NodeCrash, Node: 1, Stage: 2})
	got, stats, err := SolveSampled(x, o, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.WorkerDeaths == 0 {
		t.Fatalf("chaos kill never fired: %+v", stats)
	}
	sameBits(t, "after worker kill", want, got)
}

// TestSampledFullBudgetMatchesExactDist pins the degenerate case across
// the stack: budget >= nnz makes SolveSampled's per-mode updates exact, so
// its factors match the serial EXACT solver bitwise.
func TestSampledFullBudgetMatchesExactDist(t *testing.T) {
	x := plantedTensor()
	o := ralsOpts()
	o.SampleFraction = 0
	o.SampleCount = x.NNZ()
	o.ResampleEvery = 1
	want, err := rals.Solve(x, o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, _, err := SolveSampled(x, o, c.Config())
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "full budget 2 workers", want, got)
}
