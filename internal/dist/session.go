package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cstf/internal/chaos"
	"cstf/internal/la"
	"cstf/internal/tensor"
)

// Config parameterizes a coordinator session.
type Config struct {
	// Addrs are the worker TCP addresses, one per worker slot. Slot order
	// is the reduction rank order and must be identical across runs for
	// bitwise reproducibility (it is, for any fixed Addrs).
	Addrs []string

	// Kills, when non-nil, holds one kill hook per Addrs entry (e.g.
	// process kill for forked workers). Chaos-plan node crashes invoke it;
	// a nil entry falls back to severing the connection.
	Kills []func() error

	// DialTimeout bounds each worker dial (default 5s).
	DialTimeout time.Duration

	// HeartbeatEvery is the ping cadence (default 250ms).
	HeartbeatEvery time.Duration

	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared dead (default 10*HeartbeatEvery).
	HeartbeatTimeout time.Duration

	// Plan, when non-nil, schedules worker kills against the session's
	// stage clock: every chaos.NodeCrash event whose stage has arrived
	// kills the corresponding worker slot before the stage dispatches.
	// Other event kinds have no physical analogue here and are ignored.
	Plan *chaos.FaultPlan

	// AfterDispatch, when non-nil, runs after a stage's tasks have been
	// sent and before results are awaited. Tests use it to kill workers
	// with tasks in flight, exercising the reassignment path.
	AfterDispatch func(stage uint64)

	// Logf, when non-nil, receives coordinator lifecycle log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 10 * c.HeartbeatEvery
	}
	return c
}

// Stats are the REAL measurements of a distributed run — wall clock and
// bytes moved over sockets — kept deliberately separate from the modeled
// counters in internal/cluster.Metrics.
type Stats struct {
	Workers       int     // workers the session started with
	WorkersAlive  int     // workers still alive at the end
	WallSeconds   float64 // real elapsed time of the whole session
	BytesSent     int64   // bytes written to worker sockets
	BytesRecv     int64   // bytes read from worker sockets
	Stages        int     // task fan-out rounds executed
	Tasks         int     // tasks dispatched (including reassignments)
	WorkerDeaths  int     // workers lost (timeout, socket error, or kill)
	Reassignments int     // tasks re-dispatched after a worker death
	ShardResends  int     // shards re-shipped to a substitute worker
}

// remote is the coordinator's view of one worker.
type remote struct {
	slot  int
	addr  string
	conn  net.Conn
	br    *bufio.Reader
	bw    *bufio.Writer
	wmu   sync.Mutex
	alive atomic.Bool
	// lastPong is the UnixNano of the latest heartbeat reply.
	lastPong atomic.Int64
	deadOnce sync.Once
	kill     func() error

	// Dispatch-goroutine-only bookkeeping (no locking needed).
	hasShard map[shardKey]bool
}

// resMsg is one reader-goroutine delivery to the dispatch loop.
type resMsg struct {
	slot int
	res  *Result
	rerr *RemoteError
}

// Session drives CP-ALS stages across a set of workers. All exported
// methods are called from a single goroutine (the solver); internal
// reader/heartbeat goroutines communicate through channels.
type Session struct {
	cfg     Config
	t       *tensor.COO
	rank    int
	remotes []*remote

	resultc chan resMsg
	deathc  chan int
	closed  chan struct{}

	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	stageSeq uint64
	nextTask uint64
	stats    Stats
}

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// countingConn counts real bytes on the wire into the session totals.
type countingConn struct {
	net.Conn
	sent, recv *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// NewSession dials every worker, performs the handshake, and starts the
// reader and heartbeat goroutines. t is the coordinator's resident tensor
// (the source of shards and re-sends); rank is the decomposition rank.
func NewSession(t *tensor.COO, rank int, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("dist: no worker addresses")
	}
	if cfg.Kills != nil && len(cfg.Kills) != len(cfg.Addrs) {
		return nil, fmt.Errorf("dist: %d kill hooks for %d workers", len(cfg.Kills), len(cfg.Addrs))
	}
	s := &Session{
		cfg:     cfg,
		t:       t,
		rank:    rank,
		resultc: make(chan resMsg, 4*len(cfg.Addrs)+16),
		deathc:  make(chan int, len(cfg.Addrs)),
		closed:  make(chan struct{}),
	}
	s.stats.Workers = len(cfg.Addrs)
	for slot, addr := range cfg.Addrs {
		r, err := s.connect(slot, addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("dist: worker %d (%s): %w", slot, addr, err)
		}
		s.remotes = append(s.remotes, r)
	}
	for _, r := range s.remotes {
		go s.readLoop(r)
		go s.heartbeat(r)
	}
	return s, nil
}

func (s *Session) connect(slot int, addr string) (*remote, error) {
	conn, err := net.DialTimeout("tcp", addr, s.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	cc := &countingConn{Conn: conn, sent: &s.bytesSent, recv: &s.bytesRecv}
	r := &remote{
		slot:     slot,
		addr:     addr,
		conn:     cc,
		br:       bufio.NewReaderSize(cc, 1<<16),
		bw:       bufio.NewWriterSize(cc, 1<<16),
		hasShard: map[shardKey]bool{},
	}
	if s.cfg.Kills != nil {
		r.kill = s.cfg.Kills[slot]
	}
	r.alive.Store(true)
	r.lastPong.Store(time.Now().UnixNano())

	hello := &Hello{
		Version: ProtocolVersion,
		Order:   s.t.Order(),
		Rank:    s.rank,
		Dims:    s.t.Dims,
		Worker:  slot,
		Workers: len(s.cfg.Addrs),
	}
	if err := s.send(r, MsgHello, EncodeHello(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	// The handshake reply is read synchronously, before readLoop starts.
	conn.SetReadDeadline(time.Now().Add(s.cfg.DialTimeout))
	mt, payload, err := ReadFrame(r.br)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	switch mt {
	case MsgHelloAck:
		ack, err := DecodeHello(payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if ack.Version != ProtocolVersion {
			conn.Close()
			return nil, fmt.Errorf("protocol version mismatch: worker %d, coordinator %d", ack.Version, ProtocolVersion)
		}
	case MsgErr:
		e, derr := DecodeErr(payload)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, errors.New(e.Msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("handshake: unexpected %v frame", mt)
	}
	return r, nil
}

// send serializes one frame to a worker under its write mutex.
func (s *Session) send(r *remote, t MsgType, payload []byte) error {
	r.wmu.Lock()
	defer r.wmu.Unlock()
	if err := WriteFrame(r.bw, t, payload); err != nil {
		return err
	}
	return r.bw.Flush()
}

// markDead declares a worker lost exactly once: the connection is closed
// (unblocking its reader) and the death is queued for the dispatch loop.
func (s *Session) markDead(r *remote, reason string) {
	r.deadOnce.Do(func() {
		r.alive.Store(false)
		r.conn.Close()
		s.logf("dist: worker %d (%s) lost: %s", r.slot, r.addr, reason)
		select {
		case s.deathc <- r.slot:
		default: // deathc is sized for one death per worker; drop is impossible
		}
	})
}

func (s *Session) readLoop(r *remote) {
	for {
		mt, payload, err := ReadFrame(r.br)
		if err != nil {
			if err != io.EOF {
				s.markDead(r, err.Error())
			} else {
				s.markDead(r, "connection closed")
			}
			return
		}
		switch mt {
		case MsgPong:
			r.lastPong.Store(time.Now().UnixNano())
		case MsgResult:
			res, err := DecodeResult(payload)
			if err != nil {
				s.markDead(r, err.Error())
				return
			}
			select {
			case s.resultc <- resMsg{slot: r.slot, res: res}:
			case <-s.closed:
				return
			}
		case MsgErr:
			e, err := DecodeErr(payload)
			if err != nil {
				s.markDead(r, err.Error())
				return
			}
			select {
			case s.resultc <- resMsg{slot: r.slot, rerr: e}:
			case <-s.closed:
				return
			}
		default:
			s.markDead(r, fmt.Sprintf("unexpected %v frame", mt))
			return
		}
	}
}

func (s *Session) heartbeat(r *remote) {
	tick := time.NewTicker(s.cfg.HeartbeatEvery)
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-s.closed:
			return
		case <-tick.C:
		}
		if !r.alive.Load() {
			return
		}
		seq++
		if err := s.send(r, MsgPing, EncodeSeq(seq)); err != nil {
			s.markDead(r, fmt.Sprintf("ping: %v", err))
			return
		}
		silent := time.Since(time.Unix(0, r.lastPong.Load()))
		if silent > s.cfg.HeartbeatTimeout {
			s.markDead(r, fmt.Sprintf("heartbeat timeout (%v silent)", silent.Round(time.Millisecond)))
			return
		}
	}
}

// Alive returns how many workers are still usable.
func (s *Session) Alive() int {
	n := 0
	for _, r := range s.remotes {
		if r.alive.Load() {
			n++
		}
	}
	return n
}

// KillWorker forcibly removes a worker slot: the external kill hook when
// present (terminating a forked process), otherwise severing the
// connection. Used by chaos-plan crashes and tests.
func (s *Session) KillWorker(slot int) {
	if slot < 0 || slot >= len(s.remotes) {
		return
	}
	r := s.remotes[slot]
	if r.kill != nil {
		r.kill()
	}
	s.markDead(r, "killed")
}

// Stats returns the real measurements so far.
func (s *Session) Stats() Stats {
	st := s.stats
	st.BytesSent = s.bytesSent.Load()
	st.BytesRecv = s.bytesRecv.Load()
	st.WorkersAlive = s.Alive()
	return st
}

// Close shuts the session down: live workers get a Shutdown frame, every
// connection is closed, and background goroutines stop.
func (s *Session) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	for _, r := range s.remotes {
		if r == nil {
			continue
		}
		if r.alive.Load() {
			s.send(r, MsgShutdown, nil)
		}
		r.conn.Close()
	}
}

// broadcast sends one frame to every live worker. Send failures mark the
// worker dead; the next stage reassigns its work.
func (s *Session) broadcast(t MsgType, payload []byte) {
	for _, r := range s.remotes {
		if !r.alive.Load() {
			continue
		}
		if err := s.send(r, t, payload); err != nil {
			s.markDead(r, fmt.Sprintf("broadcast: %v", err))
		}
	}
}

// BroadcastFactor ships a full factor matrix to every live worker.
func (s *Session) BroadcastFactor(mode int, m *la.Dense) {
	s.broadcast(MsgFactor, EncodeFactor(&Factor{Mode: mode, M: m}))
}

// stageTask is one task of a fan-out round plus its scheduling state.
type stageTask struct {
	task *Task
	home int // preferred worker slot (the one holding the resident state)
	// prep readies a target worker for the task: re-sending a missing
	// shard, attaching MTTKRP rows for a substitute, etc. Called before
	// every (re)dispatch with the chosen target.
	prep func(r *remote, t *Task) error
	// onResult consumes the (first) result.
	onResult func(res *Result) error

	assigned int
	done     bool
}

// pick returns the live worker for a task: its home slot when alive, else
// the next live slot scanning upward (deterministic, so reruns with the
// same death schedule place tasks identically).
func (s *Session) pick(home int) *remote {
	n := len(s.remotes)
	for i := 0; i < n; i++ {
		r := s.remotes[(home+i)%n]
		if r.alive.Load() {
			return r
		}
	}
	return nil
}

func (s *Session) dispatch(st *stageTask) error {
	for {
		r := s.pick(st.assigned)
		if r == nil {
			return fmt.Errorf("dist: no live workers (stage %d)", s.stageSeq)
		}
		st.assigned = r.slot
		t := *st.task // shallow copy: prep may attach per-target payloads
		if st.prep != nil {
			if err := st.prep(r, &t); err != nil {
				if !r.alive.Load() {
					continue // prep's send killed the worker; try the next one
				}
				return err
			}
		}
		if err := s.send(r, MsgTask, EncodeTask(&t)); err != nil {
			s.markDead(r, fmt.Sprintf("task send: %v", err))
			continue
		}
		s.stats.Tasks++
		return nil
	}
}

// RunStage executes one fan-out round: chaos kills due at this stage fire
// first, every task is dispatched to its home worker (or a live
// substitute), and results are gathered, reassigning the tasks of any
// worker that dies mid-flight. Results may arrive in any order; callers
// apply them in a fixed order after the barrier.
func (s *Session) runStage(tasks []*stageTask) error {
	s.stageSeq++
	s.stats.Stages++
	if s.cfg.Plan != nil {
		crashed, _ := s.cfg.Plan.TakeFaults(s.stageSeq)
		for _, node := range crashed {
			s.logf("dist: chaos kills worker %d at stage %d", node, s.stageSeq)
			s.KillWorker(node)
		}
	}
	// Deaths that happened between stages (broadcast failures, heartbeat
	// timeouts) are consumed here; dispatch below already avoids them.
	for {
		select {
		case <-s.deathc:
			s.stats.WorkerDeaths++
			continue
		default:
		}
		break
	}

	byID := make(map[uint64]*stageTask, len(tasks))
	for _, st := range tasks {
		s.nextTask++
		st.task.ID = s.nextTask
		st.assigned = st.home
		byID[st.task.ID] = st
	}
	for _, st := range tasks {
		if err := s.dispatch(st); err != nil {
			return err
		}
	}
	if s.cfg.AfterDispatch != nil {
		s.cfg.AfterDispatch(s.stageSeq)
	}

	remaining := len(tasks)
	for remaining > 0 {
		select {
		case slot := <-s.deathc:
			s.stats.WorkerDeaths++
			for _, st := range tasks {
				if st.done || st.assigned != slot {
					continue
				}
				s.stats.Reassignments++
				// Restart the scan one past the dead slot so the
				// substitute choice is deterministic.
				st.assigned = (slot + 1) % len(s.remotes)
				if err := s.dispatch(st); err != nil {
					return err
				}
			}
		case m := <-s.resultc:
			if m.rerr != nil {
				return m.rerr
			}
			st := byID[m.res.ID]
			if st == nil || st.done {
				continue // duplicate after a reassignment race; identical bits either way
			}
			if m.slot != st.assigned {
				continue // stale result from a slot whose task was reassigned
			}
			st.done = true
			remaining--
			if st.onResult != nil {
				if err := st.onResult(m.res); err != nil {
					return err
				}
			}
		case <-s.closed:
			return fmt.Errorf("dist: session closed during stage %d", s.stageSeq)
		}
	}
	return nil
}

// buildShard materializes one (mode, range) shard from the coordinator's
// resident tensor, entries in the stable ModeIndex Perm order.
func (s *Session) buildShard(mode int, rg tensor.NNZRange) *Shard {
	mi := s.t.ModeIndex(mode)
	sh := &Shard{
		Mode:    mode,
		Order:   s.t.Order(),
		RowLo:   rg.RowLo,
		RowHi:   rg.RowHi,
		Entries: make([]tensor.Entry, 0, rg.Hi-rg.Lo),
	}
	for p := rg.Lo; p < rg.Hi; p++ {
		sh.Entries = append(sh.Entries, s.t.Entries[mi.Perm[p]])
	}
	return sh
}

// sendShard ships a shard to one worker, tracking residency for re-sends.
func (s *Session) sendShard(r *remote, sh *Shard) error {
	key := shardKey{sh.Mode, sh.RowLo, sh.RowHi}
	if r.hasShard[key] {
		return nil
	}
	if err := s.send(r, MsgShard, EncodeShard(sh)); err != nil {
		s.markDead(r, fmt.Sprintf("shard send: %v", err))
		return err
	}
	r.hasShard[key] = true
	return nil
}
