package dist

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cstf/internal/chaos"
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// Config parameterizes a coordinator session.
type Config struct {
	// Addrs are the worker TCP addresses, one per worker slot. Slot order
	// is the reduction rank order and must be identical across runs for
	// bitwise reproducibility (it is, for any fixed Addrs).
	Addrs []string

	// Kills, when non-nil, holds one kill hook per Addrs entry (e.g.
	// process kill for forked workers). Chaos-plan node crashes invoke it;
	// a nil entry falls back to severing the connection.
	Kills []func() error

	// NoDelta disables delta factor broadcasts: every mode-iteration ships
	// full factor matrices to every worker, the pre-v2 behavior. Kept for
	// A/B benchmarking; results are bitwise identical either way.
	NoDelta bool

	// NoPipeline disables overlap between a mode's partial-gram reduce and
	// the next mode's MTTKRP: every stage becomes a strict barrier. Kept
	// for A/B benchmarking; results are bitwise identical either way.
	NoPipeline bool

	// UseCSF makes workers run PartialMTTKRP with the SPLATT CSF kernel on
	// their shards. The run is then bitwise identical to the single-process
	// CSF solver (cpals CSFKernel), NOT to the COO reference — the factored
	// fiber arithmetic evaluates the same sums in a different order.
	UseCSF bool

	// DialTimeout bounds each worker dial attempt (default 5s).
	DialTimeout time.Duration

	// Retry is the shared backoff schedule: initial dials retry under it
	// (a worker whose listener comes up late still joins), dead workers
	// are redialed under its delay curve by the rejoin loop, and a task
	// may be (re)dispatched at most MaxAttempts+workers times before the
	// session aborts instead of bouncing forever. Zero fields take the
	// package defaults (5 attempts, 100ms..2s, x2, 50% jitter).
	Retry RetryPolicy

	// DisableRejoin turns off the background re-admission of dead
	// workers: a lost worker then stays lost for the session (the
	// pre-v3 behavior). Reassignment to survivors still happens.
	DisableRejoin bool

	// MinWorkers is the live-worker floor consumed by Solve: when the
	// live count drops below it (at an iteration boundary, or on a
	// mid-iteration fleet collapse), the coordinator degrades to a
	// local solve from its last iteration snapshot — bitwise identical
	// to the distributed result — instead of failing. 0 means 1
	// (degrade only when no workers remain); negative disables
	// degradation entirely, turning fleet collapse into a hard error.
	MinWorkers int

	// OnTornWrite, when non-nil, fires right after the iteration
	// checkpoint callback when the chaos plan schedules a TornWrite at
	// or before the current stage: the caller is expected to damage the
	// checkpoint file, simulating a crash mid-write. Test/bench only.
	OnTornWrite func(iter int)

	// HeartbeatEvery is the ping cadence (default 250ms).
	HeartbeatEvery time.Duration

	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared dead (default 10*HeartbeatEvery).
	HeartbeatTimeout time.Duration

	// Plan, when non-nil, schedules worker kills against the session's
	// stage clock: every chaos.NodeCrash event whose stage has arrived
	// kills the corresponding worker slot before the stage dispatches.
	// Other event kinds have no physical analogue here and are ignored.
	Plan *chaos.FaultPlan

	// AfterDispatch, when non-nil, runs after a stage's tasks have been
	// sent and before results are awaited. Tests use it to kill workers
	// with tasks in flight, exercising the reassignment path.
	AfterDispatch func(stage uint64)

	// Logf, when non-nil, receives coordinator lifecycle log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 10 * c.HeartbeatEvery
	}
	return c
}

// Stats are the REAL measurements of a distributed run — wall clock and
// bytes moved over sockets — kept deliberately separate from the modeled
// counters in internal/cluster.Metrics.
type Stats struct {
	Workers       int     // workers the session started with
	WorkersAlive  int     // workers still alive at the end
	WallSeconds   float64 // real elapsed time of the whole session
	BytesSent     int64   // bytes written to worker sockets
	BytesRecv     int64   // bytes read from worker sockets
	Stages        int     // task fan-out rounds executed
	Tasks         int     // tasks dispatched (including reassignments)
	WorkerDeaths  int     // workers lost (timeout, socket error, or kill)
	Reassignments int     // tasks re-dispatched after a worker death
	ShardResends  int     // shards re-shipped to a substitute worker
	Rejoins       int     // dead workers re-admitted mid-solve
	CorruptFrames int     // inbound frames rejected by the CRC32-C check
	Degraded      bool    // solve finished on the coordinator after fleet collapse

	// Communication-plan counters (payload bytes, excluding frame headers).
	ShardBytes  int64 // nonzero shards shipped at session start + resends
	FactorBytes int64 // factor state shipped: full broadcasts, deltas, resyncs
	DeltaFrames int   // FactorDelta frames sent
	DeltaRows   int64 // factor rows carried by those frames
	Resyncs     int   // full-factor resyncs forced by task reassignment
}

// bitset is a fixed-size row set (touched-row bookkeeping).
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// outFrame is one queued write to a worker.
type outFrame struct {
	t       MsgType
	payload []byte
}

// remote is the coordinator's view of one worker connection. A rejoined
// worker gets a brand-new remote for its slot — pointer identity therefore
// distinguishes "the connection that computed these rows" from "the slot".
type remote struct {
	slot  int
	addr  string
	conn  net.Conn
	cc    *countingConn
	br    *bufio.Reader
	bw    *bufio.Writer
	alive atomic.Bool
	// lastPong is the UnixNano of the latest heartbeat reply.
	lastPong atomic.Int64
	deadOnce sync.Once
	kill     func() error

	// outbox feeds the per-worker writer goroutine: sends are queued and
	// written asynchronously so a broadcast to worker k+1 overlaps the
	// frames still draining to worker k. gone unblocks queued senders when
	// the worker dies; wdone closes when the writer goroutine exits.
	outbox chan outFrame
	gone   chan struct{}
	wdone  chan struct{}

	// Solver-goroutine-only bookkeeping (no locking needed).
	hasShard map[shardKey]bool
	// touched[m] marks the factor-m rows this worker's resident work reads:
	// rows referenced by its shards of the other modes plus its gram/fit
	// block chunks. Frozen at session start; a death merges the dead
	// worker's sets into its substitute's.
	touched []bitset
	// prev[m] is the factor-m state this worker was last sent (nil until
	// the initial full broadcast). Deltas are computed against it, so a
	// worker is never sent a delta against state it does not hold.
	prev []*la.Dense
}

// resMsg is one reader-goroutine delivery to the dispatch loop.
type resMsg struct {
	slot int
	res  *Result
	rerr *RemoteError
}

// Session drives CP-ALS stages across a set of workers. All exported
// methods are called from a single goroutine (the solver); internal
// reader/writer/heartbeat goroutines communicate through channels.
type Session struct {
	cfg     Config
	t       *tensor.COO
	rank    int
	remotes []*remote

	resultc chan resMsg
	deathc  chan int
	rejoinc chan *remote
	closed  chan struct{}

	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	corruptRecvd atomic.Int64

	// frozen[k][m] is worker k's pristine touched-row set for factor m,
	// deep-copied at InitComms before any death merges widen the live
	// copies; a rejoining worker is re-admitted with a fresh clone of it.
	frozen [][]bitset
	// curFactors[m] is the live factor matrix for mode m (set by the
	// solver); a rejoining worker is brought current from it at install.
	curFactors []*la.Dense

	stageSeq uint64
	nextTask uint64
	inflight []*stage
	fatal    error
	stats    Stats

	// snap is the last iteration-boundary state snapshot, the seed for
	// graceful degradation to a coordinator-local solve.
	snap *snapshot
}

// minWorkers resolves the configured live-worker floor: default 1, -1 when
// degradation is disabled.
func (s *Session) minWorkers() int {
	if s.cfg.MinWorkers < 0 {
		return -1
	}
	if s.cfg.MinWorkers == 0 {
		return 1
	}
	return s.cfg.MinWorkers
}

// NoWorkersError reports a stage that found no live worker to run on, or
// a live count below the configured floor at an iteration boundary. The
// solver treats it as the trigger for graceful degradation (MinWorkers
// permitting); every other session error remains fatal.
type NoWorkersError struct {
	Stage uint64
	Live  int
	Floor int
}

func (e *NoWorkersError) Error() string {
	if e.Live == 0 {
		return fmt.Sprintf("dist: no live workers (stage %d)", e.Stage)
	}
	return fmt.Sprintf("dist: %d live workers below floor %d (stage %d)", e.Live, e.Floor, e.Stage)
}

func (s *Session) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// countingConn counts real bytes on the wire into the session totals and
// carries the chaos frame-corruption trigger: when corrupt is armed, the
// last byte of the next write batch is flipped before it reaches the
// socket, so the receiver's CRC32-C must catch it.
type countingConn struct {
	net.Conn
	sent, recv *atomic.Int64
	corrupt    atomic.Bool
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.recv.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	if len(p) > 0 && c.corrupt.CompareAndSwap(true, false) {
		q := append([]byte(nil), p...)
		q[len(q)-1] ^= 0x20
		p = q
	}
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// NewSession dials every worker, performs the handshake, and starts the
// reader, writer, and heartbeat goroutines. t is the coordinator's
// resident tensor (the source of shards and re-sends); rank is the
// decomposition rank.
func NewSession(t *tensor.COO, rank int, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("dist: no worker addresses")
	}
	if cfg.Kills != nil && len(cfg.Kills) != len(cfg.Addrs) {
		return nil, fmt.Errorf("dist: %d kill hooks for %d workers", len(cfg.Kills), len(cfg.Addrs))
	}
	s := &Session{
		cfg:     cfg,
		t:       t,
		rank:    rank,
		resultc: make(chan resMsg, 8*len(cfg.Addrs)+32),
		deathc:  make(chan int, len(cfg.Addrs)),
		rejoinc: make(chan *remote, len(cfg.Addrs)),
		closed:  make(chan struct{}),
	}
	s.stats.Workers = len(cfg.Addrs)
	for slot, addr := range cfg.Addrs {
		r, err := s.connect(slot, addr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("dist: worker %d (%s): %w", slot, addr, err)
		}
		s.remotes = append(s.remotes, r)
	}
	for _, r := range s.remotes {
		go s.readLoop(r)
		go s.writeLoop(r)
		go s.heartbeat(r)
	}
	return s, nil
}

// connect dials and handshakes one worker under the shared retry policy
// (a listener that comes up late, or a partitioned worker that is back,
// still joins). Safe to call off the solver goroutine: it touches only
// immutable session state and atomics.
func (s *Session) connect(slot int, addr string) (*remote, error) {
	conn, err := DialRetry(addr, s.cfg.DialTimeout, s.cfg.Retry, s.closed)
	if err != nil {
		return nil, err
	}
	cc := &countingConn{Conn: conn, sent: &s.bytesSent, recv: &s.bytesRecv}
	r := &remote{
		slot:     slot,
		addr:     addr,
		conn:     cc,
		cc:       cc,
		br:       bufio.NewReaderSize(cc, 1<<16),
		bw:       bufio.NewWriterSize(cc, 1<<16),
		outbox:   make(chan outFrame, 64),
		gone:     make(chan struct{}),
		wdone:    make(chan struct{}),
		hasShard: map[shardKey]bool{},
	}
	if s.cfg.Kills != nil {
		r.kill = s.cfg.Kills[slot]
	}
	r.alive.Store(true)
	r.lastPong.Store(time.Now().UnixNano())

	var flags uint8
	if s.cfg.UseCSF {
		flags |= HelloUseCSF
	}
	hello := &Hello{
		Version: ProtocolVersion,
		Flags:   flags,
		Order:   s.t.Order(),
		Rank:    s.rank,
		Dims:    s.t.Dims,
		Worker:  slot,
		Workers: len(s.cfg.Addrs),
	}
	// The handshake is written and read synchronously, before the writer
	// and reader goroutines start.
	if err := WriteFrame(r.bw, MsgHello, EncodeHello(hello)); err != nil {
		conn.Close()
		return nil, err
	}
	if err := r.bw.Flush(); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(s.cfg.DialTimeout))
	mt, payload, err := ReadFrame(r.br)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("handshake: %w", err)
	}
	switch mt {
	case MsgHelloAck:
		ack, err := DecodeHello(payload)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if ack.Version != ProtocolVersion {
			conn.Close()
			return nil, fmt.Errorf("protocol version mismatch: worker %d, coordinator %d", ack.Version, ProtocolVersion)
		}
	case MsgErr:
		e, derr := DecodeErr(payload)
		conn.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, errors.New(e.Msg)
	default:
		conn.Close()
		return nil, fmt.Errorf("handshake: unexpected %v frame", mt)
	}
	return r, nil
}

// enqueue queues one frame for a worker's writer goroutine. It blocks only
// when the queue is full and the worker is draining; it fails fast when the
// worker is dead or the session is closing.
func (s *Session) enqueue(r *remote, t MsgType, payload []byte) error {
	if !r.alive.Load() {
		return fmt.Errorf("dist: worker %d is down", r.slot)
	}
	select {
	case r.outbox <- outFrame{t: t, payload: payload}:
		return nil
	case <-r.gone:
		return fmt.Errorf("dist: worker %d is down", r.slot)
	case <-s.closed:
		return fmt.Errorf("dist: session closed")
	}
}

// writeLoop drains one worker's outbox onto its socket, batching flushes.
// On session close it drains what is queued and appends a Shutdown frame.
func (s *Session) writeLoop(r *remote) {
	defer close(r.wdone)
	write := func(f outFrame) bool {
		if err := WriteFrame(r.bw, f.t, f.payload); err != nil {
			s.markDead(r, fmt.Sprintf("write: %v", err))
			return false
		}
		return true
	}
	flush := func() bool {
		if err := r.bw.Flush(); err != nil {
			s.markDead(r, fmt.Sprintf("flush: %v", err))
			return false
		}
		return true
	}
	for {
		select {
		case f := <-r.outbox:
			if !write(f) {
				return
			}
			// Batch whatever else is queued before paying for a flush.
			for drained := false; !drained; {
				select {
				case f := <-r.outbox:
					if !write(f) {
						return
					}
				default:
					drained = true
				}
			}
			if !flush() {
				return
			}
		case <-r.gone:
			return
		case <-s.closed:
			for drained := false; !drained; {
				select {
				case f := <-r.outbox:
					if !write(f) {
						return
					}
				default:
					drained = true
				}
			}
			if write(outFrame{t: MsgShutdown}) {
				flush()
			}
			return
		}
	}
}

// markDead declares a worker lost exactly once: the connection is closed
// (unblocking its reader and any in-flight write), queued senders are
// released, and the death is queued for the dispatch loop.
func (s *Session) markDead(r *remote, reason string) {
	r.deadOnce.Do(func() {
		r.alive.Store(false)
		r.conn.Close()
		close(r.gone)
		s.logf("dist: worker %d (%s) lost: %s", r.slot, r.addr, reason)
		select {
		case s.deathc <- r.slot:
		default: // deathc is sized for one death per worker; drop is impossible
		}
	})
}

func (s *Session) readLoop(r *remote) {
	for {
		mt, payload, err := ReadFrame(r.br)
		if err != nil {
			var ce *CorruptFrameError
			if errors.As(err, &ce) {
				// Line corruption: frame boundaries can no longer be
				// trusted, so the connection resets; the death/rejoin
				// machinery retries the lost work.
				s.corruptRecvd.Add(1)
			}
			if err != io.EOF {
				s.markDead(r, err.Error())
			} else {
				s.markDead(r, "connection closed")
			}
			return
		}
		switch mt {
		case MsgPong:
			r.lastPong.Store(time.Now().UnixNano())
		case MsgResult:
			res, err := DecodeResult(payload)
			if err != nil {
				s.markDead(r, err.Error())
				return
			}
			select {
			case s.resultc <- resMsg{slot: r.slot, res: res}:
			case <-s.closed:
				return
			}
		case MsgErr:
			e, err := DecodeErr(payload)
			if err != nil {
				s.markDead(r, err.Error())
				return
			}
			select {
			case s.resultc <- resMsg{slot: r.slot, rerr: e}:
			case <-s.closed:
				return
			}
		default:
			s.markDead(r, fmt.Sprintf("unexpected %v frame", mt))
			return
		}
	}
}

func (s *Session) heartbeat(r *remote) {
	tick := time.NewTicker(s.cfg.HeartbeatEvery)
	defer tick.Stop()
	var seq uint64
	for {
		select {
		case <-s.closed:
			return
		case <-tick.C:
		}
		if !r.alive.Load() {
			return
		}
		seq++
		// Non-blocking: when the outbox is saturated with bulk frames the
		// connection is demonstrably draining, so skip the probe (and the
		// timeout check, which would be measuring our own backlog).
		select {
		case r.outbox <- outFrame{t: MsgPing, payload: EncodeSeq(seq)}:
		case <-r.gone:
			return
		default:
			continue
		}
		silent := time.Since(time.Unix(0, r.lastPong.Load()))
		if silent > s.cfg.HeartbeatTimeout {
			s.markDead(r, fmt.Sprintf("heartbeat timeout (%v silent)", silent.Round(time.Millisecond)))
			return
		}
	}
}

// Alive returns how many workers are still usable.
func (s *Session) Alive() int {
	n := 0
	for _, r := range s.remotes {
		if r.alive.Load() {
			n++
		}
	}
	return n
}

// KillWorker forcibly removes a worker slot: the external kill hook when
// present (terminating a forked process), otherwise severing the
// connection. Used by chaos-plan crashes and tests.
func (s *Session) KillWorker(slot int) {
	if slot < 0 || slot >= len(s.remotes) {
		return
	}
	r := s.remotes[slot]
	if r.kill != nil {
		r.kill()
	}
	s.markDead(r, "killed")
}

// PartitionWorker severs a worker's connection WITHOUT the kill hook: the
// process survives, so — unlike KillWorker — the rejoin loop can actually
// get it back. Used by chaos NetPartition events and tests.
func (s *Session) PartitionWorker(slot int) {
	if slot < 0 || slot >= len(s.remotes) {
		return
	}
	s.markDead(s.remotes[slot], "partitioned")
}

// CorruptNextFrame arms a one-shot bit flip on the next write batch to a
// worker. The worker's CRC32-C check must reject the damaged frame and
// reset the connection. Used by chaos FrameCorrupt events and tests.
func (s *Session) CorruptNextFrame(slot int) {
	if slot < 0 || slot >= len(s.remotes) {
		return
	}
	s.remotes[slot].cc.corrupt.Store(true)
}

// Stats returns the real measurements so far.
func (s *Session) Stats() Stats {
	st := s.stats
	st.BytesSent = s.bytesSent.Load()
	st.BytesRecv = s.bytesRecv.Load()
	st.CorruptFrames = int(s.corruptRecvd.Load())
	st.WorkersAlive = s.Alive()
	return st
}

// Close shuts the session down: writer goroutines drain and append a
// Shutdown frame to live workers, every connection is closed, and
// background goroutines stop.
func (s *Session) Close() {
	select {
	case <-s.closed:
		return
	default:
	}
	close(s.closed)
	deadline := time.After(250 * time.Millisecond)
	for _, r := range s.remotes {
		if r == nil {
			continue
		}
		if r.alive.Load() {
			select {
			case <-r.wdone:
			case <-deadline:
			}
		}
		r.conn.Close()
	}
	// Rejoined connections that were handed off but never installed.
	for {
		select {
		case r := <-s.rejoinc:
			r.conn.Close()
		default:
			return
		}
	}
}

// --- communication plan ---

// InitComms freezes the session's communication plan from the per-mode
// shard partition: for every worker and mode, the set of factor rows its
// resident work reads — rows referenced by its shards of the OTHER modes
// (MTTKRP inputs) plus the rows of its gram/fit block chunk. Subsequent
// FactorUpdate calls ship only touched rows that changed. No-op when
// delta broadcasting is disabled.
func (s *Session) InitComms(ranges [][]tensor.NNZRange) {
	if s.cfg.NoDelta {
		return
	}
	order := s.t.Order()
	W := len(s.remotes)
	for _, r := range s.remotes {
		r.touched = make([]bitset, order)
		for m := range r.touched {
			r.touched[m] = newBitset(s.t.Dims[m])
		}
		r.prev = make([]*la.Dense, order)
	}
	for mm := 0; mm < order; mm++ {
		mi := s.t.ModeIndex(mm)
		for k := range ranges[mm] {
			rg := ranges[mm][k]
			r := s.remotes[k]
			for p := rg.Lo; p < rg.Hi; p++ {
				e := &s.t.Entries[mi.Perm[p]]
				for m := 0; m < order; m++ {
					if m != mm {
						r.touched[m].set(int(e.Idx[m]))
					}
				}
			}
		}
	}
	for m := 0; m < order; m++ {
		nb := par.NumBlocks(s.t.Dims[m])
		if !distributeBlocks(nb, W) {
			continue // gram/fit for this mode run on the coordinator
		}
		for k := 0; k < W; k++ {
			lo, hi := blockChunk(k, nb, W)
			rlo, rhi := lo*par.BlockSize, hi*par.BlockSize
			if rhi > s.t.Dims[m] {
				rhi = s.t.Dims[m]
			}
			for i := rlo; i < rhi; i++ {
				s.remotes[k].touched[m].set(i)
			}
		}
	}
	// Freeze pristine copies before any death merges widen the live sets:
	// a rejoining worker is re-admitted with exactly its original plan.
	s.frozen = make([][]bitset, W)
	for k, r := range s.remotes {
		s.frozen[k] = make([]bitset, order)
		for m := range r.touched {
			s.frozen[k][m] = append(bitset(nil), r.touched[m]...)
		}
	}
}

// rowBitsEqual compares two rows bit for bit (Float64bits, so NaN payloads
// and signed zeros are compared exactly).
func rowBitsEqual(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// FactorUpdate ships the new state of factor `mode` to every live worker:
// the full matrix when delta broadcasting is off or the worker holds no
// prior state, otherwise only its touched rows whose bits changed since
// the last send (falling back to the full matrix when the delta would not
// be smaller). Enqueue-only — the per-worker writers overlap the actual
// socket traffic with whatever the coordinator does next.
func (s *Session) FactorUpdate(mode int, m *la.Dense) {
	var full []byte // lazily encoded once, shared across workers
	encodeFull := func() []byte {
		if full == nil {
			full = EncodeFactor(&Factor{Mode: mode, M: m})
		}
		return full
	}
	for _, r := range s.remotes {
		if !r.alive.Load() {
			continue
		}
		if s.cfg.NoDelta || r.prev == nil {
			if s.enqueue(r, MsgFactor, encodeFull()) == nil {
				s.stats.FactorBytes += int64(len(full))
			}
			continue
		}
		if r.prev[mode] == nil {
			if s.enqueue(r, MsgFactor, encodeFull()) == nil {
				s.stats.FactorBytes += int64(len(full))
				r.prev[mode] = m.Clone()
			}
			continue
		}
		prev := r.prev[mode]
		tb := r.touched[mode]
		var idxs []int
		for i := 0; i < m.Rows; i++ {
			if tb.get(i) && !rowBitsEqual(prev.Row(i), m.Row(i)) {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		if len(idxs)*(4+8*m.Cols) >= m.Rows*8*m.Cols {
			if s.enqueue(r, MsgFactor, encodeFull()) == nil {
				s.stats.FactorBytes += int64(len(full))
				r.prev[mode] = m.Clone()
			}
			continue
		}
		fd := &FactorDelta{Mode: mode, Cols: m.Cols, Indices: idxs,
			Rows: make([]float64, 0, len(idxs)*m.Cols)}
		for _, i := range idxs {
			fd.Rows = append(fd.Rows, m.Row(i)...)
		}
		payload := EncodeFactorDelta(fd)
		if s.enqueue(r, MsgFactorDelta, payload) == nil {
			s.stats.DeltaFrames++
			s.stats.DeltaRows += int64(len(idxs))
			s.stats.FactorBytes += int64(len(payload))
			for _, i := range idxs {
				copy(prev.Row(i), m.Row(i))
			}
		}
	}
}

// ensureCurrent guarantees a worker holds the current bits of factor
// `mode` before a task that reads it lands somewhere other than its home:
// a full-factor resync unless the worker is already current on every row
// of its touched set (the invariant delta broadcasts maintain; a task's
// read rows are always inside the set, because a death merges the dead
// worker's sets into the substitute before its tasks are re-dispatched).
// Deltas are never used here — a substitute may hold stale rows from
// before its sets were widened, and the contract is that a delta is only
// sent against state the worker is known to hold.
func (s *Session) ensureCurrent(r *remote, mode int, m *la.Dense) error {
	if s.cfg.NoDelta {
		return nil // every live worker already got the full broadcast
	}
	if prev := r.prev[mode]; prev != nil && prev.Rows == m.Rows && prev.Cols == m.Cols {
		tb := r.touched[mode]
		current := true
		for i := 0; i < m.Rows; i++ {
			if tb.get(i) && !rowBitsEqual(prev.Row(i), m.Row(i)) {
				current = false
				break
			}
		}
		if current {
			return nil
		}
	}
	payload := EncodeFactor(&Factor{Mode: mode, M: m})
	if err := s.enqueue(r, MsgFactor, payload); err != nil {
		return err
	}
	s.stats.FactorBytes += int64(len(payload))
	s.stats.Resyncs++
	r.prev[mode] = m.Clone()
	return nil
}

// --- stages ---

// stageTask is one task of a fan-out round plus its scheduling state.
type stageTask struct {
	task *Task
	home int // preferred worker slot (the one holding the resident state)
	// attempts counts dispatches (first send + every reassignment); the
	// session aborts a task that exceeds the retry cap instead of letting
	// a flapping worker bounce it forever.
	attempts int
	// prep readies a target worker for the task: re-sending a missing
	// shard, resyncing a stale factor, attaching MTTKRP rows for a
	// substitute, etc. Called before every (re)dispatch with the chosen
	// target.
	prep func(r *remote, t *Task) error
	// onResult consumes the (first) result.
	onResult func(res *Result) error

	assigned int
	done     bool
}

// stage is one in-flight fan-out round. Several stages may be in flight at
// once (pipelining); the event pump routes results to the right one by
// task ID and reassigns the tasks of dead workers across all of them.
type stage struct {
	seq       uint64
	tasks     []*stageTask
	byID      map[uint64]*stageTask
	remaining int
}

// pick returns the live worker for a task: its home slot when alive, else
// the next live slot scanning upward (deterministic, so reruns with the
// same death schedule place tasks identically).
func (s *Session) pick(home int) *remote {
	n := len(s.remotes)
	for i := 0; i < n; i++ {
		r := s.remotes[(home+i)%n]
		if r.alive.Load() {
			return r
		}
	}
	return nil
}

// maxTaskAttempts is the per-task dispatch cap: the policy's attempt
// budget plus one slot-scan's worth of headroom, so a long-lived session
// with many (recovered) deaths is not falsely aborted, but a task that
// keeps landing on dying workers is.
func (s *Session) maxTaskAttempts() int {
	return s.cfg.Retry.withDefaults().MaxAttempts + len(s.remotes)
}

func (s *Session) dispatch(st *stageTask) error {
	for {
		r := s.pick(st.assigned)
		if r == nil {
			return &NoWorkersError{Stage: s.stageSeq}
		}
		if st.attempts++; st.attempts > s.maxTaskAttempts() {
			return fmt.Errorf("dist: task %d (%v) exceeded %d dispatch attempts",
				st.task.ID, st.task.Kind, s.maxTaskAttempts())
		}
		st.assigned = r.slot
		t := *st.task // shallow copy: prep may attach per-target payloads
		if st.prep != nil {
			if err := st.prep(r, &t); err != nil {
				if !r.alive.Load() {
					continue // prep's send hit a dead worker; try the next one
				}
				return err
			}
		}
		if err := s.enqueue(r, MsgTask, EncodeTask(&t)); err != nil {
			if !r.alive.Load() {
				continue
			}
			return err
		}
		s.stats.Tasks++
		return nil
	}
}

// beginStage starts one fan-out round WITHOUT waiting for it: chaos kills
// due at this stage fire first, pending deaths are consumed, and every
// task is queued to its home worker (or a live substitute). The stage
// completes inside awaitStage — possibly after later stages have begun.
func (s *Session) beginStage(tasks []*stageTask) *stage {
	s.stageSeq++
	s.stats.Stages++
	if s.cfg.Plan != nil {
		events := s.cfg.Plan.TakeEvents(s.stageSeq,
			chaos.NodeCrash, chaos.NetPartition, chaos.FrameCorrupt)
		for _, ev := range events {
			switch ev.Kind {
			case chaos.NodeCrash:
				s.logf("dist: chaos kills worker %d at stage %d", ev.Node, s.stageSeq)
				s.KillWorker(ev.Node)
			case chaos.NetPartition:
				s.logf("dist: chaos partitions worker %d at stage %d", ev.Node, s.stageSeq)
				s.PartitionWorker(ev.Node)
			case chaos.FrameCorrupt:
				s.logf("dist: chaos corrupts next frame to worker %d at stage %d", ev.Node, s.stageSeq)
				s.CorruptNextFrame(ev.Node)
			}
		}
	}
	s.drainRejoins()
	s.drainDeaths()

	stg := &stage{
		seq:       s.stageSeq,
		tasks:     tasks,
		byID:      make(map[uint64]*stageTask, len(tasks)),
		remaining: len(tasks),
	}
	for _, st := range tasks {
		s.nextTask++
		st.task.ID = s.nextTask
		st.assigned = st.home
		stg.byID[st.task.ID] = st
	}
	s.inflight = append(s.inflight, stg)
	for _, st := range tasks {
		if err := s.dispatch(st); err != nil {
			s.setFatal(err)
			break
		}
	}
	if s.cfg.AfterDispatch != nil {
		s.cfg.AfterDispatch(stg.seq)
	}
	return stg
}

// awaitStage pumps events until the stage completes: results may arrive
// in any order and from any in-flight stage; deaths reassign tasks across
// all in-flight stages. Callers apply results in a fixed order after the
// await, so completion order never affects the arithmetic.
func (s *Session) awaitStage(stg *stage) error {
	for stg.remaining > 0 && s.fatal == nil {
		select {
		case slot := <-s.deathc:
			s.handleDeath(slot)
		case r := <-s.rejoinc:
			s.handleRejoin(r)
		case m := <-s.resultc:
			s.handleResult(m)
		case <-s.closed:
			s.setFatal(fmt.Errorf("dist: session closed during stage %d", stg.seq))
		}
	}
	for i, f := range s.inflight {
		if f == stg {
			s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
			break
		}
	}
	return s.fatal
}

// runStage is the barrier form: begin and immediately await.
func (s *Session) runStage(tasks []*stageTask) error {
	return s.awaitStage(s.beginStage(tasks))
}

func (s *Session) setFatal(err error) {
	if s.fatal == nil {
		s.fatal = err
	}
}

// drainDeaths consumes deaths that occurred while no stage was waiting
// (broadcast failures, heartbeat timeouts between stages).
func (s *Session) drainDeaths() {
	for {
		select {
		case slot := <-s.deathc:
			s.handleDeath(slot)
		default:
			return
		}
	}
}

// drainRejoins installs workers that reconnected while no stage was
// waiting, so a rejoin between iterations takes effect before the next
// dispatch round.
func (s *Session) drainRejoins() {
	for {
		select {
		case r := <-s.rejoinc:
			s.handleRejoin(r)
		default:
			return
		}
	}
}

// handleDeath processes one worker death: its touched-row sets merge into
// its deterministic substitute (so future deltas keep the substitute
// current for the inherited work), and its unfinished tasks across every
// in-flight stage are re-dispatched starting one past the dead slot.
func (s *Session) handleDeath(slot int) {
	s.stats.WorkerDeaths++
	dead := s.remotes[slot]
	s.spawnRejoin(slot)
	if dead.touched != nil {
		if sub := s.pick((slot + 1) % len(s.remotes)); sub != nil && sub.touched != nil {
			for m := range sub.touched {
				sub.touched[m].or(dead.touched[m])
			}
		}
	}
	for _, stg := range s.inflight {
		for _, st := range stg.tasks {
			if st.done || st.assigned != slot {
				continue
			}
			s.stats.Reassignments++
			// Restart the scan one past the dead slot so the substitute
			// choice is deterministic.
			st.assigned = (slot + 1) % len(s.remotes)
			if err := s.dispatch(st); err != nil {
				s.setFatal(err)
				return
			}
		}
	}
}

// --- rejoin ---

// TrackFactors registers the solver's live factor matrices so a rejoining
// worker can be brought current at install time. The slice and matrices
// are aliased, not copied — the solver mutates them in place and the
// session reads them only from the solver goroutine.
func (s *Session) TrackFactors(factors []*la.Dense) {
	s.curFactors = factors
}

// spawnRejoin starts the background redial loop for a dead slot: connect
// attempts under the shared policy, an ever-growing (capped, jittered)
// delay between rounds, until the worker answers the handshake again or
// the session closes. The fresh remote is handed to the solver goroutine
// over rejoinc; it is installed at the next event-pump tick.
func (s *Session) spawnRejoin(slot int) {
	if s.cfg.DisableRejoin {
		return
	}
	addr := s.cfg.Addrs[slot]
	p := s.cfg.Retry.withDefaults()
	seed := rng.Hash64(rng.HashAny(addr), uint64(slot), 0x7e01)
	go func() {
		for attempt := 1; ; attempt++ {
			// Cap the exponent so Delay stays O(1) and pinned at p.Max.
			da := attempt
			if da > 20 {
				da = 20
			}
			t := time.NewTimer(p.Delay(seed, da))
			select {
			case <-t.C:
			case <-s.closed:
				t.Stop()
				return
			}
			r, err := s.connect(slot, addr)
			if err == nil {
				select {
				case s.rejoinc <- r:
				case <-s.closed:
					r.conn.Close()
				}
				return
			}
			select {
			case <-s.closed:
				return
			default:
			}
		}
	}()
}

// handleRejoin re-admits a reconnected worker (solver goroutine only): a
// brand-new remote replaces the dead one in its slot, with a pristine
// clone of the slot's frozen touched-row plan and no resident state — the
// worker lost everything with its session, so shards re-ship lazily via
// the prep hooks and the current factors are shipped in full right here.
// From the next dispatch on, pick routes the slot's home tasks back to it.
func (s *Session) handleRejoin(nr *remote) {
	old := s.remotes[nr.slot]
	if old.alive.Load() {
		nr.conn.Close() // stale rejoin for a slot that is somehow live
		return
	}
	if s.frozen != nil {
		order := s.t.Order()
		nr.touched = make([]bitset, order)
		for m := range nr.touched {
			nr.touched[m] = append(bitset(nil), s.frozen[nr.slot][m]...)
		}
		nr.prev = make([]*la.Dense, order)
	}
	s.remotes[nr.slot] = nr
	go s.readLoop(nr)
	go s.writeLoop(nr)
	go s.heartbeat(nr)
	for m, f := range s.curFactors {
		if f == nil {
			continue
		}
		payload := EncodeFactor(&Factor{Mode: m, M: f})
		if s.enqueue(nr, MsgFactor, payload) == nil {
			s.stats.FactorBytes += int64(len(payload))
			if nr.prev != nil {
				nr.prev[m] = f.Clone()
			}
		}
	}
	s.stats.Rejoins++
	s.logf("dist: worker %d (%s) rejoined at stage %d", nr.slot, nr.addr, s.stageSeq)
}

// handleResult routes one worker result to its in-flight task.
func (s *Session) handleResult(m resMsg) {
	if m.rerr != nil {
		s.setFatal(m.rerr)
		return
	}
	for _, stg := range s.inflight {
		st, ok := stg.byID[m.res.ID]
		if !ok {
			continue
		}
		if st.done {
			return // duplicate after a reassignment race; identical bits either way
		}
		if m.slot != st.assigned {
			return // stale result from a slot whose task was reassigned
		}
		st.done = true
		stg.remaining--
		if st.onResult != nil {
			if err := st.onResult(m.res); err != nil {
				s.setFatal(err)
			}
		}
		return
	}
}

// buildShard materializes one (mode, range) shard from the coordinator's
// resident tensor, entries in the stable ModeIndex Perm order.
func (s *Session) buildShard(mode int, rg tensor.NNZRange) *Shard {
	mi := s.t.ModeIndex(mode)
	sh := &Shard{
		Mode:    mode,
		Order:   s.t.Order(),
		RowLo:   rg.RowLo,
		RowHi:   rg.RowHi,
		Entries: make([]tensor.Entry, 0, rg.Hi-rg.Lo),
	}
	for p := rg.Lo; p < rg.Hi; p++ {
		sh.Entries = append(sh.Entries, s.t.Entries[mi.Perm[p]])
	}
	return sh
}

// sendShard ships a shard to one worker, tracking residency for re-sends.
func (s *Session) sendShard(r *remote, sh *Shard) error {
	key := shardKey{sh.Mode, sh.RowLo, sh.RowHi}
	if r.hasShard[key] {
		return nil
	}
	payload := EncodeShard(sh)
	if err := s.enqueue(r, MsgShard, payload); err != nil {
		return err
	}
	s.stats.ShardBytes += int64(len(payload))
	r.hasShard[key] = true
	return nil
}

// sendShardReplace ships a shard unconditionally, replacing whatever the
// worker holds under the same (mode, row range) key. The rals kernel uses
// it for per-epoch sampled shards, whose contents change under a stable
// key; callers that need epoch awareness track which generation each
// connection holds themselves.
func (s *Session) sendShardReplace(r *remote, sh *Shard) error {
	payload := EncodeShard(sh)
	if err := s.enqueue(r, MsgShard, payload); err != nil {
		return err
	}
	s.stats.ShardBytes += int64(len(payload))
	r.hasShard[shardKey{sh.Mode, sh.RowLo, sh.RowHi}] = true
	return nil
}
