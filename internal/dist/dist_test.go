package dist

import (
	"errors"
	"math"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"cstf/internal/chaos"
	"cstf/internal/cpals"
	"cstf/internal/tensor"
)

func plantedTensor() *tensor.COO {
	return tensor.GenLowRank(42, 3000, 4, 0.01, 60, 50, 40)
}

func solveOpts() cpals.Options {
	return cpals.Options{Rank: 4, MaxIters: 5, Seed: 7, Parallelism: 3}
}

// sameBits asserts two results are bitwise identical: lambda, every factor
// element, and every per-iteration fit.
func sameBits(t *testing.T, label string, want, got *cpals.Result) {
	t.Helper()
	if got.Iters != want.Iters {
		t.Fatalf("%s: iters %d != %d", label, got.Iters, want.Iters)
	}
	for r := range want.Lambda {
		if math.Float64bits(got.Lambda[r]) != math.Float64bits(want.Lambda[r]) {
			t.Fatalf("%s: lambda[%d] %v != %v", label, r, got.Lambda[r], want.Lambda[r])
		}
	}
	for n, f := range want.Factors {
		g := got.Factors[n]
		if g.Rows != f.Rows || g.Cols != f.Cols {
			t.Fatalf("%s: factor %d shape %dx%d != %dx%d", label, n, g.Rows, g.Cols, f.Rows, f.Cols)
		}
		for i, v := range f.Data {
			if math.Float64bits(g.Data[i]) != math.Float64bits(v) {
				t.Fatalf("%s: factor %d element %d: %v != %v", label, n, i, g.Data[i], v)
			}
		}
	}
	if len(got.Fits) != len(want.Fits) {
		t.Fatalf("%s: %d fits != %d", label, len(got.Fits), len(want.Fits))
	}
	for i := range want.Fits {
		if math.Float64bits(got.Fits[i]) != math.Float64bits(want.Fits[i]) {
			t.Fatalf("%s: fit[%d] %v != %v", label, i, got.Fits[i], want.Fits[i])
		}
	}
}

// TestDistBitwiseMatchesSerial is the PR 1 determinism guarantee extended
// over the wire: 1, 2, and 4 distributed workers all reproduce the serial
// solver bit for bit on a planted-rank tensor.
func TestDistBitwiseMatchesSerial(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		c, err := StartInProcess(n)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := Solve(x, opts, c.Config())
		c.Close()
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		label := map[int]string{1: "1 worker", 2: "2 workers", 4: "4 workers"}[n]
		sameBits(t, label, want, got)
		if stats.Workers != n || stats.WorkersAlive != n {
			t.Fatalf("%s: stats workers %d/%d", label, stats.WorkersAlive, stats.Workers)
		}
		if stats.BytesSent == 0 || stats.BytesRecv == 0 || stats.WallSeconds <= 0 {
			t.Fatalf("%s: real measurements missing: %+v", label, stats)
		}
		if stats.WorkerDeaths != 0 || stats.Reassignments != 0 {
			t.Fatalf("%s: unexpected failures: %+v", label, stats)
		}
	}
}

// TestChaosKillSurvives injects a NodeCrash through the chaos plan: a real
// worker connection is severed at a stage boundary mid-iteration, the
// coordinator re-homes its ranges (re-shipping shards), and the result is
// still bitwise identical to the serial run.
func TestChaosKillSurvives(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	// Stage 4 is inside iteration 0 (stages run MTTKRP/RowSolve/Gram per
	// mode), so the kill lands mid-iteration with factors in flight.
	cfg.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.NodeCrash, Node: 1, Stage: 4})
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "after chaos kill", want, got)
	if stats.WorkerDeaths != 1 || stats.WorkersAlive != 2 {
		t.Fatalf("want exactly one dead worker, got %+v", stats)
	}
	if stats.ShardResends == 0 {
		t.Fatalf("dead worker's shards were never re-shipped: %+v", stats)
	}
}

// TestMidFlightKillReassigns kills a worker AFTER its tasks were dispatched,
// forcing the in-flight reassignment path rather than the stage-boundary
// avoidance path. The result must still match serial bit for bit.
func TestMidFlightKillReassigns(t *testing.T) {
	x := plantedTensor()
	opts := solveOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartInProcess(3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg := c.Config()
	var once sync.Once
	cfg.AfterDispatch = func(stage uint64) {
		if stage == 2 {
			once.Do(func() { c.Kills[2]() })
		}
	}
	got, stats, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "after mid-flight kill", want, got)
	if stats.WorkerDeaths != 1 {
		t.Fatalf("want one dead worker, got %+v", stats)
	}
}

// TestAllWorkersDead exercises both fleet-collapse behaviours: by default
// the coordinator degrades to a local solve from its iteration-boundary
// snapshot (bitwise identical to the serial run, no hang), and with the
// floor disabled (MinWorkers < 0) the collapse surfaces as a typed
// *NoWorkersError.
func TestAllWorkersDead(t *testing.T) {
	x := plantedTensor()
	serial, err := cpals.Solve(x, solveOpts())
	if err != nil {
		t.Fatal(err)
	}

	killAll := func(c *LocalCluster) func(uint64) {
		return func(stage uint64) {
			if stage == 1 {
				c.Kills[0]()
				c.Kills[1]()
			}
		}
	}

	t.Run("degrades", func(t *testing.T) {
		c, err := StartInProcess(2)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cfg := c.Config()
		cfg.AfterDispatch = killAll(c)
		res, st, err := Solve(x, solveOpts(), cfg)
		if err != nil {
			t.Fatalf("degraded solve failed: %v", err)
		}
		if !st.Degraded {
			t.Fatal("Stats.Degraded not set after fleet collapse")
		}
		sameBits(t, "degraded", serial, res)
	})

	t.Run("floor-disabled", func(t *testing.T) {
		c, err := StartInProcess(2)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cfg := c.Config()
		cfg.MinWorkers = -1
		cfg.AfterDispatch = killAll(c)
		_, _, err = Solve(x, solveOpts(), cfg)
		var nw *NoWorkersError
		if !errors.As(err, &nw) {
			t.Fatalf("want *NoWorkersError with floor disabled, got %v", err)
		}
	})
}

// TestSpawnedWorkerProcesses runs the full OS-process story: build the real
// cstf-worker binary, fork two of them, solve over TCP, and kill one
// process mid-run on a second solve.
func TestSpawnedWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "cstf-worker")
	build := exec.Command("go", "build", "-o", bin, "cstf/cmd/cstf-worker")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cstf-worker: %v\n%s", err, out)
	}

	x := plantedTensor()
	opts := solveOpts()
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}

	c, err := SpawnWorkers(bin, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, stats, err := Solve(x, opts, c.Config())
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "2 worker processes", want, got)
	if stats.BytesSent == 0 || stats.BytesRecv == 0 {
		t.Fatalf("no bytes on the wire: %+v", stats)
	}

	// Second cluster: SIGKILL one process mid-run via the chaos plan.
	c2, err := SpawnWorkers(bin, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	cfg := c2.Config()
	cfg.Plan = chaos.NewPlanFromEvents(chaos.Event{Kind: chaos.NodeCrash, Node: 0, Stage: 5})
	got2, stats2, err := Solve(x, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "after process kill", want, got2)
	if stats2.WorkerDeaths != 1 {
		t.Fatalf("want one dead process, got %+v", stats2)
	}
}
