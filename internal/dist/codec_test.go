package dist

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"cstf/internal/la"
	"cstf/internal/tensor"
)

func testShard() *Shard {
	s := &Shard{Mode: 1, Order: 3, RowLo: 4, RowHi: 9}
	// Ascending mode-1 rows with repeats — the stable Perm order the
	// row-grouped encoding requires.
	rows := []uint32{4, 4, 5, 6, 6, 6, 8}
	for i := 0; i < 7; i++ {
		var e tensor.Entry
		e.Idx[0] = uint32(i * 3)
		e.Idx[1] = rows[i]
		e.Idx[2] = uint32(i)
		e.Val = 0.5 + float64(i)
		s.Entries = append(s.Entries, e)
	}
	return s
}

func denseOf(rows, cols int, base float64) *la.Dense {
	m := la.NewDense(rows, cols)
	for i := range m.Data {
		m.Data[i] = base + float64(i)*0.25
	}
	return m
}

func TestCodecRoundTrips(t *testing.T) {
	hello := &Hello{Version: ProtocolVersion, Order: 3, Rank: 5, Dims: []int{10, 20, 30}, Worker: 2, Workers: 4}
	if got, err := DecodeHello(EncodeHello(hello)); err != nil || !reflect.DeepEqual(got, hello) {
		t.Fatalf("hello round trip: got %+v, err %v", got, err)
	}

	sh := testShard()
	if got, err := DecodeShard(EncodeShard(sh)); err != nil || !reflect.DeepEqual(got, sh) {
		t.Fatalf("shard round trip: got %+v, err %v", got, err)
	}

	f := &Factor{Mode: 2, M: denseOf(4, 3, 1)}
	if got, err := DecodeFactor(EncodeFactor(f)); err != nil || !reflect.DeepEqual(got, f) {
		t.Fatalf("factor round trip: got %+v, err %v", got, err)
	}

	fd := &FactorDelta{Mode: 1, Cols: 3, Indices: []int{0, 4, 17}, Rows: denseOf(3, 3, -2).Data}
	if got, err := DecodeFactorDelta(EncodeFactorDelta(fd)); err != nil || !reflect.DeepEqual(got, fd) {
		t.Fatalf("factor delta round trip: got %+v, err %v", got, err)
	}

	tasks := []*Task{
		{ID: 7, Kind: TaskPartialMTTKRP, Mode: 1, RowLo: 3, RowHi: 9},
		{ID: 8, Kind: TaskGram, Mode: 0, BlockLo: 2, BlockHi: 5},
		{ID: 9, Kind: TaskRowSolve, Mode: 2, RowLo: 0, RowHi: 4, Pinv: denseOf(3, 3, -1)},
		{ID: 10, Kind: TaskRowSolve, Mode: 2, RowLo: 0, RowHi: 4, Pinv: denseOf(3, 3, 2), MRows: denseOf(4, 3, 0.5)},
		{ID: 11, Kind: TaskFitPartial, Mode: 2, BlockLo: 0, BlockHi: 2, Lambda: []float64{1, 2.5, math.Pi}, MRows: denseOf(6, 3, 3)},
	}
	for _, task := range tasks {
		got, err := DecodeTask(EncodeTask(task))
		if err != nil || !reflect.DeepEqual(got, task) {
			t.Fatalf("task %d round trip: got %+v, err %v", task.ID, got, err)
		}
	}

	results := []*Result{
		{ID: 7, Kind: TaskPartialMTTKRP, RowLo: 3, Rows: denseOf(6, 5, 0)},
		{ID: 8, Kind: TaskGram, BlockLo: 2, Grams: []*la.Dense{denseOf(3, 3, 0), denseOf(3, 3, 9)}},
		{ID: 11, Kind: TaskFitPartial, BlockLo: 0, Partials: []float64{1.5, -2.25}},
	}
	for _, r := range results {
		got, err := DecodeResult(EncodeResult(r))
		if err != nil || !reflect.DeepEqual(got, r) {
			t.Fatalf("result %d round trip: got %+v, err %v", r.ID, got, err)
		}
	}

	e := &RemoteError{TaskID: 42, Msg: "shard missing"}
	if got, err := DecodeErr(EncodeErr(e)); err != nil || !reflect.DeepEqual(got, e) {
		t.Fatalf("err round trip: got %+v, err %v", got, err)
	}
	if got, err := DecodeSeq(EncodeSeq(99)); err != nil || got != 99 {
		t.Fatalf("seq round trip: got %d, err %v", got, err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := EncodeSeq(123)
	if err := WriteFrame(&buf, MsgPing, payload); err != nil {
		t.Fatal(err)
	}
	mt, got, err := ReadFrame(&buf)
	if err != nil || mt != MsgPing || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: type %v payload %x err %v", mt, got, err)
	}
}

// wantDecodeError asserts the decoder rejects the input with a typed
// *DecodeError rather than panicking or succeeding.
func wantDecodeError(t *testing.T, name string, err error) {
	t.Helper()
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("%s: want *DecodeError, got %v", name, err)
	}
}

func TestCodecRejectsMalformedInput(t *testing.T) {
	full := EncodeShard(testShard())
	// Every truncation of a valid message must fail cleanly.
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeShard(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	_, err := DecodeShard(append(append([]byte{}, full...), 0xFF))
	wantDecodeError(t, "trailing byte", err)

	// Corrupt the entry count upward: count validation must catch it
	// before any allocation.
	corrupt := append([]byte{}, full...)
	corrupt[10] = 0xFF // high byte of the u32 entry count at offset 10
	_, err = DecodeShard(corrupt)
	wantDecodeError(t, "inflated count", err)

	// A row-group delta that lands outside [RowLo, RowHi): offset 14 is the
	// first group's row-delta varint (1 for row 4); 0x3F would mean row 66.
	corrupt = append([]byte{}, full...)
	corrupt[14] = 0x3F
	_, err = DecodeShard(corrupt)
	wantDecodeError(t, "out-of-range row group", err)

	// Inverted task range and unknown kind.
	_, err = DecodeTask(EncodeTask(&Task{ID: 1, Kind: TaskGram, BlockLo: 5, BlockHi: 2}))
	wantDecodeError(t, "inverted range", err)
	_, err = DecodeTask(EncodeTask(&Task{ID: 1, Kind: TaskKind(200)}))
	wantDecodeError(t, "unknown kind", err)

	// Bad dense presence byte.
	raw := EncodeTask(&Task{ID: 1, Kind: TaskGram, BlockLo: 0, BlockHi: 1})
	raw[26] = 7 // pinv presence byte
	_, err = DecodeTask(raw)
	wantDecodeError(t, "presence byte", err)

	// Hello with order beyond MaxOrder (byte 3: version u16, flags u8, order).
	h := EncodeHello(&Hello{Version: 1, Order: 3, Rank: 2, Dims: []int{2, 2, 2}})
	h[3] = 200
	_, err = DecodeHello(h)
	wantDecodeError(t, "order", err)

	// Factor deltas: non-ascending indices and an inflated row count.
	fd := &FactorDelta{Mode: 1, Cols: 2, Indices: []int{3, 5, 9}, Rows: make([]float64, 6)}
	dRaw := EncodeFactorDelta(fd)
	swap := append([]byte{}, dRaw...)
	copy(swap[7:11], swap[11:15]) // duplicate index 5 over index 3
	_, err = DecodeFactorDelta(swap)
	wantDecodeError(t, "non-ascending delta", err)
	inflated := append([]byte{}, dRaw...)
	inflated[4] = 0xFF // low bytes of the row count
	_, err = DecodeFactorDelta(inflated)
	wantDecodeError(t, "inflated delta count", err)
	for cut := 0; cut < len(dRaw); cut++ {
		if _, err := DecodeFactorDelta(dRaw[:cut]); err == nil {
			t.Fatalf("delta truncation at %d accepted", cut)
		}
	}

	// Frames: unknown type byte and oversized length (9-byte header:
	// type, u32 length, u32 crc32c).
	_, _, err = ReadFrame(bytes.NewReader([]byte{0xEE, 0, 0, 0, 0, 0, 0, 0, 0}))
	wantDecodeError(t, "frame type", err)
	_, _, err = ReadFrame(bytes.NewReader([]byte{byte(MsgPing), 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}))
	wantDecodeError(t, "frame length", err)
}

// TestFrameChecksumDetectsCorruption flips every bit of a framed message
// in turn; no flip may yield the original frame back as a clean read. A
// flipped payload or type byte must surface as *CorruptFrameError (or a
// *DecodeError for an invalid type byte); a flipped length byte either
// fails the checksum over the mis-sized span or starves the read.
func TestFrameChecksumDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	payload := EncodeSeq(0x1122334455667788)
	if err := WriteFrame(&buf, MsgPing, payload); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	sawCorrupt := false
	for i := 0; i < len(frame)*8; i++ {
		mut := append([]byte{}, frame...)
		mut[i/8] ^= 1 << (i % 8)
		mt, got, err := ReadFrame(bytes.NewReader(mut))
		if err == nil && mt == MsgPing && bytes.Equal(got, payload) {
			t.Fatalf("bit flip %d absorbed silently", i)
		}
		var ce *CorruptFrameError
		if errors.As(err, &ce) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("no flip produced a *CorruptFrameError")
	}
	// And a double check that an intact frame still reads cleanly.
	if _, got, err := ReadFrame(bytes.NewReader(frame)); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("intact frame rejected: %x err %v", got, err)
	}
}

// FuzzDecode drives every payload decoder with arbitrary bytes; the only
// acceptable failure mode is a returned error.
func FuzzDecode(f *testing.F) {
	f.Add(uint8(MsgHello), EncodeHello(&Hello{Version: 1, Order: 3, Rank: 4, Dims: []int{5, 6, 7}, Worker: 1, Workers: 2}))
	f.Add(uint8(MsgShard), EncodeShard(testShard()))
	f.Add(uint8(MsgFactor), EncodeFactor(&Factor{Mode: 1, M: denseOf(3, 2, 0)}))
	f.Add(uint8(MsgFactorDelta), EncodeFactorDelta(&FactorDelta{Mode: 0, Cols: 2, Indices: []int{1, 2}, Rows: []float64{1, 2, 3, 4}}))
	f.Add(uint8(MsgTask), EncodeTask(&Task{ID: 3, Kind: TaskRowSolve, RowLo: 1, RowHi: 4, Pinv: denseOf(2, 2, 1)}))
	f.Add(uint8(MsgTask), EncodeTask(&Task{ID: 4, Kind: TaskFitPartial, BlockLo: 0, BlockHi: 1, Lambda: []float64{1, 2}, MRows: denseOf(2, 2, 0)}))
	f.Add(uint8(MsgResult), EncodeResult(&Result{ID: 3, Kind: TaskGram, Grams: []*la.Dense{denseOf(2, 2, 0)}}))
	f.Add(uint8(MsgErr), EncodeErr(&RemoteError{TaskID: 9, Msg: "boom"}))
	f.Add(uint8(MsgPing), EncodeSeq(77))
	f.Add(uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, kind uint8, b []byte) {
		switch MsgType(kind) {
		case MsgHello, MsgHelloAck:
			DecodeHello(b)
		case MsgShard:
			DecodeShard(b)
		case MsgFactor:
			DecodeFactor(b)
		case MsgFactorDelta:
			DecodeFactorDelta(b)
		case MsgTask:
			DecodeTask(b)
		case MsgResult:
			DecodeResult(b)
		case MsgErr:
			DecodeErr(b)
		default:
			DecodeSeq(b)
		}
		// Frame parsing must also be total on arbitrary bytes.
		ReadFrame(bytes.NewReader(b))
	})
}
