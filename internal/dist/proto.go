// Package dist is the real distributed runtime: a coordinator/worker
// system that executes CP-ALS stages across OS processes over TCP. It is
// the first execution path in this repository that moves actual bytes over
// actual sockets — everything in internal/cluster remains a cost model.
//
// There is no closure shipping. The protocol has a fixed task vocabulary —
// PartialMTTKRP, Gram, RowSolve, FitPartial — mirroring the observation
// (DFacTo, SpDISTAL) that the distributed MTTKRP decomposes into a small
// set of shippable stages. The coordinator partitions the tensor once per
// mode with tensor.ModeIndex row partitioning, ships nonzero shards at
// session start, ships each updated factor per mode-iteration as a delta
// of the rows that changed AND that the receiving worker's shards touch
// (full matrices only at session start and on resync), and reduces partial
// grams/MTTKRPs in a fixed order, so the factorization is bitwise
// identical to the single-process cpals.Solve for every worker count and
// every task placement (including after worker deaths):
//
//   - PartialMTTKRP output rows are disjoint between workers (the shards
//     are cut at output-row boundaries), so "reduction" is assembly and
//     each row's accumulation order is the shard's stable Perm order —
//     exactly the per-row sequence of the shared-memory kernel.
//   - Gram and FitPartial return one partial per par.BlockSize row block;
//     the coordinator sums partials in global block order, the identical
//     summation tree la.GramParallel and par.SumBlocks use.
//   - RowSolve and factor normalization are elementwise / per-row.
//
// Failure handling: the coordinator pings every worker; a missed-heartbeat
// timeout, a checksum-failed frame, or any socket error marks the worker
// dead, and its outstanding tasks are reassigned to survivors, re-sending
// the needed shard or MTTKRP rows from the coordinator's resident copy —
// and a full-factor resync for any factor the substitute holds stale,
// never a delta against state it was not sent. A dead worker is not gone
// for good: a background rejoin loop redials its address with exponential
// backoff + jitter and, when the worker answers the handshake again, it is
// re-admitted mid-solve — shards re-ship lazily, factors resync in full —
// and its home tasks route back to it. If the live fleet falls below
// Config.MinWorkers, the coordinator degrades to a local solve from its
// last iteration-boundary snapshot, bitwise identical to the distributed
// result. A chaos.FaultPlan can kill real worker processes, sever
// connections without killing (NetPartition), and corrupt outbound frames
// (FrameCorrupt) at stage boundaries, driving the same recovery paths the
// simulator models.
package dist

import (
	"fmt"

	"cstf/internal/la"
	"cstf/internal/tensor"
)

// ProtocolVersion is bumped on any wire-format change. Hello carries it;
// a mismatch aborts the handshake with a typed error. Version 2 added
// FactorDelta frames, the row-grouped varint shard encoding, and the Hello
// flags byte. Version 3 widened the frame header with a CRC32-C over the
// type byte and payload.
const ProtocolVersion = 3

// MsgType identifies a protocol frame.
type MsgType uint8

// The protocol frame types. Coordinator-to-worker unless noted.
const (
	MsgHello       MsgType = iota + 1 // session config
	MsgHelloAck                       // worker -> coordinator: handshake reply
	MsgShard                          // one mode's nonzero shard for a row range
	MsgFactor                         // full factor matrix broadcast
	MsgTask                           // task descriptor
	MsgResult                         // worker -> coordinator: task result
	MsgPing                           // heartbeat probe
	MsgPong                           // worker -> coordinator: heartbeat reply
	MsgErr                            // worker -> coordinator: task failure
	MsgShutdown                       // end of session
	MsgFactorDelta                    // changed factor rows since the last send
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgShard:
		return "shard"
	case MsgFactor:
		return "factor"
	case MsgTask:
		return "task"
	case MsgResult:
		return "result"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgErr:
		return "err"
	case MsgShutdown:
		return "shutdown"
	case MsgFactorDelta:
		return "factor-delta"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// TaskKind enumerates the fixed task vocabulary.
type TaskKind uint8

// The four shippable CP-ALS stages.
const (
	// TaskPartialMTTKRP computes the MTTKRP output rows [RowLo, RowHi) of
	// one mode from the resident shard for that (mode, range).
	TaskPartialMTTKRP TaskKind = iota + 1
	// TaskGram computes per-block partial gram matrices A^T A over the
	// global row blocks [BlockLo, BlockHi) of the resident factor.
	TaskGram
	// TaskRowSolve applies the pseudo-inverse of the gram Hadamard to the
	// MTTKRP rows [RowLo, RowHi): a_i = m_i * Pinv, row by row.
	TaskRowSolve
	// TaskFitPartial computes per-block partials of the <X, X_hat> inner
	// product over the global row blocks [BlockLo, BlockHi) of the last
	// mode's MTTKRP result.
	TaskFitPartial
)

func (k TaskKind) String() string {
	switch k {
	case TaskPartialMTTKRP:
		return "partial-mttkrp"
	case TaskGram:
		return "gram"
	case TaskRowSolve:
		return "row-solve"
	case TaskFitPartial:
		return "fit-partial"
	default:
		return fmt.Sprintf("task(%d)", uint8(k))
	}
}

// Hello flag bits (Hello.Flags).
const (
	// HelloUseCSF asks the worker to run PartialMTTKRP with the SPLATT
	// CSF kernel on its shards instead of the per-nonzero COO loop.
	HelloUseCSF uint8 = 1 << 0
)

// Hello is the session handshake: tensor shape, decomposition rank, and
// the worker's identity within the session.
type Hello struct {
	Version uint16
	Flags   uint8 // Hello* bits
	Order   int
	Rank    int   // decomposition rank R
	Dims    []int // len Order
	Worker  int   // this worker's slot (rank order of reductions)
	Workers int   // session worker count
}

// Shard is one worker's share of a mode's nonzeros: exactly the entries
// whose Idx[Mode] falls in [RowLo, RowHi), in the stable ModeIndex Perm
// order. Only the first Order indices of each entry are on the wire.
type Shard struct {
	Mode         int
	Order        int
	RowLo, RowHi int
	Entries      []tensor.Entry
}

// Factor is a full factor-matrix broadcast for one mode.
type Factor struct {
	Mode int
	M    *la.Dense
}

// FactorDelta carries the factor rows of one mode that changed since the
// coordinator's last send to this worker. Rows[i] (a length-Cols row)
// replaces row Indices[i] of the resident factor; Indices are strictly
// ascending. A delta is only ever sent against state the worker is known
// to hold — a worker that never received the mode's full factor rejects
// the frame as a protocol error.
type FactorDelta struct {
	Mode    int
	Cols    int
	Indices []int     // strictly ascending row indices
	Rows    []float64 // len(Indices)*Cols, row-major
}

// Task is one task descriptor. Which fields are meaningful depends on
// Kind; optional payloads (Pinv, Lambda, MRows) are presence-flagged on
// the wire.
type Task struct {
	ID   uint64
	Kind TaskKind
	Mode int

	// Row range (PartialMTTKRP, RowSolve).
	RowLo, RowHi int

	// Global par.BlockSize block range (Gram, FitPartial).
	BlockLo, BlockHi int

	// Pinv is the R x R pseudo-inverse of the gram Hadamard (RowSolve).
	Pinv *la.Dense

	// Lambda is the column-weight vector (FitPartial).
	Lambda []float64

	// MRows carries MTTKRP output rows the executing worker does not hold:
	// always for FitPartial (fit blocks do not align with MTTKRP ranges),
	// and for RowSolve only when the task was reassigned to a worker other
	// than the one that produced the rows.
	MRows *la.Dense
}

// Result is a completed task's payload.
type Result struct {
	ID   uint64
	Kind TaskKind

	// RowLo echoes the task's row range start (PartialMTTKRP, RowSolve).
	RowLo int
	// Rows are the computed output rows (PartialMTTKRP, RowSolve).
	Rows *la.Dense

	// BlockLo echoes the task's block range start (Gram, FitPartial).
	BlockLo int
	// Grams holds one R x R partial per block (Gram).
	Grams []*la.Dense
	// Partials holds one scalar partial per block (FitPartial).
	Partials []float64
}

// RemoteError is a task failure reported by a worker over the wire (as
// opposed to a transport failure, which kills the worker). It indicates a
// protocol-level bug — e.g. a task referencing a shard the worker was
// never sent — and aborts the session rather than triggering reassignment.
type RemoteError struct {
	TaskID uint64
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("dist: worker failed task %d: %s", e.TaskID, e.Msg)
}

// DecodeError reports malformed wire bytes: truncation, trailing garbage,
// counts that exceed the payload, or out-of-range fields. Decoders return
// it instead of panicking, so a corrupt or adversarial peer cannot crash
// the process.
type DecodeError struct {
	Msg    string
	Offset int // byte offset the decoder had reached
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("dist: decode error at byte %d: %s", e.Offset, e.Msg)
}

// CorruptFrameError reports a frame whose CRC32-C did not match its
// contents: the bytes were damaged in flight (or by a torn write on a
// proxy), not malformed by the peer. The receiver resets the connection —
// frame boundaries cannot be trusted after corruption — and the
// coordinator's normal death/rejoin machinery retries the lost work.
type CorruptFrameError struct {
	Type      MsgType
	Want, Got uint32 // header checksum vs computed checksum
}

func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("dist: corrupt %s frame: checksum %08x != %08x", e.Type, e.Got, e.Want)
}
