package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cstf/internal/la"
	"cstf/internal/tensor"
)

// Compact binary wire codec. Framing is a 9-byte header — type byte,
// big-endian uint32 payload length, big-endian CRC32-C over the type byte
// and payload — followed by the payload. Payload encodings are fixed-width
// big-endian; float64s travel as IEEE-754 bits. Every decoder is total:
// malformed input of any kind returns a *DecodeError, never a panic, and
// element counts are validated against the remaining payload BEFORE
// allocation so a corrupt length prefix cannot force a huge allocation.
// A checksum mismatch is a *CorruptFrameError, distinct from *DecodeError,
// so callers can tell line corruption from a peer speaking garbage; both
// end the connection — corruption is never silently absorbed.

// maxFrame bounds a frame payload (1 GiB). Shards of real tensors are the
// largest messages; a tensor bigger than this must be cut into more
// workers, not a bigger frame.
const maxFrame = 1 << 30

// frameHeaderLen is the wire header size: type(1) + length(4) + crc32c(4).
const frameHeaderLen = 9

// castagnoli is the CRC32-C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRC covers the type byte and the payload. The length field is not
// covered directly, but a corrupted length makes the receiver checksum a
// different byte span, so it still fails the CRC (or the read blocks and
// the heartbeat kills the connection).
func frameCRC(t MsgType, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, []byte{byte(t)})
	return crc32.Update(crc, castagnoli, payload)
}

// WriteFrame writes one frame: type byte, big-endian length, CRC32-C,
// payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: frame payload %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = byte(t)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[5:], frameCRC(t, payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame. Transport errors pass through; a length
// beyond maxFrame or an unknown type byte yields a *DecodeError; a
// checksum mismatch yields a *CorruptFrameError.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	t := MsgType(hdr[0])
	if t < MsgHello || t > MsgFactorDelta {
		return 0, nil, &DecodeError{Msg: fmt.Sprintf("unknown frame type %d", hdr[0])}
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, &DecodeError{Msg: fmt.Sprintf("frame length %d exceeds limit %d", n, maxFrame)}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	want := binary.BigEndian.Uint32(hdr[5:])
	if got := frameCRC(t, payload); got != want {
		return 0, nil, &CorruptFrameError{Type: t, Want: want, Got: got}
	}
	return t, payload, nil
}

// --- append-style encoders ---

func appendU8(b []byte, v uint8) []byte { return append(b, v) }
func appendU16(b []byte, v uint16) []byte {
	return binary.BigEndian.AppendUint16(b, v)
}
func appendU32(b []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(b, v)
}
func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}
func appendF64(b []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(b, math.Float64bits(v))
}

// appendUvarint encodes a varint (the only variable-width element in the
// protocol; shard payloads are index-heavy and dominated by small values).
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendDense encodes rows, cols, then the row-major data.
func appendDense(b []byte, m *la.Dense) []byte {
	b = appendU32(b, uint32(m.Rows))
	b = appendU32(b, uint32(m.Cols))
	for _, v := range m.Data {
		b = appendF64(b, v)
	}
	return b
}

// appendOptDense encodes a presence byte then the matrix when non-nil.
func appendOptDense(b []byte, m *la.Dense) []byte {
	if m == nil {
		return appendU8(b, 0)
	}
	b = appendU8(b, 1)
	return appendDense(b, m)
}

// --- sticky-error decoder ---

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = &DecodeError{Msg: msg, Offset: d.off}
	}
}

func (d *dec) need(n int) bool {
	if d.err != nil {
		return false
	}
	if len(d.b)-d.off < n {
		d.fail(fmt.Sprintf("truncated: need %d bytes, have %d", n, len(d.b)-d.off))
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

// uvarint decodes one varint, bounding it to maxFrame so downstream int
// conversions cannot overflow.
func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	if v > maxFrame {
		d.fail(fmt.Sprintf("varint %d out of range", v))
		return 0
	}
	d.off += n
	return v
}

// count validates an element count against the remaining payload, given a
// fixed per-element width, before the caller allocates.
func (d *dec) count(n uint32, elemBytes int, what string) int {
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(elemBytes) > int64(len(d.b)-d.off) {
		d.fail(fmt.Sprintf("%s count %d exceeds remaining payload", what, n))
		return 0
	}
	return int(n)
}

func (d *dec) dense() *la.Dense {
	rows := d.u32()
	cols := d.u32()
	if d.err != nil {
		return nil
	}
	if rows > maxFrame/8 || cols > maxFrame/8 {
		d.fail(fmt.Sprintf("dense dimensions %dx%d out of range", rows, cols))
		return nil
	}
	total := int64(rows) * int64(cols)
	if total*8 > int64(len(d.b)-d.off) {
		d.fail(fmt.Sprintf("dense %dx%d exceeds remaining payload", rows, cols))
		return nil
	}
	m := la.NewDense(int(rows), int(cols))
	for i := range m.Data {
		m.Data[i] = d.f64()
	}
	return m
}

func (d *dec) optDense() *la.Dense {
	switch d.u8() {
	case 0:
		return nil
	case 1:
		return d.dense()
	default:
		d.fail("invalid presence byte")
		return nil
	}
}

// done enforces that the payload was consumed exactly.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return &DecodeError{Msg: fmt.Sprintf("%d trailing bytes", len(d.b)-d.off), Offset: d.off}
	}
	return nil
}

// --- message codecs ---

// EncodeHello serializes a handshake.
func EncodeHello(h *Hello) []byte {
	b := appendU16(nil, h.Version)
	b = appendU8(b, h.Flags)
	b = appendU8(b, uint8(h.Order))
	b = appendU16(b, uint16(h.Rank))
	b = appendU16(b, uint16(h.Worker))
	b = appendU16(b, uint16(h.Workers))
	for _, dim := range h.Dims {
		b = appendU32(b, uint32(dim))
	}
	return b
}

// DecodeHello parses a handshake.
func DecodeHello(b []byte) (*Hello, error) {
	d := &dec{b: b}
	h := &Hello{
		Version: d.u16(),
		Flags:   d.u8(),
		Order:   int(d.u8()),
		Rank:    int(d.u16()),
		Worker:  int(d.u16()),
		Workers: int(d.u16()),
	}
	if d.err == nil && (h.Order < 1 || h.Order > tensor.MaxOrder) {
		d.fail(fmt.Sprintf("order %d out of range [1,%d]", h.Order, tensor.MaxOrder))
	}
	if d.err == nil && h.Rank < 1 {
		d.fail("rank must be positive")
	}
	n := 0
	if d.err == nil {
		n = h.Order
	}
	h.Dims = make([]int, 0, n)
	for i := 0; i < n; i++ {
		dim := d.u32()
		if d.err == nil && dim == 0 {
			d.fail(fmt.Sprintf("mode %d has size 0", i))
		}
		h.Dims = append(h.Dims, int(dim))
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return h, nil
}

// EncodeShard serializes a nonzero shard in the row-grouped varint format:
// header, then one group per distinct output row — varint row delta, varint
// entry count, then per entry the OTHER modes' indices as varints plus the
// float64 value. Grouping drops the 4-byte mode index every entry repeats,
// and varints shrink the remaining indices; on real tensors this roughly
// halves shard bytes versus the v1 fixed-width layout while the decoded
// entry order — ascending row, original storage order within a row — is
// exactly the stable ModeIndex Perm order the kernels require.
//
// Entries must already be in that order (buildShard guarantees it); a
// violation is an internal invariant failure, not a wire condition.
func EncodeShard(s *Shard) []byte {
	b := appendU8(nil, uint8(s.Mode))
	b = appendU8(b, uint8(s.Order))
	b = appendU32(b, uint32(s.RowLo))
	b = appendU32(b, uint32(s.RowHi))
	b = appendU32(b, uint32(len(s.Entries)))
	prevRow := s.RowLo - 1 // first group's delta is row-RowLo+1 .. keeps deltas >= 1
	for i := 0; i < len(s.Entries); {
		row := int(s.Entries[i].Idx[s.Mode])
		if row <= prevRow || row >= s.RowHi {
			panic(fmt.Sprintf("dist: shard entries not in ascending row order (row %d after %d)", row, prevRow))
		}
		j := i
		for j < len(s.Entries) && int(s.Entries[j].Idx[s.Mode]) == row {
			j++
		}
		b = appendUvarint(b, uint64(row-prevRow))
		b = appendUvarint(b, uint64(j-i))
		for ; i < j; i++ {
			e := &s.Entries[i]
			for m := 0; m < s.Order; m++ {
				if m == s.Mode {
					continue
				}
				b = appendUvarint(b, uint64(e.Idx[m]))
			}
			b = appendF64(b, e.Val)
		}
		prevRow = row
	}
	return b
}

// DecodeShard parses a nonzero shard, validating the entry count against
// the payload length, row deltas against [RowLo, RowHi), and group counts
// against the declared total.
func DecodeShard(b []byte) (*Shard, error) {
	d := &dec{b: b}
	s := &Shard{
		Mode:  int(d.u8()),
		Order: int(d.u8()),
		RowLo: int(d.u32()),
		RowHi: int(d.u32()),
	}
	if d.err == nil && (s.Order < 1 || s.Order > tensor.MaxOrder) {
		d.fail(fmt.Sprintf("order %d out of range [1,%d]", s.Order, tensor.MaxOrder))
	}
	if d.err == nil && s.Mode >= s.Order {
		d.fail(fmt.Sprintf("mode %d out of range for order %d", s.Mode, s.Order))
	}
	if d.err == nil && s.RowHi < s.RowLo {
		d.fail(fmt.Sprintf("row range [%d,%d) inverted", s.RowLo, s.RowHi))
	}
	// Tightest guaranteed wire width per entry: one varint byte per other
	// mode plus the 8-byte value.
	nnz := d.count(d.u32(), s.Order-1+8, "shard entry")
	s.Entries = make([]tensor.Entry, 0, nnz)
	row := s.RowLo - 1
	for len(s.Entries) < nnz && d.err == nil {
		row += int(d.uvarint())
		if d.err == nil && (row < s.RowLo || row >= s.RowHi) {
			d.fail(fmt.Sprintf("shard row %d outside [%d,%d)", row, s.RowLo, s.RowHi))
			break
		}
		cnt := int(d.uvarint())
		if d.err == nil && (cnt < 1 || cnt > nnz-len(s.Entries)) {
			d.fail(fmt.Sprintf("shard row group count %d out of range", cnt))
			break
		}
		for i := 0; i < cnt && d.err == nil; i++ {
			var e tensor.Entry
			for m := 0; m < s.Order; m++ {
				if m == s.Mode {
					e.Idx[m] = uint32(row)
					continue
				}
				e.Idx[m] = uint32(d.uvarint())
			}
			e.Val = d.f64()
			if d.err == nil {
				s.Entries = append(s.Entries, e)
			}
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeFactor serializes a factor broadcast.
func EncodeFactor(f *Factor) []byte {
	b := appendU8(nil, uint8(f.Mode))
	return appendDense(b, f.M)
}

// DecodeFactor parses a factor broadcast.
func DecodeFactor(b []byte) (*Factor, error) {
	d := &dec{b: b}
	f := &Factor{Mode: int(d.u8())}
	f.M = d.dense()
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeFactorDelta serializes a changed-rows factor update: mode, column
// count, row count, the strictly ascending row indices, then the row data.
func EncodeFactorDelta(f *FactorDelta) []byte {
	b := appendU8(nil, uint8(f.Mode))
	b = appendU16(b, uint16(f.Cols))
	b = appendU32(b, uint32(len(f.Indices)))
	for _, idx := range f.Indices {
		b = appendU32(b, uint32(idx))
	}
	for _, v := range f.Rows {
		b = appendF64(b, v)
	}
	return b
}

// DecodeFactorDelta parses a changed-rows factor update, validating the
// row count against the payload and that the indices strictly ascend. The
// receiver still has to bound the indices against its resident factor —
// the frame does not carry the matrix shape.
func DecodeFactorDelta(b []byte) (*FactorDelta, error) {
	d := &dec{b: b}
	f := &FactorDelta{
		Mode: int(d.u8()),
		Cols: int(d.u16()),
	}
	if d.err == nil && f.Cols < 1 {
		d.fail("factor delta with no columns")
	}
	n := d.count(d.u32(), 4+8*f.Cols, "factor delta row")
	f.Indices = make([]int, 0, n)
	for i := 0; i < n; i++ {
		idx := int(d.u32())
		if d.err == nil && len(f.Indices) > 0 && idx <= f.Indices[len(f.Indices)-1] {
			d.fail(fmt.Sprintf("factor delta indices not ascending at %d", idx))
		}
		f.Indices = append(f.Indices, idx)
	}
	if d.err == nil {
		f.Rows = make([]float64, n*f.Cols)
		for i := range f.Rows {
			f.Rows[i] = d.f64()
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// EncodeTask serializes a task descriptor.
func EncodeTask(t *Task) []byte {
	b := appendU64(nil, t.ID)
	b = appendU8(b, uint8(t.Kind))
	b = appendU8(b, uint8(t.Mode))
	b = appendU32(b, uint32(t.RowLo))
	b = appendU32(b, uint32(t.RowHi))
	b = appendU32(b, uint32(t.BlockLo))
	b = appendU32(b, uint32(t.BlockHi))
	b = appendOptDense(b, t.Pinv)
	b = appendU32(b, uint32(len(t.Lambda)))
	for _, v := range t.Lambda {
		b = appendF64(b, v)
	}
	return appendOptDense(b, t.MRows)
}

// DecodeTask parses a task descriptor.
func DecodeTask(b []byte) (*Task, error) {
	d := &dec{b: b}
	t := &Task{
		ID:      d.u64(),
		Kind:    TaskKind(d.u8()),
		Mode:    int(d.u8()),
		RowLo:   int(d.u32()),
		RowHi:   int(d.u32()),
		BlockLo: int(d.u32()),
		BlockHi: int(d.u32()),
	}
	if d.err == nil && (t.Kind < TaskPartialMTTKRP || t.Kind > TaskFitPartial) {
		d.fail(fmt.Sprintf("unknown task kind %d", uint8(t.Kind)))
	}
	if d.err == nil && (t.RowHi < t.RowLo || t.BlockHi < t.BlockLo) {
		d.fail("inverted task range")
	}
	t.Pinv = d.optDense()
	n := d.count(d.u32(), 8, "lambda")
	if n > 0 {
		t.Lambda = make([]float64, n)
		for i := range t.Lambda {
			t.Lambda[i] = d.f64()
		}
	}
	t.MRows = d.optDense()
	if err := d.done(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodeResult serializes a task result.
func EncodeResult(r *Result) []byte {
	b := appendU64(nil, r.ID)
	b = appendU8(b, uint8(r.Kind))
	b = appendU32(b, uint32(r.RowLo))
	b = appendU32(b, uint32(r.BlockLo))
	b = appendOptDense(b, r.Rows)
	b = appendU32(b, uint32(len(r.Grams)))
	for _, g := range r.Grams {
		b = appendDense(b, g)
	}
	b = appendU32(b, uint32(len(r.Partials)))
	for _, v := range r.Partials {
		b = appendF64(b, v)
	}
	return b
}

// DecodeResult parses a task result.
func DecodeResult(b []byte) (*Result, error) {
	d := &dec{b: b}
	r := &Result{
		ID:      d.u64(),
		Kind:    TaskKind(d.u8()),
		RowLo:   int(d.u32()),
		BlockLo: int(d.u32()),
	}
	if d.err == nil && (r.Kind < TaskPartialMTTKRP || r.Kind > TaskFitPartial) {
		d.fail(fmt.Sprintf("unknown task kind %d", uint8(r.Kind)))
	}
	r.Rows = d.optDense()
	ng := d.count(d.u32(), 8, "gram block") // 8 bytes is the header floor per matrix
	if ng > 0 {
		r.Grams = make([]*la.Dense, 0, ng)
		for i := 0; i < ng; i++ {
			r.Grams = append(r.Grams, d.dense())
		}
	}
	np := d.count(d.u32(), 8, "fit partial")
	if np > 0 {
		r.Partials = make([]float64, np)
		for i := range r.Partials {
			r.Partials[i] = d.f64()
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return r, nil
}

// EncodeSeq serializes a ping/pong heartbeat sequence number.
func EncodeSeq(seq uint64) []byte { return appendU64(nil, seq) }

// DecodeSeq parses a ping/pong heartbeat sequence number.
func DecodeSeq(b []byte) (uint64, error) {
	d := &dec{b: b}
	seq := d.u64()
	if err := d.done(); err != nil {
		return 0, err
	}
	return seq, nil
}

// EncodeErr serializes a worker task failure.
func EncodeErr(e *RemoteError) []byte {
	b := appendU64(nil, e.TaskID)
	b = appendU32(b, uint32(len(e.Msg)))
	return append(b, e.Msg...)
}

// DecodeErr parses a worker task failure.
func DecodeErr(b []byte) (*RemoteError, error) {
	d := &dec{b: b}
	e := &RemoteError{TaskID: d.u64()}
	n := d.count(d.u32(), 1, "error message")
	if d.err == nil {
		e.Msg = string(d.b[d.off : d.off+n])
		d.off += n
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return e, nil
}
