package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllTasks(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const tasks = 57
		var hits [tasks]atomic.Int64
		Run(workers, tasks, func(task int) { hits[task].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroTasks(t *testing.T) {
	Run(4, 0, func(int) { t.Fatal("fn called for zero tasks") })
	Run(4, -3, func(int) { t.Fatal("fn called for negative tasks") })
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("Workers must be at least 1")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestBlockDecomposition(t *testing.T) {
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize, BlockSize + 1, 3*BlockSize + 17} {
		covered := 0
		for b := 0; b < NumBlocks(n); b++ {
			lo, hi := Block(b, n)
			if lo != covered {
				t.Fatalf("n=%d block %d starts at %d, want %d", n, b, lo, covered)
			}
			if hi <= lo || hi > n {
				t.Fatalf("n=%d block %d range [%d,%d)", n, b, lo, hi)
			}
			covered = hi
		}
		if covered != n {
			t.Fatalf("n=%d blocks cover %d items", n, covered)
		}
	}
}

func TestSumBlocksDeterministic(t *testing.T) {
	n := 3*BlockSize + 101
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	sum := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	want := SumBlocks(1, n, sum)
	for _, workers := range []int{2, 4, 8} {
		if got := SumBlocks(workers, n, sum); got != want {
			t.Fatalf("workers=%d: sum %v != single-worker %v", workers, got, want)
		}
	}
}
