// Package par provides the shared-memory worker-pool primitives behind the
// parallel numeric kernels (MTTKRP, gram products, norm reductions). Two
// rules keep every kernel built on it bitwise deterministic:
//
//  1. Work is decomposed into tasks whose boundaries depend only on the
//     problem shape, never on the worker count; workers race only for WHICH
//     task they run next, not for how a task is cut.
//  2. Reductions merge per-task partials in task order on the caller's
//     goroutine, so the floating-point summation tree is fixed.
//
// Under those rules a kernel run with 1 worker and with N workers performs
// the identical sequence of floating-point operations per output value.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested parallelism degree: values <= 0 select
// runtime.GOMAXPROCS(0).
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Run executes fn(task) for every task in [0, tasks) on up to `workers`
// goroutines (including the calling one) and returns when all tasks have
// finished. Tasks are claimed from a shared atomic counter, so scheduling is
// dynamic but the task decomposition itself is caller-fixed. workers <= 1 or
// tasks <= 1 degrades to a plain loop with no goroutines.
func Run(workers, tasks int, fn func(task int)) {
	if tasks <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for t := 0; t < tasks; t++ {
			fn(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	body := func() {
		for {
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return
			}
			fn(t)
		}
	}
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			body()
		}()
	}
	body()
	wg.Wait()
}

// BlockSize is the row granularity of every blocked reduction in this
// repository. It is a single shared constant on purpose: block boundaries —
// and therefore rounding — must depend only on the problem size, never on
// the worker count.
const BlockSize = 2048

// NumBlocks returns how many BlockSize blocks cover n items.
func NumBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + BlockSize - 1) / BlockSize
}

// Block returns the half-open item range [lo, hi) of block b over n items.
func Block(b, n int) (lo, hi int) {
	lo = b * BlockSize
	hi = lo + BlockSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ForBlocks runs fn over every BlockSize block of [0, n) on the worker
// pool. fn must only touch items in its [lo, hi) block; under that contract
// the result is independent of the worker count. This is the shared
// fan-out primitive behind the row-blocked matrix kernels in internal/la
// and the batched scoring scans in internal/serve.
func ForBlocks(workers, n int, fn func(lo, hi int)) {
	Run(workers, NumBlocks(n), func(b int) {
		lo, hi := Block(b, n)
		fn(lo, hi)
	})
}

// SumBlocks reduces blockFn over all BlockSize blocks of [0, n): partials
// are computed concurrently by up to `workers` goroutines and summed in
// block order, so the result is bitwise identical for every worker count.
func SumBlocks(workers, n int, blockFn func(lo, hi int) float64) float64 {
	nb := NumBlocks(n)
	if nb == 0 {
		return 0
	}
	partial := make([]float64, nb)
	Run(workers, nb, func(b int) {
		lo, hi := Block(b, n)
		partial[b] = blockFn(lo, hi)
	})
	var s float64
	for _, p := range partial {
		s += p
	}
	return s
}
