// Package ntf implements nonnegative CP decomposition (NTF) by column-wise
// coordinate descent over the same MTTKRP/gram kernels as cpals, following
// the saturating-coordinate-descent design: each mode update solves the
// nonnegative least-squares row problems
//
//	min_{u_i >= 0}  0.5 * u_i V u_i^T - u_i . m_i
//
// (V the Hadamard of the other modes' grams, m_i the row's MTTKRP result)
// by cycling the coordinates in fixed order and clipping each exact
// single-coordinate minimizer at the zero bound. Elements pinned at zero
// whose partial gradient points into the constraint are SATURATED: their
// inner-loop updates are skipped until the partial gradient sign flips at
// the next sweep's re-check, which is where implicit-feedback tensors spend
// most of their coordinates (the factors come out mostly sparse).
//
// Determinism contract: for a fixed seed the factors are bitwise identical
// across runs and across Parallelism values. Row problems are independent,
// the coordinate order inside a row is fixed, and every cross-row reduction
// (norms, grams, fits) uses the same fixed-block-order kernels as cpals, so
// no result depends on worker count or timing.
//
// Monotonicity contract: every coordinate update is the exact minimizer of
// a convex quadratic along that coordinate projected onto [0, inf), and a
// skipped (saturated) update leaves the objective unchanged, so the
// reconstruction error is non-increasing — and the reported fit
// non-decreasing — after every completed sweep.
package ntf

import (
	"context"
	"fmt"
	"math"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/tensor"
)

// DefaultInnerIters is the number of coordinate-descent passes each row
// problem runs per mode update when Options.InnerIters is unset. The first
// pass re-checks every coordinate (unlocking saturated elements whose
// gradient sign flipped); later passes skip saturated elements entirely.
const DefaultInnerIters = 3

// State is the solver state beyond (lambda, factors) that a checkpoint
// carries: the per-mode saturation bitmaps (row-major rows x rank, 1 =
// pinned at the zero bound with a non-descending gradient at last check).
// Saturated elements always hold value zero, so the bitmaps restore the
// skip set — and with it the resumed run's exact work profile — without
// affecting the factors themselves.
type State struct {
	InnerIters int      // resolved inner CD pass count
	Saturated  [][]byte // per mode: rows*rank saturation flags
}

// Options configures a nonnegative CP solve. Rank/MaxIters/Tol/Seed/
// Parallelism/Ctx/OnIteration/StartIter/Init*/Checkpoint* mean exactly what
// they mean in cpals.Options.
type Options struct {
	Rank     int
	MaxIters int
	// Tol stops the run when consecutive fits improve by less than Tol.
	// 0 disables. Fits are exact and monotone non-decreasing.
	Tol         float64
	Seed        uint64
	Parallelism int

	// InnerIters is the number of coordinate-descent passes per row problem
	// each mode update runs (<= 0 selects DefaultInnerIters). A row whose
	// pass changes nothing stops early.
	InnerIters int

	Ctx         context.Context
	OnIteration func(iter int, fit float64) (stop bool)

	// StartIter/InitFactors/InitLambda/InitFits resume or warm-start the
	// solve, as in cpals. InitSaturated, when set, bitwise-restores the
	// saturation bitmaps from a checkpoint's State; when nil the first
	// sweep's re-check pass rebuilds them.
	StartIter     int
	InitFactors   []*la.Dense
	InitLambda    []float64
	InitFits      []float64
	InitSaturated [][]byte

	// CheckpointEvery/OnCheckpoint checkpoint the run as in cpals, with the
	// saturation State alongside.
	CheckpointEvery int
	OnCheckpoint    func(iter int, lambda []float64, factors []*la.Dense, fits []float64, st *State) error
}

// Workers resolves the effective worker count.
func (o *Options) Workers() int { return par.Workers(o.Parallelism) }

// Interrupted reports the context's error if Ctx is set and cancelled.
func (o *Options) Interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// Inner resolves the effective inner CD pass count.
func (o *Options) Inner() int {
	if o.InnerIters <= 0 {
		return DefaultInnerIters
	}
	return o.InnerIters
}

// Validate checks the options against a tensor.
func (o *Options) Validate(t *tensor.COO) error {
	if o.Rank <= 0 {
		return fmt.Errorf("ntf: rank must be positive, got %d", o.Rank)
	}
	if o.MaxIters <= 0 {
		return fmt.Errorf("ntf: MaxIters must be positive, got %d", o.MaxIters)
	}
	if t.NNZ() == 0 {
		return fmt.Errorf("ntf: tensor has no nonzeros")
	}
	if o.InnerIters < 0 {
		return fmt.Errorf("ntf: InnerIters must be non-negative, got %d", o.InnerIters)
	}
	if o.StartIter < 0 {
		return fmt.Errorf("ntf: StartIter must be non-negative, got %d", o.StartIter)
	}
	if o.StartIter > 0 && o.InitFactors == nil {
		return fmt.Errorf("ntf: StartIter %d requires InitFactors", o.StartIter)
	}
	if o.InitFactors != nil {
		if len(o.InitFactors) != t.Order() {
			return fmt.Errorf("ntf: %d InitFactors for an order-%d tensor", len(o.InitFactors), t.Order())
		}
		for n, f := range o.InitFactors {
			if f == nil || f.Rows != t.Dims[n] || f.Cols != o.Rank {
				return fmt.Errorf("ntf: InitFactors[%d] must be %dx%d", n, t.Dims[n], o.Rank)
			}
		}
		if len(o.InitLambda) != o.Rank {
			return fmt.Errorf("ntf: InitLambda length %d != rank %d", len(o.InitLambda), o.Rank)
		}
	}
	if o.InitSaturated != nil {
		if o.InitFactors == nil {
			return fmt.Errorf("ntf: InitSaturated requires InitFactors")
		}
		if len(o.InitSaturated) != t.Order() {
			return fmt.Errorf("ntf: %d InitSaturated bitmaps for an order-%d tensor", len(o.InitSaturated), t.Order())
		}
		for n, s := range o.InitSaturated {
			if len(s) != t.Dims[n]*o.Rank {
				return fmt.Errorf("ntf: InitSaturated[%d] length %d != %d", n, len(s), t.Dims[n]*o.Rank)
			}
		}
	}
	return nil
}

// Solve runs nonnegative CP by column-wise coordinate descent. The returned
// result has the same shape and semantics as cpals.Solve's — normalized
// factors (every entry >= 0), lambda, per-iteration fits — so everything
// downstream (serving, streaming, checkpoints) consumes it unchanged.
func Solve(t *tensor.COO, o Options) (*cpals.Result, error) {
	if err := o.Validate(t); err != nil {
		return nil, err
	}
	order := t.Order()
	rank := o.Rank
	w := o.Workers()
	inner := o.Inner()

	// The seeded init is uniform in [0.1, 1.1) — already nonnegative — so
	// ncp and cpals start from the identical point and their rankings are
	// directly comparable. Warm starts are clipped at zero: a resumed ncp
	// run never reintroduces negatives, and a foreign (e.g. cpals-trained)
	// warm start is projected onto the feasible set.
	factors := make([]*la.Dense, order)
	grams := make([]*la.Dense, order)
	sat := make([][]byte, order)
	for n := 0; n < order; n++ {
		if o.InitFactors != nil {
			f := o.InitFactors[n].Clone()
			clipNonneg(f, w)
			factors[n] = f
		} else {
			factors[n] = cpals.InitFactor(o.Seed, n, t.Dims[n], rank)
		}
		grams[n] = la.GramParallel(factors[n], w)
		if o.InitSaturated != nil {
			sat[n] = append([]byte(nil), o.InitSaturated[n]...)
		} else {
			sat[n] = make([]byte, t.Dims[n]*rank)
		}
	}

	normX := t.Norm()
	res := &cpals.Result{Factors: factors, Iters: o.StartIter}
	res.Fits = append(res.Fits, o.InitFits...)
	lambda := la.VecClone(o.InitLambda)
	var lastM *la.Dense
	ws := &cpals.Workspace{}

	checkpoint := func(it int) error {
		if o.CheckpointEvery <= 0 || o.OnCheckpoint == nil || (it+1)%o.CheckpointEvery != 0 {
			return nil
		}
		st := &State{InnerIters: inner, Saturated: make([][]byte, order)}
		for n := range sat {
			st.Saturated[n] = append([]byte(nil), sat[n]...)
		}
		return o.OnCheckpoint(it+1, lambda, factors, res.Fits, st)
	}

	for it := o.StartIter; it < o.MaxIters; it++ {
		if err := o.Interrupted(); err != nil {
			return nil, err
		}
		for n := 0; n < order; n++ {
			m := cpals.MTTKRPWorkers(t, n, factors, w, ws.Out(n, t.Dims[n], rank, w), ws)
			v := cpals.HadamardOfGramsExcept(grams, n)
			u := factors[n]
			// Re-absorb lambda into the mode being solved: with the other
			// factors fixed, u = A_n * diag(lambda) reproduces the current
			// model exactly, so coordinate descent warm-starts from it and
			// the objective can only go down. A nil lambda (first sweep,
			// fresh start) is an implicit all-ones.
			if len(lambda) == rank {
				scaleColumns(u, lambda, w)
			}
			cdSweep(u, m, v, sat[n], inner, w)
			lambda = la.NormalizeColumnsParallel(u, w)
			grams[n] = la.GramParallel(u, w)
			lastM = m
		}
		res.Iters = it + 1
		fit := cpals.FitFromWorkers(normX, lastM, factors[order-1], lambda, grams, w)
		res.Fits = append(res.Fits, fit)
		if o.OnIteration != nil && o.OnIteration(it, fit) {
			break
		}
		if err := checkpoint(it); err != nil {
			return nil, err
		}
		if nf := len(res.Fits); o.Tol > 0 && nf > 1 {
			if math.Abs(res.Fits[nf-1]-res.Fits[nf-2]) < o.Tol {
				break
			}
		}
	}
	res.Lambda = lambda
	return res, nil
}

// cdSweep runs the coordinate-descent row solves for one mode: inner passes
// of exact single-coordinate minimization clipped at zero. Pass 0 visits
// every coordinate — re-checking saturated elements and unlocking the ones
// whose partial gradient turned negative — while later passes skip
// saturated elements without touching them. Rows are independent, so the
// block fan-out is bitwise worker-count-invariant.
func cdSweep(u, m, v *la.Dense, sat []byte, inner, workers int) {
	rank := u.Cols
	la.RowBlocksApply(workers, u.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := u.Row(i)
			mrow := m.Row(i)
			srow := sat[i*rank : (i+1)*rank]
			for pass := 0; pass < inner; pass++ {
				changed := false
				for r := 0; r < rank; r++ {
					if pass > 0 && srow[r] != 0 {
						continue // saturated: skip until next sweep's re-check
					}
					d := v.Data[r*rank+r]
					if d <= 0 {
						continue // collapsed column: no curvature, leave as is
					}
					// Partial gradient of the row objective at the current
					// point: g_r = (u_i V)_r - m_ir.
					g := la.VecDot(row, v.Row(r)) - mrow[r]
					if row[r] == 0 && g >= 0 {
						srow[r] = 1 // pinned at the bound, gradient ascending
						continue
					}
					srow[r] = 0
					nv := row[r] - g/d
					if nv < 0 {
						nv = 0
					}
					if nv != row[r] {
						row[r] = nv
						changed = true
					}
				}
				if !changed {
					break
				}
			}
		}
	})
}

// SaturatedFrac reports the fraction of factor elements currently pinned at
// the zero bound — the coordinates whose inner-loop updates the solver
// skips, and a direct sparsity readout of the learned factors.
func SaturatedFrac(st *State) float64 {
	total, on := 0, 0
	for _, s := range st.Saturated {
		total += len(s)
		for _, b := range s {
			if b != 0 {
				on++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(on) / float64(total)
}

// clipNonneg projects a warm-start factor onto the nonnegative orthant.
func clipNonneg(m *la.Dense, workers int) {
	la.RowBlocksApply(workers, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for r := range row {
				if row[r] < 0 {
					row[r] = 0
				}
			}
		}
	})
}

// scaleColumns multiplies column r of m by s[r].
func scaleColumns(m *la.Dense, s []float64, workers int) {
	la.RowBlocksApply(workers, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for r := range row {
				row[r] *= s[r]
			}
		}
	})
}
