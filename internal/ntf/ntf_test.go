package ntf

import (
	"math"
	"testing"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/tensor"
)

func testTensor() *tensor.COO {
	// Nonnegative low-rank structure plus noise: the workload the solver is
	// for. GenLowRank plants factors in [0.1, 1.1), so the data is >= 0.
	return tensor.GenLowRank(7, 3000, 3, 0.05, 40, 30, 20)
}

func solveOpts() Options {
	return Options{Rank: 3, MaxIters: 8, Seed: 11, Parallelism: 1}
}

// Every factor element and every lambda must come out nonnegative.
func TestFactorsNonnegative(t *testing.T) {
	res, err := Solve(testTensor(), solveOpts())
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range res.Factors {
		for i, v := range f.Data {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("factor %d element %d = %v, want >= 0", n, i, v)
			}
		}
	}
	for r, l := range res.Lambda {
		if l < 0 || math.IsNaN(l) {
			t.Fatalf("lambda[%d] = %v, want >= 0", r, l)
		}
	}
}

// Each coordinate update exactly minimizes a convex quadratic clipped at
// zero and skipped updates change nothing, so the fit can never decrease
// across sweeps.
func TestObjectiveMonotone(t *testing.T) {
	o := solveOpts()
	o.MaxIters = 12
	res, err := Solve(testTensor(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fits) != 12 {
		t.Fatalf("%d fits, want 12", len(res.Fits))
	}
	for i := 1; i < len(res.Fits); i++ {
		if res.Fits[i] < res.Fits[i-1] {
			t.Fatalf("fit decreased at sweep %d: %v -> %v", i, res.Fits[i-1], res.Fits[i])
		}
	}
	// On nonnegative data the constrained solve should land within a few
	// percent of unconstrained ALS from the same start.
	als, err := cpals.Solve(testTensor(), cpals.Options{Rank: 3, MaxIters: 12, Seed: 11, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.9*als.Fit() {
		t.Fatalf("ncp fit %v below 0.9x the ALS fit %v", res.Fit(), als.Fit())
	}
}

// A fixed seed must be bitwise repeatable run to run.
func TestBitwiseRepeatable(t *testing.T) {
	x := testTensor()
	a, err := Solve(x, solveOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(x, solveOpts())
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, a, b)
}

// Results must be bitwise identical for every Parallelism value: rows are
// independent and all reductions run in fixed block order.
func TestParallelismInvariant(t *testing.T) {
	x := testTensor()
	base, err := Solve(x, solveOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		o := solveOpts()
		o.Parallelism = w
		got, err := Solve(x, o)
		if err != nil {
			t.Fatal(err)
		}
		requireBitwise(t, base, got)
	}
}

// A checkpointed run resumed mid-solve must follow the original trajectory
// bitwise: (lambda, factors, saturation bitmaps) fully determine the rest.
func TestResumeBitwise(t *testing.T) {
	x := testTensor()
	full := solveOpts()
	full.MaxIters = 8
	want, err := Solve(x, full)
	if err != nil {
		t.Fatal(err)
	}

	var savedIter int
	var savedLambda []float64
	var savedFits []float64
	var savedFactors []*la.Dense
	var savedState *State

	head := full
	head.MaxIters = 4
	head.CheckpointEvery = 4
	head.OnCheckpoint = func(iter int, lambda []float64, factors []*la.Dense, fits []float64, st *State) error {
		savedIter = iter
		savedLambda = append([]float64(nil), lambda...)
		savedFits = append([]float64(nil), fits...)
		savedFactors = nil
		for _, f := range factors {
			savedFactors = append(savedFactors, f.Clone())
		}
		savedState = st
		return nil
	}
	if _, err := Solve(x, head); err != nil {
		t.Fatal(err)
	}
	if savedIter != 4 || savedState == nil {
		t.Fatalf("checkpoint did not fire at iteration 4 (iter=%d)", savedIter)
	}

	tail := full
	tail.StartIter = savedIter
	tail.InitFactors = savedFactors
	tail.InitLambda = savedLambda
	tail.InitFits = savedFits
	tail.InitSaturated = savedState.Saturated
	got, err := Solve(x, tail)
	if err != nil {
		t.Fatal(err)
	}
	requireBitwise(t, want, got)
	if frac := SaturatedFrac(savedState); frac < 0 || frac > 1 {
		t.Fatalf("saturated fraction %v out of range", frac)
	}
}

func requireBitwise(t *testing.T, a, b *cpals.Result) {
	t.Helper()
	if len(a.Lambda) != len(b.Lambda) {
		t.Fatalf("lambda lengths differ")
	}
	for r := range a.Lambda {
		if math.Float64bits(a.Lambda[r]) != math.Float64bits(b.Lambda[r]) {
			t.Fatalf("lambda[%d] differs: %v vs %v", r, a.Lambda[r], b.Lambda[r])
		}
	}
	if len(a.Fits) != len(b.Fits) {
		t.Fatalf("fit counts differ: %d vs %d", len(a.Fits), len(b.Fits))
	}
	for i := range a.Fits {
		if math.Float64bits(a.Fits[i]) != math.Float64bits(b.Fits[i]) {
			t.Fatalf("fit[%d] differs: %v vs %v", i, a.Fits[i], b.Fits[i])
		}
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n], b.Factors[n]
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				t.Fatalf("factor %d element %d differs: %v vs %v", n, i, fa.Data[i], fb.Data[i])
			}
		}
	}
}
