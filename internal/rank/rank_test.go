package rank

import (
	"testing"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/ntf"
	"cstf/internal/rng"
	"cstf/internal/serve"
	"cstf/internal/tensor"
)

func recsysTensor() *tensor.COO {
	return tensor.GenRecsys(13, 6000, 120, 80, 4, 3, 0.02)
}

// The split is a pure function of (seed, tensor): repeated calls agree
// exactly, train and held partition the nonzeros disjointly, every
// held-out user keeps at least one training interaction, and shuffling
// the entry order changes nothing.
func TestSplitDeterministicAndDisjoint(t *testing.T) {
	x := recsysTensor()
	train, held, err := Split(x, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	train2, held2, err := Split(x, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEntries(t, train, train2, "train repeat")
	requireSameEntries(t, held, held2, "held repeat")

	if train.NNZ()+held.NNZ() != x.NNZ() {
		t.Fatalf("split sizes %d+%d != %d", train.NNZ(), held.NNZ(), x.NNZ())
	}
	coord := func(e *tensor.Entry) [3]uint32 { return [3]uint32{e.Idx[0], e.Idx[1], e.Idx[2]} }
	inTrain := make(map[[3]uint32]bool, train.NNZ())
	trainUsers := make(map[uint32]int)
	for i := range train.Entries {
		inTrain[coord(&train.Entries[i])] = true
		trainUsers[train.Entries[i].Idx[0]]++
	}
	heldUsers := make(map[uint32]bool)
	for i := range held.Entries {
		e := &held.Entries[i]
		if inTrain[coord(e)] {
			t.Fatalf("held entry %v also in train", e.Idx[:3])
		}
		if heldUsers[e.Idx[0]] {
			t.Fatalf("user %d held out twice", e.Idx[0])
		}
		heldUsers[e.Idx[0]] = true
		if trainUsers[e.Idx[0]] < 1 {
			t.Fatalf("held-out user %d has no training interactions", e.Idx[0])
		}
	}
	if len(heldUsers) == 0 {
		t.Fatal("split held out nothing")
	}

	// Entry order must not matter: reverse the entries and re-split.
	rev := tensor.New(x.Dims...)
	for i := len(x.Entries) - 1; i >= 0; i-- {
		rev.Entries = append(rev.Entries, x.Entries[i])
	}
	train3, held3, err := Split(rev, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEntries(t, train, train3, "train after shuffle")
	requireSameEntries(t, held, held3, "held after shuffle")

	// A different seed carves a different split (for any non-degenerate
	// tensor this is overwhelmingly likely; equality would mean the seed
	// is ignored).
	_, heldB, err := Split(x, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sameEntries(held, heldB) {
		t.Fatal("seeds 99 and 100 carved identical splits")
	}

	if _, _, err := Split(x, 1, 5); err == nil {
		t.Fatal("out-of-range user mode did not fail")
	}
}

// A nonnegative factorization of the planted recsys tensor must recommend
// better than popularity — the structure is per-user, and popularity is
// blind to it. This is the end-to-end check that generator, solver, split,
// conditioned TopK, exclusions, and metrics compose correctly.
func TestPlantedModelBeatsPopularity(t *testing.T) {
	x := recsysTensor()
	train, held, err := Split(x, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ntf.Solve(train, ntf.Options{Rank: 3, MaxIters: 15, Seed: 21, Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	m, err := serve.NewModel(res.Lambda, res.Factors, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	model, err := EvalModel(m, train, held, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := EvalPopularity(train, held, 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if model.Cases != held.NNZ() || pop.Cases != held.NNZ() {
		t.Fatalf("cases %d/%d, want %d", model.Cases, pop.Cases, held.NNZ())
	}
	if model.HR <= pop.HR {
		t.Fatalf("model HR@10 %.3f did not beat popularity %.3f", model.HR, pop.HR)
	}
	if model.NDCG <= pop.NDCG {
		t.Fatalf("model NDCG@10 %.3f did not beat popularity %.3f", model.NDCG, pop.NDCG)
	}
	if model.HR < model.NDCG {
		t.Fatalf("HR %.3f < NDCG %.3f (impossible: gain <= 1 per hit)", model.HR, model.NDCG)
	}
}

// Metrics are deterministic: the same model and split produce bitwise the
// same numbers, including through the unconstrained solver.
func TestEvalDeterministic(t *testing.T) {
	x := recsysTensor()
	train, held, err := Split(x, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cpals.Solve(train, cpals.Options{Rank: 3, MaxIters: 8, Seed: 3, Parallelism: 0})
	if err != nil {
		t.Fatal(err)
	}
	var prev *Metrics
	for trial := 0; trial < 2; trial++ {
		m, err := serve.NewModel(append([]float64(nil), res.Lambda...), cloneFactors(res), uint64(trial+1), 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalModel(m, train, held, 0, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		if got.K != 5 {
			t.Fatalf("K=%d, want 5", got.K)
		}
		if prev != nil && (got.HR != prev.HR || got.NDCG != prev.NDCG || got.Hits != prev.Hits) {
			t.Fatalf("metrics differ across runs: %+v vs %+v", got, *prev)
		}
		prev = &got
	}
}

func cloneFactors(res *cpals.Result) (out []*la.Dense) {
	for _, f := range res.Factors {
		out = append(out, f.Clone())
	}
	return out
}

// Deterministic generator sanity: same seed, same tensor.
func TestGenRecsysDeterministic(t *testing.T) {
	a := tensor.GenRecsys(5, 1000, 40, 30, 3, 2, 0.01)
	b := tensor.GenRecsys(5, 1000, 40, 30, 3, 2, 0.01)
	requireSameEntries(t, a, b, "GenRecsys repeat")
	for i := range a.Entries {
		if a.Entries[i].Val < 0 {
			t.Fatalf("negative implicit-feedback value %v", a.Entries[i].Val)
		}
	}
	if rng.Hash64(1) == rng.Hash64(2) {
		t.Fatal("hash sanity")
	}
}

func requireSameEntries(t *testing.T, a, b *tensor.COO, label string) {
	t.Helper()
	if !sameEntries(a, b) {
		t.Fatalf("%s: tensors differ (%d vs %d entries)", label, a.NNZ(), b.NNZ())
	}
}

func sameEntries(a, b *tensor.COO) bool {
	if a.NNZ() != b.NNZ() {
		return false
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			return false
		}
	}
	return true
}
