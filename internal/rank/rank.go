// Package rank evaluates a trained factorization as a recommender: a
// deterministic leave-out split carves held-out interactions from a
// (user x item x ...) tensor, and ranking metrics (HR@K, NDCG@K) score a
// serving model's TopK — with the user's training items excluded — against
// those held-out truths. A popularity baseline anchors the numbers: a
// model worth serving must beat "recommend whatever is globally popular".
//
// Everything is deterministic. The split is a pure function of
// (seed, tensor): each qualifying user's held-out interaction is the
// entry whose coordinate hash is smallest, so two runs — or two processes
// sharing only the seed — carve identical splits regardless of entry
// order. Evaluation queries go through serve.Model's deterministic TopK
// (descending score, ascending index on bitwise ties), so metrics are
// exactly reproducible run to run.
package rank

import (
	"fmt"
	"math"
	"sort"

	"cstf/internal/rng"
	"cstf/internal/serve"
	"cstf/internal/tensor"
)

// Split partitions t's nonzeros into a training tensor and a held-out
// tensor, leaving out exactly one interaction per user (the rows of
// userMode) for every user with at least two nonzeros. Users with a single
// nonzero keep it in training — holding it out would leave nothing to
// condition their queries on. The held-out entry of a user is the one
// minimizing rng.Hash64(seed, coordinates...), ties broken by coordinate
// order, so the split is reproducible from (seed, tensor) alone and
// train/held are disjoint by construction.
func Split(t *tensor.COO, seed uint64, userMode int) (train, held *tensor.COO, err error) {
	if userMode < 0 || userMode >= len(t.Dims) {
		return nil, nil, fmt.Errorf("rank: user mode %d out of range for order-%d tensor", userMode, len(t.Dims))
	}
	order := len(t.Dims)
	hash := func(e *tensor.Entry) uint64 {
		parts := make([]uint64, 0, order+1)
		parts = append(parts, seed)
		for n := 0; n < order; n++ {
			parts = append(parts, uint64(e.Idx[n]))
		}
		return rng.Hash64(parts...)
	}

	counts := make([]int, t.Dims[userMode])
	for i := range t.Entries {
		counts[t.Entries[i].Idx[userMode]]++
	}
	// best[u] is the index into t.Entries of u's held-out interaction.
	best := make([]int, t.Dims[userMode])
	for u := range best {
		best[u] = -1
	}
	for i := range t.Entries {
		e := &t.Entries[i]
		u := int(e.Idx[userMode])
		if counts[u] < 2 {
			continue
		}
		if best[u] == -1 {
			best[u] = i
			continue
		}
		b := &t.Entries[best[u]]
		hi, hb := hash(e), hash(b)
		if hi < hb || (hi == hb && tensor.Less(order, e, b)) {
			best[u] = i
		}
	}
	heldIdx := make(map[int]bool, len(best))
	for _, i := range best {
		if i >= 0 {
			heldIdx[i] = true
		}
	}

	train = tensor.New(t.Dims...)
	held = tensor.New(t.Dims...)
	for i := range t.Entries {
		if heldIdx[i] {
			held.Entries = append(held.Entries, t.Entries[i])
		} else {
			train.Entries = append(train.Entries, t.Entries[i])
		}
	}
	train.Sort()
	held.Sort()
	return train, held, nil
}

// Metrics is one evaluation's ranking quality at cutoff K.
type Metrics struct {
	K     int     `json:"k"`
	Cases int     `json:"cases"` // held-out interactions evaluated
	Hits  int     `json:"hits"`  // held-out items that appeared in the top K
	HR    float64 `json:"hr"`    // Hits / Cases
	NDCG  float64 `json:"ndcg"`  // mean 1/log2(2+position), 0 on miss
}

// seenItems maps each user row to the sorted set of itemMode rows the user
// interacted with in train — the exclude sets evaluation queries carry.
func seenItems(train *tensor.COO, userMode, itemMode int) map[int][]int {
	raw := make(map[int]map[int]bool)
	for i := range train.Entries {
		e := &train.Entries[i]
		u, it := int(e.Idx[userMode]), int(e.Idx[itemMode])
		if raw[u] == nil {
			raw[u] = make(map[int]bool)
		}
		raw[u][it] = true
	}
	out := make(map[int][]int, len(raw))
	for u, set := range raw {
		items := make([]int, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sort.Ints(items)
		out[u] = items
	}
	return out
}

// excludeFor returns the user's seen set minus the target item: a held-out
// item that also occurs in training (same user, different context) must
// stay rankable, or the case could never be a hit.
func excludeFor(seen []int, target int) []int {
	out := make([]int, 0, len(seen))
	for _, it := range seen {
		if it != target {
			out = append(out, it)
		}
	}
	return out
}

func gain(position int) float64 { return 1 / math.Log2(float64(position)+2) }

// EvalModel scores m's TopK against every held-out interaction: the query
// conditions on the user's row AND the held-out entry's remaining
// coordinates (the context of the interaction), excludes the user's
// training items, and asks for the k best itemMode rows. A case is a hit
// when the held-out item appears; NDCG discounts by its position.
func EvalModel(m *serve.Model, train, held *tensor.COO, userMode, itemMode, k int) (Metrics, error) {
	if userMode == itemMode {
		return Metrics{}, fmt.Errorf("rank: user mode %d equals item mode", userMode)
	}
	seen := seenItems(train, userMode, itemMode)
	res := Metrics{K: k}
	for i := range held.Entries {
		e := &held.Entries[i]
		u, target := int(e.Idx[userMode]), int(e.Idx[itemMode])
		var given []serve.Cond
		for n := 0; n < len(held.Dims); n++ {
			if n != itemMode {
				given = append(given, serve.Cond{Mode: n, Row: int(e.Idx[n])})
			}
		}
		top, err := m.TopKCond(itemMode, given, k, excludeFor(seen[u], target))
		if err != nil {
			return Metrics{}, err
		}
		res.Cases++
		for pos, s := range top {
			if s.Index == target {
				res.Hits++
				res.NDCG += gain(pos)
				break
			}
		}
	}
	res.finish()
	return res, nil
}

// EvalPopularity scores the non-personalized baseline: items ranked by
// training interaction count (descending, ascending index on ties), the
// same per-user exclusions applied. A trained model that cannot beat this
// has learned nothing user-specific.
func EvalPopularity(train, held *tensor.COO, userMode, itemMode, k int) (Metrics, error) {
	if userMode == itemMode {
		return Metrics{}, fmt.Errorf("rank: user mode %d equals item mode", userMode)
	}
	counts := make([]int, train.Dims[itemMode])
	for i := range train.Entries {
		counts[train.Entries[i].Idx[itemMode]]++
	}
	byPop := make([]int, len(counts))
	for i := range byPop {
		byPop[i] = i
	}
	sort.SliceStable(byPop, func(a, b int) bool {
		if counts[byPop[a]] != counts[byPop[b]] {
			return counts[byPop[a]] > counts[byPop[b]]
		}
		return byPop[a] < byPop[b]
	})

	seen := seenItems(train, userMode, itemMode)
	res := Metrics{K: k}
	for i := range held.Entries {
		e := &held.Entries[i]
		u, target := int(e.Idx[userMode]), int(e.Idx[itemMode])
		excluded := make(map[int]bool, len(seen[u]))
		for _, it := range excludeFor(seen[u], target) {
			excluded[it] = true
		}
		res.Cases++
		pos := 0
		for _, it := range byPop {
			if excluded[it] {
				continue
			}
			if pos >= k {
				break
			}
			if it == target {
				res.Hits++
				res.NDCG += gain(pos)
				break
			}
			pos++
		}
	}
	res.finish()
	return res, nil
}

func (m *Metrics) finish() {
	if m.Cases > 0 {
		m.HR = float64(m.Hits) / float64(m.Cases)
		m.NDCG /= float64(m.Cases)
	}
}
