// Package rng provides the deterministic pseudo-random primitives used
// across the repository: a splitmix64 stream generator for workload
// synthesis, and a stateless hash-based uniform generator used to
// initialize factor matrices identically on every node of the simulated
// cluster without broadcasting them (any partition can recompute row i of
// factor n from (seed, n, i) alone).
package rng

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// tiny, fast, and passes BigCrush; determinism across runs is what the
// experiment harness needs, not cryptographic strength.
type SplitMix64 struct{ state uint64 }

// New returns a generator seeded with seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix(s.state)
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal deviate (Box-Muller).
func (s *SplitMix64) NormFloat64() float64 {
	for {
		u := s.Float64()
		if u == 0 {
			continue
		}
		v := s.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Hash64 mixes an arbitrary tuple of words into a single well-distributed
// 64-bit value. It is the basis of the stateless generators below.
func Hash64(xs ...uint64) uint64 {
	h := uint64(0x51_7c_c1_b7_27_22_0a_95)
	for _, x := range xs {
		h ^= mix(x + 0x9e3779b97f4a7c15)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return mix(h)
}

// UniformAt returns a uniform value in [0, 1) that is a pure function of
// the tuple (so every node computes the same value without communication).
func UniformAt(xs ...uint64) float64 {
	return float64(Hash64(xs...)>>11) / (1 << 53)
}

// Pair64 is a composite 128-bit key (e.g. a matricized tensor coordinate
// (row, column)) supported by HashAny.
type Pair64 struct{ A, B uint64 }

// HashAny maps a comparable key of any supported concrete type to a
// well-distributed 64-bit hash. Both distributed engines (rdd, mapreduce)
// partition by this same function, so equal keys land in equal partitions
// everywhere.
func HashAny[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case Pair64:
		return Hash64(v.A, v.B)
	case uint32:
		return Hash64(uint64(v))
	case uint64:
		return Hash64(v)
	case int:
		return Hash64(uint64(v))
	case int32:
		return Hash64(uint64(uint32(v)))
	case int64:
		return Hash64(uint64(v))
	case uint16:
		return Hash64(uint64(v))
	case uint8:
		return Hash64(uint64(v))
	case string:
		h := uint64(1469598103934665603)
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= 1099511628211
		}
		return Hash64(h)
	default:
		panic("rng: unhashable key type")
	}
}

// Zipf draws from an approximate Zipf distribution over [0, n) with
// exponent theta in (0, 1), using the inverse-CDF approximation of
// Gray et al. (SIGMOD '94). Real FROSTT tensors have strongly skewed fiber
// occupancy; this reproduces that skew in the synthetic datasets.
type Zipf struct {
	n              int
	theta          float64
	alpha, zetan   float64
	eta, halfPowTh float64
}

// NewZipf constructs a Zipf sampler over [0, n).
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	z := &Zipf{n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.halfPowTh = math.Pow(0.5, theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	// Exact for small n; integral approximation beyond to keep setup O(1)-ish.
	const exactCap = 10000
	var s float64
	m := n
	if m > exactCap {
		m = exactCap
	}
	for i := 1; i <= m; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	if n > exactCap {
		// ∫ x^-theta dx from exactCap to n.
		s += (math.Pow(float64(n), 1-theta) - math.Pow(float64(exactCap), 1-theta)) / (1 - theta)
	}
	return s
}

// Next draws a Zipf value in [0, n) using randomness from src.
func (z *Zipf) Next(src *SplitMix64) int {
	u := src.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.halfPowTh {
		return 1
	}
	v := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	if v < 0 {
		v = 0
	}
	return v
}
