package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := New(124)
	same := 0
	a = New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(11)
	var sum, sumsq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Fatalf("mean %v variance %v", mean, variance)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	s := New(3)
	for i := 0; i < 1000; i++ {
		if v := s.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	s.Intn(0)
}

func TestHash64AvalancheAndStability(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 must be pure")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) || Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 must distinguish tuples")
	}
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		// Flipping input must flip a healthy number of output bits.
		x, y := Hash64(a), Hash64(b)
		diff := 0
		for v := x ^ y; v != 0; v &= v - 1 {
			diff++
		}
		return diff >= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformAtRange(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		v := UniformAt(42, i)
		if v < 0 || v >= 1 {
			t.Fatalf("UniformAt out of range: %v", v)
		}
	}
}

func TestZipfSkewAndBounds(t *testing.T) {
	const n = 100000
	z := NewZipf(n, 0.99)
	src := New(5)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		v := z.Next(src)
		if v < 0 || v >= n {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank-0 must dominate: far more hits than the uniform expectation (0.2).
	if counts[0] < 500 {
		t.Fatalf("rank-0 count %d, expected heavy skew", counts[0])
	}
	if counts[0] <= counts[1] {
		t.Fatalf("rank-0 (%d) should beat rank-1 (%d)", counts[0], counts[1])
	}
}

func TestZipfLargeDomain(t *testing.T) {
	// Exercises the integral tail approximation of zeta (n > 10000).
	z := NewZipf(5_000_000, 0.8)
	src := New(9)
	for i := 0; i < 1000; i++ {
		if v := z.Next(src); v < 0 || v >= 5_000_000 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) must panic")
		}
	}()
	NewZipf(0, 0.5)
}
