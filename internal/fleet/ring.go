// Package fleet is the horizontal serving tier: a stateless router that
// spreads Predict/TopK/Similar queries over N serve replicas. Three routing
// mechanisms coexist:
//
//   - Cache affinity. Every query hashes by its anchor row (the row it
//     conditions on) onto a consistent-hash ring of replicas, so repeats of
//     the same query always land on the same replica and its LRU result
//     cache. The fleet's aggregate cache therefore grows with N — which is
//     where the QPS scaling comes from on cache-friendly traffic.
//   - Sharded scatter-gather. A TopK over a huge mode can instead be split
//     into contiguous row ranges, one per live replica, answered in
//     parallel with Server.TopKRange, and merged with serve.MergeTopK —
//     bitwise-identical to a single-node scan because ranges partition the
//     mode and the tie-break order is total.
//   - Health-based failover. A prober drives dist.RetryPolicy backoff
//     against each replica's /healthz; dead replicas leave the ring (their
//     keys remap to survivors — ~1/N of the space, see ring_test.go) and
//     re-admission is automatic on recovery.
//
// Rolling reload drains one replica at a time (drain → wait inflight 0 →
// reload → health-check → re-admit) so a model version rolls across the
// fleet with zero failed queries.
package fleet

import (
	"fmt"
	"sort"

	"cstf/internal/rng"
)

// ringVnodes is the number of virtual nodes each replica contributes to
// the ring. More vnodes flatten the load split across replicas (the
// standard deviation of arc ownership shrinks like 1/sqrt(vnodes)) at the
// cost of a larger sorted array; 128 keeps the max/min ownership ratio
// within a few percent for small fleets.
const ringVnodes = 128

// Ring is an immutable consistent-hash ring over replica names. Hashing
// uses rng.HashAny (FNV over the vnode label), a pure function of the
// name — so every process that builds a ring from the same member set gets
// the identical ring, with no coordination. Lookups are O(log(N*vnodes)).
//
// The consistent-hashing property this buys (verified in ring_test.go):
// removing one of N members remaps only the keys that member owned —
// about 1/N of the space — while every other key keeps its replica and
// therefore its warmed cache.
type Ring struct {
	points  []ringPoint
	members []string
}

type ringPoint struct {
	hash   uint64
	member int32 // index into members
}

// NewRing builds a ring over the given replica names. Names must be
// non-empty and unique; order does not matter (the ring is a pure function
// of the member set).
func NewRing(members []string) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one member")
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i, m := range sorted {
		if m == "" {
			return nil, fmt.Errorf("fleet: empty ring member name")
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("fleet: duplicate ring member %q", m)
		}
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(sorted)*ringVnodes),
		members: sorted,
	}
	for i, m := range sorted {
		for v := 0; v < ringVnodes; v++ {
			h := rng.Hash64(rng.HashAny(m), uint64(v))
			r.points = append(r.points, ringPoint{hash: h, member: int32(i)})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A hash collision between vnodes of different members is
		// astronomically unlikely but must still order deterministically.
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Members returns the ring's member names in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Owner returns the member owning hash key h: the first vnode clockwise
// from h, wrapping at the top of the space.
func (r *Ring) Owner(h uint64) string {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.members[r.points[i].member]
}

// OwnerKey routes a query key. Fleet keys are (kind, mode, row) tuples —
// see queryKey — hashed through rng.Hash64.
func (r *Ring) OwnerKey(parts ...uint64) string { return r.Owner(rng.Hash64(parts...)) }
