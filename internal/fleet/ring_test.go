package fleet

import (
	"fmt"
	"testing"

	"cstf/internal/rng"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("replica-%d.example:9%03d", i, i)
	}
	return out
}

// The defining consistent-hashing property: removing one of N members
// remaps only the keys that member owned — close to 1/N of the space — and
// no key whose owner survives moves anywhere.
func TestRingRemovalRemapsAboutOneNth(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 3, 4, 8} {
		members := names(n)
		full, err := NewRing(members)
		if err != nil {
			t.Fatal(err)
		}
		for drop := 0; drop < n; drop++ {
			var reduced []string
			for i, m := range members {
				if i != drop {
					reduced = append(reduced, m)
				}
			}
			sub, err := NewRing(reduced)
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for k := 0; k < keys; k++ {
				h := rng.Hash64(uint64(k), 0xfee1)
				before, after := full.Owner(h), sub.Owner(h)
				if before == after {
					continue
				}
				if before != members[drop] {
					t.Fatalf("n=%d drop=%d: key %d moved %s -> %s though its owner survived",
						n, drop, k, before, after)
				}
				moved++
			}
			frac := float64(moved) / keys
			// Expected 1/n of keys; vnode variance keeps the real share
			// within a few points of that. 1/n + 5% is a loose ceiling.
			if eps := 0.05; frac > 1/float64(n)+eps {
				t.Fatalf("n=%d drop=%d: removal remapped %.1f%% of keys, want <= %.1f%%",
					n, drop, 100*frac, 100*(1/float64(n)+eps))
			}
		}
	}
}

// The ring must be a pure function of the member SET: same members in any
// order build bitwise-identical rings (what lets router restarts — or a
// second router — agree on placement with no coordination).
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	a, err := NewRing([]string{"c:1", "a:1", "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"b:1", "c:1", "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.points) != len(b.points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.points), len(b.points))
	}
	for i := range a.points {
		if a.points[i].hash != b.points[i].hash ||
			a.members[a.points[i].member] != b.members[b.points[i].member] {
			t.Fatalf("rings diverge at point %d", i)
		}
	}
	for k := 0; k < 5000; k++ {
		h := rng.Hash64(uint64(k))
		if a.Owner(h) != b.Owner(h) {
			t.Fatalf("owner differs for key %d: %s vs %s", k, a.Owner(h), b.Owner(h))
		}
	}
}

// Load must split roughly evenly across members (vnodes flatten the arcs).
func TestRingBalance(t *testing.T) {
	const keys = 30000
	r, err := NewRing(names(4))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for k := 0; k < keys; k++ {
		counts[r.Owner(rng.Hash64(uint64(k), 7))]++
	}
	for m, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("member %s owns %.1f%% of keys, want ~25%%", m, 100*frac)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}); err == nil {
		t.Fatal("duplicate member accepted")
	}
}
