package fleet

import (
	"fmt"
	"net"
	"net/http"

	"cstf/internal/serve"
)

// LocalReplica is one in-process serve replica listening on a loopback
// port — real HTTP, real drain/reload semantics, no extra processes.
type LocalReplica struct {
	Name   string // host:port (also the ring member name)
	URL    string
	Server *serve.Server

	hs  *http.Server
	lis net.Listener
}

// LocalFleet is a set of in-process replicas. `cstf-router -local N` and
// the fleet benchmark and smoke tests use it to exercise the full
// router↔replica HTTP path on one machine.
type LocalFleet struct {
	Replicas []*LocalReplica
}

// StartLocal boots n replicas on loopback ports. newModel is called once
// per replica and must return a fresh *serve.Model each time (replicas
// own and mutate their models independently — version counters, approx
// index); loading the same checkpoint path n times, or regenerating from
// the same seed, both qualify.
func StartLocal(n int, newModel func(i int) (*serve.Model, error), scfg serve.Config, hc serve.HandlerConfig) (*LocalFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: local fleet needs n > 0 replicas")
	}
	f := &LocalFleet{}
	for i := 0; i < n; i++ {
		m, err := newModel(i)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("fleet: replica %d model: %w", i, err)
		}
		s, err := serve.New(m, scfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			f.Close()
			return nil, err
		}
		r := &LocalReplica{
			Name:   lis.Addr().String(),
			URL:    "http://" + lis.Addr().String(),
			Server: s,
			hs:     &http.Server{Handler: serve.NewHandlerWith(s, hc)},
			lis:    lis,
		}
		go r.hs.Serve(lis) //nolint:errcheck // returns ErrServerClosed on Close
		f.Replicas = append(f.Replicas, r)
	}
	return f, nil
}

// Configs returns the Replica entries a Router config needs.
func (f *LocalFleet) Configs() []Replica {
	out := make([]Replica, len(f.Replicas))
	for i, r := range f.Replicas {
		out[i] = Replica{Name: r.Name, URL: r.URL}
	}
	return out
}

// Stop kills one replica's listener without closing its server — the
// "crashed replica" a failover test needs.
func (r *LocalReplica) Stop() { r.hs.Close() } //nolint:errcheck

// Restart brings a stopped replica back on its original port, so the
// prober's re-admission path can find it at the same ring name.
func (r *LocalReplica) Restart() error {
	lis, err := net.Listen("tcp", r.Name)
	if err != nil {
		return err
	}
	r.lis = lis
	r.hs = &http.Server{Handler: r.hs.Handler}
	go r.hs.Serve(lis) //nolint:errcheck
	return nil
}

// Close shuts every replica down: HTTP first (stop accepting), then the
// serving executor.
func (f *LocalFleet) Close() {
	for _, r := range f.Replicas {
		if r == nil {
			continue
		}
		r.hs.Close() //nolint:errcheck
		r.Server.Close()
	}
}
