package fleet

import (
	"errors"
	"net/http"

	"cstf/internal/serve"
)

// NewHandler is the router's HTTP surface — deliberately the same shape a
// single replica serves (same endpoints, same parse, same error mapping),
// so clients cannot tell one node from a fleet:
//
//	GET/POST /predict, /topk, /similar   as in internal/serve
//	GET      /healthz                    fleet view: live count + per-replica
//	                                     routing stats + reload progress
//	GET      /statsz                     same payload as /healthz
//	POST     /reloadz                    run a rolling reload across the fleet
func NewHandler(rt *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		q, err := serve.ParseQuery(r)
		if err != nil {
			serve.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		if len(q.Index) == 0 {
			serve.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": "predict requires index=i,j,..."})
			return
		}
		v, err := rt.Predict(r.Context(), q.Index...)
		if err != nil {
			writeRouteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, map[string]any{"value": v, "index": q.Index})
	})
	ranked := func(topk bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			q, err := serve.ParseQuery(r)
			if err != nil {
				serve.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
			if q.Mode == nil || q.Row == nil {
				serve.WriteJSON(w, http.StatusBadRequest, map[string]string{"error": "mode and row are required"})
				return
			}
			k := 10
			if q.K != nil {
				k = *q.K
			}
			var scored []serve.Scored
			if topk {
				given := -1
				if q.Given != nil {
					given = *q.Given
				}
				scored, err = rt.TopKExclude(r.Context(), *q.Mode, given, *q.Row, k, q.Exclude)
			} else {
				scored, err = rt.Similar(r.Context(), *q.Mode, *q.Row, k)
			}
			if err != nil {
				writeRouteError(w, err)
				return
			}
			serve.WriteJSON(w, http.StatusOK, map[string]any{
				"mode": *q.Mode, "row": *q.Row, "k": k, "results": scored,
			})
		}
	}
	mux.HandleFunc("/topk", ranked(true))
	mux.HandleFunc("/similar", ranked(false))
	health := func(w http.ResponseWriter, r *http.Request) {
		st := rt.Stats()
		code := http.StatusOK
		status := "ok"
		if st.Live == 0 {
			code, status = http.StatusServiceUnavailable, "no live replicas"
		}
		serve.WriteJSON(w, code, map[string]any{
			"status": status,
			"dims":   rt.Dims(),
			"fleet":  st,
		})
	}
	mux.HandleFunc("/healthz", health)
	mux.HandleFunc("/statsz", health)
	mux.HandleFunc("/reloadz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			serve.WriteJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "reloadz requires POST"})
			return
		}
		if err := rt.RollingReload(r.Context()); err != nil {
			serve.WriteJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		serve.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok", "fleet": rt.Stats()})
	})
	return mux
}

// writeRouteError maps routing failures onto the shared error surface:
// replica-reported statuses pass through verbatim, a fleet with no live
// replicas is 503, and anything else falls back to serve's mapping.
func writeRouteError(w http.ResponseWriter, err error) {
	var re *replicaError
	if asReplicaError(err, &re) && re.code != 0 {
		serve.WriteJSON(w, re.code, map[string]string{"error": re.msg})
		return
	}
	if errors.Is(err, ErrNoReplicas) {
		serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	}
	serve.WriteQueryError(w, err)
}
