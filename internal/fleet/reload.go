package fleet

import (
	"context"
	"fmt"
	"time"
)

// ReloadProgress is the observable state of a rolling reload (surfaced on
// the router's /healthz while a roll is in flight).
type ReloadProgress struct {
	Active  bool   `json:"active"`
	Total   int    `json:"total"`   // replicas in this roll
	Done    int    `json:"done"`    // replicas already reloaded and re-admitted
	Current string `json:"current"` // replica currently draining/reloading
}

// RollingReload rolls a model reload across the fleet one replica at a
// time, dropping zero queries:
//
//  1. take the replica out of the ring (its keys remap to the survivors —
//     new queries never see it),
//  2. wait for its in-flight queries to finish (poll /statsz inflight),
//  3. POST /reloadz so it swaps to the checkpoint on disk,
//  4. health-check it, and
//  5. put it back in the ring.
//
// If any step fails the roll aborts with the error; the failing replica is
// re-admitted as-is (it still serves its previous model — the prober
// evicts it if it is actually down). Only one roll runs at a time.
func (rt *Router) RollingReload(ctx context.Context) error {
	rt.reloadMu.Lock()
	if rt.reload.Active {
		rt.reloadMu.Unlock()
		return fmt.Errorf("fleet: rolling reload already in progress")
	}
	targets := rt.routable()
	rt.reload = ReloadProgress{Active: true, Total: len(targets)}
	rt.reloadMu.Unlock()
	defer func() {
		rt.reloadMu.Lock()
		rt.reload.Active = false
		rt.reload.Current = ""
		rt.reloadMu.Unlock()
	}()
	if len(targets) == 0 {
		return ErrNoReplicas
	}
	if len(targets) == 1 {
		rt.logf("fleet: rolling reload over a single replica: queries will fail over to no one while it drains")
	}

	for _, m := range targets {
		rt.setReloadCurrent(m.name)
		m.draining.Store(true)
		rt.rebuildRing()
		if err := rt.reloadOne(ctx, m); err != nil {
			m.draining.Store(false)
			rt.rebuildRing()
			return fmt.Errorf("fleet: rolling reload stopped at %s: %w", m.name, err)
		}
		m.draining.Store(false)
		rt.rebuildRing()
		rt.bumpReloadDone()
		rt.logf("fleet: replica %s reloaded to version %d", m.name, m.version.Load())
	}
	return nil
}

func (rt *Router) setReloadCurrent(name string) {
	rt.reloadMu.Lock()
	rt.reload.Current = name
	rt.reloadMu.Unlock()
}

func (rt *Router) bumpReloadDone() {
	rt.reloadMu.Lock()
	rt.reload.Done++
	rt.reloadMu.Unlock()
}

// reloadOne drains, reloads, and health-checks one replica that is
// already out of the ring.
func (rt *Router) reloadOne(ctx context.Context, m *member) error {
	// Drain: the router stopped sending; wait for queries it already
	// accepted (from this router or another) to finish.
	for {
		st, err := m.c.stats(ctx)
		if err != nil {
			return fmt.Errorf("drain poll: %w", err)
		}
		if st.Inflight == 0 {
			break
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-rt.closed:
			return fmt.Errorf("router closed")
		case <-time.After(2 * time.Millisecond):
		}
	}
	v, err := m.c.reload(ctx)
	if err != nil {
		return fmt.Errorf("reloadz: %w", err)
	}
	h, err := m.c.health(ctx)
	if err != nil {
		return fmt.Errorf("post-reload health: %w", err)
	}
	m.version.Store(h.Version)
	if h.Version != v {
		return fmt.Errorf("post-reload version %d, reload reported %d", h.Version, v)
	}
	return nil
}

// ReplicaStats is one replica's routing view (router /healthz).
type ReplicaStats struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Alive    bool   `json:"alive"`
	Draining bool   `json:"draining"`
	Version  uint64 `json:"version"`

	Routed     uint64 `json:"routed"`  // queries or shards sent here
	Retries    uint64 `json:"retries"` // failover re-sends landing here
	Errors     uint64 `json:"errors"`  // calls here that failed
	Evictions  uint64 `json:"evictions"`
	Readmitted uint64 `json:"readmitted"`
}

// Stats is the router's point-in-time view of itself and the fleet.
type Stats struct {
	Live     int            `json:"live"`
	Replicas []ReplicaStats `json:"replicas"`

	Queries   uint64 `json:"queries"`
	Failovers uint64 `json:"failovers"`
	Sharded   uint64 `json:"sharded_queries"`
	NoReplica uint64 `json:"no_replica_errors"`

	Reload ReloadProgress `json:"reload"`
}

// Stats snapshots the router counters and per-replica routing stats.
func (rt *Router) Stats() Stats {
	st := Stats{
		Queries:   rt.queries.Load(),
		Failovers: rt.failovers.Load(),
		Sharded:   rt.shardOps.Load(),
		NoReplica: rt.noReplica.Load(),
	}
	rt.reloadMu.Lock()
	st.Reload = rt.reload
	rt.reloadMu.Unlock()
	for _, m := range rt.members {
		alive := m.alive.Load()
		if alive && !m.draining.Load() {
			st.Live++
		}
		st.Replicas = append(st.Replicas, ReplicaStats{
			Name:       m.name,
			URL:        m.url,
			Alive:      alive,
			Draining:   m.draining.Load(),
			Version:    m.version.Load(),
			Routed:     m.routed.Load(),
			Retries:    m.retries.Load(),
			Errors:     m.errs.Load(),
			Evictions:  m.evictions.Load(),
			Readmitted: m.readmitted.Load(),
		})
	}
	return st
}
