package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cstf/internal/dist"
	"cstf/internal/rng"
	"cstf/internal/serve"
)

// ErrNoReplicas is returned when every replica is dead or draining.
var ErrNoReplicas = errors.New("fleet: no live replicas")

// Replica names one serve replica the router fronts.
type Replica struct {
	// Name is the ring member identity — stable across restarts (use the
	// host:port), because the ring is a pure function of the name set.
	Name string `json:"name"`
	// URL is the replica's base HTTP URL, e.g. http://127.0.0.1:8081.
	URL string `json:"url"`
}

// Config tunes a Router. Zero values select the documented defaults.
type Config struct {
	Replicas []Replica
	// Shard scatter-gathers every full-mode TopK/Similar across all live
	// replicas as contiguous row ranges merged with serve.MergeTopK,
	// instead of affinity-routing the whole query to one replica. Sharding
	// divides per-query scan work by the fleet size; affinity multiplies
	// aggregate cache capacity by it. Pick by workload: sharding for huge
	// modes with a flat query distribution, affinity for skewed traffic.
	Shard bool
	// Retry is the probe backoff schedule: a live replica is evicted only
	// after a full Retry.Do cycle of failed health checks, so one dropped
	// probe never flaps the ring.
	Retry dist.RetryPolicy
	// ProbeInterval is the health-check period (default 250ms).
	ProbeInterval time.Duration
	// Timeout bounds each replica HTTP call (default 5s).
	Timeout time.Duration
	// Logf, when non-nil, receives operational log lines (evictions,
	// re-admissions, reload progress).
	Logf func(format string, args ...any)
}

// member is one replica plus its routing state.
type member struct {
	name string
	url  string
	c    *client

	alive    atomic.Bool // health-checked up
	draining atomic.Bool // router-side: excluded from the ring during its reload step

	version atomic.Uint64 // model version from the last successful probe

	routed     atomic.Uint64 // queries (or shards) sent here
	retries    atomic.Uint64 // queries re-sent here after another replica failed
	errs       atomic.Uint64 // failed calls to this replica
	evictions  atomic.Uint64
	readmitted atomic.Uint64
}

// Router spreads queries across a fleet of serve replicas. It is
// stateless: every routing decision is a pure function of the (health-
// filtered) member set and the query key, so any number of router
// processes in front of the same fleet agree on placement.
type Router struct {
	cfg     Config
	members []*member // sorted by name; fixed for the router's lifetime
	dims    []int

	mu   sync.RWMutex
	ring *Ring // over routable (alive, not draining) member names; nil if none

	reloadMu sync.Mutex
	reload   ReloadProgress

	queries   atomic.Uint64
	failovers atomic.Uint64 // queries answered by a non-first-choice replica
	noReplica atomic.Uint64
	shardOps  atomic.Uint64

	closeOnce sync.Once
	closed    chan struct{}
	done      sync.WaitGroup
}

// New builds a router over cfg.Replicas, waits (under cfg.Retry) for at
// least one replica to answer /healthz — taking the fleet's mode sizes
// from it — and starts the health prober. Callers must Close it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("fleet: router needs at least one replica")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	rt := &Router{cfg: cfg, closed: make(chan struct{})}
	seen := map[string]bool{}
	for _, r := range cfg.Replicas {
		if r.Name == "" || r.URL == "" {
			return nil, fmt.Errorf("fleet: replica needs name and url (got %+v)", r)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("fleet: duplicate replica name %q", r.Name)
		}
		seen[r.Name] = true
		rt.members = append(rt.members, &member{name: r.Name, url: r.URL, c: newClient(r.URL, cfg.Timeout)})
	}
	sort.Slice(rt.members, func(a, b int) bool { return rt.members[a].name < rt.members[b].name })

	// Initial probe: mark whoever answers as alive, learn the dims from
	// the first answer, and insist on at least one live replica.
	var dims []int
	err := cfg.Retry.Do(rng.HashAny("fleet-start"), rt.closed, func(int) error {
		ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout())
		defer cancel()
		var wg sync.WaitGroup
		for _, m := range rt.members {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				h, err := m.c.health(ctx)
				if err == nil {
					m.alive.Store(true)
					m.version.Store(h.Version)
					if len(h.Dims) > 0 {
						rt.mu.Lock()
						if dims == nil {
							dims = h.Dims
						}
						rt.mu.Unlock()
					}
				}
			}(m)
		}
		wg.Wait()
		if dims == nil {
			return fmt.Errorf("fleet: no replica reachable")
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rt.dims = dims
	rt.rebuildRing()
	rt.done.Add(1)
	go rt.probeLoop()
	return rt, nil
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

func (rt *Router) probeTimeout() time.Duration {
	if rt.cfg.Timeout > 0 {
		return rt.cfg.Timeout
	}
	return 2 * time.Second
}

// Close stops the prober. It does not touch the replicas.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.closed) })
	rt.done.Wait()
}

// Dims returns the fleet's mode sizes (Querier surface).
func (rt *Router) Dims() []int { return rt.dims }

// rebuildRing recomputes the ring over routable members. Callers flip
// alive/draining flags first, then rebuild.
func (rt *Router) rebuildRing() {
	var names []string
	for _, m := range rt.members {
		if m.alive.Load() && !m.draining.Load() {
			names = append(names, m.name)
		}
	}
	var ring *Ring
	if len(names) > 0 {
		ring, _ = NewRing(names) // names are validated unique at New
	}
	rt.mu.Lock()
	rt.ring = ring
	rt.mu.Unlock()
}

// routable returns the members currently in the ring, in name order.
func (rt *Router) routable() []*member {
	out := make([]*member, 0, len(rt.members))
	for _, m := range rt.members {
		if m.alive.Load() && !m.draining.Load() {
			out = append(out, m)
		}
	}
	return out
}

func (rt *Router) byName(name string) *member {
	i := sort.Search(len(rt.members), func(i int) bool { return rt.members[i].name >= name })
	if i < len(rt.members) && rt.members[i].name == name {
		return rt.members[i]
	}
	return nil
}

// owner resolves the affinity target for a query key, or nil.
func (rt *Router) owner(key uint64) *member {
	rt.mu.RLock()
	ring := rt.ring
	rt.mu.RUnlock()
	if ring == nil {
		return nil
	}
	return rt.byName(ring.Owner(key))
}

// call runs f against the key's affinity owner, failing over in name
// order across the remaining routable replicas when the owner (or a
// fallback) fails with a retriable error. A terminal error — a bad
// request every replica would reject — propagates immediately.
func (rt *Router) call(key uint64, f func(m *member) error) error {
	rt.queries.Add(1)
	first := rt.owner(key)
	if first == nil {
		rt.noReplica.Add(1)
		return ErrNoReplicas
	}
	tried := map[*member]bool{}
	try := func(m *member, failover bool) (done bool, err error) {
		tried[m] = true
		m.routed.Add(1)
		if failover {
			m.retries.Add(1)
			rt.failovers.Add(1)
		}
		if err = f(m); err == nil {
			return true, nil
		}
		m.errs.Add(1)
		if !retriableElsewhere(err) {
			return true, err
		}
		return false, err
	}
	done, err := try(first, false)
	if done {
		return err
	}
	for _, m := range rt.routable() {
		if tried[m] {
			continue
		}
		if done, err = try(m, true); done {
			return err
		}
	}
	return err
}

// Predict routes one reconstruction query by the hash of its full index
// tuple.
func (rt *Router) Predict(ctx context.Context, idx ...int) (float64, error) {
	parts := make([]uint64, 0, len(idx)+1)
	parts = append(parts, 0x9d)
	for _, i := range idx {
		parts = append(parts, uint64(i))
	}
	var v float64
	err := rt.call(rng.Hash64(parts...), func(m *member) error {
		var err error
		v, err = m.c.predict(ctx, idx)
		return err
	})
	return v, err
}

// TopK answers a ranked completion query. Affinity mode routes the whole
// query by its anchor — the conditioning row (given, row) — so repeats hit
// the same replica's cache; shard mode scatter-gathers row ranges of the
// queried mode across the fleet and merges, bitwise-identical to one
// full scan.
func (rt *Router) TopK(ctx context.Context, mode, given, row, k int) ([]serve.Scored, error) {
	return rt.TopKExclude(ctx, mode, given, row, k, nil)
}

// TopKExclude is TopK with an exclude set — candidate rows the replicas
// drop inside their scans. In shard mode every range scan receives the
// same set, so the merged ranking is bitwise-identical to a single node
// answering the same excluded query.
func (rt *Router) TopKExclude(ctx context.Context, mode, given, row, k int, exclude []int) ([]serve.Scored, error) {
	if given == -1 {
		if mode < 0 || mode >= len(rt.dims) {
			return nil, &replicaError{code: 400, msg: fmt.Sprintf("mode %d out of range", mode)}
		}
		given = serve.DefaultGiven(mode)
	}
	if rt.cfg.Shard {
		return rt.sharded(ctx, "/topk", mode, given, row, k, exclude)
	}
	var res []serve.Scored
	err := rt.call(rng.Hash64(0x70, uint64(given), uint64(row)), func(m *member) error {
		var err error
		res, err = m.c.ranked(ctx, "/topk", mode, given, row, k, 0, -1, exclude)
		return err
	})
	return res, err
}

// Similar answers a nearest-rows query, anchored on (mode, row).
func (rt *Router) Similar(ctx context.Context, mode, row, k int) ([]serve.Scored, error) {
	if rt.cfg.Shard {
		return rt.sharded(ctx, "/similar", mode, -2, row, k, nil)
	}
	var res []serve.Scored
	err := rt.call(rng.Hash64(0x51, uint64(mode), uint64(row)), func(m *member) error {
		var err error
		res, err = m.c.ranked(ctx, "/similar", mode, -2, row, k, 0, -1, nil)
		return err
	})
	return res, err
}

// sharded scatter-gathers one ranked query: the queried mode's rows are
// split into one contiguous range per routable replica, each range is
// answered in parallel with the exact range scan, and the partial top-k
// sets merge under the shared tie-break order. Because every replica
// holds the full model, a failed range is re-served by any surviving
// replica rather than lost.
func (rt *Router) sharded(ctx context.Context, path string, mode, given, row, k int, exclude []int) ([]serve.Scored, error) {
	rt.queries.Add(1)
	if mode < 0 || mode >= len(rt.dims) {
		return nil, &replicaError{code: 400, msg: fmt.Sprintf("mode %d out of range", mode)}
	}
	targets := rt.routable()
	if len(targets) == 0 {
		rt.noReplica.Add(1)
		return nil, ErrNoReplicas
	}
	rt.shardOps.Add(1)
	rows, n := rt.dims[mode], len(targets)
	partials := make([][]serve.Scored, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for s, m := range targets {
		lo, hi := s*rows/n, (s+1)*rows/n
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(s int, m *member, lo, hi int) {
			defer wg.Done()
			partials[s], errs[s] = rt.shardCall(ctx, m, targets, path, mode, given, row, k, lo, hi, exclude)
		}(s, m, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return serve.MergeTopK(k, partials...), nil
}

// shardCall answers one range, failing over across the other targets on
// retriable errors.
func (rt *Router) shardCall(ctx context.Context, first *member, targets []*member, path string, mode, given, row, k, lo, hi int, exclude []int) ([]serve.Scored, error) {
	run := func(m *member, failover bool) ([]serve.Scored, error) {
		m.routed.Add(1)
		if failover {
			m.retries.Add(1)
			rt.failovers.Add(1)
		}
		res, err := m.c.ranked(ctx, path, mode, given, row, k, lo, hi, exclude)
		if err != nil {
			m.errs.Add(1)
		}
		return res, err
	}
	res, err := run(first, false)
	if err == nil || !retriableElsewhere(err) {
		return res, err
	}
	for _, m := range targets {
		if m == first {
			continue
		}
		res, err = run(m, true)
		if err == nil || !retriableElsewhere(err) {
			return res, err
		}
	}
	return nil, err
}

// probeLoop health-checks every replica each ProbeInterval, in parallel.
// A live replica that fails a probe gets a full Retry.Do cycle of backed-
// off re-checks before eviction (one dropped packet never flaps the
// ring); an evicted replica that answers again is re-admitted at once.
func (rt *Router) probeLoop() {
	defer rt.done.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.closed:
			return
		case <-t.C:
		}
		var wg sync.WaitGroup
		for _, m := range rt.members {
			wg.Add(1)
			go func(m *member) {
				defer wg.Done()
				rt.probe(m)
			}(m)
		}
		wg.Wait()
	}
}

func (rt *Router) probe(m *member) {
	check := func(int) error {
		ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout())
		defer cancel()
		h, err := m.c.health(ctx)
		if err != nil {
			return err
		}
		m.version.Store(h.Version)
		return nil
	}
	if !m.alive.Load() {
		if check(0) == nil {
			m.alive.Store(true)
			m.readmitted.Add(1)
			rt.rebuildRing()
			rt.logf("fleet: replica %s recovered, re-admitted", m.name)
		}
		return
	}
	if check(0) == nil {
		return
	}
	// Suspect: give it the full backoff schedule before evicting.
	if err := rt.cfg.Retry.Do(rng.HashAny(m.name), rt.closed, check); err != nil {
		m.alive.Store(false)
		m.evictions.Add(1)
		rt.rebuildRing()
		rt.logf("fleet: replica %s failed health checks, evicted: %v", m.name, err)
	}
}
