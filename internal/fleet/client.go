package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cstf/internal/serve"
)

// client is the HTTP client for one serve replica. It speaks the exact
// surface internal/serve's handler exposes (/predict, /topk, /similar,
// /healthz, /statsz, /reloadz) and classifies every failure as either
// retriable on another replica (transport errors, 5xx, shed 429 — the
// replica is unhealthy or momentarily unable) or terminal (4xx — the query
// itself is bad, and every replica would reject it the same way).
type client struct {
	base string
	http *http.Client
}

func newClient(baseURL string, timeout time.Duration) *client {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &client{base: baseURL, http: &http.Client{Timeout: timeout}}
}

// replicaError is a failure reported by (or while reaching) a replica.
type replicaError struct {
	code      int // HTTP status; 0 for transport errors
	msg       string
	retriable bool
}

func (e *replicaError) Error() string {
	if e.code == 0 {
		return e.msg
	}
	return fmt.Sprintf("replica returned %d: %s", e.code, e.msg)
}

// retriableElsewhere reports whether err is worth retrying on a different
// replica (as opposed to a terminal bad request).
func retriableElsewhere(err error) bool {
	var re *replicaError
	if ok := asReplicaError(err, &re); ok {
		return re.retriable
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false // the caller gave up; no replica can help
	}
	return true // transport-level failures without classification
}

func asReplicaError(err error, out **replicaError) bool {
	for err != nil {
		if re, ok := err.(*replicaError); ok {
			*out = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// do issues one request and decodes the JSON response into out. Non-2xx
// responses become *replicaError with the body's "error" field.
func (c *client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// The caller's own context ending is not a replica failure —
		// surface it undecorated so routers don't fail over on it.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &replicaError{msg: err.Error(), retriable: true}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return &replicaError{msg: err.Error(), retriable: true}
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := string(raw)
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &replicaError{
			code: resp.StatusCode,
			msg:  msg,
			// 4xx (other than 429 shed) means the query is invalid
			// everywhere; anything else means THIS replica failed.
			retriable: resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode/100 != 4,
		}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func (c *client) predict(ctx context.Context, idx []int) (float64, error) {
	var resp struct {
		Value float64 `json:"value"`
	}
	err := c.do(ctx, http.MethodPost, "/predict", serve.Query{Index: idx}, &resp)
	return resp.Value, err
}

// ranked issues a TopK (given >= -1) or Similar (given == -2) query over
// candidate rows [lo, hi); hi == -1 selects the full mode. exclude, when
// non-empty, rides along as the TopK exclude set — the replica drops those
// candidate rows inside its scan, which is what keeps a sharded
// scatter-gather with exclusions bitwise-identical to one full scan.
func (c *client) ranked(ctx context.Context, path string, mode, given, row, k, lo, hi int, exclude []int) ([]serve.Scored, error) {
	q := serve.Query{Mode: &mode, Row: &row, K: &k, Exclude: exclude}
	if path == "/topk" && given != -1 {
		q.Given = &given
	}
	if hi != -1 {
		q.Lo, q.Hi = &lo, &hi
	}
	var resp struct {
		Results []serve.Scored `json:"results"`
	}
	err := c.do(ctx, http.MethodPost, path, q, &resp)
	return resp.Results, err
}

// health is the subset of a replica's /healthz the router acts on.
type health struct {
	Status   string `json:"status"`
	Version  uint64 `json:"version"`
	Draining bool   `json:"draining"`
	Inflight int64  `json:"inflight"`
	Dims     []int  `json:"dims"`
}

func (c *client) health(ctx context.Context) (health, error) {
	var h health
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	if err == nil && h.Status != "ok" {
		err = &replicaError{msg: fmt.Sprintf("health status %q", h.Status), retriable: true}
	}
	return h, err
}

func (c *client) stats(ctx context.Context) (serve.Stats, error) {
	var st serve.Stats
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &st)
	return st, err
}

// reload triggers POST /reloadz and returns the replica's new model version.
func (c *client) reload(ctx context.Context) (uint64, error) {
	var resp struct {
		Version uint64 `json:"version"`
	}
	err := c.do(ctx, http.MethodPost, "/reloadz", nil, &resp)
	return resp.Version, err
}
