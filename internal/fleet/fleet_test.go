package fleet

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cstf/internal/ckpt"
	"cstf/internal/dist"
	"cstf/internal/rng"
	"cstf/internal/serve"
)

// writeCheckpoint writes a deterministic rank-r checkpoint and returns its
// path. iter becomes the model identity a reload advances.
func writeCheckpoint(t *testing.T, dir string, seed uint64, rank, iter int, dims ...int) string {
	t.Helper()
	g := rng.New(seed)
	f := &ckpt.File{Algorithm: "als", Rank: rank, Iter: iter, Dims: dims}
	for r := 0; r < rank; r++ {
		f.Lambda = append(f.Lambda, 0.5+g.Float64())
	}
	for _, d := range dims {
		data := make([]float64, d*rank)
		for i := range data {
			data[i] = g.Float64()*2 - 1
		}
		f.Factors = append(f.Factors, data)
	}
	path := filepath.Join(dir, "model.ckpt")
	if err := ckpt.Write(path, f); err != nil {
		t.Fatal(err)
	}
	return path
}

// startFleet boots n replicas off path plus a router over them. The fast
// probe interval keeps eviction/re-admission tests quick.
func startFleet(t *testing.T, path string, n int, shard bool) (*LocalFleet, *Router) {
	t.Helper()
	lf, err := StartLocal(n, func(int) (*serve.Model, error) {
		return serve.LoadCheckpoint(path)
	}, serve.Config{}, serve.HandlerConfig{ReloadPath: path})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(Config{
		Replicas:      lf.Configs(),
		Shard:         shard,
		ProbeInterval: 10 * time.Millisecond,
		Timeout:       5 * time.Second,
		Retry:         dist.RetryPolicy{MaxAttempts: 3, Base: 5 * time.Millisecond, Max: 20 * time.Millisecond},
		Logf:          t.Logf,
	})
	if err != nil {
		lf.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close(); lf.Close() })
	return lf, rt
}

// Routing through the fleet — affinity or sharded — must return bitwise
// the answers a single node computes, including Similar's normalization
// and the tie-break order a sharded merge depends on.
func TestRouterMatchesSingleNode(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 3, 4, 1, 600, 300, 80)
	single, err := serve.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, shard := range []bool{false, true} {
		_, rt := startFleet(t, path, 3, shard)
		if got, want := rt.Dims(), single.Dims; len(got) != len(want) {
			t.Fatalf("shard=%v: dims %v want %v", shard, got, want)
		}
		g := rng.New(11)
		for trial := 0; trial < 50; trial++ {
			mode := g.Intn(3)
			given := serve.DefaultGiven(mode)
			row := g.Intn(single.Dims[given])
			k := 1 + g.Intn(20)
			want, err := single.TopKGiven(mode, given, row, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.TopK(ctx, mode, given, row, k)
			if err != nil {
				t.Fatalf("shard=%v TopK: %v", shard, err)
			}
			if len(got) != len(want) {
				t.Fatalf("shard=%v: %d results want %d", shard, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shard=%v trial %d: result %d = %+v want %+v", shard, trial, i, got[i], want[i])
				}
			}

			srow := g.Intn(single.Dims[mode])
			wantS, err := single.Similar(mode, srow, k)
			if err != nil {
				t.Fatal(err)
			}
			gotS, err := rt.Similar(ctx, mode, srow, k)
			if err != nil {
				t.Fatalf("shard=%v Similar: %v", shard, err)
			}
			for i := range wantS {
				if gotS[i] != wantS[i] {
					t.Fatalf("shard=%v: similar result %d = %+v want %+v", shard, i, gotS[i], wantS[i])
				}
			}

			idx := []int{g.Intn(600), g.Intn(300), g.Intn(80)}
			wantV, err := single.Predict(idx...)
			if err != nil {
				t.Fatal(err)
			}
			gotV, err := rt.Predict(ctx, idx...)
			if err != nil {
				t.Fatal(err)
			}
			if gotV != wantV {
				t.Fatalf("shard=%v: predict %v = %v want %v", shard, idx, gotV, wantV)
			}
		}
	}
}

// Repeats of the same query must land on the same replica (cache
// affinity), and the fleet's routing must spread distinct keys over every
// replica.
func TestRouterAffinityIsSticky(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 5, 3, 1, 400, 200)
	_, rt := startFleet(t, path, 3, false)
	ctx := context.Background()

	before := rt.Stats()
	for i := 0; i < 20; i++ {
		if _, err := rt.TopK(ctx, 0, 1, 7, 5); err != nil {
			t.Fatal(err)
		}
	}
	after := rt.Stats()
	grew := 0
	for i := range after.Replicas {
		if after.Replicas[i].Routed > before.Replicas[i].Routed {
			grew++
		}
	}
	if grew != 1 {
		t.Fatalf("repeated query touched %d replicas, want exactly 1", grew)
	}

	g := rng.New(99)
	for i := 0; i < 300; i++ {
		if _, err := rt.TopK(ctx, 0, 1, g.Intn(200), 5); err != nil {
			t.Fatal(err)
		}
	}
	spread := rt.Stats()
	for _, r := range spread.Replicas {
		if r.Routed == 0 {
			t.Fatalf("replica %s received no traffic across 300 distinct keys", r.Name)
		}
	}
}

// Killing a replica must not fail queries: the hit queries fail over at
// once, the prober evicts it, and restarting it re-admits it.
func TestRouterFailoverAndReadmission(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 7, 3, 1, 500, 250)
	lf, rt := startFleet(t, path, 3, false)
	ctx := context.Background()

	dead := lf.Replicas[1]
	dead.Stop()

	g := rng.New(5)
	for i := 0; i < 200; i++ {
		if _, err := rt.TopK(ctx, 0, 1, g.Intn(250), 5); err != nil {
			t.Fatalf("query %d failed during replica outage: %v", i, err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := rt.Stats()
		if st.Live == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never evicted; stats %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, r := range rt.Stats().Replicas {
		if r.Name == dead.Name && r.Evictions == 0 {
			t.Fatalf("dead replica shows no eviction: %+v", r)
		}
	}

	if err := dead.Restart(); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := rt.Stats()
		if st.Live == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted replica never re-admitted; stats %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Sharded queries must also survive a dead replica: its range is re-served
// by a survivor, and the merged result stays bitwise-exact.
func TestShardedFailover(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 13, 3, 1, 900, 100)
	single, err := serve.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	lf, rt := startFleet(t, path, 3, true)
	ctx := context.Background()

	lf.Replicas[2].Stop()
	g := rng.New(77)
	for i := 0; i < 60; i++ {
		row, k := g.Intn(100), 1+g.Intn(15)
		want, err := single.TopKGiven(0, 1, row, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rt.TopK(ctx, 0, 1, row, k)
		if err != nil {
			t.Fatalf("sharded query %d failed during outage: %v", i, err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("query %d: result %d = %+v want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// The headline guarantee: a rolling reload across the fleet under live
// load drops zero queries, and every replica ends up on the new model
// version.
func TestRollingReloadZeroDropsUnderLoad(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 21, 3, 1, 800, 400)
	lf, rt := startFleet(t, path, 3, false)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var stats serve.LoadStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		stats = serve.RunLoad(ctx, rt, serve.LoadOptions{
			Clients:  4,
			Requests: 100000, // far more than the reload window needs; cancelled below
			Seed:     1,
		})
	}()

	time.Sleep(20 * time.Millisecond) // let load ramp
	// Publish v2 of the model, then roll it across the fleet.
	writeCheckpoint(t, dir, 22, 3, 2, 800, 400)
	if err := rt.RollingReload(context.Background()); err != nil {
		t.Fatalf("rolling reload: %v", err)
	}
	time.Sleep(20 * time.Millisecond) // post-roll traffic against the new model
	cancel()
	wg.Wait()

	if stats.Errors > 0 || stats.Shed > 0 {
		t.Fatalf("rolling reload dropped queries: %d errors, %d shed (of %d)", stats.Errors, stats.Shed, stats.Requests)
	}
	if stats.Requests == 0 {
		t.Fatal("load generator completed no requests")
	}
	st := rt.Stats()
	if !st.Reload.Active && st.Reload.Done != 3 {
		t.Fatalf("reload progress %+v, want done=3", st.Reload)
	}
	for _, r := range lf.Replicas {
		if got := r.Server.Model().Iter; got != 2 {
			t.Fatalf("replica %s serving iter %d after roll, want 2", r.Name, got)
		}
	}
	for _, rs := range st.Replicas {
		if rs.Version != 2 {
			t.Fatalf("router view of %s at version %d, want 2", rs.Name, rs.Version)
		}
	}
}

// A second roll while one is active must be refused, not interleaved.
func TestRollingReloadExclusive(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 31, 2, 1, 200, 100)
	_, rt := startFleet(t, path, 2, false)
	if err := rt.RollingReload(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After completion a new roll is allowed again.
	if err := rt.RollingReload(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// An exclude set must be honored identically through the fleet on both
// routing modes: affinity routes the whole excluded query to one replica,
// shard mode sends the same exclude set to every range scan — either way
// the answer is bitwise what a single node returns for the same set.
func TestRouterTopKExcludeMatchesSingleNode(t *testing.T) {
	dir := t.TempDir()
	path := writeCheckpoint(t, dir, 7, 3, 1, 500, 200, 60)
	single, err := serve.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, shard := range []bool{false, true} {
		_, rt := startFleet(t, path, 3, shard)
		g := rng.New(29)
		for trial := 0; trial < 30; trial++ {
			mode := g.Intn(3)
			given := serve.DefaultGiven(mode)
			row := g.Intn(single.Dims[given])
			k := 1 + g.Intn(15)
			var ex []int
			for len(ex) < 8 {
				ex = append(ex, g.Intn(single.Dims[mode]))
			}
			want, err := single.TopKGivenRangeExclude(mode, given, row, k, 0, single.Dims[mode], ex)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rt.TopKExclude(ctx, mode, given, row, k, ex)
			if err != nil {
				t.Fatalf("shard=%v TopKExclude: %v", shard, err)
			}
			if len(got) != len(want) {
				t.Fatalf("shard=%v: %d results want %d", shard, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shard=%v trial %d: result %d = %+v want %+v", shard, trial, i, got[i], want[i])
				}
			}
		}
	}
}
