package core

import (
	"math"
	"testing"

	"cstf/internal/cluster"
	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
)

func testCtx(nodes, parts int) *rdd.Context {
	return rdd.NewContext(cluster.New(nodes, cluster.LaptopProfile()), parts)
}

func factorRDDsFor(ctx *rdd.Context, t *tensor.COO, rank int, seed uint64) []*FactorRDD {
	fs := make([]*FactorRDD, t.Order())
	for n := range fs {
		fs[n] = initFactorRDD(ctx, seed, n, t.Dims[n], rank).Persist()
	}
	return fs
}

func serialFactorsFor(t *tensor.COO, rank int, seed uint64) []*la.Dense {
	fs := make([]*la.Dense, t.Order())
	for n := range fs {
		fs[n] = cpals.InitFactor(seed, n, t.Dims[n], rank)
	}
	return fs
}

func TestInitFactorRDDMatchesSerial(t *testing.T) {
	ctx := testCtx(3, 6)
	f := initFactorRDD(ctx, 42, 1, 30, 4)
	rows := rdd.CollectMap(f)
	if len(rows) != 30 {
		t.Fatalf("got %d rows", len(rows))
	}
	want := cpals.InitFactor(42, 1, 30, 4)
	for k, row := range rows {
		if la.VecMaxAbsDiff(row, want.Row(int(k))) != 0 {
			t.Fatalf("row %d differs from serial init", k)
		}
	}
}

func TestGramOfMatchesSerial(t *testing.T) {
	ctx := testCtx(2, 4)
	f := initFactorRDD(ctx, 7, 0, 25, 3)
	got := gramOf(f, 3)
	want := cpals.InitFactor(7, 0, 25, 3).Gram()
	if d := la.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("distributed gram differs by %g", d)
	}
}

func TestColumnNormsMatchesSerial(t *testing.T) {
	ctx := testCtx(2, 4)
	f := initFactorRDD(ctx, 7, 2, 18, 3)
	got := columnNorms(f, 3)
	want := cpals.InitFactor(7, 2, 18, 3).ColumnNorms()
	if la.VecMaxAbsDiff(got, want) > 1e-10 {
		t.Fatalf("norms %v, want %v", got, want)
	}
}

func TestMTTKRPCOOMatchesSerialAllModes(t *testing.T) {
	x := tensor.GenUniform(11, 400, 15, 12, 18)
	rank := 3
	for _, nodes := range []int{1, 4} {
		ctx := testCtx(nodes, 2*nodes)
		entries := rdd.FromSlice(ctx, "t", x.Entries, rdd.FixedSize[tensor.Entry](32)).Persist()
		fs := factorRDDsFor(ctx, x, rank, 5)
		serial := serialFactorsFor(x, rank, 5)
		for mode := 0; mode < 3; mode++ {
			m := MTTKRPCOO(entries, fs, mode, rank)
			got := collectFactor(m, x.Dims[mode], rank)
			want := cpals.MTTKRP(x, mode, serial)
			if d := la.MaxAbsDiff(got, want); d > 1e-9 {
				t.Fatalf("nodes=%d mode=%d: COO MTTKRP differs by %g", nodes, mode, d)
			}
		}
	}
}

func TestMTTKRPCOOFourthOrder(t *testing.T) {
	x := tensor.GenUniform(13, 500, 10, 9, 8, 7)
	rank := 2
	ctx := testCtx(4, 8)
	entries := rdd.FromSlice(ctx, "t", x.Entries, rdd.FixedSize[tensor.Entry](40)).Persist()
	fs := factorRDDsFor(ctx, x, rank, 9)
	serial := serialFactorsFor(x, rank, 9)
	for mode := 0; mode < 4; mode++ {
		got := collectFactor(MTTKRPCOO(entries, fs, mode, rank), x.Dims[mode], rank)
		want := cpals.MTTKRP(x, mode, serial)
		if d := la.MaxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("mode %d: 4th-order COO MTTKRP differs by %g", mode, d)
		}
	}
}

func TestSolveCOOMatchesSerialReference(t *testing.T) {
	x := tensor.GenUniform(17, 600, 20, 16, 12)
	opts := cpals.Options{Rank: 2, MaxIters: 4, Seed: 21}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(4, 8)
	got, err := SolveCOO(ctx, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got, want)
}

func TestSolveQCOOMatchesSerialReference(t *testing.T) {
	x := tensor.GenUniform(19, 600, 20, 16, 12)
	opts := cpals.Options{Rank: 2, MaxIters: 4, Seed: 22}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(4, 8)
	got, err := SolveQCOO(ctx, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got, want)
}

func TestSolveQCOOFourthOrderMatchesSerial(t *testing.T) {
	x := tensor.GenUniform(23, 700, 12, 10, 9, 8)
	opts := cpals.Options{Rank: 2, MaxIters: 3, Seed: 23}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(4, 8)
	got, err := SolveQCOO(ctx, x, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareResults(t, got, want)
}

func compareResults(t *testing.T, got, want *cpals.Result) {
	t.Helper()
	if got.Iters != want.Iters {
		t.Fatalf("iterations %d vs %d", got.Iters, want.Iters)
	}
	for i := range want.Fits {
		if math.Abs(got.Fits[i]-want.Fits[i]) > 1e-7 {
			t.Fatalf("fit[%d] = %v, serial %v", i, got.Fits[i], want.Fits[i])
		}
	}
	if la.VecMaxAbsDiff(got.Lambda, want.Lambda) > 1e-6*(1+la.VecNorm(want.Lambda)) {
		t.Fatalf("lambda %v vs %v", got.Lambda, want.Lambda)
	}
	for n := range want.Factors {
		if d := la.MaxAbsDiff(got.Factors[n], want.Factors[n]); d > 1e-6 {
			t.Fatalf("factor %d differs from serial by %g", n, d)
		}
	}
}

func TestCOOAndQCOOProduceSameFactors(t *testing.T) {
	x := tensor.GenZipf(29, 800, 0.7, 40, 30, 25)
	opts := cpals.Options{Rank: 3, MaxIters: 3, Seed: 31}
	a, err := SolveCOO(testCtx(2, 4), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveQCOO(testCtx(2, 4), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for n := range a.Factors {
		if d := la.MaxAbsDiff(a.Factors[n], b.Factors[n]); d > 1e-7 {
			t.Fatalf("factor %d: COO and QCOO diverge by %g", n, d)
		}
	}
}

func TestSolveCOOConvergesOnLowRankTensor(t *testing.T) {
	x := tensor.GenLowRankDense(31, 2, 0, 10, 9, 8)
	res, err := SolveCOO(testCtx(2, 4), x, cpals.Options{Rank: 2, MaxIters: 200, Seed: 3, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.999 {
		t.Fatalf("COO fit %v on rank-2 tensor", res.Fit())
	}
}

func TestShuffleCountsPerIterationMatchPaper(t *testing.T) {
	// Section 5: COO performs N^2 shuffles per CP iteration; QCOO performs
	// 2N (one join + one reduce per MTTKRP) after initialization.
	x := tensor.GenUniform(37, 500, 25, 20, 15)
	order := 3

	// COO: measure iteration 2 (steady state == every iteration).
	ctxA := testCtx(4, 8)
	run2IterationsCOO := func(ctx *rdd.Context) *cluster.Metrics {
		opts := cpals.Options{Rank: 2, MaxIters: 2, Seed: 7}
		if _, err := SolveCOO(ctx, x, opts); err != nil {
			t.Fatal(err)
		}
		return ctx.Cluster.Metrics()
	}
	m2 := run2IterationsCOO(ctxA)
	ctxB := testCtx(4, 8)
	opts1 := cpals.Options{Rank: 2, MaxIters: 1, Seed: 7}
	if _, err := SolveCOO(ctxB, x, opts1); err != nil {
		t.Fatal(err)
	}
	m1 := ctxB.Cluster.Metrics()
	cooPerIter := m2.TotalShuffles() - m1.TotalShuffles()
	if cooPerIter != order*order {
		t.Fatalf("COO shuffles per steady iteration = %d, want %d", cooPerIter, order*order)
	}

	// QCOO steady state via the step API.
	ctxC := testCtx(4, 8)
	s := NewQCOOState(ctxC, x, 2, 7)
	for n := 0; n < order; n++ {
		s.Step(n) // first iteration (not measured)
	}
	before := ctxC.Cluster.Metrics()
	for n := 0; n < order; n++ {
		s.Step(n)
	}
	diff := ctxC.Cluster.Metrics().Sub(before)
	if got := diff.TotalShuffles(); got != 2*order {
		t.Fatalf("QCOO shuffles per steady iteration = %d, want %d", got, 2*order)
	}
}

func TestQCOOShufflesLessDataThanCOO(t *testing.T) {
	// The headline claim: QCOO reduces shuffled bytes per steady-state
	// iteration versus COO (35% for 3rd order in the paper; here we assert
	// a material reduction and leave the calibrated percentage to the
	// experiments package).
	x := tensor.GenZipf(41, 3000, 0.6, 100, 80, 60)
	rank := 2

	perIterBytes := func(run func(ctx *rdd.Context) func()) float64 {
		ctx := testCtx(8, 16)
		step := run(ctx)
		step() // warm-up iteration
		before := ctx.Cluster.Metrics()
		step()
		d := ctx.Cluster.Metrics().Sub(before)
		return d.TotalRemoteBytes() + d.TotalLocalBytes()
	}

	cooBytes := perIterBytes(func(ctx *rdd.Context) func() {
		entries := rdd.FromSlice(ctx, "t", x.Entries, rdd.FixedSize[tensor.Entry](32)).Persist()
		fs := factorRDDsFor(ctx, x, rank, 3)
		return func() {
			for n := 0; n < 3; n++ {
				m := MTTKRPCOO(entries, fs, n, rank).Eval()
				grams := make([]*la.Dense, 3)
				for k := 0; k < 3; k++ {
					if k != n {
						grams[k] = gramOf(fs[k], rank)
					}
				}
				newF, _ := updateFactor(m, cpals.HadamardOfGramsExcept(grams, n), rank)
				fs[n].Unpersist()
				fs[n] = newF
			}
		}
	})
	qcooBytes := perIterBytes(func(ctx *rdd.Context) func() {
		s := NewQCOOState(ctx, x, rank, 3)
		return func() {
			for n := 0; n < 3; n++ {
				s.Step(n)
			}
		}
	})
	if qcooBytes >= cooBytes {
		t.Fatalf("QCOO bytes %v must be below COO bytes %v", qcooBytes, cooBytes)
	}
	reduction := 1 - qcooBytes/cooBytes
	if reduction < 0.10 {
		t.Fatalf("QCOO reduction only %.1f%%", 100*reduction)
	}
}

func TestSolveCOOValidatesOptions(t *testing.T) {
	x := tensor.GenUniform(1, 50, 5, 5, 5)
	if _, err := SolveCOO(testCtx(1, 2), x, cpals.Options{Rank: 0, MaxIters: 1}); err == nil {
		t.Fatal("rank 0 must error")
	}
	if _, err := SolveQCOO(testCtx(1, 2), x, cpals.Options{Rank: 2, MaxIters: 0}); err == nil {
		t.Fatal("0 iterations must error")
	}
}

func TestPhaseLabels(t *testing.T) {
	if PhaseOf(0) != "MTTKRP-1" || PhaseOf(3) != "MTTKRP-4" {
		t.Fatalf("phase labels: %s, %s", PhaseOf(0), PhaseOf(3))
	}
	// After a solve, metrics must contain per-mode phases.
	x := tensor.GenUniform(3, 200, 10, 10, 10)
	ctx := testCtx(2, 4)
	if _, err := SolveCOO(ctx, x, cpals.Options{Rank: 2, MaxIters: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	m := ctx.Cluster.Metrics()
	for _, ph := range []string{"MTTKRP-1", "MTTKRP-2", "MTTKRP-3", PhaseOther} {
		if m.SimTime[ph] <= 0 {
			t.Fatalf("phase %s has no time recorded; phases: %v", ph, m.Phases())
		}
	}
}

func TestSolveFifthOrderMatchesSerial(t *testing.T) {
	// Section 5 extends the analysis to order-5 tensors; the solvers must
	// stay exact there too.
	x := tensor.GenUniform(43, 600, 10, 9, 8, 7, 6)
	opts := cpals.Options{Rank: 2, MaxIters: 2, Seed: 17}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range map[string]func(*rdd.Context, *tensor.COO, cpals.Options) (*cpals.Result, error){
		"COO":  SolveCOO,
		"QCOO": SolveQCOO,
	} {
		got, err := solve(testCtx(4, 8), x, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for n := range want.Factors {
			if d := la.MaxAbsDiff(got.Factors[n], want.Factors[n]); d > 1e-6 {
				t.Fatalf("%s: order-5 factor %d differs from serial by %g", name, n, d)
			}
		}
	}
}

func TestQCOOGramReuseAblationStaysCorrect(t *testing.T) {
	// Disabling the gram-queue reuse must change cost, never results.
	x := tensor.GenUniform(47, 500, 20, 16, 12)
	opts := cpals.Options{Rank: 2, MaxIters: 3, Seed: 19}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(2, 4)
	s := NewQCOOState(ctx, x, opts.Rank, opts.Seed)
	s.DisableGramReuse = true
	for it := 0; it < opts.MaxIters; it++ {
		for n := 0; n < 3; n++ {
			s.Step(n)
		}
	}
	got := s.Factors()
	for n := range want.Factors {
		if d := la.MaxAbsDiff(got[n], want.Factors[n]); d > 1e-6 {
			t.Fatalf("gram-reuse ablation changed factor %d by %g", n, d)
		}
	}
}

func TestCOOSerializedStorageStaysCorrect(t *testing.T) {
	// The storage-level ablation must change cost, never results.
	x := tensor.GenUniform(53, 500, 20, 16, 12)
	opts := cpals.Options{Rank: 2, MaxIters: 2, Seed: 23}
	want, err := cpals.Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(2, 4)
	s := NewCOOStateWithStorage(ctx, x, opts.Rank, opts.Seed, true)
	for it := 0; it < opts.MaxIters; it++ {
		for n := 0; n < 3; n++ {
			s.Step(n)
		}
	}
	got := s.Factors()
	for n := range want.Factors {
		if d := la.MaxAbsDiff(got[n], want.Factors[n]); d > 1e-6 {
			t.Fatalf("serialized storage changed factor %d by %g", n, d)
		}
	}
}

// The engine's shuffle-byte metering must equal hand algebra. For one
// steady-state COO mode-1 MTTKRP on an order-3 tensor:
//
//	join 1 shuffles nnz keyed entries:        nnz * (8 + E + ovh)
//	join 2 shuffles nnz entries+accumulator:  nnz * (8 + E + 8R + ovh)
//	reduce shuffles the map-side-combined rows, between D (all distinct
//	keys globally) and nnz records of (8 + 8R + ovh) each.
//
// where E = 32 (entry), ovh = profile overhead. Joins are exact; the
// reduce is bounded.
func TestCOOShuffleBytesMatchHandAlgebra(t *testing.T) {
	x := tensor.GenUniform(61, 2000, 50, 40, 30)
	rank := 2
	ctx := testCtx(4, 8)
	s := NewCOOState(ctx, x, rank, 1)
	for n := 0; n < 3; n++ {
		s.Step(n) // warm-up iteration
	}
	before := ctx.Cluster.Metrics()
	s.Step(0)
	diff := ctx.Cluster.Metrics().Sub(before)
	got := diff.RemoteBytes["MTTKRP-1"] + diff.LocalBytes["MTTKRP-1"]

	nnz := float64(x.NNZ())
	ovh := float64(ctx.Cluster.Profile.RecordOverhead)
	e := float64(tensor.EntryBytes(3))
	r8 := float64(8 * rank)
	joins := nnz*(8+e+ovh) + nnz*(8+e+r8+ovh)

	// Reduce bounds: combined records between global distinct keys and nnz.
	distinct := float64(x.ModeStats(0).NonEmpty)
	lo := joins + distinct*(8+r8+ovh)
	hi := joins + nnz*(8+r8+ovh)
	if got < lo || got > hi {
		t.Fatalf("measured MTTKRP-1 bytes %v outside analytic bounds [%v, %v]", got, lo, hi)
	}
}

// Same cross-check for QCOO: the single join shuffles nnz queue records of
// (8 + E + (N-1)*8R + ovh) bytes exactly, plus the bounded reduce.
func TestQCOOShuffleBytesMatchHandAlgebra(t *testing.T) {
	x := tensor.GenUniform(67, 2000, 50, 40, 30)
	rank := 2
	ctx := testCtx(4, 8)
	s := NewQCOOState(ctx, x, rank, 1)
	for n := 0; n < 3; n++ {
		s.Step(n)
	}
	before := ctx.Cluster.Metrics()
	s.Step(0)
	diff := ctx.Cluster.Metrics().Sub(before)
	got := diff.RemoteBytes["MTTKRP-1"] + diff.LocalBytes["MTTKRP-1"]

	nnz := float64(x.NNZ())
	ovh := float64(ctx.Cluster.Profile.RecordOverhead)
	e := float64(tensor.EntryBytes(3))
	r8 := float64(8 * rank)
	join := nnz * (8 + e + 2*r8 + ovh)
	distinct := float64(x.ModeStats(0).NonEmpty)
	lo := join + distinct*(8+r8+ovh)
	hi := join + nnz*(8+r8+ovh)
	if got < lo || got > hi {
		t.Fatalf("measured QCOO MTTKRP-1 bytes %v outside analytic bounds [%v, %v]", got, lo, hi)
	}
}
