package core

import (
	"fmt"
	"math"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
)

// PhaseOf returns the metrics phase label for the 1-based MTTKRP mode, as
// used by the Figure 4/5 breakdowns ("MTTKRP-1", ...).
func PhaseOf(mode int) string { return fmt.Sprintf("MTTKRP-%d", mode+1) }

// PhaseOther labels all non-MTTKRP work (factor updates, gram matrices,
// fit computation, queue initialization amortization).
const PhaseOther = "Other"

// MTTKRPCOO performs one distributed MTTKRP along `mode` with the CSTF-COO
// workflow of Table 2: key the cached tensor by one non-target mode, join
// the corresponding factor, fold the joined row into the per-nonzero
// accumulator while re-keying for the next mode, and after the last join
// reduceByKey on the target mode's index to assemble the result rows.
// For an order-N tensor this is N-1 join shuffles plus one reduce shuffle.
func MTTKRPCOO(entries *rdd.Dataset[tensor.Entry], factors []*FactorRDD, mode, rank int) *rdd.Dataset[Row] {
	order := len(factors)
	joinModes := make([]int, 0, order-1)
	for m := order - 1; m >= 0; m-- {
		if m != mode {
			joinModes = append(joinModes, m)
		}
	}

	first := joinModes[0]
	sz := cooSize(order, rank)
	cur := rdd.Map(entries, func(e tensor.Entry) rdd.KV[uint32, cooVal] {
		return rdd.KV[uint32, cooVal]{Key: e.Idx[first], Val: cooVal{E: e}}
	}, sz, rdd.WithName("coo-keyBy"))

	joinedSize := func(r rdd.KV[uint32, rdd.Pair[cooVal, []float64]]) int {
		return 8 + tensor.EntryBytes(order) + 2*8*rank
	}
	for i, jm := range joinModes {
		joined := rdd.Join(cur, factors[jm], joinedSize,
			rdd.WithName(fmt.Sprintf("coo-join-m%d", jm+1)))
		nextKey := mode
		if i+1 < len(joinModes) {
			nextKey = joinModes[i+1]
		}
		firstJoin := i == 0
		cur = rdd.Map(joined, func(r rdd.KV[uint32, rdd.Pair[cooVal, []float64]]) rdd.KV[uint32, cooVal] {
			v := r.Val.A
			row := r.Val.B
			acc := make([]float64, rank)
			if firstJoin {
				// Fold the tensor value in with the first row so the
				// accumulator is always a plain length-R vector.
				for c := range acc {
					acc[c] = v.E.Val * row[c]
				}
			} else {
				la.VecHadamardInto(acc, v.Acc, row)
			}
			return rdd.KV[uint32, cooVal]{Key: v.E.Idx[nextKey], Val: cooVal{E: v.E, Acc: acc}}
		}, sz, rdd.WithFlops(float64(rank)), rdd.WithName("coo-fold"))
	}

	vecs := rdd.MapValues(cur, func(v cooVal) []float64 { return v.Acc },
		rowSize(rank), rdd.WithName("coo-extract"))
	return rdd.ReduceByKey(vecs, addRows(rank),
		rdd.WithFlops(float64(rank)), rdd.WithName("coo-reduce"))
}

// addRows returns a non-mutating vector-sum combiner for ReduceByKey.
func addRows(rank int) func(a, b []float64) []float64 {
	return func(a, b []float64) []float64 {
		out := make([]float64, rank)
		for i := range out {
			out[i] = a[i] + b[i]
		}
		return out
	}
}

// COOState is the persistent state of the CSTF-COO CP-ALS loop: the cached
// tensor RDD and the distributed factor matrices. Like QCOOState it exposes
// a step API so experiments can measure individual MTTKRPs.
type COOState struct {
	ctx     *rdd.Context
	dims    []int
	order   int
	rank    int
	entries *rdd.Dataset[tensor.Entry]
	factors []*FactorRDD
	lambda  []float64
	lastM   *rdd.Dataset[Row]
	normX   float64
}

// NewCOOState loads the tensor into a raw-cached RDD (Section 4.1,
// "Caching") and materializes the initial factor matrices.
func NewCOOState(ctx *rdd.Context, t *tensor.COO, rank int, seed uint64) *COOState {
	return NewCOOStateWithStorage(ctx, t, rank, seed, false)
}

// NewCOOStateWithStorage selects the tensor cache's storage level:
// serialized=false is the paper's choice (raw objects, fast reads, larger
// footprint); serialized=true is the MEMORY_ONLY_SER alternative the paper
// rejects for iterative algorithms. The caching ablation compares both.
func NewCOOStateWithStorage(ctx *rdd.Context, t *tensor.COO, rank int, seed uint64, serialized bool) *COOState {
	order := t.Order()
	ctx.Cluster.SetPhase(PhaseOther)
	s := &COOState{
		ctx:   ctx,
		dims:  append([]int(nil), t.Dims...),
		order: order,
		rank:  rank,
		normX: t.Norm(),
	}
	s.entries = rdd.FromSlice(ctx, "tensor", t.Entries,
		rdd.FixedSize[tensor.Entry](tensor.EntryBytes(order)))
	if serialized {
		s.entries.PersistSerialized()
	} else {
		s.entries.Persist()
	}
	s.factors = make([]*FactorRDD, order)
	for n := 0; n < order; n++ {
		s.factors[n] = initFactorRDD(ctx, seed, n, t.Dims[n], rank).Persist()
	}
	return s
}

// Step performs the mode-n MTTKRP and factor update. COO recomputes the
// gram of every fixed factor for each update — the "extra reduce
// operations" QCOO's once-per-iteration gram reuse eliminates
// (Section 4.2).
func (s *COOState) Step(n int) {
	c := s.ctx.Cluster
	order, rank := s.order, s.rank

	c.SetPhase(PhaseOf(n))
	m := MTTKRPCOO(s.entries, s.factors, n, rank).Eval()

	c.SetPhase(PhaseOther)
	grams := make([]*la.Dense, order)
	for k := 0; k < order; k++ {
		if k != n {
			grams[k] = gramOf(s.factors[k], rank)
		}
	}
	v := cpals.HadamardOfGramsExcept(grams, n)
	c.ChargeDriver(float64((order - 2) * rank * rank))

	newF, norms := updateFactor(m, v, rank)
	s.factors[n].Unpersist()
	s.factors[n] = newF
	s.lambda = norms
	s.lastM = m
}

// Fit returns the model fit using the most recent MTTKRP result.
func (s *COOState) Fit() float64 {
	s.ctx.Cluster.SetPhase(PhaseOther)
	return fitOf(s.normX, s.lastM, s.factors, s.lambda, s.rank)
}

// Factors collects the current factor matrices to the driver.
func (s *COOState) Factors() []*la.Dense {
	out := make([]*la.Dense, s.order)
	for n := 0; n < s.order; n++ {
		out[n] = collectFactor(s.factors[n], s.dims[n], s.rank)
	}
	return out
}

// Lambda returns the current column weights.
func (s *COOState) Lambda() []float64 { return s.lambda }

// SolveCOO runs distributed CP-ALS with the CSTF-COO algorithm
// (Section 4.1). The tensor is cached raw in memory across iterations;
// every MTTKRP re-joins the factor matrices from scratch. When
// opts.InitFactors is set the state is restored from a checkpoint instead
// of the seeded initialization, and the loop resumes at opts.StartIter.
func SolveCOO(ctx *rdd.Context, t *tensor.COO, opts cpals.Options) (*cpals.Result, error) {
	if err := opts.Validate(t); err != nil {
		return nil, err
	}
	var s *COOState
	if opts.InitFactors != nil {
		s = NewCOOStateFromFactors(ctx, t, opts.Rank, opts.InitFactors, opts.InitLambda)
	} else {
		s = NewCOOState(ctx, t, opts.Rank, opts.Seed)
	}
	return runALS(ctx, s, s.dims, s.order, s.rank, opts)
}

// fitOf evaluates the CP fit at the end of an iteration from the last
// MTTKRP result (see cpals.FitFrom): the inner product is a narrow
// co-partitioned join, the model norm comes from fresh gram matrices.
func fitOf(normX float64, lastM *rdd.Dataset[Row], factors []*FactorRDD, lambda []float64, rank int) float64 {
	order := len(factors)
	inner := innerProduct(lastM, factors[order-1], lambda, rank)
	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		grams[n] = gramOf(factors[n], rank)
	}
	modelSq := cpals.ModelNormSq(lambda, grams)
	residSq := normX*normX + modelSq - 2*inner
	if residSq < 0 {
		residSq = 0
	}
	if normX == 0 {
		return 0
	}
	return 1 - math.Sqrt(residSq)/normX
}
