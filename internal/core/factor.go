package core

import (
	"math"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/rdd"
)

// FactorRDD is a distributed factor matrix: rows keyed by index,
// hash-partitioned by key so tensor-factor joins can be planned against it.
type FactorRDD = rdd.Dataset[rdd.KV[uint32, []float64]]

// initFactorRDD materializes the initial factor matrix for a mode directly
// in its home partitions. Because cpals.FactorInitValue is a pure function
// of (seed, mode, row, col), no broadcast or shuffle is needed — each
// partition generates exactly its own rows.
func initFactorRDD(ctx *rdd.Context, seed uint64, mode, dim, rank int) *FactorRDD {
	return rdd.GenerateKeyed(ctx, "factor-init",
		func(p int) []Row {
			var rows []Row
			for i := 0; i < dim; i++ {
				if rdd.PartitionOf(uint32(i), ctx.Parts) != p {
					continue
				}
				row := make([]float64, rank)
				for r := range row {
					row[r] = cpals.FactorInitValue(seed, mode, i, r)
				}
				rows = append(rows, Row{Key: uint32(i), Val: row})
			}
			return rows
		}, rowSize(rank))
}

// gramOf computes the R x R gram matrix A^T A of a distributed factor with
// a single narrow aggregate (partial grams per partition, merged on the
// driver) — no shuffle, rank^2 flops per row.
func gramOf(f *FactorRDD, rank int) *la.Dense {
	return rdd.Aggregate(f,
		func() *la.Dense { return la.NewDense(rank, rank) },
		func(g *la.Dense, r Row) *la.Dense {
			row := r.Val
			for a := 0; a < rank; a++ {
				ra := row[a]
				if ra == 0 {
					continue
				}
				gr := g.Row(a)
				for b := 0; b < rank; b++ {
					gr[b] += ra * row[b]
				}
			}
			return g
		},
		func(a, b *la.Dense) *la.Dense {
			for i := range a.Data {
				a.Data[i] += b.Data[i]
			}
			return a
		},
		float64(rank*rank),
	)
}

// columnNorms computes the Euclidean norm of each column of a distributed
// factor (narrow aggregate), substituting 1 for zero columns as the serial
// reference does.
func columnNorms(f *FactorRDD, rank int) []float64 {
	sums := rdd.Aggregate(f,
		func() []float64 { return make([]float64, rank) },
		func(acc []float64, r Row) []float64 {
			for i, v := range r.Val {
				acc[i] += v * v
			}
			return acc
		},
		func(a, b []float64) []float64 {
			for i := range a {
				a[i] += b[i]
			}
			return a
		},
		float64(rank),
	)
	for i := range sums {
		sums[i] = math.Sqrt(sums[i])
		if sums[i] == 0 {
			sums[i] = 1
		}
	}
	return sums
}

// updateFactor turns an MTTKRP result M into the new normalized factor:
// A = M * pinv(V) followed by column normalization, both as narrow
// mapValues over the row RDD. It returns the persisted factor and the
// lambda vector. The R x R pinv is computed on the driver (Algorithm 1's
// dagger), costing O(R^3) there.
func updateFactor(m *rdd.Dataset[Row], v *la.Dense, rank int) (*FactorRDD, []float64) {
	ctx := m.Context()
	pinv := la.Pinv(v)
	ctx.Cluster.ChargeDriver(30 * float64(rank*rank*rank)) // Jacobi eig + inverse assembly
	bPinv := rdd.NewBroadcast(ctx, pinv, 8*rank*rank)

	raw := rdd.MapValues(m, func(row []float64) []float64 {
		out := make([]float64, rank)
		la.VecMatInto(out, row, bPinv.Value())
		return out
	}, rowSize(rank), rdd.WithFlops(2*float64(rank*rank)), rdd.WithName("applyPinv"))

	norms := columnNorms(raw, rank)
	inv := make([]float64, rank)
	for i, n := range norms {
		inv[i] = 1 / n
	}
	bInv := rdd.NewBroadcast(ctx, inv, 8*rank)
	normalized := rdd.MapValues(raw, func(row []float64) []float64 {
		scale := bInv.Value()
		out := make([]float64, rank)
		for i, v := range row {
			out[i] = v * scale[i]
		}
		return out
	}, rowSize(rank), rdd.WithFlops(float64(rank)), rdd.WithName("normalize"))

	return normalized.Persist(), norms
}

// collectFactor gathers a distributed factor into a dense matrix with dim
// rows; indices never updated (no nonzeros in that slice) stay zero,
// matching the serial reference.
func collectFactor(f *FactorRDD, dim, rank int) *la.Dense {
	out := la.NewDense(dim, rank)
	for k, row := range rdd.CollectMap(f) {
		copy(out.Row(int(k)), row)
	}
	return out
}

// innerProduct computes <X, X_hat> = sum_{i,r} M(i,r) A(i,r) lambda_r from
// the last MTTKRP result and the factor it produced — a narrow
// co-partitioned join plus an aggregate (the SPLATT fit trick,
// cpals.FitFrom's distributed half).
func innerProduct(m *rdd.Dataset[Row], factor *FactorRDD, lambda []float64, rank int) float64 {
	joined := rdd.Join(m, factor, func(rdd.KV[uint32, rdd.Pair[[]float64, []float64]]) int {
		return 8 * (1 + 2*rank)
	}, rdd.WithName("fit-join"))
	return rdd.Aggregate(joined,
		func() float64 { return 0 },
		func(acc float64, r rdd.KV[uint32, rdd.Pair[[]float64, []float64]]) float64 {
			for i := range r.Val.A {
				acc += r.Val.A[i] * r.Val.B[i] * lambda[i]
			}
			return acc
		},
		func(a, b float64) float64 { return a + b },
		2*float64(rank),
	)
}
