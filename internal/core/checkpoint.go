package core

import (
	"fmt"
	"math"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
)

// Checkpoint/restore for the Spark-engine solvers. Checkpoints are taken at
// iteration boundaries, where both algorithms satisfy a clean invariant:
// every factor is normalized, lambda holds the last mode's column norms, and
// (for QCOO) the record queues hold the current rows of modes 0..N-2 keyed
// by the last mode's index. Restoring from the collected dense factors
// therefore reproduces the exact working state — ALS is a deterministic
// fixed-point iteration, so a resumed run follows the original trajectory.

// factorRDDFromDense distributes a dense factor matrix as a hash-partitioned
// row RDD, the layout initFactorRDD and updateFactor produce. All-zero rows
// (indices outside the tensor's support, which updateFactor never emits) are
// skipped so the restored RDD matches a post-update factor record-for-record.
func factorRDDFromDense(ctx *rdd.Context, name string, f *la.Dense) *FactorRDD {
	f = f.Clone() // lineage recomputation may re-read it after the caller moves on
	rank := f.Cols
	return rdd.GenerateKeyed(ctx, name,
		func(p int) []Row {
			var rows []Row
			for i := 0; i < f.Rows; i++ {
				if rdd.PartitionOf(uint32(i), ctx.Parts) != p {
					continue
				}
				row := f.Row(i)
				zero := true
				for _, v := range row {
					if v != 0 {
						zero = false
						break
					}
				}
				if zero {
					continue
				}
				rows = append(rows, Row{Key: uint32(i), Val: la.VecClone(row)})
			}
			return rows
		}, rowSize(rank))
}

// NewCOOStateFromFactors rebuilds a COOState from checkpointed factors (the
// state after some completed iteration): the tensor is re-cached and the
// factor RDDs regenerated from the dense matrices.
func NewCOOStateFromFactors(ctx *rdd.Context, t *tensor.COO, rank int, factors []*la.Dense, lambda []float64) *COOState {
	order := t.Order()
	ctx.Cluster.SetPhase(PhaseOther)
	s := &COOState{
		ctx:    ctx,
		dims:   append([]int(nil), t.Dims...),
		order:  order,
		rank:   rank,
		normX:  t.Norm(),
		lambda: la.VecClone(lambda),
	}
	s.entries = rdd.FromSlice(ctx, "tensor", t.Entries,
		rdd.FixedSize[tensor.Entry](tensor.EntryBytes(order))).Persist()
	s.factors = make([]*FactorRDD, order)
	for n := 0; n < order; n++ {
		s.factors[n] = factorRDDFromDense(ctx, fmt.Sprintf("factor-restore-m%d", n+1), factors[n]).Persist()
	}
	return s
}

// NewQCOOStateFromFactors rebuilds a QCOOState from checkpointed factors.
// The record queues are regenerated from the dense matrices — at an
// iteration boundary the queue of each record holds the current rows of
// modes 0..N-2 at that record's indices, keyed by the last mode — and the V
// queue refills with the grams of those same modes.
//
// The rebuilt queue RDD lists records in the tensor's original entry order,
// whereas the live pipeline's queue has been permuted by every shuffle since
// the run began. The values are identical, but downstream reduceByKey sums
// accumulate in a different order, so a resumed QCOO trajectory can drift
// from the uninterrupted one by floating-point rounding (observed: 1 ulp) —
// the same caveat as restarting a real Spark job from a checkpoint.
func NewQCOOStateFromFactors(ctx *rdd.Context, t *tensor.COO, rank int, factors []*la.Dense, lambda []float64) *QCOOState {
	order := t.Order()
	c := ctx.Cluster
	s := &QCOOState{
		ctx:    ctx,
		dims:   append([]int(nil), t.Dims...),
		order:  order,
		rank:   rank,
		normX:  t.Norm(),
		lambda: la.VecClone(lambda),
	}

	c.SetPhase(PhaseOther)
	s.factors = make([]*FactorRDD, order)
	dense := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		dense[n] = factors[n].Clone()
		s.factors[n] = factorRDDFromDense(ctx, fmt.Sprintf("factor-restore-m%d", n+1), factors[n]).Persist()
	}

	// Rebuild the queue RDD; like first-time initialization this is charged
	// to MTTKRP-1 (it is the restore-time analogue of the queue-build
	// overhead Figure 5 discusses). Queue rows reference the restored dense
	// matrices the same way joined rows are shared between records.
	c.SetPhase(PhaseOf(0))
	entries := rdd.FromSlice(ctx, "tensor", t.Entries, rdd.FixedSize[tensor.Entry](tensor.EntryBytes(order)))
	sz := qSize(order, rank)
	s.xq = rdd.Map(entries, func(e tensor.Entry) rdd.KV[uint32, qVal] {
		q := make([][]float64, order-1)
		for m := 0; m < order-1; m++ {
			q[m] = dense[m].Row(int(e.Idx[m]))
		}
		return rdd.KV[uint32, qVal]{Key: e.Idx[order-1], Val: qVal{E: e, Q: q}}
	}, sz, rdd.WithCostFactor(1+1.30*float64(order-1)),
		rdd.WithName("qcoo-restore-queues")).Persist()

	c.SetPhase(PhaseOther)
	for n := 0; n < order-1; n++ {
		s.vqueue = append(s.vqueue, gramOf(s.factors[n], rank))
	}
	return s
}

// alsState is the step API both Spark-engine solvers expose to the shared
// driver loop.
type alsState interface {
	Step(n int)
	Fit() float64
	Factors() []*la.Dense
	Lambda() []float64
}

// CheckpointBytes is the serialized size of one factor-set checkpoint: every
// factor matrix plus the lambda vector, 8 bytes per element.
func CheckpointBytes(dims []int, rank int) float64 {
	var bytes float64
	for _, d := range dims {
		bytes += float64(d) * float64(rank) * 8
	}
	return bytes + float64(rank)*8
}

// runALS drives either Spark-engine solver through the ALS iterations with
// the full resilience surface: resume from StartIter, per-iteration abort on
// sticky cluster failures, checkpoint hooks with modeled HDFS write cost,
// and convergence on the last two fits (which spans a resume boundary when
// InitFits carries the pre-crash history).
func runALS(ctx *rdd.Context, s alsState, dims []int, order, rank int, opts cpals.Options) (*cpals.Result, error) {
	if err := ctx.Cluster.Err(); err != nil {
		return nil, err
	}
	res := &cpals.Result{Iters: opts.StartIter}
	res.Fits = append(res.Fits, opts.InitFits...)
	for it := opts.StartIter; it < opts.MaxIters; it++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for n := 0; n < order; n++ {
			s.Step(n)
			if err := ctx.Cluster.Err(); err != nil {
				return nil, err
			}
		}
		res.Iters = it + 1
		fit := s.Fit()
		res.Fits = append(res.Fits, fit)
		if opts.OnIteration != nil && opts.OnIteration(it, fit) {
			break
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && (it+1)%opts.CheckpointEvery == 0 {
			ctx.Cluster.ChargeCheckpointWrite(CheckpointBytes(dims, rank))
			if err := opts.OnCheckpoint(it+1, s.Lambda(), s.Factors(), res.Fits); err != nil {
				return nil, err
			}
		}
		if nf := len(res.Fits); opts.Tol > 0 && nf > 1 && math.Abs(res.Fits[nf-1]-res.Fits[nf-2]) < opts.Tol {
			break
		}
	}
	res.Lambda = s.Lambda()
	res.Factors = s.Factors()
	return res, nil
}
