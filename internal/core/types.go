// Package core implements the paper's contribution: CSTF, Cloud-based
// Sparse Tensor Factorization. Two distributed CP-ALS solvers run on the
// Spark-like engine in internal/rdd:
//
//   - SolveCOO (Section 4.1): MTTKRP directly on COO nonzeros via a chain
//     of key-by + join stages against the factor matrices, one reduceByKey
//     to assemble result rows, and raw in-memory caching of the tensor.
//   - SolveQCOO (Section 4.2, Algorithm 3): each tensor record carries a
//     FIFO queue of the factor rows the next MTTKRP needs; every MTTKRP
//     then costs one join plus one reduceByKey instead of N shuffles,
//     reusing rows joined by earlier modes.
//
// Both produce exactly the same factors as the serial reference in
// internal/cpals (same deterministic initialization, same update order);
// they differ only in data movement, which is what the paper measures.
package core

import (
	"cstf/internal/rdd"
	"cstf/internal/tensor"
)

// Row is one factor-matrix row keyed by its index — the element of the
// paper's IndexedRowMatrix representation (Table 3).
type Row = rdd.KV[uint32, []float64]

// cooVal is the value CSTF-COO carries per nonzero through its join chain:
// the original entry plus the running Hadamard-product accumulator. The
// accumulator keeps the record a constant nnz x R regardless of tensor
// order (Section 5: "the intermediate data remains the same").
type cooVal struct {
	E   tensor.Entry
	Acc []float64 // nil before the first join; length R after
}

// qVal is the value CSTF-QCOO carries per nonzero: the entry plus the FIFO
// queue of factor rows (Table 3, the X_Q representation). The queue always
// holds order-1 rows: the rows every upcoming MTTKRP needs, with the
// stalest row dequeued as each newly updated factor row is enqueued.
type qVal struct {
	E tensor.Entry
	Q [][]float64
}

// rowBytes is the wire size of a keyed factor row: a 64-bit index plus R
// doubles (the paper's accounting unit for shuffled vectors).
func rowBytes(rank int) int { return 8 * (1 + rank) }

// rowSize returns a sizeOf function for factor-row records.
func rowSize(rank int) func(Row) int {
	n := rowBytes(rank)
	return func(Row) int { return n }
}

// cooSize returns the wire size of a keyed cooVal record: key + entry +
// accumulator.
func cooSize(order, rank int) func(rdd.KV[uint32, cooVal]) int {
	return func(r rdd.KV[uint32, cooVal]) int {
		n := 8 + tensor.EntryBytes(order)
		if r.Val.Acc != nil {
			n += 8 * rank
		}
		return n
	}
}

// queueCost is the per-record engine-cost factor charged for operations on
// queue-structured records. A qVal deserializes to 1 + (order-1) heap
// objects versus a flat tuple's one, and the paper attributes QCOO's
// small-cluster slowdown (0.9-1.1x of COO on 4 nodes) exactly to "the
// Queue data structure" overhead; this factor is the calibrated model of
// that cost.
func queueCost(order int) rdd.Option {
	return rdd.WithCostFactor(1 + 0.40*float64(order-1))
}

// qSize returns the wire size of a keyed qVal record: key + entry + queue.
func qSize(order, rank int) func(rdd.KV[uint32, qVal]) int {
	return func(r rdd.KV[uint32, qVal]) int {
		return 8 + tensor.EntryBytes(order) + 8*rank*len(r.Val.Q)
	}
}
