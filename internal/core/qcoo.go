package core

import (
	"fmt"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/rdd"
	"cstf/internal/tensor"
)

// QCOOState is the persistent state of the CSTF-QCOO CP-ALS loop
// (Algorithm 3): the queued tensor RDD X_Q whose records carry a FIFO queue
// of factor rows, the distributed factor matrices (the Z queue of
// Algorithm 3, realized per-record), and the driver-side FIFO queue of gram
// matrices (the V queue). Exposing the state lets experiments run single
// MTTKRP steps (Figure 5) with the exact steady-state data layout.
type QCOOState struct {
	ctx     *rdd.Context
	dims    []int
	order   int
	rank    int
	seed    uint64
	xq      *rdd.Dataset[rdd.KV[uint32, qVal]]
	factors []*FactorRDD
	vqueue  []*la.Dense // gram matrices of the next order-1 fixed modes
	lambda  []float64
	lastM   *rdd.Dataset[Row]
	normX   float64

	// DisableGramReuse turns off the V-queue (Algorithm 3's once-per-
	// update gram computation) and recomputes every fixed factor's gram at
	// each step, the way COO does. Exists for the gram-reuse ablation.
	DisableGramReuse bool
}

// NewQCOOState initializes CSTF-QCOO for a tensor: creates the factor
// matrices, builds the per-record row queues (charged to the MTTKRP-1
// phase, as the paper's Figure 5 discussion attributes the queue
// initialization overhead), and fills the V queue with the gram matrices
// of modes 1..N-1.
func NewQCOOState(ctx *rdd.Context, t *tensor.COO, rank int, seed uint64) *QCOOState {
	order := t.Order()
	c := ctx.Cluster
	s := &QCOOState{
		ctx:   ctx,
		dims:  append([]int(nil), t.Dims...),
		order: order,
		rank:  rank,
		seed:  seed,
		normX: t.Norm(),
	}

	c.SetPhase(PhaseOther)
	s.factors = make([]*FactorRDD, order)
	for n := 0; n < order; n++ {
		s.factors[n] = initFactorRDD(ctx, seed, n, t.Dims[n], rank).Persist()
	}

	// Queue initialization. The queue entering the first MTTKRP must hold
	// the initial rows of modes 0..N-2 (N-2 of them are what MTTKRP-1
	// needs beyond the joined factor; the mode-0 row is the stale row its
	// update discards) with the record keyed by the last mode. The paper
	// builds this with N-1 joins against the initial factor matrices
	// ("an overhead of N shuffles", Section 5); because this repository's
	// factor initialization is a pure function of (seed, mode, index), each
	// record GENERATES those rows in place instead — numerically identical,
	// no join, and the remaining cost of building the per-record queue
	// objects is exactly the mode-1 overhead Figure 5 discusses.
	c.SetPhase(PhaseOf(0))
	entries := rdd.FromSlice(ctx, "tensor", t.Entries, rdd.FixedSize[tensor.Entry](tensor.EntryBytes(order)))
	sz := qSize(order, rank)
	cur := rdd.Map(entries, func(e tensor.Entry) rdd.KV[uint32, qVal] {
		q := make([][]float64, order-1)
		for m := 0; m < order-1; m++ {
			row := make([]float64, rank)
			for r := range row {
				row[r] = cpals.FactorInitValue(seed, m, int(e.Idx[m]), r)
			}
			q[m] = row
		}
		return rdd.KV[uint32, qVal]{Key: e.Idx[order-1], Val: qVal{E: e, Q: q}}
	}, sz, rdd.WithCostFactor(1+1.30*float64(order-1)), // allocate + first-serialize every queue object
		rdd.WithFlops(float64((order-1)*rank)),
		rdd.WithName("qcoo-init-queues"))
	s.xq = cur.Persist()

	// V queue (Algorithm 3 line 1): grams of modes 0..N-2.
	c.SetPhase(PhaseOther)
	for n := 0; n < order-1; n++ {
		s.vqueue = append(s.vqueue, gramOf(s.factors[n], rank))
	}
	return s
}

// Step performs the mode-n MTTKRP and factor update (one trip through the
// body of Algorithm 3): join the previously updated factor into the queue
// RDD (one wide shuffle), rotate each record's queue while re-keying to the
// target mode, reduce the queue to the per-nonzero contribution, and
// reduceByKey (the second shuffle) into the MTTKRP result; then dequeue/
// enqueue the gram queue, apply the pseudo-inverse and normalize.
func (s *QCOOState) Step(n int) {
	c := s.ctx.Cluster
	order, rank := s.order, s.rank
	joinMode := (n - 1 + order) % order

	c.SetPhase(PhaseOf(n))
	sz := qSize(order, rank)
	joinedSize := func(r rdd.KV[uint32, rdd.Pair[qVal, []float64]]) int {
		return 8 + tensor.EntryBytes(order) + 8*rank*(len(r.Val.A.Q)+1)
	}
	joined := rdd.Join(s.xq, s.factors[joinMode], joinedSize, queueCost(order),
		rdd.WithName(fmt.Sprintf("qcoo-join-m%d", joinMode+1)))

	next := rdd.Map(joined, func(r rdd.KV[uint32, rdd.Pair[qVal, []float64]]) rdd.KV[uint32, qVal] {
		v := r.Val.A
		// Enqueue the freshly joined row, dequeue the stale row of the
		// mode being updated (STAGE 2 of Table 2).
		q := make([][]float64, len(v.Q))
		copy(q, v.Q[1:])
		q[len(q)-1] = r.Val.B
		return rdd.KV[uint32, qVal]{Key: v.E.Idx[n], Val: qVal{E: v.E, Q: q}}
	}, sz, queueCost(order), rdd.WithName("qcoo-rotate")).Persist()
	s.xq.Unpersist() // drop the previous MTTKRP's queue RDD (Section 4.2)
	s.xq = next

	// STAGE 3: reduce each record's queue to the Hadamard product scaled
	// by the tensor value, then sum per target-mode index.
	vecs := rdd.MapValues(s.xq, func(v qVal) []float64 {
		out := make([]float64, rank)
		for c := range out {
			out[c] = v.E.Val
		}
		for _, row := range v.Q {
			la.VecMulInto(out, row)
		}
		return out
	}, rowSize(rank), rdd.WithFlops(float64((order-1)*rank)), queueCost(order),
		rdd.WithName("qcoo-queue-reduce"))
	m := rdd.ReduceByKey(vecs, addRows(rank),
		rdd.WithFlops(float64(rank)), rdd.WithName("qcoo-reduce")).Eval()

	// Gram-queue rotation (Algorithm 3 lines 5-13): dequeue the stale gram
	// of mode n, enqueue the gram of the factor joined this step — computed
	// exactly once per update, the reuse Section 4.2 describes.
	c.SetPhase(PhaseOther)
	if s.DisableGramReuse {
		// Ablation path: recompute every fixed gram like COO does; keep
		// the V queue coherent so re-enabling reuse mid-run stays correct.
		s.vqueue = s.vqueue[1:]
		var fresh []*la.Dense
		for k := 1; k < order; k++ {
			fresh = append(fresh, gramOf(s.factors[(n+k)%order], rank))
		}
		s.vqueue = append(s.vqueue[:0], fresh...)
	} else {
		s.vqueue = append(s.vqueue[1:], gramOf(s.factors[joinMode], rank))
	}
	v := la.NewDense(rank, rank)
	for i := range v.Data {
		v.Data[i] = 1
	}
	for _, g := range s.vqueue {
		la.HadamardInto(v, v, g)
	}
	c.ChargeDriver(float64((order - 2) * rank * rank))

	newF, norms := updateFactor(m, v, rank)
	s.factors[n].Unpersist()
	s.factors[n] = newF
	s.lambda = norms
	s.lastM = m
}

// Fit returns the model fit using the most recent MTTKRP result.
func (s *QCOOState) Fit() float64 {
	s.ctx.Cluster.SetPhase(PhaseOther)
	return fitOf(s.normX, s.lastM, s.factors, s.lambda, s.rank)
}

// Factors collects the current factor matrices to the driver.
func (s *QCOOState) Factors() []*la.Dense {
	out := make([]*la.Dense, s.order)
	for n := 0; n < s.order; n++ {
		out[n] = collectFactor(s.factors[n], s.dims[n], s.rank)
	}
	return out
}

// Lambda returns the current column weights.
func (s *QCOOState) Lambda() []float64 { return s.lambda }

// SolveQCOO runs distributed CP-ALS with the CSTF-QCOO algorithm
// (Section 4.2, Algorithm 3). When opts.InitFactors is set the queued state
// is restored from a checkpoint and the loop resumes at opts.StartIter.
func SolveQCOO(ctx *rdd.Context, t *tensor.COO, opts cpals.Options) (*cpals.Result, error) {
	if err := opts.Validate(t); err != nil {
		return nil, err
	}
	var s *QCOOState
	if opts.InitFactors != nil {
		s = NewQCOOStateFromFactors(ctx, t, opts.Rank, opts.InitFactors, opts.InitLambda)
	} else {
		s = NewQCOOState(ctx, t, opts.Rank, opts.Seed)
	}
	return runALS(ctx, s, s.dims, s.order, s.rank, opts)
}
