// Package perfmodel is the closed-form analytic cost model of CSTF-COO,
// CSTF-QCOO, and BIGtensor — Section 5 of the paper, extended with this
// repository's calibrated constants. It predicts per-iteration shuffle
// counts (exactly), shuffled bytes (joins exactly, reduces via an
// expected-distinct-keys estimate), and modeled runtime (approximately),
// without executing anything. The tests cross-check every prediction
// against the simulator, which pins the documented algebra to the engines.
package perfmodel

import (
	"fmt"
	"math"

	"cstf/internal/cluster"
	"cstf/internal/tensor"
)

// Workload describes the tensor and job parameters the model needs.
type Workload struct {
	NNZ      int
	Dims     []int
	Distinct []int // per-mode count of indices with >=1 nonzero
	Rank     int
	Nodes    int
	Parts    int // partitions (tasks) per dataset
}

// WorkloadOf extracts the model inputs from an actual tensor.
func WorkloadOf(t *tensor.COO, rank, nodes, parts int) Workload {
	w := Workload{
		NNZ:   t.NNZ(),
		Dims:  append([]int(nil), t.Dims...),
		Rank:  rank,
		Nodes: nodes,
		Parts: parts,
	}
	for m := 0; m < t.Order(); m++ {
		w.Distinct = append(w.Distinct, t.ModeStats(m).NonEmpty)
	}
	return w
}

// Prediction is the model output for one steady-state CP-ALS iteration.
type Prediction struct {
	Shuffles     int     // shuffle operations (exact)
	ShuffleBytes float64 // remote+local shuffle bytes read
	Seconds      float64 // modeled runtime (approximate)
}

// expectedCombined estimates how many records survive map-side combining
// when nnz records with `distinct` uniform keys are spread over P source
// partitions: per partition, E[distinct] = D*(1-(1-1/D)^(nnz/P)).
func expectedCombined(nnz, distinct, parts int) float64 {
	if distinct == 0 || nnz == 0 {
		return 0
	}
	perPart := float64(nnz) / float64(parts)
	d := float64(distinct)
	return float64(parts) * d * (1 - math.Pow(1-1/d, perPart))
}

// stageSeconds applies the simulator's stage formula for an evenly
// balanced stage.
func stageSeconds(p cluster.Profile, nodes int, records, flops, bytes, cachedPerNode float64, wide bool) float64 {
	cores := float64(p.CoresPerNode * nodes)
	gc := 1 + p.GCCoeff*cachedPerNode/p.NodeMemory
	t := (flops/p.CoreFlops+records*p.RecordCost)/cores*gc +
		bytes/(p.NetBandwidth*float64(nodes))
	if wide {
		t += p.SchedBase + p.SchedPerNode*float64(nodes)
	}
	return t
}

// PredictCOO models one steady-state CSTF-COO iteration.
func PredictCOO(w Workload, p cluster.Profile) Prediction {
	order := len(w.Dims)
	nnz := float64(w.NNZ)
	r8 := float64(8 * w.Rank)
	e := float64(tensor.EntryBytes(order))
	ovh := float64(p.RecordOverhead)
	cached := nnz * e * p.RawCacheFactor / float64(w.Nodes) // tensor cache per node

	var pred Prediction
	pred.Shuffles = order * order
	for n := 0; n < order; n++ {
		// Join chain: first join ships keyed entries, later joins ship
		// entry+accumulator; the reduce ships combined rows.
		joinBytes := nnz * (8 + e + ovh)
		for j := 1; j < order-1; j++ {
			joinBytes += nnz * (8 + e + r8 + ovh)
		}
		combined := expectedCombined(w.NNZ, w.Distinct[n], w.Parts)
		reduceBytes := combined * (8 + r8 + ovh)
		pred.ShuffleBytes += joinBytes + reduceBytes

		// Records touched: keyBy + per-join (entries+factor rows+fold) +
		// extract + reduce (map fold + wide fold).
		records := nnz // keyBy
		for j := 0; j < order-1; j++ {
			jm := joinModesCOO(order, n)[j]
			records += nnz + float64(w.Distinct[jm]) // join inputs
			records += nnz                           // fold map
		}
		records += nnz            // extract
		records += nnz + combined // reduce map-side + wide

		flops := float64(order) * nnz * float64(w.Rank)
		pred.Seconds += stageSeconds(p, w.Nodes, records, flops, joinBytes+reduceBytes, cached, false)
		pred.Seconds += float64(order) * (p.SchedBase + p.SchedPerNode*float64(w.Nodes)) // N wide stages
	}
	return pred
}

func joinModesCOO(order, mode int) []int {
	var out []int
	for m := order - 1; m >= 0; m-- {
		if m != mode {
			out = append(out, m)
		}
	}
	return out
}

// PredictQCOO models one steady-state CSTF-QCOO iteration.
func PredictQCOO(w Workload, p cluster.Profile) Prediction {
	order := len(w.Dims)
	nnz := float64(w.NNZ)
	r8 := float64(8 * w.Rank)
	e := float64(tensor.EntryBytes(order))
	ovh := float64(p.RecordOverhead)
	qf := 1 + 0.40*float64(order-1)
	cached := nnz * (8 + e + float64(order-1)*r8) * p.RawCacheFactor / float64(w.Nodes)

	var pred Prediction
	pred.Shuffles = 2 * order
	for n := 0; n < order; n++ {
		joinMode := (n - 1 + order) % order
		joinBytes := nnz * (8 + e + float64(order-1)*r8 + ovh)
		combined := expectedCombined(w.NNZ, w.Distinct[n], w.Parts)
		reduceBytes := combined * (8 + r8 + ovh)
		pred.ShuffleBytes += joinBytes + reduceBytes

		records := qf*nnz + float64(w.Distinct[joinMode]) // join (queue records)
		records += qf * nnz                               // rotate
		records += qf * nnz                               // queue-reduce mapValues
		records += nnz + combined                         // reduce

		flops := float64(order) * nnz * float64(w.Rank)
		pred.Seconds += stageSeconds(p, w.Nodes, records, flops, joinBytes+reduceBytes, cached, false)
		pred.Seconds += 2 * (p.SchedBase + p.SchedPerNode*float64(w.Nodes)) // 2 wide stages
	}
	return pred
}

// PredictBigtensor models one BIGtensor CP-ALS iteration (3rd order only).
func PredictBigtensor(w Workload, p cluster.Profile) (Prediction, error) {
	if len(w.Dims) != 3 {
		return Prediction{}, fmt.Errorf("perfmodel: BIGtensor supports order 3 only")
	}
	nnz := float64(w.NNZ)
	r8 := float64(8 * w.Rank)
	ovh := float64(p.RecordOverhead)
	hf := p.HadoopRecordFactor
	e := float64(tensor.EntryBytes(3))

	var pred Prediction
	// 4 shuffles per MTTKRP (Table 4) plus the gram job's reduce; the
	// pseudo-inverse update job is map-only.
	pred.Shuffles = 3 * 5
	perMode := func(mode int) (float64, float64, float64) {
		// jobs 1-2 shuffle tagged tensor entries (and factor rows); job 3
		// shuffles both intermediates; job 4 ships combined rows.
		interSize := 24 + r8 + ovh
		j12 := 2 * (nnz * interSize) // intermediates from both join jobs
		j3 := 2 * nnz * (16 + r8 + ovh)
		combined := expectedCombined(w.NNZ, w.Distinct[mode], w.Parts)
		j4 := combined * (8 + r8 + ovh)
		bytes := j12 + j3 + j4

		// Records: each job maps+reduces its inputs.
		records := hf * (2*(nnz+nnz) + // jobs 1-2 map tensor + reduce
			2*float64(w.Distinct[(mode+1)%3]+w.Distinct[(mode+2)%3]) +
			2*nnz + 2*nnz + // job 3 map + reduce
			nnz + combined) // job 4

		// HDFS: tensor read twice, intermediates written (x replication)
		// and read, outputs written.
		rep := float64(p.HDFSReplication)
		disk := 2*nnz*e + 2*nnz*(16+r8)*(rep+1) + nnz*(8+r8)*(rep+1) + combined*(8+r8)*rep
		return bytes, records, disk
	}
	for mode := 0; mode < 3; mode++ {
		bytes, records, disk := perMode(mode)
		pred.ShuffleBytes += bytes
		flops := 5 * nnz * float64(w.Rank)
		sec := stageSeconds(p, w.Nodes, records, flops, bytes, 0, false)
		sec += disk / (p.DiskBW * float64(w.Nodes))
		sec += 6 * p.JobStartup // 4 MTTKRP + update + gram jobs
		sec += 6 * (p.SchedBase + p.SchedPerNode*float64(w.Nodes))
		pred.Seconds += sec
	}
	return pred, nil
}
