package perfmodel

import (
	"math"
	"testing"

	"cstf/internal/cluster"
	"cstf/internal/core"
	"cstf/internal/mapreduce"
	"cstf/internal/rdd"
	"cstf/internal/tensor"

	"cstf/internal/bigtensor"
)

// The analytic model is validated against the simulator: shuffle counts
// must match exactly, shuffled bytes closely (the only estimate is the
// map-side-combine survival rate), and runtime approximately.

type measured struct {
	shuffles int
	bytes    float64
	seconds  float64
}

func measureCOO(t *testing.T, x *tensor.COO, rank, nodes, parts int) measured {
	t.Helper()
	c := cluster.New(nodes, cluster.CometProfile())
	ctx := rdd.NewContext(c, parts)
	s := core.NewCOOState(ctx, x, rank, 1)
	for n := 0; n < x.Order(); n++ {
		s.Step(n)
	}
	before := c.Metrics()
	for n := 0; n < x.Order(); n++ {
		s.Step(n)
	}
	d := c.Metrics().Sub(before)
	return measured{d.TotalShuffles(), d.TotalRemoteBytes() + d.TotalLocalBytes(), d.TotalSimTime()}
}

func measureQCOO(t *testing.T, x *tensor.COO, rank, nodes, parts int) measured {
	t.Helper()
	c := cluster.New(nodes, cluster.CometProfile())
	ctx := rdd.NewContext(c, parts)
	s := core.NewQCOOState(ctx, x, rank, 1)
	for n := 0; n < x.Order(); n++ {
		s.Step(n)
	}
	before := c.Metrics()
	for n := 0; n < x.Order(); n++ {
		s.Step(n)
	}
	d := c.Metrics().Sub(before)
	return measured{d.TotalShuffles(), d.TotalRemoteBytes() + d.TotalLocalBytes(), d.TotalSimTime()}
}

func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if r := got / want; r < 1-tol || r > 1+tol {
		t.Errorf("%s: predicted %.4g vs measured %.4g (ratio %.3f outside ±%.0f%%)",
			name, got, want, r, 100*tol)
	}
}

func TestPredictCOOAgainstSimulator(t *testing.T) {
	x := tensor.GenUniform(7, 30000, 3000, 2500, 2000)
	p := cluster.CometProfile()
	for _, nodes := range []int{4, 16} {
		parts := nodes * p.CoresPerNode
		w := WorkloadOf(x, 2, nodes, parts)
		pred := PredictCOO(w, p)
		m := measureCOO(t, x, 2, nodes, parts)
		if pred.Shuffles != m.shuffles {
			t.Errorf("nodes=%d: predicted %d shuffles, measured %d", nodes, pred.Shuffles, m.shuffles)
		}
		within(t, "COO bytes", pred.ShuffleBytes, m.bytes, 0.05)
		within(t, "COO seconds", pred.Seconds, m.seconds, 0.30)
	}
}

func TestPredictQCOOAgainstSimulator(t *testing.T) {
	x := tensor.GenUniform(11, 30000, 3000, 2500, 2000)
	p := cluster.CometProfile()
	parts := 8 * p.CoresPerNode
	w := WorkloadOf(x, 2, 8, parts)
	pred := PredictQCOO(w, p)
	m := measureQCOO(t, x, 2, 8, parts)
	if pred.Shuffles != m.shuffles {
		t.Errorf("predicted %d shuffles, measured %d", pred.Shuffles, m.shuffles)
	}
	within(t, "QCOO bytes", pred.ShuffleBytes, m.bytes, 0.05)
	within(t, "QCOO seconds", pred.Seconds, m.seconds, 0.30)
}

func TestPredictBigtensorAgainstSimulator(t *testing.T) {
	x := tensor.GenUniform(13, 20000, 2000, 1500, 1200)
	p := cluster.CometProfile()
	parts := 8 * p.CoresPerNode
	w := WorkloadOf(x, 2, 8, parts)
	pred, err := PredictBigtensor(w, p)
	if err != nil {
		t.Fatal(err)
	}
	env := mapreduce.NewEnv(cluster.New(8, p), parts)
	s, err := bigtensor.New(env, x, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := env.C.Metrics()
	for n := 0; n < 3; n++ {
		s.Step(n)
	}
	d := env.C.Metrics().Sub(before)
	if pred.Shuffles != d.TotalShuffles() {
		t.Errorf("predicted %d shuffles, measured %d", pred.Shuffles, d.TotalShuffles())
	}
	within(t, "BIG bytes", pred.ShuffleBytes, d.TotalRemoteBytes()+d.TotalLocalBytes(), 0.15)
	within(t, "BIG seconds", pred.Seconds, d.TotalSimTime(), 0.35)

	if _, err := PredictBigtensor(WorkloadOf(tensor.GenUniform(1, 100, 5, 5, 5, 5), 2, 4, 8), p); err == nil {
		t.Error("4th-order prediction must error")
	}
}

func TestPredictorPreservesTheCrossover(t *testing.T) {
	// The whole point of a model: it must predict the paper's crossover
	// without running anything. QCOO wins at 32 nodes, not at 4.
	x := tensor.GenZipf(5, 30000, 0.8, 5000, 4000, 3000)
	p := cluster.CometProfile()
	ratio := func(nodes int) float64 {
		w := WorkloadOf(x, 2, nodes, nodes*p.CoresPerNode)
		return PredictCOO(w, p).Seconds / PredictQCOO(w, p).Seconds
	}
	if r4, r32 := ratio(4), ratio(32); r32 <= r4 {
		t.Errorf("model must predict QCOO's advantage growing with nodes: %.3f @4 vs %.3f @32", r4, r32)
	}
}

func TestExpectedCombined(t *testing.T) {
	// All-distinct keys: nothing combines.
	if got := expectedCombined(1000, 1000000, 10); math.Abs(got-1000) > 1 {
		t.Fatalf("distinct-dominated: %v", got)
	}
	// One key: one record per partition survives.
	if got := expectedCombined(1000, 1, 10); math.Abs(got-10) > 1e-9 {
		t.Fatalf("single key: %v", got)
	}
	if expectedCombined(0, 5, 4) != 0 || expectedCombined(5, 0, 4) != 0 {
		t.Fatal("degenerate inputs must be 0")
	}
}
