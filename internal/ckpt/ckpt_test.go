package ckpt

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sample() *File {
	return &File{
		Algorithm: "serial",
		Rank:      2,
		Seed:      7,
		Iter:      3,
		Dims:      []int{4, 3},
		Lambda:    []float64{2, 1},
		Fits:      []float64{0.1, 0.2, 0.3},
		Factors: [][]float64{
			{1, 2, 3, 4, 5, 6, 7, 8},
			{1, 0, 0, 1, 1, 1},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != want.Algorithm || got.Rank != want.Rank || got.Iter != want.Iter {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if len(got.Factors) != 2 || got.Factors[0][7] != 8 || got.Factors[1][5] != 1 {
		t.Fatalf("factors corrupted: %+v", got.Factors)
	}
}

func TestWriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	// Overwrite leaves no temp file behind and the file stays readable.
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
	}{
		{"bad rank", func(f *File) { f.Rank = 0 }},
		{"no dims", func(f *File) { f.Dims = nil }},
		{"factor count", func(f *File) { f.Factors = f.Factors[:1] }},
		{"lambda length", func(f *File) { f.Lambda = f.Lambda[:1] }},
		{"factor size", func(f *File) { f.Factors[0] = f.Factors[0][:3] }},
		{"iter", func(f *File) { f.Iter = 0 }},
	}
	for _, c := range cases {
		f := sample()
		c.mut(f)
		err := f.Validate("x.ckpt")
		var inv *InvalidError
		if !errors.As(err, &inv) {
			t.Errorf("%s: want *InvalidError, got %v", c.name, err)
		}
	}
}

func TestReadMissingAndCorrupt(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("want error for missing file")
	}
	path := filepath.Join(t.TempDir(), "junk.ckpt")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("want decode error for corrupt file")
	}
}

// TestChecksumDetectsCorruption flips each byte of a written checkpoint in
// turn: every flip must surface as a typed *CorruptError (checksum or
// magic/gob failure), never as a silently decoded wrong record.
func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(orig[:len(magic)]) != magic {
		t.Fatalf("written file lacks magic %q", magic)
	}
	for i := headerLen; i < len(orig); i++ {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		bad := filepath.Join(dir, "bad.ckpt")
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Read(bad)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("byte %d flipped: want *CorruptError, got %v", i, err)
		}
	}
}

// TestTornWriteDetected truncates a checkpoint at several points — the torn
// tail a crashed writer (without the rename discipline) would leave — and
// expects a typed *CorruptError every time.
func TestTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, len(magic), headerLen, headerLen + 1, len(orig) / 2, len(orig) - 1} {
		torn := filepath.Join(dir, "torn.ckpt")
		if err := os.WriteFile(torn, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Read(torn)
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncated to %d bytes: want *CorruptError, got %v", n, err)
		}
	}
}

// TestLegacyChecksumlessFileReads writes a raw gob stream — the format of
// checkpoints produced before the checksum header existed — and expects
// Read to fall back to plain decoding, with Workers zeroed.
func TestLegacyChecksumlessFileReads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.ckpt")
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sample()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if got.Rank != 2 || got.Iter != 3 || got.Workers != 0 {
		t.Fatalf("legacy decode wrong: %+v", got)
	}
}

// TestVersionHelpers exercises VersionPath/ListVersions over a retention
// directory with gaps and stray entries.
func TestVersionHelpers(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "m.ckpt")
	if err := Write(base, sample()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{3, 1, 7} {
		if err := Write(VersionPath(base, n), sample()); err != nil {
			t.Fatal(err)
		}
	}
	// Strays that must be ignored.
	for _, name := range []string{"m.ckpt.vx", "m.ckpt.v-2", "other.ckpt.v1"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := ListVersions(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0] != 1 || vs[1] != 3 || vs[2] != 7 {
		t.Fatalf("versions %v, want [1 3 7]", vs)
	}
	if vs, err := ListVersions(filepath.Join(dir, "missing", "m.ckpt")); err != nil || vs != nil {
		t.Fatalf("missing dir: %v %v", vs, err)
	}
}
