package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sample() *File {
	return &File{
		Algorithm: "serial",
		Rank:      2,
		Seed:      7,
		Iter:      3,
		Dims:      []int{4, 3},
		Lambda:    []float64{2, 1},
		Fits:      []float64{0.1, 0.2, 0.3},
		Factors: [][]float64{
			{1, 2, 3, 4, 5, 6, 7, 8},
			{1, 0, 0, 1, 1, 1},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	want := sample()
	if err := Write(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != want.Algorithm || got.Rank != want.Rank || got.Iter != want.Iter {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if len(got.Factors) != 2 || got.Factors[0][7] != 8 || got.Factors[1][5] != 1 {
		t.Fatalf("factors corrupted: %+v", got.Factors)
	}
}

func TestWriteIsAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	// Overwrite leaves no temp file behind and the file stays readable.
	if err := Write(path, sample()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsMismatches(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*File)
	}{
		{"bad rank", func(f *File) { f.Rank = 0 }},
		{"no dims", func(f *File) { f.Dims = nil }},
		{"factor count", func(f *File) { f.Factors = f.Factors[:1] }},
		{"lambda length", func(f *File) { f.Lambda = f.Lambda[:1] }},
		{"factor size", func(f *File) { f.Factors[0] = f.Factors[0][:3] }},
		{"iter", func(f *File) { f.Iter = 0 }},
	}
	for _, c := range cases {
		f := sample()
		c.mut(f)
		err := f.Validate("x.ckpt")
		var inv *InvalidError
		if !errors.As(err, &inv) {
			t.Errorf("%s: want *InvalidError, got %v", c.name, err)
		}
	}
}

func TestReadMissingAndCorrupt(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("want error for missing file")
	}
	path := filepath.Join(t.TempDir(), "junk.ckpt")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("want decode error for corrupt file")
	}
}
