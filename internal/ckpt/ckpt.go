// Package ckpt defines the on-disk checkpoint schema shared by everything
// that produces or consumes trained CP factors: the solver writes iteration
// snapshots through it, DecomposeResume restarts from them, cstf.LoadFactors
// exposes them publicly, and internal/serve loads them into a model server.
// Keeping the schema in one place means no consumer re-parses the gob layout
// privately.
//
// Files are written atomically and durably: the record goes to a temp file,
// the temp file is fsynced, renamed over the target, and the parent
// directory is fsynced — so a crash at any instant leaves either the old
// complete file or the new complete file, never a hybrid. On top of that
// the current format ("CSTFCKP1") carries a CRC32-C of the payload, so
// damage that slips past the rename discipline (torn sectors, bit rot,
// truncation by a failing disk) is detected at read time as a typed
// *CorruptError instead of being decoded into silently wrong factors.
// Checksum-less files written by earlier versions still read.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// magic identifies the checksummed checkpoint format: 8 magic bytes, a
// 4-byte little-endian CRC32-C of the gob payload, then the payload.
const magic = "CSTFCKP1"

// headerLen is the byte length of the magic + checksum prefix.
const headerLen = len(magic) + 4

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), matching the frame checksums of the distributed runtime.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is the on-disk checkpoint record. The exported field NAMES are the
// wire contract — gob matches fields by name, so renaming any of them would
// break decoding of previously written checkpoints. (Adding fields is safe:
// gob ignores names the decoder does not know and zeroes names the encoder
// did not send, which is how checksum-less-era files keep reading.)
type File struct {
	Algorithm string
	Rank      int
	Seed      uint64
	Iter      int // completed ALS iterations (the StartIter to resume with)
	Dims      []int
	Lambda    []float64
	Fits      []float64   // fit after each of the Iter completed iterations
	Factors   [][]float64 // one row-major matrix per mode, Dims[n] x Rank

	// Workers records how many distributed workers produced the snapshot
	// (0: serial or unknown — files from before the field existed decode
	// to 0). Informational: resume does NOT need it, because the dist
	// partition is a pure function of (tensor, worker count) and ALS is
	// deterministic, so a checkpoint from W workers resumes bitwise
	// identically on any fleet size — or locally.
	Workers int

	// RALS carries the randomized-ALS sampler state for algorithm "rals"
	// checkpoints; nil for every other algorithm (and for rals files
	// written by versions before the field existed, which cannot resume
	// bitwise and are rejected by the resume path).
	RALS *RALSState

	// NTF carries the nonnegative-CP solver state for algorithm "ncp"
	// checkpoints; nil for every other algorithm.
	NTF *NTFState
}

// RALSState is the extra solver state a rals checkpoint needs for a bitwise
// resume: the UNNORMALIZED factor matrices (normalized factors alone lose
// the per-row scale kept rows live at) plus the resolved sampling schedule,
// so the resumed run redraws exactly what the uninterrupted run drew.
type RALSState struct {
	ResampleEvery int
	SampleCounts  []int       // resolved per-mode sample budgets
	Unnorm        [][]float64 // one row-major matrix per mode, Dims[n] x Rank
}

// NTFState is the extra solver state an ncp checkpoint carries: the inner
// coordinate-descent pass count the run was configured with and the per-mode
// saturation bitmaps (row-major Dims[n] x Rank, 1 = element pinned at the
// zero bound), so a resumed run restores the exact skip set.
type NTFState struct {
	InnerIters int
	Saturated  [][]byte // one row-major bitmap per mode, Dims[n] x Rank
}

// InvalidError reports a checkpoint whose fields are structurally
// inconsistent (factor count vs dims, factor sizes vs rank, ...).
type InvalidError struct {
	Path   string
	Reason string
}

func (e *InvalidError) Error() string {
	return fmt.Sprintf("ckpt: invalid checkpoint %s: %s", e.Path, e.Reason)
}

// CorruptError reports a checkpoint file whose bytes are damaged — torn
// write, truncation, checksum mismatch, or undecodable gob. It is a
// distinct type from InvalidError (which means the bytes decoded fine but
// the record is inconsistent) so recovery layers can react differently:
// corruption triggers fallback to an older retained version, invalidity is
// a producer bug.
type CorruptError struct {
	Path   string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("ckpt: corrupt checkpoint %s: %s", e.Path, e.Reason)
}

// Validate checks the record's internal consistency. path is only used to
// label the returned *InvalidError.
func (f *File) Validate(path string) error {
	fail := func(format string, args ...any) error {
		return &InvalidError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	if f.Rank <= 0 {
		return fail("rank %d", f.Rank)
	}
	if len(f.Dims) == 0 {
		return fail("no dims")
	}
	for n, d := range f.Dims {
		if d <= 0 {
			return fail("mode %d has dim %d", n, d)
		}
	}
	if len(f.Factors) != len(f.Dims) {
		return fail("%d factor matrices for %d modes", len(f.Factors), len(f.Dims))
	}
	if len(f.Lambda) != f.Rank {
		return fail("lambda length %d != rank %d", len(f.Lambda), f.Rank)
	}
	if f.Iter <= 0 {
		return fail("iteration count %d", f.Iter)
	}
	for n, data := range f.Factors {
		if len(data) != f.Dims[n]*f.Rank {
			return fail("factor %d has %d values, want %d*%d", n, len(data), f.Dims[n], f.Rank)
		}
	}
	if st := f.RALS; st != nil {
		if st.ResampleEvery <= 0 {
			return fail("rals resample cadence %d", st.ResampleEvery)
		}
		if len(st.SampleCounts) != len(f.Dims) {
			return fail("%d rals sample counts for %d modes", len(st.SampleCounts), len(f.Dims))
		}
		for m, s := range st.SampleCounts {
			if s <= 0 {
				return fail("rals mode %d sample count %d", m, s)
			}
		}
		if len(st.Unnorm) != len(f.Dims) {
			return fail("%d rals unnormalized factors for %d modes", len(st.Unnorm), len(f.Dims))
		}
		for n, data := range st.Unnorm {
			if len(data) != f.Dims[n]*f.Rank {
				return fail("rals unnormalized factor %d has %d values, want %d*%d", n, len(data), f.Dims[n], f.Rank)
			}
		}
	}
	if st := f.NTF; st != nil {
		if st.InnerIters <= 0 {
			return fail("ntf inner pass count %d", st.InnerIters)
		}
		if len(st.Saturated) != len(f.Dims) {
			return fail("%d ntf saturation bitmaps for %d modes", len(st.Saturated), len(f.Dims))
		}
		for n, s := range st.Saturated {
			if len(s) != f.Dims[n]*f.Rank {
				return fail("ntf saturation bitmap %d has %d flags, want %d*%d", n, len(s), f.Dims[n], f.Rank)
			}
		}
	}
	return nil
}

// Write atomically and durably replaces path with the encoded record:
// temp file, fsync, rename, fsync of the parent directory. After Write
// returns, the checkpoint survives power loss; during Write, a reader of
// path only ever sees the previous complete file.
func Write(path string, f *File) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, headerLen)) // header placeholder
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	data := buf.Bytes()
	copy(data[:len(magic)], magic)
	binary.LittleEndian.PutUint32(data[len(magic):headerLen],
		crc32.Checksum(data[headerLen:], castagnoli))

	tmp := path + ".tmp"
	w, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := w.Sync(); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: fsync: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Filesystems
// that refuse fsync on directories (some network mounts) are tolerated: the
// rename is still atomic, only its durability timing is weakened.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// Read decodes the record at path without validating it. Damaged bytes —
// truncated header, checksum mismatch, undecodable gob — come back as a
// typed *CorruptError. Checksum-less files from earlier versions are
// detected by their missing magic and decoded as plain gob.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	if len(data) >= len(magic) && string(data[:len(magic)]) == magic {
		if len(data) < headerLen {
			return nil, &CorruptError{Path: path, Reason: "truncated header"}
		}
		want := binary.LittleEndian.Uint32(data[len(magic):headerLen])
		payload := data[headerLen:]
		if got := crc32.Checksum(payload, castagnoli); got != want {
			return nil, &CorruptError{Path: path,
				Reason: fmt.Sprintf("checksum %08x != %08x over %d payload bytes", got, want, len(payload))}
		}
		return decodeGob(path, payload)
	}
	// Legacy checksum-less format: the whole file is the gob payload.
	return decodeGob(path, data)
}

func decodeGob(path string, payload []byte) (*File, error) {
	f := &File{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(f); err != nil {
		return nil, &CorruptError{Path: path, Reason: fmt.Sprintf("gob: %v", err)}
	}
	return f, nil
}

// Load reads and validates the record at path.
func Load(path string) (*File, error) {
	f, err := Read(path)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(path); err != nil {
		return nil, err
	}
	return f, nil
}

// VersionPath names retained version n of the checkpoint at path:
// "path.v<n>". Retention layers (stream.Publisher) hardlink or copy each
// published generation there so a corrupted live file has intact ancestors
// to fall back to.
func VersionPath(path string, n int) string {
	return fmt.Sprintf("%s.v%d", path, n)
}

// ListVersions returns the retained version numbers present next to path,
// ascending. A missing directory or no versions is not an error.
func ListVersions(path string) ([]int, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	prefix := base + ".v"
	var vs []int
	for _, e := range ents {
		if e.IsDir() || !strings.HasPrefix(e.Name(), prefix) {
			continue
		}
		n, err := strconv.Atoi(e.Name()[len(prefix):])
		if err != nil || n < 0 {
			continue
		}
		vs = append(vs, n)
	}
	sort.Ints(vs)
	return vs, nil
}
