// Package ckpt defines the on-disk checkpoint schema shared by everything
// that produces or consumes trained CP factors: the solver writes iteration
// snapshots through it, DecomposeResume restarts from them, cstf.LoadFactors
// exposes them publicly, and internal/serve loads them into a model server.
// Keeping the schema in one place means no consumer re-parses the gob layout
// privately.
//
// Files are gob-encoded and written atomically (temp file + rename), so a
// crash mid-write never leaves a truncated checkpoint behind and a reader
// polling the path never observes a half-written file.
package ckpt

import (
	"encoding/gob"
	"fmt"
	"os"
)

// File is the on-disk checkpoint record. The exported field NAMES are the
// wire contract — gob matches fields by name, so renaming any of them would
// break decoding of previously written checkpoints.
type File struct {
	Algorithm string
	Rank      int
	Seed      uint64
	Iter      int // completed ALS iterations (the StartIter to resume with)
	Dims      []int
	Lambda    []float64
	Fits      []float64   // fit after each of the Iter completed iterations
	Factors   [][]float64 // one row-major matrix per mode, Dims[n] x Rank
}

// InvalidError reports a checkpoint whose fields are structurally
// inconsistent (factor count vs dims, factor sizes vs rank, ...).
type InvalidError struct {
	Path   string
	Reason string
}

func (e *InvalidError) Error() string {
	return fmt.Sprintf("ckpt: invalid checkpoint %s: %s", e.Path, e.Reason)
}

// Validate checks the record's internal consistency. path is only used to
// label the returned *InvalidError.
func (f *File) Validate(path string) error {
	fail := func(format string, args ...any) error {
		return &InvalidError{Path: path, Reason: fmt.Sprintf(format, args...)}
	}
	if f.Rank <= 0 {
		return fail("rank %d", f.Rank)
	}
	if len(f.Dims) == 0 {
		return fail("no dims")
	}
	for n, d := range f.Dims {
		if d <= 0 {
			return fail("mode %d has dim %d", n, d)
		}
	}
	if len(f.Factors) != len(f.Dims) {
		return fail("%d factor matrices for %d modes", len(f.Factors), len(f.Dims))
	}
	if len(f.Lambda) != f.Rank {
		return fail("lambda length %d != rank %d", len(f.Lambda), f.Rank)
	}
	if f.Iter <= 0 {
		return fail("iteration count %d", f.Iter)
	}
	for n, data := range f.Factors {
		if len(data) != f.Dims[n]*f.Rank {
			return fail("factor %d has %d values, want %d*%d", n, len(data), f.Dims[n], f.Rank)
		}
	}
	return nil
}

// Write atomically replaces path with the encoded record.
func Write(path string, f *File) error {
	tmp := path + ".tmp"
	w, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(f); err != nil {
		w.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: encode: %w", err)
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// Read decodes the record at path without validating it.
func Read(path string) (*File, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	defer r.Close()
	f := &File{}
	if err := gob.NewDecoder(r).Decode(f); err != nil {
		return nil, fmt.Errorf("ckpt: decode %s: %w", path, err)
	}
	return f, nil
}

// Load reads and validates the record at path.
func Load(path string) (*File, error) {
	f, err := Read(path)
	if err != nil {
		return nil, err
	}
	if err := f.Validate(path); err != nil {
		return nil, err
	}
	return f, nil
}
