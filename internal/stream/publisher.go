package stream

import (
	"fmt"

	"cstf/internal/ckpt"
)

// Publisher writes successive model versions to one checkpoint path through
// internal/ckpt's atomic temp-file + rename, so a serve.Server watching the
// path (`cstf-serve -watch`) hot-reloads each version and never observes a
// torn file. The checkpoint's Iter field carries the publish sequence
// number — it is what /healthz and /statsz report as model_iter, giving
// operators an end-to-end freshness counter.
type Publisher struct {
	path    string
	seed    uint64
	version int
}

// NewPublisher publishes to path. seed is recorded in each checkpoint so a
// resumed pipeline reproduces the same grown-row initialization.
func NewPublisher(path string, seed uint64) *Publisher {
	return &Publisher{path: path, seed: seed}
}

// Version returns the last published sequence number (0 before the first).
func (p *Publisher) Version() int { return p.version }

// Path returns the checkpoint path being published to.
func (p *Publisher) Path() string { return p.path }

// Publish atomically writes the updater's current model as the next
// version. On error the previous version remains intact on disk and the
// version counter does not advance.
func (p *Publisher) Publish(u *Updater, fit float64) (int, error) {
	next := p.version + 1
	cp := &ckpt.File{
		Algorithm: "stream",
		Rank:      u.Rank(),
		Seed:      p.seed,
		Iter:      next,
		Dims:      u.Dims(),
		Lambda:    u.Lambda(),
		Fits:      []float64{fit},
	}
	for _, f := range u.Factors() {
		cp.Factors = append(cp.Factors, f.Data)
	}
	if err := ckpt.Write(p.path, cp); err != nil {
		return p.version, fmt.Errorf("stream: publish v%d: %w", next, err)
	}
	p.version = next
	return next, nil
}
