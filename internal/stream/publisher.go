package stream

import (
	"fmt"
	"io"
	"os"

	"cstf/internal/ckpt"
)

// Publisher writes successive model versions to one checkpoint path through
// internal/ckpt's atomic temp-file + rename, so a serve.Server watching the
// path (`cstf-serve -watch`) hot-reloads each version and never observes a
// torn file. The checkpoint's Iter field carries the publish sequence
// number — it is what /healthz and /statsz report as model_iter, giving
// operators an end-to-end freshness counter.
//
// Each publish additionally retains the version under ckpt.VersionPath
// (hardlinked when the filesystem allows, copied otherwise), keeping the
// newest Keep generations. Retention is what makes the serve-side
// corruption fallback possible: if the live file is ever damaged on disk,
// the server rolls back to the newest intact retained version instead of
// serving nothing.
type Publisher struct {
	path    string
	seed    uint64
	version int

	// Keep is how many retained versions to leave on disk; 0 means
	// defaultKeep, negative disables retention entirely.
	Keep int
}

// defaultKeep retains enough history to survive a corrupted live file plus
// a corrupted newest retained copy.
const defaultKeep = 3

// NewPublisher publishes to path. seed is recorded in each checkpoint so a
// resumed pipeline reproduces the same grown-row initialization.
func NewPublisher(path string, seed uint64) *Publisher {
	return &Publisher{path: path, seed: seed}
}

// Version returns the last published sequence number (0 before the first).
func (p *Publisher) Version() int { return p.version }

// Path returns the checkpoint path being published to.
func (p *Publisher) Path() string { return p.path }

// Publish atomically writes the updater's current model as the next
// version. On error the previous version remains intact on disk and the
// version counter does not advance.
func (p *Publisher) Publish(u *Updater, fit float64) (int, error) {
	next := p.version + 1
	cp := &ckpt.File{
		Algorithm: "stream",
		Rank:      u.Rank(),
		Seed:      p.seed,
		Iter:      next,
		Dims:      u.Dims(),
		Lambda:    u.Lambda(),
		Fits:      []float64{fit},
	}
	for _, f := range u.Factors() {
		cp.Factors = append(cp.Factors, f.Data)
	}
	if err := ckpt.Write(p.path, cp); err != nil {
		return p.version, fmt.Errorf("stream: publish v%d: %w", next, err)
	}
	p.retain(next)
	p.version = next
	return next, nil
}

// retain snapshots the just-published live file as version n and prunes
// generations beyond Keep. Retention failures are deliberately non-fatal:
// the live publish already succeeded, and a missing history entry only
// narrows the corruption-fallback window.
func (p *Publisher) retain(n int) {
	keep := p.Keep
	if keep == 0 {
		keep = defaultKeep
	}
	if keep < 0 {
		return
	}
	vp := ckpt.VersionPath(p.path, n)
	if err := os.Link(p.path, vp); err != nil {
		if err := copyFile(p.path, vp); err != nil {
			return
		}
	}
	if vs, err := ckpt.ListVersions(p.path); err == nil {
		for _, v := range vs {
			if v <= n-keep {
				os.Remove(ckpt.VersionPath(p.path, v))
			}
		}
	}
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	return out.Close()
}
