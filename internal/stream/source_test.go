package stream

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cstf/internal/tensor"
)

func TestSyntheticDeterministicAndBounded(t *testing.T) {
	cfg := SyntheticConfig{Seed: 7, Dims: []int{20, 15, 10}, Rank: 3, Total: 57}
	a, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ea, eb []tensor.Entry
	for {
		batch, err := a.Next(13)
		if err == io.EOF {
			break
		}
		ea = append(ea, batch...)
	}
	for {
		batch, err := b.Next(8) // different batch sizes must not change the stream
		if err == io.EOF {
			break
		}
		eb = append(eb, batch...)
	}
	if len(ea) != 57 || len(eb) != 57 {
		t.Fatalf("got %d / %d events, want 57", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs across batch sizes: %v vs %v", i, ea[i], eb[i])
		}
	}
	if _, err := a.Next(1); err != io.EOF {
		t.Fatalf("exhausted source returned %v, want io.EOF", err)
	}
}

func TestSyntheticGrowthExtendsDims(t *testing.T) {
	s, err := NewSynthetic(SyntheticConfig{Seed: 3, Dims: []int{4, 4}, Rank: 2, Total: 30, GrowEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	var all []tensor.Entry
	for {
		batch, err := s.Next(64)
		if err == io.EOF {
			break
		}
		all = append(all, batch...)
	}
	dims := s.Dims()
	if dims[0] == 4 && dims[1] == 4 {
		t.Fatalf("GrowEvery never grew the dims: %v", dims)
	}
	// Every emitted index must fall inside the final dims.
	for _, e := range all {
		for m, d := range dims {
			if int(e.Idx[m]) >= d {
				t.Fatalf("entry %v outside final dims %v", e, dims)
			}
		}
	}
}

func TestSyntheticValuesMatchPlantedModel(t *testing.T) {
	s, err := NewSynthetic(SyntheticConfig{Seed: 11, Dims: []int{6, 5}, Rank: 2, Total: 20})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.Next(20)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range batch {
		want := PlantedValue(11, 2, e.Idx[:2])
		if e.Val != want {
			t.Fatalf("value at %v = %v, want planted %v", e.Idx[:2], e.Val, want)
		}
	}
}

func TestTailSourceFollowsAppends(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.tns")
	if err := os.WriteFile(path, []byte("# header comment\n1 2 3 1.5\n2 2 1 -4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewTail(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	batch, err := src.Next(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("initial read got %d entries, want 2", len(batch))
	}
	if batch[0].Idx != [8]uint32{0, 1, 2, 0, 0, 0, 0, 0} || batch[0].Val != 1.5 {
		t.Fatalf("bad first entry: %+v", batch[0])
	}

	// Nothing new yet.
	batch, err = src.Next(10)
	if err != nil || len(batch) != 0 {
		t.Fatalf("quiet tail returned %d entries, err %v", len(batch), err)
	}

	// Append a partial line: must be buffered, not parsed.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("3 1"); err != nil {
		t.Fatal(err)
	}
	batch, err = src.Next(10)
	if err != nil || len(batch) != 0 {
		t.Fatalf("partial line yielded %d entries, err %v", len(batch), err)
	}
	// Complete it plus one more line.
	if _, err := f.WriteString(" 2 7\n4 4 4 8\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	batch, err = src.Next(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 || batch[0].Val != 7 || batch[1].Val != 8 {
		t.Fatalf("appended entries = %+v, want vals 7 and 8", batch)
	}
}

func TestTailSourceFromEndSkipsExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.tns")
	if err := os.WriteFile(path, []byte("1 1 1\n2 2 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewTail(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if batch, err := src.Next(10); err != nil || len(batch) != 0 {
		t.Fatalf("fromEnd source replayed %d existing entries, err %v", len(batch), err)
	}
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("5 5 9\n")
	f.Close()
	batch, err := src.Next(10)
	if err != nil || len(batch) != 1 || batch[0].Val != 9 {
		t.Fatalf("append after fromEnd = %+v, err %v; want one entry val 9", batch, err)
	}
}

func TestTailSourceErrorCarriesLineNumber(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.tns")
	if err := os.WriteFile(path, []byte("1 1 1 2\n2 2 bogus 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := NewTail(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	_, err = src.Next(10)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not name line 2", err)
	}
}

func TestSliceSourceReplaysInWindows(t *testing.T) {
	x := tensor.GenUniform(5, 50, 10, 10)
	src := NewSliceSource(x.Entries, 7)
	var got []tensor.Entry
	for {
		batch, err := src.Next(100)
		if err == io.EOF {
			break
		}
		if len(batch) > 7 {
			t.Fatalf("batch of %d exceeds per=7", len(batch))
		}
		got = append(got, batch...)
	}
	if len(got) != x.NNZ() {
		t.Fatalf("replayed %d entries, want %d", len(got), x.NNZ())
	}
}
