package stream

import (
	"testing"
	"time"

	"cstf/internal/tensor"
)

func entryAt(i int) tensor.Entry {
	var e tensor.Entry
	e.Idx[0] = uint32(i)
	e.Val = float64(i)
	return e
}

func TestQueueDropNewestSheds(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 2, Policy: DropNewest})
	now := time.Now()
	if !q.Push(entryAt(0), now) || !q.Push(entryAt(1), now) {
		t.Fatal("pushes into a non-full queue must be accepted")
	}
	if q.Push(entryAt(2), now) {
		t.Fatal("push into a full DropNewest queue must be dropped")
	}
	st := q.Stats()
	if st.Accepted != 2 || st.Dropped != 1 || st.Depth != 2 {
		t.Fatalf("stats = %+v, want accepted 2 dropped 1 depth 2", st)
	}
	evs, more := q.Drain(10, time.Millisecond)
	if !more || len(evs) != 2 {
		t.Fatalf("drain got %d events (more=%v), want 2", len(evs), more)
	}
	if evs[0].Entry.Idx[0] != 0 || evs[1].Entry.Idx[0] != 1 {
		t.Fatalf("drain order wrong: %v", evs)
	}
}

func TestQueueBlockAppliesBackpressure(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 1, Policy: Block})
	now := time.Now()
	q.Push(entryAt(0), now)

	unblocked := make(chan bool, 1)
	go func() { unblocked <- q.Push(entryAt(1), now) }()

	select {
	case <-unblocked:
		t.Fatal("push into a full Block queue returned without a consumer")
	case <-time.After(20 * time.Millisecond):
	}
	evs, _ := q.Drain(1, time.Second)
	if len(evs) != 1 {
		t.Fatalf("drain got %d events, want 1", len(evs))
	}
	if ok := <-unblocked; !ok {
		t.Fatal("blocked push must succeed once space frees up")
	}
	if st := q.Stats(); st.Blocked != 1 {
		t.Fatalf("blocked counter = %d, want 1", st.Blocked)
	}
}

func TestQueueCloseUnblocksAndDrainsRemainder(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 1, Policy: Block})
	now := time.Now()
	q.Push(entryAt(0), now)

	unblocked := make(chan bool, 1)
	go func() { unblocked <- q.Push(entryAt(1), now) }()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	if ok := <-unblocked; ok {
		t.Fatal("push blocked at Close must report rejection")
	}

	// The buffered event survives Close; after it is gone Drain reports done.
	evs, more := q.Drain(10, time.Millisecond)
	if len(evs) != 1 || !more {
		t.Fatalf("drain after close: %d events, more=%v; want 1, true", len(evs), more)
	}
	evs, more = q.Drain(10, time.Millisecond)
	if len(evs) != 0 || more {
		t.Fatalf("second drain after close: %d events, more=%v; want 0, false", len(evs), more)
	}
	if q.Push(entryAt(2), now) {
		t.Fatal("push after close must be rejected")
	}
}

func TestQueueDrainQuietInterval(t *testing.T) {
	q := NewQueue(QueueConfig{Depth: 4})
	start := time.Now()
	evs, more := q.Drain(4, 10*time.Millisecond)
	if len(evs) != 0 || !more {
		t.Fatalf("quiet drain: %d events, more=%v; want 0, true", len(evs), more)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("quiet drain returned before its wait elapsed")
	}
}
