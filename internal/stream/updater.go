package stream

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/rals"
	"cstf/internal/tensor"
)

// Updater owns the resident tensor and the live CP factors, and folds delta
// windows into both. The refresh is the row-wise ALS update of CDTF/SALS:
// a new nonzero only perturbs the least-squares systems of the factor rows
// it indexes, so one window's work is bounded by the touched rows' nonzeros
// rather than the whole tensor. Because restricted sweeps hold untouched
// rows fixed, the factors drift from the true ALS fixed point as windows
// accumulate; FullSweep (driven by Pipeline.FullSweepEvery) runs warm-started
// exact CP-ALS over the resident tensor to pull them back.
//
// An Updater is single-threaded by design — the pipeline's consumer owns it
// — but its kernels fan out over the internal/par pool.
type Updater struct {
	t       *tensor.COO
	rank    int
	seed    uint64
	workers int

	lambda  []float64
	factors []*la.Dense

	windows  int // delta windows applied
	sweeps   int // full sweeps run (exact or sampled)
	sampling *SweepSampling
}

// SweepSampling switches FullSweep from exact warm-started CP-ALS to the
// randomized leverage-score-sampled solver (internal/rals). On a streaming
// pipeline the full sweep is the drift bound, not the model of record —
// warm-started from near-converged factors, a sampled sweep recovers almost
// all of the drift at a fraction of the exact sweep's per-iteration cost,
// which matters when FullSweepEvery is small and the resident tensor large.
// The zero value of every field selects the rals default (10% of the
// nonzeros, resample every epoch, no exact polish).
type SweepSampling struct {
	// SampleFraction draws ceil(frac*nnz) entries per mode update.
	SampleFraction float64
	// SampleCount draws a fixed number of entries per mode update
	// (overrides SampleFraction when > 0).
	SampleCount int
	// ResampleEvery redraws the sampled tensors every N iterations.
	ResampleEvery int
	// ExactFinishIters runs the last N iterations of each sweep exact.
	ExactFinishIters int
}

// SetSweepSampling installs (or, with nil, removes) sampled full sweeps.
// Sweeps stay deterministic: the sampler is seeded from the updater seed and
// the running sweep count, so a fixed event sequence yields bitwise-identical
// factors on every run and every worker count.
func (u *Updater) SetSweepSampling(s *SweepSampling) {
	if s == nil {
		u.sampling = nil
		return
	}
	cp := *s
	u.sampling = &cp
}

// NewUpdater wraps a resident tensor and its trained, normalized factors
// (cloned; callers keep ownership of theirs). seed seeds the deterministic
// initialization of factor rows created when modes grow. parallelism <= 0
// selects all cores.
func NewUpdater(t *tensor.COO, lambda []float64, factors []*la.Dense, seed uint64, parallelism int) (*Updater, error) {
	if t.NNZ() == 0 {
		return nil, fmt.Errorf("stream: resident tensor has no nonzeros")
	}
	rank := len(lambda)
	if rank == 0 {
		return nil, fmt.Errorf("stream: empty lambda")
	}
	if len(factors) != t.Order() {
		return nil, fmt.Errorf("stream: %d factors for an order-%d tensor", len(factors), t.Order())
	}
	u := &Updater{
		t:       t.Clone(),
		rank:    rank,
		seed:    seed,
		workers: par.Workers(parallelism),
		lambda:  la.VecClone(lambda),
	}
	for n, f := range factors {
		if f == nil || f.Rows != t.Dims[n] || f.Cols != rank {
			return nil, fmt.Errorf("stream: factor %d must be %dx%d", n, t.Dims[n], rank)
		}
		u.factors = append(u.factors, f.Clone())
	}
	return u, nil
}

// NewUpdaterFromResult builds an Updater from a solver result over t.
func NewUpdaterFromResult(t *tensor.COO, res *cpals.Result, seed uint64, parallelism int) (*Updater, error) {
	return NewUpdater(t, res.Lambda, res.Factors, seed, parallelism)
}

// Tensor returns the resident tensor (owned by the updater; read-only).
func (u *Updater) Tensor() *tensor.COO { return u.t }

// Rank returns the decomposition rank.
func (u *Updater) Rank() int { return u.rank }

// Dims returns a copy of the current mode sizes.
func (u *Updater) Dims() []int { return append([]int(nil), u.t.Dims...) }

// Lambda returns the live column weights (aliased; read-only).
func (u *Updater) Lambda() []float64 { return u.lambda }

// Factors returns the live factor matrices (aliased; read-only).
func (u *Updater) Factors() []*la.Dense { return u.factors }

// Windows returns how many delta windows have been applied.
func (u *Updater) Windows() int { return u.windows }

// ReconstructAt evaluates the live CP model at one coordinate.
func (u *Updater) ReconstructAt(idx ...int) float64 {
	var s float64
	for c := 0; c < u.rank; c++ {
		p := u.lambda[c]
		for n, i := range idx {
			p *= u.factors[n].At(i, c)
		}
		s += p
	}
	return s
}

// UpdateStats describes one applied delta window.
type UpdateStats struct {
	Events      int           `json:"events"`       // delta nonzeros merged
	TouchedRows int           `json:"touched_rows"` // factor rows refreshed, summed over modes
	GrownModes  int           `json:"grown_modes"`  // modes whose size increased
	NNZ         int           `json:"nnz"`          // resident nonzeros after the merge
	Duration    time.Duration `json:"-"`
	DurationMs  float64       `json:"duration_ms"`
}

// ApplyDelta merges a delta window into the resident tensor and refreshes
// the factors with one ALS sweep restricted to the touched rows. An empty
// delta is a guaranteed bitwise no-op on the factors and lambda. New
// indices beyond the current mode sizes grow the tensor and the factor
// matrices (fresh rows use the solver's deterministic seeded init before
// being refreshed like any other touched row).
func (u *Updater) ApplyDelta(delta []tensor.Entry) (UpdateStats, error) {
	start := time.Now()
	st := UpdateStats{Events: len(delta), NNZ: u.t.NNZ()}
	if len(delta) == 0 {
		return st, nil
	}
	order := u.t.Order()

	// Pass 1: destination sizes. Entries may index past the current dims.
	newDims := append([]int(nil), u.t.Dims...)
	for i := range delta {
		for m := 0; m < order; m++ {
			if idx := int(delta[i].Idx[m]); idx >= newDims[m] {
				newDims[m] = idx + 1
			}
		}
	}
	for m := 0; m < order; m++ {
		if newDims[m] > u.t.Dims[m] {
			st.GrownModes++
			u.factors[m] = growFactor(u.factors[m], newDims[m], m, u.seed)
			u.t.Dims[m] = newDims[m]
		}
	}

	// Merge the delta; duplicate coordinates keep COO sum semantics.
	u.t.Entries = append(u.t.Entries, delta...)
	u.t.InvalidateIndex()
	st.NNZ = u.t.NNZ()

	// Touched rows per mode: the union of the delta's indices.
	touched := make([][]int, order)
	for m := 0; m < order; m++ {
		touched[m] = touchedRows(delta, m)
		st.TouchedRows += len(touched[m])
	}

	u.restrictedSweep(touched)
	u.windows++
	st.Duration = time.Since(start)
	st.DurationMs = float64(st.Duration.Nanoseconds()) / 1e6
	return st, nil
}

// touchedRows returns the sorted unique mode-m indices of delta.
func touchedRows(delta []tensor.Entry, m int) []int {
	rows := make([]int, 0, len(delta))
	for i := range delta {
		rows = append(rows, int(delta[i].Idx[m]))
	}
	sort.Ints(rows)
	out := rows[:0]
	for i, r := range rows {
		if i == 0 || r != rows[i-1] {
			out = append(out, r)
		}
	}
	return out
}

// restrictedSweep runs one ALS sweep updating only the touched rows of each
// mode. Column weights are first absorbed into the last mode so every row
// update solves the same normal equations as a full ALS mode update; after
// the sweep all columns are re-normalized and lambda restored as the
// product of the per-mode norms (an equivalent normalized representation of
// the same model).
func (u *Updater) restrictedSweep(touched [][]int) {
	order := u.t.Order()
	w := u.workers

	// Absorb lambda into the last mode: scale column c by lambda_c.
	last := u.factors[order-1]
	la.RowBlocksApply(w, last.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := last.Row(i)
			for c := range row {
				row[c] *= u.lambda[c]
			}
		}
	})

	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		grams[n] = la.GramParallel(u.factors[n], w)
	}

	for n := 0; n < order; n++ {
		rows := touched[n]
		if len(rows) == 0 {
			continue
		}
		v := cpals.HadamardOfGramsExcept(grams, n)
		pinv := la.Pinv(v)
		mi := u.t.ModeIndex(n)
		f := u.factors[n]
		// Each touched row owns a disjoint output row and reads only OTHER
		// modes' factors, so rows update in parallel without conflicts; the
		// per-row entry order comes from the stable mode index, making the
		// result independent of the worker count.
		par.ForBlocks(w, len(rows), func(lo, hi int) {
			acc := make([]float64, u.rank)
			tmp := make([]float64, u.rank)
			for k := lo; k < hi; k++ {
				i := rows[k]
				for c := range acc {
					acc[c] = 0
				}
				for p := mi.RowPtr[i]; p < mi.RowPtr[i+1]; p++ {
					e := &u.t.Entries[mi.Perm[p]]
					for c := range tmp {
						tmp[c] = e.Val
					}
					for o := 0; o < order; o++ {
						if o == n {
							continue
						}
						la.VecMulInto(tmp, u.factors[o].Row(int(e.Idx[o])))
					}
					la.VecAdd(acc, tmp)
				}
				la.VecMatInto(f.Row(i), acc, pinv)
			}
		})
		grams[n] = la.GramParallel(f, w)
	}

	// Re-normalize: unit columns everywhere, weights in lambda.
	for c := range u.lambda {
		u.lambda[c] = 1
	}
	for n := 0; n < order; n++ {
		norms := la.NormalizeColumnsParallel(u.factors[n], w)
		for c := range u.lambda {
			u.lambda[c] *= norms[c]
		}
	}
}

// growFactor extends f to newRows rows, filling the fresh rows with the
// solver's deterministic seeded initialization (the same value any solver
// would have used for that (mode, row, col) at first training).
func growFactor(f *la.Dense, newRows, mode int, seed uint64) *la.Dense {
	g := la.NewDense(newRows, f.Cols)
	copy(g.Data, f.Data)
	for i := f.Rows; i < newRows; i++ {
		row := g.Row(i)
		for c := range row {
			row[c] = cpals.FactorInitValue(seed, mode, i, c)
		}
	}
	return g
}

// FullSweep runs `iters` warm-started iterations over the resident tensor
// (the drift bound) and adopts the result. The sweep is exact CP-ALS unless
// SetSweepSampling switched it to the sampled solver; either way the
// returned fit is the exact fit over the resident tensor.
func (u *Updater) FullSweep(iters int) (float64, error) {
	if iters <= 0 {
		iters = 1
	}
	u.sweeps++
	if s := u.sampling; s != nil {
		frac, count := s.SampleFraction, s.SampleCount
		if frac == 0 && count == 0 {
			frac = 0.1
		}
		// Each sweep gets its own sampler stream: rals keys draws by
		// (seed, epoch, mode), and every sweep restarts at epoch 0, so an
		// unmixed seed would replay one sweep's sample pattern forever.
		res, err := rals.Solve(u.t, rals.Options{
			Rank:             u.rank,
			MaxIters:         iters,
			Seed:             u.seed ^ (uint64(u.sweeps) * 0x9E3779B97F4A7C15),
			Parallelism:      u.workers,
			SampleFraction:   frac,
			SampleCount:      count,
			ResampleEvery:    s.ResampleEvery,
			ExactFinishIters: s.ExactFinishIters,
			FinalFitOnly:     true,
			InitFactors:      u.factors,
			InitLambda:       u.lambda,
		})
		if err != nil {
			return 0, fmt.Errorf("stream: sampled sweep: %w", err)
		}
		u.factors = res.Factors
		u.lambda = res.Lambda
		return res.Fit(), nil
	}
	res, err := cpals.Solve(u.t, cpals.Options{
		Rank:        u.rank,
		MaxIters:    iters,
		Seed:        u.seed,
		Parallelism: u.workers,
		InitFactors: u.factors,
		InitLambda:  u.lambda,
	})
	if err != nil {
		return 0, fmt.Errorf("stream: full sweep: %w", err)
	}
	u.factors = res.Factors
	u.lambda = res.Lambda
	return res.Fit(), nil
}

// Fit computes the current model fit 1 - ||X - X̂||/||X|| over the resident
// tensor, via the inner-product identity (one deterministic blocked pass
// over the nonzeros, no reconstruction).
func (u *Updater) Fit() float64 {
	normX := u.t.Norm()
	if normX == 0 {
		return 0
	}
	order := u.t.Order()
	inner := par.SumBlocks(u.workers, u.t.NNZ(), func(lo, hi int) float64 {
		tmp := make([]float64, u.rank)
		var s float64
		for i := lo; i < hi; i++ {
			e := &u.t.Entries[i]
			copy(tmp, u.lambda)
			for n := 0; n < order; n++ {
				la.VecMulInto(tmp, u.factors[n].Row(int(e.Idx[n])))
			}
			for _, v := range tmp {
				s += v * e.Val
			}
		}
		return s
	})
	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		grams[n] = la.GramParallel(u.factors[n], u.workers)
	}
	modelSq := cpals.ModelNormSq(u.lambda, grams)
	residSq := normX*normX + modelSq - 2*inner
	if residSq < 0 {
		residSq = 0
	}
	return 1 - math.Sqrt(residSq)/normX
}
