package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"cstf/internal/tensor"
)

// Config wires a Pipeline. Zero values select the documented defaults.
type Config struct {
	// WindowSize bounds how many queued events one delta window merges.
	// Default 1024.
	WindowSize int
	// MaxWait bounds how long Drain waits for the FIRST event of a window
	// before declaring a quiet interval. Default 50ms.
	MaxWait time.Duration
	// PollInterval is how long the feeder sleeps when the source has
	// nothing new (a tailed file that has not grown). Default 10ms.
	PollInterval time.Duration
	// FeedBatch bounds how many events one Source.Next call requests.
	// Default WindowSize.
	FeedBatch int
	// PublishEvery publishes a checkpoint version every Nth window.
	// Default 1 (every window). 0 also means 1; negative disables.
	PublishEvery int
	// FullSweepEvery runs a warm-started full ALS sweep every Nth window
	// (after the restricted update), bounding drift. 0 disables.
	FullSweepEvery int
	// FullSweepIters is the iterations per full sweep. Default 1.
	FullSweepIters int
	// MaxWindows stops the pipeline after N applied windows; 0 runs until
	// the source is exhausted or the context is cancelled.
	MaxWindows int
	// Queue sizes the ingest buffer.
	Queue QueueConfig

	// OnWindow, when non-nil, observes every applied window (called on the
	// pipeline's consumer goroutine, in order).
	OnWindow func(WindowStats)
}

func (c Config) withDefaults() Config {
	if c.WindowSize <= 0 {
		c.WindowSize = 1024
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 50 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.FeedBatch <= 0 {
		c.FeedBatch = c.WindowSize
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 1
	}
	if c.FullSweepIters <= 0 {
		c.FullSweepIters = 1
	}
	return c
}

// WindowStats describes one applied window, for logging and benchmarks.
type WindowStats struct {
	Window    int         `json:"window"` // 1-based window number
	Update    UpdateStats `json:"update"`
	FullSweep bool        `json:"full_sweep"`
	Fit       float64     `json:"fit"`     // set only when a full sweep ran (else 0)
	Version   int         `json:"version"` // published version, 0 when not published
	// FreshnessLag is the age of the OLDEST event in the window at the
	// moment its version was published — the end-to-end event→queryable
	// bound for this window. Zero when the window was not published.
	FreshnessLag time.Duration `json:"-"`
	LagMs        float64       `json:"lag_ms"`
	Dims         []int         `json:"dims"`
}

// Metrics aggregates a pipeline run.
type Metrics struct {
	Windows    int           `json:"windows"`
	Events     int           `json:"events"`
	Published  int           `json:"published"`
	FullSweeps int           `json:"full_sweeps"`
	Queue      QueueStats    `json:"queue"`
	UpdateTime time.Duration `json:"-"`
	MaxLag     time.Duration `json:"-"`
}

// Pipeline pumps Source → Queue → Updater → Publisher. Construct with
// NewPipeline, drive with Run.
type Pipeline struct {
	cfg Config
	src Source
	q   *Queue
	up  *Updater
	pub *Publisher

	metrics Metrics
}

// NewPipeline wires the stages. pub may be nil (update without publishing —
// e.g. measuring pure update cost).
func NewPipeline(src Source, up *Updater, pub *Publisher, cfg Config) (*Pipeline, error) {
	if src == nil {
		return nil, fmt.Errorf("stream: nil source")
	}
	if up == nil {
		return nil, fmt.Errorf("stream: nil updater")
	}
	return &Pipeline{
		cfg: cfg.withDefaults(),
		src: src,
		q:   NewQueue(cfg.Queue),
		up:  up,
		pub: pub,
	}, nil
}

// Updater exposes the live model (read it only after Run returns).
func (p *Pipeline) Updater() *Updater { return p.up }

// Queue exposes the ingest queue (for its counters).
func (p *Pipeline) Queue() *Queue { return p.q }

// Metrics returns the aggregate counters (read after Run returns).
func (p *Pipeline) Metrics() Metrics {
	m := p.metrics
	m.Queue = p.q.Stats()
	return m
}

// Run drives the pipeline until the source is exhausted, MaxWindows is
// reached, or ctx is cancelled (which is a clean stop, not an error). The
// feeder goroutine pumps the source into the queue; the calling goroutine
// is the consumer: drain a window, apply the delta, sweep/publish on
// schedule. Source errors (e.g. a corrupt line in a tailed log) abort the
// run and are returned.
func (p *Pipeline) Run(ctx context.Context) error {
	cfg := p.cfg
	feedErr := make(chan error, 1)
	go p.feed(ctx, feedErr)
	defer p.q.Close()

	for {
		if err := ctx.Err(); err != nil {
			return nil // cancelled: clean stop
		}
		evs, more := p.q.Drain(cfg.WindowSize, cfg.MaxWait)
		if len(evs) > 0 {
			if err := p.window(evs); err != nil {
				return err
			}
			if cfg.MaxWindows > 0 && p.metrics.Windows >= cfg.MaxWindows {
				break
			}
		}
		if !more {
			break
		}
	}
	p.q.Close()
	select {
	case err := <-feedErr:
		return err
	default:
		return nil
	}
}

// feed pumps the source into the queue until EOF, a source error, or ctx
// cancellation. Push under the Block policy applies backpressure here —
// exactly where it belongs, between the source and the bounded buffer.
func (p *Pipeline) feed(ctx context.Context, errCh chan<- error) {
	defer p.q.Close()
	for {
		if ctx.Err() != nil {
			return
		}
		batch, err := p.src.Next(p.cfg.FeedBatch)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				errCh <- err
			}
			return
		}
		if len(batch) == 0 {
			select {
			case <-ctx.Done():
				return
			case <-p.q.closed:
				return
			case <-time.After(p.cfg.PollInterval):
			}
			continue
		}
		now := time.Now()
		for _, e := range batch {
			if !p.q.Push(e, now) && p.cfg.Queue.Policy == Block {
				return // queue closed under us: consumer is done
			}
		}
	}
}

// window applies one drained window: merge + restricted sweep, scheduled
// full sweep, scheduled publish, stats.
func (p *Pipeline) window(evs []Event) error {
	cfg := p.cfg
	delta := make([]tensor.Entry, len(evs))
	oldest := evs[0].At
	for i, ev := range evs {
		delta[i] = ev.Entry
		if ev.At.Before(oldest) {
			oldest = ev.At
		}
	}
	ust, err := p.up.ApplyDelta(delta)
	if err != nil {
		return err
	}
	p.metrics.Windows++
	p.metrics.Events += ust.Events
	p.metrics.UpdateTime += ust.Duration

	ws := WindowStats{
		Window: p.metrics.Windows,
		Update: ust,
		Dims:   p.up.Dims(),
	}
	if cfg.FullSweepEvery > 0 && p.metrics.Windows%cfg.FullSweepEvery == 0 {
		fit, err := p.up.FullSweep(cfg.FullSweepIters)
		if err != nil {
			return err
		}
		ws.FullSweep = true
		ws.Fit = fit
		p.metrics.FullSweeps++
	}
	if p.pub != nil && cfg.PublishEvery > 0 && p.metrics.Windows%cfg.PublishEvery == 0 {
		v, err := p.pub.Publish(p.up, ws.Fit)
		if err != nil {
			return err
		}
		ws.Version = v
		ws.FreshnessLag = time.Since(oldest)
		ws.LagMs = float64(ws.FreshnessLag.Nanoseconds()) / 1e6
		p.metrics.Published++
		if ws.FreshnessLag > p.metrics.MaxLag {
			p.metrics.MaxLag = ws.FreshnessLag
		}
	}
	if cfg.OnWindow != nil {
		cfg.OnWindow(ws)
	}
	return nil
}
