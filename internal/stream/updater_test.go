package stream

import (
	"math"
	"testing"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/tensor"
)

func trainedUpdater(t *testing.T, x *tensor.COO, rank, iters int, seed uint64) *Updater {
	t.Helper()
	res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdaterFromResult(x, res, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// Property: applying an empty delta window is a bitwise no-op on the
// factors, lambda, and the resident tensor.
func TestEmptyDeltaIsBitwiseNoOp(t *testing.T) {
	x := tensor.GenLowRank(21, 3000, 3, 0.05, 40, 30, 20)
	u := trainedUpdater(t, x, 3, 3, 21)

	lambdaBefore := la.VecClone(u.Lambda())
	factorsBefore := make([]*la.Dense, len(u.Factors()))
	for n, f := range u.Factors() {
		factorsBefore[n] = f.Clone()
	}
	nnzBefore := u.Tensor().NNZ()

	st, err := u.ApplyDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events != 0 || st.TouchedRows != 0 {
		t.Fatalf("empty delta reported work: %+v", st)
	}
	for c, v := range u.Lambda() {
		if v != lambdaBefore[c] {
			t.Fatalf("lambda[%d] changed: %v -> %v", c, lambdaBefore[c], v)
		}
	}
	for n, f := range u.Factors() {
		for i, v := range f.Data {
			if v != factorsBefore[n].Data[i] {
				t.Fatalf("factor %d datum %d changed: %v -> %v", n, i, factorsBefore[n].Data[i], v)
			}
		}
	}
	if u.Tensor().NNZ() != nnzBefore {
		t.Fatalf("tensor nnz changed: %d -> %d", nnzBefore, u.Tensor().NNZ())
	}
}

// Property: a restricted update must leave UNTOUCHED rows equal to the old
// rows up to the global column rescaling of re-normalization — i.e. the
// model values they produce are unchanged wherever no touched row is
// involved... but a touched row in ANY mode changes that mode's gram and
// hence later modes' solves, so the clean invariant is the one below:
// updating with a delta improves (or at least does not catastrophically
// break) the fit, and touched rows track the data.
func TestApplyDeltaImprovesFitOnPlantedModel(t *testing.T) {
	const seed, rank = 9, 3
	dims := []int{50, 40, 30}
	// Resident: first 4000 planted entries. Delta: 1000 more from the SAME
	// planted model (exact values, no noise).
	src, err := NewSynthetic(SyntheticConfig{Seed: seed, Dims: dims, Rank: rank, Total: 5000})
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.Next(4000)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(dims...)
	x.Entries = append([]tensor.Entry(nil), first...)
	x.DedupSum()

	u := trainedUpdater(t, x, rank, 8, seed)
	fitBefore := u.Fit()

	delta, err := src.Next(1000)
	if err != nil {
		t.Fatal(err)
	}
	st, err := u.ApplyDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	if st.TouchedRows == 0 {
		t.Fatal("delta touched no rows")
	}
	fitAfter := u.Fit()
	// The delta is consistent with the planted model the factors already
	// fit, so the restricted refresh must keep the fit in the same
	// neighborhood (and a couple more full sweeps must push it up).
	if fitAfter < fitBefore-0.05 {
		t.Fatalf("fit collapsed after delta: %v -> %v", fitBefore, fitAfter)
	}
	fitSwept, err := u.FullSweep(2)
	if err != nil {
		t.Fatal(err)
	}
	if fitSwept < fitAfter-1e-9 && fitSwept < 0.95 {
		t.Fatalf("full sweep degraded fit: %v -> %v", fitAfter, fitSwept)
	}
}

// Property: growing deltas extend dims and factor rows, and the fresh rows
// use the solver's deterministic seeded initialization before refresh.
func TestApplyDeltaGrowsModes(t *testing.T) {
	x := tensor.GenLowRank(13, 2000, 2, 0, 20, 15, 10)
	u := trainedUpdater(t, x, 2, 3, 13)

	var e tensor.Entry
	e.Idx = [8]uint32{25, 3, 14, 0, 0, 0, 0, 0} // modes 0 and 2 beyond current dims
	e.Val = 1
	st, err := u.ApplyDelta([]tensor.Entry{e})
	if err != nil {
		t.Fatal(err)
	}
	if st.GrownModes != 2 {
		t.Fatalf("grew %d modes, want 2", st.GrownModes)
	}
	dims := u.Dims()
	if dims[0] != 26 || dims[1] != 15 || dims[2] != 15 {
		t.Fatalf("dims after growth = %v, want [26 15 15]", dims)
	}
	for n, f := range u.Factors() {
		if f.Rows != dims[n] {
			t.Fatalf("factor %d has %d rows, want %d", n, f.Rows, dims[n])
		}
	}
	// Rows that exist but were never touched by data keep their seeded init
	// (up to column re-normalization): row 24 of mode 0 has no nonzeros.
	got := u.Factors()[0].Row(24)
	var want []float64
	for c := 0; c < 2; c++ {
		want = append(want, cpals.FactorInitValue(13, 0, 24, c))
	}
	// Normalization rescales columns; compare direction per column against
	// a touched row to confirm the seeded values were the starting point:
	// ratio got[c]/want[c] must equal the column's applied scale, which is
	// shared with every other untouched fresh row (row 20..23 exist too).
	other := u.Factors()[0].Row(20)
	for c := 0; c < 2; c++ {
		scale1 := got[c] / want[c]
		scale2 := other[c] / cpals.FactorInitValue(13, 0, 20, c)
		if math.Abs(scale1-scale2) > 1e-12*math.Abs(scale1) {
			t.Fatalf("fresh rows not consistently seeded: col %d scales %v vs %v", c, scale1, scale2)
		}
	}
}

// Property: a static tensor split into K streamed windows, finished with a
// full sweep, reaches a fit within tolerance of one-shot batch CP-ALS with
// the same seed on the same tensor.
func TestStreamedWindowsMatchBatchFit(t *testing.T) {
	const seed, rank, iters = 42, 3, 12
	dims := []int{60, 50, 40}
	x := tensor.GenLowRank(seed, 8000, rank, 0, dims...)

	batch, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: iters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	// Stream: train on the first quarter, then feed the rest in K windows.
	entries := append([]tensor.Entry(nil), x.Entries...)
	cut := len(entries) / 4
	x0 := tensor.New(dims...)
	x0.Entries = append([]tensor.Entry(nil), entries[:cut]...)
	u := trainedUpdater(t, x0, rank, iters, seed)

	const K = 5
	rest := entries[cut:]
	per := (len(rest) + K - 1) / K
	for w := 0; w < K; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(rest) {
			hi = len(rest)
		}
		if lo >= hi {
			break
		}
		if _, err := u.ApplyDelta(rest[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if u.Tensor().NNZ() != x.NNZ() {
		t.Fatalf("streamed tensor has %d nnz, want %d", u.Tensor().NNZ(), x.NNZ())
	}
	streamFit, err := u.FullSweep(iters)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(streamFit-batch.Fit()) > 0.02 {
		t.Fatalf("streamed fit %v vs batch fit %v: drift > 0.02", streamFit, batch.Fit())
	}
}

// Determinism: the same resident tensor, factors, and delta produce bitwise
// identical factors for every parallelism degree.
func TestApplyDeltaDeterministicAcrossWorkers(t *testing.T) {
	const seed, rank = 33, 2
	x := tensor.GenLowRank(seed, 3000, rank, 0.1, 40, 30, 20)
	delta := tensor.GenUniform(seed+1, 300, 40, 30, 20).Entries

	var ref []*la.Dense
	for _, workers := range []int{1, 2, 7} {
		res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewUpdaterFromResult(x, res, seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := u.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			for _, f := range u.Factors() {
				ref = append(ref, f.Clone())
			}
			continue
		}
		for n, f := range u.Factors() {
			for i, v := range f.Data {
				if v != ref[n].Data[i] {
					t.Fatalf("workers=%d: factor %d datum %d differs bitwise", workers, n, i)
				}
			}
		}
	}
}

// Sampled sweeps, degenerate case: a full sample budget makes the rals
// sweep bitwise identical to the exact sweep — factors, lambda, and the
// returned exact fit.
func TestSampledSweepFullBudgetBitwiseExact(t *testing.T) {
	const seed, rank = 17, 3
	x := tensor.GenLowRank(seed, 4000, rank, 0.05, 50, 40, 30)
	delta := tensor.GenUniform(seed+1, 400, 50, 40, 30).Entries

	run := func(s *SweepSampling) (*Updater, float64) {
		u := trainedUpdater(t, x, rank, 2, seed)
		u.SetSweepSampling(s)
		if _, err := u.ApplyDelta(delta); err != nil {
			t.Fatal(err)
		}
		fit, err := u.FullSweep(3)
		if err != nil {
			t.Fatal(err)
		}
		return u, fit
	}
	exactU, exactFit := run(nil)
	sampU, sampFit := run(&SweepSampling{SampleCount: x.NNZ() + len(delta)})

	if sampFit != exactFit {
		t.Fatalf("full-budget sampled sweep fit %v != exact sweep fit %v", sampFit, exactFit)
	}
	for n, f := range sampU.Factors() {
		for i, v := range f.Data {
			if v != exactU.Factors()[n].Data[i] {
				t.Fatalf("factor %d datum %d differs bitwise from exact sweep", n, i)
			}
		}
	}
	for c, v := range sampU.Lambda() {
		if v != exactU.Lambda()[c] {
			t.Fatalf("lambda[%d] differs bitwise from exact sweep", c)
		}
	}
}

// Sampled sweeps are deterministic — the same event sequence yields bitwise
// identical factors on repeat runs and across worker counts — and the sweep
// still does its job: warm-started on drifted factors, the sampled sweep's
// exact fit lands close to what the exact sweep reaches.
func TestSampledSweepDeterministicAndTracksExact(t *testing.T) {
	const seed, rank = 29, 3
	x := tensor.GenLowRank(seed, 5000, rank, 0.02, 50, 40, 30)
	deltas := [][]tensor.Entry{
		tensor.GenUniform(seed+1, 300, 50, 40, 30).Entries,
		tensor.GenUniform(seed+2, 300, 50, 40, 30).Entries,
	}
	s := &SweepSampling{SampleFraction: 0.5, ResampleEvery: 2, ExactFinishIters: 1}

	run := func(workers int, s *SweepSampling) (*Updater, float64) {
		res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: 4, Seed: seed, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewUpdaterFromResult(x, res, seed, workers)
		if err != nil {
			t.Fatal(err)
		}
		u.SetSweepSampling(s)
		var fit float64
		for _, d := range deltas {
			if _, err := u.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
			if fit, err = u.FullSweep(4); err != nil {
				t.Fatal(err)
			}
		}
		return u, fit
	}

	ref, sampFit := run(1, s)
	for _, workers := range []int{1, 4} {
		u, fit := run(workers, s)
		if fit != sampFit {
			t.Fatalf("workers=%d: sampled sweep fit %v != reference %v", workers, fit, sampFit)
		}
		for n, f := range u.Factors() {
			for i, v := range f.Data {
				if v != ref.Factors()[n].Data[i] {
					t.Fatalf("workers=%d: factor %d datum %d differs bitwise", workers, n, i)
				}
			}
		}
	}

	_, exactFit := run(1, nil)
	if sampFit < exactFit-0.05 {
		t.Fatalf("sampled sweep fit %v trails exact sweep fit %v by > 0.05", sampFit, exactFit)
	}
}
