package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cstf/internal/tensor"
)

// Policy selects what Push does when the queue is full.
type Policy int

const (
	// Block applies backpressure: Push waits for space (or Close). Use when
	// the producer can be slowed — a tailed file, a replay.
	Block Policy = iota
	// DropNewest sheds load: a Push into a full queue discards the event
	// and counts it. Use when the producer cannot be slowed — live traffic
	// — and bounded staleness beats unbounded memory.
	DropNewest
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Event is one queued nonzero plus its arrival time, the timestamp
// freshness lag is measured from.
type Event struct {
	Entry tensor.Entry
	At    time.Time
}

// QueueConfig sizes a Queue. Zero values select the defaults.
type QueueConfig struct {
	Depth  int // bounded capacity; default 8192
	Policy Policy
}

// Queue is the bounded ingest buffer between a Source's feeder goroutine
// and the updater. It is safe for one producer and one consumer (the
// pipeline's shape); counters may be read from anywhere.
type Queue struct {
	cfg       QueueConfig
	ch        chan Event
	closed    chan struct{}
	closeOnce sync.Once

	accepted atomic.Uint64
	dropped  atomic.Uint64
	blockedN atomic.Uint64 // pushes that had to wait under Block
}

// NewQueue returns an empty queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Depth <= 0 {
		cfg.Depth = 8192
	}
	return &Queue{
		cfg:    cfg,
		ch:     make(chan Event, cfg.Depth),
		closed: make(chan struct{}),
	}
}

// Push enqueues one event. Under Block it waits for space; under DropNewest
// a full queue discards the event. The return reports whether the event was
// accepted (false after Close or on drop).
func (q *Queue) Push(e tensor.Entry, at time.Time) bool {
	ev := Event{Entry: e, At: at}
	select {
	case <-q.closed:
		return false
	default:
	}
	select {
	case q.ch <- ev:
		q.accepted.Add(1)
		return true
	default:
	}
	switch q.cfg.Policy {
	case DropNewest:
		q.dropped.Add(1)
		return false
	default: // Block
		q.blockedN.Add(1)
		select {
		case q.ch <- ev:
			q.accepted.Add(1)
			return true
		case <-q.closed:
			return false
		}
	}
}

// Drain micro-batches one window: it waits up to wait for the first event,
// then gathers whatever else is already queued, up to max. The second
// return is false once the queue is closed AND empty — no event will ever
// arrive again. An empty batch with true just means a quiet interval.
func (q *Queue) Drain(max int, wait time.Duration) ([]Event, bool) {
	if max <= 0 {
		max = 1
	}
	var out []Event
	select {
	case ev := <-q.ch:
		out = append(out, ev)
	case <-q.closed:
		// Closed: hand out whatever is still buffered, then report done.
		for len(out) < max {
			select {
			case ev := <-q.ch:
				out = append(out, ev)
			default:
				return out, len(out) > 0
			}
		}
		return out, true
	case <-time.After(wait):
		return nil, true
	}
	for len(out) < max {
		select {
		case ev := <-q.ch:
			out = append(out, ev)
		default:
			return out, true
		}
	}
	return out, true
}

// Close wakes blocked producers and marks the stream finished. Buffered
// events remain drainable. Idempotent.
func (q *Queue) Close() { q.closeOnce.Do(func() { close(q.closed) }) }

// QueueStats is a point-in-time snapshot of queue counters.
type QueueStats struct {
	Accepted uint64 `json:"accepted"`
	Dropped  uint64 `json:"dropped"`
	Blocked  uint64 `json:"blocked"` // pushes that waited for space
	Depth    int    `json:"depth"`   // events buffered right now
}

// Stats snapshots the counters.
func (q *Queue) Stats() QueueStats {
	return QueueStats{
		Accepted: q.accepted.Load(),
		Dropped:  q.dropped.Load(),
		Blocked:  q.blockedN.Load(),
		Depth:    len(q.ch),
	}
}
