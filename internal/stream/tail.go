package stream

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"cstf/internal/tensor"
)

// TailSource follows an append-only FROSTT .tns log: each Next call reads
// whatever complete lines were appended since the last call and parses them
// with the same line grammar as tensor.ReadTNS (ParseTNSLine), so a file a
// batch job could load is also a stream a live job can follow. A trailing
// partial line — a writer mid-append — is buffered until its newline
// arrives, and comments/blank lines are skipped. Parse errors carry the
// 1-based line number within the log.
//
// TailSource never returns io.EOF: an append-only log is by definition
// never finished. Bounded runs stop via Pipeline's MaxWindows or context.
type TailSource struct {
	path   string
	f      *os.File
	order  int // learned from the first data line; 0 until then
	lineNo int // lines consumed so far, for error positions
	rem    []byte
	pend   []tensor.Entry
}

// NewTail opens path for tailing. fromEnd skips the file's current contents
// (only entries appended after this call are emitted); otherwise the first
// Next calls replay the log from the start.
func NewTail(path string, fromEnd bool) (*TailSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s := &TailSource{path: path, f: f}
	if fromEnd {
		// Line counting restarts at the tail point; errors report positions
		// relative to it, which is what a log-rotation-aware operator wants.
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("stream: tail %s: %w", path, err)
		}
	}
	return s, nil
}

// Close releases the underlying file.
func (s *TailSource) Close() error { return s.f.Close() }

// Next returns up to max entries appended since the last call (nil when the
// log has not grown by a complete line).
func (s *TailSource) Next(max int) ([]tensor.Entry, error) {
	if max <= 0 {
		return nil, nil
	}
	for len(s.pend) < max {
		buf := make([]byte, 64*1024)
		n, err := s.f.Read(buf)
		if n > 0 {
			if err := s.parse(buf[:n]); err != nil {
				return nil, err
			}
		}
		if err != nil {
			if err == io.EOF {
				break // caught up; whatever is pending is the batch
			}
			return nil, fmt.Errorf("stream: tail %s: %w", s.path, err)
		}
	}
	if len(s.pend) == 0 {
		return nil, nil
	}
	n := max
	if n > len(s.pend) {
		n = len(s.pend)
	}
	out := s.pend[:n:n]
	s.pend = s.pend[n:]
	return out, nil
}

// parse splits chunk into complete lines (prepending any buffered partial
// line) and appends the parsed entries to pend.
func (s *TailSource) parse(chunk []byte) error {
	data := chunk
	if len(s.rem) > 0 {
		data = append(s.rem, chunk...)
	}
	for {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		s.lineNo++
		e, ord, ok, err := tensor.ParseTNSLine(string(line), s.order)
		if err != nil {
			return fmt.Errorf("stream: %s: line %d: %v", s.path, s.lineNo, err)
		}
		if !ok {
			continue
		}
		s.order = ord
		s.pend = append(s.pend, e)
	}
	s.rem = append(s.rem[:0], data...)
	return nil
}
