package stream

import (
	"context"
	"encoding/json"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cstf/internal/cpals"
	"cstf/internal/serve"
	"cstf/internal/tensor"
)

// End-to-end: a server starts on a checkpoint, the pipeline streams three
// windows of new nonzeros, and the served model version advances with a
// /predict answer that reflects the post-stream factors.
func TestPipelineFeedsServingHotReload(t *testing.T) {
	const seed, rank = 17, 3
	dims := []int{40, 30, 20}
	path := filepath.Join(t.TempDir(), "model.ckpt")

	// Initial batch training on the planted model's first 3000 events.
	src, err := NewSynthetic(SyntheticConfig{Seed: seed, Dims: dims, Rank: rank, Total: 3000 + 3*500})
	if err != nil {
		t.Fatal(err)
	}
	first, err := src.Next(3000)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(dims...)
	x.Entries = append([]tensor.Entry(nil), first...)
	x.DedupSum()
	res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: 5, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdaterFromResult(x, res, seed, 0)
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher(path, seed)
	if _, err := pub.Publish(u, res.Fit()); err != nil {
		t.Fatal(err)
	}

	// Serve the initial version and watch the file.
	m, err := serve.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(m, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Watch(ctx, path, 2*time.Millisecond)
	v0 := s.Model().Version

	// Stream the remaining events through the full pipeline: exactly three
	// 500-event windows, each published.
	p, err := NewPipeline(src, u, pub, Config{
		WindowSize:     500,
		MaxWait:        5 * time.Millisecond,
		PublishEvery:   1,
		FullSweepEvery: 2,
		MaxWindows:     3,
		Queue:          QueueConfig{Depth: 2048, Policy: Block},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(ctx); err != nil {
		t.Fatal(err)
	}
	met := p.Metrics()
	if met.Windows != 3 {
		t.Fatalf("ran %d windows, want 3", met.Windows)
	}
	if met.Published != 3 {
		t.Fatalf("published %d versions, want 3", met.Published)
	}
	if met.Events != 1500 {
		t.Fatalf("processed %d events, want 1500", met.Events)
	}

	// The watcher must pick up the final published version.
	deadline := time.Now().Add(5 * time.Second)
	for s.Model().Iter != pub.Version() {
		if time.Now().After(deadline) {
			t.Fatalf("server never reloaded to v%d (at iter %d)", pub.Version(), s.Model().Iter)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s.Model().Version <= v0 {
		t.Fatalf("served model version did not advance: %d -> %d", v0, s.Model().Version)
	}

	// A /predict over HTTP must reflect the post-stream factors exactly.
	srv := httptest.NewServer(serve.NewHandler(s))
	defer srv.Close()
	idx := []int{3, 1, 4}
	resp, err := srv.Client().Get(srv.URL + "/predict?index=3,1,4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Value        float64 `json:"value"`
		ModelVersion uint64  `json:"model_version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := u.ReconstructAt(idx...)
	if math.Abs(body.Value-want) > 1e-12*math.Max(1, math.Abs(want)) {
		t.Fatalf("/predict = %v, live updater reconstructs %v", body.Value, want)
	}

	// /healthz reports the new version and a fresh age.
	hresp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Version    uint64  `json:"version"`
		AgeSeconds float64 `json:"age_seconds"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Version != s.Model().Version {
		t.Fatalf("/healthz version %d != served %d", health.Version, s.Model().Version)
	}
	if health.AgeSeconds < 0 || health.AgeSeconds > 60 {
		t.Fatalf("implausible age_seconds %v", health.AgeSeconds)
	}
}

// The pipeline over a tailed .tns log: entries appended while the pipeline
// runs land in the resident tensor.
func TestPipelineOverTailedLog(t *testing.T) {
	dims := []int{20, 15, 10}
	const seed, rank = 5, 2
	x := tensor.GenLowRank(seed, 1500, rank, 0, dims...)
	logPath := filepath.Join(t.TempDir(), "events.tns")
	if err := tensor.SaveTNSFile(logPath, x); err != nil {
		t.Fatal(err)
	}

	res, err := cpals.Solve(x, cpals.Options{Rank: rank, MaxIters: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewUpdaterFromResult(x, res, seed, 0)
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewTail(logPath, true) // only NEW appends stream
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	p, err := NewPipeline(src, u, nil, Config{
		WindowSize:   64,
		MaxWait:      5 * time.Millisecond,
		PollInterval: time.Millisecond,
		MaxWindows:   2,
		Queue:        QueueConfig{Depth: 256},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Appender: two bursts of fresh entries (duplicate coords are fine;
	// COO duplicates are summed).
	appended := make(chan struct{})
	go func() {
		defer close(appended)
		extra := tensor.GenUniform(seed+9, 200, 20, 15, 10)
		half := extra.NNZ() / 2
		part1, part2 := extra.Clone(), extra.Clone()
		part1.Entries = part1.Entries[:half]
		part2.Entries = part2.Entries[half:]
		appendTNS(t, logPath, part1)
		time.Sleep(20 * time.Millisecond)
		appendTNS(t, logPath, part2)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = p.Run(ctx)
	<-appended
	if err != nil {
		t.Fatal(err)
	}
	met := p.Metrics()
	if met.Windows != 2 {
		t.Fatalf("ran %d windows, want 2", met.Windows)
	}
	if u.Tensor().NNZ() <= x.NNZ() {
		t.Fatalf("resident tensor did not grow: %d nnz", u.Tensor().NNZ())
	}
}

func appendTNS(t *testing.T, path string, x *tensor.COO) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Error(err)
		return
	}
	defer f.Close()
	if err := tensor.WriteTNS(f, x); err != nil {
		t.Error(err)
	}
}
