package stream

import (
	"os"
	"path/filepath"
	"testing"

	"cstf/internal/ckpt"
	"cstf/internal/tensor"
)

// TestPublisherRetainsVersions publishes several generations and checks the
// retention contract: the newest Keep versions exist next to the live file
// (readable, correct sequence numbers), older generations are pruned, and
// the live file always matches the newest retained version.
func TestPublisherRetainsVersions(t *testing.T) {
	x := tensor.GenLowRank(11, 2000, 3, 0.05, 40, 30, 20)
	u := trainedUpdater(t, x, 3, 3, 11)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	pub := NewPublisher(path, 11)
	pub.Keep = 2

	for i := 0; i < 5; i++ {
		v, err := pub.Publish(u, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if v != i+1 {
			t.Fatalf("publish %d returned version %d", i, v)
		}
	}

	vs, err := ckpt.ListVersions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] != 4 || vs[1] != 5 {
		t.Fatalf("retained versions %v, want [4 5]", vs)
	}
	for _, v := range vs {
		f, err := ckpt.Load(ckpt.VersionPath(path, v))
		if err != nil {
			t.Fatalf("retained version %d unreadable: %v", v, err)
		}
		if f.Iter != v {
			t.Fatalf("retained version %d carries iter %d", v, f.Iter)
		}
	}
	live, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if live.Iter != 5 {
		t.Fatalf("live file iter %d, want 5", live.Iter)
	}
}

// TestPublisherRetentionDisabled checks Keep < 0 leaves no version files.
func TestPublisherRetentionDisabled(t *testing.T) {
	x := tensor.GenLowRank(12, 2000, 3, 0.05, 40, 30, 20)
	u := trainedUpdater(t, x, 3, 3, 12)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.ckpt")
	pub := NewPublisher(path, 12)
	pub.Keep = -1
	for i := 0; i < 3; i++ {
		if _, err := pub.Publish(u, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := ckpt.ListVersions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("retention disabled but versions exist: %v", vs)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("stray files in publish dir: %v", ents)
	}
}
