// Package stream closes the ingest → retrain → hot-reload → serve loop:
// it turns the repository's batch pieces (cpals warm starts, internal/ckpt
// atomic checkpoints, the serve.Server watcher) into a continuously-fresh
// pipeline over a live stream of tensor nonzeros.
//
// The moving parts, in data-flow order:
//
//   - Source: emits new nonzeros — a deterministic seeded synthetic
//     generator (SyntheticSource) or a tail-follower over an append-only
//     .tns log (TailSource).
//   - Queue: a bounded ingest buffer decoupling the producer from the
//     updater, with Block (backpressure) and DropNewest (shed) policies.
//   - Updater: merges each micro-batched delta window into the resident COO
//     tensor — growing mode sizes as unseen indices appear — and refreshes
//     the CP factors with an ALS sweep restricted to the touched rows
//     (CDTF/SALS-style row-wise updates), with periodic full warm-started
//     sweeps to bound drift.
//   - Publisher: checkpoints each version through internal/ckpt's atomic
//     writes, so a `cstf-serve -watch` process hot-reloads it.
//   - Pipeline: wires the four together and reports per-window metrics
//     (events, update time, published version, freshness lag).
package stream

import (
	"fmt"
	"io"

	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// Source emits new tensor nonzeros. Next returns up to max fresh entries;
// an empty batch with a nil error means nothing is available right now
// (poll again later), io.EOF means the source is exhausted for good.
// Sources are not safe for concurrent use; the pipeline's single feeder
// goroutine owns one.
type Source interface {
	Next(max int) ([]tensor.Entry, error)
}

// SyntheticConfig sizes a SyntheticSource.
type SyntheticConfig struct {
	Seed  uint64  // determines the planted factors AND the event stream
	Dims  []int   // initial mode sizes
	Rank  int     // rank of the planted CP model the values are drawn from
	Noise float64 // stddev of additive Gaussian noise on each value
	Total int     // events before io.EOF; 0 streams forever

	// GrowEvery, when positive, appends one new index to a mode (round-robin
	// over modes) every GrowEvery-th event and emits that event at the new
	// index — so consumers see the mode sizes grow over time, as a live
	// user/item catalogue does.
	GrowEvery int
}

// SyntheticSource deterministically generates nonzeros of a planted
// low-rank CP model, the streaming analogue of tensor.GenLowRank: the same
// (seed, coordinate) always yields the same value, so a streamed tensor and
// a batch-generated one agree wherever they overlap.
type SyntheticSource struct {
	cfg     SyntheticConfig
	dims    []int
	src     *rng.SplitMix64
	emitted int
}

// NewSynthetic validates cfg and returns a source at event zero.
func NewSynthetic(cfg SyntheticConfig) (*SyntheticSource, error) {
	if len(cfg.Dims) < 1 || len(cfg.Dims) > tensor.MaxOrder {
		return nil, fmt.Errorf("stream: order %d out of range [1,%d]", len(cfg.Dims), tensor.MaxOrder)
	}
	for _, d := range cfg.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("stream: non-positive mode size %d", d)
		}
	}
	if cfg.Rank <= 0 {
		return nil, fmt.Errorf("stream: planted rank must be positive, got %d", cfg.Rank)
	}
	return &SyntheticSource{
		cfg:  cfg,
		dims: append([]int(nil), cfg.Dims...),
		src:  rng.New(cfg.Seed),
	}, nil
}

// Dims returns a copy of the current (possibly grown) mode sizes.
func (s *SyntheticSource) Dims() []int { return append([]int(nil), s.dims...) }

// Emitted returns how many events have been produced so far.
func (s *SyntheticSource) Emitted() int { return s.emitted }

// PlantedValue evaluates the planted rank-r CP model at one coordinate,
// using the same per-cell factor formula as tensor.GenLowRank.
func PlantedValue(seed uint64, rank int, idx []uint32) float64 {
	var v float64
	for col := 0; col < rank; col++ {
		p := 1.0
		for m, i := range idx {
			p *= 0.1 + rng.UniformAt(seed, uint64(m), uint64(i), uint64(col))
		}
		v += p
	}
	return v
}

// Next emits up to max events. The stream is a pure function of the config:
// two sources with equal configs produce identical event sequences.
func (s *SyntheticSource) Next(max int) ([]tensor.Entry, error) {
	if s.cfg.Total > 0 && s.emitted >= s.cfg.Total {
		return nil, io.EOF
	}
	if max <= 0 {
		return nil, nil
	}
	n := max
	if s.cfg.Total > 0 && s.emitted+n > s.cfg.Total {
		n = s.cfg.Total - s.emitted
	}
	out := make([]tensor.Entry, 0, n)
	for len(out) < n {
		s.emitted++
		var e tensor.Entry
		grow := s.cfg.GrowEvery > 0 && s.emitted%s.cfg.GrowEvery == 0
		growMode := -1
		if grow {
			growMode = (s.emitted / s.cfg.GrowEvery) % len(s.dims)
			s.dims[growMode]++
		}
		for m, d := range s.dims {
			if m == growMode {
				e.Idx[m] = uint32(d - 1) // the event lands on the brand-new index
				continue
			}
			e.Idx[m] = uint32(s.src.Intn(d))
		}
		e.Val = PlantedValue(s.cfg.Seed, s.cfg.Rank, e.Idx[:len(s.dims)])
		if s.cfg.Noise > 0 {
			e.Val += s.cfg.Noise * s.src.NormFloat64()
		}
		out = append(out, e)
	}
	return out, nil
}

// SliceSource replays a fixed slice of entries, `per` at a time — the
// deterministic source tests and the equivalence property use to stream a
// pre-generated static tensor window by window.
type SliceSource struct {
	entries []tensor.Entry
	per     int
	pos     int
}

// NewSliceSource returns a source replaying entries in order. per bounds
// how many each Next call yields regardless of max; per <= 0 means "max".
func NewSliceSource(entries []tensor.Entry, per int) *SliceSource {
	return &SliceSource{entries: entries, per: per}
}

// Next returns the next batch, or io.EOF once the slice is exhausted.
func (s *SliceSource) Next(max int) ([]tensor.Entry, error) {
	if s.pos >= len(s.entries) {
		return nil, io.EOF
	}
	n := max
	if s.per > 0 && s.per < n {
		n = s.per
	}
	if rem := len(s.entries) - s.pos; n > rem {
		n = rem
	}
	if n <= 0 {
		return nil, nil
	}
	out := s.entries[s.pos : s.pos+n]
	s.pos += n
	return out, nil
}
