package cpals

import (
	"context"
	"testing"

	"cstf/internal/la"
	"cstf/internal/tensor"
)

func parallelTestTensor(order int) *tensor.COO {
	dims := []int{40, 30, 20, 10}[:order]
	x := tensor.GenZipf(7, 3000, 0.6, dims...)
	x.DedupSum()
	return x
}

// The partitioned kernel must match the entry-order reference bitwise —
// stability of the mode index makes every output row's accumulation order
// identical — for every worker count.
func TestMTTKRPWorkersBitwiseMatchesReference(t *testing.T) {
	for _, order := range []int{3, 4} {
		x := parallelTestTensor(order)
		rank := 5
		factors := make([]*la.Dense, order)
		for n := range factors {
			factors[n] = InitFactor(3, n, x.Dims[n], rank)
		}
		for mode := 0; mode < order; mode++ {
			want := MTTKRP(x, mode, factors)
			for _, workers := range []int{1, 2, 8} {
				got := MTTKRPWorkers(x, mode, factors, workers, nil, nil)
				if d := la.MaxAbsDiff(got, want); d != 0 {
					t.Fatalf("order %d mode %d workers %d: differs bitwise by %g", order, mode, workers, d)
				}
			}
		}
	}
}

// Workspace reuse across modes and repeated calls must not leak state.
func TestMTTKRPWorkersWorkspaceReuse(t *testing.T) {
	x := parallelTestTensor(3)
	rank := 4
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = InitFactor(9, n, x.Dims[n], rank)
	}
	ws := &Workspace{}
	for pass := 0; pass < 3; pass++ {
		for mode := 0; mode < 3; mode++ {
			got := MTTKRPWorkers(x, mode, factors, 4, ws.Out(mode, x.Dims[mode], rank, 4), ws)
			want := MTTKRP(x, mode, factors)
			if d := la.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("pass %d mode %d: workspace reuse changed result by %g", pass, mode, d)
			}
		}
	}
}

// The parallel CSF kernel must match the serial CSF walk bitwise.
func TestMTTKRPCSFWorkersBitwise(t *testing.T) {
	for _, order := range []int{3, 4} {
		x := parallelTestTensor(order)
		rank := 5
		factors := make([]*la.Dense, order)
		for n := range factors {
			factors[n] = InitFactor(5, n, x.Dims[n], rank)
		}
		for mode, csf := range BuildCSFs(x) {
			want := MTTKRPCSF(csf, factors)
			for _, workers := range []int{1, 2, 8} {
				got := MTTKRPCSFWorkers(csf, factors, workers)
				if d := la.MaxAbsDiff(got, want); d != 0 {
					t.Fatalf("order %d mode %d workers %d: CSF parallel differs by %g", order, mode, workers, d)
				}
			}
		}
	}
}

// Full CP-ALS must be bitwise deterministic in the worker count: same
// lambda, same factors, same fit trajectory for Parallelism 1, 2, 8.
func TestSolveBitwiseAcrossParallelism(t *testing.T) {
	x := parallelTestTensor(3)
	base, err := Solve(x, Options{Rank: 4, MaxIters: 6, Seed: 11, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := Solve(x, Options{Rank: 4, MaxIters: 6, Seed: 11, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Iters != base.Iters {
			t.Fatalf("workers %d: iters %d vs %d", workers, got.Iters, base.Iters)
		}
		if d := la.VecMaxAbsDiff(got.Lambda, base.Lambda); d != 0 {
			t.Fatalf("workers %d: lambda differs bitwise by %g", workers, d)
		}
		for n := range base.Factors {
			if d := la.MaxAbsDiff(got.Factors[n], base.Factors[n]); d != 0 {
				t.Fatalf("workers %d: factor %d differs bitwise by %g", workers, n, d)
			}
		}
		for i := range base.Fits {
			if got.Fits[i] != base.Fits[i] {
				t.Fatalf("workers %d: fit[%d] %v vs %v", workers, i, got.Fits[i], base.Fits[i])
			}
		}
	}
}

func TestFitFromWorkersMatchesAcrossWorkers(t *testing.T) {
	x := parallelTestTensor(3)
	rank := 3
	factors := make([]*la.Dense, 3)
	grams := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = InitFactor(2, n, x.Dims[n], rank)
		grams[n] = factors[n].Gram()
	}
	lambda := []float64{1.5, 0.5, 2}
	m := MTTKRP(x, 2, factors)
	want := FitFromWorkers(x.Norm(), m, factors[2], lambda, grams, 1)
	for _, workers := range []int{2, 8} {
		if got := FitFromWorkers(x.Norm(), m, factors[2], lambda, grams, workers); got != want {
			t.Fatalf("workers %d: fit %v != %v", workers, got, want)
		}
	}
}

func TestSolveContextCancellation(t *testing.T) {
	x := parallelTestTensor(3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(x, Options{Rank: 3, MaxIters: 10, Seed: 1, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSolveOnIterationStops(t *testing.T) {
	x := parallelTestTensor(3)
	var calls []int
	res, err := Solve(x, Options{
		Rank: 3, MaxIters: 10, Seed: 1,
		OnIteration: func(iter int, fit float64) bool {
			calls = append(calls, iter)
			return iter >= 2
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 3 {
		t.Fatalf("stop after iteration 2 should leave Iters=3, got %d", res.Iters)
	}
	if len(calls) != 3 || calls[2] != 2 {
		t.Fatalf("callback iterations %v", calls)
	}
	if len(res.Fits) != 3 {
		t.Fatalf("fits %v", res.Fits)
	}
}
