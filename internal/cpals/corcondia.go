package cpals

import (
	"fmt"

	"cstf/internal/la"
	"cstf/internal/tensor"
)

// CORCONDIA — the core consistency diagnostic of Bro & Kiers — judges
// whether a rank-R CP model is appropriate for a tensor: it computes the
// Tucker core G that best explains X given the CP factors and measures how
// close G is to the superdiagonal identity a perfect CP model implies.
// 100 means ideal CP structure; values near or below 0 mean the rank is
// too high (the extra components model interactions, not parallel
// proportional profiles).
//
// For factors with full column rank, G = X ×_1 A1^+ ×_2 A2^+ ... — each
// mode's pseudo-inverse contracted against the tensor — computable in one
// pass over the nonzeros at O(nnz * R^N + sum(dims) * R^2).

// leftPinv returns the left pseudo-inverse (A^T A)^-1 A^T of a tall
// full-column-rank matrix, as an R x rows matrix.
func leftPinv(a *la.Dense) *la.Dense {
	gram := a.Gram()
	inv, err := la.SPDInverse(gram)
	if err != nil {
		inv = la.Pinv(gram) // rank-deficient: fall back to the eigen pinv
	}
	return la.Mul(inv, a.Transpose())
}

// CoreConsistency computes CORCONDIA for a decomposition of x. Supported
// for orders up to 4 (the core has R^N entries).
func CoreConsistency(x *tensor.COO, res *Result) (float64, error) {
	order := x.Order()
	if order > 4 {
		return 0, fmt.Errorf("cpals: core consistency supports order <= 4, got %d", order)
	}
	rank := len(res.Lambda)
	if rank == 0 {
		return 0, fmt.Errorf("cpals: empty decomposition")
	}

	// Fold lambda into the first factor's pseudo-inverse contraction:
	// model X ~ sum_r lambda_r a_r o b_r o c_r, so use A' = A*diag(lambda)
	// to make the ideal core the identity.
	pinvs := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		f := res.Factors[n]
		if n == 0 {
			scaled := f.Clone()
			for i := 0; i < scaled.Rows; i++ {
				row := scaled.Row(i)
				for r := range row {
					row[r] *= res.Lambda[r]
				}
			}
			f = scaled
		}
		pinvs[n] = leftPinv(f)
	}

	// Core: g[p,q,...] = sum_nnz val * prod_n pinv_n[coeff_n, idx_n].
	coreSize := 1
	for n := 0; n < order; n++ {
		coreSize *= rank
	}
	core := make([]float64, coreSize)
	coeff := make([]int, order)
	for i := range x.Entries {
		e := &x.Entries[i]
		// Enumerate the R^N core cells for this nonzero.
		for c := 0; c < coreSize; c++ {
			rem := c
			for n := order - 1; n >= 0; n-- {
				coeff[n] = rem % rank
				rem /= rank
			}
			p := e.Val
			for n := 0; n < order; n++ {
				p *= pinvs[n].At(coeff[n], int(e.Idx[n]))
			}
			core[c] += p
		}
	}

	// Compare with the superdiagonal identity.
	var num, den float64
	for c := 0; c < coreSize; c++ {
		rem := c
		diag := true
		first := -1
		for n := order - 1; n >= 0; n-- {
			d := rem % rank
			rem /= rank
			if first == -1 {
				first = d
			} else if d != first {
				diag = false
			}
		}
		target := 0.0
		if diag {
			target = 1.0
			den++
		}
		num += (core[c] - target) * (core[c] - target)
	}
	if den == 0 {
		return 0, fmt.Errorf("cpals: degenerate core")
	}
	return 100 * (1 - num/den), nil
}

// RankEstimate holds one candidate rank's diagnostics.
type RankEstimate struct {
	Rank            int
	Fit             float64
	CoreConsistency float64
}

// EstimateRank fits ranks 1..maxRank and returns the per-rank diagnostics
// plus the recommended rank: the largest rank whose core consistency stays
// above the threshold (Bro & Kiers suggest ~50; 80 is conservative).
// Supported for orders up to 4.
func EstimateRank(t *tensor.COO, maxRank int, opts Options, threshold float64) ([]RankEstimate, int, error) {
	if maxRank < 1 {
		return nil, 0, fmt.Errorf("cpals: maxRank must be >= 1")
	}
	var out []RankEstimate
	best := 1
	for r := 1; r <= maxRank; r++ {
		o := opts
		o.Rank = r
		res, err := Solve(t, o)
		if err != nil {
			return nil, 0, err
		}
		cc, err := CoreConsistency(t, res)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, RankEstimate{Rank: r, Fit: res.Fit(), CoreConsistency: cc})
		if cc >= threshold {
			best = r
		}
	}
	return out, best, nil
}
