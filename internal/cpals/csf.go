package cpals

import (
	"cstf/internal/la"
	"cstf/internal/tensor"
)

// MTTKRPCSF computes the MTTKRP along the CSF tree's ROOT mode
// (csf.ModeOrder[0]) using SPLATT's fiber-reuse kernel: each internal
// node's partial result — the sum of its children's contributions Hadamard
// the node's factor row — is computed once and shared by every nonzero in
// the subtree. For tensors with fiber locality this does substantially
// fewer vector operations than the per-nonzero COO loop (Algorithm 2).
//
// factors are indexed by TENSOR mode (not CSF level). The result has one
// row per root-mode index.
func MTTKRPCSF(csf *tensor.CSF, factors []*la.Dense) *la.Dense {
	order := len(csf.ModeOrder)
	if len(factors) != order {
		panic("cpals: factor count != tensor order")
	}
	rank := factors[0].Cols
	rootMode := csf.ModeOrder[0]
	out := la.NewDense(csf.Dims[rootMode], rank)
	if csf.NNZ() == 0 {
		return out
	}

	// One scratch accumulator per level below the root.
	bufs := make([][]float64, order)
	for l := 1; l < order; l++ {
		bufs[l] = make([]float64, rank)
	}

	walk := csfWalker(csf, factors, bufs)

	for root := int32(0); root < int32(len(csf.Idx[0])); root++ {
		dst := out.Row(int(csf.Idx[0][root]))
		for ch := csf.Ptr[0][root]; ch < csf.Ptr[0][root+1]; ch++ {
			walk(1, ch, dst)
		}
	}
	return out
}

// csfWalker returns the recursive fiber walk shared by the serial and
// parallel CSF kernels: walk(l, n, dst) adds node n's subtree contribution
// (at level l) into dst. The leaf level is iterated inline by its parent —
// one call per fiber instead of one per nonzero — which changes no
// floating-point operation order, only call overhead.
func csfWalker(csf *tensor.CSF, factors []*la.Dense, bufs [][]float64) func(l int, n int32, dst []float64) {
	order := len(csf.ModeOrder)
	leafF := factors[csf.ModeOrder[order-1]]
	var walk func(l int, n int32, dst []float64)
	walk = func(l int, n int32, dst []float64) {
		row := factors[csf.ModeOrder[l]].Row(int(csf.Idx[l][n]))
		if l == order-1 {
			// Only reached when the tree is 2-level (order == 2).
			la.VecAddScaled(dst, csf.Vals[n], row)
			return
		}
		// Internal: sum children into this level's scratch, then multiply
		// by this node's row once — the reuse COO cannot express.
		acc := bufs[l]
		if l == order-2 {
			// The first leaf initializes acc (v*row == 0 + v*row bitwise for
			// the nonzero values CSF stores), the rest accumulate.
			leafIdx := csf.Idx[order-1]
			ch, hi := csf.Ptr[l][n], csf.Ptr[l][n+1]
			row0 := leafF.Row(int(leafIdx[ch]))
			v0 := csf.Vals[ch]
			for i := range acc {
				acc[i] = v0 * row0[i]
			}
			for ch++; ch < hi; ch++ {
				la.VecAddScaled(acc, csf.Vals[ch], leafF.Row(int(leafIdx[ch])))
			}
		} else {
			for i := range acc {
				acc[i] = 0
			}
			for ch := csf.Ptr[l][n]; ch < csf.Ptr[l][n+1]; ch++ {
				walk(l+1, ch, acc)
			}
		}
		for i := range dst {
			dst[i] += acc[i] * row[i]
		}
	}
	return walk
}

// BuildCSFs constructs one CSF per mode (mode n as root, remaining modes
// in increasing order), the SPLATT "one tree per mode" configuration that
// serves a full CP-ALS iteration.
func BuildCSFs(t *tensor.COO) []*tensor.CSF {
	order := t.Order()
	out := make([]*tensor.CSF, order)
	for n := 0; n < order; n++ {
		mo := make([]int, 0, order)
		mo = append(mo, n)
		for m := 0; m < order; m++ {
			if m != n {
				mo = append(mo, m)
			}
		}
		out[n] = tensor.NewCSF(t, mo)
	}
	return out
}
