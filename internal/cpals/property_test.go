package cpals

import (
	"math"
	"testing"
	"testing/quick"

	"cstf/internal/la"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// MTTKRP is linear in the tensor: M(aX + bY) = a M(X) + b M(Y).
func TestMTTKRPLinearInTensor(t *testing.T) {
	f := func(seed uint64) bool {
		dims := []int{8, 7, 6}
		x := tensor.GenUniform(seed, 60, dims...)
		y := tensor.GenUniform(seed+1, 60, dims...)
		rank := 3
		factors := make([]*la.Dense, 3)
		for n := range factors {
			factors[n] = InitFactor(seed, n, dims[n], rank)
		}
		a, b := 2.0, -0.5

		// aX + bY as a COO tensor.
		sum := tensor.New(dims...)
		for i := range x.Entries {
			e := x.Entries[i]
			e.Val *= a
			sum.Entries = append(sum.Entries, e)
		}
		for i := range y.Entries {
			e := y.Entries[i]
			e.Val *= b
			sum.Entries = append(sum.Entries, e)
		}
		sum.DedupSum()

		for mode := 0; mode < 3; mode++ {
			mx := MTTKRP(x, mode, factors)
			my := MTTKRP(y, mode, factors)
			ms := MTTKRP(sum, mode, factors)
			for i := range ms.Data {
				want := a*mx.Data[i] + b*my.Data[i]
				if math.Abs(ms.Data[i]-want) > 1e-9*(1+math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// MTTKRP is equivariant under mode permutation: permuting the tensor's
// modes and the factor list permutes which mode's MTTKRP you get.
func TestMTTKRPPermutationEquivariance(t *testing.T) {
	f := func(seed uint64) bool {
		dims := []int{9, 8, 7}
		x := tensor.GenUniform(seed, 80, dims...)
		rank := 2
		factors := make([]*la.Dense, 3)
		for n := range factors {
			factors[n] = InitFactor(seed, n, dims[n], rank)
		}
		perm := []int{2, 0, 1}
		xp := x.Permute(perm)
		fp := []*la.Dense{factors[perm[0]], factors[perm[1]], factors[perm[2]]}

		// Mode m of the permuted tensor corresponds to mode perm[m] of the
		// original.
		for m := 0; m < 3; m++ {
			got := MTTKRP(xp, m, fp)
			want := MTTKRP(x, perm[m], factors)
			if la.MaxAbsDiff(got, want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// MTTKRP does not depend on the storage order of the nonzeros (beyond
// floating-point summation noise).
func TestMTTKRPEntryOrderInvariance(t *testing.T) {
	x := tensor.GenUniform(5, 300, 20, 15, 10)
	rank := 3
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = InitFactor(9, n, x.Dims[n], rank)
	}
	base := MTTKRP(x, 0, factors)

	// Reverse the entries.
	rev := x.Clone()
	for i, j := 0, len(rev.Entries)-1; i < j; i, j = i+1, j-1 {
		rev.Entries[i], rev.Entries[j] = rev.Entries[j], rev.Entries[i]
	}
	got := MTTKRP(rev, 0, factors)
	if d := la.MaxAbsDiff(base, got); d > 1e-9 {
		t.Fatalf("entry order changed MTTKRP by %g", d)
	}

	// Deterministic shuffle.
	sh := x.Clone()
	src := rng.New(11)
	for i := len(sh.Entries) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		sh.Entries[i], sh.Entries[j] = sh.Entries[j], sh.Entries[i]
	}
	got = MTTKRP(sh, 0, factors)
	if d := la.MaxAbsDiff(base, got); d > 1e-9 {
		t.Fatalf("shuffled entries changed MTTKRP by %g", d)
	}
}

// Scaling the tensor scales the final lambda and leaves the normalized
// factors unchanged (CP-ALS homogeneity).
func TestSolveScaleHomogeneity(t *testing.T) {
	x := tensor.GenUniform(7, 400, 15, 12, 10)
	opts := Options{Rank: 2, MaxIters: 4, Seed: 3}
	base, err := Solve(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	scaled := x.Clone()
	scaled.Scale(3)
	got, err := Solve(scaled, opts)
	if err != nil {
		t.Fatal(err)
	}
	for r := range base.Lambda {
		if math.Abs(got.Lambda[r]-3*base.Lambda[r]) > 1e-6*(1+3*base.Lambda[r]) {
			t.Fatalf("lambda not scaled: %v vs %v", got.Lambda, base.Lambda)
		}
	}
	for n := range base.Factors {
		if d := la.MaxAbsDiff(got.Factors[n], base.Factors[n]); d > 1e-6 {
			t.Fatalf("normalized factor %d changed under scaling by %g", n, d)
		}
	}
	// Fit is scale-invariant.
	if math.Abs(got.Fit()-base.Fit()) > 1e-9 {
		t.Fatalf("fit changed under scaling: %v vs %v", got.Fit(), base.Fit())
	}
}

// The MTTKRP result contracts correctly: sum_i M(i,r) A(i,r) must equal
// <X, component-r model> for every r — the identity the fit computation
// rests on.
func TestMTTKRPFitIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		dims := []int{6, 5, 4}
		x := tensor.GenUniform(seed, 50, dims...)
		rank := 2
		factors := make([]*la.Dense, 3)
		for n := range factors {
			factors[n] = InitFactor(seed, n, dims[n], rank)
		}
		m := MTTKRP(x, 0, factors)
		for r := 0; r < rank; r++ {
			var viaM float64
			for i := 0; i < dims[0]; i++ {
				viaM += m.At(i, r) * factors[0].At(i, r)
			}
			var direct float64
			for i := range x.Entries {
				e := &x.Entries[i]
				direct += e.Val * factors[0].At(int(e.Idx[0]), r) *
					factors[1].At(int(e.Idx[1]), r) * factors[2].At(int(e.Idx[2]), r)
			}
			if math.Abs(viaM-direct) > 1e-9*(1+math.Abs(direct)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
