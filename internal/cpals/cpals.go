// Package cpals provides the shared mathematics of CANDECOMP/PARAFAC
// alternating least squares (Algorithm 1 of the paper) and a serial
// reference implementation of MTTKRP (Algorithm 2) and CP-ALS. The
// distributed solvers in internal/core and internal/bigtensor are validated
// against this package: same deterministic initialization, same update
// order, same normalization, so their factors must agree to rounding.
package cpals

import (
	"context"
	"fmt"
	"math"

	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// FactorInitValue returns element (row, col) of the initial factor matrix
// for the given mode. It is a pure function of (seed, mode, row, col), so
// every node of a distributed solver — and the serial reference — can
// materialize any row without communication. Values are uniform in
// [0.1, 1.1): bounded away from zero so initial gram matrices are
// well-conditioned.
func FactorInitValue(seed uint64, mode, row, col int) float64 {
	return 0.1 + rng.UniformAt(seed, 0xFAC70, uint64(mode), uint64(row), uint64(col))
}

// InitFactor materializes the full initial factor matrix for a mode.
func InitFactor(seed uint64, mode, rows, rank int) *la.Dense {
	m := la.NewDense(rows, rank)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for r := range row {
			row[r] = FactorInitValue(seed, mode, i, r)
		}
	}
	return m
}

// MTTKRP computes the matricized-tensor times Khatri-Rao product along
// `mode` directly on COO nonzeros (Algorithm 2 generalized to N-order):
// for each nonzero, the Hadamard product of the other modes' factor rows is
// scaled by the value and accumulated into the output row. factors[mode] is
// not read. The result has dims[mode] rows.
func MTTKRP(t *tensor.COO, mode int, factors []*la.Dense) *la.Dense {
	order := t.Order()
	if len(factors) != order {
		panic("cpals: factor count != tensor order")
	}
	rank := factors[0].Cols
	out := la.NewDense(t.Dims[mode], rank)
	tmp := make([]float64, rank)
	for i := range t.Entries {
		e := &t.Entries[i]
		for r := range tmp {
			tmp[r] = e.Val
		}
		for n := 0; n < order; n++ {
			if n == mode {
				continue
			}
			la.VecMulInto(tmp, factors[n].Row(int(e.Idx[n])))
		}
		la.VecAdd(out.Row(int(e.Idx[mode])), tmp)
	}
	return out
}

// MTTKRPFlops returns the floating-point operations of one COO MTTKRP
// according to the paper's accounting (Table 4): (order)*nnz*R for 3rd
// order = 3*nnz*R — one Hadamard scale per non-target mode, the scaling by
// the tensor value, and the row accumulation.
func MTTKRPFlops(nnz, order, rank int) float64 {
	return float64(order) * float64(nnz) * float64(rank)
}

// Result is a computed CP decomposition [lambda; A_1 ... A_N] plus
// per-iteration fit diagnostics.
type Result struct {
	Lambda  []float64   // column weights, length R
	Factors []*la.Dense // one normalized factor matrix per mode
	Fits    []float64   // model fit after each completed iteration
	Iters   int         // iterations actually run
}

// Fit returns the final fit, or 0 if no iterations ran.
func (r *Result) Fit() float64 {
	if len(r.Fits) == 0 {
		return 0
	}
	return r.Fits[len(r.Fits)-1]
}

// ReconstructAt evaluates the CP model at one coordinate:
// sum_r lambda_r * prod_n A_n(idx_n, r).
func (r *Result) ReconstructAt(idx ...int) float64 {
	var s float64
	rank := len(r.Lambda)
	for c := 0; c < rank; c++ {
		p := r.Lambda[c]
		for n, i := range idx {
			p *= r.Factors[n].At(i, c)
		}
		s += p
	}
	return s
}

// Options configures a CP-ALS run.
type Options struct {
	Rank     int     // R, the decomposition rank
	MaxIters int     // maximum ALS iterations
	Tol      float64 // stop when fit improves less than Tol (0 disables)
	Seed     uint64  // deterministic initialization seed

	// Parallelism is the number of worker goroutines the shared-memory
	// kernels (MTTKRP, grams, normalization, fit reductions) fan out to.
	// <= 0 selects runtime.GOMAXPROCS(0). Results are bitwise identical
	// for every value.
	Parallelism int

	// CSFKernel switches the MTTKRP from the per-nonzero COO loop to the
	// SPLATT fiber-reuse kernel over per-mode CSF trees (built once before
	// the first iteration). On tensors with fiber locality this does
	// substantially fewer vector operations. The factored arithmetic
	// evaluates each output row as a different association of the same sum,
	// so results match the COO kernel only to floating-point tolerance —
	// but remain bitwise identical across Parallelism values, and are the
	// bitwise reference for distributed runs with the CSF kernel enabled.
	// The tensor must be duplicate-free (tensor.NewCSF enforces it).
	CSFKernel bool

	// Ctx, when non-nil, is checked between ALS iterations; a cancelled
	// context aborts the solve with the context's error. Every solver in
	// this repository (serial, COO, QCOO, BigTensor) honors it.
	Ctx context.Context

	// OnIteration, when non-nil, is invoked after each completed ALS
	// iteration with the iteration number (0-based) and the fit; a true
	// return stops the solve early, keeping the factors computed so far.
	// Solvers without per-iteration fits (BigTensor) report fit 0.
	OnIteration func(iter int, fit float64) (stop bool)

	// StartIter resumes an interrupted solve: the iteration loop runs from
	// StartIter to MaxIters. A positive StartIter requires InitFactors (the
	// normalized factors saved after iteration StartIter-1) and InitLambda.
	StartIter int

	// InitFactors, when non-nil, replaces the seeded initialization with the
	// given normalized factor matrices (one per mode, cloned before use).
	// Together with InitLambda and StartIter it restores a checkpointed
	// solve: because ALS is a deterministic fixed-point iteration, resuming
	// from the saved factors follows the same trajectory as the original run.
	InitFactors []*la.Dense
	InitLambda  []float64 // column weights matching InitFactors, length Rank

	// InitFits pre-seeds Result.Fits with the per-iteration fits of the
	// already-completed iterations 0..StartIter-1, so convergence checks and
	// OnIteration indexing behave exactly as in an uninterrupted run.
	InitFits []float64

	// CheckpointEvery, when positive alongside OnCheckpoint, invokes the
	// checkpoint hook after every CheckpointEvery-th completed iteration.
	CheckpointEvery int

	// OnCheckpoint receives the live solver state after iteration iter-1
	// completed (iter is the count of completed iterations, i.e. the
	// StartIter a resumed run should use). The factors and lambda alias the
	// solver's working storage: the hook must copy what it keeps. A non-nil
	// error aborts the solve.
	OnCheckpoint func(iter int, lambda []float64, factors []*la.Dense, fits []float64) error
}

// Validate normalizes and checks the options against a tensor.
func (o *Options) Validate(t *tensor.COO) error {
	if o.Rank <= 0 {
		return fmt.Errorf("cpals: rank must be positive, got %d", o.Rank)
	}
	if o.MaxIters <= 0 {
		return fmt.Errorf("cpals: MaxIters must be positive, got %d", o.MaxIters)
	}
	if t.NNZ() == 0 {
		return fmt.Errorf("cpals: tensor has no nonzeros")
	}
	if o.StartIter < 0 {
		return fmt.Errorf("cpals: StartIter must be non-negative, got %d", o.StartIter)
	}
	if o.StartIter > 0 && o.InitFactors == nil {
		return fmt.Errorf("cpals: StartIter %d requires InitFactors", o.StartIter)
	}
	if o.InitFactors != nil {
		if len(o.InitFactors) != t.Order() {
			return fmt.Errorf("cpals: %d InitFactors for an order-%d tensor", len(o.InitFactors), t.Order())
		}
		for n, f := range o.InitFactors {
			if f == nil || f.Rows != t.Dims[n] || f.Cols != o.Rank {
				return fmt.Errorf("cpals: InitFactors[%d] must be %dx%d", n, t.Dims[n], o.Rank)
			}
		}
		if len(o.InitLambda) != o.Rank {
			return fmt.Errorf("cpals: InitLambda length %d != rank %d", len(o.InitLambda), o.Rank)
		}
	}
	return nil
}

// Workers resolves the effective worker count.
func (o *Options) Workers() int { return par.Workers(o.Parallelism) }

// Interrupted reports the context's error if Ctx is set and cancelled.
// Solvers call it between ALS iterations.
func (o *Options) Interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// ModelNormSq returns ||X_hat||_F^2 = lambda^T (hadamard of all grams) lambda.
func ModelNormSq(lambda []float64, grams []*la.Dense) float64 {
	rank := len(lambda)
	h := la.Identity(rank)
	for i := range h.Data {
		h.Data[i] = 1
	}
	for _, g := range grams {
		la.HadamardInto(h, h, g)
	}
	return la.VecDot(lambda, la.MatVec(h, lambda))
}

// FitFrom computes the CP-ALS fit 1 - ||X - X_hat|| / ||X|| using the
// standard identity
//
//	||X - X_hat||^2 = ||X||^2 + ||X_hat||^2 - 2 <X, X_hat>
//	<X, X_hat>      = sum_{i,r} M(i,r) * A(i,r) * lambda_r
//
// where M is the MTTKRP result of the last updated mode and A that mode's
// normalized factor. This avoids a pass over the tensor (the SPLATT trick);
// all three quantities already exist at the end of an ALS iteration.
func FitFrom(normX float64, lastM, lastFactor *la.Dense, lambda []float64, grams []*la.Dense) float64 {
	inner := 0.0
	for i := 0; i < lastM.Rows; i++ {
		mrow := lastM.Row(i)
		arow := lastFactor.Row(i)
		for r := range mrow {
			inner += mrow[r] * arow[r] * lambda[r]
		}
	}
	return fitFromInner(normX, inner, lambda, grams)
}

// FitFromInner finishes the fit computation once <X, X_hat> is known. The
// distributed runtime computes the inner product as a block-ordered
// reduction over the wire and calls this, matching FitFromWorkers bitwise.
func FitFromInner(normX, inner float64, lambda []float64, grams []*la.Dense) float64 {
	return fitFromInner(normX, inner, lambda, grams)
}

// fitFromInner finishes the fit computation once <X, X_hat> is known.
func fitFromInner(normX, inner float64, lambda []float64, grams []*la.Dense) float64 {
	modelSq := ModelNormSq(lambda, grams)
	residSq := normX*normX + modelSq - 2*inner
	if residSq < 0 {
		residSq = 0
	}
	if normX == 0 {
		return 0
	}
	return 1 - math.Sqrt(residSq)/normX
}

// HadamardOfGramsExcept returns the Hadamard product of every gram matrix
// except the one for `mode` — the V matrix of Algorithm 1 whose
// pseudo-inverse post-multiplies the MTTKRP result. grams[mode] may be nil
// (callers that skip computing the excluded gram).
func HadamardOfGramsExcept(grams []*la.Dense, mode int) *la.Dense {
	rank := grams[(mode+1)%len(grams)].Rows
	v := la.NewDense(rank, rank)
	for i := range v.Data {
		v.Data[i] = 1
	}
	for n, g := range grams {
		if n == mode {
			continue
		}
		la.HadamardInto(v, v, g)
	}
	return v
}

// Solve runs shared-memory CP-ALS (Algorithm 1 generalized to N-order
// tensors). It is the correctness reference for the distributed solvers and
// is exact CP-ALS: MTTKRP, pseudo-inverse of the gram Hadamard, column
// normalization, gram refresh, convergence on fit. Every numeric stage fans
// out over opts.Parallelism worker goroutines with deterministic blocked
// reductions, so the factors are bitwise identical for every worker count.
func Solve(t *tensor.COO, opts Options) (*Result, error) {
	if err := opts.Validate(t); err != nil {
		return nil, err
	}
	order := t.Order()
	rank := opts.Rank
	w := opts.Workers()

	factors := make([]*la.Dense, order)
	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		if opts.InitFactors != nil {
			factors[n] = opts.InitFactors[n].Clone()
		} else {
			factors[n] = initFactorWorkers(opts.Seed, n, t.Dims[n], rank, w)
		}
		grams[n] = la.GramParallel(factors[n], w)
	}

	normX := t.Norm()
	res := &Result{Factors: factors, Iters: opts.StartIter}
	res.Fits = append(res.Fits, opts.InitFits...)
	lambda := la.VecClone(opts.InitLambda)
	var lastM *la.Dense
	ws := &Workspace{}
	var csfs []*tensor.CSF
	if opts.CSFKernel {
		csfs = BuildCSFs(t)
	}

	for it := opts.StartIter; it < opts.MaxIters; it++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for n := 0; n < order; n++ {
			var m *la.Dense
			if csfs != nil {
				m = MTTKRPCSFWorkers(csfs[n], factors, w)
			} else {
				m = MTTKRPWorkers(t, n, factors, w, ws.Out(n, t.Dims[n], rank, w), ws)
			}
			v := HadamardOfGramsExcept(grams, n)
			pinv := la.Pinv(v)
			// A_n = M * pinv(V), row by row.
			a := factors[n]
			la.RowBlocksApply(w, a.Rows, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					la.VecMatInto(a.Row(i), m.Row(i), pinv)
				}
			})
			lambda = la.NormalizeColumnsParallel(a, w)
			grams[n] = la.GramParallel(a, w)
			lastM = m
		}
		res.Iters = it + 1
		fit := FitFromWorkers(normX, lastM, factors[order-1], lambda, grams, w)
		res.Fits = append(res.Fits, fit)
		if opts.OnIteration != nil && opts.OnIteration(it, fit) {
			break
		}
		if opts.CheckpointEvery > 0 && opts.OnCheckpoint != nil && (it+1)%opts.CheckpointEvery == 0 {
			if err := opts.OnCheckpoint(it+1, lambda, factors, res.Fits); err != nil {
				return nil, err
			}
		}
		if nf := len(res.Fits); opts.Tol > 0 && nf > 1 {
			if math.Abs(res.Fits[nf-1]-res.Fits[nf-2]) < opts.Tol {
				break
			}
		}
	}
	// The MTTKRP outputs of the final iteration alias the workspace; the
	// last one feeds the fit above and factor updates have already
	// consumed the rest, so nothing in Result retains ws.
	res.Lambda = lambda
	return res, nil
}

// initFactorWorkers fills the deterministic initial factor matrix on the
// worker pool; FactorInitValue is elementwise, so any row partitioning
// yields the identical matrix.
func initFactorWorkers(seed uint64, mode, rows, rank, workers int) *la.Dense {
	m := la.NewDense(rows, rank)
	la.RowBlocksApply(workers, rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for r := range row {
				row[r] = FactorInitValue(seed, mode, i, r)
			}
		}
	})
	return m
}

// SolveBest runs CP-ALS `restarts` times with different initialization
// seeds (derived deterministically from opts.Seed) and returns the result
// with the best fit. CP-ALS converges to local optima that depend on the
// starting point; multiple restarts are the standard remedy.
func SolveBest(t *tensor.COO, opts Options, restarts int) (*Result, error) {
	if restarts <= 0 {
		return nil, fmt.Errorf("cpals: restarts must be positive, got %d", restarts)
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		o := opts
		o.Seed = rng.Hash64(opts.Seed, uint64(r))
		res, err := Solve(t, o)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Fit() > best.Fit() {
			best = res
		}
	}
	return best, nil
}
