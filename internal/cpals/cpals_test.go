package cpals

import (
	"math"
	"testing"
	"testing/quick"

	"cstf/internal/la"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

func TestFactorInitDeterministicAndBounded(t *testing.T) {
	a := InitFactor(42, 1, 50, 4)
	b := InitFactor(42, 1, 50, 4)
	if la.MaxAbsDiff(a, b) != 0 {
		t.Fatal("initialization must be deterministic")
	}
	c := InitFactor(43, 1, 50, 4)
	if la.MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds must differ")
	}
	for _, v := range a.Data {
		if v < 0.1 || v >= 1.1 {
			t.Fatalf("init value %v outside [0.1, 1.1)", v)
		}
	}
	// Element-wise consistency with FactorInitValue.
	if a.At(3, 2) != FactorInitValue(42, 1, 3, 2) {
		t.Fatal("InitFactor must agree with FactorInitValue")
	}
}

// MTTKRP against the textbook definition M = X(n) * (KhatriRao of others in
// reverse mode order), on a small dense-ish tensor.
func TestMTTKRPMatchesUnfoldedDefinition(t *testing.T) {
	x := tensor.GenUniform(3, 60, 4, 5, 6)
	rank := 3
	factors := []*la.Dense{
		InitFactor(1, 0, 4, rank),
		InitFactor(1, 1, 5, rank),
		InitFactor(1, 2, 6, rank),
	}
	for mode := 0; mode < 3; mode++ {
		got := MTTKRP(x, mode, factors)

		// Build the explicit matricization and Khatri-Rao product. With the
		// Kolda convention col = sum_{k!=mode} i_k * stride_k (stride grows
		// with k), the KR product must be (A_last (*) ... (*) A_first)
		// excluding mode.
		var kr *la.Dense
		for n := 2; n >= 0; n-- {
			if n == mode {
				continue
			}
			if kr == nil {
				kr = factors[n]
			} else {
				kr = la.KhatriRao(kr, factors[n])
			}
		}
		want := la.NewDense(x.Dims[mode], rank)
		for _, me := range x.Matricize(mode) {
			row := want.Row(int(me.Row))
			krRow := kr.Row(int(me.Col))
			la.VecAddScaled(row, me.Val, krRow)
		}
		if d := la.MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("mode %d: MTTKRP differs from definition by %g", mode, d)
		}
	}
}

func TestMTTKRPFourthOrder(t *testing.T) {
	x := tensor.GenUniform(5, 80, 3, 4, 5, 6)
	rank := 2
	factors := make([]*la.Dense, 4)
	for n := 0; n < 4; n++ {
		factors[n] = InitFactor(2, n, x.Dims[n], rank)
	}
	got := MTTKRP(x, 1, factors)
	// Check one output row by brute force.
	want := la.NewDense(x.Dims[1], rank)
	for i := range x.Entries {
		e := &x.Entries[i]
		for r := 0; r < rank; r++ {
			p := e.Val
			for n := 0; n < 4; n++ {
				if n != 1 {
					p *= factors[n].At(int(e.Idx[n]), r)
				}
			}
			want.Data[int(e.Idx[1])*rank+r] += p
		}
	}
	if d := la.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("4th-order MTTKRP differs by %g", d)
	}
}

func TestMTTKRPFlops(t *testing.T) {
	if MTTKRPFlops(100, 3, 2) != 600 {
		t.Fatalf("flops accounting: %v", MTTKRPFlops(100, 3, 2))
	}
}

func TestHadamardOfGramsExcept(t *testing.T) {
	g0 := la.NewDenseFrom(2, 2, []float64{1, 2, 3, 4})
	g1 := la.NewDenseFrom(2, 2, []float64{5, 6, 7, 8})
	g2 := la.NewDenseFrom(2, 2, []float64{9, 10, 11, 12})
	v := HadamardOfGramsExcept([]*la.Dense{g0, g1, g2}, 1)
	want := la.Hadamard(g0, g2)
	if la.MaxAbsDiff(v, want) != 0 {
		t.Fatal("wrong grams multiplied")
	}
}

func TestSolveRecoversPlantedLowRankTensor(t *testing.T) {
	x := tensor.GenLowRankDense(7, 3, 0, 20, 15, 12)
	res, err := Solve(x, Options{Rank: 3, MaxIters: 120, Seed: 99, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.999 {
		t.Fatalf("fit %v on noiseless rank-3 tensor; expected near-perfect recovery (fits: %v)",
			res.Fit(), res.Fits[:minInt(5, len(res.Fits))])
	}
	// Reconstruction must match actual entries closely.
	var worst float64
	for i := 0; i < 50; i++ {
		e := &x.Entries[i]
		got := res.ReconstructAt(int(e.Idx[0]), int(e.Idx[1]), int(e.Idx[2]))
		if d := math.Abs(got - e.Val); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst pointwise reconstruction error %v", worst)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSolveFitNonDecreasingOnNoisyTensor(t *testing.T) {
	x := tensor.GenLowRank(8, 3000, 2, 0.05, 25, 25, 25)
	res, err := Solve(x, Options{Rank: 2, MaxIters: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Fits); i++ {
		if res.Fits[i] < res.Fits[i-1]-1e-9 {
			t.Fatalf("fit decreased at iteration %d: %v -> %v", i, res.Fits[i-1], res.Fits[i])
		}
	}
}

func TestSolveFourthOrder(t *testing.T) {
	x := tensor.GenLowRankDense(9, 2, 0, 9, 8, 7, 6)
	res, err := Solve(x, Options{Rank: 2, MaxIters: 80, Seed: 3, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.995 {
		t.Fatalf("4th-order fit %v", res.Fit())
	}
}

func TestSolveConvergenceStopsEarly(t *testing.T) {
	x := tensor.GenLowRank(11, 2000, 2, 0, 20, 20, 20)
	res, err := Solve(x, Options{Rank: 2, MaxIters: 500, Seed: 1, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters >= 500 {
		t.Fatal("tolerance should stop well before 500 iterations")
	}
}

func TestSolveOptionValidation(t *testing.T) {
	x := tensor.GenUniform(1, 50, 5, 5, 5)
	if _, err := Solve(x, Options{Rank: 0, MaxIters: 5}); err == nil {
		t.Fatal("rank 0 must error")
	}
	if _, err := Solve(x, Options{Rank: 2, MaxIters: 0}); err == nil {
		t.Fatal("0 iterations must error")
	}
	empty := tensor.New(3, 3, 3)
	if _, err := Solve(empty, Options{Rank: 2, MaxIters: 5}); err == nil {
		t.Fatal("empty tensor must error")
	}
}

func TestNormalizationInvariant(t *testing.T) {
	// After Solve, every factor column must have unit norm (or be zero),
	// with the magnitude carried by lambda.
	x := tensor.GenUniform(13, 800, 12, 10, 8)
	res, err := Solve(x, Options{Rank: 4, MaxIters: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for n, f := range res.Factors {
		for _, norm := range f.ColumnNorms() {
			if norm > 1e-12 && math.Abs(norm-1) > 1e-9 {
				t.Fatalf("mode %d column norm %v, want 1", n, norm)
			}
		}
	}
	for _, l := range res.Lambda {
		if l < 0 {
			t.Fatalf("negative lambda %v", l)
		}
	}
}

func TestModelNormSqMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rank := 2
		dims := []int{4, 3, 5}
		factors := make([]*la.Dense, 3)
		grams := make([]*la.Dense, 3)
		for n := range factors {
			factors[n] = InitFactor(seed, n, dims[n], rank)
			grams[n] = factors[n].Gram()
		}
		lambda := []float64{1.5, 0.5}
		got := ModelNormSq(lambda, grams)
		// Brute force over the full dense reconstruction.
		var want float64
		for i := 0; i < dims[0]; i++ {
			for j := 0; j < dims[1]; j++ {
				for k := 0; k < dims[2]; k++ {
					var v float64
					for r := 0; r < rank; r++ {
						v += lambda[r] * factors[0].At(i, r) * factors[1].At(j, r) * factors[2].At(k, r)
					}
					want += v * v
				}
			}
		}
		return math.Abs(got-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFitFromPerfectModel(t *testing.T) {
	// Build a tensor that IS a CP model over all coordinates; fit must be ~1
	// when evaluated with the generating factors.
	rank := 2
	dims := []int{4, 3, 5}
	factors := make([]*la.Dense, 3)
	grams := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = InitFactor(77, n, dims[n], rank)
	}
	lambda := make([]float64, rank)
	for n := range factors {
		l := factors[n].NormalizeColumns()
		for r := range lambda {
			if n == 0 {
				lambda[r] = l[r]
			} else {
				lambda[r] *= l[r]
			}
		}
		grams[n] = factors[n].Gram()
	}
	x := tensor.New(dims...)
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				var v float64
				for r := 0; r < rank; r++ {
					v += lambda[r] * factors[0].At(i, r) * factors[1].At(j, r) * factors[2].At(k, r)
				}
				x.Append(v, i, j, k)
			}
		}
	}
	m := MTTKRP(x, 2, factors)
	// Scale M rows as CP-ALS would have just before normalization: the
	// "last factor" here is already normalized, so M corresponds directly.
	fit := FitFrom(x.Norm(), m, factors[2], lambda, grams)
	if math.Abs(fit-1) > 1e-9 {
		t.Fatalf("fit of exact model = %v, want 1", fit)
	}
}

func TestSolveBestPicksHighestFit(t *testing.T) {
	x := tensor.GenUniform(3, 800, 20, 18, 16)
	opts := Options{Rank: 3, MaxIters: 8, Seed: 5}
	best, err := SolveBest(x, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The best of 4 restarts must be at least as good as each individual
	// restart with the derived seeds.
	for r := 0; r < 4; r++ {
		o := opts
		o.Seed = rng.Hash64(opts.Seed, uint64(r))
		res, err := Solve(x, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fit() > best.Fit()+1e-12 {
			t.Fatalf("restart %d fit %v beats SolveBest %v", r, res.Fit(), best.Fit())
		}
	}
	if _, err := SolveBest(x, opts, 0); err == nil {
		t.Fatal("0 restarts must error")
	}
}
