package cpals

import (
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/tensor"
)

// Shared-memory parallel MTTKRP. The tensor's cached per-mode index
// (tensor.ModeIndex) partitions the nonzeros into contiguous OUTPUT-ROW
// ranges, so each worker owns a disjoint slice of the result and no
// synchronization is needed on the accumulation path. Because the index is
// a stable sort, the entries of one output row are visited in their
// original storage order no matter how rows are grouped into workers: the
// result is bitwise identical for every worker count, and bitwise identical
// to the entry-order reference MTTKRP.

// Workspace holds the reusable scratch of a CP-ALS run: one output matrix
// per mode (reused across iterations instead of reallocated order×iters
// times) and one length-R Hadamard accumulator per worker range. A zero
// Workspace is ready to use; it is NOT safe for concurrent runs — give each
// concurrent Solve its own.
type Workspace struct {
	outs []*la.Dense
	tmps [][]float64
}

// Out returns the cached rows×rank output matrix for `mode`, zeroed.
// The zeroing fans out over the same worker pool as the kernels.
func (w *Workspace) Out(mode, rows, rank, workers int) *la.Dense {
	for len(w.outs) <= mode {
		w.outs = append(w.outs, nil)
	}
	m := w.outs[mode]
	if m == nil || m.Rows != rows || m.Cols != rank {
		m = la.NewDense(rows, rank)
		w.outs[mode] = m
		return m
	}
	la.RowBlocksApply(workers, rows, func(lo, hi int) {
		d := m.Data[lo*rank : hi*rank]
		for i := range d {
			d[i] = 0
		}
	})
	return m
}

// tmp returns the length-`rank` scratch vector for worker range k.
func (w *Workspace) tmp(k, rank int) []float64 {
	for len(w.tmps) <= k {
		w.tmps = append(w.tmps, nil)
	}
	if cap(w.tmps[k]) < rank {
		w.tmps[k] = make([]float64, rank)
	}
	w.tmps[k] = w.tmps[k][:rank]
	return w.tmps[k]
}

// MTTKRPWorkers computes the mode-n MTTKRP on up to `workers` goroutines,
// writing into out (allocated when nil; must be t.Dims[mode]×rank and
// zeroed otherwise). ws may be nil for one-shot calls. The result is
// bitwise identical to MTTKRP for every worker count.
func MTTKRPWorkers(t *tensor.COO, mode int, factors []*la.Dense, workers int, out *la.Dense, ws *Workspace) *la.Dense {
	order := t.Order()
	if len(factors) != order {
		panic("cpals: factor count != tensor order")
	}
	rank := factors[0].Cols
	if out == nil {
		out = la.NewDense(t.Dims[mode], rank)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	workers = par.Workers(workers)
	mi := t.ModeIndex(mode)
	ranges := mi.Ranges(workers)
	for k := range ranges {
		ws.tmp(k, rank) // materialize scratch before the fan-out
	}
	par.Run(workers, len(ranges), func(k int) {
		r := ranges[k]
		tmp := ws.tmps[k]
		for p := r.Lo; p < r.Hi; p++ {
			e := &t.Entries[mi.Perm[p]]
			for c := range tmp {
				tmp[c] = e.Val
			}
			for n := 0; n < order; n++ {
				if n == mode {
					continue
				}
				la.VecMulInto(tmp, factors[n].Row(int(e.Idx[n])))
			}
			la.VecAdd(out.Row(int(e.Idx[mode])), tmp)
		}
	})
	return out
}

// MTTKRPCSFWorkers is the parallel SPLATT-style CSF kernel: root fibers are
// split into contiguous chunks (balanced by child-fiber count) and each
// chunk is walked independently. Root indices are unique within a CSF tree,
// so chunks write disjoint output rows; per-root arithmetic is unchanged,
// so the result is bitwise identical to MTTKRPCSF for every worker count.
func MTTKRPCSFWorkers(csf *tensor.CSF, factors []*la.Dense, workers int) *la.Dense {
	order := len(csf.ModeOrder)
	if len(factors) != order {
		panic("cpals: factor count != tensor order")
	}
	rank := factors[0].Cols
	rootMode := csf.ModeOrder[0]
	out := la.NewDense(csf.Dims[rootMode], rank)
	nroots := len(csf.Idx[0])
	if csf.NNZ() == 0 || nroots == 0 {
		return out
	}
	workers = par.Workers(workers)
	if workers > nroots {
		workers = nroots
	}

	// Chunk roots by cumulative level-1 fiber count so skewed tensors
	// (a few huge slices) still balance. Like the serial CSF kernel this
	// assumes order >= 2.
	chunks := make([][2]int, 0, workers)
	total := int(csf.Ptr[0][nroots])
	lo := 0
	for p := 0; p < workers && lo < nroots; p++ {
		done := int(csf.Ptr[0][lo])
		target := done + (total-done+workers-p-1)/(workers-p)
		hi := lo
		for hi < nroots && int(csf.Ptr[0][hi+1]) <= target {
			hi++
		}
		if hi == lo {
			hi = lo + 1
		}
		chunks = append(chunks, [2]int{lo, hi})
		lo = hi
	}

	par.Run(workers, len(chunks), func(k int) {
		bufs := make([][]float64, order)
		for l := 1; l < order; l++ {
			bufs[l] = make([]float64, rank)
		}
		walk := csfWalker(csf, factors, bufs)
		for root := int32(chunks[k][0]); root < int32(chunks[k][1]); root++ {
			dst := out.Row(int(csf.Idx[0][root]))
			for ch := csf.Ptr[0][root]; ch < csf.Ptr[0][root+1]; ch++ {
				walk(1, ch, dst)
			}
		}
	})
	return out
}

// FitFromWorkers is FitFrom with the <X, X_hat> inner product computed as a
// deterministic blocked reduction on the worker pool.
func FitFromWorkers(normX float64, lastM, lastFactor *la.Dense, lambda []float64, grams []*la.Dense, workers int) float64 {
	inner := par.SumBlocks(workers, lastM.Rows, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			mrow := lastM.Row(i)
			arow := lastFactor.Row(i)
			for r := range mrow {
				s += mrow[r] * arow[r] * lambda[r]
			}
		}
		return s
	})
	return fitFromInner(normX, inner, lambda, grams)
}
