package cpals

import (
	"testing"
	"testing/quick"

	"cstf/internal/la"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// The CSF kernel and the COO kernel are independent MTTKRP
// implementations; they must agree on every mode, order, and dataset.
func TestMTTKRPCSFMatchesCOOKernel(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		order := 3 + src.Intn(2)
		dims := make([]int, order)
		for i := range dims {
			dims[i] = 5 + src.Intn(15)
		}
		x := tensor.GenUniform(seed, 200, dims...)
		rank := 1 + src.Intn(4)
		factors := make([]*la.Dense, order)
		for n := range factors {
			factors[n] = InitFactor(seed, n, dims[n], rank)
		}
		csfs := BuildCSFs(x)
		for mode := 0; mode < order; mode++ {
			got := MTTKRPCSF(csfs[mode], factors)
			want := MTTKRP(x, mode, factors)
			if la.MaxAbsDiff(got, want) > 1e-9*(1+want.FrobeniusNorm()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMTTKRPCSFZipfData(t *testing.T) {
	// Skewed data exercises deep fibers.
	x := tensor.GenZipf(3, 2000, 0.9, 300, 200, 100)
	rank := 4
	factors := make([]*la.Dense, 3)
	for n := range factors {
		factors[n] = InitFactor(7, n, x.Dims[n], rank)
	}
	csfs := BuildCSFs(x)
	for mode := 0; mode < 3; mode++ {
		got := MTTKRPCSF(csfs[mode], factors)
		want := MTTKRP(x, mode, factors)
		if d := la.MaxAbsDiff(got, want); d > 1e-9*(1+want.FrobeniusNorm()) {
			t.Fatalf("mode %d: CSF kernel differs by %g", mode, d)
		}
	}
}

func TestMTTKRPCSFEmptyTensor(t *testing.T) {
	empty := tensor.New(4, 4, 4)
	c := tensor.NewCSF(empty, []int{0, 1, 2})
	factors := []*la.Dense{
		InitFactor(1, 0, 4, 2), InitFactor(1, 1, 4, 2), InitFactor(1, 2, 4, 2),
	}
	m := MTTKRPCSF(c, factors)
	if m.FrobeniusNorm() != 0 {
		t.Fatal("empty tensor must give a zero MTTKRP")
	}
}

// CSF does fewer vector ops than COO when fibers are shared: count them.
func TestCSFDoesFewerVectorOps(t *testing.T) {
	// Strong fiber locality: 25 (i,j) fibers, 40 nonzeros each.
	x := tensor.New(10, 10, 500)
	src := rng.New(11)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for n := 0; n < 40; n++ {
				x.Append(1, i, j, src.Intn(500))
			}
		}
	}
	x.DedupSum()
	// COO mode-0 kernel: 2 vector multiplies per nonzero (modes 1, 2).
	cooOps := 2 * x.NNZ()
	// CSF root=0: one multiply per level-1 fiber + one per leaf.
	c := tensor.NewCSF(x, []int{0, 1, 2})
	fibers := c.Fibers()
	csfOps := fibers[1] + fibers[2]
	if csfOps >= cooOps {
		t.Fatalf("CSF should do fewer vector ops: %d vs %d", csfOps, cooOps)
	}
}
