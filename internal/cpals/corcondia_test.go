package cpals

import (
	"testing"

	"cstf/internal/la"
	"cstf/internal/tensor"
)

func TestLeftPinv(t *testing.T) {
	a := InitFactor(3, 0, 20, 4) // tall, full column rank
	p := leftPinv(a)
	if p.Rows != 4 || p.Cols != 20 {
		t.Fatalf("pinv dims %dx%d", p.Rows, p.Cols)
	}
	// p * a must be the identity.
	if d := la.MaxAbsDiff(la.Mul(p, a), la.Identity(4)); d > 1e-8 {
		t.Fatalf("A^+ A off identity by %g", d)
	}
}

func TestCoreConsistencyHighAtTrueRank(t *testing.T) {
	x := tensor.GenLowRankDense(5, 3, 0.001, 14, 12, 10)
	res, err := Solve(x, Options{Rank: 3, MaxIters: 150, Seed: 9, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit() < 0.99 {
		t.Fatalf("setup: fit %v too low for the diagnostic to be meaningful", res.Fit())
	}
	cc, err := CoreConsistency(x, res)
	if err != nil {
		t.Fatal(err)
	}
	if cc < 90 {
		t.Fatalf("core consistency %v at the true rank; expected near 100", cc)
	}
}

func TestCoreConsistencyDropsWhenOverfactored(t *testing.T) {
	x := tensor.GenLowRankDense(7, 2, 0.02, 14, 12, 10)
	atTrue, err := Solve(x, Options{Rank: 2, MaxIters: 120, Seed: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Solve(x, Options{Rank: 5, MaxIters: 120, Seed: 3, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ccTrue, err := CoreConsistency(x, atTrue)
	if err != nil {
		t.Fatal(err)
	}
	ccOver, err := CoreConsistency(x, over)
	if err != nil {
		t.Fatal(err)
	}
	if ccOver >= ccTrue {
		t.Fatalf("overfactored rank must score lower: rank-2 %v vs rank-5 %v", ccTrue, ccOver)
	}
	if ccTrue < 80 {
		t.Fatalf("true-rank consistency %v unexpectedly low", ccTrue)
	}
}

func TestCoreConsistencyFourthOrder(t *testing.T) {
	x := tensor.GenLowRankDense(9, 2, 0.001, 8, 7, 6, 5)
	res, err := Solve(x, Options{Rank: 2, MaxIters: 100, Seed: 2, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := CoreConsistency(x, res)
	if err != nil {
		t.Fatal(err)
	}
	if cc < 85 {
		t.Fatalf("4th-order core consistency %v", cc)
	}
}

func TestCoreConsistencyErrors(t *testing.T) {
	x5 := tensor.GenUniform(1, 50, 4, 4, 4, 4, 4)
	res, err := Solve(x5, Options{Rank: 2, MaxIters: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CoreConsistency(x5, res); err == nil {
		t.Fatal("order-5 must be rejected")
	}
	x3 := tensor.GenUniform(1, 50, 4, 4, 4)
	if _, err := CoreConsistency(x3, &Result{}); err == nil {
		t.Fatal("empty decomposition must be rejected")
	}
}

func TestEstimateRankFindsPlantedRank(t *testing.T) {
	x := tensor.GenLowRankDense(11, 3, 0.01, 12, 11, 10)
	ests, best, err := EstimateRank(x, 5, Options{MaxIters: 80, Seed: 5, Tol: 1e-10}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 5 {
		t.Fatalf("estimates: %d", len(ests))
	}
	if best < 2 || best > 4 {
		t.Fatalf("recommended rank %d for a planted rank-3 tensor (diagnostics: %+v)", best, ests)
	}
	// Fit must be non-decreasing in rank (more components, better fit).
	for i := 1; i < len(ests); i++ {
		if ests[i].Fit < ests[i-1].Fit-0.02 {
			t.Fatalf("fit decreased with rank: %+v", ests)
		}
	}
	if _, _, err := EstimateRank(x, 0, Options{MaxIters: 1}, 80); err == nil {
		t.Fatal("maxRank 0 must error")
	}
}
