package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"cstf/internal/rng"
)

func TestNewValidation(t *testing.T) {
	for _, bad := range [][]int{{}, {0}, {3, -1}, {1, 1, 1, 1, 1, 1, 1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("New(%v) should panic", bad)
				}
			}()
			New(bad...)
		}()
	}
}

func TestAppendAndAccessors(t *testing.T) {
	x := New(3, 4, 5)
	x.Append(1.5, 0, 1, 2)
	x.Append(-2.5, 2, 3, 4)
	if x.Order() != 3 || x.NNZ() != 2 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
	if x.At(0, 1, 2) != 1.5 || x.At(2, 3, 4) != -2.5 || x.At(1, 1, 1) != 0 {
		t.Fatal("At returned wrong values")
	}
	if x.MaxModeSize() != 5 {
		t.Fatalf("max mode size %d", x.MaxModeSize())
	}
	wantDensity := 2.0 / 60.0
	if math.Abs(x.Density()-wantDensity) > 1e-15 {
		t.Fatalf("density %g, want %g", x.Density(), wantDensity)
	}
}

func TestAppendBoundsCheck(t *testing.T) {
	x := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Append should panic")
		}
	}()
	x.Append(1, 0, 2)
}

func TestNorm(t *testing.T) {
	x := New(2, 2)
	x.Append(3, 0, 0)
	x.Append(4, 1, 1)
	if math.Abs(x.Norm()-5) > 1e-15 {
		t.Fatalf("norm %g, want 5", x.Norm())
	}
}

func TestSortAndDedupSum(t *testing.T) {
	x := New(3, 3)
	x.Append(1, 2, 2)
	x.Append(2, 0, 1)
	x.Append(3, 2, 2)  // duplicate of first
	x.Append(-2, 0, 1) // cancels second
	x.DedupSum()
	if x.NNZ() != 1 {
		t.Fatalf("nnz after dedup = %d, want 1 (cancellations dropped)", x.NNZ())
	}
	if x.At(2, 2) != 4 {
		t.Fatalf("merged value %g, want 4", x.At(2, 2))
	}
}

func TestDedupPreservesAtSemantics(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		x := New(4, 3, 2)
		for n := 0; n < 30; n++ {
			x.Append(src.Float64()+0.1, src.Intn(4), src.Intn(3), src.Intn(2))
		}
		before := make(map[[3]int]float64)
		for i := 0; i < 4; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 2; k++ {
					before[[3]int{i, j, k}] = x.At(i, j, k)
				}
			}
		}
		x.DedupSum()
		for c, v := range before {
			if math.Abs(x.At(c[0], c[1], c[2])-v) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := New(2, 2)
	x.Append(1, 0, 0)
	c := x.Clone()
	c.Entries[0].Val = 99
	if x.Entries[0].Val != 1 {
		t.Fatal("clone must not share entry storage")
	}
}

func TestEntryBytes(t *testing.T) {
	if EntryBytes(3) != 32 || EntryBytes(4) != 40 {
		t.Fatalf("EntryBytes: %d, %d", EntryBytes(3), EntryBytes(4))
	}
}

func TestMatricizeRoundTrip(t *testing.T) {
	// Mode-n unfolding must be reversible via DelinearizeCol.
	f := func(seed uint64) bool {
		src := rng.New(seed)
		dims := []int{2 + src.Intn(5), 2 + src.Intn(5), 2 + src.Intn(5), 2 + src.Intn(3)}
		x := GenUniform(seed, 40, dims...)
		for n := 0; n < len(dims); n++ {
			strides := UnfoldStrides(dims, n)
			idx := make([]uint32, len(dims))
			for i := range x.Entries {
				e := &x.Entries[i]
				row, col := LinearizeEntry(e, n, strides)
				if row != e.Idx[n] {
					return false
				}
				DelinearizeCol(col, dims, n, idx)
				for k := range dims {
					if k != n && idx[k] != e.Idx[k] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMatricizeMode0Convention(t *testing.T) {
	// For a 3rd-order tensor, mode-0 unfolding must use col = j + k*J,
	// matching the z/J, z%J recovery in Equation 2 of the paper.
	x := New(4, 3, 5)
	x.Append(7, 1, 2, 4)
	m := x.Matricize(0)
	if len(m) != 1 {
		t.Fatal("expected one nonzero")
	}
	wantCol := uint64(2 + 4*3)
	if m[0].Row != 1 || m[0].Col != wantCol || m[0].Val != 7 {
		t.Fatalf("got (%d,%d,%g), want (1,%d,7)", m[0].Row, m[0].Col, m[0].Val, wantCol)
	}
	if x.MatricizedCols(0) != 15 {
		t.Fatalf("cols = %d, want 15", x.MatricizedCols(0))
	}
	// z % J recovers j, z / J recovers k.
	if m[0].Col%3 != 2 || m[0].Col/3 != 4 {
		t.Fatal("z%%J / z/J recovery broken")
	}
}

func TestGenUniformDeterministicAndInBounds(t *testing.T) {
	a := GenUniform(42, 500, 20, 30, 10)
	b := GenUniform(42, 500, 20, 30, 10)
	if a.NNZ() != b.NNZ() {
		t.Fatal("generator must be deterministic")
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] {
			t.Fatal("generator must be deterministic entry-wise")
		}
		for m, d := range a.Dims {
			if a.Entries[i].Idx[m] >= uint32(d) {
				t.Fatal("index out of bounds")
			}
		}
	}
	if a.NNZ() < 450 {
		t.Fatalf("excessive duplicate merging: nnz=%d", a.NNZ())
	}
}

func TestGenZipfSkew(t *testing.T) {
	x := GenZipf(7, 2000, 0.9, 1000, 1000, 1000)
	// Zipf-skewed data must concentrate mass: the most popular mode-0
	// index should appear far more often than the uniform expectation (~2).
	counts := map[uint32]int{}
	for i := range x.Entries {
		counts[x.Entries[i].Idx[0]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 10 {
		t.Fatalf("expected heavy-tailed occupancy, max fiber count = %d", max)
	}
}

func TestGenLowRankIsLowRank(t *testing.T) {
	// All planted values must be positive (factors are in [0.1, 1.1)) and
	// deterministic.
	a := GenLowRank(5, 200, 3, 0, 10, 12, 14)
	b := GenLowRank(5, 200, 3, 0, 10, 12, 14)
	if a.NNZ() != b.NNZ() {
		t.Fatal("GenLowRank must be deterministic")
	}
	for i := range a.Entries {
		if a.Entries[i].Val <= 0 {
			t.Fatal("noiseless planted values must be positive")
		}
	}
}
