package tensor

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cstf/internal/rng"
)

func TestPermuteRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		x := GenUniform(seed, 100, 7, 6, 5)
		perm := []int{2, 0, 1}
		inv := []int{1, 2, 0}
		y := x.Permute(perm)
		if y.Dims[0] != 5 || y.Dims[1] != 7 || y.Dims[2] != 6 {
			return false
		}
		z := y.Permute(inv)
		if z.NNZ() != x.NNZ() {
			return false
		}
		z.Sort()
		x.Sort()
		for i := range x.Entries {
			if x.Entries[i] != z.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteValueSemantics(t *testing.T) {
	x := New(4, 5, 6)
	x.Append(3.5, 1, 2, 3)
	y := x.Permute([]int{2, 0, 1})
	if y.At(3, 1, 2) != 3.5 {
		t.Fatalf("permuted value not found where expected")
	}
}

func TestPermuteValidation(t *testing.T) {
	x := GenUniform(1, 10, 4, 4, 4)
	for _, bad := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Permute(%v) must panic", bad)
				}
			}()
			x.Permute(bad)
		}()
	}
}

func TestModeStats(t *testing.T) {
	x := New(5, 5)
	x.Append(1, 0, 0)
	x.Append(1, 0, 1)
	x.Append(1, 0, 2)
	x.Append(1, 1, 3)
	st := x.ModeStats(0)
	if st.NonEmpty != 2 || st.MaxCount != 3 {
		t.Fatalf("stats %+v", st)
	}
	if math.Abs(st.MeanOcc-2) > 1e-12 || math.Abs(st.Skew-1.5) > 1e-12 {
		t.Fatalf("stats %+v", st)
	}
}

func TestModeStatsSkewDetectsZipf(t *testing.T) {
	uni := GenUniform(3, 5000, 2000, 100, 100)
	skewed := GenZipf(3, 5000, 0.9, 2000, 100, 100)
	if skewed.ModeStats(0).Skew <= 2*uni.ModeStats(0).Skew {
		t.Fatalf("zipf skew %v should far exceed uniform skew %v",
			skewed.ModeStats(0).Skew, uni.ModeStats(0).Skew)
	}
}

func TestScaleAndMaxAbs(t *testing.T) {
	x := New(3, 3)
	x.Append(-4, 0, 0)
	x.Append(2, 1, 1)
	if x.MaxAbs() != 4 {
		t.Fatalf("maxabs %v", x.MaxAbs())
	}
	x.Scale(0.5)
	if x.At(0, 0) != -2 || x.At(1, 1) != 1 {
		t.Fatal("scale wrong")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		order := 3 + src.Intn(3)
		dims := make([]int, order)
		for i := range dims {
			dims[i] = 3 + src.Intn(20)
		}
		x := GenUniform(seed, 200, dims...)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, x); err != nil {
			return false
		}
		y, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if y.Order() != x.Order() || y.NNZ() != x.NNZ() {
			return false
		}
		for i := range x.Entries {
			if x.Entries[i] != y.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a tensor")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if _, err := ReadBinary(strings.NewReader("CSTFBIN1")); err == nil {
		t.Fatal("truncated header must be rejected")
	}
	// Valid header, out-of-range index.
	x := GenUniform(1, 10, 4, 4, 4)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the first entry's first index to a huge value.
	off := 8 + 4 + 3*8 + 8
	data[off] = 0xFF
	data[off+1] = 0xFF
	data[off+2] = 0xFF
	data[off+3] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("out-of-range index must be rejected")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	x := GenUniform(5, 5000, 100000, 100000, 100000)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, x); err != nil {
		t.Fatal(err)
	}
	if err := WriteTNS(&txt, x); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Fatalf("binary (%d B) should be smaller than text (%d B)", bin.Len(), txt.Len())
	}
}
