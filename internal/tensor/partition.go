package tensor

import "fmt"

// ModeIndex is the one-time sort/segment index that lets MTTKRP along one
// mode fan out across worker goroutines with zero write conflicts: Perm
// lists the entry positions STABLY sorted by that mode's index, and RowPtr
// is the CSR-style segment table over the sorted order. Worker w then owns
// a contiguous range of output rows — and, via Perm, exactly the entries
// that write to them — so no two workers ever touch the same output row.
//
// Stability is load-bearing for determinism: within one output row the
// entries appear in their original storage order, so accumulating them
// row-by-row performs the identical per-row floating-point sequence as the
// classic entry-order COO loop, bitwise, for every worker count.
type ModeIndex struct {
	Mode   int
	Perm   []int32 // entry positions sorted stably by Idx[Mode]
	RowPtr []int32 // len Dims[Mode]+1; row r owns Perm[RowPtr[r]:RowPtr[r+1]]
}

// buildModeIndex counting-sorts the entry positions by Idx[mode]. Counting
// sort is stable and O(nnz + dims[mode]).
func buildModeIndex(t *COO, mode int) *ModeIndex {
	if mode < 0 || mode >= t.Order() {
		panic(fmt.Sprintf("tensor: mode %d out of range for order %d", mode, t.Order()))
	}
	rows := t.Dims[mode]
	idx := &ModeIndex{
		Mode:   mode,
		Perm:   make([]int32, len(t.Entries)),
		RowPtr: make([]int32, rows+1),
	}
	for i := range t.Entries {
		idx.RowPtr[t.Entries[i].Idx[mode]+1]++
	}
	for r := 0; r < rows; r++ {
		idx.RowPtr[r+1] += idx.RowPtr[r]
	}
	next := make([]int32, rows)
	copy(next, idx.RowPtr[:rows])
	for i := range t.Entries {
		r := t.Entries[i].Idx[mode]
		idx.Perm[next[r]] = int32(i)
		next[r]++
	}
	return idx
}

// NNZRange is one worker's share of a partitioned mode: the output rows
// [RowLo, RowHi) and the corresponding Perm positions [Lo, Hi).
type NNZRange struct {
	RowLo, RowHi int
	Lo, Hi       int
}

// Ranges splits the mode into up to `parts` contiguous row ranges balanced
// by nonzero count. Boundaries always fall between rows, so the ranges'
// output regions are disjoint; empty ranges are dropped. The CUT POINTS
// depend on `parts`, but per-row work does not, so kernels that own whole
// rows stay deterministic across any partitioning.
func (x *ModeIndex) Ranges(parts int) []NNZRange {
	nnz := len(x.Perm)
	rows := len(x.RowPtr) - 1
	if parts < 1 {
		parts = 1
	}
	out := make([]NNZRange, 0, parts)
	row := 0
	for p := 0; p < parts && row < rows; p++ {
		// Target an even split of the REMAINING nonzeros over the
		// remaining parts, then advance to the next row boundary at or
		// past it.
		done := int(x.RowPtr[row])
		target := done + (nnz-done+parts-p-1)/(parts-p)
		hi := row
		for hi < rows && int(x.RowPtr[hi+1]) <= target {
			hi++
		}
		if hi == row {
			hi = row + 1 // a single row exceeding the target still needs an owner
		}
		r := NNZRange{RowLo: row, RowHi: hi, Lo: int(x.RowPtr[row]), Hi: int(x.RowPtr[hi])}
		if r.Hi > r.Lo {
			out = append(out, r)
		}
		row = hi
	}
	if row < rows { // leftover all-empty tail rows: nothing owns zero nonzeros
		if last := int(x.RowPtr[rows]); len(out) > 0 && out[len(out)-1].Hi < last {
			panic("tensor: mode ranges dropped nonzeros")
		}
	}
	return out
}

// ModeIndex returns the (lazily built, cached) sort/segment index for one
// mode. The cache is safe for concurrent readers — e.g. restart goroutines
// sharing a tensor — and is invalidated by Append, Sort, and DedupSum.
// Callers that mutate the exported Entries slice directly must call
// InvalidateIndex themselves.
func (t *COO) ModeIndex(mode int) *ModeIndex {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.modeIdx == nil || len(t.modeIdx) != t.Order() {
		t.modeIdx = make([]*ModeIndex, t.Order())
	}
	if mi := t.modeIdx[mode]; mi != nil && len(mi.Perm) == len(t.Entries) {
		return mi
	}
	mi := buildModeIndex(t, mode)
	t.modeIdx[mode] = mi
	return mi
}

// InvalidateIndex drops all cached mode indexes. Mutating methods call it
// automatically; callers editing Entries in place must call it by hand.
func (t *COO) InvalidateIndex() {
	t.mu.Lock()
	t.modeIdx = nil
	t.mu.Unlock()
}
