// Package tensor implements N-order sparse tensors in the coordinate (COO)
// storage format — the representation CSTF computes on directly — together
// with FROSTT .tns I/O, mode-n matricization (needed only by the
// BIGtensor/GigaTensor baseline), and deterministic synthetic generators.
package tensor

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// MaxOrder bounds the tensor order an Entry can carry. The paper evaluates
// orders 3 and 4 and argues the algorithms extend to order 5; 8 gives
// headroom without making every record heap-allocated.
const MaxOrder = 8

// Entry is one nonzero of a sparse tensor in COO form: the indices along
// each mode (only the first Order are meaningful) and the value. It is a
// plain value type so RDD partitions hold entries contiguously.
type Entry struct {
	Idx [MaxOrder]uint32
	Val float64
}

// COO is an N-order sparse tensor stored as a list of nonzero entries.
type COO struct {
	Dims    []int // size of each mode; len(Dims) is the order
	Entries []Entry

	mu      sync.Mutex   // guards modeIdx
	modeIdx []*ModeIndex // lazily built per-mode sort/segment indexes
}

// New returns an empty tensor with the given mode sizes.
func New(dims ...int) *COO {
	if len(dims) < 1 || len(dims) > MaxOrder {
		panic(fmt.Sprintf("tensor: order %d out of range [1,%d]", len(dims), MaxOrder))
	}
	for _, d := range dims {
		if d <= 0 {
			panic("tensor: non-positive mode size")
		}
	}
	return &COO{Dims: append([]int(nil), dims...)}
}

// Order returns the number of modes.
func (t *COO) Order() int { return len(t.Dims) }

// NNZ returns the number of stored nonzeros.
func (t *COO) NNZ() int { return len(t.Entries) }

// Density returns nnz / prod(dims) computed in floating point (real FROSTT
// densities underflow int64 products).
func (t *COO) Density() float64 {
	vol := 1.0
	for _, d := range t.Dims {
		vol *= float64(d)
	}
	return float64(t.NNZ()) / vol
}

// Append adds a nonzero. Indices are 0-based and bounds-checked.
func (t *COO) Append(val float64, idx ...int) {
	if len(idx) != t.Order() {
		panic(fmt.Sprintf("tensor: entry order %d != tensor order %d", len(idx), t.Order()))
	}
	var e Entry
	for m, i := range idx {
		if i < 0 || i >= t.Dims[m] {
			panic(fmt.Sprintf("tensor: index %d out of range for mode %d (size %d)", i, m, t.Dims[m]))
		}
		e.Idx[m] = uint32(i)
	}
	e.Val = val
	t.Entries = append(t.Entries, e)
	t.InvalidateIndex()
}

// Norm returns the Frobenius norm of the tensor.
func (t *COO) Norm() float64 {
	var s float64
	for i := range t.Entries {
		v := t.Entries[i].Val
		s += v * v
	}
	return math.Sqrt(s)
}

// Clone returns a deep copy.
func (t *COO) Clone() *COO {
	c := New(t.Dims...)
	c.Entries = append([]Entry(nil), t.Entries...)
	return c
}

// Less orders entries lexicographically over the first `order` indices.
func Less(order int, a, b *Entry) bool {
	for m := 0; m < order; m++ {
		if a.Idx[m] != b.Idx[m] {
			return a.Idx[m] < b.Idx[m]
		}
	}
	return false
}

// Sort orders the entries lexicographically by index.
func (t *COO) Sort() {
	ord := t.Order()
	sort.Slice(t.Entries, func(i, j int) bool {
		return Less(ord, &t.Entries[i], &t.Entries[j])
	})
	t.InvalidateIndex()
}

// DedupSum sorts the tensor and merges duplicate coordinates by summing
// their values, dropping entries that cancel to exactly zero.
func (t *COO) DedupSum() {
	if len(t.Entries) == 0 {
		return
	}
	t.Sort()
	out := t.Entries[:0]
	ord := t.Order()
	cur := t.Entries[0]
	for _, e := range t.Entries[1:] {
		if !Less(ord, &cur, &e) && !Less(ord, &e, &cur) {
			cur.Val += e.Val
			continue
		}
		if cur.Val != 0 {
			out = append(out, cur)
		}
		cur = e
	}
	if cur.Val != 0 {
		out = append(out, cur)
	}
	t.Entries = out
	t.InvalidateIndex()
}

// MaxModeSize returns the largest mode size (the "Max mode size" column of
// Table 5 in the paper).
func (t *COO) MaxModeSize() int {
	m := 0
	for _, d := range t.Dims {
		if d > m {
			m = d
		}
	}
	return m
}

// At returns the value at the given coordinate via linear scan. O(nnz) —
// for tests and tiny tensors only.
func (t *COO) At(idx ...int) float64 {
	if len(idx) != t.Order() {
		panic("tensor: At order mismatch")
	}
	var s float64
	for i := range t.Entries {
		e := &t.Entries[i]
		match := true
		for m, want := range idx {
			if e.Idx[m] != uint32(want) {
				match = false
				break
			}
		}
		if match {
			s += e.Val
		}
	}
	return s
}

// EntryBytes returns the wire size in bytes this repository charges for one
// COO entry of the given order: one 64-bit word per index plus one for the
// value, matching the paper's double-precision, word-per-coordinate
// accounting.
func EntryBytes(order int) int { return 8 * (order + 1) }
