package tensor

import (
	"cstf/internal/rng"
)

// Synthetic tensor generators. The FROSTT datasets the paper evaluates are
// multi-gigabyte downloads; these generators produce deterministic tensors
// with the same order, mode-size ratios, and fiber-occupancy skew at a
// configurable scale (see internal/workload for the Table 5 configs).

// GenUniform generates approximately nnz uniform-random nonzeros (duplicate
// coordinates are merged, so the exact count can be slightly lower). Values
// are uniform in [0, 1). This models the paper's synt3d dataset.
func GenUniform(seed uint64, nnz int, dims ...int) *COO {
	t := New(dims...)
	src := rng.New(seed)
	t.Entries = make([]Entry, 0, nnz)
	for len(t.Entries) < nnz {
		var e Entry
		for m, d := range dims {
			e.Idx[m] = uint32(src.Intn(d))
		}
		e.Val = src.Float64()
		t.Entries = append(t.Entries, e)
	}
	t.DedupSum()
	return t
}

// GenZipf generates approximately nnz nonzeros whose per-mode indices
// follow a Zipf distribution with the given exponent, then shuffles index
// identity with a hash permutation so the skew is not concentrated at index
// zero. Real web-crawl tensors (delicious, flickr, NELL) have exactly this
// kind of heavy-tailed fiber occupancy.
func GenZipf(seed uint64, nnz int, theta float64, dims ...int) *COO {
	t := New(dims...)
	src := rng.New(seed)
	zipfs := make([]*rng.Zipf, len(dims))
	for m, d := range dims {
		zipfs[m] = rng.NewZipf(d, theta)
	}
	t.Entries = make([]Entry, 0, nnz)
	for len(t.Entries) < nnz {
		var e Entry
		for m, d := range dims {
			raw := zipfs[m].Next(src)
			// Pseudo-random permutation of [0, d) so hot indices are spread out.
			e.Idx[m] = uint32(rng.Hash64(seed, uint64(m), uint64(raw)) % uint64(d))
		}
		e.Val = src.Float64()
		t.Entries = append(t.Entries, e)
	}
	t.DedupSum()
	return t
}

// GenLowRankDense generates a tensor holding a rank-r CP model at EVERY
// coordinate (plus optional Gaussian noise). Unlike GenLowRank, the result
// really is a rank-r tensor, so CP-ALS must reach a near-perfect fit on it
// — the strongest end-to-end correctness check available for the solvers.
// Use only for small dims (the entry count is the full dense volume).
func GenLowRankDense(seed uint64, r int, noise float64, dims ...int) *COO {
	t := New(dims...)
	src := rng.New(seed)
	order := len(dims)
	factorVal := func(m, i, col int) float64 {
		return 0.1 + rng.UniformAt(seed, uint64(m), uint64(i), uint64(col))
	}
	idx := make([]int, order)
	var emit func(m int)
	emit = func(m int) {
		if m == order {
			var v float64
			for col := 0; col < r; col++ {
				p := 1.0
				for n := 0; n < order; n++ {
					p *= factorVal(n, idx[n], col)
				}
				v += p
			}
			if noise > 0 {
				v += noise * src.NormFloat64()
			}
			t.Append(v, idx...)
			return
		}
		for i := 0; i < dims[m]; i++ {
			idx[m] = i
			emit(m + 1)
		}
	}
	emit(0)
	return t
}

// GenBlockSparse generates approximately nnz nonzeros arranged as dense
// cubic blocks of side `block` scattered at random origins, each cell
// holding the rank-r planted CP model value (plus optional Gaussian noise).
// Overlapping blocks merge by summation. Real recommender and knowledge-
// graph tensors have exactly this community structure — dense pockets in a
// very sparse ambient space — and it is the regime where fiber-reuse
// kernels (CSF) do asymptotically fewer vector operations than the
// per-nonzero COO loop: every length-`block` fiber shares one partial
// Hadamard product.
func GenBlockSparse(seed uint64, nnz, r, block int, noise float64, dims ...int) *COO {
	t := New(dims...)
	src := rng.New(seed)
	order := len(dims)
	for _, d := range dims {
		if block > d {
			panic("tensor: GenBlockSparse block larger than a dim")
		}
	}
	factorVal := func(m, i, col int) float64 {
		return 0.1 + rng.UniformAt(seed, uint64(m), uint64(i), uint64(col))
	}

	t.Entries = make([]Entry, 0, nnz)
	origin := make([]int, order)
	idx := make([]int, order)
	var emit func(m int)
	emit = func(m int) {
		if m == order {
			var v float64
			for col := 0; col < r; col++ {
				p := 1.0
				for n := 0; n < order; n++ {
					p *= factorVal(n, idx[n], col)
				}
				v += p
			}
			if noise > 0 {
				v += noise * src.NormFloat64()
			}
			var e Entry
			for n := 0; n < order; n++ {
				e.Idx[n] = uint32(idx[n])
			}
			e.Val = v
			t.Entries = append(t.Entries, e)
			return
		}
		for i := origin[m]; i < origin[m]+block; i++ {
			idx[m] = i
			emit(m + 1)
		}
	}
	for len(t.Entries) < nnz {
		for m, d := range dims {
			origin[m] = src.Intn(d - block + 1)
		}
		emit(0)
	}
	t.DedupSum()
	return t
}

// GenRecsys generates a (users x items x contexts) implicit-feedback
// tensor with planted per-user preference structure — the recommender
// workload the serving and evaluation layers are measured on. Users and
// items are hashed into `groups` interest groups; a user's interactions
// land on items of the user's own group with probability ~0.8 (uniform
// otherwise), and every value is the planted nonnegative rank-`groups`
// model evaluated at that coordinate (component g loads high exactly on
// group-g users and items) plus optional nonnegative noise. The planted
// model is a pure function of the seed, so two tensors from the same
// (seed, shape) are identical entry for entry, and a rank-`groups`
// nonnegative factorization can recover the structure — which is what
// makes a trained model separable from the popularity baseline: the best
// unseen items for a user are in-group, not globally popular.
func GenRecsys(seed uint64, nnz, users, items, contexts, groups int, noise float64) *COO {
	if groups <= 0 {
		groups = 1
	}
	t := New(users, items, contexts)
	src := rng.New(seed)

	userGroup := func(u int) int { return int(rng.Hash64(seed, 0xEC1, uint64(u)) % uint64(groups)) }
	itemGroup := func(i int) int { return int(rng.Hash64(seed, 0xEC2, uint64(i)) % uint64(groups)) }
	// Planted loadings: ~1.1 on the own group's component, ~0.1 off-group.
	userVal := func(u, g int) float64 {
		v := 0.05 + 0.1*rng.UniformAt(seed, 0xEC3, uint64(u), uint64(g))
		if userGroup(u) == g {
			v += 1
		}
		return v
	}
	itemVal := func(i, g int) float64 {
		v := 0.05 + 0.1*rng.UniformAt(seed, 0xEC4, uint64(i), uint64(g))
		if itemGroup(i) == g {
			v += 1
		}
		return v
	}
	ctxVal := func(c, g int) float64 {
		return 0.5 + 0.5*rng.UniformAt(seed, 0xEC5, uint64(c), uint64(g))
	}

	byGroup := make([][]int, groups)
	for i := 0; i < items; i++ {
		g := itemGroup(i)
		byGroup[g] = append(byGroup[g], i)
	}

	t.Entries = make([]Entry, 0, nnz)
	for len(t.Entries) < nnz {
		u := src.Intn(users)
		c := src.Intn(contexts)
		var i int
		if in := byGroup[userGroup(u)]; len(in) > 0 && src.Float64() < 0.8 {
			i = in[src.Intn(len(in))]
		} else {
			i = src.Intn(items)
		}
		var v float64
		for g := 0; g < groups; g++ {
			v += userVal(u, g) * itemVal(i, g) * ctxVal(c, g)
		}
		if noise > 0 {
			if n := noise * src.NormFloat64(); n > 0 {
				v += n
			}
		}
		t.Append(v, u, i, c)
	}
	t.DedupSum()
	return t
}

// GenLowRank generates a tensor that is a rank-r CP model sampled at
// approximately nnz random coordinates (plus optional Gaussian noise).
// Note the sampling mask makes the resulting sparse tensor NOT globally
// rank-r (unsampled coordinates are zero); use GenLowRankDense when a
// truly low-rank tensor is required.
func GenLowRank(seed uint64, nnz, r int, noise float64, dims ...int) *COO {
	t := New(dims...)
	src := rng.New(seed)
	order := len(dims)

	// Factor row (m, i) is a pure function of the seed, so the planted
	// model is reproducible without storing the factors.
	factorVal := func(m, i, col int) float64 {
		return 0.1 + rng.UniformAt(seed, uint64(m), uint64(i), uint64(col))
	}

	t.Entries = make([]Entry, 0, nnz)
	for len(t.Entries) < nnz {
		var e Entry
		for m, d := range dims {
			e.Idx[m] = uint32(src.Intn(d))
		}
		var v float64
		for col := 0; col < r; col++ {
			p := 1.0
			for m := 0; m < order; m++ {
				p *= factorVal(m, int(e.Idx[m]), col)
			}
			v += p
		}
		if noise > 0 {
			v += noise * src.NormFloat64()
		}
		e.Val = v
		t.Entries = append(t.Entries, e)
	}
	t.DedupSum()
	return t
}
