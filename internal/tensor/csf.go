package tensor

import (
	"fmt"
	"math/bits"
	"sort"
)

// CSF is the compressed sparse fiber format of SPLATT (Smith et al.,
// IPDPS'15), the shared-memory state of the art the paper's related work
// cites. The nonzeros are organized as a forest: level 0 holds the unique
// indices of the first mode in ModeOrder, each pointing to its slice of
// level-1 nodes, and so on; leaves carry the values. An MTTKRP along the
// root mode then reuses each fiber's partial Hadamard product across all
// nonzeros sharing the fiber, which COO cannot.
//
// CSTF itself computes on COO (that is the paper's point — COO ships whole
// to the distributed engines); CSF exists here as the high-performance
// local kernel and as an independent MTTKRP implementation to validate
// against.
type CSF struct {
	ModeOrder []int      // ModeOrder[l] = tensor mode stored at level l
	Idx       [][]uint32 // per level: node indices (level L has one per nonzero)
	Ptr       [][]int32  // per level < last: Idx[l+1] range of node n is [Ptr[l][n], Ptr[l][n+1])
	Vals      []float64  // leaf values, aligned with the last level's Idx
	Dims      []int      // original tensor dims
}

// NewCSF builds a CSF tree for the given mode ordering (a permutation of
// 0..order-1). Duplicate coordinates must have been merged (DedupSum).
func NewCSF(t *COO, modeOrder []int) *CSF {
	order := t.Order()
	if len(modeOrder) != order {
		panic("tensor: CSF mode order length mismatch")
	}
	seen := make([]bool, order)
	for _, m := range modeOrder {
		if m < 0 || m >= order || seen[m] {
			panic(fmt.Sprintf("tensor: invalid CSF mode order %v", modeOrder))
		}
		seen[m] = true
	}

	// Sort entries lexicographically in ModeOrder.
	entries := sortedByModeOrder(t, modeOrder)

	c := &CSF{
		ModeOrder: append([]int(nil), modeOrder...),
		Idx:       make([][]uint32, order),
		Ptr:       make([][]int32, order-1),
		Vals:      make([]float64, 0, len(entries)),
		Dims:      append([]int(nil), t.Dims...),
	}
	if len(entries) == 0 {
		for l := 0; l < order-1; l++ {
			c.Ptr[l] = []int32{0}
		}
		return c
	}

	// A node at level l begins wherever any index at level <= l changes
	// relative to the previous (sorted) entry. Ptr[l][n] records where node
	// n's children start in level l+1.
	counts := make([]int, order) // nodes emitted so far per level
	for i := range entries {
		e := &entries[i]
		newAt := 0 // first level whose index differs from the previous entry
		if i > 0 {
			prev := &entries[i-1]
			newAt = order
			for l, m := range modeOrder {
				if e.Idx[m] != prev.Idx[m] {
					newAt = l
					break
				}
			}
		}
		if newAt == order {
			panic("tensor: CSF requires deduplicated entries (call DedupSum first)")
		}
		for l := newAt; l < order; l++ {
			c.Idx[l] = append(c.Idx[l], e.Idx[modeOrder[l]])
			if l < order-1 {
				c.Ptr[l] = append(c.Ptr[l], int32(counts[l+1]))
			}
			counts[l]++
		}
		c.Vals = append(c.Vals, e.Val)
	}
	for l := 0; l < order-1; l++ {
		c.Ptr[l] = append(c.Ptr[l], int32(counts[l+1]))
	}
	return c
}

// sortedByModeOrder returns the entries sorted lexicographically in
// modeOrder. When every coordinate packs into one uint64 key (the common
// case — total index bits <= 64) the sort is an LSD radix sort over packed
// keys, which is what makes per-shard CSF construction cheap enough to do
// once per (mode, shard) in the distributed workers. Otherwise it falls
// back to a comparison sort. Both paths produce the identical (unique)
// lexicographic order, so the resulting CSF tree — and every MTTKRP on it —
// is bitwise independent of the path taken.
func sortedByModeOrder(t *COO, modeOrder []int) []Entry {
	var totalBits uint
	for _, d := range t.Dims {
		totalBits += uint(bits.Len(uint(d - 1)))
	}
	if totalBits == 0 || totalBits > 64 {
		entries := append([]Entry(nil), t.Entries...)
		sort.Slice(entries, func(a, b int) bool {
			for _, m := range modeOrder {
				if entries[a].Idx[m] != entries[b].Idx[m] {
					return entries[a].Idx[m] < entries[b].Idx[m]
				}
			}
			return false
		})
		return entries
	}

	// Pack coordinates most-significant-first in modeOrder; lexicographic
	// order on coordinates == numeric order on keys.
	type keyed struct {
		key uint64
		idx int32
	}
	n := len(t.Entries)
	a := make([]keyed, n)
	for i := range t.Entries {
		var key uint64
		for _, m := range modeOrder {
			key = key<<uint(bits.Len(uint(t.Dims[m]-1))) | uint64(t.Entries[i].Idx[m])
		}
		a[i] = keyed{key, int32(i)}
	}
	b := make([]keyed, n)
	for shift := uint(0); shift < totalBits; shift += 8 {
		var count [256]int
		for i := range a {
			count[byte(a[i].key>>shift)]++
		}
		pos := 0
		for d := 0; d < 256; d++ {
			c := count[d]
			count[d] = pos
			pos += c
		}
		for i := range a {
			d := byte(a[i].key >> shift)
			b[count[d]] = a[i]
			count[d]++
		}
		a, b = b, a
	}
	entries := make([]Entry, n)
	for i := range a {
		entries[i] = t.Entries[a[i].idx]
	}
	return entries
}

// NNZ returns the number of stored nonzeros.
func (c *CSF) NNZ() int { return len(c.Vals) }

// Fibers returns the node count at each level (diagnostics: how much
// prefix sharing the ordering achieved).
func (c *CSF) Fibers() []int {
	out := make([]int, len(c.Idx))
	for l := range c.Idx {
		out[l] = len(c.Idx[l])
	}
	return out
}
