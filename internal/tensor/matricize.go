package tensor

import "fmt"

// Matricization support. CSTF's whole point is to avoid unfolding the
// tensor; this file exists so the BIGtensor/GigaTensor baseline can be
// reproduced faithfully, since that system computes on the mode-n
// matricized tensor X(n).
//
// We follow the Kolda-Bader convention: tensor element (i_0, ..., i_{N-1})
// maps to matrix element (i_n, j) with
//
//	j = sum_{k != n} i_k * J_k,   J_k = prod_{m < k, m != n} I_m.
//
// For a 3rd-order tensor and mode 0 this gives j = i_1 + i_2 * I_1, i.e.
// the z = k*J + j linearization of Equation 2 in the paper, where rows of C
// are recovered as z / J and rows of B as z % J.

// MatEntry is one nonzero of a matricized tensor.
type MatEntry struct {
	Row uint32 // index along the matricization mode
	Col uint64 // linearized index over all other modes
	Val float64
}

// UnfoldStrides returns the stride J_k of every mode for the mode-n
// matricization (stride of mode n itself is 0).
func UnfoldStrides(dims []int, n int) []uint64 {
	if n < 0 || n >= len(dims) {
		panic(fmt.Sprintf("tensor: matricization mode %d out of range", n))
	}
	strides := make([]uint64, len(dims))
	acc := uint64(1)
	for k := range dims {
		if k == n {
			continue
		}
		strides[k] = acc
		acc *= uint64(dims[k])
	}
	return strides
}

// LinearizeEntry returns the (row, col) position of entry e in the mode-n
// matricization with the given strides.
func LinearizeEntry(e *Entry, n int, strides []uint64) (uint32, uint64) {
	var col uint64
	for k, s := range strides {
		if k == n {
			continue
		}
		col += uint64(e.Idx[k]) * s
	}
	return e.Idx[n], col
}

// DelinearizeCol recovers the per-mode indices encoded in a matricized
// column index. idx[n] is left as 0. This is the z/J, z%J arithmetic the
// GigaTensor map tasks perform to find which factor rows a column needs.
func DelinearizeCol(col uint64, dims []int, n int, idx []uint32) {
	for k := range dims {
		if k == n {
			idx[k] = 0
			continue
		}
		idx[k] = uint32(col % uint64(dims[k]))
		col /= uint64(dims[k])
	}
}

// Matricize returns the mode-n unfolding of t as a list of matrix nonzeros.
func (t *COO) Matricize(n int) []MatEntry {
	strides := UnfoldStrides(t.Dims, n)
	out := make([]MatEntry, len(t.Entries))
	for i := range t.Entries {
		e := &t.Entries[i]
		r, c := LinearizeEntry(e, n, strides)
		out[i] = MatEntry{Row: r, Col: c, Val: e.Val}
	}
	return out
}

// MatricizedCols returns the number of columns of the mode-n unfolding.
func (t *COO) MatricizedCols(n int) uint64 {
	cols := uint64(1)
	for k, d := range t.Dims {
		if k != n {
			cols *= uint64(d)
		}
	}
	return cols
}
