package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Additional tensor utilities: mode permutation (useful for mode-order
// experiments and for validating mode symmetry), per-mode fiber statistics
// (the skew that drives load balance), and a compact binary interchange
// format for large tensors where .tns text parsing dominates.

// Permute returns a new tensor whose mode m is the receiver's mode perm[m].
// perm must be a permutation of 0..order-1. Values are unchanged:
// Permute(perm).At(i_0..) == At(i_perm[0]..).
func (t *COO) Permute(perm []int) *COO {
	order := t.Order()
	if len(perm) != order {
		panic("tensor: permutation length mismatch")
	}
	seen := make([]bool, order)
	for _, p := range perm {
		if p < 0 || p >= order || seen[p] {
			panic(fmt.Sprintf("tensor: invalid permutation %v", perm))
		}
		seen[p] = true
	}
	dims := make([]int, order)
	for m, p := range perm {
		dims[m] = t.Dims[p]
	}
	out := New(dims...)
	out.Entries = make([]Entry, len(t.Entries))
	for i := range t.Entries {
		src := &t.Entries[i]
		var e Entry
		for m, p := range perm {
			e.Idx[m] = src.Idx[p]
		}
		e.Val = src.Val
		out.Entries[i] = e
	}
	return out
}

// FiberStats summarizes the nonzero distribution over one mode's indices.
type FiberStats struct {
	Mode     int
	NonEmpty int     // indices with at least one nonzero
	MaxCount int     // nonzeros in the heaviest slice
	MeanOcc  float64 // nnz / non-empty indices
	Skew     float64 // MaxCount / MeanOcc (1 = perfectly balanced)
}

// ModeStats computes fiber statistics for a mode — the quantity that
// determines reduce-side load balance in the distributed MTTKRPs.
func (t *COO) ModeStats(mode int) FiberStats {
	if mode < 0 || mode >= t.Order() {
		panic("tensor: mode out of range")
	}
	counts := map[uint32]int{}
	for i := range t.Entries {
		counts[t.Entries[i].Idx[mode]]++
	}
	st := FiberStats{Mode: mode, NonEmpty: len(counts)}
	for _, c := range counts {
		if c > st.MaxCount {
			st.MaxCount = c
		}
	}
	if st.NonEmpty > 0 {
		st.MeanOcc = float64(t.NNZ()) / float64(st.NonEmpty)
		st.Skew = float64(st.MaxCount) / st.MeanOcc
	}
	return st
}

// Scale multiplies every nonzero by s.
func (t *COO) Scale(s float64) {
	for i := range t.Entries {
		t.Entries[i].Val *= s
	}
}

// MaxAbs returns the largest absolute nonzero value.
func (t *COO) MaxAbs() float64 {
	var m float64
	for i := range t.Entries {
		if v := math.Abs(t.Entries[i].Val); v > m {
			m = v
		}
	}
	return m
}

// Binary format: magic, order, dims, nnz, then per entry `order` uint32
// indices and a float64 value, all little-endian. Roughly 4x smaller and
// 10x faster to parse than .tns text.

var binMagic = [8]byte{'C', 'S', 'T', 'F', 'B', 'I', 'N', '1'}

// WriteBinary writes the tensor in the CSTFBIN1 binary format.
func WriteBinary(w io.Writer, t *COO) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	order := uint32(t.Order())
	if err := binary.Write(bw, binary.LittleEndian, order); err != nil {
		return err
	}
	for _, d := range t.Dims {
		if err := binary.Write(bw, binary.LittleEndian, uint64(d)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return err
	}
	for i := range t.Entries {
		e := &t.Entries[i]
		for m := 0; m < int(order); m++ {
			if err := binary.Write(bw, binary.LittleEndian, e.Idx[m]); err != nil {
				return err
			}
		}
		if err := binary.Write(bw, binary.LittleEndian, e.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the CSTFBIN1 binary format.
func ReadBinary(r io.Reader) (*COO, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tensor: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("tensor: not a CSTFBIN1 file")
	}
	var order uint32
	if err := binary.Read(br, binary.LittleEndian, &order); err != nil {
		return nil, err
	}
	if order < 1 || order > MaxOrder {
		return nil, fmt.Errorf("tensor: order %d out of range", order)
	}
	dims := make([]int, order)
	for m := range dims {
		var d uint64
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d == 0 || d > 1<<32 {
			return nil, fmt.Errorf("tensor: bad mode size %d", d)
		}
		dims[m] = int(d)
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	t := New(dims...)
	t.Entries = make([]Entry, 0, nnz)
	for i := uint64(0); i < nnz; i++ {
		var e Entry
		for m := 0; m < int(order); m++ {
			if err := binary.Read(br, binary.LittleEndian, &e.Idx[m]); err != nil {
				return nil, fmt.Errorf("tensor: entry %d: %w", i, err)
			}
			if e.Idx[m] >= uint32(dims[m]) {
				return nil, fmt.Errorf("tensor: entry %d index %d out of range for mode %d", i, e.Idx[m], m)
			}
		}
		if err := binary.Read(br, binary.LittleEndian, &e.Val); err != nil {
			return nil, fmt.Errorf("tensor: entry %d: %w", i, err)
		}
		t.Entries = append(t.Entries, e)
	}
	return t, nil
}
