package tensor

import (
	"testing"
)

func partitionTestTensor() *COO {
	// Skewed occupancy so the balancer has real work: row 0 of mode 0
	// holds half the nonzeros.
	t := New(8, 5, 6)
	k := 0
	for i := 0; i < 40; i++ {
		r := 0
		if i%2 == 1 {
			r = 1 + (i/2)%7
		}
		t.Append(float64(i+1), r, i%5, (i*3)%6)
		k++
	}
	return t
}

func TestModeIndexSortedAndStable(t *testing.T) {
	x := partitionTestTensor()
	for mode := 0; mode < x.Order(); mode++ {
		mi := x.ModeIndex(mode)
		if len(mi.Perm) != x.NNZ() {
			t.Fatalf("mode %d: perm length %d != nnz %d", mode, len(mi.Perm), x.NNZ())
		}
		for p := 1; p < len(mi.Perm); p++ {
			a, b := &x.Entries[mi.Perm[p-1]], &x.Entries[mi.Perm[p]]
			if a.Idx[mode] > b.Idx[mode] {
				t.Fatalf("mode %d: perm not sorted at %d", mode, p)
			}
			if a.Idx[mode] == b.Idx[mode] && mi.Perm[p-1] >= mi.Perm[p] {
				t.Fatalf("mode %d: counting sort not stable at %d", mode, p)
			}
		}
		for r := 0; r < x.Dims[mode]; r++ {
			for p := mi.RowPtr[r]; p < mi.RowPtr[r+1]; p++ {
				if got := x.Entries[mi.Perm[p]].Idx[mode]; got != uint32(r) {
					t.Fatalf("mode %d row %d: segment holds entry of row %d", mode, r, got)
				}
			}
		}
	}
}

func TestModeIndexRanges(t *testing.T) {
	x := partitionTestTensor()
	for mode := 0; mode < x.Order(); mode++ {
		mi := x.ModeIndex(mode)
		for _, parts := range []int{1, 2, 3, 8, 100} {
			ranges := mi.Ranges(parts)
			if len(ranges) > parts {
				t.Fatalf("mode %d parts %d: got %d ranges", mode, parts, len(ranges))
			}
			covered := 0
			prevRow := 0
			for _, r := range ranges {
				if r.RowLo < prevRow || r.RowHi <= r.RowLo {
					t.Fatalf("mode %d parts %d: bad row range %+v", mode, parts, r)
				}
				if int(mi.RowPtr[r.RowLo]) != r.Lo || int(mi.RowPtr[r.RowHi]) != r.Hi {
					t.Fatalf("mode %d parts %d: range %+v not row-aligned", mode, parts, r)
				}
				covered += r.Hi - r.Lo
				prevRow = r.RowHi
			}
			if covered != x.NNZ() {
				t.Fatalf("mode %d parts %d: ranges cover %d of %d nonzeros", mode, parts, covered, x.NNZ())
			}
		}
	}
}

func TestModeIndexCacheInvalidation(t *testing.T) {
	x := New(4, 4)
	x.Append(1, 0, 0)
	mi := x.ModeIndex(0)
	if len(mi.Perm) != 1 {
		t.Fatalf("perm length %d", len(mi.Perm))
	}
	if x.ModeIndex(0) != mi {
		t.Fatal("second lookup should hit the cache")
	}
	x.Append(2, 3, 1)
	mi2 := x.ModeIndex(0)
	if mi2 == mi || len(mi2.Perm) != 2 {
		t.Fatal("Append must invalidate the cached index")
	}
	x.Sort()
	if x.ModeIndex(0) == mi2 {
		t.Fatal("Sort must invalidate the cached index")
	}
	x.DedupSum()
	mi3 := x.ModeIndex(0)
	if len(mi3.Perm) != 2 {
		t.Fatalf("post-dedup perm length %d", len(mi3.Perm))
	}
}

func TestModeIndexConcurrentBuild(t *testing.T) {
	x := partitionTestTensor()
	done := make(chan *ModeIndex, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- x.ModeIndex(1) }()
	}
	first := <-done
	for i := 1; i < 8; i++ {
		if got := <-done; got != first {
			t.Fatal("concurrent builds returned different indexes")
		}
	}
}

func TestModeIndexEmptyTensor(t *testing.T) {
	x := New(3, 3)
	mi := x.ModeIndex(0)
	if len(mi.Perm) != 0 {
		t.Fatal("empty tensor should have empty perm")
	}
	if got := mi.Ranges(4); len(got) != 0 {
		t.Fatalf("empty tensor produced ranges %v", got)
	}
}
