package tensor

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTNSRoundTrip(t *testing.T) {
	x := GenUniform(3, 300, 15, 25, 35)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	// Declared dims: read back with explicit sizes (max index may be < dim).
	y, err := ReadTNS(bytes.NewReader(buf.Bytes()), []int{15, 25, 35})
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() {
		t.Fatalf("nnz %d != %d", y.NNZ(), x.NNZ())
	}
	for i := range x.Entries {
		if x.Entries[i] != y.Entries[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, x.Entries[i], y.Entries[i])
		}
	}
}

func TestTNSInferDims(t *testing.T) {
	in := "# a comment\n\n1 1 1 2.5\n3 2 4 -1\n"
	x, err := ReadTNS(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 3 || x.Dims[0] != 3 || x.Dims[1] != 2 || x.Dims[2] != 4 {
		t.Fatalf("inferred dims %v", x.Dims)
	}
	if x.At(0, 0, 0) != 2.5 || x.At(2, 1, 3) != -1 {
		t.Fatal("values wrong")
	}
}

func TestTNSErrors(t *testing.T) {
	cases := map[string]string{
		"zero index":      "0 1 1 5\n",
		"bad field count": "1 2 3 4 5 extra mismatch\n1 2 3\n",
		"bad index":       "x 1 1 5\n",
		"bad value":       "1 1 1 zzz\n",
		"empty":           "# nothing\n",
	}
	for name, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in), nil); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Index beyond declared dims.
	if _, err := ReadTNS(strings.NewReader("5 1 1 2\n"), []int{3, 3, 3}); err == nil {
		t.Error("expected out-of-bounds error")
	}
	// Declared order mismatch.
	if _, err := ReadTNS(strings.NewReader("1 1 2\n"), []int{3, 3, 3}); err == nil {
		t.Error("expected order mismatch error")
	}
}

func TestTNSFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tns")
	x := GenUniform(9, 100, 8, 8, 8)
	// Ensure max index hits the declared dims so inference round-trips.
	x.Append(1, 7, 7, 7)
	x.DedupSum()
	if err := SaveTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() || y.Dims[0] != 8 {
		t.Fatalf("round trip: nnz=%d dims=%v", y.NNZ(), y.Dims)
	}
	if _, err := LoadTNSFile(filepath.Join(dir, "missing.tns")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestTNSGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tns.gz")
	x := GenUniform(21, 300, 12, 11, 10)
	x.Append(1, 11, 10, 9) // pin the max indices for inference
	x.DedupSum()
	if err := SaveTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := LoadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() {
		t.Fatalf("gzip round trip: nnz %d vs %d", y.NNZ(), x.NNZ())
	}
	// A non-gzip file with a .gz name must error, not crash.
	bad := filepath.Join(dir, "bad.tns.gz")
	if err := os.WriteFile(bad, []byte("1 1 1 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTNSFile(bad); err == nil {
		t.Fatal("expected gzip header error")
	}
}
