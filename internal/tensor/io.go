package tensor

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// FROSTT .tns text format: one nonzero per line, whitespace-separated
// 1-based indices followed by the value. Lines starting with '#' and blank
// lines are ignored. This is the interchange format of the datasets in
// Table 5 of the paper (frostt.io), and the append-only log format the
// streaming tail-follower (internal/stream) consumes.

// ParseTNSLine parses one .tns line into an Entry. order fixes the expected
// number of index fields; order == 0 infers it from the line (the returned
// ord is the inferred value, for callers learning the order from the first
// data line). Blank lines and '#' comments return ok == false with no
// error. Errors do not carry a line number — callers that track position
// wrap them (see ReadTNS) so a bad line deep in a large file is locatable.
func ParseTNSLine(line string, order int) (e Entry, ord int, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return Entry{}, order, false, nil
	}
	fields := strings.Fields(line)
	if order == 0 {
		order = len(fields) - 1
		if order < 1 || order > MaxOrder {
			return Entry{}, 0, false, fmt.Errorf("order %d out of range [1,%d]", order, MaxOrder)
		}
	}
	if len(fields) != order+1 {
		return Entry{}, order, false, fmt.Errorf("expected %d fields, got %d", order+1, len(fields))
	}
	for m := 0; m < order; m++ {
		v, err := strconv.ParseUint(fields[m], 10, 32)
		if err != nil {
			return Entry{}, order, false, fmt.Errorf("bad index %q: %v", fields[m], err)
		}
		if v == 0 {
			return Entry{}, order, false, fmt.Errorf(".tns indices are 1-based, got 0")
		}
		e.Idx[m] = uint32(v - 1)
	}
	val, err := strconv.ParseFloat(fields[order], 64)
	if err != nil {
		return Entry{}, order, false, fmt.Errorf("bad value %q: %v", fields[order], err)
	}
	e.Val = val
	return e, order, true, nil
}

// ReadTNS parses a .tns stream. If dims is nil the mode sizes are inferred
// as the per-mode maximum index. Parse errors carry the 1-based line number.
func ReadTNS(r io.Reader, dims []int) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var entries []Entry
	order := 0
	maxIdx := make([]uint32, 0, MaxOrder)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		e, ord, ok, err := ParseTNSLine(sc.Text(), order)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: %v", lineNo, err)
		}
		if !ok {
			continue
		}
		if order == 0 {
			order = ord
			maxIdx = make([]uint32, order)
		}
		for m := 0; m < order; m++ {
			if e.Idx[m]+1 > maxIdx[m] {
				maxIdx[m] = e.Idx[m] + 1
			}
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tensor: line %d: %w", lineNo+1, err)
	}
	if order == 0 {
		return nil, fmt.Errorf("tensor: empty .tns input")
	}

	if dims == nil {
		dims = make([]int, order)
		for m := range dims {
			dims[m] = int(maxIdx[m])
		}
	} else if len(dims) != order {
		return nil, fmt.Errorf("tensor: declared order %d != data order %d", len(dims), order)
	} else {
		for m := range dims {
			if int(maxIdx[m]) > dims[m] {
				return nil, fmt.Errorf("tensor: mode %d has index %d beyond declared size %d", m, maxIdx[m], dims[m])
			}
		}
	}
	t := New(dims...)
	t.Entries = entries
	return t, nil
}

// WriteTNS writes t in FROSTT .tns format (1-based indices).
func WriteTNS(w io.Writer, t *COO) error {
	bw := bufio.NewWriter(w)
	order := t.Order()
	for i := range t.Entries {
		e := &t.Entries[i]
		for m := 0; m < order; m++ {
			if _, err := fmt.Fprintf(bw, "%d ", e.Idx[m]+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%g\n", e.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// gzipMagic is the two-byte header every gzip stream starts with.
var gzipMagic = []byte{0x1f, 0x8b}

// LoadTNSFile reads a .tns file from disk, inferring mode sizes.
// Gzip-compressed files are transparently decompressed — detected by the
// .gz suffix or by the gzip magic bytes, so a FROSTT download saved without
// the extension still loads. Errors are prefixed with the path (parse
// errors additionally carry the 1-based line number from ReadTNS).
func LoadTNSFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var r io.Reader = br
	head, _ := br.Peek(2)
	if strings.HasSuffix(path, ".gz") || (len(head) == 2 && head[0] == gzipMagic[0] && head[1] == gzipMagic[1]) {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("tensor: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	t, err := ReadTNS(r, nil)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// SaveTNSFile writes t to a .tns file (gzip-compressed when the path ends
// in .gz).
func SaveTNSFile(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteTNS(w, t); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
