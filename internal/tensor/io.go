package tensor

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// FROSTT .tns text format: one nonzero per line, whitespace-separated
// 1-based indices followed by the value. Lines starting with '#' and blank
// lines are ignored. This is the interchange format of the datasets in
// Table 5 of the paper (frostt.io).

// ReadTNS parses a .tns stream. If dims is nil the mode sizes are inferred
// as the per-mode maximum index.
func ReadTNS(r io.Reader, dims []int) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var entries []Entry
	order := 0
	maxIdx := make([]uint32, 0, MaxOrder)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if order == 0 {
			order = len(fields) - 1
			if order < 1 || order > MaxOrder {
				return nil, fmt.Errorf("tensor: line %d: order %d out of range", lineNo, order)
			}
			maxIdx = make([]uint32, order)
		}
		if len(fields) != order+1 {
			return nil, fmt.Errorf("tensor: line %d: expected %d fields, got %d", lineNo, order+1, len(fields))
		}
		var e Entry
		for m := 0; m < order; m++ {
			v, err := strconv.ParseUint(fields[m], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("tensor: line %d: bad index %q: %v", lineNo, fields[m], err)
			}
			if v == 0 {
				return nil, fmt.Errorf("tensor: line %d: .tns indices are 1-based, got 0", lineNo)
			}
			e.Idx[m] = uint32(v - 1)
			if e.Idx[m]+1 > maxIdx[m] {
				maxIdx[m] = e.Idx[m] + 1
			}
		}
		val, err := strconv.ParseFloat(fields[order], 64)
		if err != nil {
			return nil, fmt.Errorf("tensor: line %d: bad value %q: %v", lineNo, fields[order], err)
		}
		e.Val = val
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if order == 0 {
		return nil, fmt.Errorf("tensor: empty .tns input")
	}

	if dims == nil {
		dims = make([]int, order)
		for m := range dims {
			dims[m] = int(maxIdx[m])
		}
	} else if len(dims) != order {
		return nil, fmt.Errorf("tensor: declared order %d != data order %d", len(dims), order)
	} else {
		for m := range dims {
			if int(maxIdx[m]) > dims[m] {
				return nil, fmt.Errorf("tensor: mode %d has index %d beyond declared size %d", m, maxIdx[m], dims[m])
			}
		}
	}
	t := New(dims...)
	t.Entries = entries
	return t, nil
}

// WriteTNS writes t in FROSTT .tns format (1-based indices).
func WriteTNS(w io.Writer, t *COO) error {
	bw := bufio.NewWriter(w)
	order := t.Order()
	for i := range t.Entries {
		e := &t.Entries[i]
		for m := 0; m < order; m++ {
			if _, err := fmt.Fprintf(bw, "%d ", e.Idx[m]+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%g\n", e.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTNSFile reads a .tns file from disk, inferring mode sizes.
// Files ending in .gz are transparently decompressed — FROSTT distributes
// its tensors as .tns.gz.
func LoadTNSFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("tensor: %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return ReadTNS(r, nil)
}

// SaveTNSFile writes t to a .tns file (gzip-compressed when the path ends
// in .gz).
func SaveTNSFile(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := WriteTNS(w, t); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}
