package tensor

import (
	"testing"
	"testing/quick"

	"cstf/internal/rng"
)

func TestCSFStructure(t *testing.T) {
	x := New(3, 4, 5)
	x.Append(1, 0, 1, 2)
	x.Append(2, 0, 1, 3)
	x.Append(3, 0, 2, 0)
	x.Append(4, 2, 0, 0)
	c := NewCSF(x, []int{0, 1, 2})
	if c.NNZ() != 4 {
		t.Fatalf("nnz %d", c.NNZ())
	}
	fibers := c.Fibers()
	// Roots: i=0 and i=2; level-1 nodes: (0,1), (0,2), (2,0); leaves: 4.
	if fibers[0] != 2 || fibers[1] != 3 || fibers[2] != 4 {
		t.Fatalf("fibers %v", fibers)
	}
	// Root 0 has children [0,2), root 2 has [2,3).
	if c.Ptr[0][0] != 0 || c.Ptr[0][1] != 2 || c.Ptr[0][2] != 3 {
		t.Fatalf("root ptrs %v", c.Ptr[0])
	}
	// Node (0,1) has two leaves.
	if c.Ptr[1][0] != 0 || c.Ptr[1][1] != 2 {
		t.Fatalf("level-1 ptrs %v", c.Ptr[1])
	}
}

func TestCSFEnumeratesAllNonzeros(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		order := 3 + src.Intn(2)
		dims := make([]int, order)
		for i := range dims {
			dims[i] = 4 + src.Intn(12)
		}
		x := GenUniform(seed, 150, dims...)
		mo := make([]int, order)
		for i := range mo {
			mo[i] = i
		}
		// Random mode order: rotate by a random amount.
		rot := src.Intn(order)
		mo = append(mo[rot:], mo[:rot]...)
		c := NewCSF(x, mo)
		if c.NNZ() != x.NNZ() {
			return false
		}
		// Walk the tree and reconstruct every coordinate; the multiset of
		// (coords, value) must equal the COO entries.
		recovered := New(dims...)
		idx := make([]int, order)
		var walk func(l int, n int32)
		walk = func(l int, n int32) {
			idx[mo[l]] = int(c.Idx[l][n])
			if l == order-1 {
				recovered.Append(c.Vals[n], idx...)
				return
			}
			for ch := c.Ptr[l][n]; ch < c.Ptr[l][n+1]; ch++ {
				walk(l+1, ch)
			}
		}
		// Roots need their leaf range walked via child pointers; roots are
		// level-0 nodes.
		if order >= 2 {
			for r := int32(0); r < int32(len(c.Idx[0])); r++ {
				idx[mo[0]] = int(c.Idx[0][r])
				for ch := c.Ptr[0][r]; ch < c.Ptr[0][r+1]; ch++ {
					walk(1, ch)
				}
			}
		}
		if recovered.NNZ() != x.NNZ() {
			return false
		}
		recovered.Sort()
		x.Sort()
		for i := range x.Entries {
			if x.Entries[i] != recovered.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCSFValidation(t *testing.T) {
	x := GenUniform(1, 50, 5, 5, 5)
	for _, bad := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewCSF(%v) must panic", bad)
				}
			}()
			NewCSF(x, bad)
		}()
	}
	// Duplicates must be rejected.
	dup := New(3, 3, 3)
	dup.Append(1, 1, 1, 1)
	dup.Append(2, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate coordinates must panic")
		}
	}()
	NewCSF(dup, []int{0, 1, 2})
}

func TestCSFEmpty(t *testing.T) {
	c := NewCSF(New(3, 3, 3), []int{0, 1, 2})
	if c.NNZ() != 0 || len(c.Ptr[0]) != 1 {
		t.Fatalf("empty CSF: %+v", c)
	}
}

func TestCSFFiberCompression(t *testing.T) {
	// Data with strong fiber locality: few (i, j) pairs, many k values.
	x := New(10, 10, 200)
	src := rng.New(9)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			for n := 0; n < 40; n++ {
				x.Append(1, i, j, src.Intn(200))
			}
		}
	}
	x.DedupSum()
	c := NewCSF(x, []int{0, 1, 2})
	fibers := c.Fibers()
	if fibers[0] != 5 || fibers[1] != 25 {
		t.Fatalf("expected 5 roots, 25 fibers; got %v", fibers)
	}
	if fibers[2] != x.NNZ() {
		t.Fatalf("leaves %d != nnz %d", fibers[2], x.NNZ())
	}
}
