// Package rals implements randomized CP-ALS with leverage-score-sampled
// MTTKRP (in the style of CP-ARLS-LEV): instead of sweeping every nonzero
// each iteration, each mode update draws a deterministic weighted sample of
// the nonzeros — weights derived from the current factors' leverage scores
// — and feeds the importance-weighted sampled MTTKRP to the exact row-solve
// path. Reported fits are always EXACT (a full pass over the tensor at
// epoch boundaries), never a sketch.
//
// Determinism contract: for a fixed seed, the factors are bitwise identical
// across runs, across Parallelism values, and across distributed worker
// counts (internal/dist runs this same solver, distributing only the
// sampled MTTKRP over row-aligned shards). Sample draws are pure functions
// of (seed, epoch, mode, draw index) via rng.UniformAt against a weight
// table computed from the epoch-start factors, so a resumed run redraws
// exactly what the uninterrupted run drew.
//
// With a sample budget >= nnz a mode update degenerates to the exact
// kernel over the full tensor, making the solve bitwise identical to
// cpals.Solve — the property tests pin this.
package rals

import (
	"context"
	"fmt"
	"math"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/par"
	"cstf/internal/rng"
	"cstf/internal/tensor"
)

// samplingTag namespaces the sampler's rng.UniformAt draws away from every
// other consumer of the shared hash (factor init uses 0xFAC70).
const samplingTag = 0x5A37157

// defensiveMix is the uniform fraction blended into the leverage-score
// sampling weights (defensive importance sampling): it floors every entry's
// weight at defensiveMix*mean, bounding the worst-case importance scale at
// nnz/(defensiveMix*budget) without biasing the estimator.
const defensiveMix = 0.1

// State is the solver state beyond (lambda, factors) that a checkpoint must
// carry for a bitwise resume: the UNNORMALIZED factor matrices (rows kept
// across epochs live at solved-row scale; rebuilding them as A*diag(lambda)
// would reintroduce rounding) plus the resolved sampling schedule, so the
// resumed run redraws exactly the samples the uninterrupted run would have.
type State struct {
	ResampleEvery int         // epoch length in iterations
	SampleCounts  []int       // resolved per-mode sample budgets
	Unnorm        []*la.Dense // unnormalized factors, one per mode
}

// Kernel abstracts where sampled MTTKRPs run. A nil Kernel computes them
// locally; internal/dist plugs in a fleet-backed implementation that ships
// each epoch's drawn nonzeros to workers as row-aligned shards. Everything
// else — sampling, row solves, normalization, grams, exact fits — runs on
// the caller, so a Kernel only has to reproduce the MTTKRP bits (which are
// partition-independent: per output row, entries accumulate in the sampled
// tensor's stable mode-index order).
type Kernel interface {
	// Epoch announces a new epoch's sampled tensors, indexed by mode (nil
	// for modes whose budget covers the full tensor).
	Epoch(epoch int, sampled []*tensor.COO) error
	// MTTKRP computes the sampled mode-n MTTKRP into out (dims[n] x rank,
	// zeroed by the caller) using the current factors.
	MTTKRP(mode int, factors []*la.Dense, out *la.Dense) error
	// FactorUpdated announces factor `mode` changed (after the initial
	// materialization and after every mode update).
	FactorUpdated(mode int, m *la.Dense)
}

// Options configures a randomized ALS run. The Rank/MaxIters/Tol/Seed/
// Parallelism/Ctx/OnIteration/StartIter/Init*/Checkpoint* fields mean
// exactly what they mean in cpals.Options.
type Options struct {
	Rank     int
	MaxIters int
	// Tol stops the run when consecutive EXACT fit evaluations (one per
	// epoch) improve by less than Tol. 0 disables.
	Tol         float64
	Seed        uint64
	Parallelism int

	// SampleCount is the per-mode sample budget: how many weighted draws
	// (with replacement) each mode update's MTTKRP uses. SampleFraction
	// expresses the same budget as a fraction of nnz; ModeSampleCounts
	// overrides the budget for individual modes (0 entries defer to the
	// global budget). Exactly one of SampleCount/SampleFraction must be
	// set unless every mode is covered by ModeSampleCounts. A budget
	// >= nnz switches that mode to the exact kernel over the full tensor.
	SampleCount      int
	SampleFraction   float64
	ModeSampleCounts []int

	// ResampleEvery is the epoch length: how many iterations reuse one
	// drawn sample before leverage scores are recomputed and the sample
	// redrawn. Exact fits are evaluated at epoch boundaries. Default 1.
	ResampleEvery int

	// FinalFitOnly skips the per-epoch exact fit evaluations, computing
	// only the final one — the cheapest configuration when only the end
	// state matters. Tol-based convergence is then inactive.
	FinalFitOnly bool

	// ExactFinishIters makes the last k iterations run the exact kernel
	// for every mode — a polish phase. Sampled iterations race to the
	// neighborhood of the solution; a few exact sweeps from that warm
	// start close the remaining gap to the exact fixed point at full
	// per-iteration cost. 0 disables (pure sampled run).
	ExactFinishIters int

	Ctx         context.Context
	OnIteration func(iter int, fit float64) (stop bool)

	// StartIter/InitFactors/InitLambda/InitFits resume or warm-start the
	// solve, as in cpals. StartIter must be a multiple of ResampleEvery
	// (checkpoints only fire at epoch boundaries). InitUnnorm, when set,
	// bitwise-restores the unnormalized factors from a checkpoint's
	// State; when nil with InitFactors set (a warm start, e.g. the
	// streaming updater), the unnormalized factors are seeded as
	// A*diag(lambda) — the ALS fixed-point identity.
	StartIter   int
	InitFactors []*la.Dense
	InitLambda  []float64
	InitFits    []float64
	InitUnnorm  []*la.Dense

	// CheckpointEvery/OnCheckpoint checkpoint the run as in cpals, with
	// the sampler State alongside. Checkpoints fire only at iterations
	// that are multiples of both CheckpointEvery and ResampleEvery, so
	// every checkpoint is an epoch boundary a resume can redraw from.
	CheckpointEvery int
	OnCheckpoint    func(iter int, lambda []float64, factors []*la.Dense, fits []float64, st *State) error

	// Kernel, when non-nil, computes the sampled MTTKRPs (see Kernel).
	Kernel Kernel
}

// Workers resolves the effective worker count.
func (o *Options) Workers() int { return par.Workers(o.Parallelism) }

// Interrupted reports the context's error if Ctx is set and cancelled.
func (o *Options) Interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// Budgets resolves the per-mode sample counts against a tensor.
func (o *Options) Budgets(t *tensor.COO) ([]int, error) {
	order := t.Order()
	nnz := t.NNZ()
	if len(o.ModeSampleCounts) != 0 && len(o.ModeSampleCounts) != order {
		return nil, fmt.Errorf("rals: %d ModeSampleCounts for an order-%d tensor", len(o.ModeSampleCounts), order)
	}
	if o.SampleCount < 0 {
		return nil, fmt.Errorf("rals: SampleCount must be non-negative, got %d", o.SampleCount)
	}
	if o.SampleFraction < 0 {
		return nil, fmt.Errorf("rals: SampleFraction must be non-negative, got %g", o.SampleFraction)
	}
	if o.SampleCount > 0 && o.SampleFraction > 0 {
		return nil, fmt.Errorf("rals: set SampleCount or SampleFraction, not both")
	}
	global := o.SampleCount
	if o.SampleFraction > 0 {
		global = int(math.Ceil(o.SampleFraction * float64(nnz)))
	}
	budgets := make([]int, order)
	for m := range budgets {
		s := global
		if len(o.ModeSampleCounts) > 0 && o.ModeSampleCounts[m] > 0 {
			s = o.ModeSampleCounts[m]
		}
		if s <= 0 {
			return nil, fmt.Errorf("rals: mode %d has no sample budget (set SampleCount, SampleFraction, or ModeSampleCounts)", m)
		}
		budgets[m] = s
	}
	return budgets, nil
}

// Validate checks the options against a tensor.
func (o *Options) Validate(t *tensor.COO) error {
	if o.Rank <= 0 {
		return fmt.Errorf("rals: rank must be positive, got %d", o.Rank)
	}
	if o.MaxIters <= 0 {
		return fmt.Errorf("rals: MaxIters must be positive, got %d", o.MaxIters)
	}
	if t.NNZ() == 0 {
		return fmt.Errorf("rals: tensor has no nonzeros")
	}
	if _, err := o.Budgets(t); err != nil {
		return err
	}
	e := o.ResampleEvery
	if e <= 0 {
		e = 1
	}
	if o.ExactFinishIters < 0 {
		return fmt.Errorf("rals: ExactFinishIters must be non-negative, got %d", o.ExactFinishIters)
	}
	if o.StartIter < 0 {
		return fmt.Errorf("rals: StartIter must be non-negative, got %d", o.StartIter)
	}
	if o.StartIter%e != 0 {
		return fmt.Errorf("rals: StartIter %d is not an epoch boundary (ResampleEvery %d)", o.StartIter, e)
	}
	if o.StartIter > 0 && o.InitFactors == nil {
		return fmt.Errorf("rals: StartIter %d requires InitFactors", o.StartIter)
	}
	checkFactors := func(name string, fs []*la.Dense) error {
		if len(fs) != t.Order() {
			return fmt.Errorf("rals: %d %s for an order-%d tensor", len(fs), name, t.Order())
		}
		for n, f := range fs {
			if f == nil || f.Rows != t.Dims[n] || f.Cols != o.Rank {
				return fmt.Errorf("rals: %s[%d] must be %dx%d", name, n, t.Dims[n], o.Rank)
			}
		}
		return nil
	}
	if o.InitFactors != nil {
		if err := checkFactors("InitFactors", o.InitFactors); err != nil {
			return err
		}
		if len(o.InitLambda) != o.Rank {
			return fmt.Errorf("rals: InitLambda length %d != rank %d", len(o.InitLambda), o.Rank)
		}
	}
	if o.InitUnnorm != nil {
		if o.InitFactors == nil {
			return fmt.Errorf("rals: InitUnnorm requires InitFactors")
		}
		if err := checkFactors("InitUnnorm", o.InitUnnorm); err != nil {
			return err
		}
	}
	return nil
}

// Solve runs randomized CP-ALS. The returned result has the same shape and
// semantics as cpals.Solve's: normalized factors, lambda, and per-epoch
// EXACT fits (per-iteration when ResampleEvery is 1).
func Solve(t *tensor.COO, o Options) (*cpals.Result, error) {
	if err := o.Validate(t); err != nil {
		return nil, err
	}
	order := t.Order()
	rank := o.Rank
	w := o.Workers()
	nnz := t.NNZ()
	epochLen := o.ResampleEvery
	if epochLen <= 0 {
		epochLen = 1
	}
	budgets, err := o.Budgets(t)
	if err != nil {
		return nil, err
	}
	allFull := true
	for m, s := range budgets {
		if s < nnz {
			allFull = false
		} else {
			budgets[m] = nnz // cap: the exact kernel ignores the excess
		}
	}

	// Factors: A[n] is the normalized factor (what MTTKRP, grams, and the
	// fit read), U[n] the unnormalized one (what row solves write). Rows a
	// sampled update skips keep their previous unnormalized value — mixing
	// normalized kept rows with freshly solved rows would collapse them
	// after renormalization. With a full budget every row is solved every
	// update and the split is invisible: the solve is bitwise cpals.Solve.
	factors := make([]*la.Dense, order)
	unnorm := make([]*la.Dense, order)
	grams := make([]*la.Dense, order)
	for n := 0; n < order; n++ {
		switch {
		case o.InitUnnorm != nil:
			factors[n] = o.InitFactors[n].Clone()
			unnorm[n] = o.InitUnnorm[n].Clone()
		case o.InitFactors != nil:
			factors[n] = o.InitFactors[n].Clone()
			u := o.InitFactors[n].Clone()
			scaleColumns(u, o.InitLambda, w)
			unnorm[n] = u
		default:
			factors[n] = cpals.InitFactor(o.Seed, n, t.Dims[n], rank)
			unnorm[n] = factors[n].Clone()
		}
		grams[n] = la.GramParallel(factors[n], w)
		if o.Kernel != nil {
			o.Kernel.FactorUpdated(n, factors[n])
		}
	}

	normX := t.Norm()
	res := &cpals.Result{Factors: factors, Iters: o.StartIter}
	res.Fits = append(res.Fits, o.InitFits...)
	lambda := la.VecClone(o.InitLambda)
	var lastM *la.Dense
	ws := &cpals.Workspace{}
	smp := newSampler(t, o.Seed, budgets, w)
	sampled := make([]*tensor.COO, order)

	checkpoint := func(it int) error {
		if o.CheckpointEvery <= 0 || o.OnCheckpoint == nil {
			return nil
		}
		if (it+1)%o.CheckpointEvery != 0 || (it+1)%epochLen != 0 {
			return nil
		}
		st := &State{
			ResampleEvery: epochLen,
			SampleCounts:  append([]int(nil), budgets...),
			Unnorm:        make([]*la.Dense, order),
		}
		for n := range unnorm {
			st.Unnorm[n] = unnorm[n].Clone()
		}
		return o.OnCheckpoint(it+1, lambda, factors, res.Fits, st)
	}

	// Iterations >= finishStart are the exact polish phase: every mode runs
	// the exact kernel over the full tensor, no sampling.
	finishStart := o.MaxIters - o.ExactFinishIters
	if finishStart < o.StartIter {
		finishStart = o.StartIter
	}

	for it := o.StartIter; it < o.MaxIters; it++ {
		if err := o.Interrupted(); err != nil {
			return nil, err
		}
		exactPhase := it >= finishStart
		if it%epochLen == 0 && !allFull && !exactPhase {
			// Epoch boundary: recompute leverage scores from the current
			// factors and redraw every sampled mode's nonzeros.
			epoch := it / epochLen
			smp.refreshScores(factors, grams)
			for m := 0; m < order; m++ {
				if budgets[m] < nnz {
					sampled[m] = smp.draw(epoch, m)
				}
			}
			if o.Kernel != nil {
				if err := o.Kernel.Epoch(epoch, sampled); err != nil {
					return nil, err
				}
			}
		}
		for n := 0; n < order; n++ {
			full := budgets[n] >= nnz || exactPhase
			var m *la.Dense
			if full {
				m = cpals.MTTKRPWorkers(t, n, factors, w, ws.Out(n, t.Dims[n], rank, w), ws)
			} else {
				m = ws.Out(n, t.Dims[n], rank, w)
				if o.Kernel != nil {
					if err := o.Kernel.MTTKRP(n, factors, m); err != nil {
						return nil, err
					}
				} else {
					cpals.MTTKRPWorkers(sampled[n], n, factors, w, m, ws)
				}
			}
			pinv := la.Pinv(cpals.HadamardOfGramsExcept(grams, n))
			u := unnorm[n]
			if full {
				la.RowBlocksApply(w, u.Rows, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						la.VecMatInto(u.Row(i), m.Row(i), pinv)
					}
				})
			} else {
				// Solve only the rows the sample touched; keep the rest at
				// their previous unnormalized value; pin structurally empty
				// rows to zero (what the exact solver computes for them).
				smi := sampled[n].ModeIndex(n)
				fmi := t.ModeIndex(n)
				la.RowBlocksApply(w, u.Rows, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						switch {
						case smi.RowPtr[i+1] > smi.RowPtr[i]:
							la.VecMatInto(u.Row(i), m.Row(i), pinv)
						case fmi.RowPtr[i+1] == fmi.RowPtr[i]:
							row := u.Row(i)
							for r := range row {
								row[r] = 0
							}
						}
					}
				})
			}
			a := u.Clone()
			lambda = la.NormalizeColumnsParallel(a, w)
			factors[n] = a
			grams[n] = la.GramParallel(a, w)
			if o.Kernel != nil {
				o.Kernel.FactorUpdated(n, a)
			}
			lastM = m
		}
		res.Iters = it + 1

		epochEnd := (it+1)%epochLen == 0
		last := it == o.MaxIters-1
		if (epochEnd && !o.FinalFitOnly) || last {
			var fit float64
			if allFull || exactPhase {
				// Bitwise-cpals path: the SPLATT fit identity over the last
				// mode's exact MTTKRP, no extra tensor pass.
				fit = cpals.FitFromWorkers(normX, lastM, factors[order-1], lambda, grams, w)
			} else {
				inner := innerProductWorkers(t, lambda, factors, w)
				fit = cpals.FitFromInner(normX, inner, lambda, grams)
			}
			res.Fits = append(res.Fits, fit)
			if o.OnIteration != nil && o.OnIteration(it, fit) {
				break
			}
			if err := checkpoint(it); err != nil {
				return nil, err
			}
			if nf := len(res.Fits); o.Tol > 0 && nf > 1 {
				if math.Abs(res.Fits[nf-1]-res.Fits[nf-2]) < o.Tol {
					break
				}
			}
			continue
		}
		if err := checkpoint(it); err != nil {
			return nil, err
		}
	}
	res.Lambda = lambda
	return res, nil
}

// scaleColumns multiplies column r of m by s[r].
func scaleColumns(m *la.Dense, s []float64, workers int) {
	la.RowBlocksApply(workers, m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for r := range row {
				row[r] *= s[r]
			}
		}
	})
}

// innerProductWorkers computes <X, X_hat> by a pass over the nonzeros,
// reduced in fixed par.SumBlocks block order (bitwise independent of the
// worker count).
func innerProductWorkers(t *tensor.COO, lambda []float64, factors []*la.Dense, workers int) float64 {
	rank := len(lambda)
	order := t.Order()
	return par.SumBlocks(workers, len(t.Entries), func(lo, hi int) float64 {
		tmp := make([]float64, rank)
		var sum float64
		for p := lo; p < hi; p++ {
			e := &t.Entries[p]
			copy(tmp, lambda)
			for n := 0; n < order; n++ {
				la.VecMulInto(tmp, factors[n].Row(int(e.Idx[n])))
			}
			var v float64
			for r := range tmp {
				v += tmp[r]
			}
			sum += v * e.Val
		}
		return sum
	})
}

// sampler draws the per-epoch, per-mode weighted nonzero samples. All
// randomness flows through rng.UniformAt keyed by (seed, samplingTag,
// epoch, mode, draw), so draws are pure functions of the solver state —
// nothing here depends on worker count or timing.
type sampler struct {
	t       *tensor.COO
	seed    uint64
	budgets []int
	workers int

	scores [][]float64 // per mode: leverage score of each row
	weight []float64   // scratch: per-entry sampling weight
	counts []int32     // scratch: per-entry draw multiplicity
}

func newSampler(t *tensor.COO, seed uint64, budgets []int, workers int) *sampler {
	s := &sampler{t: t, seed: seed, budgets: budgets, workers: workers}
	s.scores = make([][]float64, t.Order())
	for m := range s.scores {
		s.scores[m] = make([]float64, t.Dims[m])
	}
	s.weight = make([]float64, len(t.Entries))
	s.counts = make([]int32, len(t.Entries))
	return s
}

// refreshScores recomputes every mode's per-row leverage score estimates
// from the current factors: lev_m(i) = a_i^T pinv(G_m) a_i, clamped at 0
// (the exact leverage scores of A_m's row space, up to pinv conditioning).
func (s *sampler) refreshScores(factors, grams []*la.Dense) {
	for m := range s.scores {
		p := la.Pinv(grams[m])
		a := factors[m]
		sc := s.scores[m]
		la.RowBlocksApply(s.workers, a.Rows, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := a.Row(i)
				var q float64
				for r := range row {
					var pr float64
					prow := p.Row(r)
					for c := range row {
						pr += prow[c] * row[c]
					}
					q += row[r] * pr
				}
				if q < 0 || math.IsNaN(q) {
					q = 0
				}
				sc[i] = q
			}
		})
	}
}

// draw samples budgets[mode] nonzeros with replacement, weighted by the
// product of the OTHER modes' leverage scores at each entry's coordinates,
// and returns them as an importance-weighted COO: each distinct drawn entry
// appears once, in storage order, with value val*count*total/(budget*w) —
// an unbiased estimator of the exact MTTKRP. Degenerate weight tables (all
// zero, infinite, NaN) fall back to uniform weights deterministically.
func (s *sampler) draw(epoch, mode int) *tensor.COO {
	t := s.t
	order := t.Order()
	n := len(t.Entries)
	la.RowBlocksApply(s.workers, n, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			e := &t.Entries[p]
			w := 1.0
			for m := 0; m < order; m++ {
				if m == mode {
					continue
				}
				w *= s.scores[m][e.Idx[m]]
			}
			s.weight[p] = w
		}
	})
	var total float64
	for p := 0; p < n; p++ {
		total += s.weight[p]
	}
	if total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		for p := 0; p < n; p++ {
			s.weight[p] = 1
		}
		total = float64(n)
	} else {
		// Defensive mixing: blend the leverage weights with uniform so no
		// entry's importance scale (total/(budget*w)) can explode — a
		// tiny-weight entry that does get drawn would otherwise inject an
		// enormous scaled value and destabilize the sketched update. The
		// estimator divides by the weight actually used, so it stays
		// unbiased.
		mix := defensiveMix * total / float64(n)
		total = 0
		for p := 0; p < n; p++ {
			w := (1-defensiveMix)*s.weight[p] + mix
			s.weight[p] = w
			total += w
		}
	}

	// Systematic (low-discrepancy) resampling: one uniform offset u, then
	// budget equally spaced probes u, u+1, ... over the cdf scaled to
	// [0, budget). count_p = #probes inside entry p's cdf segment, so
	// E[count_p] = budget*w_p/total with variance at most 1 — entries
	// whose expected count exceeds 1 are included deterministically. Far
	// lower estimator variance than independent multinomial draws, still
	// unbiased, and still a pure function of (seed, epoch, mode).
	budget := s.budgets[mode]
	u := rng.UniformAt(s.seed, samplingTag, uint64(epoch), uint64(mode))
	step := total / float64(budget)
	distinct := 0
	pos := u * step
	cum := 0.0
	for p := 0; p < n; p++ {
		cum += s.weight[p]
		c := int32(0)
		for pos < cum {
			c++
			pos += step
		}
		s.counts[p] = c
		if c > 0 {
			distinct++
		}
	}

	out := tensor.New(t.Dims...)
	out.Entries = make([]tensor.Entry, 0, distinct)
	scale := total / float64(budget)
	for p := 0; p < n; p++ {
		c := s.counts[p]
		if c == 0 {
			continue
		}
		e := t.Entries[p]
		e.Val *= float64(c) * scale / s.weight[p]
		out.Entries = append(out.Entries, e)
	}
	return out
}
