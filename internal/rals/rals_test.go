package rals

import (
	"math"
	"testing"

	"cstf/internal/cpals"
	"cstf/internal/la"
	"cstf/internal/tensor"
)

func testTensor() *tensor.COO {
	return tensor.GenBlockSparse(7, 4000, 3, 5, 0.02, 60, 50, 40)
}

func bitwiseResults(t *testing.T, a, b *cpals.Result, label string) {
	t.Helper()
	if len(a.Lambda) != len(b.Lambda) {
		t.Fatalf("%s: lambda lengths %d vs %d", label, len(a.Lambda), len(b.Lambda))
	}
	for r := range a.Lambda {
		if math.Float64bits(a.Lambda[r]) != math.Float64bits(b.Lambda[r]) {
			t.Fatalf("%s: lambda[%d] %v != %v", label, r, a.Lambda[r], b.Lambda[r])
		}
	}
	if len(a.Fits) != len(b.Fits) {
		t.Fatalf("%s: fit counts %d vs %d", label, len(a.Fits), len(b.Fits))
	}
	for i := range a.Fits {
		if math.Float64bits(a.Fits[i]) != math.Float64bits(b.Fits[i]) {
			t.Fatalf("%s: fit[%d] %v != %v", label, i, a.Fits[i], b.Fits[i])
		}
	}
	if len(a.Factors) != len(b.Factors) {
		t.Fatalf("%s: factor counts differ", label)
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n], b.Factors[n]
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				t.Fatalf("%s: factor %d element %d: %v != %v", label, n, i, fa.Data[i], fb.Data[i])
			}
		}
	}
}

// A sample budget covering every nonzero degenerates to exact ALS: the
// result must be bitwise identical to cpals.Solve, not merely close.
func TestFullBudgetBitwiseExact(t *testing.T) {
	tt := testTensor()
	exact, err := cpals.Solve(tt, cpals.Options{Rank: 4, MaxIters: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(tt, Options{Rank: 4, MaxIters: 8, Seed: 3, SampleCount: tt.NNZ()})
	if err != nil {
		t.Fatal(err)
	}
	bitwiseResults(t, exact, got, "full budget vs cpals")
	if math.Abs(exact.Fit()-got.Fit()) > 1e-12 {
		t.Fatalf("fits differ: %v vs %v", exact.Fit(), got.Fit())
	}
}

// A fixed seed must reproduce the sampled solve bitwise, run to run and
// across Parallelism values.
func TestFixedSeedBitwise(t *testing.T) {
	tt := testTensor()
	o := Options{Rank: 4, MaxIters: 10, Seed: 11, SampleFraction: 0.25, ResampleEvery: 2}
	a, err := Solve(tt, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(tt, o)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseResults(t, a, b, "repeat run")

	o1, o4 := o, o
	o1.Parallelism, o4.Parallelism = 1, 4
	p1, err := Solve(tt, o1)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := Solve(tt, o4)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseResults(t, p1, p4, "parallelism 1 vs 4")
}

// Sampled fits are evaluated exactly and track the exact solver on a
// low-rank tensor: this pins sanity, not a tight approximation bound.
func TestSampledFitTracksExact(t *testing.T) {
	tt := testTensor()
	exact, err := cpals.Solve(tt, cpals.Options{Rank: 4, MaxIters: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(tt, Options{Rank: 4, MaxIters: 15, Seed: 5, SampleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fit() < 0.90*exact.Fit() {
		t.Fatalf("sampled fit %v too far from exact %v", got.Fit(), exact.Fit())
	}
	if len(got.Fits) != got.Iters {
		t.Fatalf("expected one exact fit per iteration at ResampleEvery=1: %d fits, %d iters", len(got.Fits), got.Iters)
	}
}

// Resuming from a mid-solve checkpoint must follow the uninterrupted
// trajectory bitwise: the State's unnormalized factors and the epoch-pure
// sampling make the redraws identical.
func TestResumeBitwise(t *testing.T) {
	tt := testTensor()
	base := Options{Rank: 4, MaxIters: 12, Seed: 9, SampleFraction: 0.3, ResampleEvery: 2}

	var saved *State
	var savedIter int
	var savedLambda []float64
	var savedFactors []*la.Dense
	var savedFits []float64
	ck := base
	ck.CheckpointEvery = 6
	ck.OnCheckpoint = func(iter int, lambda []float64, factors []*la.Dense, fits []float64, st *State) error {
		if iter != 6 {
			return nil
		}
		savedIter = iter
		savedLambda = la.VecClone(lambda)
		savedFits = append([]float64(nil), fits...)
		for _, f := range factors {
			savedFactors = append(savedFactors, f.Clone())
		}
		saved = st
		return nil
	}
	full, err := Solve(tt, ck)
	if err != nil {
		t.Fatal(err)
	}
	if saved == nil || savedIter != 6 {
		t.Fatalf("checkpoint at iteration 6 never fired")
	}

	resumed := base
	resumed.StartIter = savedIter
	resumed.InitFactors = savedFactors
	resumed.InitLambda = savedLambda
	resumed.InitFits = savedFits
	resumed.InitUnnorm = saved.Unnorm
	got, err := Solve(tt, resumed)
	if err != nil {
		t.Fatal(err)
	}
	bitwiseResults(t, full, got, "resume vs uninterrupted")
}

// FinalFitOnly computes exactly one exact fit, at the end.
func TestFinalFitOnly(t *testing.T) {
	tt := testTensor()
	got, err := Solve(tt, Options{Rank: 4, MaxIters: 6, Seed: 2, SampleFraction: 0.25, FinalFitOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fits) != 1 {
		t.Fatalf("FinalFitOnly produced %d fits, want 1", len(got.Fits))
	}
	if got.Iters != 6 {
		t.Fatalf("ran %d iterations, want 6", got.Iters)
	}
}

// ExactFinishIters covering every iteration degenerates the whole solve to
// the exact kernel: bitwise cpals regardless of the (unused) sample budget.
func TestExactFinishAllItersBitwise(t *testing.T) {
	tt := testTensor()
	exact, err := cpals.Solve(tt, cpals.Options{Rank: 4, MaxIters: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(tt, Options{Rank: 4, MaxIters: 8, Seed: 3, SampleFraction: 0.1, ExactFinishIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	bitwiseResults(t, exact, got, "all-polish vs cpals")
}

// A short exact polish after sampled iterations recovers most of the gap to
// the exact fixed point.
func TestExactFinishPolish(t *testing.T) {
	tt := testTensor()
	exact, err := cpals.Solve(tt, cpals.Options{Rank: 4, MaxIters: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(tt, Options{
		Rank: 4, MaxIters: 12, Seed: 5, SampleFraction: 0.25, ResampleEvery: 2,
		FinalFitOnly: true, ExactFinishIters: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fit() < 0.95*exact.Fit() {
		t.Fatalf("polished sampled fit %v too far from exact %v", got.Fit(), exact.Fit())
	}
	if len(got.Fits) != 1 {
		t.Fatalf("FinalFitOnly produced %d fits, want 1", len(got.Fits))
	}
}

func TestValidate(t *testing.T) {
	tt := testTensor()
	cases := []struct {
		name string
		o    Options
	}{
		{"no budget", Options{Rank: 4, MaxIters: 5}},
		{"both budgets", Options{Rank: 4, MaxIters: 5, SampleCount: 10, SampleFraction: 0.1}},
		{"off-epoch resume", Options{Rank: 4, MaxIters: 5, SampleCount: 100, ResampleEvery: 2, StartIter: 3,
			InitFactors: []*la.Dense{la.NewDense(60, 4), la.NewDense(50, 4), la.NewDense(40, 4)},
			InitLambda:  make([]float64, 4)}},
		{"bad mode counts", Options{Rank: 4, MaxIters: 5, ModeSampleCounts: []int{1, 2}}},
		{"negative polish", Options{Rank: 4, MaxIters: 5, SampleCount: 100, ExactFinishIters: -1}},
	}
	for _, c := range cases {
		if _, err := Solve(tt, c.o); err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
	}
}

// A warm start (InitFactors without InitUnnorm, the streaming updater's
// entry point) seeds the unnormalized factors as A*diag(lambda) and runs.
func TestWarmStart(t *testing.T) {
	tt := testTensor()
	exact, err := cpals.Solve(tt, cpals.Options{Rank: 4, MaxIters: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(tt, Options{
		Rank: 4, MaxIters: 3, Seed: 5, SampleFraction: 0.4,
		InitFactors: exact.Factors, InitLambda: exact.Lambda,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Fit() < 0.95*exact.Fit() {
		t.Fatalf("warm-started sampled sweep lost the fit: %v vs %v", got.Fit(), exact.Fit())
	}
}
