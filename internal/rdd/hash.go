package rdd

import "cstf/internal/rng"

// HashKey maps a key to a well-distributed 64-bit hash. The same function
// is used by every shuffle in a context, so independently partitioned
// datasets with equal keys are co-partitioned — the property Spark's
// HashPartitioner provides and CSTF's join placement relies on.
func HashKey[K comparable](k K) uint64 { return rng.HashAny(k) }

// PartitionOf returns the partition a key belongs to in a context with the
// given partition count.
func PartitionOf[K comparable](k K, parts int) int {
	return int(HashKey(k) % uint64(parts))
}
