package rdd

import (
	"sort"
	"testing"
	"testing/quick"

	"cstf/internal/rng"
)

func TestSortByKeyGlobalOrder(t *testing.T) {
	f := func(seed uint64) bool {
		ctx := testCtx(3, 6)
		src := rng.New(seed)
		n := 200 + src.Intn(300)
		recs := make([]KV[uint32, int], n)
		for i := range recs {
			recs[i] = KV[uint32, int]{Key: uint32(src.Intn(1000)), Val: i}
		}
		d := FromSlice(ctx, "kv", recs, kvSize)
		sorted := SortByKey(d, func(a, b uint32) bool { return a < b })
		parts := sorted.materialize()

		var prev uint32
		first := true
		total := 0
		for _, part := range parts {
			for _, rec := range part {
				if !first && rec.Key < prev {
					return false
				}
				prev = rec.Key
				first = false
				total++
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSortByKeyIsOneShuffleAndNotHashPartitioned(t *testing.T) {
	ctx := testCtx(4, 8)
	recs := make([]KV[uint32, int], 500)
	for i := range recs {
		recs[i] = KV[uint32, int]{Key: uint32(i * 7 % 501), Val: i}
	}
	d := FromSlice(ctx, "kv", recs, kvSize)
	s := SortByKey(d, func(a, b uint32) bool { return a < b })
	Count(s)
	if got := ctx.Cluster.Metrics().TotalShuffles(); got != 1 {
		t.Fatalf("sortByKey shuffles = %d, want 1", got)
	}
	if s.KeyPartitioned() {
		t.Fatal("range-partitioned output must not claim hash partitioning")
	}
}

func TestSortByKeyEmptyAndSingle(t *testing.T) {
	ctx := testCtx(2, 4)
	if n := Count(SortByKey(FromSlice(ctx, "e", []KV[uint32, int]{}, kvSize),
		func(a, b uint32) bool { return a < b })); n != 0 {
		t.Fatalf("empty sort count %d", n)
	}
	one := []KV[uint32, int]{{5, 50}}
	got := Collect(SortByKey(FromSlice(ctx, "s", one, kvSize),
		func(a, b uint32) bool { return a < b }))
	if len(got) != 1 || got[0].Key != 5 {
		t.Fatalf("single sort: %v", got)
	}
}

func TestCoGroup(t *testing.T) {
	ctx := testCtx(3, 6)
	a := FromSlice(ctx, "a", []KV[uint32, int]{{1, 10}, {1, 11}, {2, 20}}, kvSize)
	b := FromSlice(ctx, "b", []KV[uint32, int]{{1, 100}, {3, 300}}, kvSize)
	got := CollectMap(CoGroup(a, b, func(KV[uint32, Pair[[]int, []int]]) int { return 32 }))
	if len(got) != 3 {
		t.Fatalf("cogroup keys: %d", len(got))
	}
	g1 := got[1]
	sort.Ints(g1.A)
	if len(g1.A) != 2 || g1.A[0] != 10 || g1.A[1] != 11 || len(g1.B) != 1 || g1.B[0] != 100 {
		t.Fatalf("group 1: %+v", g1)
	}
	if len(got[2].B) != 0 || len(got[3].A) != 0 {
		t.Fatalf("one-sided groups wrong: %+v", got)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	ctx := testCtx(2, 4)
	left := FromSlice(ctx, "l", []KV[uint32, int]{{1, 10}, {2, 20}}, kvSize)
	right := FromSlice(ctx, "r", []KV[uint32, int]{{1, 100}}, kvSize)
	got := Collect(LeftOuterJoin(left, right,
		func(KV[uint32, Pair[int, Opt[int]]]) int { return 24 }))
	if len(got) != 2 {
		t.Fatalf("left outer join records: %d", len(got))
	}
	for _, rec := range got {
		switch rec.Key {
		case 1:
			if !rec.Val.B.Present || rec.Val.B.Val != 100 {
				t.Fatalf("key 1: %+v", rec.Val)
			}
		case 2:
			if rec.Val.B.Present {
				t.Fatalf("key 2 must have no right value: %+v", rec.Val)
			}
		default:
			t.Fatalf("unexpected key %d", rec.Key)
		}
	}
}

func TestZipWithIndex(t *testing.T) {
	ctx := testCtx(3, 5)
	d := FromSlice(ctx, "n", seq(137), intSize)
	z := Collect(ZipWithIndex(d))
	if len(z) != 137 {
		t.Fatalf("zip count %d", len(z))
	}
	seen := map[int64]bool{}
	for _, p := range z {
		if p.B < 0 || p.B >= 137 || seen[p.B] {
			t.Fatalf("bad index %d", p.B)
		}
		seen[p.B] = true
	}
	// No shuffle.
	if ctx.Cluster.Metrics().TotalShuffles() != 0 {
		t.Fatal("zipWithIndex must be narrow")
	}
}

func TestFold(t *testing.T) {
	ctx := testCtx(2, 4)
	d := FromSlice(ctx, "n", seq(11), intSize)
	if got := Fold(d, 0, func(a, b int) int { return a + b }, 1); got != 55 {
		t.Fatalf("fold sum %d", got)
	}
	if got := Fold(d, 0, func(a, b int) int {
		if b > a {
			return b
		}
		return a
	}, 1); got != 10 {
		t.Fatalf("fold max %d", got)
	}
}
