package rdd

import (
	"sort"

	"cstf/internal/cluster"
	"cstf/internal/rng"
)

// SortByKey, outer joins, cogroup, zip, and fold: the remaining standard
// pair-dataset surface. SortByKey uses sampled range partitioning like
// Spark's RangePartitioner: draw a key sample, pick P-1 splitters, shuffle
// each record to its key range, sort partitions locally. The result is
// globally ordered across the partition sequence.

// SortByKey returns the dataset ordered by the given less function:
// partition boundaries respect the order (every key in partition i sorts
// before every key in partition i+1) and each partition is sorted. The
// output is NOT hash-partitioned (it is range-partitioned), so joins
// against it will re-shuffle.
func SortByKey[K comparable, V any](d *Dataset[KV[K, V]], less func(a, b K) bool, os ...Option) *Dataset[KV[K, V]] {
	o := applyOpts("sortByKey", os)
	out := newDataset[KV[K, V]](d.ctx, o.name, d.sizeOf)
	out.compute = func() [][]KV[K, V] {
		ctx := d.ctx
		P := ctx.Parts
		in := d.materialize()

		// Sample up to ~20 keys per partition to pick splitters.
		var sample []K
		src := rng.New(0x5027)
		for p := 0; p < P; p++ {
			n := len(in[p])
			for i := 0; i < 20 && i < n; i++ {
				sample = append(sample, in[p][src.Intn(n)].Key)
			}
		}
		sort.Slice(sample, func(i, j int) bool { return less(sample[i], sample[j]) })
		splitters := make([]K, 0, P-1)
		if len(sample) > 0 {
			for i := 1; i < P; i++ {
				splitters = append(splitters, sample[i*len(sample)/P])
			}
		}
		partOf := func(k K) int {
			// First splitter >= k determines the partition (binary search).
			lo, hi := 0, len(splitters)
			for lo < hi {
				mid := (lo + hi) / 2
				if less(splitters[mid], k) {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo
		}

		parts, tasks := shuffleBy(ctx, in, d.sizeOf, partOf)
		ctx.Cluster.Parallel(P, func(p int) {
			sort.SliceStable(parts[p], func(i, j int) bool {
				return less(parts[p][i].Key, parts[p][j].Key)
			})
			tasks[p].Flops = o.flopsPerRecord * tasks[p].Records
			tasks[p].Records *= o.costFactor * d.readCost()
		})
		ctx.runOutputStage(true, tasks)
		return parts
	}
	return out
}

// Opt is an optional value, produced by outer joins for the side that may
// be missing.
type Opt[T any] struct {
	Present bool
	Val     T
}

// Some wraps a present value.
func Some[T any](v T) Opt[T] { return Opt[T]{Present: true, Val: v} }

// LeftOuterJoin joins keeping every left record; right values are optional.
func LeftOuterJoin[K comparable, V, W any](a *Dataset[KV[K, V]], b *Dataset[KV[K, W]], sizeOf func(KV[K, Pair[V, Opt[W]]]) int, os ...Option) *Dataset[KV[K, Pair[V, Opt[W]]]] {
	cg := CoGroup(a, b, func(r KV[K, Pair[[]V, []W]]) int { return 16 }, os...)
	return FlatMap(cg, func(r KV[K, Pair[[]V, []W]]) []KV[K, Pair[V, Opt[W]]] {
		var out []KV[K, Pair[V, Opt[W]]]
		for _, v := range r.Val.A {
			if len(r.Val.B) == 0 {
				out = append(out, KV[K, Pair[V, Opt[W]]]{Key: r.Key, Val: Pair[V, Opt[W]]{A: v}})
				continue
			}
			for _, w := range r.Val.B {
				out = append(out, KV[K, Pair[V, Opt[W]]]{Key: r.Key, Val: Pair[V, Opt[W]]{A: v, B: Some(w)}})
			}
		}
		return out
	}, sizeOf, WithName("leftOuterJoin"))
}

// CoGroup groups both datasets' values by key: each output record holds
// every V and every W sharing the key. Sides that are not hash-partitioned
// shuffle, like Join.
func CoGroup[K comparable, V, W any](a *Dataset[KV[K, V]], b *Dataset[KV[K, W]], sizeOf func(KV[K, Pair[[]V, []W]]) int, os ...Option) *Dataset[KV[K, Pair[[]V, []W]]] {
	if a.ctx != b.ctx {
		panic("rdd: cogroup across contexts")
	}
	o := applyOpts("cogroup", os)
	out := newDataset[KV[K, Pair[[]V, []W]]](a.ctx, o.name, sizeOf)
	out.keyed = true
	out.compute = func() [][]KV[K, Pair[[]V, []W]] {
		ctx := a.ctx
		P := ctx.Parts
		inA := a.materialize()
		inB := b.materialize()

		tasks := make([]cluster.Task, P)
		for p := range tasks {
			tasks[p].Node = ctx.Cluster.NodeOf(p)
		}
		wide := false
		if !a.keyed {
			wide = true
			var ta []cluster.Task
			inA, ta = shuffle(ctx, inA, a.sizeOf)
			for p := range tasks {
				tasks[p].Records += ta[p].Records
				tasks[p].RemoteBytes += ta[p].RemoteBytes
				tasks[p].LocalBytes += ta[p].LocalBytes
			}
		} else {
			for p := range tasks {
				tasks[p].Records += float64(len(inA[p]))
			}
		}
		if !b.keyed {
			wide = true
			var tb []cluster.Task
			inB, tb = shuffle(ctx, inB, b.sizeOf)
			for p := range tasks {
				tasks[p].Records += tb[p].Records
				tasks[p].RemoteBytes += tb[p].RemoteBytes
				tasks[p].LocalBytes += tb[p].LocalBytes
			}
		} else {
			for p := range tasks {
				tasks[p].Records += float64(len(inB[p]))
			}
		}

		parts := make([][]KV[K, Pair[[]V, []W]], P)
		ctx.Cluster.Parallel(P, func(p int) {
			groups := map[K]*Pair[[]V, []W]{}
			var order []K
			get := func(k K) *Pair[[]V, []W] {
				if g, ok := groups[k]; ok {
					return g
				}
				g := &Pair[[]V, []W]{}
				groups[k] = g
				order = append(order, k)
				return g
			}
			for i := range inA[p] {
				g := get(inA[p][i].Key)
				g.A = append(g.A, inA[p][i].Val)
			}
			for i := range inB[p] {
				g := get(inB[p][i].Key)
				g.B = append(g.B, inB[p][i].Val)
			}
			recs := make([]KV[K, Pair[[]V, []W]], 0, len(order))
			for _, k := range order {
				recs = append(recs, KV[K, Pair[[]V, []W]]{Key: k, Val: *groups[k]})
			}
			parts[p] = recs
		})
		for p := range tasks {
			tasks[p].Flops = o.flopsPerRecord * tasks[p].Records
			tasks[p].Records *= o.costFactor
		}
		ctx.runOutputStage(wide, tasks)
		return parts
	}
	return out
}

// ZipWithIndex pairs every record with its global 0-based position in
// partition order (narrow: per-partition offsets come from partition
// sizes, like Spark's zipWithIndex which runs a count job first).
func ZipWithIndex[T any](d *Dataset[T], os ...Option) *Dataset[Pair[T, int64]] {
	o := applyOpts("zipWithIndex", os)
	out := newDataset[Pair[T, int64]](d.ctx, o.name, func(p Pair[T, int64]) int { return d.sizeOf(p.A) + 8 })
	out.compute = func() [][]Pair[T, int64] {
		in := d.materialize()
		P := d.ctx.Parts
		offsets := make([]int64, P)
		var acc int64
		for p := 0; p < P; p++ {
			offsets[p] = acc
			acc += int64(len(in[p]))
		}
		parts := make([][]Pair[T, int64], P)
		counts := make([]int, P)
		d.ctx.Cluster.Parallel(P, func(p int) {
			recs := make([]Pair[T, int64], len(in[p]))
			for i := range in[p] {
				recs[i] = Pair[T, int64]{A: in[p][i], B: offsets[p] + int64(i)}
			}
			parts[p] = recs
			counts[p] = len(in[p])
		})
		narrowTasks(d.ctx, counts, o)
		return parts
	}
	return out
}

// Fold reduces every record into a single value with an associative,
// commutative op and the given identity (a convenience over Aggregate).
func Fold[T any](d *Dataset[T], zero T, op func(T, T) T, flopsPerRecord float64) T {
	return Aggregate(d, func() T { return zero }, op, op, flopsPerRecord)
}
