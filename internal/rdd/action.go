package rdd

// Actions trigger materialization and return data to the driver. Driver
// transfer volume is deliberately *not* added to the shuffle-read metrics:
// Spark's remote/local shuffle-read counters (which Figure 4 of the paper
// reports) exclude collect traffic, and so do we. CSTF only ever collects
// rank-sized aggregates, so the modeled time impact is negligible.

// Collect returns every record, concatenated in partition order.
func Collect[T any](d *Dataset[T]) []T {
	parts := d.materialize()
	var n int
	for _, p := range parts {
		n += len(p)
	}
	out := make([]T, 0, n)
	counts := make([]int, len(parts))
	for p, recs := range parts {
		out = append(out, recs...)
		counts[p] = len(recs)
	}
	narrowTasks(d.ctx, counts, opts{costFactor: 1})
	return out
}

// CollectMap gathers a keyed dataset into a driver-side map. Later
// occurrences of a key overwrite earlier ones (use after ReduceByKey, where
// keys are unique).
func CollectMap[K comparable, V any](d *Dataset[KV[K, V]]) map[K]V {
	recs := Collect(d)
	m := make(map[K]V, len(recs))
	for i := range recs {
		m[recs[i].Key] = recs[i].Val
	}
	return m
}

// Count returns the number of records.
func Count[T any](d *Dataset[T]) int {
	parts := d.materialize()
	var n int
	counts := make([]int, len(parts))
	for p, recs := range parts {
		n += len(recs)
		counts[p] = len(recs)
	}
	narrowTasks(d.ctx, counts, opts{costFactor: 1})
	return n
}

// Aggregate folds every record into a per-partition accumulator with seq,
// then merges the accumulators on the driver with comb (Spark's
// treeAggregate, depth 1). flopsPerSeq is charged per record on the
// executors; the driver-side merge of rank-sized accumulators is charged as
// driver flops by the caller if it matters.
func Aggregate[T, A any](d *Dataset[T], zero func() A, seq func(A, T) A, comb func(A, A) A, flopsPerSeq float64) A {
	parts := d.materialize()
	ctx := d.ctx
	P := ctx.Parts
	accs := make([]A, P)
	counts := make([]int, P)
	ctx.Cluster.Parallel(P, func(p int) {
		acc := zero()
		for i := range parts[p] {
			acc = seq(acc, parts[p][i])
		}
		accs[p] = acc
		counts[p] = len(parts[p])
	})
	narrowTasks(ctx, counts, opts{costFactor: 1, flopsPerRecord: flopsPerSeq})
	res := zero()
	for p := 0; p < P; p++ {
		res = comb(res, accs[p])
	}
	return res
}

// Foreach materializes the dataset and applies f to every record on the
// executors (no data returned to the driver).
func Foreach[T any](d *Dataset[T], f func(T)) {
	parts := d.materialize()
	counts := make([]int, len(parts))
	d.ctx.Cluster.Parallel(len(parts), func(p int) {
		for i := range parts[p] {
			f(parts[p][i])
		}
		counts[p] = len(parts[p])
	})
	narrowTasks(d.ctx, counts, opts{costFactor: 1})
}
