package rdd

import (
	"sort"
	"testing"

	"cstf/internal/cluster"
)

func TestGroupByKeyCollectsAllValues(t *testing.T) {
	ctx := testCtx(3, 6)
	var recs []KV[uint32, int]
	for i := 0; i < 120; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 8), Val: i})
	}
	g := GroupByKey(FromSlice(ctx, "kv", recs, kvSize))
	got := CollectMap(g)
	if len(got) != 8 {
		t.Fatalf("got %d groups", len(got))
	}
	for k, vals := range got {
		if len(vals) != 15 {
			t.Fatalf("key %d has %d values, want 15", k, len(vals))
		}
		for _, v := range vals {
			if uint32(v%8) != k {
				t.Fatalf("value %d in wrong group %d", v, k)
			}
		}
	}
	if !g.KeyPartitioned() {
		t.Fatal("groupByKey output must be key-partitioned")
	}
}

func TestGroupByKeyShufflesMoreThanReduceByKey(t *testing.T) {
	// The classic guidance: with heavy key duplication, groupByKey moves
	// every record while reduceByKey's map-side combine collapses them.
	build := func() (*Context, *Dataset[KV[uint32, int]]) {
		ctx := testCtx(4, 8)
		var recs []KV[uint32, int]
		for i := 0; i < 2000; i++ {
			recs = append(recs, KV[uint32, int]{Key: uint32(i % 4), Val: 1})
		}
		return ctx, FromSlice(ctx, "kv", recs, kvSize)
	}
	ctxG, dg := build()
	Count(GroupByKey(dg))
	gBytes := ctxG.Cluster.Metrics().TotalRemoteBytes() + ctxG.Cluster.Metrics().TotalLocalBytes()

	ctxR, dr := build()
	Count(ReduceByKey(dr, func(a, b int) int { return a + b }))
	rBytes := ctxR.Cluster.Metrics().TotalRemoteBytes() + ctxR.Cluster.Metrics().TotalLocalBytes()

	if gBytes < 10*rBytes {
		t.Fatalf("groupByKey shuffled %v B, reduceByKey %v B; expected >=10x gap", gBytes, rBytes)
	}
}

func TestGroupByKeyOnPartitionedInputIsNarrow(t *testing.T) {
	ctx := testCtx(4, 8)
	var recs []KV[uint32, int]
	for i := 0; i < 100; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 5), Val: i})
	}
	pd := PartitionBy(FromSlice(ctx, "kv", recs, kvSize))
	Count(pd)
	before := ctx.Cluster.Metrics()
	Count(GroupByKey(pd))
	diff := ctx.Cluster.Metrics().Sub(before)
	if diff.TotalShuffles() != 0 {
		t.Fatalf("groupByKey on partitioned input shuffled %d times", diff.TotalShuffles())
	}
}

func TestUnion(t *testing.T) {
	ctx := testCtx(2, 4)
	a := FromSlice(ctx, "a", seq(10), intSize)
	b := FromSlice(ctx, "b", []int{100, 101}, intSize)
	got := Collect(Union(a, b))
	if len(got) != 12 {
		t.Fatalf("union has %d records", len(got))
	}
	sort.Ints(got)
	if got[11] != 101 || got[0] != 0 {
		t.Fatalf("union contents wrong: %v", got)
	}
	// No shuffle.
	if ctx.Cluster.Metrics().TotalShuffles() != 0 {
		t.Fatal("union must be narrow")
	}
}

func TestUnionAcrossContextsPanics(t *testing.T) {
	a := FromSlice(testCtx(1, 2), "a", seq(3), intSize)
	b := FromSlice(testCtx(1, 2), "b", seq(3), intSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Union(a, b)
}

func TestDistinct(t *testing.T) {
	ctx := testCtx(3, 6)
	data := []int{1, 2, 3, 1, 2, 3, 1, 2, 3, 7}
	got := Collect(Distinct(FromSlice(ctx, "d", data, intSize)))
	sort.Ints(got)
	want := []int{1, 2, 3, 7}
	if len(got) != 4 {
		t.Fatalf("distinct: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct: %v", got)
		}
	}
}

func TestSampleDeterministicAndProportional(t *testing.T) {
	ctx := testCtx(2, 4)
	d := FromSlice(ctx, "d", seq(10000), intSize)
	s1 := Collect(Sample(d, 0.3, 42))
	s2 := Collect(Sample(d, 0.3, 42))
	if len(s1) != len(s2) {
		t.Fatal("sampling must be deterministic in seed")
	}
	if len(s1) < 2500 || len(s1) > 3500 {
		t.Fatalf("sampled %d of 10000 at frac 0.3", len(s1))
	}
	if n := Count(Sample(d, 0, 1)); n != 0 {
		t.Fatalf("frac 0 kept %d", n)
	}
	if n := Count(Sample(d, 1, 1)); n != 10000 {
		t.Fatalf("frac 1 kept %d", n)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad fraction must panic")
		}
	}()
	Sample(d, 1.5, 1)
}

func TestKeysValues(t *testing.T) {
	ctx := testCtx(2, 4)
	recs := []KV[uint32, int]{{1, 10}, {2, 20}}
	d := FromSlice(ctx, "kv", recs, kvSize)
	ks := Collect(Keys(d))
	vs := Collect(Values(d, intSize))
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	sort.Ints(vs)
	if len(ks) != 2 || ks[0] != 1 || ks[1] != 2 {
		t.Fatalf("keys %v", ks)
	}
	if len(vs) != 2 || vs[0] != 10 || vs[1] != 20 {
		t.Fatalf("values %v", vs)
	}
}

func TestPersistSerializedAccountingAndReadCost(t *testing.T) {
	ctx := testCtx(2, 4)
	d := FromSlice(ctx, "kv", seq(100), intSize).PersistSerialized()
	// Serialized footprint = wire bytes (no raw-object expansion).
	if got := ctx.Cluster.CachedBytes(); got != 800 {
		t.Fatalf("serialized cached bytes %v, want 800", got)
	}
	d.Unpersist()
	if ctx.Cluster.CachedBytes() != 0 {
		t.Fatal("unpersist must release serialized cache")
	}

	// Reading a serialized cache must charge more engine time than reading
	// a raw cache (the DeserFactor).
	run := func(serialized bool) float64 {
		c := cluster.New(2, cluster.LaptopProfile())
		cx := NewContext(c, 4)
		src := FromSlice(cx, "kv", seq(50000), intSize)
		if serialized {
			src.PersistSerialized()
		} else {
			src.Persist()
		}
		base := c.SimTime()
		Count(Map(src, func(x int) int { return x + 1 }, intSize))
		return c.SimTime() - base
	}
	raw, ser := run(false), run(true)
	if ser <= raw {
		t.Fatalf("serialized read (%v) must cost more than raw read (%v)", ser, raw)
	}
}

func TestPersistSerializedSmallerFootprintThanRaw(t *testing.T) {
	mk := func(serialized bool) float64 {
		ctx := testCtx(2, 4)
		d := FromSlice(ctx, "kv", seq(1000), intSize)
		if serialized {
			d.PersistSerialized()
		} else {
			d.Persist()
		}
		return ctx.Cluster.CachedBytes()
	}
	if raw, ser := mk(false), mk(true); ser >= raw {
		t.Fatalf("serialized footprint (%v) must be below raw (%v)", ser, raw)
	}
}

func TestAggregateByKey(t *testing.T) {
	ctx := testCtx(3, 6)
	var recs []KV[uint32, int]
	for i := 0; i < 90; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 3), Val: i})
	}
	d := FromSlice(ctx, "kv", recs, kvSize)
	// Accumulator type differs from the value type: (count, sum) stats.
	type stats struct {
		n   int
		sum int
	}
	agg := AggregateByKey(d,
		func() stats { return stats{} },
		func(a stats, v int) stats { return stats{a.n + 1, a.sum + v} },
		func(a, b stats) stats { return stats{a.n + b.n, a.sum + b.sum} },
		FixedSize[KV[uint32, stats]](24),
	)
	got := CollectMap(agg)
	if len(got) != 3 {
		t.Fatalf("keys: %d", len(got))
	}
	for k, s := range got {
		if s.n != 30 {
			t.Fatalf("key %d count %d", k, s.n)
		}
		// Sum of arithmetic sequence k, k+3, ..., k+87.
		want := 30*int(k) + 3*(29*30/2)
		if s.sum != want {
			t.Fatalf("key %d sum %d, want %d", k, s.sum, want)
		}
	}
	if !agg.KeyPartitioned() {
		t.Fatal("aggregateByKey output must be key-partitioned")
	}
}

func TestAggregateByKeyShufflesOnlyPartials(t *testing.T) {
	// 2000 records, 2 keys: only ~parts*keys accumulators may shuffle.
	ctx := testCtx(4, 4)
	var recs []KV[uint32, int]
	for i := 0; i < 2000; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 2), Val: 1})
	}
	d := FromSlice(ctx, "kv", recs, kvSize)
	agg := AggregateByKey(d,
		func() int { return 0 },
		func(a, v int) int { return a + v },
		func(a, b int) int { return a + b },
		FixedSize[KV[uint32, int]](16),
	)
	got := CollectMap(agg)
	if got[0] != 1000 || got[1] != 1000 {
		t.Fatalf("sums: %v", got)
	}
	m := ctx.Cluster.Metrics()
	perRec := float64(16 + ctx.Cluster.Profile.RecordOverhead)
	if total := m.TotalRemoteBytes() + m.TotalLocalBytes(); total > 8*perRec {
		t.Fatalf("shuffled %v bytes; map-side fold should cap at %v", total, 8*perRec)
	}
}
