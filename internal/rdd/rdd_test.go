package rdd

import (
	"sort"
	"testing"

	"cstf/internal/cluster"
)

func testCtx(nodes, parts int) *Context {
	return NewContext(cluster.New(nodes, cluster.LaptopProfile()), parts)
}

func intSize(int) int { return 8 }

func kvSize(KV[uint32, int]) int { return 16 }

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestFromSliceCollectRoundTrip(t *testing.T) {
	ctx := testCtx(4, 8)
	d := FromSlice(ctx, "nums", seq(100), intSize)
	got := Collect(d)
	if len(got) != 100 {
		t.Fatalf("collected %d records", len(got))
	}
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("missing record %d", i)
		}
	}
}

func TestCountAndEmptyDataset(t *testing.T) {
	ctx := testCtx(2, 4)
	if n := Count(FromSlice(ctx, "e", []int{}, intSize)); n != 0 {
		t.Fatalf("empty count = %d", n)
	}
	if n := Count(FromSlice(ctx, "n", seq(17), intSize)); n != 17 {
		t.Fatalf("count = %d", n)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := testCtx(2, 4)
	d := FromSlice(ctx, "nums", seq(10), intSize)
	doubled := Map(d, func(x int) int { return 2 * x }, intSize)
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, func(x int) []int { return []int{x, x + 1} }, intSize)
	got := Collect(expanded)
	sort.Ints(got)
	want := []int{0, 1, 4, 5, 8, 9, 12, 13, 16, 17}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMapPartitionsSeesEveryRecordOnce(t *testing.T) {
	ctx := testCtx(2, 4)
	d := FromSlice(ctx, "nums", seq(20), intSize)
	sums := MapPartitions(d, func(p int, in []int) []int {
		s := 0
		for _, v := range in {
			s += v
		}
		return []int{s}
	}, intSize)
	total := 0
	for _, s := range Collect(sums) {
		total += s
	}
	if total != 190 {
		t.Fatalf("total = %d, want 190", total)
	}
}

func TestPartitionByPlacesKeysCorrectly(t *testing.T) {
	ctx := testCtx(4, 8)
	recs := make([]KV[uint32, int], 200)
	for i := range recs {
		recs[i] = KV[uint32, int]{Key: uint32(i % 50), Val: i}
	}
	d := FromSlice(ctx, "kv", recs, kvSize)
	if d.KeyPartitioned() {
		t.Fatal("FromSlice output must not claim key partitioning")
	}
	pd := PartitionBy(d)
	if !pd.KeyPartitioned() {
		t.Fatal("PartitionBy output must be key-partitioned")
	}
	parts := pd.materialize()
	for p, part := range parts {
		for _, rec := range part {
			if PartitionOf(rec.Key, ctx.Parts) != p {
				t.Fatalf("key %d in wrong partition %d", rec.Key, p)
			}
		}
	}
	// Idempotent: partitioning an already-partitioned dataset is a no-op.
	if PartitionBy(pd) != pd {
		t.Fatal("PartitionBy must be identity on key-partitioned input")
	}
}

func TestShuffleByteConservationAndClassification(t *testing.T) {
	// With all data on one node of a 1-node cluster, every byte is local;
	// totals must equal records * (size + overhead).
	one := NewContext(cluster.New(1, cluster.LaptopProfile()), 4)
	recs := make([]KV[uint32, int], 100)
	for i := range recs {
		recs[i] = KV[uint32, int]{Key: uint32(i), Val: i}
	}
	d := FromSlice(one, "kv", recs, kvSize)
	Count(PartitionBy(d))
	m := one.Cluster.Metrics()
	if m.TotalRemoteBytes() != 0 {
		t.Fatalf("single node cluster read %v remote bytes", m.TotalRemoteBytes())
	}
	perRec := float64(16 + one.Cluster.Profile.RecordOverhead)
	if got, want := m.TotalLocalBytes(), 100*perRec; got != want {
		t.Fatalf("local bytes %v, want %v", got, want)
	}

	// On a multi-node cluster, remote + local must equal the same total.
	multi := NewContext(cluster.New(4, cluster.LaptopProfile()), 8)
	d2 := FromSlice(multi, "kv", recs, kvSize)
	Count(PartitionBy(d2))
	m2 := multi.Cluster.Metrics()
	if got := m2.TotalRemoteBytes() + m2.TotalLocalBytes(); got != 100*perRec {
		t.Fatalf("byte conservation broken: %v != %v", got, 100*perRec)
	}
	if m2.TotalRemoteBytes() == 0 {
		t.Fatal("4-node shuffle should move some bytes remotely")
	}
	if m2.TotalShuffles() != 1 {
		t.Fatalf("shuffles = %d, want 1", m2.TotalShuffles())
	}
}

func TestReduceByKeySums(t *testing.T) {
	ctx := testCtx(3, 6)
	var recs []KV[uint32, int]
	for i := 0; i < 300; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 10), Val: 1})
	}
	d := FromSlice(ctx, "kv", recs, kvSize)
	red := ReduceByKey(d, func(a, b int) int { return a + b })
	got := CollectMap(red)
	if len(got) != 10 {
		t.Fatalf("got %d keys", len(got))
	}
	for k, v := range got {
		if v != 30 {
			t.Fatalf("key %d count %d, want 30", k, v)
		}
	}
	if !red.KeyPartitioned() {
		t.Fatal("reduceByKey output must be key-partitioned")
	}
}

func TestReduceByKeyOnPartitionedInputIsNarrow(t *testing.T) {
	ctx := testCtx(4, 8)
	var recs []KV[uint32, int]
	for i := 0; i < 100; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 7), Val: i})
	}
	pd := PartitionBy(FromSlice(ctx, "kv", recs, kvSize))
	Count(pd)
	before := ctx.Cluster.Metrics()
	red := ReduceByKey(pd, func(a, b int) int { return a + b })
	Count(red)
	diff := ctx.Cluster.Metrics().Sub(before)
	if diff.TotalShuffles() != 0 {
		t.Fatalf("reduce on co-partitioned input caused %d shuffles", diff.TotalShuffles())
	}
	if diff.TotalRemoteBytes() != 0 || diff.TotalLocalBytes() != 0 {
		t.Fatal("narrow reduce must not read shuffle bytes")
	}
}

func TestReduceByKeyMapSideCombineShrinksShuffle(t *testing.T) {
	// 1000 records, 2 keys: map-side combine must shuffle at most
	// parts*keys records, far fewer than 1000.
	ctx := testCtx(4, 4)
	var recs []KV[uint32, int]
	for i := 0; i < 1000; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i % 2), Val: 1})
	}
	d := FromSlice(ctx, "kv", recs, kvSize)
	got := CollectMap(ReduceByKey(d, func(a, b int) int { return a + b }))
	if got[0] != 500 || got[1] != 500 {
		t.Fatalf("sums wrong: %v", got)
	}
	m := ctx.Cluster.Metrics()
	perRec := float64(16 + ctx.Cluster.Profile.RecordOverhead)
	maxBytes := float64(4*2) * perRec // parts * keys
	if total := m.TotalRemoteBytes() + m.TotalLocalBytes(); total > maxBytes {
		t.Fatalf("shuffled %v bytes; map-side combine should cap at %v", total, maxBytes)
	}
}

func TestJoinInner(t *testing.T) {
	ctx := testCtx(3, 6)
	left := FromSlice(ctx, "l", []KV[uint32, int]{{1, 10}, {2, 20}, {3, 30}, {7, 70}}, kvSize)
	right := FromSlice(ctx, "r", []KV[uint32, int]{{1, 100}, {2, 200}, {3, 300}, {9, 900}}, kvSize)
	j := Join(left, right, FixedSize[KV[uint32, Pair[int, int]]](24))
	got := Collect(j)
	if len(got) != 3 {
		t.Fatalf("joined %d records, want 3 (inner join)", len(got))
	}
	for _, rec := range got {
		if rec.Val.B != rec.Val.A*10 {
			t.Fatalf("mismatched pair %+v", rec)
		}
	}
	if !j.KeyPartitioned() {
		t.Fatal("join output must be key-partitioned")
	}
}

func TestJoinDuplicateRightKeysFanOut(t *testing.T) {
	ctx := testCtx(2, 4)
	left := FromSlice(ctx, "l", []KV[uint32, int]{{5, 1}}, kvSize)
	right := FromSlice(ctx, "r", []KV[uint32, int]{{5, 2}, {5, 3}}, kvSize)
	got := Collect(Join(left, right, FixedSize[KV[uint32, Pair[int, int]]](24)))
	if len(got) != 2 {
		t.Fatalf("expected fan-out to 2 records, got %d", len(got))
	}
}

func TestJoinCoPartitionedIsNarrow(t *testing.T) {
	ctx := testCtx(4, 8)
	mk := func(name string) *Dataset[KV[uint32, int]] {
		var recs []KV[uint32, int]
		for i := 0; i < 64; i++ {
			recs = append(recs, KV[uint32, int]{Key: uint32(i), Val: i})
		}
		return PartitionBy(FromSlice(ctx, name, recs, kvSize))
	}
	a, b := mk("a"), mk("b")
	Count(a)
	Count(b)
	before := ctx.Cluster.Metrics()
	j := Join(a, b, FixedSize[KV[uint32, Pair[int, int]]](24))
	if n := Count(j); n != 64 {
		t.Fatalf("join count %d", n)
	}
	diff := ctx.Cluster.Metrics().Sub(before)
	if diff.TotalShuffles() != 0 || diff.TotalRemoteBytes() != 0 {
		t.Fatalf("co-partitioned join must be narrow: %d shuffles, %v bytes",
			diff.TotalShuffles(), diff.TotalRemoteBytes())
	}
}

func TestJoinOneSideShuffled(t *testing.T) {
	ctx := testCtx(4, 8)
	var recs []KV[uint32, int]
	for i := 0; i < 64; i++ {
		recs = append(recs, KV[uint32, int]{Key: uint32(i), Val: i})
	}
	aligned := PartitionBy(FromSlice(ctx, "a", recs, kvSize))
	Count(aligned)
	before := ctx.Cluster.Metrics()
	loose := FromSlice(ctx, "b", recs, kvSize)
	j := Join(loose, aligned, FixedSize[KV[uint32, Pair[int, int]]](24))
	Count(j)
	diff := ctx.Cluster.Metrics().Sub(before)
	if diff.TotalShuffles() != 1 {
		t.Fatalf("join with one unaligned side: %d shuffles, want 1", diff.TotalShuffles())
	}
	perRec := float64(16 + ctx.Cluster.Profile.RecordOverhead)
	if total := diff.TotalRemoteBytes() + diff.TotalLocalBytes(); total != 64*perRec {
		t.Fatalf("only the unaligned side should move: %v bytes, want %v", total, 64*perRec)
	}
}

func TestMapValuesPreservesPartitioning(t *testing.T) {
	ctx := testCtx(2, 4)
	recs := []KV[uint32, int]{{1, 1}, {2, 2}, {3, 3}}
	pd := PartitionBy(FromSlice(ctx, "kv", recs, kvSize))
	mv := MapValues(pd, func(v int) int { return v * v }, kvSize)
	if !mv.KeyPartitioned() {
		t.Fatal("mapValues must preserve key partitioning")
	}
	got := CollectMap(mv)
	if got[3] != 9 {
		t.Fatalf("mapValues result %v", got)
	}
	// Plain Map must drop the partitioner.
	m := Map(pd, func(r KV[uint32, int]) KV[uint32, int] { return r }, kvSize)
	if m.KeyPartitioned() {
		t.Fatal("map must not preserve key partitioning")
	}
}

func TestGenerateKeyed(t *testing.T) {
	ctx := testCtx(3, 6)
	d := GenerateKeyed(ctx, "gen", func(p int) []KV[uint32, int] {
		var recs []KV[uint32, int]
		for k := uint32(0); k < 60; k++ {
			if PartitionOf(k, ctx.Parts) == p {
				recs = append(recs, KV[uint32, int]{Key: k, Val: int(k)})
			}
		}
		return recs
	}, kvSize)
	if !d.KeyPartitioned() {
		t.Fatal("GenerateKeyed output must be key-partitioned")
	}
	if n := Count(d); n != 60 {
		t.Fatalf("generated %d records", n)
	}
	if ctx.Cluster.Metrics().TotalShuffles() != 0 {
		t.Fatal("generation must not shuffle")
	}
}

func TestGenerateKeyedPanicsOnWrongPartition(t *testing.T) {
	ctx := testCtx(2, 4)
	d := GenerateKeyed(ctx, "bad", func(p int) []KV[uint32, int] {
		return []KV[uint32, int]{{Key: 0, Val: 0}} // key 0 belongs to one partition only
	}, kvSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for misplaced key")
		}
	}()
	Count(d)
}

func TestPersistUnpersistCacheAccounting(t *testing.T) {
	ctx := testCtx(2, 4)
	d := FromSlice(ctx, "kv", seq(100), intSize).Persist()
	if !d.Cached() {
		t.Fatal("persist must mark cached")
	}
	want := 800 * ctx.Cluster.Profile.RawCacheFactor // wire bytes x raw-object factor
	if got := ctx.Cluster.CachedBytes(); got != want {
		t.Fatalf("cached bytes %v, want %v", got, want)
	}
	d.Persist() // idempotent
	if got := ctx.Cluster.CachedBytes(); got != want {
		t.Fatalf("double persist changed accounting: %v", got)
	}
	d.Unpersist()
	if got := ctx.Cluster.CachedBytes(); got != 0 {
		t.Fatalf("unpersist left %v bytes", got)
	}
	d.Unpersist() // idempotent
}

func TestMaterializeChargesOnce(t *testing.T) {
	ctx := testCtx(2, 4)
	d := Map(FromSlice(ctx, "kv", seq(1000), intSize),
		func(x int) int { return x + 1 }, intSize)
	Count(d)
	after1 := ctx.Cluster.SimTime()
	Count(d) // second action: only the count stage itself, no recompute
	after2 := ctx.Cluster.SimTime()
	if after2-after1 >= after1 {
		t.Fatalf("second action recomputed lineage: %v vs %v", after2-after1, after1)
	}
}

func TestAggregate(t *testing.T) {
	ctx := testCtx(3, 5)
	d := FromSlice(ctx, "n", seq(101), intSize)
	sum := Aggregate(d, func() int { return 0 },
		func(a int, x int) int { return a + x },
		func(a, b int) int { return a + b }, 1)
	if sum != 5050 {
		t.Fatalf("aggregate sum %d", sum)
	}
}

func TestForeach(t *testing.T) {
	ctx := testCtx(1, 2)
	var sum int
	Foreach(FromSlice(ctx, "n", seq(10), intSize), func(x int) { sum += x })
	if sum != 45 {
		t.Fatalf("foreach sum %d", sum)
	}
}

func TestWithFlopsCharged(t *testing.T) {
	ctx := testCtx(2, 4)
	d := Map(FromSlice(ctx, "n", seq(100), intSize),
		func(x int) int { return x }, intSize, WithFlops(10))
	Count(d)
	if got := ctx.Cluster.Metrics().TotalFlops(); got != 1000 {
		t.Fatalf("flops = %v, want 1000", got)
	}
}

func TestHashKeyTypes(t *testing.T) {
	if HashKey(uint32(5)) != HashKey(uint32(5)) {
		t.Fatal("hash must be stable")
	}
	if HashKey("abc") == HashKey("abd") {
		t.Fatal("string hash collision on near keys")
	}
	// int and uint64 of the same value must agree with themselves only.
	_ = HashKey(int(7))
	_ = HashKey(int64(-7))
	_ = HashKey(int32(-7))
	_ = HashKey(uint64(7))
	_ = HashKey(uint16(7))
	_ = HashKey(uint8(7))
	defer func() {
		if recover() == nil {
			t.Fatal("unhashable key type must panic")
		}
	}()
	type weird struct{ x int }
	HashKey(weird{1})
}

func TestJoinAcrossContextsPanics(t *testing.T) {
	a := FromSlice(testCtx(2, 2), "a", []KV[uint32, int]{{1, 1}}, kvSize)
	b := FromSlice(testCtx(2, 2), "b", []KV[uint32, int]{{1, 1}}, kvSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cross-context join")
		}
	}()
	Join(a, b, FixedSize[KV[uint32, Pair[int, int]]](24))
}

func TestNewContextValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero partitions")
		}
	}()
	NewContext(cluster.New(1, cluster.LaptopProfile()), 0)
}
