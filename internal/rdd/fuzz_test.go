package rdd

import (
	"sort"
	"testing"
	"testing/quick"

	"cstf/internal/cluster"
	"cstf/internal/rng"
)

// Randomized pipeline equivalence: a random chain of transformations is
// applied both through the engine (with random node/partition counts, so
// shuffles genuinely move data) and through a plain in-memory reference.
// The resulting multisets must be identical — partitioning, shuffling, and
// cost accounting must never change the data.

type refRec struct {
	Key uint32
	Val int64
}

func refSort(rs []refRec) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Key != rs[j].Key {
			return rs[i].Key < rs[j].Key
		}
		return rs[i].Val < rs[j].Val
	})
}

func TestRandomPipelineEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nodes := 1 + src.Intn(6)
		parts := nodes * (1 + src.Intn(3))
		ctx := NewContext(cluster.New(nodes, cluster.LaptopProfile()), parts)

		n := 50 + src.Intn(400)
		keySpace := uint32(1 + src.Intn(40))
		ref := make([]refRec, n)
		recs := make([]KV[uint32, int64], n)
		for i := range recs {
			k := uint32(src.Intn(int(keySpace)))
			v := int64(src.Intn(1000)) - 500
			recs[i] = KV[uint32, int64]{Key: k, Val: v}
			ref[i] = refRec{Key: k, Val: v}
		}
		d := FromSlice(ctx, "fuzz", recs, FixedSize[KV[uint32, int64]](16))

		steps := 1 + src.Intn(6)
		for s := 0; s < steps; s++ {
			switch src.Intn(6) {
			case 0: // map: shift value, rotate key
				shift := int64(src.Intn(7)) - 3
				d = Map(d, func(r KV[uint32, int64]) KV[uint32, int64] {
					return KV[uint32, int64]{Key: (r.Key + 1) % keySpace, Val: r.Val + shift}
				}, FixedSize[KV[uint32, int64]](16))
				for i := range ref {
					ref[i] = refRec{Key: (ref[i].Key + 1) % keySpace, Val: ref[i].Val + shift}
				}
			case 1: // filter
				mod := int64(2 + src.Intn(3))
				d = Filter(d, func(r KV[uint32, int64]) bool { return r.Val%mod != 0 })
				var nr []refRec
				for _, r := range ref {
					if r.Val%mod != 0 {
						nr = append(nr, r)
					}
				}
				ref = nr
			case 2: // partitionBy (pure movement, no data change)
				d = PartitionBy(d)
			case 3: // reduceByKey (sum)
				d = ReduceByKey(d, func(a, b int64) int64 { return a + b })
				sums := map[uint32]int64{}
				for _, r := range ref {
					sums[r.Key] += r.Val
				}
				ref = ref[:0]
				for k, v := range sums {
					ref = append(ref, refRec{Key: k, Val: v})
				}
			case 4: // union with a small extra dataset
				m := 1 + src.Intn(30)
				extra := make([]KV[uint32, int64], m)
				for i := range extra {
					k := uint32(src.Intn(int(keySpace)))
					v := int64(src.Intn(100))
					extra[i] = KV[uint32, int64]{Key: k, Val: v}
					ref = append(ref, refRec{Key: k, Val: v})
				}
				d = Union(d, FromSlice(ctx, "extra", extra, FixedSize[KV[uint32, int64]](16)))
			case 5: // mapValues
				d = MapValues(d, func(v int64) int64 { return -v }, FixedSize[KV[uint32, int64]](16))
				for i := range ref {
					ref[i].Val = -ref[i].Val
				}
			}
		}

		got := Collect(d)
		if len(got) != len(ref) {
			return false
		}
		gr := make([]refRec, len(got))
		for i, r := range got {
			gr[i] = refRec{Key: r.Key, Val: r.Val}
		}
		refSort(gr)
		refSort(ref)
		for i := range ref {
			if gr[i] != ref[i] {
				return false
			}
		}
		// Invariant: metrics are internally consistent after any pipeline.
		m := ctx.Cluster.Metrics()
		if nodes == 1 && m.TotalRemoteBytes() != 0 {
			return false
		}
		return m.TotalSimTime() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Joins against a reference implementation under random inputs.
func TestRandomJoinEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nodes := 1 + src.Intn(5)
		ctx := NewContext(cluster.New(nodes, cluster.LaptopProfile()), nodes*2)
		keySpace := 1 + src.Intn(25)

		mk := func(n int) ([]KV[uint32, int64], []refRec) {
			recs := make([]KV[uint32, int64], n)
			ref := make([]refRec, n)
			for i := range recs {
				k := uint32(src.Intn(keySpace))
				v := int64(src.Intn(500))
				recs[i] = KV[uint32, int64]{Key: k, Val: v}
				ref[i] = refRec{Key: k, Val: v}
			}
			return recs, ref
		}
		ra, refA := mk(20 + src.Intn(100))
		rb, refB := mk(20 + src.Intn(100))
		a := FromSlice(ctx, "a", ra, FixedSize[KV[uint32, int64]](16))
		b := FromSlice(ctx, "b", rb, FixedSize[KV[uint32, int64]](16))
		if src.Intn(2) == 0 {
			a = PartitionBy(a)
		}
		if src.Intn(2) == 0 {
			b = PartitionBy(b)
		}

		got := Collect(Join(a, b, FixedSize[KV[uint32, Pair[int64, int64]]](24)))

		// Reference nested-loop join.
		type pair struct{ k, x, y int64 }
		var want []pair
		for _, x := range refA {
			for _, y := range refB {
				if x.Key == y.Key {
					want = append(want, pair{int64(x.Key), x.Val, y.Val})
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		gp := make([]pair, len(got))
		for i, r := range got {
			gp[i] = pair{int64(r.Key), r.Val.A, r.Val.B}
		}
		less := func(a, b pair) bool {
			if a.k != b.k {
				return a.k < b.k
			}
			if a.x != b.x {
				return a.x < b.x
			}
			return a.y < b.y
		}
		sort.Slice(gp, func(i, j int) bool { return less(gp[i], gp[j]) })
		sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
		for i := range want {
			if gp[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Shuffle byte conservation holds for every random workload: bytes sent
// equal bytes received (remote + local equals the sum of record sizes
// with overhead).
func TestRandomShuffleByteConservation(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		nodes := 1 + src.Intn(8)
		ctx := NewContext(cluster.New(nodes, cluster.LaptopProfile()), nodes+src.Intn(8))
		n := src.Intn(500)
		recs := make([]KV[uint32, int64], n)
		for i := range recs {
			recs[i] = KV[uint32, int64]{Key: uint32(src.Intn(100)), Val: int64(i)}
		}
		d := FromSlice(ctx, "kv", recs, FixedSize[KV[uint32, int64]](16))
		Count(PartitionBy(d))
		m := ctx.Cluster.Metrics()
		want := float64(n) * float64(16+ctx.Cluster.Profile.RecordOverhead)
		return m.TotalRemoteBytes()+m.TotalLocalBytes() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
