package rdd

import (
	"cstf/internal/cluster"
	"cstf/internal/rng"
)

// Additional standard dataset operations: GroupByKey, Union, Distinct,
// Sample, Keys/Values helpers. None of them are on CSTF's hot path, but a
// credible engine — and the ablation experiments — need them; GroupByKey
// in particular exists to quantify what reduceByKey's map-side combine
// saves (the classic Spark groupByKey-vs-reduceByKey guidance).

// GroupByKey gathers all values sharing a key into one record, with NO
// map-side combining: every input record crosses the shuffle. Prefer
// ReduceByKey whenever the merge is associative.
func GroupByKey[K comparable, V any](d *Dataset[KV[K, V]], os ...Option) *Dataset[KV[K, []V]] {
	o := applyOpts("groupByKey", os)
	outSize := func(r KV[K, []V]) int {
		// Approximate: the grouped record is as big as its inputs.
		n := 8
		for range r.Val {
			n += 16
		}
		return n
	}
	out := newDataset[KV[K, []V]](d.ctx, o.name, outSize)
	out.keyed = true
	out.compute = func() [][]KV[K, []V] {
		ctx := d.ctx
		P := ctx.Parts
		in := d.materialize()
		rc := o.costFactor * d.readCost()

		var grouped [][]KV[K, V]
		var tasks []cluster.Task
		wide := !d.keyed
		if wide {
			grouped, tasks = shuffle(ctx, in, d.sizeOf)
			for p := range tasks {
				tasks[p].Flops = o.flopsPerRecord * tasks[p].Records
				tasks[p].Records *= rc
			}
		} else {
			grouped = in
			tasks = make([]cluster.Task, P)
			for p := range tasks {
				tasks[p] = cluster.Task{
					Node:    ctx.Cluster.NodeOf(p),
					Records: rc * float64(len(in[p])),
					Flops:   o.flopsPerRecord * float64(len(in[p])),
				}
			}
		}

		parts := make([][]KV[K, []V], P)
		ctx.Cluster.Parallel(P, func(p int) {
			m := make(map[K][]V, len(grouped[p]))
			order := make([]K, 0, len(grouped[p]))
			for i := range grouped[p] {
				rec := grouped[p][i]
				if _, ok := m[rec.Key]; !ok {
					order = append(order, rec.Key)
				}
				m[rec.Key] = append(m[rec.Key], rec.Val)
			}
			recs := make([]KV[K, []V], 0, len(m))
			for _, k := range order {
				recs = append(recs, KV[K, []V]{Key: k, Val: m[k]})
			}
			parts[p] = recs
		})
		ctx.runOutputStage(wide, tasks)
		return parts
	}
	return out
}

// Union concatenates two datasets partition-wise (narrow, no shuffle).
// The result is never key-partitioned: even if both inputs are, Spark
// unions partition lists rather than aligning them, and so do we
// (partition i holds a[i] ++ b[i] because both sides share the context's
// partition count).
func Union[T any](a, b *Dataset[T], os ...Option) *Dataset[T] {
	if a.ctx != b.ctx {
		panic("rdd: union across contexts")
	}
	o := applyOpts("union", os)
	out := newDataset[T](a.ctx, o.name, a.sizeOf)
	out.compute = func() [][]T {
		inA := a.materialize()
		inB := b.materialize()
		P := a.ctx.Parts
		parts := make([][]T, P)
		counts := make([]int, P)
		a.ctx.Cluster.Parallel(P, func(p int) {
			merged := make([]T, 0, len(inA[p])+len(inB[p]))
			merged = append(merged, inA[p]...)
			merged = append(merged, inB[p]...)
			parts[p] = merged
			counts[p] = len(merged)
		})
		oc := o
		narrowTasks(a.ctx, counts, oc)
		return parts
	}
	return out
}

// Distinct removes duplicate records. Requires a comparable record type;
// implemented as a key-only shuffle plus per-partition set semantics (one
// wide stage), like Spark's distinct.
func Distinct[T comparable](d *Dataset[T], os ...Option) *Dataset[T] {
	o := applyOpts("distinct", os)
	keyed := Map(d, func(t T) KV[T, struct{}] {
		return KV[T, struct{}]{Key: t}
	}, func(KV[T, struct{}]) int { return avgSize(d) }, os...)
	reduced := ReduceByKey(keyed, func(a, _ struct{}) struct{} { return a }, os...)
	out := MapValues(reduced, func(v struct{}) struct{} { return v },
		func(KV[T, struct{}]) int { return avgSize(d) })
	res := Map(out, func(r KV[T, struct{}]) T { return r.Key }, d.sizeOf, WithName(o.name))
	return res
}

// avgSize estimates a record size for derived key-only datasets.
func avgSize[T any](d *Dataset[T]) int { return 16 }

// Sample keeps each record independently with probability frac,
// deterministically in seed (narrow).
func Sample[T any](d *Dataset[T], frac float64, seed uint64, os ...Option) *Dataset[T] {
	if frac < 0 || frac > 1 {
		panic("rdd: sample fraction out of [0, 1]")
	}
	o := applyOpts("sample", os)
	out := newDataset[T](d.ctx, o.name, d.sizeOf)
	out.keyed = d.keyed
	out.compute = func() [][]T {
		in := d.materialize()
		P := d.ctx.Parts
		parts := make([][]T, P)
		counts := make([]int, P)
		d.ctx.Cluster.Parallel(P, func(p int) {
			src := rng.New(rng.Hash64(seed, uint64(p)))
			var dst []T
			for i := range in[p] {
				if src.Float64() < frac {
					dst = append(dst, in[p][i])
				}
			}
			parts[p] = dst
			counts[p] = len(in[p])
		})
		oc := o
		oc.costFactor *= d.readCost()
		narrowTasks(d.ctx, counts, oc)
		return parts
	}
	return out
}

// Keys projects a keyed dataset to its keys (narrow).
func Keys[K comparable, V any](d *Dataset[KV[K, V]], os ...Option) *Dataset[K] {
	return Map(d, func(r KV[K, V]) K { return r.Key }, FixedSize[K](8), os...)
}

// Values projects a keyed dataset to its values (narrow).
func Values[K comparable, V any](d *Dataset[KV[K, V]], sizeOf func(V) int, os ...Option) *Dataset[V] {
	return Map(d, func(r KV[K, V]) V { return r.Val }, sizeOf, os...)
}

// AggregateByKey folds values into a per-key accumulator of a DIFFERENT
// type than the values (Spark's aggregateByKey): map-side, each partition
// folds its values with seq; the partial accumulators shuffle; the reduce
// side merges them with comb. The output is hash-partitioned by key.
func AggregateByKey[K comparable, V, A any](
	d *Dataset[KV[K, V]],
	zero func() A,
	seq func(A, V) A,
	comb func(A, A) A,
	sizeOfAcc func(KV[K, A]) int,
	os ...Option,
) *Dataset[KV[K, A]] {
	o := applyOpts("aggregateByKey", os)
	out := newDataset[KV[K, A]](d.ctx, o.name, sizeOfAcc)
	out.keyed = true
	out.compute = func() [][]KV[K, A] {
		ctx := d.ctx
		P := ctx.Parts
		in := d.materialize()
		rc := o.costFactor * d.readCost()

		// Map-side: fold into per-key accumulators.
		partials := make([][]KV[K, A], P)
		ctx.Cluster.Parallel(P, func(p int) {
			m := make(map[K]A, len(in[p]))
			var order []K
			for i := range in[p] {
				rec := in[p][i]
				acc, ok := m[rec.Key]
				if !ok {
					acc = zero()
					order = append(order, rec.Key)
				}
				m[rec.Key] = seq(acc, rec.Val)
			}
			recs := make([]KV[K, A], 0, len(m))
			for _, k := range order {
				recs = append(recs, KV[K, A]{Key: k, Val: m[k]})
			}
			partials[p] = recs
		})
		mapTasks := make([]cluster.Task, P)
		for p := range mapTasks {
			mapTasks[p] = cluster.Task{
				Node:    ctx.Cluster.NodeOf(p),
				Records: rc * float64(len(in[p])),
				Flops:   o.flopsPerRecord * float64(len(in[p])),
			}
		}
		ctx.Cluster.RunStage(false, mapTasks)

		// Shuffle partials and merge.
		shuffled, tasks := shuffle(ctx, partials, sizeOfAcc)
		final := make([][]KV[K, A], P)
		ctx.Cluster.Parallel(P, func(p int) {
			m := make(map[K]A, len(shuffled[p]))
			var order []K
			for i := range shuffled[p] {
				rec := shuffled[p][i]
				if acc, ok := m[rec.Key]; ok {
					m[rec.Key] = comb(acc, rec.Val)
				} else {
					m[rec.Key] = rec.Val
					order = append(order, rec.Key)
				}
			}
			recs := make([]KV[K, A], 0, len(m))
			for _, k := range order {
				recs = append(recs, KV[K, A]{Key: k, Val: m[k]})
			}
			final[p] = recs
			tasks[p].Flops += o.flopsPerRecord * tasks[p].Records
			tasks[p].Records *= o.costFactor
		})
		ctx.runOutputStage(true, tasks)
		return final
	}
	return out
}
