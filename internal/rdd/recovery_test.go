package rdd

import (
	"math"
	"reflect"
	"testing"

	"cstf/internal/cluster"
)

// crashOnce delivers one node crash at the given stage, with clean
// conditions otherwise.
type crashOnce struct {
	stage     uint64
	node      int
	delivered bool
}

func (c *crashOnce) TakeFaults(seq uint64) ([]int, []int) {
	if !c.delivered && seq >= c.stage {
		c.delivered = true
		return []int{c.node}, nil
	}
	return nil, nil
}

func (c *crashOnce) StageConditions(uint64, int) ([]float64, float64) { return nil, 1 }

func square(x int) int { return x * x }

// pipeline builds the shared test topology: a persisted source and a
// persisted map over it, returning both plus the collected map output.
func pipeline(ctx *Context) (*Dataset[int], *Dataset[int], []int) {
	data := make([]int, 80)
	for i := range data {
		data[i] = i + 1
	}
	src := FromSlice(ctx, "src", data, intSize).Persist()
	sq := Map(src, square, intSize).Persist()
	return src, sq, Collect(sq)
}

func TestCrashRecoveryRecomputesFromLineage(t *testing.T) {
	// Fault-free baseline.
	cleanCtx := testCtx(4, 8)
	_, _, want := pipeline(cleanCtx)

	ctx := testCtx(4, 8)
	ctx.EnableRecovery()
	cl := ctx.Cluster
	// Stages: 1 = src load, 2 = map, 3 = the first Collect's read stage,
	// where the crash lands (after the collect copied its data out).
	cl.SetFaultInjector(&crashOnce{stage: 3, node: 1})
	src, sq, first := pipeline(ctx)
	if !reflect.DeepEqual(first, want) {
		t.Fatal("collect that delivers the crash must still see pre-crash data")
	}
	cachedBefore := 0.0 // recompute below; crash already zeroed node 1

	m := cl.Metrics()
	if m.NodeCrashes != 1 {
		t.Fatalf("NodeCrashes = %d, want 1", m.NodeCrashes)
	}
	if m.LostCacheBytes == 0 {
		t.Fatal("crash must destroy cached bytes")
	}

	// Partitions 1 and 5 of both datasets lived on node 1 and are gone;
	// reading the map output recovers them (cascading into src) and yields
	// bitwise-identical data.
	got := Collect(sq)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recovered collect differs from fault-free run")
	}
	m = cl.Metrics()
	if m.RecomputedPartitions != 4 {
		t.Fatalf("RecomputedPartitions = %d, want 4 (2 per dataset)", m.RecomputedPartitions)
	}
	if m.SimTime[cluster.PhaseRecovery] <= cl.Profile.RecoveryDelay {
		t.Fatalf("recompute time not charged under Recovery: %v", m.SimTime[cluster.PhaseRecovery])
	}
	// Only the lost partitions are charged: 2 partitions x 10 records for
	// each of the two recomputed stages.
	if math.Abs(m.Records[cluster.PhaseRecovery]-40) > 1e-9 {
		t.Fatalf("Recovery records = %v, want 40", m.Records[cluster.PhaseRecovery])
	}

	// The recovered partitions are re-cached: total cache matches a clean run.
	cachedBefore = cleanCtx.Cluster.CachedBytes()
	if math.Abs(cl.CachedBytes()-cachedBefore) > 1e-9 {
		t.Fatalf("cache after recovery %v, want %v", cl.CachedBytes(), cachedBefore)
	}
	_ = src
}

func TestRecoveryIsLazyAndIdempotent(t *testing.T) {
	ctx := testCtx(4, 8)
	ctx.EnableRecovery()
	cl := ctx.Cluster
	cl.SetFaultInjector(&crashOnce{stage: 2, node: 2})
	data := make([]int, 40)
	for i := range data {
		data[i] = i
	}
	src := FromSlice(ctx, "src", data, intSize).Persist() // stage 1
	want := Collect(src)                                  // stage 2 delivers the crash
	recomputedAt := cl.Metrics().RecomputedPartitions
	if recomputedAt != 0 {
		t.Fatal("recovery must be lazy (only on next read)")
	}
	if !reflect.DeepEqual(Collect(src), want) {
		t.Fatal("first recovered read differs")
	}
	n := cl.Metrics().RecomputedPartitions
	if n == 0 {
		t.Fatal("read after crash must recompute")
	}
	if !reflect.DeepEqual(Collect(src), want) {
		t.Fatal("second read differs")
	}
	if cl.Metrics().RecomputedPartitions != n {
		t.Fatal("recovery must not repeat once partitions are rebuilt")
	}
}

func TestUnpersistRetiresOnResilientContext(t *testing.T) {
	ctx := testCtx(2, 4)
	ctx.EnableRecovery()
	src := FromSlice(ctx, "src", []int{1, 2, 3, 4}, intSize).Persist()
	Collect(src)
	src.Unpersist()
	if len(ctx.registry) != 0 {
		t.Fatal("unpersist must deregister the dataset")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reading a retired dataset must panic")
		}
	}()
	Collect(src)
}
